(** Lightweight structured event tracing for debugging and timeline
    rendering.

    A trace is a bounded in-memory log of [(time, core, category, message)]
    records. Disabled traces cost one branch per emission, so components can
    trace unconditionally. Categories are stable strings (documented in
    DESIGN.md §Observability) so downstream consumers — {!records} readers,
    the metrics timeline fold and the JSON exporter — can rely on them. *)

type t

type record = {
  time : Time_ns.t;
  core : int;  (** emitting physical core, or {!no_core} for global events *)
  category : string;
  message : string;
}

val no_core : int
(** Sentinel [core] value ([-1]) for events not tied to a physical core. *)

(** Stable category names used by the scheduler-wide observability layer.

    [core_state] events carry one of the [state_*] strings as message and
    drive the per-core occupancy timeline; the remaining categories are
    structured scheduling/probe/data-plane/kernel events. *)
module Cat : sig
  val core_state : string
  val state_dp : string
  val state_vcpu : string
  val state_switch : string
  val state_idle : string

  val sched_place : string
  val sched_evict : string
  val sched_slice : string
  val sched_rotate : string
  val sched_halt : string
  val sched_rescue : string
  val sched_borrow : string

  val dp_yield : string
  val dp_resume : string
  val dp_park : string
  val dp_wake : string

  val probe_hw : string
  val probe_sw : string

  val fault : string
  (** An injected fault firing (payload names the fault class). *)

  val recovery : string
  (** A recovery mechanism acting: watchdog escalation, boot/IPI retry,
      mirror resync. *)

  val degraded : string
  (** Degraded-mode engage/re-arm events of the system-wide fallback. *)

  val overload : string
  (** Overload-governor ladder transitions. The payload is self-describing
      for trace_lint: [seq=N from=<level> to=<level> held=<ns> min=<ns>]. *)

  val churn : string
  (** Tenant-lifecycle events (admit, drain, forced escalation, retired).
      The [retired tenant=<id> ...] payload is the marker trace_lint keys
      its frozen-lane check on: no overload transition for that tenant
      may appear after it. *)

  val fleet : string
  (** Cross-NIC fleet events: epoch-boundary exchange sends/receives
      ([send dst=.. seq=.. epoch=..] / [recv src=.. seq=.. epoch=..
      sent=..]), RPC receipts, NIC fault-domain events (crash, brownout,
      partition) and failover placements. trace_lint keys its cross-NIC
      causality check on the [sent=] field of receive records. *)

  val softirq : string

  val kernel_steal : string
  val kernel_migrate : string
  val kernel_reclaim : string
end

val create : ?limit:int -> ?enabled:bool -> unit -> t
(** [create ?limit ?enabled ()] is a trace retaining at most [limit]
    (default 100_000) records; older records are dropped (and counted, see
    {!dropped}). *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val emit : t -> time:Time_ns.t -> ?core:int -> category:string -> string -> unit
(** [emit t ~time ?core ~category msg] appends a record when the trace is
    enabled. *)

val emitf :
  t ->
  time:Time_ns.t ->
  ?core:int ->
  category:string ->
  ('a, Format.formatter, unit, unit) format4 ->
  'a
(** Formatted variant of {!emit}. When the trace is disabled the format
    arguments are discarded through a private null formatter — global
    formatter state (e.g. [Format.str_formatter]) is never touched. *)

val records : t -> record list
(** [records t] is the retained records in chronological order. *)

val iter : t -> (record -> unit) -> unit
(** [iter t f] applies [f] to each retained record in chronological order
    without materialising the list. *)

val by_category : t -> string -> record list
val by_core : t -> int -> record list

val length : t -> int

val dropped : t -> int
(** Number of records evicted by the ring-buffer limit since creation (or
    the last {!clear}). *)

val clear : t -> unit

val pp : Format.formatter -> t -> unit
(** [pp fmt t] prints the retained records, one per line. *)

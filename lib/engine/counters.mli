(** A named-counter registry with interned handles.

    One flat namespace of monotonically increasing integer counters,
    shared by every subsystem of a machine (the scheduler, data-plane
    services, probes, the kernel). Dotted names give a stable hierarchy,
    e.g. ["sched.placements"] or ["dp.yields"].

    Hot paths register once with {!handle} and then increment through
    {!incr_h}: a single array load and store, no string hashing and no
    allocation. The string API stays for cold paths; {!dump} is
    explicitly sorted by name so exports are deterministic.

    A counter only materialises (appears in {!dump}) once it has been
    incremented — registering a handle alone leaves it invisible, and
    {!get} on it reads 0. *)

type t

type handle
(** A dense int naming one registered counter of one table. Handles are
    only meaningful against the table that issued them. *)

val create : unit -> t

val handle : t -> string -> handle
(** [handle t name] interns [name], registering it on first use. Cold:
    one Hashtbl probe. Call it once at setup and keep the handle. *)

val incr_h : t -> ?by:int -> handle -> unit
(** [incr_h t ?by h] adds [by] (default 1) to the counter behind [h]:
    the per-event fast path. *)

val add_h : t -> handle -> int -> unit
(** [add_h t h by] is [incr_h t ~by h] without the optional-argument
    boxing: use it when the amount is computed per event (byte counts)
    and the call must stay allocation-free. *)

val get_h : t -> handle -> int

val incr : t -> ?by:int -> string -> unit
(** [incr t ?by name] adds [by] (default 1) to counter [name], creating
    it at zero first if needed. Equivalent to registering and using the
    handle; one table lookup. *)

val get : t -> string -> int
(** [get t name] is the counter's value, 0 if never incremented. *)

val dump : t -> (string * int) list
(** All counters that have been incremented at least once, sorted by
    name. *)

val clear : t -> unit
(** Reset every cell to the never-incremented state. Registered handles
    and lanes remain valid. *)

val pp : Format.formatter -> t -> unit

(** {1 Per-tenant lanes}

    The ["tenant.<id>.<suffix>"] mirror counters form a dense matrix:
    one {!lane} per suffix, one row slot per tenant id. The lane interns
    each (tenant, suffix) name the first time that pair is touched —
    lazily, so tenants admitted mid-run (churn) get their cells without
    any pre-registration — and every increment after that is an array
    load away, replacing the per-event [Printf.sprintf]. *)

type lane

val lane : t -> string -> lane
(** [lane t suffix] is the per-tenant lane mirroring global counter
    [suffix]. Cold: call at setup, keep the lane. *)

val lane_incr : lane -> ?by:int -> int -> unit
(** [lane_incr l ?by tenant] increments ["tenant.<tenant>.<suffix>"]. *)

val lane_handle : lane -> int -> handle
(** The underlying handle for one tenant's cell (interned on first
    use). *)

(** A named-counter registry.

    One flat namespace of monotonically increasing integer counters,
    shared by every subsystem of a machine (the scheduler, data-plane
    services, probes, the kernel). Dotted names give a stable hierarchy,
    e.g. ["sched.placements"] or ["dp.yields"]. {!dump} is sorted by name
    so exports are deterministic. *)

type t

val create : unit -> t

val incr : t -> ?by:int -> string -> unit
(** [incr t ?by name] adds [by] (default 1) to counter [name], creating it
    at zero first if needed. *)

val get : t -> string -> int
(** [get t name] is the counter's value, 0 if never incremented. *)

val dump : t -> (string * int) list
(** All counters, sorted by name. *)

val clear : t -> unit

val pp : Format.formatter -> t -> unit

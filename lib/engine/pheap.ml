type 'a entry = { key : int; seq : int; value : 'a }

type 'a t = { mutable arr : 'a entry array; mutable size : int }

let create () = { arr = [||]; size = 0 }
let length h = h.size
let is_empty h = h.size = 0

let less a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

(* Growth uses the element being pushed as the fill value, so the empty
   backing array never has to provide a dummy: [clear] leaves capacity
   behind, but a fresh heap (or any size/capacity combination) grows
   safely. Fill content is never observed: [size] guards all reads. *)
let grow h fill =
  let cap = Array.length h.arr in
  let ncap = if cap = 0 then 16 else cap * 2 in
  let narr = Array.make ncap fill in
  Array.blit h.arr 0 narr 0 h.size;
  h.arr <- narr

let push h ~key ~seq value =
  let e = { key; seq; value } in
  if h.size = Array.length h.arr then grow h e;
  h.arr.(h.size) <- e;
  h.size <- h.size + 1;
  (* Sift the new element up to restore the heap invariant. *)
  let i = ref (h.size - 1) in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if less h.arr.(!i) h.arr.(parent) then begin
      let tmp = h.arr.(parent) in
      h.arr.(parent) <- h.arr.(!i);
      h.arr.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let sift_down_from h start =
  let i = ref start in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < h.size && less h.arr.(l) h.arr.(!smallest) then smallest := l;
    if r < h.size && less h.arr.(r) h.arr.(!smallest) then smallest := r;
    if !smallest <> !i then begin
      let tmp = h.arr.(!smallest) in
      h.arr.(!smallest) <- h.arr.(!i);
      h.arr.(!i) <- tmp;
      i := !smallest
    end
    else continue := false
  done

let sift_down h = sift_down_from h 0

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.arr.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.arr.(0) <- h.arr.(h.size);
      sift_down h
    end;
    Some (top.key, top.seq, top.value)
  end

let peek h =
  if h.size = 0 then None
  else
    let top = h.arr.(0) in
    Some (top.key, top.seq, top.value)

(* Non-allocating root accessors for hot paths: callers must check
   [is_empty] first, exactly like indexing an array. *)

let top_key h =
  if h.size = 0 then invalid_arg "Pheap.top_key: empty";
  h.arr.(0).key

let top_seq h =
  if h.size = 0 then invalid_arg "Pheap.top_seq: empty";
  h.arr.(0).seq

let top_value h =
  if h.size = 0 then invalid_arg "Pheap.top_value: empty";
  h.arr.(0).value

let drop h =
  if h.size = 0 then invalid_arg "Pheap.drop: empty";
  h.size <- h.size - 1;
  if h.size > 0 then begin
    h.arr.(0) <- h.arr.(h.size);
    sift_down h
  end

let clear h = h.size <- 0

let compact h ~keep =
  (* In-place filter: surviving entries keep their original (key, seq), so
     relative ordering of live events is unchanged after the rebuild. *)
  let j = ref 0 in
  for i = 0 to h.size - 1 do
    let e = h.arr.(i) in
    if keep e.value then begin
      h.arr.(!j) <- e;
      incr j
    end
  done;
  h.size <- !j;
  (* Floyd's bottom-up heapify: O(n), cheaper than re-pushing each entry. *)
  for i = (h.size / 2) - 1 downto 0 do
    sift_down_from h i
  done

(** The discrete-event simulator core.

    A simulator owns a virtual clock and a cancellable event queue. Events
    scheduled for the same instant fire in the order they were scheduled,
    making every run deterministic.

    Internally the engine is a calendar timer queue ({!Timerq}: a 512 ns
    x 4096-bucket wheel with a binary-heap overflow tier) fed by a
    preallocated event pool with free-list recycling, so the schedule /
    cancel / fire hot path allocates nothing: no closures, no per-event
    queue nodes, and handles are immediate ints (slot index packed with
    the slot generation). Fire order is bit-identical to the seed
    binary-heap engine, which is kept as {!Sim_legacy} and enforced as a
    differential oracle in the test suite. *)

type t
(** A simulator instance. *)

type handle = private int
(** A handle on a scheduled event, usable to cancel it. An unboxed
    slot/generation pack; operations on it take the owning simulator. *)

val create : unit -> t
(** [create ()] is a fresh simulator with the clock at time 0. *)

val now : t -> Time_ns.t
(** [now sim] is the current simulated time. *)

val at : t -> Time_ns.t -> (unit -> unit) -> handle
(** [at sim time f] schedules [f] to run at absolute [time]. Scheduling in
    the past raises [Invalid_argument]. *)

val after : t -> Time_ns.t -> (unit -> unit) -> handle
(** [after sim delay f] schedules [f] to run [delay] from now. *)

val immediate : t -> (unit -> unit) -> handle
(** [immediate sim f] schedules [f] at the current time, after all callbacks
    already queued for this instant. *)

val cancel : t -> handle -> unit
(** [cancel sim h] prevents the event from firing. Cancelling an event that
    has already fired or been cancelled is a no-op. *)

val is_pending : t -> handle -> bool
(** [is_pending sim h] is [true] iff the event has neither fired nor been
    cancelled. *)

val run : ?until:Time_ns.t -> t -> unit
(** [run ?until sim] processes events in time order until the queue is
    empty, or until the clock would pass [until]. When stopped by [until],
    the clock is left exactly at [until]. *)

val step : t -> bool
(** [step sim] processes the single next event. Returns [false] when the
    queue is empty. *)

val pending_events : t -> int
(** [pending_events sim] is the number of live (uncancelled) events. *)

val events_processed : t -> int
(** [events_processed sim] counts events fired since creation, a useful
    progress and complexity metric. *)

val events_scheduled : t -> int
(** [events_scheduled sim] counts sequence numbers issued since creation
    (every [at]/[after]/[immediate] plus every {!reserve_seq}). *)

(** {2 Reserved-sequence scheduling}

    The accelerator pipeline batches packet deliveries through a single
    timer instead of one event per packet, yet must stay bit-identical
    to the one-event-per-packet engine: same-instant events interleave
    by sequence number. These hooks let a batcher claim the exact
    sequence numbers the per-packet events would have had, and schedule
    its drain timer under them. *)

val reserve_seq : t -> int
(** [reserve_seq sim] claims and returns the next sequence number, as if
    an event had been scheduled, without queueing anything. *)

val at_reserved : t -> Time_ns.t -> seq:int -> (unit -> unit) -> unit
(** [at_reserved sim time ~seq f] schedules [f] at [time] under the
    previously {!reserve_seq}d [seq]. The caller must schedule each
    reserved seq at most once. Raises [Invalid_argument] if [time] is in
    the past or [seq] was never reserved. *)

val next_event : t -> (Time_ns.t * int) option
(** [next_event sim] is the [(time, seq)] of the earliest live pending
    event, if any — what would fire next. Tombstoned (cancelled) heads
    are swept as a side effect. *)

val has_event_before : t -> time:Time_ns.t -> seq:int -> bool
(** [has_event_before sim ~time ~seq] is [true] iff a live pending event
    orders strictly before [(time, seq)] — the allocation-free query a
    batcher uses to decide whether it may keep draining inline or must
    yield back to the engine. *)

val dead_events : t -> int
(** [dead_events sim] is the number of cancelled tombstones currently
    sitting in the event heap. Cancellation is lazy; tombstones are swept
    either on pop or by compaction when they exceed ~2x the live count. *)

val compactions : t -> int
(** [compactions sim] counts in-place heap rebuilds triggered by tombstone
    accumulation since creation. *)

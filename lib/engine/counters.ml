(* Interned counter cells. Names are registered once — {!handle} hashes
   the string a single time and hands back a dense int — and every
   increment after that is a plain array load/store: no string hashing,
   no Hashtbl probe, no allocation on the hot path. The string API
   ({!incr}, {!get}) survives for cold paths and one-off counters; it is
   now a registration followed by the handle op, so the old
   find-then-replace double lookup is gone.

   A registered-but-never-incremented counter must stay invisible: the
   seed Hashtbl table only materialised a cell on first [incr], and the
   trace exports (and their byte-identity baselines) depend on absent
   counters staying absent. Cells therefore start at an [untouched]
   sentinel and {!dump}/{!get} treat it as "not there". *)

type t = {
  mutable values : int array; (* handle -> value; [untouched] = never incr'd *)
  mutable names : string array; (* handle -> registered name *)
  mutable n : int; (* registered handles *)
  index : (string, int) Hashtbl.t;
  lanes : (string, lane) Hashtbl.t;
}

(* A per-tenant counter lane: one row of handles for a fixed suffix,
   indexed by tenant id. The row is grown and filled lazily so lanes
   keep working across churn (tenant ids are dense but admitted
   mid-run); after the first touch of a (tenant, suffix) pair the
   mirror increment is an array load and an add — the per-event
   [Printf.sprintf "tenant.%d.%s"] is gone. *)
and lane = {
  owner : t;
  suffix : string;
  mutable row : int array; (* tenant id -> handle, -1 = not yet interned *)
}

type handle = int

let untouched = min_int
let initial = 64

let create () =
  {
    values = Array.make initial untouched;
    names = Array.make initial "";
    n = 0;
    index = Hashtbl.create 32;
    lanes = Hashtbl.create 8;
  }

let grow t =
  let cap = Array.length t.values in
  let ncap = cap * 2 in
  let nv = Array.make ncap untouched in
  let nn = Array.make ncap "" in
  Array.blit t.values 0 nv 0 cap;
  Array.blit t.names 0 nn 0 cap;
  t.values <- nv;
  t.names <- nn

let handle t name =
  match Hashtbl.find_opt t.index name with
  | Some h -> h
  | None ->
      let h = t.n in
      if h = Array.length t.values then grow t;
      t.names.(h) <- name;
      t.values.(h) <- untouched;
      t.n <- h + 1;
      Hashtbl.add t.index name h;
      h

let add_h t h by =
  let v = t.values.(h) in
  t.values.(h) <- (if v = untouched then by else v + by)

let incr_h t ?(by = 1) h = add_h t h by

let get_h t h =
  let v = t.values.(h) in
  if v = untouched then 0 else v

let incr t ?(by = 1) name = incr_h t ~by (handle t name)

let get t name =
  match Hashtbl.find_opt t.index name with
  | Some h -> get_h t h
  | None -> 0

(* Explicitly sorted by name — never registration or Hashtbl fold
   order — so exports are deterministic however call sites were
   converted to handles. *)
let dump t =
  let acc = ref [] in
  for h = t.n - 1 downto 0 do
    let v = t.values.(h) in
    if v <> untouched then acc := (t.names.(h), v) :: !acc
  done;
  List.sort (fun (a, _) (b, _) -> compare a b) !acc

(* Clearing resets the cells, not the registrations: every issued handle
   (and lane row) stays valid, and an untouched cell disappears from
   [dump] exactly as the seed table's removed entries did. *)
let clear t = Array.fill t.values 0 t.n untouched

let pp fmt t =
  List.iter (fun (k, v) -> Format.fprintf fmt "%s=%d@." k v) (dump t)

(* --- per-tenant lanes ----------------------------------------------------- *)

let lane t suffix =
  match Hashtbl.find_opt t.lanes suffix with
  | Some l -> l
  | None ->
      let l = { owner = t; suffix; row = Array.make 16 (-1) } in
      Hashtbl.add t.lanes suffix l;
      l

let grow_row l tid =
  let cap = Array.length l.row in
  let ncap =
    let rec fit c = if tid < c then c else fit (c * 2) in
    fit (cap * 2)
  in
  let nr = Array.make ncap (-1) in
  Array.blit l.row 0 nr 0 cap;
  l.row <- nr

let lane_handle l tid =
  if tid >= Array.length l.row then grow_row l tid;
  let h = l.row.(tid) in
  if h >= 0 then h
  else begin
    let h = handle l.owner (Printf.sprintf "tenant.%d.%s" tid l.suffix) in
    l.row.(tid) <- h;
    h
  end

let lane_incr l ?(by = 1) tid = add_h l.owner (lane_handle l tid) by

type t = { cells : (string, int ref) Hashtbl.t }

let create () = { cells = Hashtbl.create 32 }

let incr t ?(by = 1) name =
  match Hashtbl.find_opt t.cells name with
  | Some cell -> cell := !cell + by
  | None -> Hashtbl.replace t.cells name (ref by)

let get t name =
  match Hashtbl.find_opt t.cells name with Some c -> !c | None -> 0

let dump t =
  Hashtbl.fold (fun k v acc -> (k, !v) :: acc) t.cells []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let clear t = Hashtbl.reset t.cells

let pp fmt t =
  List.iter (fun (k, v) -> Format.fprintf fmt "%s=%d@." k v) (dump t)

(* Buckets: values < 64 map one-to-one; above that, each power of two is
   split into 32 sub-buckets. The index layout (HdrHistogram with
   sub_bucket_bits = 5) lives in [Bucket_layout], shared with the
   sliding-window quantile sketch in taichi_metrics. *)

type t = {
  mutable buckets : int array;
  mutable n : int;
  mutable total : float;
  mutable lo : int;
  mutable hi : int;
}

let create () =
  { buckets = Array.make 1024 0; n = 0; total = 0.0; lo = max_int; hi = min_int }

let index_of = Bucket_layout.index_of
let upper_of = Bucket_layout.upper_of

let ensure h i =
  let cap = Array.length h.buckets in
  if i >= cap then begin
    let ncap = Stdlib.max (i + 1) (cap * 2) in
    let narr = Array.make ncap 0 in
    Array.blit h.buckets 0 narr 0 cap;
    h.buckets <- narr
  end

let add_many h v n =
  if n > 0 then begin
    let v = if v < 0 then 0 else v in
    let i = index_of v in
    ensure h i;
    h.buckets.(i) <- h.buckets.(i) + n;
    h.n <- h.n + n;
    h.total <- h.total +. (float_of_int v *. float_of_int n);
    if v < h.lo then h.lo <- v;
    if v > h.hi then h.hi <- v
  end

let add h v = add_many h v 1
let count h = h.n
let mean h = if h.n = 0 then 0.0 else h.total /. float_of_int h.n
let min_value h = if h.n = 0 then invalid_arg "Histogram.min_value: empty" else h.lo
let max_value h = if h.n = 0 then invalid_arg "Histogram.max_value: empty" else h.hi

let percentile h p =
  if h.n = 0 then invalid_arg "Histogram.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Histogram.percentile: p out of range";
  let target =
    Stdlib.max 1 (int_of_float (ceil (p /. 100.0 *. float_of_int h.n)))
  in
  (* Indexed scan with early exit: stop at the target bucket instead of
     walking the whole array for every percentile read. *)
  let len = Array.length h.buckets in
  let acc = ref 0 and result = ref h.hi and i = ref 0 in
  while !acc < target && !i < len do
    let c = h.buckets.(!i) in
    if c > 0 then begin
      acc := !acc + c;
      if !acc >= target then result := Stdlib.min (upper_of !i) h.hi
    end;
    incr i
  done;
  Stdlib.max h.lo !result

let cdf_points h =
  (* Early exit once every sample is accounted for: buckets past the
     last populated one are all zero. *)
  let len = Array.length h.buckets in
  let acc = ref 0 in
  let points = ref [] in
  let i = ref 0 in
  while !acc < h.n && !i < len do
    let c = h.buckets.(!i) in
    if c > 0 then begin
      acc := !acc + c;
      points := (upper_of !i, float_of_int !acc /. float_of_int h.n) :: !points
    end;
    incr i
  done;
  List.rev !points

let fraction_below h v =
  if h.n = 0 then 0.0
  else begin
    let limit = index_of (Stdlib.max 0 v) in
    (* Only buckets below [limit] contribute; never scan past it. *)
    let last = Stdlib.min limit (Array.length h.buckets) - 1 in
    let acc = ref 0 in
    for i = 0 to last do
      acc := !acc + h.buckets.(i)
    done;
    float_of_int !acc /. float_of_int h.n
  end

let merge a b =
  let out = create () in
  let fold src =
    Array.iteri
      (fun i c ->
        if c > 0 then begin
          ensure out i;
          out.buckets.(i) <- out.buckets.(i) + c
        end)
      src.buckets;
    out.n <- out.n + src.n;
    out.total <- out.total +. src.total;
    if src.n > 0 then begin
      if src.lo < out.lo then out.lo <- src.lo;
      if src.hi > out.hi then out.hi <- src.hi
    end
  in
  fold a;
  fold b;
  out

let clear h =
  Array.fill h.buckets 0 (Array.length h.buckets) 0;
  h.n <- 0;
  h.total <- 0.0;
  h.lo <- max_int;
  h.hi <- min_int

type handle = {
  time : Time_ns.t;
  mutable state : [ `Pending | `Fired | `Cancelled ];
  callback : unit -> unit;
  owner : t;
}

and t = {
  mutable clock : Time_ns.t;
  mutable seq : int;
  heap : handle Pheap.t;
  live : int ref;
  mutable fired : int;
  mutable compactions : int;
}

let create () =
  {
    clock = 0;
    seq = 0;
    heap = Pheap.create ();
    live = ref 0;
    fired = 0;
    compactions = 0;
  }

let now sim = sim.clock

let at sim time callback =
  if time < sim.clock then
    invalid_arg
      (Printf.sprintf "Sim.at: time %d is before now %d" time sim.clock);
  let h = { time; state = `Pending; callback; owner = sim } in
  Pheap.push sim.heap ~key:time ~seq:sim.seq h;
  sim.seq <- sim.seq + 1;
  incr sim.live;
  h

let after sim delay callback =
  if delay < 0 then invalid_arg "Sim.after: negative delay";
  at sim (sim.clock + delay) callback

let immediate sim callback = at sim sim.clock callback

(* Cancelled events are tombstones: they stay in the heap and are dropped
   lazily on pop. [dead_events] is how many tombstones the heap currently
   holds; once they outnumber live events ~2:1 (and are past a floor that
   keeps tiny sims from churning) the heap is rebuilt in place. *)
let dead_events sim = Pheap.length sim.heap - !(sim.live)

let compact_floor = 64

let maybe_compact sim =
  let dead = dead_events sim in
  if dead > compact_floor && dead > 2 * !(sim.live) then begin
    Pheap.compact sim.heap ~keep:(fun h -> h.state = `Pending);
    sim.compactions <- sim.compactions + 1
  end

let cancel h =
  match h.state with
  | `Pending ->
      h.state <- `Cancelled;
      decr h.owner.live;
      maybe_compact h.owner
  | `Fired | `Cancelled -> ()

let is_pending h = h.state = `Pending
let fire_time h = h.time

(* Pop entries until a pending one is found; cancelled entries that escaped
   compaction are dropped lazily here. *)
let rec next_live sim =
  match Pheap.pop sim.heap with
  | None -> None
  | Some (_, _, h) -> (
      match h.state with
      | `Pending -> Some h
      | `Cancelled | `Fired -> next_live sim)

let step sim =
  match next_live sim with
  | None -> false
  | Some h ->
      sim.clock <- h.time;
      h.state <- `Fired;
      decr sim.live;
      sim.fired <- sim.fired + 1;
      h.callback ();
      true

let run ?until sim =
  let continue = ref true in
  while !continue do
    (* Drop cancelled heads so the next-event time seen below is live. *)
    let rec live_head () =
      match Pheap.peek sim.heap with
      | None -> None
      | Some (_, _, h) when h.state <> `Pending ->
          ignore (Pheap.pop sim.heap);
          live_head ()
      | Some (t, _, _) -> Some t
    in
    match live_head () with
    | None -> continue := false
    | Some t -> (
        match until with
        | Some limit when t > limit ->
            sim.clock <- limit;
            continue := false
        | _ -> ignore (step sim))
  done;
  match until with
  | Some limit when sim.clock < limit -> sim.clock <- limit
  | _ -> ()

let pending_events sim = !(sim.live)
let events_processed sim = sim.fired
let events_scheduled sim = sim.seq
let compactions sim = sim.compactions

(** Streaming summary statistics (Welford's online algorithm). *)

type t

val create : unit -> t

val clear : t -> unit
(** [clear s] resets the summary to the freshly-created state: count, sum,
    mean, variance and extrema all forget every prior observation. *)

val add : t -> float -> unit
(** [add s x] folds one observation into the summary. *)

val add_int : t -> int -> unit

val count : t -> int
val sum : t -> float
val mean : t -> float
(** [mean s] is 0 when no observations were added. *)

val variance : t -> float
(** Sample variance (n-1 denominator); 0 with fewer than two points. *)

val stddev : t -> float

val min : t -> float
(** Raises [Invalid_argument] when empty. *)

val max : t -> float
(** Raises [Invalid_argument] when empty. *)

val merge : t -> t -> t
(** [merge a b] is a fresh summary equivalent to observing both streams. *)

val pp : Format.formatter -> t -> unit

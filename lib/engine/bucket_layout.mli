(** The HdrHistogram-style log-linear bucket layout (sub_bucket_bits =
    5) shared by [Taichi_engine.Histogram] and
    [Taichi_metrics.Quantile], so the two can never drift apart.

    Layout: values in [0, 2 * sub_count) map one-to-one to buckets;
    above that, each power-of-two range splits into {!sub_count}
    sub-buckets, giving a bounded ~3% relative error.

    Guarantees, property-tested over the full non-negative int range:
    [upper_of (index_of v) >= v], [index_of] is monotone in [v], and
    [upper_of] is monotone in the bucket index. *)

val sub_bits : int
val sub_count : int

val index_of : int -> int
(** [index_of v] is the bucket holding [v]. [v] must be non-negative. *)

val upper_of : int -> int
(** [upper_of i] is the largest value mapped to bucket [i], saturating
    at [max_int] for the topmost buckets where the exact bound would
    overflow the native int. *)

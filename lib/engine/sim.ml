(* The event engine hot path: a preallocated slot pool (callback and
   generation/state arrays recycled through a free list) feeding the
   calendar queue ({!Timerq}). Scheduling allocates nothing at all —
   no closures, no per-event heap entries on the wheel path, and the
   handle returned to the caller is a single immediate int packing the
   slot index (low bits) with the slot's generation word (high bits).
   Fire order is strict (time, seq), identical to the seed binary-heap
   engine ({!Sim_legacy}), which the differential qcheck property in
   the test suite enforces op-for-op.

   Slot lifecycle: allocated by [at], freed when its queue entry is
   dequeued or compacted away (single ownership by the queue entry).
   A slot's [gens] word packs its generation in the high bits with a
   tombstone flag in bit 0: cancellation flips the flag (the entry
   stays queued until popped or compacted, mirroring the seed engine's
   lazy-cancel design and its exact compaction policy, so the
   pending/dead/compaction counters match the oracle everywhere), and
   freeing bumps the generation, so a stale handle (cancel/is_pending
   after the event fired and the slot was recycled) compares unequal
   and becomes a safe no-op instead of aliasing a newer event. *)

type t = {
  mutable clock : Time_ns.t;
  mutable seq : int;
  q : Timerq.t;
  (* event pool, indexed by slot *)
  mutable cbs : (unit -> unit) array;
  mutable gens : int array; (* generation lsl 1, bit 0 = tombstone *)
  mutable free : int array; (* stack of free slots *)
  mutable free_len : int;
  mutable live : int;
  mutable fired : int;
  mutable compactions : int;
}

(* A handle packs [gen lsl slot_bits lor slot]: 24 bits of slot index
   (the pool would need 16M concurrent live events to outgrow it —
   [grow_pool] guards the cap) and the rest of the word for the
   generation-with-tombstone-bit value of [gens.(slot)] at schedule
   time. Validity is the same generation-equality check the old handle
   record performed; a stale or cancelled handle simply compares
   unequal. *)
type handle = int

let slot_bits = 24
let slot_mask = (1 lsl slot_bits) - 1
let nop () = ()
let initial_pool = 1024

let create () =
  {
    clock = 0;
    seq = 0;
    q = Timerq.create ();
    cbs = Array.make initial_pool nop;
    gens = Array.make initial_pool 0;
    free = Array.init initial_pool (fun i -> initial_pool - 1 - i);
    free_len = initial_pool;
    live = 0;
    fired = 0;
    compactions = 0;
  }

let now sim = sim.clock

let grow_pool sim =
  let cap = Array.length sim.cbs in
  let ncap = cap * 2 in
  if ncap > slot_mask + 1 then failwith "Sim: event pool exceeds handle width";
  let ncbs = Array.make ncap nop in
  let ngens = Array.make ncap 0 in
  let nfree = Array.make ncap 0 in
  Array.blit sim.cbs 0 ncbs 0 cap;
  Array.blit sim.gens 0 ngens 0 cap;
  sim.cbs <- ncbs;
  sim.gens <- ngens;
  sim.free <- nfree;
  for i = 0 to cap - 1 do
    nfree.(i) <- ncap - 1 - i
  done;
  sim.free_len <- cap

let alloc_slot sim =
  if sim.free_len = 0 then grow_pool sim;
  let fl = sim.free_len - 1 in
  sim.free_len <- fl;
  sim.free.(fl)

(* From pending (even g) this yields g + 2; from a tombstone (g lor 1)
   it yields g + 2 as well: always even (pending) and strictly greater
   than every generation a live handle can hold. *)
let free_slot sim slot =
  sim.gens.(slot) <- (sim.gens.(slot) lor 1) + 1;
  sim.cbs.(slot) <- nop;
  sim.free.(sim.free_len) <- slot;
  sim.free_len <- sim.free_len + 1

let schedule sim time seq callback =
  let slot = alloc_slot sim in
  sim.cbs.(slot) <- callback;
  Timerq.push sim.q ~time ~seq slot;
  sim.live <- sim.live + 1;
  slot

let at sim time callback =
  if time < sim.clock then
    invalid_arg
      (Printf.sprintf "Sim.at: time %d is before now %d" time sim.clock);
  let seq = sim.seq in
  sim.seq <- seq + 1;
  let slot = schedule sim time seq callback in
  (sim.gens.(slot) lsl slot_bits) lor slot

let after sim delay callback =
  if delay < 0 then invalid_arg "Sim.after: negative delay";
  at sim (sim.clock + delay) callback

let immediate sim callback = at sim sim.clock callback

(* Reserved-sequence scheduling: the accelerator pipeline's delivery
   batcher claims sequence numbers at submit time (one per packet, in
   exactly the order the seed engine would have assigned them) but arms
   a single timer for the whole delivery queue, re-scheduling it under
   an already-claimed seq whenever a foreign same-instant event must
   interleave. This is what keeps batched delivery bit-identical to
   one-event-per-packet. *)

let reserve_seq sim =
  let s = sim.seq in
  sim.seq <- s + 1;
  s

let at_reserved sim time ~seq callback =
  if time < sim.clock then
    invalid_arg
      (Printf.sprintf "Sim.at_reserved: time %d is before now %d" time
         sim.clock);
  if seq >= sim.seq then invalid_arg "Sim.at_reserved: seq was never reserved";
  ignore (schedule sim time seq callback)

(* Cancelled events are tombstones: they stay queued and are dropped
   lazily on pop. [dead_events] is how many tombstones the queue
   currently holds; once they outnumber live events ~2:1 (and are past a
   floor that keeps tiny sims from churning) the queue is compacted in
   place. Policy identical to the seed engine. *)
let dead_events sim = Timerq.length sim.q - sim.live

let compact_floor = 64

let maybe_compact sim =
  let dead = dead_events sim in
  if dead > compact_floor && dead > 2 * sim.live then begin
    Timerq.compact sim.q ~keep:(fun slot ->
        if sim.gens.(slot) land 1 = 0 then true
        else begin
          free_slot sim slot;
          false
        end);
    sim.compactions <- sim.compactions + 1
  end

let cancel sim h =
  let slot = h land slot_mask in
  let hgen = h lsr slot_bits in
  if sim.gens.(slot) = hgen then begin
    sim.gens.(slot) <- hgen lor 1;
    sim.live <- sim.live - 1;
    maybe_compact sim
  end

let is_pending sim h = sim.gens.(h land slot_mask) = h lsr slot_bits

(* Fire the queue head. Precondition: [Timerq.find_next] just returned
   true and the head slot is live (not a tombstone). *)
let fire_head sim slot =
  let time = Timerq.next_time sim.q in
  Timerq.drop_next sim.q;
  sim.clock <- time;
  Timerq.advance sim.q ~now:time;
  let cb = sim.cbs.(slot) in
  free_slot sim slot;
  sim.live <- sim.live - 1;
  sim.fired <- sim.fired + 1;
  cb ()

let step sim =
  let rec loop () =
    if not (Timerq.find_next sim.q) then false
    else begin
      let slot = Timerq.next_slot sim.q in
      if sim.gens.(slot) land 1 = 0 then begin
        fire_head sim slot;
        true
      end
      else begin
        (* Tombstone that escaped compaction: drop lazily, don't move
           the clock. *)
        Timerq.drop_next sim.q;
        free_slot sim slot;
        loop ()
      end
    end
  in
  loop ()

(* Drop tombstone heads so the head seen by callers is live; returns
   [true] when a live head exists. *)
let rec live_head sim =
  if not (Timerq.find_next sim.q) then false
  else begin
    let slot = Timerq.next_slot sim.q in
    if sim.gens.(slot) land 1 = 0 then true
    else begin
      Timerq.drop_next sim.q;
      free_slot sim slot;
      live_head sim
    end
  end

let run ?until sim =
  (match until with
  | None -> while live_head sim do fire_head sim (Timerq.next_slot sim.q) done
  | Some limit ->
      let continue = ref true in
      while !continue do
        if not (live_head sim) then continue := false
        else if Timerq.next_time sim.q > limit then continue := false
        else fire_head sim (Timerq.next_slot sim.q)
      done);
  match until with
  | Some limit when sim.clock < limit ->
      sim.clock <- limit;
      Timerq.advance sim.q ~now:limit
  | _ -> ()

let next_event sim =
  if live_head sim then Some (Timerq.next_time sim.q, Timerq.next_seq sim.q)
  else None

let has_event_before sim ~time ~seq =
  live_head sim
  &&
  let t = Timerq.next_time sim.q in
  t < time || (t = time && Timerq.next_seq sim.q < seq)

let pending_events sim = sim.live
let events_processed sim = sim.fired
let events_scheduled sim = sim.seq
let compactions sim = sim.compactions

(* The event engine hot path: a preallocated slot pool (callback and
   generation/state arrays recycled through a free list) feeding the
   calendar queue ({!Timerq}). Scheduling allocates nothing at all —
   no closures, no per-event heap entries on the wheel path, and the
   handle returned to the caller is a single immediate int packing the
   slot index (low bits) with the slot's generation word (high bits).
   Fire order is strict (time, seq), identical to the seed binary-heap
   engine ({!Sim_legacy}), which the differential qcheck property in
   the test suite enforces op-for-op.

   Slot lifecycle: allocated by [at], freed when its queue entry is
   dequeued or compacted away (single ownership by the queue entry).
   A slot's [gens] word packs its generation in the high bits with a
   tombstone flag in bit 0: cancellation flips the flag (the entry
   stays queued until popped or compacted, mirroring the seed engine's
   lazy-cancel design and its exact compaction policy, so the
   pending/dead/compaction counters match the oracle everywhere), and
   freeing bumps the generation, so a stale handle (cancel/is_pending
   after the event fired and the slot was recycled) compares unequal
   and becomes a safe no-op instead of aliasing a newer event. *)

type t = {
  mutable clock : Time_ns.t;
  mutable seq : int;
  q : Timerq.t;
  (* event pool, indexed by slot *)
  mutable cbs : (unit -> unit) array;
  mutable gens : int array; (* generation lsl 1, bit 0 = tombstone *)
  mutable free : int array; (* stack of free slots *)
  mutable free_len : int;
  mutable live : int;
  mutable fired : int;
  mutable compactions : int;
  (* batched bucket dispatch: when the head bucket is dense, [run]/[step]
     lift it wholesale into this scratch (stride-2: packed key, slot;
     sorted ascending by key) and dispatch from the flat array. The batch
     persists across calls — a [run ~until] can stop mid-batch — so every
     head observation merges the batch front against the queue head. *)
  mutable batch : int array;
  mutable batch_len : int; (* entries drained (pairs) *)
  mutable batch_pos : int; (* next undispatched entry *)
  mutable batch_base : int; (* absolute time of the drained bucket *)
  mutable head_in_batch : bool; (* where the last live_head found the head *)
}

(* A handle packs [gen lsl slot_bits lor slot]: 24 bits of slot index
   (the pool would need 16M concurrent live events to outgrow it —
   [grow_pool] guards the cap) and the rest of the word for the
   generation-with-tombstone-bit value of [gens.(slot)] at schedule
   time. Validity is the same generation-equality check the old handle
   record performed; a stale or cancelled handle simply compares
   unequal. *)
type handle = int

let slot_bits = 24
let slot_mask = (1 lsl slot_bits) - 1
let nop () = ()
let initial_pool = 1024

let create () =
  {
    clock = 0;
    seq = 0;
    q = Timerq.create ();
    cbs = Array.make initial_pool nop;
    gens = Array.make initial_pool 0;
    free = Array.init initial_pool (fun i -> initial_pool - 1 - i);
    free_len = initial_pool;
    live = 0;
    fired = 0;
    compactions = 0;
    batch = [||];
    batch_len = 0;
    batch_pos = 0;
    batch_base = 0;
    head_in_batch = false;
  }

let now sim = sim.clock

let grow_pool sim =
  let cap = Array.length sim.cbs in
  let ncap = cap * 2 in
  if ncap > slot_mask + 1 then failwith "Sim: event pool exceeds handle width";
  let ncbs = Array.make ncap nop in
  let ngens = Array.make ncap 0 in
  let nfree = Array.make ncap 0 in
  Array.blit sim.cbs 0 ncbs 0 cap;
  Array.blit sim.gens 0 ngens 0 cap;
  sim.cbs <- ncbs;
  sim.gens <- ngens;
  sim.free <- nfree;
  for i = 0 to cap - 1 do
    nfree.(i) <- ncap - 1 - i
  done;
  sim.free_len <- cap

let alloc_slot sim =
  if sim.free_len = 0 then grow_pool sim;
  let fl = sim.free_len - 1 in
  sim.free_len <- fl;
  sim.free.(fl)

(* From pending (even g) this yields g + 2; from a tombstone (g lor 1)
   it yields g + 2 as well: always even (pending) and strictly greater
   than every generation a live handle can hold. *)
let free_slot sim slot =
  sim.gens.(slot) <- (sim.gens.(slot) lor 1) + 1;
  sim.cbs.(slot) <- nop;
  sim.free.(sim.free_len) <- slot;
  sim.free_len <- sim.free_len + 1

let schedule sim time seq callback =
  let slot = alloc_slot sim in
  sim.cbs.(slot) <- callback;
  Timerq.push sim.q ~time ~seq slot;
  sim.live <- sim.live + 1;
  slot

let at sim time callback =
  if time < sim.clock then
    invalid_arg
      (Printf.sprintf "Sim.at: time %d is before now %d" time sim.clock);
  let seq = sim.seq in
  sim.seq <- seq + 1;
  let slot = schedule sim time seq callback in
  (sim.gens.(slot) lsl slot_bits) lor slot

let after sim delay callback =
  if delay < 0 then invalid_arg "Sim.after: negative delay";
  at sim (sim.clock + delay) callback

let immediate sim callback = at sim sim.clock callback

(* Reserved-sequence scheduling: the accelerator pipeline's delivery
   batcher claims sequence numbers at submit time (one per packet, in
   exactly the order the seed engine would have assigned them) but arms
   a single timer for the whole delivery queue, re-scheduling it under
   an already-claimed seq whenever a foreign same-instant event must
   interleave. This is what keeps batched delivery bit-identical to
   one-event-per-packet. *)

let reserve_seq sim =
  let s = sim.seq in
  sim.seq <- s + 1;
  s

let at_reserved sim time ~seq callback =
  if time < sim.clock then
    invalid_arg
      (Printf.sprintf "Sim.at_reserved: time %d is before now %d" time
         sim.clock);
  if seq >= sim.seq then invalid_arg "Sim.at_reserved: seq was never reserved";
  ignore (schedule sim time seq callback)

(* Cancelled events are tombstones: they stay queued and are dropped
   lazily on pop. [dead_events] is how many tombstones the queue
   currently holds — a drained-but-undispatched batch entry still counts
   as queued, so the count (and therefore the compaction policy below)
   stays op-for-op identical to the seed engine, which never drains.
   Once tombstones outnumber live events ~2:1 (and are past a floor that
   keeps tiny sims from churning) the queue is compacted in place. *)
let batch_remaining sim = sim.batch_len - sim.batch_pos
let dead_events sim = Timerq.length sim.q + batch_remaining sim - sim.live

let compact_floor = 64

let maybe_compact sim =
  let dead = dead_events sim in
  if dead > compact_floor && dead > 2 * sim.live then begin
    Timerq.compact sim.q ~keep:(fun slot ->
        if sim.gens.(slot) land 1 = 0 then true
        else begin
          free_slot sim slot;
          false
        end);
    (* Sweep the undispatched batch remainder too: the seed engine's
       compaction would have reached these entries in its heap, so
       leaving them would skew [dead_events] against the oracle. The
       in-place filter preserves sorted order. *)
    if batch_remaining sim > 0 then begin
      let j = ref sim.batch_pos in
      for i = sim.batch_pos to sim.batch_len - 1 do
        let slot = sim.batch.((2 * i) + 1) in
        if sim.gens.(slot) land 1 = 0 then begin
          sim.batch.(2 * !j) <- sim.batch.(2 * i);
          sim.batch.((2 * !j) + 1) <- slot;
          incr j
        end
        else free_slot sim slot
      done;
      sim.batch_len <- !j
    end;
    sim.compactions <- sim.compactions + 1
  end

let cancel sim h =
  let slot = h land slot_mask in
  let hgen = h lsr slot_bits in
  if sim.gens.(slot) = hgen then begin
    sim.gens.(slot) <- hgen lor 1;
    sim.live <- sim.live - 1;
    maybe_compact sim
  end

let is_pending sim h = sim.gens.(h land slot_mask) = h lsr slot_bits

(* --- merged head (batch front vs queue head) ----------------------------- *)

let seq_mask = (1 lsl Timerq.seq_bits) - 1
let batch_head_key sim = sim.batch.(2 * sim.batch_pos)
let batch_head_slot sim = sim.batch.((2 * sim.batch_pos) + 1)

let batch_head_time sim =
  sim.batch_base + (batch_head_key sim lsr Timerq.seq_bits)

let batch_head_seq sim = batch_head_key sim land seq_mask

(* Locate the earliest live event across the batch remainder and the
   queue, dropping tombstone heads from whichever side holds them —
   exactly when the seed engine's pop would have dropped them, which
   keeps [dead_events] (and so the compaction trigger) bit-identical.
   Events during dispatch can order before the batch remainder (a
   same-instant push, or a reserved-seq timer re-armed under an older
   seq), so this is a true two-way merge, not a fast path. *)
let rec live_head sim =
  let have_q = Timerq.find_next sim.q in
  if sim.batch_pos < sim.batch_len
     && (not have_q
        ||
        let bt = batch_head_time sim in
        let qt = Timerq.next_time sim.q in
        bt < qt || (bt = qt && batch_head_seq sim < Timerq.next_seq sim.q))
  then begin
    let slot = batch_head_slot sim in
    if sim.gens.(slot) land 1 = 0 then begin
      sim.head_in_batch <- true;
      true
    end
    else begin
      sim.batch_pos <- sim.batch_pos + 1;
      free_slot sim slot;
      live_head sim
    end
  end
  else if have_q then begin
    let slot = Timerq.next_slot sim.q in
    if sim.gens.(slot) land 1 = 0 then begin
      sim.head_in_batch <- false;
      true
    end
    else begin
      Timerq.drop_next sim.q;
      free_slot sim slot;
      live_head sim
    end
  end
  else false

(* Head accessors, valid after [live_head] returned true. *)
let head_time sim =
  if sim.head_in_batch then batch_head_time sim else Timerq.next_time sim.q

let head_seq sim =
  if sim.head_in_batch then batch_head_seq sim else Timerq.next_seq sim.q

(* Fire the merged head. Precondition: [live_head] just returned true. *)
let fire_head sim =
  let time, slot =
    if sim.head_in_batch then begin
      let time = batch_head_time sim in
      let slot = batch_head_slot sim in
      sim.batch_pos <- sim.batch_pos + 1;
      (time, slot)
    end
    else begin
      let time = Timerq.next_time sim.q in
      let slot = Timerq.next_slot sim.q in
      Timerq.drop_next sim.q;
      (time, slot)
    end
  in
  sim.clock <- time;
  Timerq.advance sim.q ~now:time;
  let cb = sim.cbs.(slot) in
  free_slot sim slot;
  sim.live <- sim.live - 1;
  sim.fired <- sim.fired + 1;
  cb ()

(* --- batched bucket dispatch --------------------------------------------- *)

(* In-place quicksort of the stride-2 (key, payload) scratch by key
   ascending, insertion sort below a small cutoff. Keys are unique
   (distinct seqs), so there are no equal-pivot runs to worry about. *)
let sort_pairs a n =
  let swap i j =
    let k = a.(2 * i) and v = a.((2 * i) + 1) in
    a.(2 * i) <- a.(2 * j);
    a.((2 * i) + 1) <- a.((2 * j) + 1);
    a.(2 * j) <- k;
    a.((2 * j) + 1) <- v
  in
  let rec qsort lo hi =
    if hi - lo < 12 then
      for i = lo + 1 to hi do
        let k = a.(2 * i) and v = a.((2 * i) + 1) in
        let j = ref (i - 1) in
        while !j >= lo && a.(2 * !j) > k do
          a.(2 * (!j + 1)) <- a.(2 * !j);
          a.((2 * (!j + 1)) + 1) <- a.((2 * !j) + 1);
          decr j
        done;
        a.(2 * (!j + 1)) <- k;
        a.((2 * (!j + 1)) + 1) <- v
      done
    else begin
      let mid = lo + ((hi - lo) / 2) in
      (* median-of-three pivot, parked at [hi] *)
      if a.(2 * mid) < a.(2 * lo) then swap lo mid;
      if a.(2 * hi) < a.(2 * lo) then swap lo hi;
      if a.(2 * hi) < a.(2 * mid) then swap mid hi;
      let pivot = a.(2 * mid) in
      swap mid hi;
      let store = ref lo in
      for i = lo to hi - 1 do
        if a.(2 * i) < pivot then begin
          if i <> !store then swap i !store;
          incr store
        end
      done;
      swap !store hi;
      qsort lo (!store - 1);
      qsort (!store + 1) hi
    end
  in
  if n > 1 then qsort 0 (n - 1)

(* Batch only dense buckets: draining and sorting a near-empty bucket
   costs more than popping it. *)
let batch_threshold = 4

(* If the (live) head sits in a dense wheel bucket and no batch is
   pending, lift the bucket into the scratch. Precondition: [live_head]
   just returned true. *)
let maybe_drain sim =
  if (not sim.head_in_batch)
     && sim.batch_pos >= sim.batch_len
     && Timerq.head_in_wheel sim.q
     && Timerq.head_bucket_len sim.q >= batch_threshold
  then begin
    let len = Timerq.head_bucket_len sim.q in
    if 2 * len > Array.length sim.batch then
      sim.batch <- Array.make (2 * len * 2) 0;
    sim.batch_base <- Timerq.head_bucket_start sim.q;
    let n = Timerq.drain_bucket sim.q sim.batch in
    sort_pairs sim.batch n;
    sim.batch_len <- n;
    sim.batch_pos <- 0;
    (* the old queue head is now the batch front, still live *)
    sim.head_in_batch <- true
  end

let step sim =
  if live_head sim then begin
    maybe_drain sim;
    fire_head sim;
    true
  end
  else false

let run ?until sim =
  (match until with
  | None ->
      while live_head sim do
        maybe_drain sim;
        fire_head sim
      done
  | Some limit ->
      let continue = ref true in
      while !continue do
        if not (live_head sim) then continue := false
        else if head_time sim > limit then continue := false
        else begin
          maybe_drain sim;
          fire_head sim
        end
      done);
  match until with
  | Some limit when sim.clock < limit ->
      sim.clock <- limit;
      Timerq.advance sim.q ~now:limit
  | _ -> ()

let next_event sim =
  if live_head sim then Some (head_time sim, head_seq sim) else None

let has_event_before sim ~time ~seq =
  live_head sim
  &&
  let t = head_time sim in
  t < time || (t = time && head_seq sim < seq)

let pending_events sim = sim.live
let events_processed sim = sim.fired
let events_scheduled sim = sim.seq
let compactions sim = sim.compactions

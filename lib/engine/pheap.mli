(** A polymorphic binary min-heap keyed by [(int, int)] pairs.

    The heap orders elements by a primary integer key (the simulated
    timestamp) and breaks ties with a secondary key (an insertion sequence
    number), guaranteeing deterministic FIFO ordering of same-time events. *)

type 'a t

val create : unit -> 'a t
(** [create ()] is an empty heap. *)

val length : 'a t -> int
(** [length h] is the number of elements currently stored. *)

val is_empty : 'a t -> bool

val push : 'a t -> key:int -> seq:int -> 'a -> unit
(** [push h ~key ~seq v] inserts [v] with primary key [key] and tie-break
    [seq]. *)

val pop : 'a t -> (int * int * 'a) option
(** [pop h] removes and returns the minimum element as [(key, seq, v)], or
    [None] when empty. *)

val peek : 'a t -> (int * int * 'a) option
(** [peek h] is the minimum element without removing it. *)

(** {2 Non-allocating root access}

    Hot paths (the calendar queue's overflow tier) read the root without
    boxing an option. All four raise [Invalid_argument] on an empty
    heap; guard with {!is_empty}. *)

val top_key : 'a t -> int
val top_seq : 'a t -> int
val top_value : 'a t -> 'a

val drop : 'a t -> unit
(** [drop h] removes the minimum element without returning it. *)

val clear : 'a t -> unit

val compact : 'a t -> keep:('a -> bool) -> unit
(** [compact h ~keep] removes every element whose value fails [keep] and
    restores the heap invariant in O(n). Surviving elements retain their
    original [(key, seq)] pair, so deterministic same-key ordering is
    preserved. *)

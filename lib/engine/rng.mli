(** Deterministic, splittable pseudo-random number generation.

    Every stochastic simulator component draws from its own named stream
    derived from a single root seed, so adding a component never perturbs
    the draws seen by the others and every experiment is reproducible
    bit-for-bit from its seed. The core generator is xoshiro256++ seeded by
    splitmix64. *)

type t
(** A generator state. *)

val create : seed:int -> t
(** [create ~seed] is a root generator derived from [seed]. *)

val split : t -> string -> t
(** [split rng name] derives an independent stream identified by [name].
    The derivation depends only on the parent's seed material and [name],
    not on how many values the parent has produced. *)

val bits64 : t -> int64
(** [bits64 rng] is the next raw 64-bit output. *)

val fill_array : t -> int64 array -> unit
(** [fill_array rng a] fills [a] with the next [Array.length a] raw
    outputs in stream order: [a.(i)] is exactly what the [i]-th
    subsequent {!bits64} call would have returned. Hot cells hoist their
    per-event draws into one per-batch prefill (amortising the generator
    state updates over the batch) without perturbing the stream. *)

val int : t -> int -> int
(** [int rng n] is uniform in [\[0, n)]. Raises [Invalid_argument] when
    [n <= 0]. *)

val int_range : t -> lo:int -> hi:int -> int
(** [int_range rng ~lo ~hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float rng x] is uniform in [\[0, x)]. *)

val bool : t -> bool

val bernoulli : t -> p:float -> bool
(** [bernoulli rng ~p] is [true] with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** [shuffle rng a] permutes [a] in place uniformly (Fisher–Yates). *)

type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable total : float;
  mutable lo : float;
  mutable hi : float;
}

let create () =
  { n = 0; mean = 0.0; m2 = 0.0; total = 0.0; lo = infinity; hi = neg_infinity }

let clear s =
  s.n <- 0;
  s.mean <- 0.0;
  s.m2 <- 0.0;
  s.total <- 0.0;
  s.lo <- infinity;
  s.hi <- neg_infinity

let add s x =
  s.n <- s.n + 1;
  s.total <- s.total +. x;
  let delta = x -. s.mean in
  s.mean <- s.mean +. (delta /. float_of_int s.n);
  s.m2 <- s.m2 +. (delta *. (x -. s.mean));
  if x < s.lo then s.lo <- x;
  if x > s.hi then s.hi <- x

let add_int s x = add s (float_of_int x)
let count s = s.n
let sum s = s.total
let mean s = if s.n = 0 then 0.0 else s.mean
let variance s = if s.n < 2 then 0.0 else s.m2 /. float_of_int (s.n - 1)
let stddev s = sqrt (variance s)

let min s = if s.n = 0 then invalid_arg "Stats.min: empty" else s.lo
let max s = if s.n = 0 then invalid_arg "Stats.max: empty" else s.hi

let merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else begin
    let n = a.n + b.n in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. float_of_int b.n /. float_of_int n) in
    let m2 =
      a.m2 +. b.m2
      +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. float_of_int n)
    in
    {
      n;
      mean;
      m2;
      total = a.total +. b.total;
      lo = Float.min a.lo b.lo;
      hi = Float.max a.hi b.hi;
    }
  end

let pp fmt s =
  if s.n = 0 then Format.fprintf fmt "n=0"
  else
    Format.fprintf fmt "n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f" s.n (mean s)
      (stddev s) s.lo s.hi

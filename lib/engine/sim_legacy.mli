(** The seed binary-heap simulator, kept verbatim as the differential
    oracle for {!Sim}.

    This is the pre-calendar-queue engine: one {!Pheap} entry per event,
    one handle record per event, tombstone cancellation with the same
    compaction policy {!Sim} implements. It exists for two reasons: the
    qcheck differential property in the test suite drives random timer
    programs through both engines and asserts identical fire order,
    clocks and counters; and the engine benchmark measures both on the
    same op mix so `BENCH_ENGINE.json` records the speedup on every run.
    Production code must use {!Sim}. *)

type t
(** A simulator instance. *)

type handle
(** A handle on a scheduled event, usable to cancel it. *)

val create : unit -> t
(** [create ()] is a fresh simulator with the clock at time 0. *)

val now : t -> Time_ns.t
(** [now sim] is the current simulated time. *)

val at : t -> Time_ns.t -> (unit -> unit) -> handle
(** [at sim time f] schedules [f] to run at absolute [time]. Scheduling in
    the past raises [Invalid_argument]. *)

val after : t -> Time_ns.t -> (unit -> unit) -> handle
(** [after sim delay f] schedules [f] to run [delay] from now. *)

val immediate : t -> (unit -> unit) -> handle
(** [immediate sim f] schedules [f] at the current time, after all callbacks
    already queued for this instant. *)

val cancel : handle -> unit
(** [cancel h] prevents the event from firing. Cancelling an event that has
    already fired or been cancelled is a no-op. *)

val is_pending : handle -> bool
(** [is_pending h] is [true] iff the event has neither fired nor been
    cancelled. *)

val fire_time : handle -> Time_ns.t
(** [fire_time h] is the absolute time the event was scheduled for. *)

val run : ?until:Time_ns.t -> t -> unit
(** [run ?until sim] processes events in time order until the queue is
    empty, or until the clock would pass [until]. When stopped by [until],
    the clock is left exactly at [until]. *)

val step : t -> bool
(** [step sim] processes the single next event. Returns [false] when the
    queue is empty. *)

val pending_events : t -> int
(** [pending_events sim] is the number of live (uncancelled) events. *)

val events_processed : t -> int
(** [events_processed sim] counts events fired since creation, a useful
    progress and complexity metric. *)

val events_scheduled : t -> int
(** [events_scheduled sim] counts sequence numbers issued since
    creation. *)

val dead_events : t -> int
(** [dead_events sim] is the number of cancelled tombstones currently
    sitting in the event heap. Cancellation is lazy; tombstones are swept
    either on pop or by compaction when they exceed ~2x the live count. *)

val compactions : t -> int
(** [compactions sim] counts in-place heap rebuilds triggered by tombstone
    accumulation since creation. *)

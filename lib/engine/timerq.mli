(** Calendar timer queue: a 4096-bucket, 512 ns-wide timing wheel with
    the binary heap ({!Pheap}) as an overflow tier for timers beyond the
    ~2.1 ms horizon.

    Payloads are bare ints (the {!Sim} event pool's slot indices); keys
    are (time, seq) pairs and entries dequeue in strict lexicographic
    (time, seq) order — exactly the order a global binary heap keyed the
    same way would produce, which is what keeps every experiment
    byte-identical to the seed engine. Within a bucket, (offset, seq) is
    packed into one int, so the hot push/pop path allocates nothing and
    compares single integers.

    The queue does not track its owner's clock; the owner must call
    {!advance} whenever its clock moves forward so the wheel can rotate
    and drain newly-in-horizon overflow timers. Pushes must never be
    earlier than the last advanced time. *)

type t

val create : unit -> t

val length : t -> int
(** Total queued entries, live and tombstoned alike. *)

val is_empty : t -> bool

val push : t -> time:int -> seq:int -> int -> unit
(** [push t ~time ~seq slot] enqueues payload [slot]. [time] must be at
    or after the last {!advance}d time; [seq] must fit in 53 bits and be
    unique (it is the deterministic tie-break). *)

val advance : t -> now:int -> unit
(** [advance t ~now] rotates the wheel to [now]'s bucket. Call after
    every clock movement and before the next [push]. Monotone; earlier
    times are ignored. *)

val find_next : t -> bool
(** [find_next t] locates the minimum entry, returning [false] when the
    queue is empty. On [true], {!next_time}, {!next_seq}, {!next_slot}
    and {!drop_next} refer to that entry until the next mutation. *)

val next_time : t -> int
val next_seq : t -> int
val next_slot : t -> int

val drop_next : t -> unit
(** Remove the entry located by the last {!find_next}. *)

(** {2 Batched bucket drain}

    When the head bucket is dense, the owner can lift it out wholesale
    and dispatch from a flat scratch array instead of paying a per-entry
    heap pop. All three calls assume the last {!find_next} returned
    [true] with the minimum in the wheel ({!head_in_wheel}) and no
    mutation since. *)

val seq_bits : int
(** Bits of the packed in-bucket key holding the sequence number; the
    time offset from {!head_bucket_start} sits above them. *)

val head_in_wheel : t -> bool
(** Whether the last {!find_next} located the minimum in the wheel (as
    opposed to the overflow heap). *)

val head_bucket_len : t -> int
(** Entries in the head bucket. *)

val head_bucket_start : t -> int
(** Absolute time of the head bucket's first nanosecond. *)

val drain_bucket : t -> int array -> int
(** [drain_bucket t dst] moves every head-bucket entry into [dst]
    (stride-2: packed key, payload; unsorted) and returns the entry
    count. [dst] must hold [2 * head_bucket_len t] ints. Sorting [dst]
    by key ascending restores exact (time, seq) dequeue order. *)

val compact : t -> keep:(int -> bool) -> unit
(** [compact t ~keep] drops every entry whose payload fails [keep],
    preserving (time, seq) order of survivors. [keep] is called exactly
    once per entry and may side-effect (the owner frees pool slots in
    it). *)

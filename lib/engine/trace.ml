type record = {
  time : Time_ns.t;
  core : int;
  category : string;
  message : string;
}

let no_core = -1

(* Stable category names; DESIGN.md §Observability documents the payloads. *)
module Cat = struct
  let core_state = "core.state"
  let state_dp = "dp"
  let state_vcpu = "vcpu"
  let state_switch = "switch"
  let state_idle = "idle"

  let sched_place = "sched.place"
  let sched_evict = "sched.evict"
  let sched_slice = "sched.slice"
  let sched_rotate = "sched.rotate"
  let sched_halt = "sched.halt"
  let sched_rescue = "sched.rescue"
  let sched_borrow = "sched.borrow"

  let dp_yield = "dp.yield"
  let dp_resume = "dp.resume"
  let dp_park = "dp.park"
  let dp_wake = "dp.wake"

  let probe_hw = "probe.hw"
  let probe_sw = "probe.sw"

  let fault = "fault"
  let recovery = "recovery"
  let degraded = "degraded"
  let overload = "overload"
  let churn = "churn"
  let fleet = "fleet"

  let softirq = "softirq"

  let kernel_steal = "kernel.steal"
  let kernel_migrate = "kernel.migrate"
  let kernel_reclaim = "kernel.reclaim"
end

type t = {
  mutable on : bool;
  limit : int;
  buf : record Queue.t;
  mutable dropped : int;
}

let create ?(limit = 100_000) ?(enabled = false) () =
  { on = enabled; limit; buf = Queue.create (); dropped = 0 }

let enabled t = t.on
let set_enabled t v = t.on <- v

let emit t ~time ?(core = no_core) ~category message =
  if t.on then begin
    Queue.push { time; core; category; message } t.buf;
    if Queue.length t.buf > t.limit then begin
      ignore (Queue.pop t.buf);
      t.dropped <- t.dropped + 1
    end
  end

(* A sink that swallows everything: the disabled branch of [emitf] must not
   share mutable formatter state with anyone (in particular not
   [Format.str_formatter], whose buffer is global). *)
let null_formatter = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

let emitf t ~time ?core ~category fmt =
  if t.on then
    Format.kasprintf (fun message -> emit t ~time ?core ~category message) fmt
  else Format.ikfprintf (fun _ -> ()) null_formatter fmt

let records t = List.of_seq (Queue.to_seq t.buf)

let iter t f = Queue.iter f t.buf

let by_category t category =
  List.filter (fun r -> r.category = category) (records t)

let by_core t core = List.filter (fun r -> r.core = core) (records t)

let length t = Queue.length t.buf
let dropped t = t.dropped

let clear t =
  Queue.clear t.buf;
  t.dropped <- 0

let pp fmt t =
  List.iter
    (fun r ->
      if r.core = no_core then
        Format.fprintf fmt "%12s [%s] %s@." (Time_ns.to_string r.time)
          r.category r.message
      else
        Format.fprintf fmt "%12s core%-2d [%s] %s@." (Time_ns.to_string r.time)
          r.core r.category r.message)
    (records t)

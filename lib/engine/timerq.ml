(* A calendar timer queue: a ring of 2^wheel_bits buckets, each covering
   2^slot_bits ns, backed by the binary heap ({!Pheap}) as an overflow
   tier for timers beyond the wheel horizon (~2.1 ms). The dominant
   near-future timer pattern (slice timers, hardware windows, poll
   periods) lands in the wheel at O(1) amortized cost on cache-friendly
   int arrays; the rare far-future timer (watchdogs, think times) pays
   the heap's O(log n).

   Payloads are bare ints (pool slots owned by {!Sim}); inside a bucket
   an entry is a packed key int — (time - bucket_start) above bit 53,
   the insertion sequence number in the low 53 bits — so same-bucket
   ordering is one integer comparison and pushes allocate nothing. Key
   and payload sit adjacent in one stride-2 array (entry j is
   [buf.(2j), buf.(2j+1)]): a sift touches half the cache lines the
   parallel-arrays layout would.

   Determinism contract: entries dequeue in strict (time, seq) order,
   identical to a global (key, seq) binary heap. The wheel cannot
   reorder: bucket index is a pure function of time, the packed key
   restores (offset, seq) lexicographic order within a bucket, and the
   overflow tier only holds entries strictly beyond every wheel entry.

   Aliasing invariant: every queued entry's absolute bucket lies in
   [base, base + n_buckets), so ring slot (bucket mod n_buckets) is
   unambiguous. [base] is the clock's bucket and is advanced only by
   {!advance} (the owner calls it whenever its clock moves); pushes are
   always at or after the clock, so they can never land behind [base]. *)

let slot_bits = 5 (* bucket width: 32 ns *)
let wheel_bits = 16 (* 65536 buckets; horizon = 65536 * 32 ns ~ 2.1 ms *)
let n_buckets = 1 lsl wheel_bits
let bucket_mask = n_buckets - 1
let seq_bits = 53
let seq_mask = (1 lsl seq_bits) - 1

(* Occupancy bitmap: 32 buckets per l0 word, 32 l0 words per l1 bit, so
   finding the next nonempty bucket is a couple of word reads instead of
   a linear [blen] scan — what keeps fine-grained buckets affordable
   when events are sparse (a 1 ms gap is ~31k buckets at 32 ns each). *)
let word_bits = 5 (* 32 bucket bits per l0 word *)
let word_mask = (1 lsl word_bits) - 1
let l0_words = n_buckets lsr word_bits
let l1_words = (l0_words lsr word_bits) + (if l0_words land word_mask = 0 then 0 else 1)

type t = {
  bufs : int array array; (* per-bucket stride-2 min-heaps: key, payload *)
  blen : int array; (* entries (pairs), not ints *)
  l0 : int array; (* bit per ring bucket: nonempty *)
  l1 : int array; (* bit per l0 word: nonzero *)
  mutable base : int; (* absolute bucket of the owner's clock *)
  mutable cursor : int; (* no nonempty bucket lies below this *)
  mutable wheel_count : int;
  mutable next_in_wheel : bool; (* where find_next located the minimum *)
  overflow : int Pheap.t;
}

let create () =
  {
    bufs = Array.make n_buckets [||];
    blen = Array.make n_buckets 0;
    l0 = Array.make l0_words 0;
    l1 = Array.make l1_words 0;
    base = 0;
    cursor = 0;
    wheel_count = 0;
    next_in_wheel = true;
    overflow = Pheap.create ();
  }

let length t = t.wheel_count + Pheap.length t.overflow
let is_empty t = length t = 0

(* --- occupancy bitmap ----------------------------------------------------- *)

(* Count-trailing-zeros for a nonzero value whose lowest set bit is below
   2^36: isolate the bit, then use that powers of two are distinct mod 37
   (2 is a primitive root of the prime 37). *)
let ctz_table =
  let t = Array.make 37 0 in
  for i = 0 to 35 do
    t.((1 lsl i) mod 37) <- i
  done;
  t

let ctz x = ctz_table.((x land -x) mod 37)

let mark_nonempty t s =
  let w = s lsr word_bits in
  t.l0.(w) <- t.l0.(w) lor (1 lsl (s land word_mask));
  t.l1.(w lsr word_bits) <-
    t.l1.(w lsr word_bits) lor (1 lsl (w land word_mask))

let mark_empty t s =
  let w = s lsr word_bits in
  let v = t.l0.(w) land lnot (1 lsl (s land word_mask)) in
  t.l0.(w) <- v;
  if v = 0 then
    t.l1.(w lsr word_bits) <-
      t.l1.(w lsr word_bits) land lnot (1 lsl (w land word_mask))

(* Ring index of the first nonempty bucket at or after ring index [cr],
   searching circularly. Caller guarantees the wheel is nonempty. *)
let next_nonempty t cr =
  let w0 = cr lsr word_bits in
  let m = t.l0.(w0) lsr (cr land word_mask) in
  if m <> 0 then cr + ctz m
  else begin
    (* No bucket in the rest of this word: jump via l1 to the next l0
       word with a set bit, circularly. *)
    let u0 = w0 lsr word_bits in
    (* Note: OCaml's shift operators are right-associative, so the outer
       [lsr 1] (strictly-after words only) needs the parens. *)
    let mu = (t.l1.(u0) lsr (w0 land word_mask)) lsr 1 in
    let w =
      if mu <> 0 then (w0 + 1 + ctz mu) land (l0_words - 1)
      else begin
        let u = ref (if u0 + 1 = l1_words then 0 else u0 + 1) in
        while t.l1.(!u) = 0 do
          u := if !u + 1 = l1_words then 0 else !u + 1
        done;
        (!u lsl word_bits) + ctz t.l1.(!u)
      end
    in
    (w lsl word_bits) + ctz t.l0.(w)
  end

(* --- per-bucket min-heaps on packed ints -------------------------------- *)

let bucket_sift_up buf i0 =
  let i = ref i0 in
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) / 2 in
    if buf.(2 * !i) < buf.(2 * p) then begin
      let k = buf.(2 * p) and s = buf.((2 * p) + 1) in
      buf.(2 * p) <- buf.(2 * !i);
      buf.((2 * p) + 1) <- buf.((2 * !i) + 1);
      buf.(2 * !i) <- k;
      buf.((2 * !i) + 1) <- s;
      i := p
    end
    else continue := false
  done

let bucket_sift_down buf len start =
  let i = ref start in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let m = ref !i in
    if l < len && buf.(2 * l) < buf.(2 * !m) then m := l;
    if r < len && buf.(2 * r) < buf.(2 * !m) then m := r;
    if !m <> !i then begin
      let k = buf.(2 * !m) and s = buf.((2 * !m) + 1) in
      buf.(2 * !m) <- buf.(2 * !i);
      buf.((2 * !m) + 1) <- buf.((2 * !i) + 1);
      buf.(2 * !i) <- k;
      buf.((2 * !i) + 1) <- s;
      i := !m
    end
    else continue := false
  done

let wheel_push t b ~time ~seq slot =
  let s = b land bucket_mask in
  let len = t.blen.(s) in
  let buf =
    let buf = t.bufs.(s) in
    if 2 * len = Array.length buf then begin
      let ncap = if len = 0 then 16 else 4 * len in
      let nb = Array.make ncap 0 in
      Array.blit buf 0 nb 0 (2 * len);
      t.bufs.(s) <- nb;
      nb
    end
    else buf
  in
  let packed = ((time - (b lsl slot_bits)) lsl seq_bits) lor seq in
  buf.(2 * len) <- packed;
  buf.((2 * len) + 1) <- slot;
  t.blen.(s) <- len + 1;
  if len = 0 then mark_nonempty t s;
  bucket_sift_up buf len;
  t.wheel_count <- t.wheel_count + 1;
  if b < t.cursor then t.cursor <- b

let push t ~time ~seq slot =
  if seq land seq_mask <> seq then
    invalid_arg "Timerq.push: seq out of packable range";
  let b = time lsr slot_bits in
  if b - t.base < n_buckets then wheel_push t b ~time ~seq slot
  else Pheap.push t.overflow ~key:time ~seq slot

(* --- clock advance and overflow drain ----------------------------------- *)

let advance t ~now =
  let nb = now lsr slot_bits in
  if nb > t.base then begin
    t.base <- nb;
    if t.cursor < nb then t.cursor <- nb;
    (* The horizon moved: pull every overflow timer that now fits. The
       drained buckets are exactly the ring slots just vacated behind
       the new base, so the aliasing invariant is preserved. *)
    let horizon = (nb + n_buckets) lsl slot_bits in
    while (not (Pheap.is_empty t.overflow)) && Pheap.top_key t.overflow < horizon
    do
      let time = Pheap.top_key t.overflow in
      let seq = Pheap.top_seq t.overflow in
      let slot = Pheap.top_value t.overflow in
      Pheap.drop t.overflow;
      wheel_push t (time lsr slot_bits) ~time ~seq slot
    done
  end

(* --- minimum access ------------------------------------------------------ *)

(* Wheel entries are < base + horizon, overflow entries are >= it, so the
   wheel always wins when nonempty. The cursor persists across calls:
   repeated peeks are O(1), and total scan work over a run is bounded by
   elapsed-time / bucket-width, independent of event count. *)
let find_next t =
  if t.wheel_count > 0 then begin
    let cr = t.cursor land bucket_mask in
    if t.blen.(cr) = 0 then begin
      let r = next_nonempty t cr in
      t.cursor <- t.cursor + ((r - cr) land bucket_mask)
    end;
    t.next_in_wheel <- true;
    true
  end
  else if not (Pheap.is_empty t.overflow) then begin
    t.next_in_wheel <- false;
    true
  end
  else false

(* The next_* accessors and [drop_next] assume the last [find_next]
   returned true and nothing was pushed, dropped or advanced since. *)

let next_time t =
  if t.next_in_wheel then
    (t.cursor lsl slot_bits) + (t.bufs.(t.cursor land bucket_mask).(0) lsr seq_bits)
  else Pheap.top_key t.overflow

let next_seq t =
  if t.next_in_wheel then t.bufs.(t.cursor land bucket_mask).(0) land seq_mask
  else Pheap.top_seq t.overflow

let next_slot t =
  if t.next_in_wheel then t.bufs.(t.cursor land bucket_mask).(1)
  else Pheap.top_value t.overflow

let drop_next t =
  if t.next_in_wheel then begin
    let s = t.cursor land bucket_mask in
    let buf = t.bufs.(s) in
    let len = t.blen.(s) - 1 in
    t.blen.(s) <- len;
    if len > 0 then begin
      buf.(0) <- buf.(2 * len);
      buf.(1) <- buf.((2 * len) + 1);
      bucket_sift_down buf len 0
    end
    else mark_empty t s;
    t.wheel_count <- t.wheel_count - 1
  end
  else Pheap.drop t.overflow

(* --- batched bucket drain ------------------------------------------------ *)

(* The head-bucket accessors assume the last [find_next] returned true
   and nothing was pushed, dropped or advanced since; they let the owner
   decide whether the head bucket is dense enough to be worth draining
   in one pass instead of popping entry by entry. *)

let head_in_wheel t = t.next_in_wheel
let head_bucket_len t = t.blen.(t.cursor land bucket_mask)
let head_bucket_start t = t.cursor lsl slot_bits

(* Move the whole head bucket out of the wheel into [dst] (stride-2:
   packed key, payload — unsorted heap order; the caller sorts by key,
   which restores exact (time, seq) dequeue order since all entries
   share the bucket's time base). [dst] must hold 2 * head_bucket_len
   ints. One bitmap clear and one counter update replace per-entry
   sift-downs. *)
let drain_bucket t dst =
  let s = t.cursor land bucket_mask in
  let len = t.blen.(s) in
  Array.blit t.bufs.(s) 0 dst 0 (2 * len);
  t.blen.(s) <- 0;
  mark_empty t s;
  t.wheel_count <- t.wheel_count - len;
  len

(* --- tombstone compaction ------------------------------------------------ *)

let compact t ~keep =
  for s = 0 to n_buckets - 1 do
    let len = t.blen.(s) in
    if len > 0 then begin
      let buf = t.bufs.(s) in
      let j = ref 0 in
      for i = 0 to len - 1 do
        if keep buf.((2 * i) + 1) then begin
          buf.(2 * !j) <- buf.(2 * i);
          buf.((2 * !j) + 1) <- buf.((2 * i) + 1);
          incr j
        end
      done;
      t.wheel_count <- t.wheel_count - (len - !j);
      t.blen.(s) <- !j;
      if !j = 0 then mark_empty t s;
      (* Floyd heapify restores the per-bucket invariant in O(len). *)
      for i = (!j / 2) - 1 downto 0 do
        bucket_sift_down buf !j i
      done
    end
  done;
  Pheap.compact t.overflow ~keep

(* The HdrHistogram-style log-linear bucket layout shared by
   [Taichi_engine.Histogram] and [Taichi_metrics.Quantile]: values below
   2 * sub_count map one-to-one; above that, each power of two is split
   into [sub_count] sub-buckets (sub_bucket_bits = 5). Extracted so the
   two histogram implementations cannot drift apart — they used to carry
   hand-copied duplicates of these functions. *)

let sub_bits = 5
let sub_count = 1 lsl sub_bits (* 32 *)

(* Index of the bucket containing v (v >= 0). *)
let index_of v =
  if v < 2 * sub_count then v
  else
    (* Position of the highest set bit. *)
    let rec highest_bit x acc =
      if x <= 1 then acc else highest_bit (x lsr 1) (acc + 1)
    in
    let h = highest_bit v 0 in
    let shift = h - sub_bits in
    let sub = (v lsr shift) - sub_count in
    (((h - sub_bits) + 1) * sub_count) + sub

(* Upper bound of the values mapped to bucket [i]. For the topmost
   buckets the exact bound exceeds the native int range — the shifted
   (sub_count + sub + 1) would wrap — so it saturates at [max_int],
   keeping upper_of (index_of v) >= v over the full non-negative int
   range. *)
let upper_of i =
  if i < 2 * sub_count then i
  else
    let block = (i / sub_count) - 1 in
    let sub = i mod sub_count in
    if block >= Sys.int_size - sub_bits - 2 then max_int
    else ((sub_count + sub + 1) lsl block) - 1

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64: used to expand a seed into xoshiro state and to hash stream
   names into seed material. *)
let splitmix_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let of_seed64 seed64 =
  let st = ref seed64 in
  let s0 = splitmix_next st in
  let s1 = splitmix_next st in
  let s2 = splitmix_next st in
  let s3 = splitmix_next st in
  (* xoshiro must not start from the all-zero state. *)
  if Int64.logor (Int64.logor s0 s1) (Int64.logor s2 s3) = 0L then
    { s0 = 1L; s1 = 2L; s2 = 3L; s3 = 4L }
  else { s0; s1; s2; s3 }

let create ~seed = of_seed64 (Int64.of_int seed)

(* FNV-1a over the name, mixed with the parent's current state so that
   distinct parents with equal names still diverge. *)
let split parent name =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    name;
  let material =
    Int64.logxor !h (Int64.add parent.s0 (Int64.mul 0x9E3779B97F4A7C15L parent.s2))
  in
  of_seed64 material

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 r =
  let open Int64 in
  let result = add (rotl (add r.s0 r.s3) 23) r.s0 in
  let t = shift_left r.s1 17 in
  r.s2 <- logxor r.s2 r.s0;
  r.s3 <- logxor r.s3 r.s1;
  r.s1 <- logxor r.s1 r.s2;
  r.s0 <- logxor r.s0 r.s3;
  r.s2 <- logxor r.s2 t;
  r.s3 <- rotl r.s3 45;
  result

let fill_array r a =
  for i = 0 to Array.length a - 1 do
    a.(i) <- bits64 r
  done

let nonneg r = Int64.to_int (Int64.shift_right_logical (bits64 r) 2)

let int r n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. The rejection limit only
     depends on [n]; computing it once instead of per retry keeps the
     division out of the redraw loop. *)
  let limit = 0x3FFFFFFFFFFFFFFF / n * n in
  let rec draw () =
    let v = nonneg r in
    if v < limit then v mod n else draw ()
  in
  draw ()

let int_range r ~lo ~hi =
  if hi < lo then invalid_arg "Rng.int_range: hi < lo";
  lo + int r (hi - lo + 1)

let float r x =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 r) 11) in
  x *. (v /. 9007199254740992.0) (* 2^53 *)

let bool r = Int64.logand (bits64 r) 1L = 1L
let bernoulli r ~p = float r 1.0 < p

let shuffle r a =
  for i = Array.length a - 1 downto 1 do
    let j = int r (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

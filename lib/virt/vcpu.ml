open Taichi_engine

type placement = Unplaced | On_core of int

type t = {
  vid : int;
  kcpu : int;
  mutable tenant : int;
  mutable cls_rank : int;
  mutable placement : placement;
  mutable slice : Time_ns.t;
  mutable slice_started : Time_ns.t;
  mutable exits : (Vmexit.t * int) list;
  mutable total_backed : Time_ns.t;
  mutable last_placed : Time_ns.t;
}

let create ~vid ~kcpu ~initial_slice =
  {
    vid;
    kcpu;
    tenant = 0;
    cls_rank = 1;
    placement = Unplaced;
    slice = initial_slice;
    slice_started = 0;
    exits = [];
    total_backed = 0;
    last_placed = 0;
  }

let record_exit t reason =
  let rec bump = function
    | [] -> [ (reason, 1) ]
    | (r, n) :: rest when r = reason -> (r, n + 1) :: rest
    | pair :: rest -> pair :: bump rest
  in
  t.exits <- bump t.exits

let exit_count t reason =
  match List.assoc_opt reason t.exits with Some n -> n | None -> 0

let total_exits t = List.fold_left (fun acc (_, n) -> acc + n) 0 t.exits

let is_placed t = t.placement <> Unplaced
let core t = match t.placement with On_core c -> Some c | Unplaced -> None

let pp fmt t =
  Format.fprintf fmt "vcpu<%d kcpu=%d %s slice=%s exits=%d>" t.vid t.kcpu
    (match t.placement with
    | Unplaced -> "unplaced"
    | On_core c -> Printf.sprintf "core%d" c)
    (Time_ns.to_string t.slice)
    (total_exits t)

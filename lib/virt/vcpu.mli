(** Virtual CPU contexts.

    A vCPU wraps one kernel logical CPU (registered through hotplug) and
    tracks the virtualization-level state Tai Chi's scheduler manages:
    where the vCPU is placed, its current time slice, and exit statistics.
    The hardware-automated state transitions of VT-x-style virtualization
    are modeled by the {!Cost_model}. *)

open Taichi_engine

type placement =
  | Unplaced  (** not running anywhere; makes no progress *)
  | On_core of int  (** backed by the given physical core *)

type t = {
  vid : int;  (** vCPU index within Tai Chi *)
  kcpu : int;  (** kernel logical CPU id this vCPU backs *)
  mutable tenant : int;  (** owning tenant id; 0 = the implicit tenant *)
  mutable cls_rank : int;
      (** admission-class rank for the scheduler's class stage
          (0 = highest priority; default 1 = standard) *)
  mutable placement : placement;
  mutable slice : Time_ns.t;  (** current adaptive time slice *)
  mutable slice_started : Time_ns.t;
  mutable exits : (Vmexit.t * int) list;  (** exit-reason histogram *)
  mutable total_backed : Time_ns.t;  (** cumulative backed time *)
  mutable last_placed : Time_ns.t;
}

val create : vid:int -> kcpu:int -> initial_slice:Time_ns.t -> t

val record_exit : t -> Vmexit.t -> unit
val exit_count : t -> Vmexit.t -> int
val total_exits : t -> int

val is_placed : t -> bool
val core : t -> int option
(** Physical core currently backing the vCPU, if any. *)

val pp : Format.formatter -> t -> unit

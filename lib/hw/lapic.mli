(** A per-CPU local interrupt controller.

    Each logical CPU (physical or Tai-Chi-registered virtual) owns a LAPIC
    identified by an APIC id. Vectors map to handlers; injection delivers
    immediately when the LAPIC is unmasked and queues otherwise, draining in
    FIFO order on unmask — the behaviour the hardware workload probe relies
    on when it targets a CPU whose data-plane service masked interrupts
    (P-state). *)

type t

type vector = int

val create : apic_id:int -> t
val apic_id : t -> int

val register_handler : t -> vector -> (unit -> unit) -> unit
(** [register_handler t v f] installs [f] for vector [v], replacing any
    previous handler. *)

val inject : t -> vector -> unit
(** [inject t v] delivers vector [v]: runs the handler now when unmasked,
    otherwise appends to the pending queue. An injection with no registered
    handler counts as spurious. *)

val masked : t -> bool

val set_masked : t -> bool -> unit
(** [set_masked t false] drains pending vectors in arrival order. *)

val set_loss_filter : t -> (vector -> bool) option -> unit
(** [set_loss_filter t f] installs (or removes) a fault-injection predicate
    consulted on every {!inject}: when [f v] is [true] the vector is lost —
    neither delivered nor queued — and counted in {!lost_count}. [None]
    (the default) loses nothing. *)

val pending_count : t -> int
val delivered_count : t -> int
val spurious_count : t -> int

val lost_count : t -> int
(** Vectors discarded by the loss filter since creation. *)

(** The SmartNIC machine: physical cores, the IPI fabric and shared models.

    The machine owns the physical resources every other layer builds on. It
    routes inter-processor interrupts between LAPICs — with an optional
    interceptor hook, which is exactly where Tai Chi's unified IPI
    orchestrator plugs in (§4.2 intercepts [x2apic_send_IPI]). *)

open Taichi_engine

type t

type config = {
  physical_cores : int;  (** general-purpose SmartNIC cores, e.g. 12 *)
  ipi_latency : Time_ns.t;  (** fabric delivery latency of one IPI *)
}

val default_config : config
(** 12 cores (Table 4), 500 ns IPI delivery. *)

val create : ?config:config -> ?trace:Trace.t -> Sim.t -> t
(** [create ?config ?trace sim] assembles a machine. When [trace] is
    omitted, a disabled 2M-record trace is created — callers flip it on via
    [Trace.set_enabled (Machine.trace m) true] to start collecting events. *)

val sim : t -> Sim.t
val config : t -> config
val physical_cores : t -> int
val accounting : t -> Accounting.t
val cache : t -> Cache_model.t

val trace : t -> Trace.t
(** The machine-wide event trace every subsystem emits into (stable
    categories documented in DESIGN.md §Observability). *)

val counters : t -> Counters.t
(** The machine-wide named-counter registry. *)

val core_state : t -> Core_state.t
(** The authoritative per-core occupancy state machine. All occupancy
    changes anywhere in the stack go through
    [Core_state.transition (Machine.core_state m)]; the machine's built-in
    subscriber derives the [core.state] trace events (deduplicated per
    occupancy bucket) and the [core_state.transitions] /
    [core_state.illegal] counters from it. *)

val register_lapic : t -> Lapic.t -> unit
(** [register_lapic t lapic] makes the LAPIC addressable by its APIC id.
    Raises [Invalid_argument] on a duplicate id. *)

val lapic : t -> apic_id:int -> Lapic.t
(** Raises [Not_found] for an unregistered id. *)

val lapic_opt : t -> apic_id:int -> Lapic.t option

type route = Deliver | Consumed
(** Interceptor outcome: [Deliver] lets the fabric deliver normally;
    [Consumed] means the interceptor handled routing itself. *)

val set_ipi_interceptor :
  t -> (src:int -> dst:int -> vector:Lapic.vector -> route) option -> unit
(** Installs (or removes) the hook consulted on the send side of every IPI
    before fabric delivery. *)

type fault = Pass | Drop | Delay of Time_ns.t
(** Fabric fault verdict for one in-flight IPI: [Pass] delivers normally,
    [Drop] loses the message in the interconnect (counted as
    [fault.ipi.dropped]), [Delay d] adds [d] on top of the configured
    fabric latency (counted as [fault.ipi.delayed]). *)

val set_fault_hook :
  t -> (dst:int -> vector:Lapic.vector -> fault) option -> unit
(** Installs (or removes) the fault-injection hook consulted on the
    delivery side of every routed IPI, after the interceptor. [None]
    (the default) leaves the fabric fault-free and adds no per-IPI cost
    beyond one branch. *)

val fault_injection_active : t -> bool
(** Whether a fabric fault hook is currently installed. Recovery timers
    that would otherwise perturb deterministic happy-path runs key off
    this. *)

val iter_lapics : t -> (Lapic.t -> unit) -> unit
(** [iter_lapics t f] applies [f] to every registered LAPIC (arbitrary
    order). *)

val send_ipi : t -> src:int -> dst:int -> vector:Lapic.vector -> unit
(** [send_ipi t ~src ~dst ~vector] consults the interceptor, then delivers
    to the destination LAPIC after the configured fabric latency. An IPI to
    an unregistered destination is dropped and counted. *)

val ipis_sent : t -> int
val ipis_dropped : t -> int

val ipis_fault_dropped : t -> int
(** IPIs lost to the injected-fault hook (distinct from {!ipis_dropped},
    which counts sends to unregistered destinations). *)

val ipis_fault_delayed : t -> int

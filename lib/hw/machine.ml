open Taichi_engine

type config = { physical_cores : int; ipi_latency : Time_ns.t }

let default_config = { physical_cores = 12; ipi_latency = Time_ns.ns 500 }

type route = Deliver | Consumed

type fault = Pass | Drop | Delay of Time_ns.t

type t = {
  sim : Sim.t;
  config : config;
  accounting : Accounting.t;
  cache : Cache_model.t;
  trace : Trace.t;
  counters : Counters.t;
  core_state : Core_state.t;
  lapics : (int, Lapic.t) Hashtbl.t;
  mutable interceptor : (src:int -> dst:int -> vector:Lapic.vector -> route) option;
  mutable fault_hook : (dst:int -> vector:Lapic.vector -> fault) option;
  mutable sent : int;
  mutable dropped : int;
  mutable fault_dropped : int;
  mutable fault_delayed : int;
  h_ipi_dropped : Counters.handle;
  h_ipi_delayed : Counters.handle;
}

let create ?(config = default_config) ?trace sim =
  let trace =
    match trace with
    | Some tr -> tr
    | None -> Trace.create ~limit:2_000_000 ~enabled:false ()
  in
  let counters = Counters.create () in
  let h_transitions = Counters.handle counters "core_state.transitions" in
  let h_illegal = Counters.handle counters "core_state.illegal" in
  let core_state =
    Core_state.create ~cores:config.physical_cores ~now:(fun () -> Sim.now sim)
  in
  (* The machine's own subscriber is where [core.state] trace records come
     from: occupancy is derived from authoritative transitions, never
     hand-emitted by the modules that cause them. Several fine-grained
     states map onto one coarse occupancy bucket (e.g. running/counting are
     both "dp"), so emissions are deduplicated per core to keep the trace —
     and the timeline fold over it — free of zero-information records. *)
  let last_emitted = Array.make config.physical_cores Trace.Cat.state_idle in
  Core_state.subscribe core_state (fun ev ->
      Counters.incr_h counters h_transitions;
      if not ev.Core_state.legal then Counters.incr_h counters h_illegal;
      let bucket = Core_state.trace_state ev.Core_state.to_state in
      let core = ev.Core_state.core in
      if not (String.equal bucket last_emitted.(core)) then begin
        last_emitted.(core) <- bucket;
        Trace.emit trace ~time:ev.Core_state.at ~core
          ~category:Trace.Cat.core_state bucket
      end);
  {
    sim;
    config;
    accounting = Accounting.create ~cores:config.physical_cores;
    cache = Cache_model.create ~cores:config.physical_cores ();
    trace;
    counters;
    core_state;
    lapics = Hashtbl.create 32;
    interceptor = None;
    fault_hook = None;
    sent = 0;
    dropped = 0;
    fault_dropped = 0;
    fault_delayed = 0;
    h_ipi_dropped = Counters.handle counters "fault.ipi.dropped";
    h_ipi_delayed = Counters.handle counters "fault.ipi.delayed";
  }

let sim t = t.sim
let config t = t.config
let physical_cores t = t.config.physical_cores
let accounting t = t.accounting
let cache t = t.cache
let trace t = t.trace
let counters t = t.counters
let core_state t = t.core_state

let register_lapic t lapic =
  let id = Lapic.apic_id lapic in
  if Hashtbl.mem t.lapics id then
    invalid_arg (Printf.sprintf "Machine.register_lapic: duplicate id %d" id);
  Hashtbl.replace t.lapics id lapic

let lapic t ~apic_id = Hashtbl.find t.lapics apic_id
let lapic_opt t ~apic_id = Hashtbl.find_opt t.lapics apic_id

let set_ipi_interceptor t hook = t.interceptor <- hook
let set_fault_hook t hook = t.fault_hook <- hook
let fault_injection_active t = t.fault_hook <> None
let iter_lapics t f = Hashtbl.iter (fun _ lapic -> f lapic) t.lapics

(* The fabric fault hook sits between routing and delivery: the send (and
   any interceptor bookkeeping) already happened, so a [Drop] models the
   message dying in the interconnect and a [Delay] models congestion —
   exactly the window the recovery timers in the orchestrator guard. *)
let deliver_raw t ~dst ~vector =
  match Hashtbl.find_opt t.lapics dst with
  | Some lapic -> (
      let deliver_after extra =
        ignore
          (Sim.after t.sim
             (t.config.ipi_latency + extra)
             (fun () -> Lapic.inject lapic vector))
      in
      match t.fault_hook with
      | None -> deliver_after 0
      | Some hook -> (
          match hook ~dst ~vector with
          | Pass -> deliver_after 0
          | Drop ->
              t.fault_dropped <- t.fault_dropped + 1;
              Counters.incr_h t.counters t.h_ipi_dropped;
              Trace.emitf t.trace ~time:(Sim.now t.sim) ~category:Trace.Cat.fault
                "ipi drop dst=%d vec=%d" dst vector
          | Delay extra ->
              t.fault_delayed <- t.fault_delayed + 1;
              Counters.incr_h t.counters t.h_ipi_delayed;
              Trace.emitf t.trace ~time:(Sim.now t.sim) ~category:Trace.Cat.fault
                "ipi delay dst=%d vec=%d extra=%d" dst vector extra;
              deliver_after extra))
  | None -> t.dropped <- t.dropped + 1

let send_ipi t ~src ~dst ~vector =
  t.sent <- t.sent + 1;
  match t.interceptor with
  | Some hook -> (
      match hook ~src ~dst ~vector with
      | Deliver -> deliver_raw t ~dst ~vector
      | Consumed -> ())
  | None -> deliver_raw t ~dst ~vector

let ipis_sent t = t.sent
let ipis_dropped t = t.dropped
let ipis_fault_dropped t = t.fault_dropped
let ipis_fault_delayed t = t.fault_delayed

open Taichi_engine

type config = { physical_cores : int; ipi_latency : Time_ns.t }

let default_config = { physical_cores = 12; ipi_latency = Time_ns.ns 500 }

type route = Deliver | Consumed

type t = {
  sim : Sim.t;
  config : config;
  accounting : Accounting.t;
  cache : Cache_model.t;
  trace : Trace.t;
  counters : Counters.t;
  core_state : Core_state.t;
  lapics : (int, Lapic.t) Hashtbl.t;
  mutable interceptor : (src:int -> dst:int -> vector:Lapic.vector -> route) option;
  mutable sent : int;
  mutable dropped : int;
}

let create ?(config = default_config) ?trace sim =
  let trace =
    match trace with
    | Some tr -> tr
    | None -> Trace.create ~limit:2_000_000 ~enabled:false ()
  in
  let counters = Counters.create () in
  let core_state =
    Core_state.create ~cores:config.physical_cores ~now:(fun () -> Sim.now sim)
  in
  (* The machine's own subscriber is where [core.state] trace records come
     from: occupancy is derived from authoritative transitions, never
     hand-emitted by the modules that cause them. Several fine-grained
     states map onto one coarse occupancy bucket (e.g. running/counting are
     both "dp"), so emissions are deduplicated per core to keep the trace —
     and the timeline fold over it — free of zero-information records. *)
  let last_emitted = Array.make config.physical_cores Trace.Cat.state_idle in
  Core_state.subscribe core_state (fun ev ->
      Counters.incr counters "core_state.transitions";
      if not ev.Core_state.legal then Counters.incr counters "core_state.illegal";
      let bucket = Core_state.trace_state ev.Core_state.to_state in
      let core = ev.Core_state.core in
      if not (String.equal bucket last_emitted.(core)) then begin
        last_emitted.(core) <- bucket;
        Trace.emit trace ~time:ev.Core_state.at ~core
          ~category:Trace.Cat.core_state bucket
      end);
  {
    sim;
    config;
    accounting = Accounting.create ~cores:config.physical_cores;
    cache = Cache_model.create ~cores:config.physical_cores ();
    trace;
    counters;
    core_state;
    lapics = Hashtbl.create 32;
    interceptor = None;
    sent = 0;
    dropped = 0;
  }

let sim t = t.sim
let config t = t.config
let physical_cores t = t.config.physical_cores
let accounting t = t.accounting
let cache t = t.cache
let trace t = t.trace
let counters t = t.counters
let core_state t = t.core_state

let register_lapic t lapic =
  let id = Lapic.apic_id lapic in
  if Hashtbl.mem t.lapics id then
    invalid_arg (Printf.sprintf "Machine.register_lapic: duplicate id %d" id);
  Hashtbl.replace t.lapics id lapic

let lapic t ~apic_id = Hashtbl.find t.lapics apic_id
let lapic_opt t ~apic_id = Hashtbl.find_opt t.lapics apic_id

let set_ipi_interceptor t hook = t.interceptor <- hook

let deliver_raw t ~dst ~vector =
  match Hashtbl.find_opt t.lapics dst with
  | Some lapic ->
      ignore
        (Sim.after t.sim t.config.ipi_latency (fun () -> Lapic.inject lapic vector))
  | None -> t.dropped <- t.dropped + 1

let send_ipi t ~src ~dst ~vector =
  t.sent <- t.sent + 1;
  match t.interceptor with
  | Some hook -> (
      match hook ~src ~dst ~vector with
      | Deliver -> deliver_raw t ~dst ~vector
      | Consumed -> ())
  | None -> deliver_raw t ~dst ~vector

let ipis_sent t = t.sent
let ipis_dropped t = t.dropped

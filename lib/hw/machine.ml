open Taichi_engine

type config = { physical_cores : int; ipi_latency : Time_ns.t }

let default_config = { physical_cores = 12; ipi_latency = Time_ns.ns 500 }

type route = Deliver | Consumed

type t = {
  sim : Sim.t;
  config : config;
  accounting : Accounting.t;
  cache : Cache_model.t;
  trace : Trace.t;
  counters : Counters.t;
  lapics : (int, Lapic.t) Hashtbl.t;
  mutable interceptor : (src:int -> dst:int -> vector:Lapic.vector -> route) option;
  mutable sent : int;
  mutable dropped : int;
}

let create ?(config = default_config) ?trace sim =
  let trace =
    match trace with
    | Some tr -> tr
    | None -> Trace.create ~limit:2_000_000 ~enabled:false ()
  in
  {
    sim;
    config;
    accounting = Accounting.create ~cores:config.physical_cores;
    cache = Cache_model.create ~cores:config.physical_cores ();
    trace;
    counters = Counters.create ();
    lapics = Hashtbl.create 32;
    interceptor = None;
    sent = 0;
    dropped = 0;
  }

let sim t = t.sim
let config t = t.config
let physical_cores t = t.config.physical_cores
let accounting t = t.accounting
let cache t = t.cache
let trace t = t.trace
let counters t = t.counters

let register_lapic t lapic =
  let id = Lapic.apic_id lapic in
  if Hashtbl.mem t.lapics id then
    invalid_arg (Printf.sprintf "Machine.register_lapic: duplicate id %d" id);
  Hashtbl.replace t.lapics id lapic

let lapic t ~apic_id = Hashtbl.find t.lapics apic_id
let lapic_opt t ~apic_id = Hashtbl.find_opt t.lapics apic_id

let set_ipi_interceptor t hook = t.interceptor <- hook

let deliver_raw t ~dst ~vector =
  match Hashtbl.find_opt t.lapics dst with
  | Some lapic ->
      ignore
        (Sim.after t.sim t.config.ipi_latency (fun () -> Lapic.inject lapic vector))
  | None -> t.dropped <- t.dropped + 1

let send_ipi t ~src ~dst ~vector =
  t.sent <- t.sent + 1;
  match t.interceptor with
  | Some hook -> (
      match hook ~src ~dst ~vector with
      | Deliver -> deliver_raw t ~dst ~vector
      | Consumed -> ())
  | None -> deliver_raw t ~dst ~vector

let ipis_sent t = t.sent
let ipis_dropped t = t.dropped

(** The authoritative per-core occupancy state machine.

    Tai Chi's mechanisms — probe-driven eviction (§4.3), the vCPU scheduler
    (§4.1), lock-context rescue, CPU hotplug (Fig. 8) — all hinge on
    knowing, per physical core, exactly who occupies it. This module is the
    single source of truth for that fact: one state word per core, owned by
    {!Machine.t}, mutated only through the typed {!transition} API and
    observed by every other layer.

    Downstream views derive from it rather than duplicate it:
    - [Dp_service.state] is computed from the core's state word;
    - the accelerator [State_table] is an eventually-consistent P/V mirror
      refreshed from a subscriber;
    - trace [core.state] events (and hence the [Timeline] occupancy fold)
      are emitted by the machine's built-in subscriber, not by hand-placed
      call sites.

    Transitions are validated against a legality matrix. In {!Strict} mode
    (the default, used by tests) an illegal transition raises; in
    {!Permissive} mode (release / long soaks) it is applied anyway and
    counted, so a production run degrades observably instead of crashing.

    Cross-module agreement is checked by {!audit}: modules register
    invariant closures (kernel backing ⇔ [Vcpu_running], service yielded ⇔
    not [Dp_running], mirror lag bounded by the IPI latency) and the test
    suite plus [trace_lint] run the audit after every experiment. *)

open Taichi_engine

type direction =
  | From_dp  (** a data-plane core is being handed to a vCPU or the CP *)
  | To_dp  (** an occupied core is being returned to its data-plane service *)

type state =
  | Offline  (** not yet brought up by the platform *)
  | Dp_running  (** data-plane service busy processing packets *)
  | Dp_counting  (** data-plane service polling an empty ring *)
  | Dp_parked  (** data-plane service parked after the idle threshold *)
  | Vcpu_running of int  (** backing the vCPU with this [vid] *)
  | Switching of direction  (** paying a world-switch in this direction *)
  | Cp_dedicated  (** running control-plane work under the kernel *)

(** Why a transition happened; carried on every {!event}. *)
type cause =
  | Hotplug  (** platform bring-up / service start *)
  | Yield  (** data-plane service yielded its core *)
  | Place  (** vCPU scheduler placed a vCPU *)
  | Probe  (** hw/sw probe found pending work and evicted *)
  | Slice_expiry  (** time-slice expiry *)
  | Halt  (** guest HLT exit *)
  | Lock_rescue  (** §4.1 lock-context rescue *)
  | Borrow  (** CP pCPU borrowed beneath the OS *)
  | Park  (** idle threshold reached, service parks *)
  | Wake  (** ring activity woke a counting/parked service *)
  | Drain  (** service drained its ring and resumed counting *)
  | Resume  (** yielded service got its core back *)
  | Lend  (** kernel lent the idle core to CP work (co-schedule) *)
  | Watchdog  (** hung-vCPU / stuck-borrow watchdog forced the change *)

type event = {
  core : int;
  from_state : state;
  to_state : state;
  cause : cause;
  at : Time_ns.t;
  legal : bool;  (** [false] iff the legality matrix rejected it *)
}

type mode =
  | Strict  (** illegal transitions raise [Illegal_transition] *)
  | Permissive  (** illegal transitions are applied and counted *)

exception Illegal_transition of string

type t

val create : cores:int -> now:(unit -> Time_ns.t) -> t
(** [create ~cores ~now] is a state machine for cores [0..cores-1], all
    [Offline], in {!Strict} mode. [now] supplies timestamps for events and
    dwell accounting (normally [fun () -> Sim.now sim]). *)

val cores : t -> int
val mode : t -> mode
val set_mode : t -> mode -> unit

val get : t -> core:int -> state
(** [get t ~core] is the authoritative state of [core]. *)

val since : t -> core:int -> Time_ns.t
(** [since t ~core] is when [core] entered its current state. *)

val legal : from:state -> to_:state -> bool
(** The legality matrix, exposed for tests. *)

val transition : t -> core:int -> cause:cause -> state -> unit
(** [transition t ~core ~cause st] moves [core] to [st], closing the dwell
    span of the previous state and fanning the {!event} out to subscribers
    in subscription order. An illegal transition raises in {!Strict} mode
    (before any state change or fan-out); in {!Permissive} mode it is
    applied, counted (see {!illegal_transitions}) and fanned out with
    [legal = false]. Raises [Invalid_argument] for an out-of-range core. *)

val subscribe : t -> (event -> unit) -> unit
(** [subscribe t f] appends [f] to the fan-out list. Subscribers run
    synchronously inside {!transition}, in subscription order — a
    deterministic total order relied on by the trace and the mirror. *)

val transitions : t -> int
(** Total transitions applied since creation. *)

val illegal_transitions : t -> int
(** Illegal transitions observed (only non-zero in {!Permissive} mode,
    since {!Strict} raises before recording). *)

val dwell : t -> core:int -> (string * Time_ns.t) list
(** [dwell t ~core] is cumulative time spent per state label (sorted by
    label), including the still-open span of the current state. *)

val state_label : state -> string
(** Stable per-state label used by {!dwell}: ["offline"], ["dp_running"],
    ["dp_counting"], ["dp_parked"], ["vcpu"], ["switching"], ["cp"]. *)

val trace_state : state -> string
(** Maps a state onto the coarse [Trace.Cat.state_*] occupancy buckets the
    timeline fold understands: [Dp_running]/[Dp_counting] are busy
    data-plane time ("dp"), [Dp_parked]/[Cp_dedicated]/[Offline] are "idle"
    from the NIC's perspective, [Vcpu_running] is "vcpu" and [Switching] is
    "switch". *)

val cause_label : cause -> string

val add_invariant : t -> name:string -> (unit -> string list) -> unit
(** [add_invariant t ~name f] registers a cross-module invariant: [f ()]
    returns human-readable violations (empty when the invariant holds).
    Checkers run in registration order. *)

val audit : t -> string list
(** [audit t] is every current violation: a non-zero illegal-transition
    count plus whatever the registered invariants report. Empty means the
    machine-wide view is coherent. *)

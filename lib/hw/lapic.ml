type vector = int

type t = {
  apic_id : int;
  handlers : (vector, unit -> unit) Hashtbl.t;
  pending : vector Queue.t;
  mutable masked : bool;
  mutable delivered : int;
  mutable spurious : int;
  mutable loss_filter : (vector -> bool) option;
  mutable lost : int;
}

let create ~apic_id =
  {
    apic_id;
    handlers = Hashtbl.create 8;
    pending = Queue.create ();
    masked = false;
    delivered = 0;
    spurious = 0;
    loss_filter = None;
    lost = 0;
  }

let apic_id t = t.apic_id

let register_handler t v f = Hashtbl.replace t.handlers v f

let deliver t v =
  match Hashtbl.find_opt t.handlers v with
  | Some f ->
      t.delivered <- t.delivered + 1;
      f ()
  | None -> t.spurious <- t.spurious + 1

(* The loss filter models a vector evaporating at the controller itself —
   after fabric delivery, before masking — so even a queued-while-masked
   vector can be lost, which is the adversarial case for the probe path. *)
let inject t v =
  let lose = match t.loss_filter with None -> false | Some f -> f v in
  if lose then t.lost <- t.lost + 1
  else if t.masked then Queue.push v t.pending
  else deliver t v

let set_loss_filter t f = t.loss_filter <- f
let lost_count t = t.lost

let masked t = t.masked

let set_masked t m =
  t.masked <- m;
  if not m then
    while not (Queue.is_empty t.pending) do
      deliver t (Queue.pop t.pending)
    done

let pending_count t = Queue.length t.pending
let delivered_count t = t.delivered
let spurious_count t = t.spurious

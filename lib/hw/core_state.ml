open Taichi_engine

type direction = From_dp | To_dp

type state =
  | Offline
  | Dp_running
  | Dp_counting
  | Dp_parked
  | Vcpu_running of int
  | Switching of direction
  | Cp_dedicated

type cause =
  | Hotplug
  | Yield
  | Place
  | Probe
  | Slice_expiry
  | Halt
  | Lock_rescue
  | Borrow
  | Park
  | Wake
  | Drain
  | Resume
  | Lend
  | Watchdog

type event = {
  core : int;
  from_state : state;
  to_state : state;
  cause : cause;
  at : Time_ns.t;
  legal : bool;
}

type mode = Strict | Permissive

exception Illegal_transition of string

type t = {
  now : unit -> Time_ns.t;
  states : state array;
  since : Time_ns.t array;
  (* Cumulative dwell per (core, state label); the open span of the current
     state is added on read so [dwell] is always consistent with [now]. *)
  dwell : (string, Time_ns.t) Hashtbl.t array;
  mutable mode : mode;
  mutable subscribers : (event -> unit) list;
  mutable invariants : (string * (unit -> string list)) list;
  mutable transitions : int;
  mutable illegal : int;
}

let create ~cores ~now =
  if cores <= 0 then invalid_arg "Core_state.create: cores must be positive";
  {
    now;
    states = Array.make cores Offline;
    since = Array.make cores (now ());
    dwell = Array.init cores (fun _ -> Hashtbl.create 8);
    mode = Strict;
    subscribers = [];
    invariants = [];
    transitions = 0;
    illegal = 0;
  }

let cores t = Array.length t.states
let mode t = t.mode
let set_mode t m = t.mode <- m

let check_core t core =
  if core < 0 || core >= Array.length t.states then
    invalid_arg (Printf.sprintf "Core_state: core %d out of range" core)

let get t ~core =
  check_core t core;
  t.states.(core)

let since t ~core =
  check_core t core;
  t.since.(core)

let state_label = function
  | Offline -> "offline"
  | Dp_running -> "dp_running"
  | Dp_counting -> "dp_counting"
  | Dp_parked -> "dp_parked"
  | Vcpu_running _ -> "vcpu"
  | Switching _ -> "switching"
  | Cp_dedicated -> "cp"

let trace_state = function
  | Dp_running | Dp_counting -> Trace.Cat.state_dp
  | Vcpu_running _ -> Trace.Cat.state_vcpu
  | Switching _ -> Trace.Cat.state_switch
  | Dp_parked | Cp_dedicated | Offline -> Trace.Cat.state_idle

let cause_label = function
  | Hotplug -> "hotplug"
  | Yield -> "yield"
  | Place -> "place"
  | Probe -> "probe"
  | Slice_expiry -> "slice_expiry"
  | Halt -> "halt"
  | Lock_rescue -> "lock_rescue"
  | Borrow -> "borrow"
  | Park -> "park"
  | Wake -> "wake"
  | Drain -> "drain"
  | Resume -> "resume"
  | Lend -> "lend"
  | Watchdog -> "watchdog"

(* The legality matrix (DESIGN.md §8). Any state may go [Offline]
   (hot-unplug); everything else follows the paper's switch discipline:
   occupancy only changes through an explicit [Switching] phase, and the
   data-plane's internal running/counting/parked cycle never skips steps. *)
let legal ~from ~to_ =
  match (from, to_) with
  | _, Offline -> true
  | Offline, (Dp_running | Dp_counting | Cp_dedicated) -> true
  | Dp_running, Dp_counting -> true
  | Dp_counting, (Dp_running | Dp_parked | Switching From_dp) -> true
  | Dp_parked, (Dp_running | Switching From_dp) -> true
  | ( Switching From_dp,
      (Switching From_dp | Switching To_dp | Vcpu_running _ | Cp_dedicated) )
    ->
      (* [Switching From_dp] may self-transition: a vCPU-to-vCPU rotation
         restarts the world switch without the core ever landing. It may
         also revert [To_dp] when the yield is revoked before anyone
         arrives (work came back mid-switch). *)
      true
  | Switching To_dp, (Dp_running | Dp_counting) -> true
  | Vcpu_running _, (Switching From_dp | Switching To_dp | Cp_dedicated) ->
      true
  | Cp_dedicated, (Switching From_dp | Switching To_dp) -> true
  | _, _ -> false

let describe core from to_ cause =
  Printf.sprintf "core %d: %s -> %s (cause %s)" core (state_label from)
    (state_label to_) (cause_label cause)

let add_dwell t core st span =
  if span > 0 then begin
    let tbl = t.dwell.(core) in
    let label = state_label st in
    let prev = try Hashtbl.find tbl label with Not_found -> 0 in
    Hashtbl.replace tbl label (prev + span)
  end

let transition t ~core ~cause to_ =
  check_core t core;
  let from = t.states.(core) in
  let at = t.now () in
  let is_legal = legal ~from ~to_ in
  if not is_legal then begin
    if t.mode = Strict then
      raise (Illegal_transition (describe core from to_ cause));
    t.illegal <- t.illegal + 1
  end;
  add_dwell t core from (at - t.since.(core));
  t.states.(core) <- to_;
  t.since.(core) <- at;
  t.transitions <- t.transitions + 1;
  let ev = { core; from_state = from; to_state = to_; cause; at; legal = is_legal }
  in
  List.iter (fun f -> f ev) t.subscribers

let subscribe t f = t.subscribers <- t.subscribers @ [ f ]
let transitions t = t.transitions
let illegal_transitions t = t.illegal

let dwell t ~core =
  check_core t core;
  let tbl = Hashtbl.copy t.dwell.(core) in
  (* Fold the still-open span of the current state in. *)
  let label = state_label t.states.(core) in
  let open_span = t.now () - t.since.(core) in
  if open_span > 0 then
    Hashtbl.replace tbl label
      ((try Hashtbl.find tbl label with Not_found -> 0) + open_span);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let add_invariant t ~name f = t.invariants <- t.invariants @ [ (name, f) ]

let audit t =
  let base =
    if t.illegal > 0 then
      [ Printf.sprintf "%d illegal transition(s) recorded" t.illegal ]
    else []
  in
  base
  @ List.concat_map
      (fun (name, f) -> List.map (fun v -> name ^ ": " ^ v) (f ()))
      t.invariants

open Taichi_engine
open Taichi_os

type params = {
  total_work : Time_ns.t;
  phases : int;
  kernel_fraction : float;
  locked_fraction : float;
  io_wait : Time_ns.t;
}

let default_params =
  {
    total_work = Time_ns.ms 50;
    phases = 10;
    kernel_fraction = 0.25;
    locked_fraction = 0.3;
    io_wait = Time_ns.us 500;
  }

(* Split [total] into [n] parts with ±30% jitter, summing to [total]. *)
let jittered_split rng total n =
  if n <= 0 then []
  else begin
    let weights = List.init n (fun _ -> 0.7 +. Rng.float rng 0.6) in
    let sum = List.fold_left ( +. ) 0.0 weights in
    List.map (fun w -> max 1 (int_of_float (float_of_int total *. w /. sum))) weights
  end

let make ?(tenant = 0) ~rng ~params ~locks ~affinity ~name () =
  let kernel_work =
    int_of_float (float_of_int params.total_work *. params.kernel_fraction)
  in
  let user_work = params.total_work - kernel_work in
  let user_parts = jittered_split rng user_work params.phases in
  let kernel_parts = jittered_split rng kernel_work params.phases in
  let n_locks = List.length locks in
  let lock_counter = ref (Rng.int rng (max 1 n_locks)) in
  let instrs =
    List.concat
      (List.map2
         (fun u k ->
           let locked =
             n_locks > 0 && Rng.bernoulli rng ~p:params.locked_fraction
           in
           let kernel_part = Program.kernel_routine k in
           let kernel_instrs =
             if locked then begin
               let lock = List.nth locks (!lock_counter mod n_locks) in
               incr lock_counter;
               Program.critical_section lock [ kernel_part ]
             end
             else [ kernel_part ]
           in
           let tail =
             if params.io_wait > 0 then [ Program.sleep params.io_wait ] else []
           in
           (Program.compute u :: kernel_instrs) @ tail)
         user_parts kernel_parts)
  in
  Task.create ~tenant ~affinity ~name ~step:(Program.to_step instrs) ()

let make_batch ?(tenant = 0) ~rng ~params ~locks ~affinity ~count () =
  List.init count (fun i ->
      make ~tenant ~rng ~params ~locks ~affinity
        ~name:(Printf.sprintf "synth_cp-%d" i)
        ())

(** The synth_cp benchmark (§6.1).

    An in-house-style synthetic control-plane task: a fixed amount of total
    work (50 ms by default, matching the paper) interleaving user-space
    computation, non-preemptible kernel routines, and critical sections on
    shared driver locks — the access pattern of classic device-management
    tasks. Supports arbitrary concurrency for stress tests. *)

open Taichi_engine
open Taichi_os

type params = {
  total_work : Time_ns.t;  (** per-task work, paper: 50 ms *)
  phases : int;  (** user/kernel interleavings *)
  kernel_fraction : float;  (** share of work in kernel routines *)
  locked_fraction : float;
      (** share of kernel work inside shared-lock critical sections *)
  io_wait : Time_ns.t;
      (** off-CPU wait per phase (device/IPC response), after which the
          task re-queues — the wakeup path where oversubscribed CPUs add
          convoy delay *)
}

val default_params : params

val make :
  ?tenant:int ->
  rng:Rng.t ->
  params:params ->
  locks:Task.spinlock list ->
  affinity:int list ->
  name:string ->
  unit ->
  Task.t
(** One synth_cp task, stamped with its owning [tenant] (default 0).
    Critical sections pick locks round-robin from [locks]; an empty list
    disables locking. *)

val make_batch :
  ?tenant:int ->
  rng:Rng.t ->
  params:params ->
  locks:Task.spinlock list ->
  affinity:int list ->
  count:int ->
  unit ->
  Task.t list
(** [count] identically-distributed tasks (independent random draws). *)

(** The VM startup workflow (Fig 1c red path).

    Cluster management issues a creation command; a control-plane task
    parses it, initializes the VM's emulated devices in coordination with
    the data plane, and finally notifies QEMU on the host, which boots the
    guest. VM startup time — the SLO the paper tracks — spans command
    receipt to boot completion, so it is the control-plane portion plus a
    fixed host-side boot. *)

open Taichi_engine
open Taichi_os
open Taichi_metrics

type params = {
  command_parse : Time_ns.t;  (** Fig 1c step 2 *)
  devices_per_vm : int;  (** grows with instance density *)
  device : Device_mgmt.params;
  qemu_notify : Time_ns.t;  (** Fig 1c step 5, CP side *)
  host_boot : Time_ns.t;  (** host-side QEMU instantiation, off-SmartNIC *)
}

val default_params : rng:Rng.t -> params

val at_density : base:params -> float -> params
(** [at_density ~base d] scales [devices_per_vm] by the instance-density
    multiplier [d] (§3.1: 4x density means 4x the devices). *)

val startup_task :
  ?tenant:int ->
  sim:Sim.t ->
  rng:Rng.t ->
  params:params ->
  locks:Task.spinlock list ->
  affinity:int list ->
  name:string ->
  recorder:Recorder.t ->
  unit ->
  Task.t
(** A task performing one VM startup, stamped with its owning [tenant]
    (default 0). On completion it records the full startup time
    (control-plane turnaround + host boot) in [recorder]. *)

val slo : Time_ns.t
(** The VM-startup SLO target used to normalize Figs 2 and 17. *)

open Taichi_engine
open Taichi_os
open Taichi_metrics

type params = {
  command_parse : Time_ns.t;
  devices_per_vm : int;
  device : Device_mgmt.params;
  qemu_notify : Time_ns.t;
  host_boot : Time_ns.t;
}

let default_params ~rng =
  {
    command_parse = Time_ns.ms 1;
    devices_per_vm = 5;
    device = Device_mgmt.default_params ~rng;
    qemu_notify = Time_ns.us 500;
    host_boot = Time_ns.ms 50;
  }

let at_density ~base d =
  {
    base with
    devices_per_vm =
      max 1 (int_of_float (float_of_int base.devices_per_vm *. d));
  }

let slo = Time_ns.ms 150

let startup_task ?(tenant = 0) ~sim ~rng ~params ~locks ~affinity ~name ~recorder
    () =
  let task_ref = ref None in
  let record () =
    match !task_ref with
    | Some task ->
        let cp_time = Sim.now sim - task.Task.spawned_at in
        Recorder.observe recorder (cp_time + params.host_boot)
    | None -> ()
  in
  let instrs =
    [ Program.compute params.command_parse ]
    @ [
        Program.Repeat
          ( params.devices_per_vm,
            Device_mgmt.device_init_program ~rng ~params:params.device ~locks );
      ]
    @ [
        Program.kernel_routine ~preemptible:true params.qemu_notify;
        Program.Gen
          (fun () ->
            record ();
            []);
      ]
  in
  let task = Task.create ~tenant ~affinity ~name ~step:(Program.to_step instrs) () in
  task_ref := Some task;
  task

(** The hardware workload probe (§4.3, Fig 10).

    Roughly thirty lines of accelerator firmware in the real system: before
    preprocessing each I/O descriptor, look up the destination core in the
    per-CPU state table; if the core is in V-state, fire an asynchronous
    IRQ at it so the vCPU scheduler can restore the data-plane service
    while the 3.2 µs hardware window elapses. P-state cores are left alone
    (interrupts effectively masked), so a busy data-plane service is never
    disturbed. *)

open Taichi_hw
open Taichi_accel

type t

val install :
  Config.t -> Machine.t -> State_table.t -> Pipeline.t -> Vcpu_sched.t -> t
(** Hooks the pipeline's detection point. The probe only acts when
    [config.hw_probe] is true, so installing it unconditionally and
    toggling via config keeps wiring uniform. Trigger/suppression events go
    to the machine trace ([probe.hw]) and counter registry. *)

val set_suppressor : t -> (core:int -> bool) option -> unit
(** [set_suppressor t f] installs (or removes) a fault-injection predicate
    consulted when a V-state hit is about to fire an IRQ: [true] means the
    accelerator fails to raise it and the packet goes undetected. [None]
    (the default) suppresses nothing. *)

val misfire : t -> core:int -> unit
(** [misfire t ~core] injects a spurious probe IRQ at [core] through the
    normal delivery path (latency and pending dedup included), regardless
    of the core's table state — the false-positive case the scheduler's
    probe handler must tolerate. *)

val triggers : t -> int
(** IRQs fired (V-state hits). *)

val suppressed : t -> int
(** Descriptors that found the core already being evicted (IRQ pending)
    and needed no second interrupt. *)

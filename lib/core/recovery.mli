(** Recovery bookkeeping and the system-wide degraded mode.

    Every recovery mechanism in the stack — watchdog escalations in
    [Vcpu_sched], boot / wakeup-IPI retries in [Ipi_orchestrator], mirror
    resyncs in [Taichi] — reports each action through {!note}. The tracker
    turns those reports into:

    - a [recovery.<class>.<action>] counter per escalation rung,
    - a recovery-latency histogram (time from fault manifestation to the
      recovery action) for the chaos report,
    - the degraded-mode trigger: when more than [degraded_threshold]
      recovery events land within a sliding [degraded_window], the system
      falls back to static partitioning — co-scheduling callbacks
      registered with {!on_engage} fire (the vCPU scheduler stops placing
      vCPUs on data-plane cores) — and after [degraded_quiet] with no
      further recovery events it re-arms via {!on_rearm}.

    A tracker created from a config with [resilience = false] still
    accepts {!note} calls (they only touch counters) but never engages
    degraded mode. *)

open Taichi_engine
open Taichi_hw

type t

val create : Config.t -> Machine.t -> t

val note :
  t -> cls:string -> action:string -> latency:Time_ns.t -> unit
(** [note t ~cls ~action ~latency] records one recovery action: increments
    [recovery.<cls>.<action>], adds [latency] (how long the fault went
    unrepaired) to the histogram, emits a [Trace.Cat.recovery] record and
    feeds the degraded-mode window. *)

val degraded : t -> bool

val forced : t -> bool
(** Whether degraded mode is currently pinned by {!force_engage}. *)

val force_engage : t -> unit
(** Load-driven entry into static partitioning (the overload governor's
    final rung). Engages degraded mode if it is not already engaged
    (running the {!on_engage} callbacks exactly once) and pins it: the
    fault-side quiet period will not re-arm while the hold is in place.
    Idempotent. Works regardless of [Config.resilience] — the governor
    carries its own opt-in flag. *)

val force_release : t -> unit
(** Releases a {!force_engage} hold and re-arms immediately (running the
    {!on_rearm} callbacks) if degraded mode was engaged. No-op when not
    forced. *)

val on_engage : t -> (unit -> unit) -> unit
(** Registers a callback run (in registration order) when degraded mode
    engages. *)

val on_rearm : t -> (unit -> unit) -> unit
(** Registers a callback run when co-scheduling re-arms after the quiet
    period. *)

val engaged_count : t -> int
val rearmed_count : t -> int

val events : t -> int
(** Total recovery events noted since creation. *)

val latency_hist : t -> Histogram.t
(** The recovery-latency histogram (nanoseconds). *)

open Taichi_engine
open Taichi_hw
open Taichi_os
open Taichi_virt
open Taichi_accel
open Taichi_dataplane

type t = {
  config : Config.t;
  machine : Machine.t;
  kernel : Kernel.t;
  table : State_table.t;
  sw : Sw_probe.t;
  softirq : Softirq.t;
  sched : Vcpu_sched.t;
  orch : Ipi_orchestrator.t;
  probe : Hw_probe.t;
  recovery : Recovery.t;
  overload : Overload.t option;
  lifecycle : Lifecycle.t option;
  tenant_table : Tenant.table;
  vcpus : Vcpu.t list;
  cp_pcpus : int list;
}

(* State-table divergence detector: periodically compare the accelerator
   mirror against the authoritative state machine and force-resync any
   record that has been wrong for longer than the IPI latency (the bound
   the mirror invariant tolerates). Catches stalled and corrupted records
   that the subscription path can no longer fix — a frozen record drops
   the subscriber's writes, so only [State_table.force] repairs it. *)
let mirror_resync machine table recovery =
  let sim = Machine.sim machine in
  let cs = Machine.core_state machine in
  let ipi = (Machine.config machine).Machine.ipi_latency in
  for core = 0 to Machine.physical_cores machine - 1 do
    let expected =
      match Core_state.get cs ~core with
      | Core_state.Vcpu_running _ | Core_state.Switching Core_state.From_dp ->
          State_table.V_state
      | _ -> State_table.P_state
    in
    let diverged_for = Sim.now sim - Core_state.since cs ~core in
    if State_table.get table ~core <> expected && diverged_for > ipi then begin
      State_table.force table ~core expected;
      Recovery.note recovery ~cls:"mirror" ~action:"resync"
        ~latency:diverged_for
    end
  done

let rec mirror_resync_loop config machine table recovery =
  ignore
    (Sim.after (Machine.sim machine) config.Config.mirror_resync_period
       (fun () ->
         mirror_resync machine table recovery;
         mirror_resync_loop config machine table recovery))

let install ?(config = Config.default) ?tenants ~machine ~kernel ~pipeline
    ~dps ~cp_pcpus () =
  let cores = Machine.physical_cores machine in
  let table = State_table.create ~cores in
  (* The accelerator's P/V table is the eventually-consistent mirror of
     the authoritative per-core state machine: refreshed by subscription
     (synchronously, modelling the fast MMIO write that accompanies each
     transition) rather than written by scattered call sites. A core is
     V-state from the instant a switch away from the data plane begins —
     the hardware probe must evict a racing packet cleanly — until the
     moment an eviction back towards it starts. *)
  let cs = Machine.core_state machine in
  Core_state.subscribe cs (fun ev ->
      let mirror =
        match ev.Core_state.to_state with
        | Core_state.Vcpu_running _ | Core_state.Switching Core_state.From_dp
          ->
            State_table.V_state
        | _ -> State_table.P_state
      in
      let core = ev.Core_state.core in
      if State_table.get table ~core <> mirror then
        State_table.set table ~core mirror);
  let sw = Sw_probe.create ~machine config ~cores in
  let softirq = Softirq.create machine in
  let recovery = Recovery.create config machine in
  (* One tenant table per system: the platform passes its shared mutable
     instance (mandatory under churn, where admissions grow it mid-run);
     standalone installs derive a static one from the config. The same
     instance threads into the scheduler and the governor so lane ids
     always line up. *)
  let tenant_table =
    match tenants with Some tbl -> tbl | None -> Config.tenant_table config
  in
  let sched =
    Vcpu_sched.create ~tenants:tenant_table config machine kernel softirq sw
      table recovery
  in
  List.iter (fun dp -> Vcpu_sched.register_dp sched dp) dps;
  Vcpu_sched.set_cp_pcpus sched cp_pcpus;
  let orch = Ipi_orchestrator.install config machine kernel sched recovery in
  (* Under churn the pool's spare vCPUs are registered (and booted) along
     with the configured ones; they stay unassigned (tenant -1) and are
     never scheduled until the lifecycle binds them to an admitted
     tenant. *)
  let spare_count = if config.Config.churn then config.Config.spare_vcpus else 0 in
  let all_vcpus =
    Ipi_orchestrator.register_vcpus orch ~first_kcpu:cores
      ~count:(config.Config.n_vcpus + spare_count)
  in
  let vcpus, spares =
    List.partition (fun v -> v.Vcpu.vid < config.Config.n_vcpus) all_vcpus
  in
  let probe = Hw_probe.install config machine table pipeline sched in
  if Tenant.is_multi tenant_table then begin
    (* Tenant identity becomes load-bearing only under an explicit
       multi-tenant table: vCPUs are dealt round-robin across tenants
       (vid mod T — deterministic, independent of registration order),
       each inheriting its tenant's admission-class rank for the weighted
       queue's second stage, and every DP service mirrors its counters
       into the owning tenant's namespace. The implicit single tenant
       changes nothing, keeping pre-existing runs byte-identical. *)
    List.iter
      (fun v ->
        let tid = v.Vcpu.vid mod Tenant.count tenant_table in
        v.Vcpu.tenant <- tid;
        v.Vcpu.cls_rank <-
          Tenant.cls_rank (Tenant.get tenant_table tid).Tenant.cls)
      vcpus;
    List.iter (fun dp -> Dp_service.set_tag_tenant dp true) dps
  end;
  List.iter (fun v -> v.Vcpu.tenant <- -1) spares;
  if config.Config.resilience then
    mirror_resync_loop config machine table recovery;
  let overload =
    if not config.Config.overload then None
    else begin
      (* The governor watches the DP cores' dwell (occupancy), the vCPU
         host CPUs' runqueues (CP backlog) and a live per-packet latency
         feed; it throttles the placement path through the scheduler's
         gate, and a ladder relax immediately retries the work the gate
         held back. *)
      let ov = Overload.create ~tenants:tenant_table config machine kernel recovery in
      List.iter
        (fun dp ->
          Overload.watch_dp ov ~tenant:(Dp_service.tenant dp)
            ~core:(Dp_service.core dp) ();
          (* The sink reads the owner at packet-completion time: a
             floating service re-homed by the churn lifecycle feeds the
             new owner's lane from the instant it changes hands. *)
          Dp_service.set_latency_sink dp
            (Some
               (fun lat ->
                 Overload.observe_latency ov ~tenant:(Dp_service.tenant dp)
                   lat)))
        dps;
      List.iter
        (fun v ->
          if v.Vcpu.tenant >= 0 then
            Overload.watch_kcpu ov ~tenant:v.Vcpu.tenant v.Vcpu.kcpu)
        all_vcpus;
      Vcpu_sched.set_place_gate sched (Some (Overload.place_allowed ov));
      Overload.on_transition ov (fun from to_ ->
          if Overload.rank to_ < Overload.rank from then
            Vcpu_sched.kick_runnable sched);
      Overload.start ov;
      Some ov
    end
  in
  let lifecycle =
    if not config.Config.churn then None
    else begin
      (* The floating services come off the END of the service list, so
         the boot tenants' primary rings (dealt from the front) never
         move. *)
      let n_dps = List.length dps in
      let floats =
        List.filteri
          (fun i _ -> i >= n_dps - config.Config.float_services)
          dps
      in
      Some
        (Lifecycle.create ~config ~machine ~kernel ~sched ~overload
           ~tenants:tenant_table ~spares ~floats ~cp_pcpus ~dps ~recovery)
    end
  in
  {
    config;
    machine;
    kernel;
    table;
    sw;
    softirq;
    sched;
    orch;
    probe;
    recovery;
    overload;
    lifecycle;
    tenant_table;
    vcpus = all_vcpus;
    cp_pcpus;
  }

let config t = t.config
let machine t = t.machine
let kernel t = t.kernel
let scheduler t = t.sched
let orchestrator t = t.orch
let hw_probe t = t.probe
let sw_probe t = t.sw
let softirq t = t.softirq
let state_table t = t.table
let recovery t = t.recovery
let overload t = t.overload
let lifecycle t = t.lifecycle
let vcpus t = t.vcpus
let tenants t = t.tenant_table

(* Pooled spares are excluded: their kcpus never run until the lifecycle
   assigns them, so a task affine to one could wait forever. *)
let cp_cpu_ids t =
  t.cp_pcpus
  @ List.filter_map
      (fun v -> if v.Vcpu.tenant >= 0 then Some v.Vcpu.kcpu else None)
      t.vcpus

let ready t = Ipi_orchestrator.online_vcpus t.orch = List.length t.vcpus

let total_vm_exits t =
  List.fold_left (fun acc v -> acc + Vcpu.total_exits v) 0 t.vcpus

let pp_summary fmt t =
  let s = Vcpu_sched.stats t.sched in
  let o = Ipi_orchestrator.stats t.orch in
  Format.fprintf fmt
    "taichi: vcpus=%d placements=%d probe_evictions=%d pending_evictions=%d \
     halts=%d rotations=%d rescues=%d borrows=%d unsafe=%d vm_exits=%d \
     probe_triggers=%d ipi[routed=%d posted=%d wakeups=%d reissued=%d]"
    (List.length t.vcpus) s.Vcpu_sched.placements s.Vcpu_sched.probe_evictions
    s.Vcpu_sched.pending_evictions s.Vcpu_sched.halt_exits
    s.Vcpu_sched.rotations s.Vcpu_sched.lock_rescues s.Vcpu_sched.borrows
    s.Vcpu_sched.unsafe_suspensions (total_vm_exits t)
    (Hw_probe.triggers t.probe) o.Ipi_orchestrator.routed_to_vcpu
    o.Ipi_orchestrator.posted o.Ipi_orchestrator.wakeups
    o.Ipi_orchestrator.reissued

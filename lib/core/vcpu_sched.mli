(** The Tai Chi vCPU scheduler (§4.1).

    Dynamically maps over-provisioned vCPUs (each a kernel logical CPU
    hosting control-plane tasks) onto idle data-plane cores:

    - {b DP-to-CP yielding}: when a data-plane service reports idleness
      (software workload probe), the scheduler picks the next runnable
      vCPU from the two-stage weighted run queue ({!Wsched}: tenant
      deficit-round-robin over granted pCPU time, then strict-priority
      FIFO across admission-class ranks — a flat round-robin under the
      implicit single tenant), takes the core through the softirq-based
      context switch (modeled as the 2 µs world switch), and flips the
      core to V-state in the accelerator's state table.
    - {b CP-to-DP preemption}: a hardware-probe IRQ or pending work at
      slice expiry evicts the vCPU and resumes the data-plane service; the
      2 µs restore overlaps the 3.2 µs preprocessing window when the probe
      is enabled.
    - {b Adaptive time slice}: 50 µs initially, doubling on expiry exits
      (sustained idleness), reset on probe exits.
    - {b Lock-context safety}: a vCPU evicted while its current task is
      non-preemptible is immediately re-placed on another parked
      data-plane core, or failing that borrows a dedicated CP pCPU
      (reclaiming it from the kernel) until the lock is released —
      guaranteeing forward progress (§4.1). *)


open Taichi_hw
open Taichi_os
open Taichi_virt
open Taichi_accel
open Taichi_dataplane

type t

val create :
  ?tenants:Tenant.table ->
  Config.t ->
  Machine.t ->
  Kernel.t ->
  Softirq.t ->
  Sw_probe.t ->
  State_table.t ->
  Recovery.t ->
  t
(** Pass [?tenants] to share the platform's one mutable tenant table
    (required under churn so dynamically admitted ids line up across
    layers); the default derives a fresh static table from the config.

    Installs the kernel work-available and cpu-idle hooks. DP-to-CP
    context switches enter guest context through the dedicated softirq
    (§4.1), registered per data-plane core by {!register_dp}.

    With [config.resilience] the scheduler also arms the hung-vCPU
    watchdog (scan every [watchdog_period]; a vCPU placed past
    [watchdog_bound] under eviction pressure escalates reschedule →
    lock-rescue → forced borrow eviction, one [recovery.watchdog.*]
    counter per rung) and registers the degraded-mode callbacks: on
    engage every non-lock-bound placement is returned to its data-plane
    service and new placements stop; on re-arm the preserved runqueue
    repopulates parked cores. *)

val add_vcpu : t -> Vcpu.t -> unit
val vcpus : t -> Vcpu.t list

val register_dp : t -> Dp_service.t -> unit
(** Attach a data-plane service: installs its idle-threshold and
    idle-detected hooks and makes its core a yield target. *)

val set_cp_pcpus : t -> int list -> unit
(** Dedicated control-plane physical CPUs used as the borrow fallback for
    lock-context rescheduling. *)

val on_probe_irq : t -> core:int -> unit
(** Entry point for the hardware workload probe: evict the vCPU on [core]
    and restore the data-plane service. *)

val placed_vcpu : t -> core:int -> Vcpu.t option

val set_place_gate : t -> (int -> bool) option -> unit
(** [set_place_gate t (Some allowed)] installs the overload governor's
    placement gate: every DP-to-CP placement attempt first asks
    [allowed tenant] (which may consume a rate-limit token from that
    tenant's lane). A denial leaves the vCPU on the runqueue, like a
    parked core with no waiter — and gates only that tenant: the weighted
    queue skips a refused tenant and offers the pop to the next one.
    [None] (the default) removes the gate. *)

val granted_ns : t -> tenant:int -> int
(** Cumulative pCPU grant time (ns of placement occupancy, including
    borrows) charged to [tenant]'s virtual clock — the quantity the
    weighted queue equalises in proportion to tenant weights. *)

val kick_runnable : t -> unit
(** Retry placement for every vCPU with pending work — called after the
    governor's ladder relaxes so work blocked by the gate doesn't wait
    for the next idle notification. *)

val watchdog_stuck : t -> int
(** Number of vCPUs currently hung past the watchdog bound (placed under
    eviction pressure, or borrowing a CP pCPU, for longer than
    [watchdog_bound]). The chaos oracle asserts this is 0 after the
    post-injection grace period. *)

val poke : t -> kcpu:int -> unit
(** Awaken the vCPU backing kernel CPU [kcpu] if it has work — the
    orchestrator's path for IPIs targeting a sleeping vCPU (§4.2). *)

(** {1 Tenant churn}

    The lifecycle manager's hooks into the weighted queue and the vCPU
    population. All of these are inert unless [Config.churn] built a
    pool: static runs never call them. *)

val admit_tenant : t -> weight:int -> int
(** Grow the weighted queue by one lane for a dynamically admitted
    tenant, entering at the active minimum virtual clock (no stale or
    banked credit). Returns the new lane id. *)

val retire_tenant : t -> tenant:int -> unit
(** Retire the tenant's weighted-queue lane. The lane must be empty —
    call {!flush_tenant} first on the force path. *)

val flush_tenant : t -> tenant:int -> Vcpu.t list
(** Remove every queued entry for [tenant] from the weighted queue (in
    pop order) so retirement can proceed; the entries are returned for
    teardown. *)

val force_evict_tenant : t -> tenant:int -> unit
(** Drain escalation: evict the tenant's placed vCPUs and force-end its
    borrows. Lock-bound guests are suspended unbacked (their tasks are
    already cancelled) rather than rescued. *)

val reassign_vcpu : t -> Vcpu.t -> tenant:int -> cls_rank:int -> unit
(** Move a quiescent vCPU between a tenant and the spare pool
    (tenant [-1]). Raises [Invalid_argument] if the vCPU is still
    placed, queued or borrowing. *)

val tenant_vcpus : t -> tenant:int -> Vcpu.t list

val quiesce_violations : t -> tenant:int -> string list
(** What still stands between a draining tenant and vCPU-side
    quiescence (placements, borrows, queue entries, pending kernel
    work), as human-readable receipts; [[]] means quiet. Feeds both the
    drain poll and the zero-orphan audit. *)

type stats = {
  placements : int;  (** vCPU switched onto a data-plane core *)
  probe_evictions : int;
  pending_evictions : int;  (** evicted at slice expiry with work waiting *)
  halt_exits : int;
  rotations : int;  (** direct vCPU-to-vCPU switches *)
  lock_rescues : int;  (** §4.1 safe rescheduling events *)
  borrows : int;  (** rescues that had to borrow a CP pCPU *)
  unsafe_suspensions : int;
      (** evictions that left a lock-holder unbacked (only with
          [lock_safe_resched = false]) *)
}

val stats : t -> stats

(** The Tai Chi vCPU scheduler (§4.1).

    Dynamically maps over-provisioned vCPUs (each a kernel logical CPU
    hosting control-plane tasks) onto idle data-plane cores:

    - {b DP-to-CP yielding}: when a data-plane service reports idleness
      (software workload probe), the scheduler picks the next runnable
      vCPU from the two-stage weighted run queue ({!Wsched}: tenant
      deficit-round-robin over granted pCPU time, then strict-priority
      FIFO across admission-class ranks — a flat round-robin under the
      implicit single tenant), takes the core through the softirq-based
      context switch (modeled as the 2 µs world switch), and flips the
      core to V-state in the accelerator's state table.
    - {b CP-to-DP preemption}: a hardware-probe IRQ or pending work at
      slice expiry evicts the vCPU and resumes the data-plane service; the
      2 µs restore overlaps the 3.2 µs preprocessing window when the probe
      is enabled.
    - {b Adaptive time slice}: 50 µs initially, doubling on expiry exits
      (sustained idleness), reset on probe exits.
    - {b Lock-context safety}: a vCPU evicted while its current task is
      non-preemptible is immediately re-placed on another parked
      data-plane core, or failing that borrows a dedicated CP pCPU
      (reclaiming it from the kernel) until the lock is released —
      guaranteeing forward progress (§4.1). *)


open Taichi_hw
open Taichi_os
open Taichi_virt
open Taichi_accel
open Taichi_dataplane

type t

val create :
  Config.t ->
  Machine.t ->
  Kernel.t ->
  Softirq.t ->
  Sw_probe.t ->
  State_table.t ->
  Recovery.t ->
  t
(** Installs the kernel work-available and cpu-idle hooks. DP-to-CP
    context switches enter guest context through the dedicated softirq
    (§4.1), registered per data-plane core by {!register_dp}.

    With [config.resilience] the scheduler also arms the hung-vCPU
    watchdog (scan every [watchdog_period]; a vCPU placed past
    [watchdog_bound] under eviction pressure escalates reschedule →
    lock-rescue → forced borrow eviction, one [recovery.watchdog.*]
    counter per rung) and registers the degraded-mode callbacks: on
    engage every non-lock-bound placement is returned to its data-plane
    service and new placements stop; on re-arm the preserved runqueue
    repopulates parked cores. *)

val add_vcpu : t -> Vcpu.t -> unit
val vcpus : t -> Vcpu.t list

val register_dp : t -> Dp_service.t -> unit
(** Attach a data-plane service: installs its idle-threshold and
    idle-detected hooks and makes its core a yield target. *)

val set_cp_pcpus : t -> int list -> unit
(** Dedicated control-plane physical CPUs used as the borrow fallback for
    lock-context rescheduling. *)

val on_probe_irq : t -> core:int -> unit
(** Entry point for the hardware workload probe: evict the vCPU on [core]
    and restore the data-plane service. *)

val placed_vcpu : t -> core:int -> Vcpu.t option

val set_place_gate : t -> (int -> bool) option -> unit
(** [set_place_gate t (Some allowed)] installs the overload governor's
    placement gate: every DP-to-CP placement attempt first asks
    [allowed tenant] (which may consume a rate-limit token from that
    tenant's lane). A denial leaves the vCPU on the runqueue, like a
    parked core with no waiter — and gates only that tenant: the weighted
    queue skips a refused tenant and offers the pop to the next one.
    [None] (the default) removes the gate. *)

val granted_ns : t -> tenant:int -> int
(** Cumulative pCPU grant time (ns of placement occupancy, including
    borrows) charged to [tenant]'s virtual clock — the quantity the
    weighted queue equalises in proportion to tenant weights. *)

val kick_runnable : t -> unit
(** Retry placement for every vCPU with pending work — called after the
    governor's ladder relaxes so work blocked by the gate doesn't wait
    for the next idle notification. *)

val watchdog_stuck : t -> int
(** Number of vCPUs currently hung past the watchdog bound (placed under
    eviction pressure, or borrowing a CP pCPU, for longer than
    [watchdog_bound]). The chaos oracle asserts this is 0 after the
    post-injection grace period. *)

val poke : t -> kcpu:int -> unit
(** Awaken the vCPU backing kernel CPU [kcpu] if it has work — the
    orchestrator's path for IPIs targeting a sleeping vCPU (§4.2). *)

type stats = {
  placements : int;  (** vCPU switched onto a data-plane core *)
  probe_evictions : int;
  pending_evictions : int;  (** evicted at slice expiry with work waiting *)
  halt_exits : int;
  rotations : int;  (** direct vCPU-to-vCPU switches *)
  lock_rescues : int;  (** §4.1 safe rescheduling events *)
  borrows : int;  (** rescues that had to borrow a CP pCPU *)
  unsafe_suspensions : int;
      (** evictions that left a lock-holder unbacked (only with
          [lock_safe_resched = false]) *)
}

val stats : t -> stats

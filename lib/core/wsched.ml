(* The two-stage weighted run queue behind {!Vcpu_sched}.

   Stage 1 picks the tenant: deficit-style weighted selection over
   accumulated pCPU grant time. Each tenant carries a virtual grant
   clock that advances by [charged / weight] (scaled integers, so
   selection is exact and deterministic); the backlogged tenant with the
   smallest virtual clock runs next, ties broken toward the lower
   tenant id. A tenant that was idle re-enters at the current virtual
   now rather than its stale clock, so sleeping does not bank credit —
   the classic virtual-time activation rule that makes the queue
   work-conserving without letting a waking tenant monopolise the
   cores.

   Stage 2 picks within the tenant: strict-priority FIFO across
   admission-class ranks (critical before standard before deferrable),
   FIFO within a rank.

   With one tenant and one occupied class rank the structure degenerates
   to exactly the flat FIFO the seed scheduler used — pop order, gate
   consultation and all — which is what keeps single-tenant runs
   byte-identical to the seed baselines. *)

type 'a t = {
  weights : int array;
  classes : int;
  queues : 'a Queue.t array; (* tenant * classes + class rank *)
  vt : int array; (* scaled virtual grant clock per tenant *)
  charged : int array; (* raw grant ns per tenant, for metrics *)
  backlog : int array; (* queued element count per tenant *)
  mutable total : int;
  mutable vnow : int; (* virtual clock of the last tenant served *)
}

(* Virtual clocks advance by [amount * vscale / weight]: the scale keeps
   integer division from erasing small charges under large weights. *)
let vscale = 256

(* Tenant selection tracks gate-rejected tenants in an int bitmask. *)
let max_tenants = Sys.int_size - 2

let create ~weights ~classes =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Wsched.create: no tenants";
  if n > max_tenants then invalid_arg "Wsched.create: too many tenants";
  Array.iter
    (fun w -> if w <= 0 then invalid_arg "Wsched.create: non-positive weight")
    weights;
  if classes <= 0 then invalid_arg "Wsched.create: no classes";
  {
    weights = Array.copy weights;
    classes;
    queues = Array.init (n * classes) (fun _ -> Queue.create ());
    vt = Array.make n 0;
    charged = Array.make n 0;
    backlog = Array.make n 0;
    total = 0;
    vnow = 0;
  }

let tenants t = Array.length t.weights
let length t = t.total
let is_empty t = t.total = 0
let backlog t ~tenant = t.backlog.(tenant)

let clamp_cls t cls =
  if cls < 0 then 0 else if cls >= t.classes then t.classes - 1 else cls

let push t ~tenant ~cls x =
  if tenant < 0 || tenant >= tenants t then
    invalid_arg "Wsched.push: unknown tenant";
  (* Activation rule: an idle tenant rejoins at the current virtual now. *)
  if t.backlog.(tenant) = 0 && t.vt.(tenant) < t.vnow then
    t.vt.(tenant) <- t.vnow;
  Queue.push x t.queues.((tenant * t.classes) + clamp_cls t cls);
  t.backlog.(tenant) <- t.backlog.(tenant) + 1;
  t.total <- t.total + 1

let pop_class t tid =
  let rec go c =
    if c >= t.classes then None
    else
      let q = t.queues.((tid * t.classes) + c) in
      if Queue.is_empty q then go (c + 1) else Some (Queue.pop q)
  in
  go 0

let pop ~gate t =
  if t.total = 0 then None
  else
    let n = tenants t in
    let tried = ref 0 in
    let rec select () =
      (* Minimum (vt, id) over backlogged tenants not yet gate-rejected;
         scanning downward with [<=] makes equal clocks resolve to the
         lower id. *)
      let best = ref (-1) in
      for i = n - 1 downto 0 do
        if t.backlog.(i) > 0 && !tried land (1 lsl i) = 0 then
          if !best < 0 || t.vt.(i) <= t.vt.(!best) then best := i
      done;
      if !best < 0 then None
      else
        let tid = !best in
        if gate tid then begin
          match pop_class t tid with
          | None -> assert false (* backlog said nonempty *)
          | Some x ->
              t.backlog.(tid) <- t.backlog.(tid) - 1;
              t.total <- t.total - 1;
              t.vnow <- t.vt.(tid);
              Some x
        end
        else begin
          tried := !tried lor (1 lsl tid);
          select ()
        end
    in
    select ()

let charge t ~tenant amount =
  if tenant < 0 || tenant >= tenants t then
    invalid_arg "Wsched.charge: unknown tenant";
  if amount > 0 then begin
    t.charged.(tenant) <- t.charged.(tenant) + amount;
    t.vt.(tenant) <- t.vt.(tenant) + (amount * vscale / t.weights.(tenant))
  end

let granted t ~tenant = t.charged.(tenant)

let exists p t =
  let found = ref false in
  Array.iter
    (fun q -> if not !found then Queue.iter (fun x -> if p x then found := true) q)
    t.queues;
  !found

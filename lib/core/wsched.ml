(* The two-stage weighted run queue behind {!Vcpu_sched}.

   Stage 1 picks the tenant: deficit-style weighted selection over
   accumulated pCPU grant time. Each tenant carries a virtual grant
   clock that advances by [charged / weight] (scaled integers, so
   selection is exact and deterministic); the backlogged tenant with the
   smallest virtual clock runs next, ties broken toward the lower
   tenant id. A tenant that was idle re-enters at the current virtual
   now rather than its stale clock, so sleeping does not bank credit —
   the classic virtual-time activation rule that makes the queue
   work-conserving without letting a waking tenant monopolise the
   cores.

   Stage 2 picks within the tenant: strict-priority FIFO across
   admission-class ranks (critical before standard before deferrable),
   FIFO within a rank.

   With one tenant and one occupied class rank the structure degenerates
   to exactly the flat FIFO the seed scheduler used — pop order, gate
   consultation and all — which is what keeps single-tenant runs
   byte-identical to the seed baselines.

   Lanes are dynamic: [admit] appends a lane whose clock starts at the
   active minimum (never at zero — a re-admitted tenant banks no stale
   credit and cannot resurrect the share it burned in a previous life),
   and [retire] marks a lane dead. Dead lanes are never deleted — their
   [granted] totals keep feeding the metrics — but selection skips them
   and pushes/charges against them are errors. *)

type 'a t = {
  mutable weights : int array;
  classes : int;
  mutable queues : 'a Queue.t array; (* tenant * classes + class rank *)
  mutable vt : int array; (* scaled virtual grant clock per tenant *)
  mutable charged : int array; (* raw grant ns per tenant, for metrics *)
  mutable backlog : int array; (* queued element count per tenant *)
  mutable live : bool array; (* false once retired; lane is frozen *)
  mutable total : int;
  mutable vnow : int; (* virtual clock of the last tenant served *)
}

(* Virtual clocks advance by [amount * vscale / weight]: the scale keeps
   integer division from erasing small charges under large weights. *)
let vscale = 256

(* Tenant selection tracks gate-rejected tenants in an int bitmask. *)
let max_tenants = Sys.int_size - 2

let create ~weights ~classes =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Wsched.create: empty weights array (no tenants)";
  if n > max_tenants then invalid_arg "Wsched.create: too many tenants";
  Array.iteri
    (fun i w ->
      if w <= 0 then
        invalid_arg
          (Printf.sprintf "Wsched.create: non-positive weight for tenant %d" i))
    weights;
  if classes <= 0 then invalid_arg "Wsched.create: no classes";
  {
    weights = Array.copy weights;
    classes;
    queues = Array.init (n * classes) (fun _ -> Queue.create ());
    vt = Array.make n 0;
    charged = Array.make n 0;
    backlog = Array.make n 0;
    live = Array.make n true;
    total = 0;
    vnow = 0;
  }

let tenants t = Array.length t.weights
let length t = t.total
let is_empty t = t.total = 0
let backlog t ~tenant = t.backlog.(tenant)
let is_live t ~tenant = t.live.(tenant)

let clamp_cls t cls =
  if cls < 0 then 0 else if cls >= t.classes then t.classes - 1 else cls

let push t ~tenant ~cls x =
  if tenant < 0 || tenant >= tenants t then
    invalid_arg "Wsched.push: unknown tenant";
  if not t.live.(tenant) then invalid_arg "Wsched.push: retired tenant";
  (* Activation rule: an idle tenant rejoins at the current virtual now. *)
  if t.backlog.(tenant) = 0 && t.vt.(tenant) < t.vnow then
    t.vt.(tenant) <- t.vnow;
  Queue.push x t.queues.((tenant * t.classes) + clamp_cls t cls);
  t.backlog.(tenant) <- t.backlog.(tenant) + 1;
  t.total <- t.total + 1

let pop_class t tid =
  let rec go c =
    if c >= t.classes then None
    else
      let q = t.queues.((tid * t.classes) + c) in
      if Queue.is_empty q then go (c + 1) else Some (Queue.pop q)
  in
  go 0

let pop ~gate t =
  if t.total = 0 then None
  else
    let n = tenants t in
    let tried = ref 0 in
    let rec select () =
      (* Minimum (vt, id) over backlogged live tenants not yet
         gate-rejected; scanning downward with [<=] makes equal clocks
         resolve to the lower id. *)
      let best = ref (-1) in
      for i = n - 1 downto 0 do
        if t.backlog.(i) > 0 && t.live.(i) && !tried land (1 lsl i) = 0 then
          if !best < 0 || t.vt.(i) <= t.vt.(!best) then best := i
      done;
      if !best < 0 then None
      else
        let tid = !best in
        if gate tid then begin
          match pop_class t tid with
          | None -> assert false (* backlog said nonempty *)
          | Some x ->
              t.backlog.(tid) <- t.backlog.(tid) - 1;
              t.total <- t.total - 1;
              t.vnow <- t.vt.(tid);
              Some x
        end
        else begin
          tried := !tried lor (1 lsl tid);
          select ()
        end
    in
    select ()

let charge t ~tenant amount =
  if tenant < 0 || tenant >= tenants t then
    invalid_arg "Wsched.charge: unknown tenant";
  if not t.live.(tenant) then invalid_arg "Wsched.charge: retired tenant";
  if amount > 0 then begin
    t.charged.(tenant) <- t.charged.(tenant) + amount;
    t.vt.(tenant) <- t.vt.(tenant) + (amount * vscale / t.weights.(tenant))
  end

let granted t ~tenant = t.charged.(tenant)

(* --- dynamic lanes ------------------------------------------------------ *)

(* The clock a fresh lane enters at: the minimum virtual clock over live
   backlogged lanes, or virtual now when everyone is idle. Entering at
   the active minimum means the newcomer competes on equal terms with
   the most-behind incumbent (losing ties, since it has the highest id)
   and — crucially — a re-admitted tenant starts from today's clock, not
   the one it retired with: no credit resurrection. *)
let entry_clock t =
  let m = ref None in
  Array.iteri
    (fun i vt ->
      if t.backlog.(i) > 0 && t.live.(i) then
        match !m with Some v when v <= vt -> () | _ -> m := Some vt)
    t.vt;
  match !m with Some v -> v | None -> t.vnow

let append a x = Array.append a [| x |]

let admit t ~weight =
  let id = tenants t in
  if weight <= 0 then
    invalid_arg
      (Printf.sprintf "Wsched.admit: non-positive weight for tenant %d" id);
  if id >= max_tenants then invalid_arg "Wsched.admit: too many tenants";
  let vt0 = entry_clock t in
  t.weights <- append t.weights weight;
  t.queues <-
    Array.append t.queues (Array.init t.classes (fun _ -> Queue.create ()));
  t.vt <- append t.vt vt0;
  t.charged <- append t.charged 0;
  t.backlog <- append t.backlog 0;
  t.live <- append t.live true;
  id

(* Drain every queued element of one tenant, in pop order (class rank,
   then FIFO), without touching any other lane's clock. The force-retire
   path uses this to hand stranded entries back to the caller. *)
let flush t ~tenant =
  if tenant < 0 || tenant >= tenants t then
    invalid_arg "Wsched.flush: unknown tenant";
  let out = ref [] in
  for c = t.classes - 1 downto 0 do
    let q = t.queues.((tenant * t.classes) + c) in
    let drained = List.of_seq (Queue.to_seq q) in
    Queue.clear q;
    out := drained @ !out
  done;
  let n = List.length !out in
  t.backlog.(tenant) <- t.backlog.(tenant) - n;
  t.total <- t.total - n;
  !out

let retire t ~tenant =
  if tenant < 0 || tenant >= tenants t then
    invalid_arg "Wsched.retire: unknown tenant";
  if not t.live.(tenant) then invalid_arg "Wsched.retire: already retired";
  if t.backlog.(tenant) > 0 then
    invalid_arg
      (Printf.sprintf "Wsched.retire: tenant %d still has %d queued entries"
         tenant t.backlog.(tenant));
  t.live.(tenant) <- false

let exists p t =
  let found = ref false in
  Array.iter
    (fun q -> if not !found then Queue.iter (fun x -> if p x then found := true) q)
    t.queues;
  !found

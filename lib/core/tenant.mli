(** First-class tenants: the unit of isolation for the two-stage weighted
    scheduler, the overload governor's per-tenant ladders, and the
    per-tenant metrics lanes.

    Pre-existing single-tenant configurations run under the implicit
    {!single} table; only an explicit multi-tenant table ({!of_specs}
    with two or more specs) turns on per-tenant counters, trace lanes
    and export fields, keeping single-tenant runs byte-identical to the
    seed baselines. *)

open Taichi_engine

type cls = Critical | Standard | Deferrable
(** Admission classes, ordered by strictly decreasing scheduling
    priority. The overload governor sheds [Deferrable] work first and
    [Critical] work only at the deepest ladder rung. *)

val cls_name : cls -> string
(** Lower-case class name, as used in counter suffixes. *)

val cls_rank : cls -> int
(** [cls_rank c] is the strict-priority rank: 0 = highest. *)

val all_classes : cls list
(** All classes in rank order. *)

type spec = {
  name : string;
  weight : int;  (** share weight for the tenant scheduling stage *)
  cls : cls;  (** default admission class for the tenant's CP tasks *)
  dp_p99_bound : Time_ns.t;
      (** SLO contract: the bound on how far an aggressor may move this
          tenant's dataplane p99 *)
}

val spec :
  ?weight:int -> ?cls:cls -> ?dp_p99_bound:Time_ns.t -> string -> spec
(** [spec name] builds a tenant spec with weight 1, [Standard] class and
    a 150 us p99 contract. Raises [Invalid_argument] on a non-positive
    weight or empty name. *)

type t = private {
  id : int;
  name : string;
  weight : int;
  cls : cls;
  dp_p99_bound : Time_ns.t;
}
(** A registered tenant. Ids are dense, assigned in spec order. *)

type table
(** A tenant registry: either the implicit single tenant or an explicit
    multi-tenant configuration. *)

val single : table
(** The implicit one-tenant table every unconfigured run uses. *)

val of_specs : spec list -> table
(** [of_specs specs] registers tenants with ids in list order. The empty
    list yields {!single}. Raises [Invalid_argument] on duplicate
    names. *)

val count : table -> int
val is_multi : table -> bool
(** [is_multi tbl] is [true] only for an explicit table with at least two
    tenants — the gate for all per-tenant instrumentation. *)

val get : table -> int -> t
val mem : table -> int -> bool
val ids : table -> int list
val iter : (t -> unit) -> table -> unit
val total_weight : table -> int

val counter : int -> string -> string
(** [counter id suffix] is the per-tenant counter name
    [tenant.<id>.<suffix>], mirroring the global counter [<suffix>]. *)

val counter_prefix : string
(** ["tenant."] — the namespace the lints scan for per-tenant rows. *)

val parse_counter : string -> (int * string) option
(** [parse_counter name] splits [tenant.<id>.<suffix>] into
    [(id, suffix)]; [None] for names outside the namespace. *)

(** First-class tenants: the unit of isolation for the two-stage weighted
    scheduler, the overload governor's per-tenant ladders, and the
    per-tenant metrics lanes.

    Pre-existing single-tenant configurations run under the implicit
    {!single} table; only an explicit multi-tenant table ({!of_specs}
    with two or more specs) turns on per-tenant counters, trace lanes
    and export fields, keeping single-tenant runs byte-identical to the
    seed baselines.

    Explicit tables are dynamic: {!admit} grows the population mid-run
    and {!set_phase} walks each tenant through the one-way lifecycle
    [Admitted -> Active -> Draining -> Retired]. Ids are dense and never
    reused; a retired tenant keeps its id and its frozen metric lanes. *)

open Taichi_engine

type cls = Critical | Standard | Deferrable
(** Admission classes, ordered by strictly decreasing scheduling
    priority. The overload governor sheds [Deferrable] work first and
    [Critical] work only at the deepest ladder rung. *)

val cls_name : cls -> string
(** Lower-case class name, as used in counter suffixes. *)

val cls_rank : cls -> int
(** [cls_rank c] is the strict-priority rank: 0 = highest. *)

val all_classes : cls list
(** All classes in rank order. *)

type phase = Admitted | Active | Draining | Retired
(** Lifecycle states, in transition order. [Admitted] tenants have been
    accepted but not yet bound to resources; [Active] tenants schedule
    normally; [Draining] tenants finish in-flight work but admit no new
    CP tasks; [Retired] tenants are gone — their lanes are frozen, never
    deleted. *)

val phase_name : phase -> string
(** Lower-case phase name, as used in lifecycle trace events. *)

type spec = {
  name : string;
  weight : int;  (** share weight for the tenant scheduling stage *)
  cls : cls;  (** default admission class for the tenant's CP tasks *)
  dp_p99_bound : Time_ns.t;
      (** SLO contract: the bound on how far an aggressor may move this
          tenant's dataplane p99 *)
}

val spec :
  ?weight:int -> ?cls:cls -> ?dp_p99_bound:Time_ns.t -> string -> spec
(** [spec name] builds a tenant spec with weight 1, [Standard] class and
    a 150 us p99 contract. Raises [Invalid_argument] on a non-positive
    weight or empty name. *)

type t = private {
  id : int;
  name : string;
  weight : int;
  cls : cls;
  dp_p99_bound : Time_ns.t;
  mutable phase : phase;
}
(** A registered tenant. Ids are dense, assigned in spec/admission
    order. The phase is mutated only through {!set_phase}. *)

type table
(** A tenant registry: either the implicit single tenant or an explicit
    multi-tenant configuration. *)

val single : table
(** The implicit one-tenant table every unconfigured run uses. *)

val of_specs : spec list -> table
(** [of_specs specs] registers tenants with ids in list order, all
    [Active]. The empty list yields {!single}. Raises
    [Invalid_argument] naming the offending spec on a duplicate or empty
    tenant name or a non-positive weight. *)

val admit : table -> spec -> t
(** [admit tbl spec] appends a new tenant in phase [Admitted] with the
    next dense id. Raises [Invalid_argument] on a non-explicit table, a
    bad spec, or a name already held by a non-retired tenant (retired
    names are reusable — the re-admission gets a fresh id). *)

val phase : table -> int -> phase
(** Current lifecycle phase of tenant [id]. *)

val set_phase : table -> int -> phase -> unit
(** [set_phase tbl id next] advances the lifecycle. Raises
    [Invalid_argument] on any transition other than
    [Admitted -> Active -> Draining -> Retired]. *)

val live : table -> int -> bool
(** [live tbl id] is [true] for a registered, non-retired tenant. *)

val accepting : table -> int -> bool
(** [accepting tbl id] is [true] while the tenant may receive new CP
    work: phases [Admitted] and [Active] only. *)

val count : table -> int
val is_multi : table -> bool
(** [is_multi tbl] is [true] only for an explicit table with at least two
    tenants — the gate for all per-tenant instrumentation. *)

val get : table -> int -> t
val mem : table -> int -> bool
val ids : table -> int list
val iter : (t -> unit) -> table -> unit
val total_weight : table -> int

val counter : int -> string -> string
(** [counter id suffix] is the per-tenant counter name
    [tenant.<id>.<suffix>], mirroring the global counter [<suffix>]. *)

val counter_prefix : string
(** ["tenant."] — the namespace the lints scan for per-tenant rows. *)

val parse_counter : string -> (int * string) option
(** [parse_counter name] splits [tenant.<id>.<suffix>] into
    [(id, suffix)]; [None] for names outside the namespace. *)

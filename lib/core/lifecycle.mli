(** The tenant-churn lifecycle manager: live admit/retire with graceful
    drain.

    Built by {!Taichi.install} only when [Config.churn] is set, on top of
    a provisioned pool — [Config.spare_vcpus] vCPUs booted unassigned
    (tenant [-1], never scheduled) and [Config.float_services] DP
    services that can float from their resting owner to a dynamic tenant
    and back.

    {b Admission} ({!admit}) is refusable: under governor backpressure or
    an exhausted pool it returns [Error] with a reason, counted under
    [churn.admit_refused.*]. {!admit_with_backoff} retries a refusal with
    deterministic capped exponential backoff
    ([min(cap, base * 2^attempt)], at most [admit_retry_max] attempts).
    A successful admission creates the tenant's weighted-queue lane at
    the active minimum virtual clock (no banked credit on re-admission),
    its overload-governor lane, and its counter/trace lanes, then binds
    pool vCPUs and floating services to it.

    {b Retirement} ({!retire}) walks [Active -> Draining -> Retired].
    Draining sheds the tenant's parked deferred admissions, refuses new
    CP spawns (via {!accepting}), and polls for quiescence every
    [drain_poll]: registered tasks finished, vCPUs unplaced/unqueued/
    workless, rings and in-flight DP packets drained. If the window
    ([drain_window]) overruns, the drain escalates exactly once —
    remaining tasks are cancelled (reaped at their next preemptible
    boundary), placed vCPUs force-evicted, queue entries flushed, ring
    backlog discarded, with a [Recovery] "drain/forced" receipt — and
    quiescence is then re-checked on the same cadence. Finalisation
    returns every resource to the pool and freezes (never deletes) the
    tenant's governor and counter lanes, so lane sums still equal the
    globals at every instant.

    The {b zero-orphan audit} is registered as the [drain-audit]
    invariant on the machine's {!Core_state}: after every experiment, a
    retired tenant must own no vCPU, queue entry, unfinished task,
    service or resident ring descriptor. *)

open Taichi_hw
open Taichi_os
open Taichi_virt
open Taichi_dataplane

type t

type refusal = Backpressure | No_vcpus | No_services

val refusal_label : refusal -> string

val create :
  config:Config.t ->
  machine:Machine.t ->
  kernel:Kernel.t ->
  sched:Vcpu_sched.t ->
  overload:Overload.t option ->
  tenants:Tenant.table ->
  spares:Vcpu.t list ->
  floats:Dp_service.t list ->
  cp_pcpus:int list ->
  dps:Dp_service.t list ->
  recovery:Recovery.t ->
  t
(** [spares] are the pooled vCPUs (already registered, tenant [-1]);
    [floats] the services the lifecycle may reassign; [dps] every service
    on the machine (the orphan audit scans all rings); [cp_pcpus] the
    reap affinity for cancelled stragglers. Registers the [drain-audit]
    invariant. *)

val admit :
  t -> ?vcpus:int -> ?services:int -> Tenant.spec -> (int, refusal) result
(** Admit a tenant drawing [vcpus] (default 1) spares and [services]
    (default 1) floating services from the pool. Returns the new dense
    tenant id, or the refusal reason. *)

val admit_with_backoff :
  t ->
  ?on_refused:(refusal -> unit) ->
  ?vcpus:int ->
  ?services:int ->
  Tenant.spec ->
  on_admitted:(int -> unit) ->
  on_abandoned:(refusal -> unit) ->
  unit
(** {!admit} with deterministic capped-exponential retry on refusal;
    abandons (counted) after [Config.admit_retry_max] attempts.
    [?on_refused] fires on every individual refusal (including the final
    one before an abandon) — the fleet failover manager uses it to record
    per-NIC pushback receipts. *)

val retire : t -> tenant:int -> unit
(** Begin the graceful drain of a dynamically admitted tenant. Raises
    [Invalid_argument] for boot-time tenants. *)

val accepting : t -> tenant:int -> bool
(** Whether the tenant may receive new CP work ([Admitted]/[Active]). *)

val note_task : t -> tenant:int -> Task.t -> unit
(** Register a spawned CP task with its owning tenant so the drain can
    wait for (or cancel) it. No-op for boot-time tenants. *)

val on_retired : t -> (int -> unit) -> unit
(** Run a callback (in registration order) after each finalised
    retirement — the experiment driver's hook for sequencing churn. *)

val pool_size : t -> int
val free_services : t -> int

val drain_violations : t -> tenant:int -> string list
(** What currently stands between [tenant] and quiescence (unfinished
    tasks, vCPU-side violations, service backlog); [[]] means quiet. *)

open Taichi_engine
open Taichi_hw
open Taichi_accel

type t = {
  config : Config.t;
  machine : Machine.t;
  sim : Sim.t;
  table : State_table.t;
  sched : Vcpu_sched.t;
  pending : (int, unit) Hashtbl.t;
  h_triggers : Counters.handle;
  h_suppressed : Counters.handle;
  mutable triggers : int;
  mutable suppressed : int;
  mutable suppressor : (core:int -> bool) option;
}

let fire t ~core =
  Hashtbl.replace t.pending core ();
  t.triggers <- t.triggers + 1;
  Counters.incr_h (Machine.counters t.machine) t.h_triggers;
  Trace.emitf (Machine.trace t.machine) ~time:(Sim.now t.sim) ~core
    ~category:Trace.Cat.probe_hw "irq scheduled in %dns"
    t.config.Config.irq_latency;
  ignore
    (Sim.after t.sim t.config.Config.irq_latency (fun () ->
         Hashtbl.remove t.pending core;
         Vcpu_sched.on_probe_irq t.sched ~core))

let install config machine table pipeline sched =
  let t =
    {
      config;
      machine;
      sim = Machine.sim machine;
      table;
      sched;
      pending = Hashtbl.create 16;
      h_triggers = Counters.handle (Machine.counters machine) "probe.hw.triggers";
      h_suppressed =
        Counters.handle (Machine.counters machine) "probe.hw.suppressed";
      triggers = 0;
      suppressed = 0;
      suppressor = None;
    }
  in
  if config.Config.hw_probe then
    Pipeline.set_probe_hook pipeline
      (Some
         (fun pkt ->
           let core = pkt.Packet.dst_core in
           match State_table.get t.table ~core with
           | State_table.P_state -> ()
           | State_table.V_state ->
               if Hashtbl.mem t.pending core then begin
                 t.suppressed <- t.suppressed + 1;
                 Counters.incr_h (Machine.counters t.machine) t.h_suppressed
               end
               else
                 (* The injected suppressor models the accelerator failing
                    to raise the IRQ it should have: the packet simply goes
                    undetected and the software probe / slice expiry must
                    cover for it. *)
                 let suppressed_by_fault =
                   match t.suppressor with
                   | Some f -> f ~core
                   | None -> false
                 in
                 if not suppressed_by_fault then fire t ~core));
  t

let set_suppressor t f = t.suppressor <- f

(* A misfire is a spurious probe IRQ: the accelerator interrupts a core the
   scheduler believes needs no eviction. The normal pending dedup still
   applies so at most one IRQ per core is in flight. *)
let misfire t ~core =
  if not (Hashtbl.mem t.pending core) then fire t ~core

let triggers t = t.triggers
let suppressed t = t.suppressed

open Taichi_engine
open Taichi_hw
open Taichi_os
open Taichi_virt
open Taichi_accel
open Taichi_dataplane

type stats = {
  placements : int;
  probe_evictions : int;
  pending_evictions : int;
  halt_exits : int;
  rotations : int;
  lock_rescues : int;
  borrows : int;
  unsafe_suspensions : int;
}

(* A mirrored counter cell: global handle plus the per-tenant lane for
   the same name, interned once at [create] so per-event scheduler
   bookkeeping never hashes a string or formats a tenant name. *)
type cell = { ch : Counters.handle; cl : Counters.lane }

type cells = {
  c_placements : cell;
  c_slice_expiries : cell;
  c_halt_exits : cell;
  c_evict_probe : cell;
  c_evict_pending : cell;
  c_evict_halt : cell;
  c_evict_drain : cell;
  c_evict_other : (string, cell) Hashtbl.t;
      (* rare eviction causes (watchdog, …): interned on first use *)
  c_grant_ns : cell;
  h_grant_after_retire : Counters.handle;
  h_rotations : Counters.handle;
  h_rescues : Counters.handle;
  h_borrows : Counters.handle;
  h_borrow_retries : Counters.handle;
  h_unsafe : Counters.handle;
}

type t = {
  config : Config.t;
  sim : Sim.t;
  machine : Machine.t;
  ctr : Counters.t;
  cells : cells;
  cs : Core_state.t;  (* authoritative occupancy, owned by the machine *)
  kernel : Kernel.t;
  softirq : Softirq.t;
  sw : Sw_probe.t;
  table : State_table.t;
  recovery : Recovery.t;
  pending_place : (int, Vcpu.t) Hashtbl.t;  (* core -> vcpu awaiting softirq *)
  mutable vcpu_list : Vcpu.t list;  (* reverse registration order *)
  by_kcpu : (int, Vcpu.t) Hashtbl.t;
  dps : (int, Dp_service.t) Hashtbl.t;  (* physical core -> service *)
  placed : (int, Vcpu.t) Hashtbl.t;  (* physical core -> vcpu *)
  slice_timers : (int, Sim.handle) Hashtbl.t;  (* core -> expiry event *)
  runq : Vcpu.t Wsched.t;
      (* runnable unplaced vCPUs: two-stage weighted queue — tenant
         deficit-round-robin over granted pCPU time, then strict-priority
         FIFO across admission-class ranks. With the implicit single
         tenant it degenerates to the flat FIFO it replaced. *)
  in_runq : (int, unit) Hashtbl.t;  (* vid set *)
  tag_tenants : bool;  (* explicit multi-tenant table: mirror counters *)
  borrowing : (int, unit) Hashtbl.t;  (* vid set: borrow in progress *)
  borrowed_cores : (int, unit) Hashtbl.t;  (* CP pCPUs currently frozen *)
  mutable cp_pcpus : int list;
  mutable next_borrow : int;
  mutable place_gate : (int -> bool) option;
      (* overload governor's per-tenant admission gate for placements;
         [None] = open *)
  mutable s_placements : int;
  mutable s_probe_evictions : int;
  mutable s_pending_evictions : int;
  mutable s_halt_exits : int;
  mutable s_rotations : int;
  mutable s_lock_rescues : int;
  mutable s_borrows : int;
  mutable s_unsafe : int;
}

let charge_core t core d =
  if d > 0 then Accounting.charge (Machine.accounting t.machine) ~core Accounting.Switch d

let world_switch t = t.config.Config.cost.Cost_model.world_switch
let light_exit t = t.config.Config.cost.Cost_model.light_exit

(* A yield evicted within this window counts as a false positive for the
   adaptive empty-poll threshold. *)
let short_yield t = 5 * t.config.Config.cost.Cost_model.world_switch + Time_ns.us 15

let kcpu_of t v = Kernel.cpu t.kernel v.Vcpu.kcpu

let has_work t v = Kernel.cpu_has_work (kcpu_of t v)

(* --- observability ------------------------------------------------------- *)

let count t h = Counters.incr_h t.ctr h

(* Counter increments attributable to one vCPU mirror into the owning
   tenant's namespace under an explicit multi-tenant table; single-tenant
   runs emit exactly the seed counter set. Pooled spares (tenant -1,
   churn mode) mirror nowhere. *)
let count_v t v c =
  Counters.incr_h t.ctr c.ch;
  if t.tag_tenants && v.Vcpu.tenant >= 0 then
    Counters.lane_incr c.cl v.Vcpu.tenant

(* The cell for one eviction-cause label. The common causes are fields;
   anything else (watchdog and future causes) interns here, once, off
   the per-event path. *)
let evict_cell t kind =
  match Hashtbl.find_opt t.cells.c_evict_other kind with
  | Some c -> c
  | None ->
      let name = "sched.evictions." ^ kind in
      let c =
        { ch = Counters.handle t.ctr name; cl = Counters.lane t.ctr name }
      in
      Hashtbl.replace t.cells.c_evict_other kind c;
      c

(* Raw pCPU grant time, charged at teardown. Feeds the weighted queue's
   tenant clocks always (a single tenant's clock is inert), the counter
   namespace only in multi-tenant mode. A pooled spare charges nobody,
   and a straggler charge landing after its lane retired is dropped
   whole — global and mirror together, so the lane sums stay equal to
   the globals — and surfaced on its own counter. *)
let charge_grant t v occupancy =
  let tenant = v.Vcpu.tenant in
  if tenant < 0 then ()
  else if not (Wsched.is_live t.runq ~tenant) then
    count t t.cells.h_grant_after_retire
  else begin
    Wsched.charge t.runq ~tenant occupancy;
    if t.tag_tenants && occupancy > 0 then begin
      Counters.incr_h t.ctr ~by:occupancy t.cells.c_grant_ns.ch;
      Counters.lane_incr t.cells.c_grant_ns.cl ~by:occupancy tenant
    end
  end

let emitf t ~core ~category fmt =
  Trace.emitf (Machine.trace t.machine) ~time:(Sim.now t.sim) ~core ~category fmt

(* All occupancy changes go through the machine's state machine; the trace
   [core.state] records and the accelerator mirror derive from it. *)
let transition t ~core ~cause st = Core_state.transition t.cs ~core ~cause st

(* --- runnable queue ----------------------------------------------------- *)

(* Degraded mode is static partitioning: data-plane cores stay data-plane,
   so the placement entry points act as if the runqueue were empty. The
   queue itself is preserved — re-arming picks the waiters straight up. *)
let is_degraded t = Recovery.degraded t.recovery

(* The overload governor's per-tenant placement gate sits next to the
   degraded check: a denial leaves the vCPU queued (the core parks),
   exactly like an empty runqueue, so a later kick or idle notification
   retries. The gate is only consulted when there is something to place —
   a token bucket behind it must not be drained by empty polls — and the
   weighted queue consults it at most once per backlogged tenant per pop,
   so one throttled tenant cannot gate its neighbours' placements. *)
let gate_open t tenant =
  match t.place_gate with None -> true | Some allowed -> allowed tenant

let rec pop_runnable t =
  if is_degraded t then None
  else
    match Wsched.pop t.runq ~gate:(gate_open t) with
    | None -> None  (* empty, or every backlogged tenant gated *)
    | Some v ->
        Hashtbl.remove t.in_runq v.Vcpu.vid;
        (* Skip stale entries: placed meanwhile, borrowing, or out of
           work. *)
        if
          Vcpu.is_placed v
          || Hashtbl.mem t.borrowing v.Vcpu.vid
          || not (has_work t v)
        then pop_runnable t
        else Some v

(* A pooled spare (tenant -1) or a vCPU whose tenant lane has already
   retired never enters the weighted queue: the pool has no lane to queue
   on, and a retired lane's entries could not be popped anyway. Both are
   quiet no-ops — churn teardown races a late wakeup hook here. *)
let mark_runnable t v =
  if
    v.Vcpu.tenant >= 0
    && Wsched.is_live t.runq ~tenant:v.Vcpu.tenant
    && (not (Vcpu.is_placed v))
    && (not (Hashtbl.mem t.in_runq v.Vcpu.vid))
    && (not (Hashtbl.mem t.borrowing v.Vcpu.vid))
    && has_work t v
  then begin
    Wsched.push t.runq ~tenant:v.Vcpu.tenant ~cls:v.Vcpu.cls_rank v;
    Hashtbl.replace t.in_runq v.Vcpu.vid ()
  end

let runnable_waiting t =
  (not (is_degraded t))
  && Wsched.exists
       (fun v ->
         (not (Vcpu.is_placed v))
         && (not (Hashtbl.mem t.borrowing v.Vcpu.vid))
         && has_work t v)
       t.runq

(* First data-plane core currently parked, if any: the preferred landing
   spot for a vCPU with fresh work and the §4.1 rescue target. *)
let find_parked_dp t =
  Hashtbl.fold
    (fun _ dp acc ->
      match acc with
      | Some _ -> acc
      | None ->
          if Dp_service.state dp = Dp_service.Idle_parked then Some dp
          else None)
    t.dps None

(* --- placement ----------------------------------------------------------- *)

let cancel_slice t core =
  match Hashtbl.find_opt t.slice_timers core with
  | Some h ->
      Sim.cancel t.sim h;
      Hashtbl.remove t.slice_timers core
  | None -> ()

let rec arm_slice t v core =
  cancel_slice t core;
  let h = Sim.after t.sim v.Vcpu.slice (fun () -> on_slice_expiry t core) in
  Hashtbl.replace t.slice_timers core h;
  v.Vcpu.slice_started <- Sim.now t.sim

(* Bring [v] up on [core]; the core must already be committed (yielded DP
   or direct vCPU switch). The transition into [Switching From_dp] is a
   self-transition on the softirq placement path (the yield already moved
   the core there) and a fresh switch on the rotation path. *)
and back_on_core t v core ~cause =
  transition t ~core ~cause (Core_state.Switching Core_state.From_dp);
  Hashtbl.replace t.placed core v;
  v.Vcpu.placement <- Vcpu.On_core core;
  v.Vcpu.last_placed <- Sim.now t.sim;
  Kernel.set_backing_core t.kernel (kcpu_of t v) (Some core);
  t.s_placements <- t.s_placements + 1;
  count_v t v t.cells.c_placements;
  emitf t ~core ~category:Trace.Cat.sched_place "vid=%d kcpu=%d" v.Vcpu.vid
    v.Vcpu.kcpu;
  charge_core t core (world_switch t);
  ignore
    (Sim.after t.sim (world_switch t) (fun () ->
         match Hashtbl.find_opt t.placed core with
         | Some v' when v' == v ->
             Kernel.set_backed t.kernel (kcpu_of t v) true;
             transition t ~core ~cause (Core_state.Vcpu_running v.Vcpu.vid);
             arm_slice t v core
         | Some _ | None -> ()))

(* DP-to-CP switching enters guest context through the dedicated softirq
   raised on the yielding core (§4.1): commit the yield, then let the
   softirq handler perform the context switch. *)
and try_place_on_dp t v dp =
  if Dp_service.try_yield dp then begin
    let core = Dp_service.core dp in
    (* Reserve the core. The yield itself moved the core to [Switching
       From_dp], which the accelerator mirror reflects as V-state at the
       same instant: the hardware probe already treats the core as
       vCPU-bound while the softirq is in flight, so a racing packet
       evicts cleanly. *)
    Hashtbl.replace t.pending_place core v;
    Hashtbl.replace t.placed core v;
    v.Vcpu.placement <- Vcpu.On_core core;
    v.Vcpu.last_placed <- Sim.now t.sim;
    Softirq.raise_softirq t.softirq ~cpu:core ~vector:Softirq.vector_taichi;
    true
  end
  else false

and on_place_softirq t core =
  match Hashtbl.find_opt t.pending_place core with
  | None -> ()
  | Some v -> (
      Hashtbl.remove t.pending_place core;
      (* The yield may have been revoked (an eviction raced the softirq). *)
      match Hashtbl.find_opt t.placed core with
      | Some v' when v' == v && v.Vcpu.placement = Vcpu.On_core core ->
          back_on_core t v core ~cause:Core_state.Place
      | Some _ | None -> ())

(* A data-plane core crossed its empty-poll threshold. *)
and on_dp_idle t dp =
  match pop_runnable t with
  | None -> ()  (* core parks; claimed later by [try_place_parked] *)
  | Some v -> if not (try_place_on_dp t v dp) then mark_runnable t v

(* Work appeared for an unplaced vCPU: grab a parked core if one exists.
   Pooled spares (tenant -1) are never placed — they carry no work until
   the churn lifecycle assigns them to a tenant. *)
and try_place_parked t v =
  if
    v.Vcpu.tenant >= 0
    && (not (Vcpu.is_placed v))
    && not (Hashtbl.mem t.borrowing v.Vcpu.vid)
  then
    if is_degraded t then mark_runnable t v
    else
      match find_parked_dp t with
      | Some dp when gate_open t v.Vcpu.tenant && try_place_on_dp t v dp -> ()
      | Some _ | None -> mark_runnable t v

(* Tear [v] down from [core]; pollution and backed-time bookkeeping. The
   core's next owner is decided by the caller. *)
and unback t v core =
  cancel_slice t core;
  let occupancy = Sim.now t.sim - v.Vcpu.last_placed in
  charge_grant t v occupancy;
  v.Vcpu.total_backed <- v.Vcpu.total_backed + occupancy;
  Cache_model.occupy_foreign (Machine.cache t.machine) ~core occupancy;
  Kernel.set_backed t.kernel (kcpu_of t v) false;
  Kernel.set_backing_core t.kernel (kcpu_of t v) None;
  Hashtbl.remove t.placed core;
  v.Vcpu.placement <- Vcpu.Unplaced

(* Full eviction back to the data-plane service. The transition cause maps
   onto the stable eviction label exported with the trace: "probe",
   "pending" or "halt". *)
and evict_to_dp t v core ~cause =
  let kind, kcell =
    match (cause : Core_state.cause) with
    | Core_state.Probe -> ("probe", t.cells.c_evict_probe)
    | Core_state.Slice_expiry -> ("pending", t.cells.c_evict_pending)
    | Core_state.Halt -> ("halt", t.cells.c_evict_halt)
    | c ->
        let kind = Core_state.cause_label c in
        (kind, evict_cell t kind)
  in
  count_v t v kcell;
  emitf t ~core ~category:Trace.Cat.sched_evict "vid=%d kind=%s" v.Vcpu.vid kind;
  unback t v core;
  (* Entering [Switching To_dp] flips the accelerator mirror back to
     P-state at this same instant, exactly where the direct table write
     used to sit. *)
  transition t ~core ~cause (Core_state.Switching Core_state.To_dp);
  let dp = Hashtbl.find t.dps core in
  (* §4.1 safe scheduling in lock context. *)
  let cur = Kernel.current (kcpu_of t v) in
  let lock_bound = match cur with Some task -> Task.nonpreemptible task | None -> false in
  if lock_bound && t.config.Config.lock_safe_resched then rescue t v
  else begin
    if lock_bound then begin
      t.s_unsafe <- t.s_unsafe + 1;
      count t t.cells.h_unsafe
    end;
    (* The VM-exit acts as a scheduling tick inside the guest context: a
       preemptible current task returns to the runqueue, where idle CP
       pCPUs can steal it instead of waiting for the vCPU's next slot. *)
    Kernel.requeue_if_preemptible t.kernel (kcpu_of t v);
    mark_runnable t v;
    (* Another core may be sitting parked: migrate there right away
       rather than waiting for its next idle notification. *)
    try_place_parked t v
  end;
  Dp_service.resume dp ~switch_cost:(world_switch t)

(* Direct vCPU-to-vCPU switch: the core stays in V-state. *)
and switch_vcpu t ~from_v ~to_v core ~cause =
  unback t from_v core;
  t.s_rotations <- t.s_rotations + 1;
  count t t.cells.h_rotations;
  emitf t ~core ~category:Trace.Cat.sched_rotate "from=%d to=%d" from_v.Vcpu.vid
    to_v.Vcpu.vid;
  mark_runnable t from_v;
  back_on_core t to_v core ~cause

and on_slice_expiry t core =
  Hashtbl.remove t.slice_timers core;
  match Hashtbl.find_opt t.placed core with
  | None -> ()
  | Some v ->
      Vcpu.record_exit v Vmexit.Timeslice_expired;
      let dp = Hashtbl.find t.dps core in
      let pending = Dp_service.pending_work dp in
      count_v t v t.cells.c_slice_expiries;
      emitf t ~core ~category:Trace.Cat.sched_slice "vid=%d pending=%b"
        v.Vcpu.vid pending;
      if pending then begin
        t.s_pending_evictions <- t.s_pending_evictions + 1;
        v.Vcpu.slice <- t.config.Config.initial_slice;
        (* Only a yield evicted almost immediately was a false positive;
           an eviction after a long donated stretch is a successful yield
           and drives the threshold down, not up. *)
        if Sim.now t.sim - v.Vcpu.last_placed < short_yield t then
          Sw_probe.on_false_positive t.sw ~core
        else Sw_probe.on_sustained_idle t.sw ~core;
        evict_to_dp t v core ~cause:Core_state.Slice_expiry
      end
      else begin
        Sw_probe.on_sustained_idle t.sw ~core;
        if t.config.Config.adaptive_slice then
          v.Vcpu.slice <- min (2 * v.Vcpu.slice) t.config.Config.max_slice;
        charge_core t core (light_exit t);
        if runnable_waiting t then begin
          match pop_runnable t with
          | Some v' -> (
              (* Prefer spreading onto a parked core over rotating here:
                 rotation costs two world switches for zero extra
                 capacity. *)
              match find_parked_dp t with
              | Some dp when try_place_on_dp t v' dp ->
                  continue_or_halt t v core
              | Some _ | None ->
                  switch_vcpu t ~from_v:v ~to_v:v' core
                    ~cause:Core_state.Slice_expiry)
          | None -> continue_or_halt t v core
        end
        else continue_or_halt t v core
      end

and continue_or_halt t v core =
  if has_work t v then arm_slice t v core
  else halt_exit t v core

and halt_exit t v core =
  Vcpu.record_exit v Vmexit.Halt;
  t.s_halt_exits <- t.s_halt_exits + 1;
  count_v t v t.cells.c_halt_exits;
  emitf t ~core ~category:Trace.Cat.sched_halt "vid=%d" v.Vcpu.vid;
  match pop_runnable t with
  | Some v' -> switch_vcpu t ~from_v:v ~to_v:v' core ~cause:Core_state.Halt
  | None -> evict_to_dp t v core ~cause:Core_state.Halt

(* --- §4.1 lock-context rescue ------------------------------------------- *)

(* [rescue] is the counted entry point: one lock-context rescue event per
   eviction, however many placement retries it takes. The retry timer loops
   through [do_rescue] so re-entries do not inflate [s_lock_rescues]. *)
and rescue t v =
  t.s_lock_rescues <- t.s_lock_rescues + 1;
  count t t.cells.h_rescues;
  emitf t ~core:Trace.no_core ~category:Trace.Cat.sched_rescue "vid=%d"
    v.Vcpu.vid;
  do_rescue t v

and do_rescue t v =
  match find_parked_dp t with
  | Some dp when try_place_on_dp t v dp -> ()
  | Some _ | None -> borrow_cp_pcpu t v

(* The borrow operates BENEATH the OS, like the production softirq overlay:
   the chosen CP pCPU's kernel context is frozen outright (even a spinning
   task — it is burning cycles waiting for exactly the lock our vCPU
   holds), the vCPU runs on the physical core until its task leaves the
   lock context, then the pCPU is thawed. Going through the OS scheduler
   instead would deadlock: the grant would wait on spinners that wait on
   the borrowed vCPU's lock. *)
and borrow_cp_pcpu t v =
  (* Never freeze a pCPU whose current task is inside a lock or other
     non-preemptible routine: suspending a lock holder beneath the OS
     could recreate the very circular wait the rescue exists to break.
     That includes spinners — the lock's FIFO handoff can make a frozen
     waiter the next owner, freezing the lock itself. *)
  let safe_target id =
    (not (Hashtbl.mem t.borrowed_cores id))
    &&
    match Kernel.current (Kernel.cpu t.kernel id) with
    | Some task -> not (Task.nonpreemptible task)
    | None -> true
  in
  let free_cp = List.filter safe_target t.cp_pcpus in
  match free_cp with
  | [] ->
      if t.cp_pcpus = [] then begin
        t.s_unsafe <- t.s_unsafe + 1;
        count t t.cells.h_unsafe;
        mark_runnable t v
      end
      else begin
        (* All CP pCPUs carry borrows; retry shortly. *)
        count t t.cells.h_borrow_retries;
        ignore
          (Sim.after t.sim t.config.Config.borrow_slice (fun () ->
               if
                 (not (Vcpu.is_placed v))
                 && not (Hashtbl.mem t.borrowing v.Vcpu.vid)
               then do_rescue t v))
      end
  | cp_list ->
      t.s_borrows <- t.s_borrows + 1;
      count t t.cells.h_borrows;
      Hashtbl.replace t.borrowing v.Vcpu.vid ();
      let n = List.length cp_list in
      let cp_id = List.nth cp_list (t.next_borrow mod n) in
      t.next_borrow <- t.next_borrow + 1;
      Hashtbl.replace t.borrowed_cores cp_id ();
      emitf t ~core:cp_id ~category:Trace.Cat.sched_borrow "start vid=%d cp=%d"
        v.Vcpu.vid cp_id;
      (* The rescue freezes the pCPU beneath the OS: a world switch away
         from CP occupancy, then the vCPU runs on the physical core. *)
      transition t ~core:cp_id ~cause:Core_state.Lock_rescue
        (Core_state.Switching Core_state.From_dp);
      let cp = Kernel.cpu t.kernel cp_id in
      Kernel.set_backed t.kernel cp false;
      let kc = kcpu_of t v in
      v.Vcpu.placement <- Vcpu.On_core cp_id;
      v.Vcpu.last_placed <- Sim.now t.sim;
      Kernel.set_backing_core t.kernel kc (Some cp_id);
      charge_core t cp_id (world_switch t);
      ignore
        (Sim.after t.sim (world_switch t) (fun () ->
             Kernel.set_backed t.kernel kc true;
             transition t ~core:cp_id ~cause:Core_state.Borrow
               (Core_state.Vcpu_running v.Vcpu.vid);
             borrow_check t v cp_id))

and borrow_check t v cp_id =
  ignore
    (Sim.after t.sim t.config.Config.borrow_slice (fun () ->
         if
           (* The watchdog may have force-ended this borrow between two
              checks; a stale timer must not end it a second time. *)
           Hashtbl.mem t.borrowing v.Vcpu.vid
           && v.Vcpu.placement = Vcpu.On_core cp_id
         then
           let kc = kcpu_of t v in
           let still_locked =
             match Kernel.current kc with
             | Some task -> Task.nonpreemptible task
             | None -> false
           in
           if still_locked then borrow_check t v cp_id
           else begin
           (* End the borrow: thaw the pCPU. *)
           let occupancy = Sim.now t.sim - v.Vcpu.last_placed in
           charge_grant t v occupancy;
           v.Vcpu.total_backed <- v.Vcpu.total_backed + occupancy;
           Kernel.set_backed t.kernel kc false;
           Kernel.requeue_if_preemptible t.kernel kc;
           Kernel.set_backing_core t.kernel kc None;
           v.Vcpu.placement <- Vcpu.Unplaced;
           Hashtbl.remove t.borrowing v.Vcpu.vid;
           Hashtbl.remove t.borrowed_cores cp_id;
           emitf t ~core:cp_id ~category:Trace.Cat.sched_borrow
             "end vid=%d cp=%d" v.Vcpu.vid cp_id;
           transition t ~core:cp_id ~cause:Core_state.Borrow
             Core_state.Cp_dedicated;
           Kernel.set_backed t.kernel (Kernel.cpu t.kernel cp_id) true;
           mark_runnable t v;
           try_place_parked t v
         end))

(* --- hardware-probe entry ------------------------------------------------ *)

let on_probe_irq t ~core =
  match Hashtbl.find_opt t.placed core with
  | None -> ()
  | Some v ->
      Vcpu.record_exit v Vmexit.Hw_probe_irq;
      t.s_probe_evictions <- t.s_probe_evictions + 1;
      v.Vcpu.slice <- t.config.Config.initial_slice;
      if Sim.now t.sim - v.Vcpu.last_placed < short_yield t then
        Sw_probe.on_false_positive t.sw ~core
      else Sw_probe.on_sustained_idle t.sw ~core;
      evict_to_dp t v core ~cause:Core_state.Probe

(* --- kernel hooks --------------------------------------------------------- *)

let on_work_available t kcpu_id =
  match Hashtbl.find_opt t.by_kcpu kcpu_id with
  | None -> ()
  | Some v -> try_place_parked t v

let poke t ~kcpu = on_work_available t kcpu

let on_cpu_idle t kcpu_id =
  match Hashtbl.find_opt t.by_kcpu kcpu_id with
  | None -> ()
  | Some v -> (
      match v.Vcpu.placement with
      | Vcpu.Unplaced -> ()
      | Vcpu.On_core core ->
          if Hashtbl.mem t.borrowing v.Vcpu.vid then ()
          else
            ignore
              (Sim.after t.sim t.config.Config.halt_poll (fun () ->
                   match Hashtbl.find_opt t.placed core with
                   | Some v' when v' == v && not (has_work t v) ->
                       halt_exit t v core
                   | Some _ | None -> ())))

(* --- hung-vCPU / stuck-lock-holder watchdog ------------------------------ *)

let lockbound t v =
  match Kernel.current (kcpu_of t v) with
  | Some task -> Task.nonpreemptible task
  | None -> false

let overdue t v =
  Sim.now t.sim - v.Vcpu.last_placed > t.config.Config.watchdog_bound

(* A long-placed vCPU is only "hung" under eviction pressure: pending
   data-plane work the normal eviction paths should have acted on, a
   non-preemptible current task, or degraded mode reclaiming the core. A
   vCPU computing on a genuinely idle core may keep it. *)
let watchdog_pressure t v core =
  (match Hashtbl.find_opt t.dps core with
  | Some dp -> Dp_service.pending_work dp
  | None -> false)
  || lockbound t v || is_degraded t

(* Rung 3 of the escalation: a borrow exceeded the watchdog bound — the
   holder never left its lock context. Force the borrow to end: the vCPU
   is suspended unbacked (counted as an unsafe suspension) and the CP pCPU
   returns to the kernel. The guest task keeps its lock state and resumes
   the next time the vCPU is placed — graceful degradation, not repair. *)
let force_end_borrow t v cp_id =
  let kc = kcpu_of t v in
  let stuck_for = Sim.now t.sim - v.Vcpu.last_placed in
  charge_grant t v stuck_for;
  v.Vcpu.total_backed <- v.Vcpu.total_backed + stuck_for;
  Kernel.set_backed t.kernel kc false;
  Kernel.set_backing_core t.kernel kc None;
  v.Vcpu.placement <- Vcpu.Unplaced;
  Hashtbl.remove t.borrowing v.Vcpu.vid;
  Hashtbl.remove t.borrowed_cores cp_id;
  t.s_unsafe <- t.s_unsafe + 1;
  count t t.cells.h_unsafe;
  emitf t ~core:cp_id ~category:Trace.Cat.sched_borrow "forced-end vid=%d cp=%d"
    v.Vcpu.vid cp_id;
  transition t ~core:cp_id ~cause:Core_state.Watchdog Core_state.Cp_dedicated;
  Kernel.set_backed t.kernel (Kernel.cpu t.kernel cp_id) true;
  mark_runnable t v;
  Recovery.note t.recovery ~cls:"watchdog" ~action:"forced" ~latency:stuck_for

let watchdog_check t =
  (* Snapshot both maps: every action below mutates them. *)
  let placed = Hashtbl.fold (fun core v acc -> (core, v) :: acc) t.placed [] in
  List.iter
    (fun (core, v) ->
      if
        overdue t v
        && (not (Hashtbl.mem t.pending_place core))
        && Core_state.get t.cs ~core = Core_state.Vcpu_running v.Vcpu.vid
        && watchdog_pressure t v core
      then begin
        let stuck_for = Sim.now t.sim - v.Vcpu.last_placed in
        (* Rung 1: plain reschedule. Rung 2: the holder is lock-bound, so
           the eviction funnels into the §4.1 rescue (parked core or
           borrowed CP pCPU). *)
        let action =
          if lockbound t v && t.config.Config.lock_safe_resched then "rescue"
          else "resched"
        in
        evict_to_dp t v core ~cause:Core_state.Watchdog;
        Recovery.note t.recovery ~cls:"watchdog" ~action ~latency:stuck_for
      end)
    placed;
  let borrows = Hashtbl.fold (fun vid () acc -> vid :: acc) t.borrowing [] in
  List.iter
    (fun vid ->
      match List.find_opt (fun v -> v.Vcpu.vid = vid) t.vcpu_list with
      | None -> ()
      | Some v -> (
          match v.Vcpu.placement with
          | Vcpu.On_core cp_id
            when overdue t v
                 && Core_state.get t.cs ~core:cp_id
                    = Core_state.Vcpu_running vid ->
              force_end_borrow t v cp_id
          | Vcpu.On_core _ | Vcpu.Unplaced -> ()))
    borrows;
  (* A lock holder suspended unbacked (an unsafe suspension, or a borrow
     the rung above forced to end) normally waits in the runqueue for the
     next [pop_runnable] — which degraded mode blocks indefinitely. Left
     alone it would freeze with its spinners burning every CP pCPU, so
     re-rescue it here; lock safety trumps partitioning. *)
  if is_degraded t then
    List.iter
      (fun v ->
        if
          (not (Vcpu.is_placed v))
          && not (Hashtbl.mem t.borrowing v.Vcpu.vid)
        then
          match Kernel.current (kcpu_of t v) with
          | Some task
            when task.Task.locks_held > 0 || task.Task.np_depth > 0 ->
              rescue t v
          | Some _ | None -> ())
      t.vcpu_list

let rec watchdog_loop t =
  ignore
    (Sim.after t.sim t.config.Config.watchdog_period (fun () ->
         watchdog_check t;
         watchdog_loop t))

let watchdog_stuck t =
  let stuck = ref 0 in
  Hashtbl.iter
    (fun core v -> if overdue t v && watchdog_pressure t v core then incr stuck)
    t.placed;
  Hashtbl.iter
    (fun vid () ->
      match List.find_opt (fun v -> v.Vcpu.vid = vid) t.vcpu_list with
      | Some v when overdue t v -> incr stuck
      | Some _ | None -> ())
    t.borrowing;
  !stuck

(* --- construction --------------------------------------------------------- *)

(* Cross-module agreement checks registered on the authoritative state
   machine and run by [Core_state.audit] after every experiment:

   - kernel-backing: a backed virtual kCPU ⇔ its core is [Vcpu_running]
     with the matching vid (placement map or borrow bookkeeping agrees);
   - dp-view: the service's derived state is the 1:1 image of the core's
     [Dp_*] state — yielded exactly when the core is not data-plane owned
     (guards against anyone reintroducing a cached occupancy copy);
   - state-table-mirror: the accelerator's eventually-consistent P/V mirror
     matches the authoritative state, with lag bounded by the IPI latency. *)
let install_invariants t =
  Core_state.add_invariant t.cs ~name:"kernel-backing" (fun () ->
      List.concat_map
        (fun v ->
          if not (Kernel.is_backed (kcpu_of t v)) then []
          else
            match v.Vcpu.placement with
            | Vcpu.Unplaced ->
                [ Printf.sprintf "vid %d is backed but unplaced" v.Vcpu.vid ]
            | Vcpu.On_core core -> (
                match Core_state.get t.cs ~core with
                | Core_state.Vcpu_running vid when vid = v.Vcpu.vid -> []
                | st ->
                    [
                      Printf.sprintf "vid %d is backed on core %d but core is %s"
                        v.Vcpu.vid core
                        (Core_state.state_label st);
                    ]))
        t.vcpu_list);
  Core_state.add_invariant t.cs ~name:"occupancy" (fun () ->
      let out = ref [] in
      let add fmt = Printf.ksprintf (fun s -> out := s :: !out) fmt in
      for core = 0 to Core_state.cores t.cs - 1 do
        match Core_state.get t.cs ~core with
        | Core_state.Vcpu_running vid -> (
            match Hashtbl.find_opt t.placed core with
            | Some v when v.Vcpu.vid = vid ->
                if not (Kernel.is_backed (kcpu_of t v)) then
                  add "core %d runs vid %d but its kcpu is not backed" core vid
            | Some v ->
                add "core %d runs vid %d but placed map says vid %d" core vid
                  v.Vcpu.vid
            | None ->
                let borrowed =
                  Hashtbl.mem t.borrowed_cores core
                  && List.exists
                       (fun v ->
                         v.Vcpu.vid = vid
                         && v.Vcpu.placement = Vcpu.On_core core)
                       t.vcpu_list
                in
                if not borrowed then
                  add "core %d runs vid %d but no placement records it" core vid)
        | Core_state.Dp_running | Core_state.Dp_counting | Core_state.Dp_parked
          ->
            if Hashtbl.mem t.placed core then
              add "data-plane core %d still has a placed vCPU" core
        | Core_state.Offline | Core_state.Switching _ | Core_state.Cp_dedicated
          ->
            ()
      done;
      List.rev !out);
  Core_state.add_invariant t.cs ~name:"dp-view" (fun () ->
      Hashtbl.fold
        (fun core dp acc ->
          let coherent =
            match (Core_state.get t.cs ~core, Dp_service.state dp) with
            | Core_state.Dp_running, Dp_service.Processing
            | Core_state.Dp_counting, Dp_service.Counting
            | Core_state.Dp_parked, Dp_service.Idle_parked
            | ( ( Core_state.Offline | Core_state.Vcpu_running _
                | Core_state.Switching _ | Core_state.Cp_dedicated ),
                Dp_service.Yielded ) ->
                true
            | _, _ -> false
          in
          if coherent then acc
          else
            Printf.sprintf "service on core %d disagrees with the core state"
              core
            :: acc)
        t.dps []);
  Core_state.add_invariant t.cs ~name:"state-table-mirror" (fun () ->
      let ipi = (Machine.config t.machine).Machine.ipi_latency in
      let out = ref [] in
      for core = 0 to Core_state.cores t.cs - 1 do
        let expected =
          match Core_state.get t.cs ~core with
          | Core_state.Vcpu_running _
          | Core_state.Switching Core_state.From_dp ->
              State_table.V_state
          | _ -> State_table.P_state
        in
        if
          State_table.get t.table ~core <> expected
          && Sim.now t.sim - Core_state.since t.cs ~core > ipi
        then
          out :=
            Printf.sprintf "core %d mirror lags beyond the IPI latency" core
            :: !out
      done;
      List.rev !out)

let create ?tenants config machine kernel softirq sw table recovery =
  (* The platform passes its one shared mutable table under churn so
     lane ids here line up with the registry; static callers let the
     default derive a fresh (then effectively immutable) one. *)
  let tenant_table =
    match tenants with Some tbl -> tbl | None -> Config.tenant_table config
  in
  let weights =
    Array.init (Tenant.count tenant_table) (fun id ->
        (Tenant.get tenant_table id).Tenant.weight)
  in
  let ctr = Machine.counters machine in
  let cell name = { ch = Counters.handle ctr name; cl = Counters.lane ctr name } in
  let cells =
    {
      c_placements = cell "sched.placements";
      c_slice_expiries = cell "sched.slice_expiries";
      c_halt_exits = cell "sched.halt_exits";
      c_evict_probe = cell "sched.evictions.probe";
      c_evict_pending = cell "sched.evictions.pending";
      c_evict_halt = cell "sched.evictions.halt";
      c_evict_drain = cell "sched.evictions.drain";
      c_evict_other = Hashtbl.create 4;
      c_grant_ns = cell "sched.grant_ns";
      h_grant_after_retire = Counters.handle ctr "sched.grant_after_retire";
      h_rotations = Counters.handle ctr "sched.rotations";
      h_rescues = Counters.handle ctr "sched.rescues";
      h_borrows = Counters.handle ctr "sched.borrows";
      h_borrow_retries = Counters.handle ctr "sched.borrow_retries";
      h_unsafe = Counters.handle ctr "sched.unsafe_suspensions";
    }
  in
  let t =
    {
      config;
      sim = Machine.sim machine;
      machine;
      ctr;
      cells;
      cs = Machine.core_state machine;
      kernel;
      softirq;
      sw;
      table;
      recovery;
      pending_place = Hashtbl.create 16;
      vcpu_list = [];
      by_kcpu = Hashtbl.create 16;
      dps = Hashtbl.create 16;
      placed = Hashtbl.create 16;
      slice_timers = Hashtbl.create 16;
      runq = Wsched.create ~weights ~classes:(List.length Tenant.all_classes);
      in_runq = Hashtbl.create 16;
      tag_tenants = Tenant.is_multi tenant_table;
      borrowing = Hashtbl.create 16;
      borrowed_cores = Hashtbl.create 16;
      cp_pcpus = [];
      next_borrow = 0;
      place_gate = None;
      s_placements = 0;
      s_probe_evictions = 0;
      s_pending_evictions = 0;
      s_halt_exits = 0;
      s_rotations = 0;
      s_lock_rescues = 0;
      s_borrows = 0;
      s_unsafe = 0;
    }
  in
  Kernel.set_work_available_hook kernel (fun kcpu_id -> on_work_available t kcpu_id);
  Kernel.set_cpu_idle_hook kernel (fun kcpu_id -> on_cpu_idle t kcpu_id);
  install_invariants t;
  (* Degraded mode = static partitioning: on engage, return every
     co-scheduled data-plane core to its service. Lock-bound vCPUs are
     left for the watchdog's rescue rung — lock safety trumps
     partitioning. On re-arm, the preserved runqueue repopulates parked
     cores immediately. Registered unconditionally (it schedules
     nothing): degraded mode can now be entered two ways — the fault
     window under [resilience], or the overload governor's forced hold —
     and both must statically partition. *)
  Recovery.on_engage recovery (fun () ->
      let placed =
        Hashtbl.fold (fun core v acc -> (core, v) :: acc) t.placed []
      in
      List.iter
        (fun (core, v) ->
          if
            (not (Hashtbl.mem t.pending_place core))
            && Core_state.get t.cs ~core = Core_state.Vcpu_running v.Vcpu.vid
            && not (lockbound t v)
          then evict_to_dp t v core ~cause:Core_state.Watchdog)
        placed);
  Recovery.on_rearm recovery (fun () ->
      List.iter (fun v -> try_place_parked t v) t.vcpu_list);
  (* The watchdog is the safety net that unsticks lock-bound vCPUs once
     degraded mode has evicted everything else. The overload governor's
     forced Static_partition depends on it exactly like the fault window
     does: without it, a suspended lock holder leaves its spinners
     burning every CP pCPU and the ladder can never drain the backlog it
     is waiting on. *)
  if config.Config.resilience || config.Config.overload then watchdog_loop t;
  t

(* Registration is O(1): the list is kept newest-first and reversed on
   read, so registering n vCPUs is linear overall instead of the quadratic
   append-per-add it used to be. *)
let add_vcpu t v =
  t.vcpu_list <- v :: t.vcpu_list;
  Hashtbl.replace t.by_kcpu v.Vcpu.kcpu v

let vcpus t = List.rev t.vcpu_list

let register_dp t dp =
  let core = Dp_service.core dp in
  Hashtbl.replace t.dps core dp;
  Softirq.register t.softirq ~cpu:core ~vector:Softirq.vector_taichi (fun () ->
      on_place_softirq t core);
  let hooks = Dp_service.hooks dp in
  hooks.Dp_service.idle_threshold <- (fun () -> Sw_probe.threshold t.sw ~core);
  hooks.Dp_service.idle_detected <- (fun dp -> on_dp_idle t dp)

let set_cp_pcpus t ids =
  t.cp_pcpus <- ids;
  (* Dedicated CP pCPUs that nothing brought up yet become CP-occupied on
     the authoritative state machine, so a later borrow transitions from a
     truthful state. The platform may already have done this. *)
  List.iter
    (fun id ->
      if
        id >= 0
        && id < Core_state.cores t.cs
        && Core_state.get t.cs ~core:id = Core_state.Offline
      then
        transition t ~core:id ~cause:Core_state.Hotplug Core_state.Cp_dedicated)
    ids

let placed_vcpu t ~core = Hashtbl.find_opt t.placed core
let set_place_gate t gate = t.place_gate <- gate

let granted_ns t ~tenant = Wsched.granted t.runq ~tenant

(* Retry placement of every vCPU with pending work — the overload
   governor's path after a ladder relax reopens the gate. *)
let kick_runnable t = List.iter (fun v -> try_place_parked t v) t.vcpu_list

(* --- tenant churn -------------------------------------------------------- *)

let admit_tenant t ~weight = Wsched.admit t.runq ~weight

let tenant_vcpus t ~tenant =
  List.filter (fun v -> v.Vcpu.tenant = tenant) (List.rev t.vcpu_list)

(* Move a quiesced vCPU between a tenant and the spare pool (tenant -1).
   The lifecycle only calls this on vCPUs it has verified unplaced,
   unqueued and workless, so no weighted-queue entry or counter mirror can
   still carry the old id. *)
let reassign_vcpu t v ~tenant ~cls_rank =
  if Vcpu.is_placed v || Hashtbl.mem t.in_runq v.Vcpu.vid
     || Hashtbl.mem t.borrowing v.Vcpu.vid
  then
    invalid_arg
      (Printf.sprintf "Vcpu_sched.reassign_vcpu: vid %d is not quiescent"
         v.Vcpu.vid);
  v.Vcpu.tenant <- tenant;
  v.Vcpu.cls_rank <- cls_rank

(* Everything still queued for a draining tenant at force time: pull the
   entries out of the weighted queue so retirement can proceed. The
   vCPUs themselves are handed back for the caller to tear down. *)
let flush_tenant t ~tenant =
  let flushed = Wsched.flush t.runq ~tenant in
  List.iter (fun v -> Hashtbl.remove t.in_runq v.Vcpu.vid) flushed;
  flushed

(* Force-evict a draining tenant's placed vCPUs and end its borrows: the
   escalation half of the drain protocol. Lock-bound guests are NOT
   rescued back onto a core — their tasks are already cancelled, so the
   usual circular-wait hazard the rescue exists for cannot bite; they are
   suspended unbacked and reaped at the next preemptible boundary. *)
let force_evict_tenant t ~tenant =
  let placed = Hashtbl.fold (fun core v acc -> (core, v) :: acc) t.placed [] in
  List.iter
    (fun (core, v) ->
      if
        v.Vcpu.tenant = tenant
        && (not (Hashtbl.mem t.pending_place core))
        && Core_state.get t.cs ~core = Core_state.Vcpu_running v.Vcpu.vid
        && not (Hashtbl.mem t.borrowing v.Vcpu.vid)
      then begin
        if lockbound t v then begin
          (* Suspend unbacked instead of [evict_to_dp]'s rescue path. *)
          count_v t v t.cells.c_evict_drain;
          emitf t ~core ~category:Trace.Cat.sched_evict "vid=%d kind=drain"
            v.Vcpu.vid;
          unback t v core;
          transition t ~core ~cause:Core_state.Watchdog
            (Core_state.Switching Core_state.To_dp);
          t.s_unsafe <- t.s_unsafe + 1;
          count t t.cells.h_unsafe;
          Dp_service.resume (Hashtbl.find t.dps core)
            ~switch_cost:(world_switch t)
        end
        else evict_to_dp t v core ~cause:Core_state.Watchdog
      end)
    placed;
  let borrows = Hashtbl.fold (fun vid () acc -> vid :: acc) t.borrowing [] in
  List.iter
    (fun vid ->
      match List.find_opt (fun v -> v.Vcpu.vid = vid) t.vcpu_list with
      | Some v when v.Vcpu.tenant = tenant -> (
          match v.Vcpu.placement with
          | Vcpu.On_core cp_id
            when Core_state.get t.cs ~core:cp_id
                 = Core_state.Vcpu_running vid ->
              force_end_borrow t v cp_id
          | Vcpu.On_core _ | Vcpu.Unplaced -> ())
      | Some _ | None -> ())
    borrows

(* What still stands between a draining tenant and quiescence, as
   human-readable receipts. Empty = the vCPU side is quiet; the same list
   feeds both the drain poll and the post-run orphan audit. *)
let quiesce_violations t ~tenant =
  List.concat_map
    (fun v ->
      if v.Vcpu.tenant <> tenant then []
      else
        let say fmt = Printf.ksprintf (fun s -> [ s ]) fmt in
        if Vcpu.is_placed v then say "vid %d still placed" v.Vcpu.vid
        else if Hashtbl.mem t.borrowing v.Vcpu.vid then
          say "vid %d still borrowing" v.Vcpu.vid
        else if Hashtbl.mem t.in_runq v.Vcpu.vid then
          say "vid %d still queued" v.Vcpu.vid
        else if has_work t v then say "vid %d still has work" v.Vcpu.vid
        else [])
    t.vcpu_list

let retire_tenant t ~tenant = Wsched.retire t.runq ~tenant

let stats t =
  {
    placements = t.s_placements;
    probe_evictions = t.s_probe_evictions;
    pending_evictions = t.s_pending_evictions;
    halt_exits = t.s_halt_exits;
    rotations = t.s_rotations;
    lock_rescues = t.s_lock_rescues;
    borrows = t.s_borrows;
    unsafe_suspensions = t.s_unsafe;
  }

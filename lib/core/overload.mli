(** The overload governor: a live brownout ladder for CP/DP co-scheduling.

    The paper's motivating failure is load, not faults: at 4x VM density
    CP execution time degrades ~8x and VM startup blows through its SLO
    while the data plane's tail latency collapses. PR 3's recovery
    machinery only reacts to fault events; this module closes the loop on
    *load*. Every [overload_period] it samples three signals:

    + data-plane core occupancy — the delta of [Core_state] "dp_running"
      dwell across the watched DP cores over the sampling period;
    + vCPU-host runqueue depth — summed [Kernel.runqueue_length] over the
      watched kernel CPUs (the backlog of CP work behind the vCPUs);
    + sliding-window DP p99 latency — a {!Taichi_metrics.Quantile} sketch
      fed per-packet by [Dp_service.set_latency_sink].

    When at least two signals sit above their high watermarks the ladder
    escalates one rung; when all of them stay below their low watermarks
    for [overload_quiet] it relaxes one rung. Both directions require
    [overload_min_dwell] at the current rung first — hysteresis against
    flapping. The rungs:

    - {b Normal}: everything admitted, placements ungated.
    - {b Throttle}: [Standard]/[Deferrable] CP admissions and vCPU
      placements (the wakeup-IPI path) pass through per-class token
      buckets refilled at [overload_tokens_per_period].
    - {b Defer}: [Deferrable] admissions are parked on a deferred queue;
      {!backpressure} turns on for workload clients.
    - {b Shed}: [Deferrable] admissions are rejected outright (counted);
      [Standard] is deferred. Only the lowest class is ever shed.
    - {b Static_partition}: additionally pins PR 3's degraded fallback via
      [Recovery.force_engage] — load-driven and fault-driven degradation
      converge on the same static-partitioning mechanism. Relaxing off
      this rung releases the hold (with multiple lanes, only when the
      last lane leaves it).

    {b Tenant lanes.} The governor runs one independent ladder ("lane")
    per tenant in the config's tenant table. The watch sets, latency
    sketch, token buckets and deferred queue are all per-lane, so one
    tenant's CP storm or DP burst escalates only that tenant's ladder —
    the noisy neighbour is throttled while its victims stay at [Normal].
    Under the implicit single tenant there is exactly one lane whose
    counters and transition events keep the original names and format,
    so governed single-tenant runs are byte-identical to earlier
    revisions. Explicit multi-tenant lanes mirror every counter into
    [tenant.<id>.overload.*] alongside the global name and prefix
    transition payloads with [tenant=<id>].

    Transitions emit [Trace.Cat.overload] events whose payload
    ([seq=N from=a to=b held=H min=M]) lets [trace_lint] re-verify each
    lane's ladder offline, plus [overload.*] counters. Like
    [Config.resilience], the governor is an explicit opt-in
    ([Config.overload]); nothing is scheduled otherwise, keeping default
    runs bit-identical. *)

open Taichi_engine
open Taichi_hw
open Taichi_os

type t

type level = Normal | Throttle | Defer | Shed | Static_partition

(** CP admission priority classes, highest first — an alias of
    {!Tenant.cls} so tenant contracts and admission classes are the same
    type. [Critical] is never throttled (monitors, health checks);
    [Standard] is ordinary tenant work (VM lifecycle); [Deferrable] is
    batch/housekeeping — the only class the ladder will ever shed. *)
type cls = Tenant.cls = Critical | Standard | Deferrable

val level_label : level -> string

val rank : level -> int
(** Ladder depth, [Normal] = 0 … [Static_partition] = 4. *)

val cls_label : cls -> string

val create :
  ?tenants:Tenant.table -> Config.t -> Machine.t -> Kernel.t -> Recovery.t -> t
(** One lane per tenant; a single untagged lane when the table is
    implicit. Pass [?tenants] to share the platform's one mutable table
    (required under churn so {!admit_lane} ids line up with the
    registry); the default derives a fresh static table from the
    config. *)

val admit_lane : t -> tenant:int -> unit
(** Create the tagged lane for a dynamically admitted tenant. The id
    must be the next dense slot. *)

val quiesce_lane : t -> tenant:int -> unit
(** Drain-start settlement: shed (with receipts) every admission parked
    on the lane's deferred queue — a departing tenant's parked CP work
    must not run during or after its drain. *)

val retire_lane : t -> tenant:int -> unit
(** Freeze the lane at its final rung: no further samples, transitions,
    admissions or counter increments. If that rung was
    [Static_partition], its contribution to the degraded hold is
    released. Idempotent; the lane and its totals are never deleted. *)

val is_frozen : t -> tenant:int -> bool

val move_dp_watch : t -> core:int -> from_tenant:int -> to_tenant:int -> unit
(** Re-home a floating DP core's occupancy signal when the churn
    lifecycle reassigns the service, re-baselining the dwell delta. *)

val watch_dp : t -> ?tenant:int -> core:int -> unit -> unit
(** Add a data-plane core to [tenant]'s occupancy sample set
    (default lane 0). *)

val watch_kcpu : t -> ?tenant:int -> int -> unit
(** Add a kernel CPU (vCPU host) to [tenant]'s runqueue-depth sample
    set. *)

val observe_latency : t -> ?tenant:int -> Time_ns.t -> unit
(** Per-packet DP latency feed (wired to [Dp_service.set_latency_sink]),
    routed to [tenant]'s sketch. *)

val start : t -> unit
(** Begin the sampling loop. Call once, after the watch sets are final. *)

val level : t -> level
(** The deepest rung across all lanes — the machine-wide view legacy
    consumers key off. *)

val level_of : t -> tenant:int -> level
(** One lane's rung. *)

val backpressure : t -> bool
(** True when any lane sits at [Defer] or above — workload clients should
    stop submitting deferrable work. *)

val backpressure_of : t -> tenant:int -> bool

val admit :
  t -> ?tenant:int -> cls:cls -> (unit -> unit) -> [ `Admitted | `Deferred | `Shed ]
(** [admit t ~tenant ~cls run] routes one CP admission through [tenant]'s
    ladder: runs [run] now ([`Admitted]), parks it on the lane's deferred
    queue until that ladder relaxes ([`Deferred]), or drops it ([`Shed],
    counted in [overload.shed.<cls>]). *)

val place_allowed : t -> int -> bool
(** [place_allowed t tenant] is the vCPU placement gate (consumed by
    [Vcpu_sched.set_place_gate]): unlimited at [Normal], token-bucket-
    limited at deeper rungs (each rung halves the refill rate). Consumes
    a token from [tenant]'s lane when it allows. *)

val on_transition : t -> (level -> level -> unit) -> unit
(** [on_transition t f] runs [f old_level new_level] after every lane's
    transition (in registration order, after the governor's own side
    effects — forced degraded engage/release, deferred-queue drain). *)

val transitions : t -> int
val escalations : t -> int
val relaxes : t -> int

val shed : t -> cls -> int
(** Admissions dropped for [cls] so far, summed over lanes. *)

val shed_of : t -> tenant:int -> cls -> int

val deferred_pending : t -> int
(** Admissions currently parked on the deferred queues, summed over
    lanes. *)

val deferred_pending_of : t -> tenant:int -> int

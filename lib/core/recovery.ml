open Taichi_engine
open Taichi_hw

type t = {
  config : Config.t;
  machine : Machine.t;
  sim : Sim.t;
  latency : Histogram.t;
  window : Time_ns.t Queue.t;
  mutable total : int;
  mutable degraded : bool;
  mutable forced : bool;
  mutable last_event : Time_ns.t;
  mutable engaged : int;
  mutable rearmed : int;
  mutable engage_cbs : (unit -> unit) list;
  mutable rearm_cbs : (unit -> unit) list;
  h_rearmed : Counters.handle;
  h_engaged : Counters.handle;
  h_forced : Counters.handle;
  h_released : Counters.handle;
  (* [note] events carry an open (cls, action) vocabulary; the handles
     are interned per pair on first use, off the per-event path. *)
  note_cells : (string * string, Counters.handle) Hashtbl.t;
}

let create config machine =
  let h = Counters.handle (Machine.counters machine) in
  {
    config;
    machine;
    sim = Machine.sim machine;
    latency = Histogram.create ();
    window = Queue.create ();
    total = 0;
    degraded = false;
    forced = false;
    last_event = Time_ns.zero;
    engaged = 0;
    rearmed = 0;
    engage_cbs = [];
    rearm_cbs = [];
    h_rearmed = h "recovery.degraded.rearmed";
    h_engaged = h "recovery.degraded.engaged";
    h_forced = h "recovery.degraded.forced";
    h_released = h "recovery.degraded.released";
    note_cells = Hashtbl.create 8;
  }

let degraded t = t.degraded
let forced t = t.forced
let on_engage t f = t.engage_cbs <- t.engage_cbs @ [ f ]
let on_rearm t f = t.rearm_cbs <- t.rearm_cbs @ [ f ]
let engaged_count t = t.engaged
let rearmed_count t = t.rearmed
let events t = t.total
let latency_hist t = t.latency

let rearm t =
  t.degraded <- false;
  Queue.clear t.window;
  t.rearmed <- t.rearmed + 1;
  Counters.incr_h (Machine.counters t.machine) t.h_rearmed;
  Trace.emit (Machine.trace t.machine) ~time:(Sim.now t.sim)
    ~category:Trace.Cat.degraded "rearm";
  List.iter (fun f -> f ()) t.rearm_cbs

(* While degraded, poll for the quiet period: every recovery event pushes
   [last_event] forward, so the check reschedules itself until a full
   [degraded_quiet] passes with no recovery activity at all. The check
   fires one tick *after* the deadline and requires strictly more than the
   quiet period: the simulator runs same-timestamp events FIFO, so a fault
   burst landing exactly at the deadline would otherwise be processed
   after a rearm it should have suppressed — a spurious rearm/re-engage
   flap at the boundary. *)
let rec schedule_quiet_check t =
  let due = t.last_event + t.config.Config.degraded_quiet + 1 in
  ignore
    (Sim.at t.sim (max due (Sim.now t.sim)) (fun () ->
         (* A forced (load-driven) hold pins degraded mode: the quiet
            check stops polling and the eventual [force_release] re-arms
            directly. *)
         if t.degraded && not t.forced then
           if Sim.now t.sim - t.last_event > t.config.Config.degraded_quiet
           then rearm t
           else schedule_quiet_check t))

let engage t =
  t.degraded <- true;
  t.engaged <- t.engaged + 1;
  Counters.incr_h (Machine.counters t.machine) t.h_engaged;
  Trace.emitf (Machine.trace t.machine) ~time:(Sim.now t.sim)
    ~category:Trace.Cat.degraded "engage events_in_window=%d"
    (Queue.length t.window);
  List.iter (fun f -> f ()) t.engage_cbs;
  schedule_quiet_check t

(* Load-driven degradation (the overload governor's Static_partition
   rung) converges on the same mechanism as fault-driven degradation:
   the same engage callbacks evict placements, but the hold is pinned
   until the governor explicitly releases it — the fault-side quiet
   period must not re-arm underneath a still-overloaded system. *)
let force_engage t =
  if not t.forced then begin
    t.forced <- true;
    Counters.incr_h (Machine.counters t.machine) t.h_forced;
    if not t.degraded then begin
      t.degraded <- true;
      t.engaged <- t.engaged + 1;
      Counters.incr_h (Machine.counters t.machine) t.h_engaged;
      Trace.emit (Machine.trace t.machine) ~time:(Sim.now t.sim)
        ~category:Trace.Cat.degraded "engage forced=overload";
      List.iter (fun f -> f ()) t.engage_cbs
    end
    else
      Trace.emit (Machine.trace t.machine) ~time:(Sim.now t.sim)
        ~category:Trace.Cat.degraded "hold forced=overload"
  end

let force_release t =
  if t.forced then begin
    t.forced <- false;
    Counters.incr_h (Machine.counters t.machine) t.h_released;
    if t.degraded then rearm t
  end

let note t ~cls ~action ~latency =
  let h =
    match Hashtbl.find_opt t.note_cells (cls, action) with
    | Some h -> h
    | None ->
        let h =
          Counters.handle (Machine.counters t.machine)
            (Printf.sprintf "recovery.%s.%s" cls action)
        in
        Hashtbl.replace t.note_cells (cls, action) h;
        h
  in
  Counters.incr_h (Machine.counters t.machine) h;
  Histogram.add t.latency latency;
  t.total <- t.total + 1;
  let now = Sim.now t.sim in
  Trace.emitf (Machine.trace t.machine) ~time:now
    ~category:Trace.Cat.recovery "%s.%s latency=%d" cls action latency;
  t.last_event <- now;
  if t.config.Config.resilience then begin
    Queue.push now t.window;
    let horizon = now - t.config.Config.degraded_window in
    while
      (not (Queue.is_empty t.window)) && Queue.peek t.window < horizon
    do
      ignore (Queue.pop t.window)
    done;
    if
      (not t.degraded)
      && Queue.length t.window >= t.config.Config.degraded_threshold
    then engage t
  end

(** The unified IPI orchestrator (§4.2, Fig 8).

    Hooks the machine's IPI send path (the [x2apic_send_IPI] interception
    of the real kernel module) and routes interrupts across the
    virtualization boundary:

    - {b source side}: an IPI issued from a placed vCPU triggers a
      lightweight VM-exit; the orchestrator reissues it from host context.
    - {b destination side}: an IPI to a running vCPU is posted without an
      exit; an IPI to a sleeping vCPU first awakens it (asks the vCPU
      scheduler to find it a core), then delivers; pCPU targets use the
      normal fabric path.

    It also owns vCPU registration: virtual CPUs are added to the kernel
    offline and booted through INIT/SIPI-style IPIs so the OS sees them as
    native CPUs and control-plane tasks can bind to them with plain CPU
    affinity — the zero-modification transparency property. *)

open Taichi_hw
open Taichi_os
open Taichi_virt

type t

val install :
  Config.t -> Machine.t -> Kernel.t -> Vcpu_sched.t -> Recovery.t -> t
(** Installs the machine IPI interceptor. With [config.resilience] and an
    active fault injector, wakeup IPIs to sleeping vCPUs are guarded by a
    delivery watchdog: if the target is still unplaced with pending work
    after [ipi_retry_timeout], it is re-poked with exponential backoff, up
    to [ipi_retry_max] attempts ([recovery.ipi.retry]). *)

val register_vcpus : t -> first_kcpu:int -> count:int -> Vcpu.t list
(** [register_vcpus t ~first_kcpu ~count] creates [count] vCPUs backed by
    kernel logical CPUs [first_kcpu..], adds them to the kernel (offline)
    and the scheduler, and initiates their hotplug boot. Returns the
    vCPUs; they come online after the kernel's boot delay elapses in
    simulated time. With [config.resilience], each boot is watched: a vCPU
    not online after [boot_retry_timeout] gets its boot IPI re-issued with
    a doubling timeout, up to [boot_retry_max] attempts
    ([recovery.boot.retry]). *)

val online_vcpus : t -> int
(** vCPUs that completed hotplug so far. *)

val is_vcpu_kcpu : t -> int -> bool

type stats = {
  routed_to_vcpu : int;  (** IPIs whose destination was a vCPU *)
  posted : int;  (** delivered into a running vCPU without an exit *)
  wakeups : int;  (** sleeping-vCPU destinations awakened first *)
  reissued : int;  (** source-side vCPU exits with host reissue *)
}

val stats : t -> stats

(* First-class tenants. A tenant is the unit of isolation the scheduler
   and the overload governor reason about: it owns a share weight (the
   two-stage scheduler's tenant-stage currency), a default admission
   class for its control-plane tasks, and an SLO contract — the bound on
   how far a noisy neighbour may move this tenant's dataplane p99.

   The registry distinguishes the implicit single tenant every
   pre-existing experiment runs under ([single], not [explicit]) from a
   configured multi-tenant table ([of_specs]). Per-tenant counters,
   trace lanes and export fields are only materialised for explicit
   multi-tenant tables, which is what keeps single-tenant runs
   byte-identical to the seed baselines. *)

open Taichi_engine

type cls = Critical | Standard | Deferrable

let cls_name = function
  | Critical -> "critical"
  | Standard -> "standard"
  | Deferrable -> "deferrable"

let cls_rank = function Critical -> 0 | Standard -> 1 | Deferrable -> 2
let all_classes = [ Critical; Standard; Deferrable ]

type spec = {
  name : string;
  weight : int;
  cls : cls;
  dp_p99_bound : Time_ns.t;
}

let spec ?(weight = 1) ?(cls = Standard) ?(dp_p99_bound = Time_ns.us 150)
    name =
  if weight <= 0 then invalid_arg "Tenant.spec: weight must be positive";
  if name = "" then invalid_arg "Tenant.spec: empty name";
  { name; weight; cls; dp_p99_bound }

type t = {
  id : int;
  name : string;
  weight : int;
  cls : cls;
  dp_p99_bound : Time_ns.t;
}

type table = { tenants : t array; explicit : bool }

let of_spec id (s : spec) =
  {
    id;
    name = s.name;
    weight = s.weight;
    cls = s.cls;
    dp_p99_bound = s.dp_p99_bound;
  }

let single = { tenants = [| of_spec 0 (spec "default") |]; explicit = false }

let of_specs = function
  | [] -> single
  | specs ->
      let names = List.map (fun (s : spec) -> s.name) specs in
      if List.length (List.sort_uniq compare names) <> List.length names then
        invalid_arg "Tenant.of_specs: duplicate tenant names";
      { tenants = Array.of_list (List.mapi of_spec specs); explicit = true }

let count tbl = Array.length tbl.tenants
let is_multi tbl = tbl.explicit && count tbl > 1
let get tbl id = tbl.tenants.(id)
let mem tbl id = id >= 0 && id < count tbl
let ids tbl = List.init (count tbl) Fun.id
let iter f tbl = Array.iter f tbl.tenants
let total_weight tbl = Array.fold_left (fun a t -> a + t.weight) 0 tbl.tenants

(* Per-tenant counter naming convention: [tenant.<id>.<suffix>] mirrors
   the global counter [<suffix>]; the lints enforce that the per-tenant
   rows sum to the global. *)
let counter id suffix = Printf.sprintf "tenant.%d.%s" id suffix

let counter_prefix = "tenant."

(* Parse [tenant.<id>.<suffix>] back into its parts; [None] for any
   counter outside the per-tenant namespace. *)
let parse_counter name =
  match String.length name with
  | n when n > 7 && String.sub name 0 7 = counter_prefix -> (
      match String.index_from_opt name 7 '.' with
      | Some dot when dot > 7 && dot < n - 1 -> (
          match int_of_string_opt (String.sub name 7 (dot - 7)) with
          | Some id when id >= 0 ->
              Some (id, String.sub name (dot + 1) (n - dot - 1))
          | _ -> None)
      | _ -> None)
  | _ -> None

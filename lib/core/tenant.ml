(* First-class tenants. A tenant is the unit of isolation the scheduler
   and the overload governor reason about: it owns a share weight (the
   two-stage scheduler's tenant-stage currency), a default admission
   class for its control-plane tasks, and an SLO contract — the bound on
   how far a noisy neighbour may move this tenant's dataplane p99.

   The registry distinguishes the implicit single tenant every
   pre-existing experiment runs under ([single], not [explicit]) from a
   configured multi-tenant table ([of_specs]). Per-tenant counters,
   trace lanes and export fields are only materialised for explicit
   multi-tenant tables, which is what keeps single-tenant runs
   byte-identical to the seed baselines.

   Since the churn work the population is no longer frozen at
   construction: explicit tables can [admit] new tenants mid-run and walk
   each tenant through the lifecycle state machine

     Admitted -> Active -> Draining -> Retired

   Ids stay dense and are never reused — a retired tenant keeps its id
   (and its frozen counter/trace lanes) forever, so per-tenant lane sums
   still equal the globals at every instant. Re-admitting the same name
   after retirement allocates a fresh id with fresh clocks. *)

open Taichi_engine

type cls = Critical | Standard | Deferrable

let cls_name = function
  | Critical -> "critical"
  | Standard -> "standard"
  | Deferrable -> "deferrable"

let cls_rank = function Critical -> 0 | Standard -> 1 | Deferrable -> 2
let all_classes = [ Critical; Standard; Deferrable ]

type phase = Admitted | Active | Draining | Retired

let phase_name = function
  | Admitted -> "admitted"
  | Active -> "active"
  | Draining -> "draining"
  | Retired -> "retired"

type spec = {
  name : string;
  weight : int;
  cls : cls;
  dp_p99_bound : Time_ns.t;
}

let spec ?(weight = 1) ?(cls = Standard) ?(dp_p99_bound = Time_ns.us 150)
    name =
  if weight <= 0 then invalid_arg "Tenant.spec: weight must be positive";
  if name = "" then invalid_arg "Tenant.spec: empty name";
  { name; weight; cls; dp_p99_bound }

type t = {
  id : int;
  name : string;
  weight : int;
  cls : cls;
  dp_p99_bound : Time_ns.t;
  mutable phase : phase;
}

type table = { mutable tenants : t array; explicit : bool }

let of_spec id (s : spec) =
  {
    id;
    name = s.name;
    weight = s.weight;
    cls = s.cls;
    dp_p99_bound = s.dp_p99_bound;
    phase = Active;
  }

(* The shared implicit table is never mutated: [admit] and [set_phase]
   refuse non-explicit tables, so handing out one module-level value
   stays safe under domain-parallel sweeps. *)
let single = { tenants = [| of_spec 0 (spec "default") |]; explicit = false }

(* Validation that names the offending spec: the spec smart constructor
   already rejects bad fields, but [spec] is an ordinary record type, so
   a hand-built record can bypass it. *)
let check_spec ~fn pos (s : spec) =
  if s.name = "" then
    invalid_arg (Printf.sprintf "Tenant.%s: empty tenant name (spec %d)" fn pos);
  if s.weight <= 0 then
    invalid_arg
      (Printf.sprintf "Tenant.%s: non-positive weight for tenant %S" fn s.name)

let of_specs = function
  | [] -> single
  | specs ->
      List.iteri (check_spec ~fn:"of_specs") specs;
      let seen = Hashtbl.create 8 in
      List.iter
        (fun (s : spec) ->
          if Hashtbl.mem seen s.name then
            invalid_arg
              (Printf.sprintf "Tenant.of_specs: duplicate tenant name %S"
                 s.name);
          Hashtbl.add seen s.name ())
        specs;
      { tenants = Array.of_list (List.mapi of_spec specs); explicit = true }

let count tbl = Array.length tbl.tenants
let is_multi tbl = tbl.explicit && count tbl > 1
let get tbl id = tbl.tenants.(id)
let mem tbl id = id >= 0 && id < count tbl
let ids tbl = List.init (count tbl) Fun.id
let iter f tbl = Array.iter f tbl.tenants
let total_weight tbl = Array.fold_left (fun a t -> a + t.weight) 0 tbl.tenants

(* --- lifecycle ---------------------------------------------------------- *)

let phase tbl id = tbl.tenants.(id).phase
let live tbl id = mem tbl id && tbl.tenants.(id).phase <> Retired
let accepting tbl id =
  mem tbl id
  && match tbl.tenants.(id).phase with
     | Admitted | Active -> true
     | Draining | Retired -> false

(* Legal transitions only: the lifecycle is a one-way street. Boot
   tenants are created directly in [Active]; dynamically admitted ones
   start in [Admitted] and are activated once their resources are
   bound. *)
let set_phase tbl id next =
  if not tbl.explicit then
    invalid_arg "Tenant.set_phase: single-tenant table is static";
  let tenant = tbl.tenants.(id) in
  let ok =
    match (tenant.phase, next) with
    | Admitted, Active | Active, Draining | Draining, Retired -> true
    | _ -> false
  in
  if not ok then
    invalid_arg
      (Printf.sprintf "Tenant.set_phase: illegal transition %s -> %s for %S"
         (phase_name tenant.phase) (phase_name next) tenant.name);
  tenant.phase <- next

let admit tbl s =
  if not tbl.explicit then
    invalid_arg "Tenant.admit: single-tenant table is static";
  check_spec ~fn:"admit" (count tbl) s;
  (* A name is reusable once its previous holder retired: only the live
     population must be unambiguous. *)
  Array.iter
    (fun t ->
      if t.phase <> Retired && t.name = s.name then
        invalid_arg
          (Printf.sprintf "Tenant.admit: duplicate tenant name %S" s.name))
    tbl.tenants;
  let t = { (of_spec (count tbl) s) with phase = Admitted } in
  tbl.tenants <- Array.append tbl.tenants [| t |];
  t

(* Per-tenant counter naming convention: [tenant.<id>.<suffix>] mirrors
   the global counter [<suffix>]; the lints enforce that the per-tenant
   rows sum to the global. *)
let counter id suffix = Printf.sprintf "tenant.%d.%s" id suffix

let counter_prefix = "tenant."

(* Parse [tenant.<id>.<suffix>] back into its parts; [None] for any
   counter outside the per-tenant namespace. *)
let parse_counter name =
  match String.length name with
  | n when n > 7 && String.sub name 0 7 = counter_prefix -> (
      match String.index_from_opt name 7 '.' with
      | Some dot when dot > 7 && dot < n - 1 -> (
          match int_of_string_opt (String.sub name 7 (dot - 7)) with
          | Some id when id >= 0 ->
              Some (id, String.sub name (dot + 1) (n - dot - 1))
          | _ -> None)
      | _ -> None)
  | _ -> None

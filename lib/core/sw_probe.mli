(** The software workload probe: adaptive yield criteria (§4.3).

    Keeps, per data-plane core, the consecutive-empty-poll threshold N that
    decides when the poll loop declares idleness. N adapts from VM-exit
    reasons: a time-slice-expiry exit means the data plane stayed idle, so
    N shrinks (yield sooner, donate more cycles); a hardware-probe exit
    means the yield was a false positive, so N doubles (filter harder). *)

open Taichi_hw

type t

val create : ?machine:Machine.t -> Config.t -> cores:int -> t
(** [create ?machine config ~cores]. When [machine] is given, threshold
    adjustments are emitted into the machine trace ([probe.sw] category)
    and counted in the machine's counter registry. *)

val threshold : t -> core:int -> int
(** Current N for [core]. *)

val on_sustained_idle : t -> core:int -> unit
(** A time-slice-expiry VM-exit happened while this core hosted a vCPU. *)

val on_false_positive : t -> core:int -> unit
(** The hardware probe (or pending work at slice expiry) evicted a vCPU
    from this core — the yield fired too eagerly. *)

val false_positives : t -> core:int -> int
val adjustments : t -> int

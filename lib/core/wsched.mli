(** Two-stage weighted run queue: tenant stage (weighted
    deficit-round-robin over accumulated grant time, work-conserving),
    then class stage (strict-priority FIFO over admission-class ranks).

    Pure and deterministic — integer virtual clocks, no wall time, no
    randomness — so it is property-testable in isolation; {!Vcpu_sched}
    drives it as its runnable queue. With a single tenant and a single
    occupied class it reduces exactly to the flat FIFO the seed
    scheduler used.

    Lanes are dynamic: {!admit} grows the queue mid-run and {!retire}
    freezes a lane without deleting it, so tenant ids stay dense and
    cumulative grant totals survive the tenant. *)

type 'a t

val create : weights:int array -> classes:int -> 'a t
(** [create ~weights ~classes] builds an empty queue with one share
    weight per tenant (ids are the array indices) and [classes] strict
    priority ranks per tenant. Raises [Invalid_argument] naming the
    offender on an empty weights array or a non-positive weight, and on
    [classes <= 0] or more tenants than an int bitmask can track. *)

val admit : 'a t -> weight:int -> int
(** [admit t ~weight] appends a live lane and returns its tenant id.
    The new lane's virtual clock starts at the active minimum (the
    smallest clock among live backlogged lanes, or virtual now when all
    are idle): a newcomer competes on equal terms and a re-admitted
    tenant banks no credit from its previous life. No other lane's
    clock is disturbed. *)

val retire : 'a t -> tenant:int -> unit
(** [retire t ~tenant] marks the lane dead: selection skips it and
    further pushes/charges raise. The lane keeps its id and its
    {!granted} total. Raises [Invalid_argument] if the lane still has
    queued entries (see {!flush}) or was already retired. *)

val flush : 'a t -> tenant:int -> 'a list
(** [flush t ~tenant] removes and returns every queued element of one
    tenant in pop order (class rank, then FIFO), leaving all other
    lanes' clocks untouched. The force-retire path drains with this
    before {!retire}. *)

val is_live : 'a t -> tenant:int -> bool
(** [false] once the lane has been retired. *)

val tenants : 'a t -> int
val length : 'a t -> int
val is_empty : 'a t -> bool

val backlog : 'a t -> tenant:int -> int
(** Queued elements for one tenant. *)

val push : 'a t -> tenant:int -> cls:int -> 'a -> unit
(** [push t ~tenant ~cls x] enqueues [x] on [tenant]'s rank-[cls] FIFO
    (out-of-range ranks are clamped). A tenant idle until now re-enters
    at the current virtual time — sleeping banks no credit. *)

val pop : gate:(int -> bool) -> 'a t -> 'a option
(** [pop ~gate t] serves the backlogged tenant with the smallest virtual
    grant clock (ties to the lower id) whose [gate tenant] consents,
    popping its highest-priority non-empty class FIFO. Tenants whose
    gate refuses are skipped for this pop only; [None] when empty or
    every backlogged tenant is gated. The gate is consulted at most once
    per tenant per pop, and never when the queue is empty. *)

val charge : 'a t -> tenant:int -> int -> unit
(** [charge t ~tenant ns] accounts [ns] of pCPU grant time to [tenant],
    advancing its virtual clock by [ns / weight]. *)

val granted : 'a t -> tenant:int -> int
(** Cumulative raw grant time charged to [tenant]. *)

val exists : ('a -> bool) -> 'a t -> bool
(** [exists p t] is [true] iff any queued element satisfies [p]. *)

(** Two-stage weighted run queue: tenant stage (weighted
    deficit-round-robin over accumulated grant time, work-conserving),
    then class stage (strict-priority FIFO over admission-class ranks).

    Pure and deterministic — integer virtual clocks, no wall time, no
    randomness — so it is property-testable in isolation; {!Vcpu_sched}
    drives it as its runnable queue. With a single tenant and a single
    occupied class it reduces exactly to the flat FIFO the seed
    scheduler used. *)

type 'a t

val create : weights:int array -> classes:int -> 'a t
(** [create ~weights ~classes] builds an empty queue with one share
    weight per tenant (ids are the array indices) and [classes] strict
    priority ranks per tenant. Raises [Invalid_argument] on an empty or
    non-positive weight vector, [classes <= 0], or more tenants than an
    int bitmask can track. *)

val tenants : 'a t -> int
val length : 'a t -> int
val is_empty : 'a t -> bool

val backlog : 'a t -> tenant:int -> int
(** Queued elements for one tenant. *)

val push : 'a t -> tenant:int -> cls:int -> 'a -> unit
(** [push t ~tenant ~cls x] enqueues [x] on [tenant]'s rank-[cls] FIFO
    (out-of-range ranks are clamped). A tenant idle until now re-enters
    at the current virtual time — sleeping banks no credit. *)

val pop : gate:(int -> bool) -> 'a t -> 'a option
(** [pop ~gate t] serves the backlogged tenant with the smallest virtual
    grant clock (ties to the lower id) whose [gate tenant] consents,
    popping its highest-priority non-empty class FIFO. Tenants whose
    gate refuses are skipped for this pop only; [None] when empty or
    every backlogged tenant is gated. The gate is consulted at most once
    per tenant per pop, and never when the queue is empty. *)

val charge : 'a t -> tenant:int -> int -> unit
(** [charge t ~tenant ns] accounts [ns] of pCPU grant time to [tenant],
    advancing its virtual clock by [ns / weight]. *)

val granted : 'a t -> tenant:int -> int
(** Cumulative raw grant time charged to [tenant]. *)

val exists : ('a -> bool) -> 'a t -> bool
(** [exists p t] is [true] iff any queued element satisfies [p]. *)

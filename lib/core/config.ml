open Taichi_engine
open Taichi_virt

type t = {
  n_vcpus : int;
  initial_slice : Time_ns.t;
  max_slice : Time_ns.t;
  threshold_init : int;
  threshold_min : int;
  threshold_max : int;
  threshold_dec : int;
  halt_poll : Time_ns.t;
  irq_latency : Time_ns.t;
  borrow_slice : Time_ns.t;
  hw_probe : bool;
  lock_safe_resched : bool;
  adaptive_slice : bool;
  adaptive_threshold : bool;
  cost : Cost_model.t;
  resilience : bool;
  watchdog_period : Time_ns.t;
  watchdog_bound : Time_ns.t;
  boot_retry_timeout : Time_ns.t;
  boot_retry_max : int;
  ipi_retry_timeout : Time_ns.t;
  ipi_retry_max : int;
  mirror_resync_period : Time_ns.t;
  degraded_window : Time_ns.t;
  degraded_threshold : int;
  degraded_quiet : Time_ns.t;
  overload : bool;
  overload_period : Time_ns.t;
  overload_min_dwell : Time_ns.t;
  overload_quiet : Time_ns.t;
  overload_p99_bound : Time_ns.t;
  overload_busy_high : float;
  overload_busy_low : float;
  overload_runq_high : int;
  overload_runq_low : int;
  overload_tokens_per_period : int;
  overload_token_burst : int;
  tenants : Tenant.spec list;
  (* Tenant churn: live admit/retire with graceful drain. [churn] arms
     the lifecycle manager; [spare_vcpus] and [float_services] provision
     the unassigned pool dynamic tenants draw from. *)
  churn : bool;
  spare_vcpus : int;
  float_services : int;
  drain_window : Time_ns.t;  (** bound on graceful drain before force *)
  drain_poll : Time_ns.t;  (** quiescence re-check period while draining *)
  admit_retry_base : Time_ns.t;  (** first backoff step after a refusal *)
  admit_retry_cap : Time_ns.t;  (** backoff ceiling *)
  admit_retry_max : int;  (** attempts before the admission is abandoned *)
}

let default =
  {
    n_vcpus = 8;
    initial_slice = Time_ns.us 50;
    max_slice = Time_ns.us 100;
    threshold_init = 200;
    threshold_min = 50;
    threshold_max = 1000;
    threshold_dec = 50;
    halt_poll = Time_ns.us 10;
    irq_latency = Time_ns.ns 300;
    borrow_slice = Time_ns.us 50;
    hw_probe = true;
    lock_safe_resched = true;
    adaptive_slice = true;
    adaptive_threshold = true;
    cost = Cost_model.default;
    resilience = false;
    watchdog_period = Time_ns.us 100;
    watchdog_bound = Time_ns.ms 1;
    boot_retry_timeout = Time_ns.ms 12;
    boot_retry_max = 10;
    ipi_retry_timeout = Time_ns.us 10;
    ipi_retry_max = 3;
    mirror_resync_period = Time_ns.us 50;
    degraded_window = Time_ns.ms 2;
    degraded_threshold = 12;
    degraded_quiet = Time_ns.ms 4;
    overload = false;
    overload_period = Time_ns.us 200;
    overload_min_dwell = Time_ns.us 400;
    overload_quiet = Time_ns.ms 1;
    overload_p99_bound = Time_ns.us 150;
    overload_busy_high = 0.85;
    overload_busy_low = 0.50;
    overload_runq_high = 6;
    overload_runq_low = 2;
    overload_tokens_per_period = 4;
    overload_token_burst = 8;
    tenants = [];
    churn = false;
    spare_vcpus = 0;
    float_services = 0;
    drain_window = Time_ns.ms 2;
    drain_poll = Time_ns.us 100;
    admit_retry_base = Time_ns.us 200;
    admit_retry_cap = Time_ns.ms 2;
    admit_retry_max = 8;
  }

let no_hw_probe t = { t with hw_probe = false }
let fixed_slice t = { t with adaptive_slice = false }
let fixed_threshold t = { t with adaptive_threshold = false }
let unsafe_locks t = { t with lock_safe_resched = false }
let resilient t = { t with resilience = true }
let with_overload t = { t with overload = true }
let with_tenants t specs = { t with tenants = specs }

let with_churn ?(spare_vcpus = 4) ?(float_services = 2) t =
  { t with churn = true; spare_vcpus; float_services }

(* Note: builds a FRESH table on every call. Static callers may do this
   freely (the table is then immutable in practice); the platform builds
   exactly one per system and threads it through install so churn-time
   mutation is seen by every layer (see System.create). *)
let tenant_table t = Tenant.of_specs t.tenants

(** Tai Chi configuration.

    All tunables of the scheduling framework in one record. Values marked
    "paper" are taken directly from the publication; the rest are
    consistent order-of-magnitude engineering choices documented here. *)

open Taichi_engine
open Taichi_virt

type t = {
  n_vcpus : int;
      (** over-provisioned vCPUs registered as native CPUs; default one per
          data-plane core *)
  initial_slice : Time_ns.t;  (** paper: 50 µs (§4.1) *)
  max_slice : Time_ns.t;
      (** cap for the doubling slice (100 µs); bounds worst-case data-plane
          recovery when the hardware probe is absent *)
  threshold_init : int;
      (** initial empty-poll count N before a yield (§4.3) *)
  threshold_min : int;
  threshold_max : int;
  threshold_dec : int;  (** additive decrease on sustained idleness *)
  halt_poll : Time_ns.t;
      (** how long a workless vCPU may linger before a Halt exit *)
  irq_latency : Time_ns.t;
      (** accelerator-to-core IRQ delivery latency for the hardware probe *)
  borrow_slice : Time_ns.t;
      (** re-check period while a lock-holding vCPU borrows a CP pCPU *)
  hw_probe : bool;  (** enable the hardware workload probe *)
  lock_safe_resched : bool;
      (** enable §4.1 safe CP-to-DP scheduling in lock context *)
  adaptive_slice : bool;  (** double the slice on expiry exits *)
  adaptive_threshold : bool;  (** adapt N from VM-exit reasons *)
  cost : Cost_model.t;
  resilience : bool;
      (** arm the recovery machinery (watchdogs, retries, mirror resync,
          degraded mode). Off by default: the timers it schedules would
          perturb the deterministic event order of happy-path runs. *)
  watchdog_period : Time_ns.t;  (** hung-vCPU watchdog scan cadence *)
  watchdog_bound : Time_ns.t;
      (** max time a vCPU may stay placed with eviction pressure (pending
          DP work, lock-bound, or borrowing) before the watchdog escalates *)
  boot_retry_timeout : Time_ns.t;
      (** hotplug boot watchdog: re-issue the boot IPI if the vCPU is not
          online after this long (doubles per retry) *)
  boot_retry_max : int;
  ipi_retry_timeout : Time_ns.t;
      (** wakeup-IPI delivery watchdog: re-poke an unplaced vCPU with
          pending work after this long (doubles per retry) *)
  ipi_retry_max : int;
  mirror_resync_period : Time_ns.t;
      (** state-table divergence detector cadence *)
  degraded_window : Time_ns.t;
      (** sliding window over recovery events for the degraded trigger *)
  degraded_threshold : int;
      (** recovery events within [degraded_window] that trip degraded mode *)
  degraded_quiet : Time_ns.t;
      (** recovery-quiet time before co-scheduling re-arms *)
  overload : bool;
      (** arm the overload governor (live brownout ladder). Off by
          default for the same reason as [resilience]: its sampling timer
          would perturb the event order of existing runs. *)
  overload_period : Time_ns.t;  (** governor sampling cadence *)
  overload_min_dwell : Time_ns.t;
      (** minimum time at a ladder level before the next transition *)
  overload_quiet : Time_ns.t;
      (** how long every signal must stay below its low watermark before
          the ladder relaxes one rung *)
  overload_p99_bound : Time_ns.t;
      (** sliding-window DP p99 latency guardrail (escalation signal) *)
  overload_busy_high : float;
      (** DP-core busy fraction above which the occupancy signal trips *)
  overload_busy_low : float;  (** busy fraction below which it clears *)
  overload_runq_high : int;
      (** summed vCPU-host runqueue depth above which the queue signal
          trips *)
  overload_runq_low : int;  (** runqueue depth below which it clears *)
  overload_tokens_per_period : int;
      (** CP placement/admission tokens refilled per [overload_period] at
          the Throttle rung (deeper rungs halve this) *)
  overload_token_burst : int;  (** token-bucket capacity *)
  tenants : Tenant.spec list;
      (** explicit multi-tenant table; [[]] (the default) runs the
          implicit single tenant and keeps every pre-existing experiment
          byte-identical to the seed baselines *)
  churn : bool;
      (** arm the tenant-churn lifecycle manager (live admit/retire with
          graceful drain); off by default so static runs build no pool *)
  spare_vcpus : int;
      (** unassigned vCPUs provisioned at boot for dynamically admitted
          tenants to draw on *)
  float_services : int;
      (** DP services (taken from the end of the service list) that the
          lifecycle may float to dynamic tenants and back *)
  drain_window : Time_ns.t;
      (** bound on a graceful drain; overrun escalates to force-retire *)
  drain_poll : Time_ns.t;  (** quiescence re-check period while draining *)
  admit_retry_base : Time_ns.t;
      (** first backoff step after an admission refusal *)
  admit_retry_cap : Time_ns.t;  (** capped-backoff ceiling *)
  admit_retry_max : int;  (** attempts before an admission is abandoned *)
}

val default : t
(** The full Tai Chi configuration: everything enabled, paper timings. *)

val no_hw_probe : t -> t
(** §6.4 ablation: disable the hardware workload probe. *)

val fixed_slice : t -> t
(** Ablation: disable adaptive time slices. *)

val fixed_threshold : t -> t
(** Ablation: disable the adaptive empty-poll threshold. *)

val unsafe_locks : t -> t
(** Ablation: disable lock-context safe rescheduling. *)

val resilient : t -> t
(** Arm the recovery machinery (see [resilience]). Used by the [chaos]
    experiment; plain experiments keep it off so their event schedules
    stay bit-for-bit identical to earlier releases. *)

val with_overload : t -> t
(** Arm the overload governor (see [overload]). Like [resilient], an
    explicit opt-in so default runs schedule no governor timer. *)

val with_tenants : t -> Tenant.spec list -> t
(** Configure an explicit tenant table (see [tenants]). *)

val with_churn : ?spare_vcpus:int -> ?float_services:int -> t -> t
(** Arm the tenant-churn lifecycle (see [churn]); defaults provision 4
    spare vCPUs and 2 floating DP services for dynamic tenants. *)

val tenant_table : t -> Tenant.table
(** The registry derived from [tenants]: {!Tenant.single} when the list
    is empty. Builds a fresh table per call — the platform constructs
    exactly one per system and threads that instance everywhere, so
    churn-time mutations are shared. *)

open Taichi_engine
open Taichi_hw
open Taichi_os
open Taichi_metrics

type level = Normal | Throttle | Defer | Shed | Static_partition
type cls = Critical | Standard | Deferrable

let level_label = function
  | Normal -> "normal"
  | Throttle -> "throttle"
  | Defer -> "defer"
  | Shed -> "shed"
  | Static_partition -> "static_partition"

let rank = function
  | Normal -> 0
  | Throttle -> 1
  | Defer -> 2
  | Shed -> 3
  | Static_partition -> 4

let cls_label = function
  | Critical -> "critical"
  | Standard -> "standard"
  | Deferrable -> "deferrable"

type t = {
  config : Config.t;
  machine : Machine.t;
  kernel : Kernel.t;
  recovery : Recovery.t;
  sim : Sim.t;
  cs : Core_state.t;
  sketch : Quantile.t;
  mutable dp_cores : int list;  (* reverse registration order *)
  mutable kcpus : int list;
  prev_dwell : (int, Time_ns.t) Hashtbl.t;  (* core -> last dp_running dwell *)
  deferred : (cls * (unit -> unit)) Queue.t;
  mutable level : level;
  mutable entered : Time_ns.t;  (* when the current rung was entered *)
  mutable calm_since : Time_ns.t option;  (* all signals under low marks since *)
  mutable seq : int;  (* transition sequence number, 1-based *)
  mutable started : bool;
  (* Token buckets, refilled every sampling period at a per-rung rate. *)
  mutable place_tokens : int;
  mutable std_tokens : int;
  mutable def_tokens : int;
  mutable s_transitions : int;
  mutable s_escalations : int;
  mutable s_relaxes : int;
  shed_counts : (cls, int) Hashtbl.t;
  mutable transition_cbs : (level -> level -> unit) list;
}

let count t name = Counters.incr (Machine.counters t.machine) name

let create config machine kernel recovery =
  let sim = Machine.sim machine in
  (* The sketch window spans a handful of sampling periods, so the p99
     signal reflects the recent regime, not the whole run. *)
  let slice = Stdlib.max 1 config.Config.overload_period in
  {
    config;
    machine;
    kernel;
    recovery;
    sim;
    cs = Machine.core_state machine;
    sketch = Quantile.create ~slices:8 ~slice ();
    dp_cores = [];
    kcpus = [];
    prev_dwell = Hashtbl.create 8;
    deferred = Queue.create ();
    level = Normal;
    entered = Time_ns.zero;
    calm_since = None;
    seq = 0;
    started = false;
    place_tokens = config.Config.overload_token_burst;
    std_tokens = config.Config.overload_token_burst;
    def_tokens = config.Config.overload_token_burst;
    s_transitions = 0;
    s_escalations = 0;
    s_relaxes = 0;
    shed_counts = Hashtbl.create 4;
    transition_cbs = [];
  }

let watch_dp t ~core = t.dp_cores <- core :: t.dp_cores
let watch_kcpu t kcpu = t.kcpus <- kcpu :: t.kcpus
let observe_latency t lat = Quantile.observe t.sketch ~now:(Sim.now t.sim) lat
let level t = t.level
let backpressure t = rank t.level >= rank Defer
let on_transition t f = t.transition_cbs <- t.transition_cbs @ [ f ]
let transitions t = t.s_transitions
let escalations t = t.s_escalations
let relaxes t = t.s_relaxes
let shed t cls = Option.value ~default:0 (Hashtbl.find_opt t.shed_counts cls)
let deferred_pending t = Queue.length t.deferred

(* --- token buckets -------------------------------------------------------- *)

(* Each rung below Throttle halves the refill rate: admission pressure
   degrades monotonically with ladder depth. *)
let refill_rate t =
  let base = t.config.Config.overload_tokens_per_period in
  match t.level with
  | Normal | Throttle -> base
  | Defer -> Stdlib.max 1 (base / 2)
  | Shed | Static_partition -> Stdlib.max 1 (base / 4)

let refill t =
  let burst = t.config.Config.overload_token_burst in
  let rate = refill_rate t in
  t.place_tokens <- Stdlib.min burst (t.place_tokens + rate);
  t.std_tokens <- Stdlib.min burst (t.std_tokens + rate);
  t.def_tokens <- Stdlib.min burst (t.def_tokens + rate)

let take_cls_token t cls =
  match cls with
  | Critical -> true
  | Standard ->
      if t.std_tokens > 0 then begin
        t.std_tokens <- t.std_tokens - 1;
        true
      end
      else false
  | Deferrable ->
      if t.def_tokens > 0 then begin
        t.def_tokens <- t.def_tokens - 1;
        true
      end
      else false

let place_allowed t () =
  match t.level with
  | Normal -> true
  | Static_partition -> false (* degraded: static partitioning *)
  | Throttle | Defer | Shed ->
      if t.place_tokens > 0 then begin
        t.place_tokens <- t.place_tokens - 1;
        true
      end
      else begin
        count t "overload.place_denied";
        false
      end

(* --- admission ------------------------------------------------------------ *)

let run_now t cls run =
  count t (Printf.sprintf "overload.admitted.%s" (cls_label cls));
  run ();
  `Admitted

let park t cls run =
  count t (Printf.sprintf "overload.deferred.%s" (cls_label cls));
  Queue.push (cls, run) t.deferred;
  `Deferred

let drop t cls =
  Hashtbl.replace t.shed_counts cls (shed t cls + 1);
  count t (Printf.sprintf "overload.shed.%s" (cls_label cls));
  `Shed

let admit t ~cls run =
  match (t.level, cls) with
  | Normal, _ | _, Critical -> run_now t cls run
  | Throttle, (Standard | Deferrable) ->
      if take_cls_token t cls then run_now t cls run else park t cls run
  | Defer, Standard ->
      if take_cls_token t cls then run_now t cls run else park t cls run
  | Defer, Deferrable -> park t cls run
  | (Shed | Static_partition), Standard -> park t cls run
  | (Shed | Static_partition), Deferrable -> drop t cls

(* Re-route every parked admission through the (now shallower) ladder;
   whatever is still inadmissible parks again. *)
let drain_deferred t =
  let pending = Queue.create () in
  Queue.transfer t.deferred pending;
  Queue.iter (fun (cls, run) -> ignore (admit t ~cls run)) pending

(* --- ladder --------------------------------------------------------------- *)

let goto t to_ =
  let from = t.level in
  let now = Sim.now t.sim in
  let held = now - t.entered in
  t.seq <- t.seq + 1;
  t.level <- to_;
  t.entered <- now;
  t.calm_since <- None;
  t.s_transitions <- t.s_transitions + 1;
  count t "overload.transitions";
  count t (Printf.sprintf "overload.enter.%s" (level_label to_));
  if rank to_ > rank from then begin
    t.s_escalations <- t.s_escalations + 1;
    count t "overload.escalations"
  end
  else begin
    t.s_relaxes <- t.s_relaxes + 1;
    count t "overload.relaxes"
  end;
  Trace.emitf (Machine.trace t.machine) ~time:now ~category:Trace.Cat.overload
    "seq=%d from=%s to=%s held=%d min=%d" t.seq (level_label from)
    (level_label to_) held t.config.Config.overload_min_dwell;
  (* The final rung converges on PR 3's degraded fallback: load-driven
     static partitioning pins the same mechanism fault bursts engage. *)
  if to_ = Static_partition then Recovery.force_engage t.recovery;
  if from = Static_partition then Recovery.force_release t.recovery;
  if rank to_ < rank from then drain_deferred t;
  List.iter (fun f -> f from to_) t.transition_cbs

let next_up = function
  | Normal -> Throttle
  | Throttle -> Defer
  | Defer -> Shed
  | Shed | Static_partition -> Static_partition

let next_down = function
  | Static_partition -> Shed
  | Shed -> Defer
  | Defer -> Throttle
  | Throttle | Normal -> Normal

(* --- signals -------------------------------------------------------------- *)

let dp_running_dwell t ~core =
  match List.assoc_opt "dp_running" (Core_state.dwell t.cs ~core) with
  | Some d -> d
  | None -> Time_ns.zero

(* Fraction of the last sampling period the watched DP cores spent
   actually processing packets (dwell delta of the authoritative state
   machine's [Dp_running] label). *)
let sample_busy t =
  match t.dp_cores with
  | [] -> 0.0
  | cores ->
      let period = t.config.Config.overload_period in
      let total =
        List.fold_left
          (fun acc core ->
            let d = dp_running_dwell t ~core in
            let prev =
              Option.value ~default:Time_ns.zero
                (Hashtbl.find_opt t.prev_dwell core)
            in
            Hashtbl.replace t.prev_dwell core d;
            acc + Stdlib.max 0 (d - prev))
          0 cores
      in
      float_of_int total /. float_of_int (period * List.length cores)

let sample_runq t =
  List.fold_left
    (fun acc k -> acc + Kernel.runqueue_length (Kernel.cpu t.kernel k))
    0 t.kcpus

let sample_p99 t = Quantile.quantile t.sketch ~now:(Sim.now t.sim) 99.0

let sample_and_step t =
  let c = t.config in
  let now = Sim.now t.sim in
  let busy = sample_busy t in
  let runq = sample_runq t in
  let p99 = sample_p99 t in
  count t "overload.samples";
  let bound = c.Config.overload_p99_bound in
  let p99_over = match p99 with Some p -> p >= bound | None -> false in
  let p99_under = match p99 with Some p -> p <= bound / 2 | None -> true in
  let over_votes =
    (if busy >= c.Config.overload_busy_high then 1 else 0)
    + (if runq >= c.Config.overload_runq_high then 1 else 0)
    + if p99_over then 1 else 0
  in
  let under =
    busy <= c.Config.overload_busy_low
    && runq <= c.Config.overload_runq_low
    && p99_under
  in
  let held = now - t.entered in
  if over_votes >= 2 then begin
    t.calm_since <- None;
    if held >= c.Config.overload_min_dwell && t.level <> Static_partition then
      goto t (next_up t.level)
  end
  else if under then begin
    (match t.calm_since with
    | None -> t.calm_since <- Some now
    | Some _ -> ());
    match t.calm_since with
    | Some calm
      when t.level <> Normal
           && now - calm >= c.Config.overload_quiet
           && held >= c.Config.overload_min_dwell ->
        goto t (next_down t.level)
    | _ -> ()
  end
  else t.calm_since <- None

let rec tick t =
  ignore
    (Sim.after t.sim t.config.Config.overload_period (fun () ->
         refill t;
         sample_and_step t;
         tick t))

let start t =
  if not t.started then begin
    t.started <- true;
    t.entered <- Sim.now t.sim;
    (* Baseline the dwell deltas so the first sample covers one period,
       not the whole history before [start]. *)
    List.iter
      (fun core -> Hashtbl.replace t.prev_dwell core (dp_running_dwell t ~core))
      t.dp_cores;
    tick t
  end

open Taichi_engine
open Taichi_hw
open Taichi_os
open Taichi_metrics

type level = Normal | Throttle | Defer | Shed | Static_partition
type cls = Tenant.cls = Critical | Standard | Deferrable

let level_label = function
  | Normal -> "normal"
  | Throttle -> "throttle"
  | Defer -> "defer"
  | Shed -> "shed"
  | Static_partition -> "static_partition"

let rank = function
  | Normal -> 0
  | Throttle -> 1
  | Defer -> 2
  | Shed -> 3
  | Static_partition -> 4

let cls_label = Tenant.cls_name

(* One brownout ladder per tenant. Under the implicit single tenant there
   is exactly one lane, untagged: its counters and transition events keep
   the seed names and formats, so governed single-tenant runs stay
   byte-identical. Tagged lanes (explicit multi-tenant tables) mirror
   every counter into [tenant.<id>.*] alongside the global name and
   prefix their transition events with [tenant=<id>], giving each tenant
   an independently verifiable ladder chain.

   Lanes are created on admit and frozen — never deleted — on retire: a
   frozen lane keeps its counters and final level forever (so per-tenant
   sums still equal the globals) but is excluded from sampling, token
   refill, admission and every live-state fold. *)
type lane = {
  tid : int;
  tagged : bool;
  mutable frozen : bool;
  sketch : Quantile.t;
  mutable dp_cores : int list;  (* reverse registration order *)
  mutable kcpus : int list;
  prev_dwell : (int, Time_ns.t) Hashtbl.t;  (* core -> last dp_running dwell *)
  deferred : (cls * (unit -> unit)) Queue.t;
  mutable level : level;
  mutable entered : Time_ns.t;  (* when the current rung was entered *)
  mutable calm_since : Time_ns.t option;  (* all signals under low marks since *)
  mutable seq : int;  (* transition sequence number, 1-based *)
  (* Token buckets, refilled every sampling period at a per-rung rate. *)
  mutable place_tokens : int;
  mutable std_tokens : int;
  mutable def_tokens : int;
  mutable s_transitions : int;
  mutable s_escalations : int;
  mutable s_relaxes : int;
  shed_counts : (cls, int) Hashtbl.t;
}

(* A mirrored counter cell: the global handle plus the per-tenant lane
   for the same name, both interned once at [create]. Incrementing one
   is two array stores — no string hashing, no [Tenant.counter]
   sprintf — which matters because admission verdicts and ladder
   samples are per-event. *)
type cell = { ch : Counters.handle; cl : Counters.lane }

(* One cell per counter the governor touches; the per-class and
   per-level families are arrays indexed by [cls_rank] / [rank], so the
   seed's [Printf.sprintf "overload.admitted.%s"] per admission is a
   plain array index now. *)
type cells = {
  c_place_denied : cell;
  c_admitted : cell array; (* by cls rank *)
  c_deferred : cell array;
  c_shed : cell array;
  c_transitions : cell;
  c_enter : cell array; (* by level rank *)
  c_escalations : cell;
  c_relaxes : cell;
  c_samples : cell;
}

type t = {
  config : Config.t;
  machine : Machine.t;
  kernel : Kernel.t;
  recovery : Recovery.t;
  sim : Sim.t;
  cs : Core_state.t;
  ctr : Counters.t;
  cells : cells;
  mutable lanes : lane array;
  mutable started : bool;
  mutable engaged_lanes : int;
      (* lanes currently at Static_partition: the degraded hold releases
         only when the last of them relaxes *)
  mutable transition_cbs : (level -> level -> unit) list;
}

let make_cells ctr =
  let cell name = { ch = Counters.handle ctr name; cl = Counters.lane ctr name } in
  let by_cls prefix =
    Array.of_list
      (List.map (fun c -> cell (prefix ^ cls_label c)) Tenant.all_classes)
  in
  {
    c_place_denied = cell "overload.place_denied";
    c_admitted = by_cls "overload.admitted.";
    c_deferred = by_cls "overload.deferred.";
    c_shed = by_cls "overload.shed.";
    c_transitions = cell "overload.transitions";
    c_enter =
      Array.of_list
        (List.map
           (fun lv -> cell ("overload.enter." ^ level_label lv))
           [ Normal; Throttle; Defer; Shed; Static_partition ]);
    c_escalations = cell "overload.escalations";
    c_relaxes = cell "overload.relaxes";
    c_samples = cell "overload.samples";
  }

let lane_count t l c =
  Counters.incr_h t.ctr c.ch;
  if l.tagged then Counters.lane_incr c.cl l.tid

let make_lane config ~tid ~tagged =
  (* The sketch window spans a handful of sampling periods, so the p99
     signal reflects the recent regime, not the whole run. *)
  let slice = Stdlib.max 1 config.Config.overload_period in
  {
    tid;
    tagged;
    frozen = false;
    sketch = Quantile.create ~slices:8 ~slice ();
    dp_cores = [];
    kcpus = [];
    prev_dwell = Hashtbl.create 8;
    deferred = Queue.create ();
    level = Normal;
    entered = Time_ns.zero;
    calm_since = None;
    seq = 0;
    place_tokens = config.Config.overload_token_burst;
    std_tokens = config.Config.overload_token_burst;
    def_tokens = config.Config.overload_token_burst;
    s_transitions = 0;
    s_escalations = 0;
    s_relaxes = 0;
    shed_counts = Hashtbl.create 4;
  }

let create ?tenants config machine kernel recovery =
  (* The platform passes its one shared table so lanes added by churn
     admissions line up with the registry; static callers fall back to a
     fresh (immutable-in-practice) table. *)
  let table =
    match tenants with Some t -> t | None -> Config.tenant_table config
  in
  let tagged = Tenant.is_multi table in
  let ctr = Machine.counters machine in
  {
    config;
    machine;
    kernel;
    recovery;
    sim = Machine.sim machine;
    cs = Machine.core_state machine;
    ctr;
    cells = make_cells ctr;
    lanes =
      Array.init (Tenant.count table) (fun tid ->
          make_lane config ~tid ~tagged);
    started = false;
    engaged_lanes = 0;
    transition_cbs = [];
  }

let lane t tenant =
  if tenant < 0 || tenant >= Array.length t.lanes then t.lanes.(0)
  else t.lanes.(tenant)

let watch_dp t ?(tenant = 0) ~core () =
  let l = lane t tenant in
  l.dp_cores <- core :: l.dp_cores

let watch_kcpu t ?(tenant = 0) kcpu =
  let l = lane t tenant in
  l.kcpus <- kcpu :: l.kcpus

let observe_latency t ?(tenant = 0) lat =
  let l = lane t tenant in
  if not l.frozen then Quantile.observe l.sketch ~now:(Sim.now t.sim) lat

let fold_lanes t f init = Array.fold_left f init t.lanes

(* Live-state folds skip frozen lanes: a retired tenant's final rung is
   history, not pressure. Cumulative stats (transitions, sheds) keep
   counting frozen lanes — those totals must still match the globals. *)
let level t =
  fold_lanes t
    (fun acc l ->
      if (not l.frozen) && rank l.level > rank acc then l.level else acc)
    Normal

let level_of t ~tenant = (lane t tenant).level
let is_frozen t ~tenant = (lane t tenant).frozen

let backpressure_of t ~tenant =
  let l = lane t tenant in
  (not l.frozen) && rank l.level >= rank Defer

let backpressure t =
  fold_lanes t
    (fun acc l -> acc || ((not l.frozen) && rank l.level >= rank Defer))
    false
let on_transition t f = t.transition_cbs <- t.transition_cbs @ [ f ]
let transitions t = fold_lanes t (fun a l -> a + l.s_transitions) 0
let escalations t = fold_lanes t (fun a l -> a + l.s_escalations) 0
let relaxes t = fold_lanes t (fun a l -> a + l.s_relaxes) 0

let lane_shed l cls =
  Option.value ~default:0 (Hashtbl.find_opt l.shed_counts cls)

let shed t cls = fold_lanes t (fun a l -> a + lane_shed l cls) 0
let shed_of t ~tenant cls = lane_shed (lane t tenant) cls
let deferred_pending t = fold_lanes t (fun a l -> a + Queue.length l.deferred) 0
let deferred_pending_of t ~tenant = Queue.length (lane t tenant).deferred

(* --- token buckets -------------------------------------------------------- *)

(* Each rung below Throttle halves the refill rate: admission pressure
   degrades monotonically with ladder depth. *)
let refill_rate t l =
  let base = t.config.Config.overload_tokens_per_period in
  match l.level with
  | Normal | Throttle -> base
  | Defer -> Stdlib.max 1 (base / 2)
  | Shed | Static_partition -> Stdlib.max 1 (base / 4)

let refill t l =
  let burst = t.config.Config.overload_token_burst in
  let rate = refill_rate t l in
  l.place_tokens <- Stdlib.min burst (l.place_tokens + rate);
  l.std_tokens <- Stdlib.min burst (l.std_tokens + rate);
  l.def_tokens <- Stdlib.min burst (l.def_tokens + rate)

let take_cls_token l cls =
  match cls with
  | Critical -> true
  | Standard ->
      if l.std_tokens > 0 then begin
        l.std_tokens <- l.std_tokens - 1;
        true
      end
      else false
  | Deferrable ->
      if l.def_tokens > 0 then begin
        l.def_tokens <- l.def_tokens - 1;
        true
      end
      else false

let place_allowed t tenant =
  let l = lane t tenant in
  if l.frozen then false
  else
  match l.level with
  | Normal -> true
  | Static_partition -> false (* degraded: static partitioning *)
  | Throttle | Defer | Shed ->
      if l.place_tokens > 0 then begin
        l.place_tokens <- l.place_tokens - 1;
        true
      end
      else begin
        lane_count t l t.cells.c_place_denied;
        false
      end

(* --- admission ------------------------------------------------------------ *)

let run_now t l cls run =
  lane_count t l t.cells.c_admitted.(Tenant.cls_rank cls);
  run ();
  `Admitted

let park t l cls run =
  lane_count t l t.cells.c_deferred.(Tenant.cls_rank cls);
  Queue.push (cls, run) l.deferred;
  `Deferred

let drop t l cls =
  Hashtbl.replace l.shed_counts cls (lane_shed l cls + 1);
  lane_count t l t.cells.c_shed.(Tenant.cls_rank cls);
  `Shed

let lane_admit t l ~cls run =
  match (l.level, cls) with
  | Normal, _ | _, Critical -> run_now t l cls run
  | Throttle, (Standard | Deferrable) ->
      if take_cls_token l cls then run_now t l cls run else park t l cls run
  | Defer, Standard ->
      if take_cls_token l cls then run_now t l cls run else park t l cls run
  | Defer, Deferrable -> park t l cls run
  | (Shed | Static_partition), Standard -> park t l cls run
  | (Shed | Static_partition), Deferrable -> drop t l cls

let admit t ?(tenant = 0) ~cls run =
  let l = lane t tenant in
  (* A frozen lane admits nothing and counts nothing: the platform's
     lifecycle gate refuses retired tenants upstream, so reaching here is
     a late straggler that must not thaw the lane's counters. *)
  if l.frozen then `Shed else lane_admit t l ~cls run

(* Re-route every parked admission through the (now shallower) ladder;
   whatever is still inadmissible parks again. *)
let drain_deferred t l =
  let pending = Queue.create () in
  Queue.transfer l.deferred pending;
  Queue.iter (fun (cls, run) -> ignore (lane_admit t l ~cls run)) pending

(* --- ladder --------------------------------------------------------------- *)

let goto t l to_ =
  let from = l.level in
  let now = Sim.now t.sim in
  let held = now - l.entered in
  l.seq <- l.seq + 1;
  l.level <- to_;
  l.entered <- now;
  l.calm_since <- None;
  l.s_transitions <- l.s_transitions + 1;
  lane_count t l t.cells.c_transitions;
  lane_count t l t.cells.c_enter.(rank to_);
  if rank to_ > rank from then begin
    l.s_escalations <- l.s_escalations + 1;
    lane_count t l t.cells.c_escalations
  end
  else begin
    l.s_relaxes <- l.s_relaxes + 1;
    lane_count t l t.cells.c_relaxes
  end;
  (if l.tagged then
     Trace.emitf (Machine.trace t.machine) ~time:now
       ~category:Trace.Cat.overload "tenant=%d seq=%d from=%s to=%s held=%d min=%d"
       l.tid l.seq (level_label from) (level_label to_) held
       t.config.Config.overload_min_dwell
   else
     Trace.emitf (Machine.trace t.machine) ~time:now
       ~category:Trace.Cat.overload "seq=%d from=%s to=%s held=%d min=%d" l.seq
       (level_label from) (level_label to_) held
       t.config.Config.overload_min_dwell);
  (* The final rung converges on PR 3's degraded fallback: load-driven
     static partitioning pins the same mechanism fault bursts engage. The
     hold is engaged by the first lane to reach the bottom rung and
     released only when the last of them leaves it. *)
  if to_ = Static_partition then begin
    t.engaged_lanes <- t.engaged_lanes + 1;
    if t.engaged_lanes = 1 then Recovery.force_engage t.recovery
  end;
  if from = Static_partition then begin
    t.engaged_lanes <- t.engaged_lanes - 1;
    if t.engaged_lanes = 0 then Recovery.force_release t.recovery
  end;
  if rank to_ < rank from then drain_deferred t l;
  List.iter (fun f -> f from to_) t.transition_cbs

let next_up = function
  | Normal -> Throttle
  | Throttle -> Defer
  | Defer -> Shed
  | Shed | Static_partition -> Static_partition

let next_down = function
  | Static_partition -> Shed
  | Shed -> Defer
  | Defer -> Throttle
  | Throttle | Normal -> Normal

(* --- signals -------------------------------------------------------------- *)

let dp_running_dwell t ~core =
  match List.assoc_opt "dp_running" (Core_state.dwell t.cs ~core) with
  | Some d -> d
  | None -> Time_ns.zero

(* Fraction of the last sampling period the lane's DP cores spent
   actually processing packets (dwell delta of the authoritative state
   machine's [Dp_running] label). *)
let sample_busy t l =
  match l.dp_cores with
  | [] -> 0.0
  | cores ->
      let period = t.config.Config.overload_period in
      let total =
        List.fold_left
          (fun acc core ->
            let d = dp_running_dwell t ~core in
            let prev =
              Option.value ~default:Time_ns.zero
                (Hashtbl.find_opt l.prev_dwell core)
            in
            Hashtbl.replace l.prev_dwell core d;
            acc + Stdlib.max 0 (d - prev))
          0 cores
      in
      float_of_int total /. float_of_int (period * List.length cores)

let sample_runq t l =
  List.fold_left
    (fun acc k -> acc + Kernel.runqueue_length (Kernel.cpu t.kernel k))
    0 l.kcpus

let sample_p99 t l = Quantile.quantile l.sketch ~now:(Sim.now t.sim) 99.0

let sample_and_step t l =
  let c = t.config in
  let now = Sim.now t.sim in
  let busy = sample_busy t l in
  let runq = sample_runq t l in
  let p99 = sample_p99 t l in
  lane_count t l t.cells.c_samples;
  let bound = c.Config.overload_p99_bound in
  let p99_over = match p99 with Some p -> p >= bound | None -> false in
  let p99_under = match p99 with Some p -> p <= bound / 2 | None -> true in
  let over_votes =
    (if busy >= c.Config.overload_busy_high then 1 else 0)
    + (if runq >= c.Config.overload_runq_high then 1 else 0)
    + if p99_over then 1 else 0
  in
  let under =
    busy <= c.Config.overload_busy_low
    && runq <= c.Config.overload_runq_low
    && p99_under
  in
  let held = now - l.entered in
  if over_votes >= 2 then begin
    l.calm_since <- None;
    if held >= c.Config.overload_min_dwell && l.level <> Static_partition then
      goto t l (next_up l.level)
  end
  else if under then begin
    (match l.calm_since with
    | None -> l.calm_since <- Some now
    | Some _ -> ());
    match l.calm_since with
    | Some calm
      when l.level <> Normal
           && now - calm >= c.Config.overload_quiet
           && held >= c.Config.overload_min_dwell ->
        goto t l (next_down l.level)
    | _ -> ()
  end
  else l.calm_since <- None

let rec tick t =
  ignore
    (Sim.after t.sim t.config.Config.overload_period (fun () ->
         Array.iter
           (fun l ->
             if not l.frozen then begin
               refill t l;
               sample_and_step t l
             end)
           t.lanes;
         tick t))

(* --- churn: lane lifecycle ------------------------------------------------ *)

(* A dynamically admitted tenant gets a fresh tagged lane. Ids must stay
   aligned with the tenant registry, so the new lane's id is required to
   be exactly the next slot. *)
let admit_lane t ~tenant =
  if tenant <> Array.length t.lanes then
    invalid_arg
      (Printf.sprintf "Overload.admit_lane: expected tenant %d, got %d"
         (Array.length t.lanes) tenant);
  let l = make_lane t.config ~tid:tenant ~tagged:true in
  if t.started then l.entered <- Sim.now t.sim;
  t.lanes <- Array.append t.lanes [| l |]

(* Drain-start settlement: parked admissions of a departing tenant are
   CP work that must not run during or after the drain, so they are shed
   now, with the usual receipts, while the lane is still live. *)
let quiesce_lane t ~tenant =
  let l = lane t tenant in
  let pending = Queue.create () in
  Queue.transfer l.deferred pending;
  Queue.iter (fun (cls, _run) -> ignore (drop t l cls)) pending

(* Freeze the lane at whatever rung it last held. Walking it back down
   would fabricate transitions faster than the ladder's minimum dwell
   allows, so the level is left as history; if that rung was the bottom
   one, the degraded hold it contributed is released here so a departed
   aggressor cannot pin the machine in static partitioning forever. *)
let retire_lane t ~tenant =
  let l = lane t tenant in
  if not l.frozen then begin
    quiesce_lane t ~tenant;
    if l.level = Static_partition then begin
      t.engaged_lanes <- t.engaged_lanes - 1;
      if t.engaged_lanes = 0 then Recovery.force_release t.recovery
    end;
    l.frozen <- true
  end

(* Move a floating DP core's busy signal between lanes, re-baselining the
   dwell delta so the receiving lane's first sample covers one period of
   its own traffic, not the core's whole history. *)
let move_dp_watch t ~core ~from_tenant ~to_tenant =
  let src = lane t from_tenant and dst = lane t to_tenant in
  src.dp_cores <- List.filter (fun c -> c <> core) src.dp_cores;
  Hashtbl.remove src.prev_dwell core;
  dst.dp_cores <- core :: dst.dp_cores;
  Hashtbl.replace dst.prev_dwell core (dp_running_dwell t ~core)

let start t =
  if not t.started then begin
    t.started <- true;
    let now = Sim.now t.sim in
    Array.iter
      (fun l ->
        l.entered <- now;
        (* Baseline the dwell deltas so the first sample covers one
           period, not the whole history before [start]. *)
        List.iter
          (fun core ->
            Hashtbl.replace l.prev_dwell core (dp_running_dwell t ~core))
          l.dp_cores)
      t.lanes;
    tick t
  end

open Taichi_engine
open Taichi_hw

type t = {
  config : Config.t;
  machine : Machine.t option;
  thresholds : int array;
  fps : int array;
  mutable adjustments : int;
}

let create ?machine config ~cores =
  {
    config;
    machine;
    thresholds = Array.make cores config.Config.threshold_init;
    fps = Array.make cores 0;
    adjustments = 0;
  }

let threshold t ~core = t.thresholds.(core)

let note t ~core event =
  match t.machine with
  | None -> ()
  | Some m ->
      Counters.incr (Machine.counters m) ("probe.sw." ^ event);
      Trace.emitf (Machine.trace m) ~time:(Sim.now (Machine.sim m)) ~core
        ~category:Trace.Cat.probe_sw "%s threshold=%d" event t.thresholds.(core)

let on_sustained_idle t ~core =
  if t.config.Config.adaptive_threshold then begin
    let n = t.thresholds.(core) - t.config.Config.threshold_dec in
    t.thresholds.(core) <- max t.config.Config.threshold_min n;
    t.adjustments <- t.adjustments + 1;
    note t ~core "sustained_idle"
  end

let on_false_positive t ~core =
  t.fps.(core) <- t.fps.(core) + 1;
  if t.config.Config.adaptive_threshold then begin
    let n = t.thresholds.(core) * 2 in
    t.thresholds.(core) <- min t.config.Config.threshold_max n;
    t.adjustments <- t.adjustments + 1
  end;
  note t ~core "false_positive"

let false_positives t ~core = t.fps.(core)
let adjustments t = t.adjustments

open Taichi_engine
open Taichi_hw

type t = {
  config : Config.t;
  machine : Machine.t option;
  h_sustained_idle : Counters.handle option;
  h_false_positive : Counters.handle option;
  thresholds : int array;
  fps : int array;
  mutable adjustments : int;
}

let create ?machine config ~cores =
  let h name =
    Option.map (fun m -> Counters.handle (Machine.counters m) name) machine
  in
  {
    config;
    machine;
    h_sustained_idle = h "probe.sw.sustained_idle";
    h_false_positive = h "probe.sw.false_positive";
    thresholds = Array.make cores config.Config.threshold_init;
    fps = Array.make cores 0;
    adjustments = 0;
  }

let threshold t ~core = t.thresholds.(core)

let note t ~core h event =
  match (t.machine, h) with
  | Some m, Some h ->
      Counters.incr_h (Machine.counters m) h;
      Trace.emitf (Machine.trace m) ~time:(Sim.now (Machine.sim m)) ~core
        ~category:Trace.Cat.probe_sw "%s threshold=%d" event t.thresholds.(core)
  | _ -> ()

let on_sustained_idle t ~core =
  if t.config.Config.adaptive_threshold then begin
    let n = t.thresholds.(core) - t.config.Config.threshold_dec in
    t.thresholds.(core) <- max t.config.Config.threshold_min n;
    t.adjustments <- t.adjustments + 1;
    note t ~core t.h_sustained_idle "sustained_idle"
  end

let on_false_positive t ~core =
  t.fps.(core) <- t.fps.(core) + 1;
  if t.config.Config.adaptive_threshold then begin
    let n = t.thresholds.(core) * 2 in
    t.thresholds.(core) <- min t.config.Config.threshold_max n;
    t.adjustments <- t.adjustments + 1
  end;
  note t ~core t.h_false_positive "false_positive"

let false_positives t ~core = t.fps.(core)
let adjustments t = t.adjustments

open Taichi_engine
open Taichi_hw
open Taichi_os
open Taichi_virt
open Taichi_accel
open Taichi_dataplane

type refusal = Backpressure | No_vcpus | No_services

let refusal_label = function
  | Backpressure -> "backpressure"
  | No_vcpus -> "no_vcpus"
  | No_services -> "no_services"

(* Everything a dynamically admitted tenant holds, so retirement can give
   it all back. The task registry is append-only during the tenant's
   life; finished tasks are pruned lazily at drain polls. *)
type assignment = {
  vcpus : Vcpu.t list;
  services : Dp_service.t list;
  mutable tasks : Task.t list;
  mutable forced : bool;
}

type t = {
  config : Config.t;
  sim : Sim.t;
  machine : Machine.t;
  kernel : Kernel.t;
  sched : Vcpu_sched.t;
  overload : Overload.t option;
  tenants : Tenant.table;
  recovery : Recovery.t;
  dps : Dp_service.t list;  (* every service, for the orphan audit *)
  cp_pcpus : int list;  (* reap affinity for cancelled stragglers *)
  mutable pool : Vcpu.t list;  (* unassigned spares, tenant -1 *)
  mutable free_floats : Dp_service.t list;
  assigned : (int, assignment) Hashtbl.t;
  mutable on_retired : (int -> unit) list;
  h_admit_refused : Counters.handle;
  h_refused_by : Counters.handle array; (* indexed by refusal *)
  h_admitted : Counters.handle;
  h_admit_abandoned : Counters.handle;
  h_admit_retries : Counters.handle;
  h_drain_forced : Counters.handle;
  h_drain_flushed : Counters.handle;
  h_drain_discarded : Counters.handle;
  h_retired : Counters.handle;
  h_drains : Counters.handle;
}

let count ?by t h = Counters.incr_h ?by (Machine.counters t.machine) h

let emitf t fmt =
  Trace.emitf (Machine.trace t.machine) ~time:(Sim.now t.sim)
    ~core:Trace.no_core ~category:Trace.Cat.churn fmt

let create ~config ~machine ~kernel ~sched ~overload ~tenants ~spares ~floats
    ~cp_pcpus ~dps ~recovery =
  let h = Counters.handle (Machine.counters machine) in
  let t =
    {
      config;
      sim = Machine.sim machine;
      machine;
      kernel;
      sched;
      overload;
      tenants;
      recovery;
      dps;
      cp_pcpus;
      pool = spares;
      free_floats = floats;
      assigned = Hashtbl.create 8;
      on_retired = [];
      h_admit_refused = h "churn.admit_refused";
      h_refused_by =
        Array.map
          (fun r -> h ("churn.admit_refused." ^ refusal_label r))
          [| Backpressure; No_vcpus; No_services |];
      h_admitted = h "churn.admitted";
      h_admit_abandoned = h "churn.admit_abandoned";
      h_admit_retries = h "churn.admit_retries";
      h_drain_forced = h "churn.drain_forced";
      h_drain_flushed = h "churn.drain_flushed";
      h_drain_discarded = h "churn.drain_discarded_pkts";
      h_retired = h "churn.retired";
      h_drains = h "churn.drains";
    }
  in
  (* The zero-orphan audit, run with every machine-wide [Core_state.audit]
     after each experiment: a retired tenant must leave nothing behind —
     no vCPU, no queue entry, no registered unfinished task, no owned
     service, no resident ring descriptor stamped with its id, no parked
     deferred admission. *)
  Core_state.add_invariant
    (Machine.core_state machine)
    ~name:"drain-audit"
    (fun () ->
      let out = ref [] in
      let add fmt = Printf.ksprintf (fun s -> out := s :: !out) fmt in
      Tenant.iter
        (fun tn ->
          if tn.Tenant.phase = Tenant.Retired then begin
            let id = tn.Tenant.id in
            List.iter
              (fun v -> add "retired tenant %d still owns vid %d" id v.Vcpu.vid)
              (Vcpu_sched.tenant_vcpus sched ~tenant:id);
            List.iter
              (fun s -> add "retired tenant %d: %s" id s)
              (Vcpu_sched.quiesce_violations sched ~tenant:id);
            (match Hashtbl.find_opt t.assigned id with
            | Some a ->
                List.iter
                  (fun task ->
                    if not (Task.is_finished task) then
                      add "retired tenant %d still runs task %s" id
                        task.Task.tname)
                  a.tasks
            | None -> ());
            List.iter
              (fun dp ->
                if Dp_service.tenant dp = id then
                  add "retired tenant %d still owns the service on core %d" id
                    (Dp_service.core dp);
                Ring.iter
                  (fun pkt ->
                    if pkt.Packet.tenant = id then
                      add
                        "retired tenant %d left a descriptor in the core %d \
                         ring"
                        id (Dp_service.core dp))
                  (Dp_service.ring dp))
              t.dps;
            match t.overload with
            | Some ov ->
                let parked = Overload.deferred_pending_of ov ~tenant:id in
                if parked > 0 then
                  add "retired tenant %d still parks %d deferred admissions"
                    id parked
            | None -> ()
          end)
        tenants;
      List.rev !out);
  t

let on_retired t f = t.on_retired <- t.on_retired @ [ f ]

let accepting t ~tenant = Tenant.accepting t.tenants tenant

let note_task t ~tenant task =
  match Hashtbl.find_opt t.assigned tenant with
  | Some a -> a.tasks <- task :: a.tasks
  | None -> ()

let pool_size t = List.length t.pool
let free_services t = List.length t.free_floats

(* --- admission ----------------------------------------------------------- *)

let take n l =
  let rec go n acc = function
    | rest when n = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> go (n - 1) (x :: acc) rest
  in
  go n [] l

let admit t ?(vcpus = 1) ?(services = 1) (spec : Tenant.spec) =
  let refuse r =
    count t t.h_admit_refused;
    count t
      t.h_refused_by.(match r with
        | Backpressure -> 0
        | No_vcpus -> 1
        | No_services -> 2);
    emitf t "refused name=%s reason=%s" spec.Tenant.name (refusal_label r);
    Error r
  in
  let backpressured =
    match t.overload with Some ov -> Overload.backpressure ov | None -> false
  in
  if backpressured then refuse Backpressure
  else if List.length t.pool < vcpus then refuse No_vcpus
  else if List.length t.free_floats < services then refuse No_services
  else begin
    let tn = Tenant.admit t.tenants spec in
    let id = tn.Tenant.id in
    let lane = Vcpu_sched.admit_tenant t.sched ~weight:spec.Tenant.weight in
    if lane <> id then
      invalid_arg
        (Printf.sprintf "Lifecycle.admit: lane %d does not match tenant %d"
           lane id);
    (match t.overload with
    | Some ov -> Overload.admit_lane ov ~tenant:id
    | None -> ());
    let vs, pool = take vcpus t.pool in
    t.pool <- pool;
    let cls_rank = Tenant.cls_rank spec.Tenant.cls in
    List.iter
      (fun v ->
        Vcpu_sched.reassign_vcpu t.sched v ~tenant:id ~cls_rank;
        match t.overload with
        | Some ov -> Overload.watch_kcpu ov ~tenant:id v.Vcpu.kcpu
        | None -> ())
      vs;
    let svcs, floats = take services t.free_floats in
    t.free_floats <- floats;
    List.iter
      (fun dp ->
        let from_tenant = Dp_service.tenant dp in
        Dp_service.set_owner dp id;
        match t.overload with
        | Some ov ->
            Overload.move_dp_watch ov ~core:(Dp_service.core dp) ~from_tenant
              ~to_tenant:id
        | None -> ())
      svcs;
    Hashtbl.replace t.assigned id
      { vcpus = vs; services = svcs; tasks = []; forced = false };
    Tenant.set_phase t.tenants id Tenant.Active;
    count t t.h_admitted;
    emitf t "admit tenant=%d name=%s vcpus=%d services=%d" id spec.Tenant.name
      vcpus services;
    Ok id
  end

(* Deterministic capped exponential backoff: refusals re-arm a retry
   timer at min(cap, base * 2^attempt) until the admission lands or the
   attempt budget runs out. Everything is driven off the simulated clock,
   so two runs with the same seed retry at the same instants. *)
let admit_with_backoff t ?on_refused ?vcpus ?services (spec : Tenant.spec)
    ~on_admitted ~on_abandoned =
  let base = t.config.Config.admit_retry_base in
  let cap = t.config.Config.admit_retry_cap in
  let rec attempt n =
    match admit t ?vcpus ?services spec with
    | Ok id -> on_admitted id
    | Error r ->
        (match on_refused with None -> () | Some f -> f r);
        if n >= t.config.Config.admit_retry_max then begin
          count t t.h_admit_abandoned;
          emitf t "abandoned name=%s attempts=%d" spec.Tenant.name n;
          on_abandoned r
        end
        else begin
          count t t.h_admit_retries;
          let delay = min cap (base * (1 lsl min n 20)) in
          ignore (Sim.after t.sim delay (fun () -> attempt (n + 1)))
        end
  in
  attempt 0

(* --- retirement ---------------------------------------------------------- *)

let prune_finished a =
  a.tasks <- List.filter (fun task -> not (Task.is_finished task)) a.tasks

let quiesced t ~tenant a =
  prune_finished a;
  a.tasks = []
  && Vcpu_sched.quiesce_violations t.sched ~tenant = []
  && List.for_all (fun dp -> not (Dp_service.pending_work dp)) a.services

(* The escalation half of the drain protocol, taken once when the window
   overruns: cancel the tenant's remaining tasks (they exit at their next
   preemptible boundary; their affinity is re-pointed at the dedicated CP
   pCPUs so an unbacked kcpu's queue can be stolen dry), force-evict its
   placed and borrowing vCPUs, flush its weighted-queue entries and throw
   away its ring backlog. Quiescence is then re-checked on the same poll
   cadence — force bounds the graceful phase, it does not tear state down
   mid-invariant. *)
let force_drain t ~tenant a =
  a.forced <- true;
  count t t.h_drain_forced;
  emitf t "force tenant=%d" tenant;
  prune_finished a;
  List.iter
    (fun task ->
      Task.cancel task;
      task.Task.affinity <- t.cp_pcpus)
    a.tasks;
  Vcpu_sched.force_evict_tenant t.sched ~tenant;
  let flushed = Vcpu_sched.flush_tenant t.sched ~tenant in
  if flushed <> [] then
    count ~by:(List.length flushed) t t.h_drain_flushed;
  List.iter
    (fun dp ->
      let n = Dp_service.discard_backlog dp in
      if n > 0 then count ~by:n t t.h_drain_discarded)
    a.services;
  Recovery.note t.recovery ~cls:"drain" ~action:"forced"
    ~latency:t.config.Config.drain_window

let finalize t ~tenant a =
  Vcpu_sched.retire_tenant t.sched ~tenant;
  List.iter
    (fun v -> Vcpu_sched.reassign_vcpu t.sched v ~tenant:(-1) ~cls_rank:1)
    a.vcpus;
  t.pool <- t.pool @ a.vcpus;
  List.iter
    (fun dp ->
      let resting = Dp_service.resting_owner dp in
      Dp_service.set_owner dp resting;
      match t.overload with
      | Some ov ->
          Overload.move_dp_watch ov ~core:(Dp_service.core dp)
            ~from_tenant:tenant ~to_tenant:resting
      | None -> ())
    a.services;
  t.free_floats <- t.free_floats @ a.services;
  (match t.overload with
  | Some ov -> Overload.retire_lane ov ~tenant
  | None -> ());
  Tenant.set_phase t.tenants tenant Tenant.Retired;
  count t t.h_retired;
  emitf t "retired tenant=%d forced=%b" tenant a.forced;
  List.iter (fun f -> f tenant) t.on_retired

let retire t ~tenant =
  let a =
    match Hashtbl.find_opt t.assigned tenant with
    | Some a -> a
    | None ->
        invalid_arg
          (Printf.sprintf
             "Lifecycle.retire: tenant %d was not dynamically admitted" tenant)
  in
  Tenant.set_phase t.tenants tenant Tenant.Draining;
  count t t.h_drains;
  emitf t "drain tenant=%d window=%d" tenant t.config.Config.drain_window;
  (* A departing tenant's parked CP admissions must never run. *)
  (match t.overload with
  | Some ov -> Overload.quiesce_lane ov ~tenant
  | None -> ());
  let deadline = Sim.now t.sim + t.config.Config.drain_window in
  let rec poll () =
    if quiesced t ~tenant a then finalize t ~tenant a
    else begin
      if (not a.forced) && Sim.now t.sim >= deadline then
        force_drain t ~tenant a
      else if a.forced then
        (* Residual arrivals during the forced phase are discarded on the
           same cadence, so a workload still aimed at the floating ring
           cannot hold retirement hostage. *)
        List.iter
          (fun dp ->
            let n = Dp_service.discard_backlog dp in
            if n > 0 then count ~by:n t t.h_drain_discarded)
          a.services;
      ignore (Sim.after t.sim t.config.Config.drain_poll poll)
    end
  in
  ignore (Sim.after t.sim t.config.Config.drain_poll poll)

let drain_violations t ~tenant =
  match Hashtbl.find_opt t.assigned tenant with
  | None -> []
  | Some a ->
      prune_finished a;
      List.map (fun task -> Printf.sprintf "task %s unfinished" task.Task.tname)
        a.tasks
      @ Vcpu_sched.quiesce_violations t.sched ~tenant
      @ List.filter_map
          (fun dp ->
            if Dp_service.pending_work dp then
              Some
                (Printf.sprintf "service on core %d still has work"
                   (Dp_service.core dp))
            else None)
          a.services

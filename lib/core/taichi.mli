(** Tai Chi: the assembled hybrid-virtualization scheduling framework.

    [install] wires every component of the paper's design onto an existing
    simulated SmartNIC — machine, kernel, accelerator pipeline and
    data-plane services — exactly as the production kernel module loads
    onto a running system:

    + a per-core {!State_table} shared with the accelerator;
    + the {!Sw_probe} adaptive yield thresholds, attached to each
      data-plane service's poll loop;
    + the {!Vcpu_sched} softirq-based vCPU scheduler;
    + the {!Ipi_orchestrator}, which also hotplugs the configured number
      of vCPUs into the kernel as native CPUs;
    + the {!Hw_probe} in the accelerator pipeline.

    Control-plane tasks need zero modification: bind them (CPU affinity)
    to {!cp_cpu_ids}, which spans the dedicated CP pCPUs plus all
    registered vCPUs. *)

open Taichi_hw
open Taichi_os
open Taichi_virt
open Taichi_accel
open Taichi_dataplane

type t

val install :
  ?config:Config.t ->
  ?tenants:Tenant.table ->
  machine:Machine.t ->
  kernel:Kernel.t ->
  pipeline:Pipeline.t ->
  dps:Dp_service.t list ->
  cp_pcpus:int list ->
  unit ->
  t
(** Install Tai Chi. vCPU kernel ids start right after the machine's
    physical cores. vCPUs come online after the kernel boot delay of
    simulated time has run.

    [?tenants] shares the caller's mutable tenant table across every
    layer (scheduler lanes, governor lanes, lifecycle) — the platform
    passes its single per-system instance; the default derives a fresh
    static table from the config. With [config.churn],
    [config.spare_vcpus] extra vCPUs are registered unassigned
    (tenant [-1]) and the last [config.float_services] services become
    the lifecycle's floating pool. *)

val config : t -> Config.t
val machine : t -> Machine.t
val kernel : t -> Kernel.t
val scheduler : t -> Vcpu_sched.t
val orchestrator : t -> Ipi_orchestrator.t
val hw_probe : t -> Hw_probe.t
val sw_probe : t -> Sw_probe.t

val softirq : t -> Softirq.t
(** The softirq layer carrying the dedicated context-switch vector. *)

val state_table : t -> State_table.t

val recovery : t -> Recovery.t
(** The recovery tracker shared by the watchdog, the orchestrator retries
    and the mirror divergence detector; also the degraded-mode switch.
    Inert (counters only) unless [config.resilience] is set. *)

val overload : t -> Overload.t option
(** The overload governor, present when [config.overload] is set. Route
    CP admissions through [Overload.admit] and consult
    [Overload.backpressure] in workload clients. *)

val lifecycle : t -> Lifecycle.t option
(** The tenant-churn lifecycle manager, present when [config.churn] is
    set. *)

val vcpus : t -> Vcpu.t list
(** Every registered vCPU, including any pooled spares (tenant [-1]). *)

val tenants : t -> Tenant.table
(** The system's tenant table — the one shared instance when the caller
    passed [?tenants] (it grows under churn), else the static table
    derived from the config. Under an explicit multi-tenant table
    [install] deals vCPUs round-robin across tenants ([vid mod count])
    and turns on per-tenant counter mirroring in every registered DP
    service. *)

val cp_cpu_ids : t -> int list
(** Kernel CPU ids control-plane tasks should be affine to: the dedicated
    CP pCPUs plus every currently assigned vCPU (pooled spares are
    excluded — their kcpus run nothing until admitted). *)

val ready : t -> bool
(** All vCPUs finished hotplug. *)

val total_vm_exits : t -> int

val pp_summary : Format.formatter -> t -> unit
(** One-paragraph operational summary (placements, exits, probe activity,
    IPI routing) for experiment logs. *)

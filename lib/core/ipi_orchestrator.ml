open Taichi_engine
open Taichi_hw
open Taichi_os
open Taichi_virt

type stats = {
  routed_to_vcpu : int;
  posted : int;
  wakeups : int;
  reissued : int;
}

type t = {
  config : Config.t;
  machine : Machine.t;
  kernel : Kernel.t;
  sched : Vcpu_sched.t;
  recovery : Recovery.t;
  vcpu_kcpus : (int, Vcpu.t) Hashtbl.t;
  mutable online : int;
  mutable s_routed : int;
  mutable s_posted : int;
  mutable s_wakeups : int;
  mutable s_reissued : int;
}

let is_vcpu_kcpu t id = Hashtbl.mem t.vcpu_kcpus id

(* Wakeup-IPI delivery watchdog: the poke raced a faulty fabric, so verify
   after a timeout that the vCPU actually woke (placed, or out of work) and
   re-poke with exponential backoff otherwise. Armed only when both the
   recovery machinery and a fault injector are active — the timers it
   schedules would otherwise perturb deterministic happy-path runs. *)
let rec wakeup_retry t v ~timeout ~retries ~started =
  ignore
    (Sim.after (Machine.sim t.machine) timeout (fun () ->
         if
           (not (Vcpu.is_placed v))
           && Kernel.cpu_has_work (Kernel.cpu t.kernel v.Vcpu.kcpu)
           (* An unplaced vCPU under degraded mode is policy, not a lost
              IPI — and counting retries then would keep resetting the
              quiet period that ends degraded mode. *)
           && not (Recovery.degraded t.recovery)
         then begin
           Recovery.note t.recovery ~cls:"ipi" ~action:"retry"
             ~latency:(Sim.now (Machine.sim t.machine) - started);
           Vcpu_sched.poke t.sched ~kcpu:v.Vcpu.kcpu;
           if retries + 1 < t.config.Config.ipi_retry_max then
             wakeup_retry t v ~timeout:(2 * timeout) ~retries:(retries + 1)
               ~started
         end))

let intercept t ~src ~dst ~vector:_ =
  (* Source side: an IPI from guest context forces a VM-exit; the
     orchestrator reissues it from the host (Fig 8b). *)
  (match Hashtbl.find_opt t.vcpu_kcpus src with
  | Some v when Vcpu.is_placed v ->
      t.s_reissued <- t.s_reissued + 1;
      Vcpu.record_exit v Vmexit.Ipi_send;
      (match Vcpu.core v with
      | Some core ->
          Accounting.charge
            (Machine.accounting t.machine)
            ~core Accounting.Switch t.config.Config.cost.Cost_model.light_exit
      | None -> ())
  | Some _ | None -> ());
  (* Destination side. *)
  match Hashtbl.find_opt t.vcpu_kcpus dst with
  | None -> Machine.Deliver
  | Some v ->
      t.s_routed <- t.s_routed + 1;
      if Vcpu.is_placed v then begin
        (* Posted interrupt: inject without a VM-exit. *)
        t.s_posted <- t.s_posted + 1;
        Machine.Deliver
      end
      else begin
        (* Awaken the sleeping vCPU, then deliver. *)
        t.s_wakeups <- t.s_wakeups + 1;
        Vcpu_sched.poke t.sched ~kcpu:dst;
        if
          t.config.Config.resilience
          && Machine.fault_injection_active t.machine
        then
          wakeup_retry t v ~timeout:t.config.Config.ipi_retry_timeout
            ~retries:0
            ~started:(Sim.now (Machine.sim t.machine));
        Machine.Deliver
      end

let install config machine kernel sched recovery =
  let t =
    {
      config;
      machine;
      kernel;
      sched;
      recovery;
      vcpu_kcpus = Hashtbl.create 16;
      online = 0;
      s_routed = 0;
      s_posted = 0;
      s_wakeups = 0;
      s_reissued = 0;
    }
  in
  Machine.set_ipi_interceptor machine
    (Some (fun ~src ~dst ~vector -> intercept t ~src ~dst ~vector));
  t

(* Hotplug boot watchdog: the boot IPI can be lost in a faulty fabric and
   the vCPU then never comes online. Re-issue the boot (same [on_online]
   callback — [Kernel.boot] stores it per-CPU, and the online guard makes
   a late duplicate delivery harmless) with a doubling timeout, up to
   [boot_retry_max] attempts. *)
let rec boot_watchdog t kcpu ~on_online ~timeout ~retries ~started =
  ignore
    (Sim.after (Machine.sim t.machine) timeout (fun () ->
         if
           (not (Kernel.is_online kcpu))
           && retries < t.config.Config.boot_retry_max
         then begin
           Recovery.note t.recovery ~cls:"boot" ~action:"retry"
             ~latency:(Sim.now (Machine.sim t.machine) - started);
           Kernel.boot t.kernel kcpu ~src:0 ~on_online ();
           (* Exponential backoff, capped: with a bounded fault budget a
              steady cadence converges, while uncapped doubling would
              blow through the warmup deadline before exhausting the
              retry allowance. *)
           let next =
             min (2 * timeout) (4 * t.config.Config.boot_retry_timeout)
           in
           boot_watchdog t kcpu ~on_online ~timeout:next
             ~retries:(retries + 1) ~started
         end))

let register_vcpus t ~first_kcpu ~count =
  List.init count (fun i ->
      let kcpu_id = first_kcpu + i in
      let kcpu = Kernel.add_virtual_cpu t.kernel ~id:kcpu_id in
      let v =
        Vcpu.create ~vid:i ~kcpu:kcpu_id
          ~initial_slice:t.config.Config.initial_slice
      in
      Hashtbl.replace t.vcpu_kcpus kcpu_id v;
      Vcpu_sched.add_vcpu t.sched v;
      let on_online () = t.online <- t.online + 1 in
      Kernel.boot t.kernel kcpu ~src:0 ~on_online ();
      if t.config.Config.resilience then
        boot_watchdog t kcpu ~on_online
          ~timeout:t.config.Config.boot_retry_timeout ~retries:0
          ~started:(Sim.now (Machine.sim t.machine));
      v)

let online_vcpus t = t.online

let stats t =
  {
    routed_to_vcpu = t.s_routed;
    posted = t.s_posted;
    wakeups = t.s_wakeups;
    reissued = t.s_reissued;
  }

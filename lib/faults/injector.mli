(** Deterministic fault-plan injector for the Tai Chi stack.

    An injector owns a set of named RNG streams (derived with {!Rng.split}
    from the generator it is given, so adding a fault class never perturbs
    the draws of another) and attaches to the existing component
    boundaries:

    - the {!Machine} fabric fault hook (IPI drop / delay, boot-IPI drop),
    - per-LAPIC loss filters (vector loss at the controller),
    - {!State_table} freeze / corrupt (stale or stuck P/V mirror records),
    - the hardware-probe suppressor plus periodic misfires,
    - periodic CP hang and DP overload-burst events delivered through
      harness-provided callbacks (the injector never depends on
      [taichi_core] or the workloads — the chaos harness wires those).

    Faults in the fabric are live from {!create} (so vCPU hotplug boot
    IPIs can be lost during warm-up); the periodic streams and LAPIC
    filters start at {!arm} and everything stops — frozen mirror records
    thawed, filters removed — when the simulated clock passes the [until]
    horizon given to {!arm}.

    Every injected fault increments a [fault.<class>.<kind>] counter in
    the machine registry and emits a [Trace.Cat.fault] record, which is
    what the chaos report and the recovery oracles read back. *)

open Taichi_engine
open Taichi_hw
open Taichi_accel

(** A fault plan: rates, periods and magnitudes per fault class. A period
    of [0] disables that periodic stream; a probability of [0.] disables
    that per-event draw. *)
type profile = {
  pname : string;
  ipi_drop_p : float;  (** P(drop) per routed non-boot IPI *)
  ipi_delay_p : float;  (** P(extra delay) per routed non-boot IPI *)
  ipi_delay_max : Time_ns.t;  (** uniform extra delay in [1, max] *)
  boot_drop_p : float;  (** P(drop) per boot-vector IPI *)
  boot_drop_max : int;
      (** total boot-drop budget — bounds hotplug delay so a retrying
          boot always converges *)
  lapic_loss_p : float;  (** P(loss) per injected non-boot vector *)
  mirror_period : Time_ns.t;  (** state-table stall/corrupt cadence *)
  mirror_stall : Time_ns.t;  (** how long a frozen record stays frozen *)
  mirror_corrupt_p : float;  (** P(flip record) vs. plain stall *)
  probe_suppress_p : float;  (** P(suppress) per hw-probe trigger *)
  probe_misfire_period : Time_ns.t;  (** spurious probe-IRQ cadence *)
  cp_hang_period : Time_ns.t;  (** CP lock-holder hang cadence *)
  cp_hang_hold : Time_ns.t;  (** non-preemptible hold per hang *)
  dp_burst_period : Time_ns.t;  (** DP overload burst cadence *)
  dp_burst_size : int;  (** packets per burst *)
  churn_depart_period : Time_ns.t;
      (** tenant-departure cadence — the harness retires a live dynamic
          tenant mid-CP-storm *)
  churn_arrive_period : Time_ns.t;
      (** tenant-arrival cadence — the harness attempts an admission,
          aimed at whatever governor rung is active *)
  churn_overrun_period : Time_ns.t;
      (** drain-overrun cadence — the harness pins a drain open past its
          window, forcing the watchdog escalation *)
}

val none : profile
(** All classes disabled — an armed [none] injector is a no-op. *)

val flaky : profile
(** Moderate background fault rate: occasional IPI loss and delay, rare
    mirror stalls, sporadic CP hangs. Recovery should absorb everything
    without entering degraded mode. *)

val storm : profile
(** Aggressive correlated faults: heavy IPI loss, frequent mirror
    corruption, long non-preemptible CP hangs and DP overload. Expected to
    push the recovery-event rate over the degraded-mode threshold. *)

val churn : profile
(** The {!flaky} background rates with the three tenant-lifecycle fault
    classes armed: periodic departures (timed to land inside CP storms),
    arrivals (aimed at active governor rungs) and drain-window overruns.
    Requires a churn-enabled config and the harness callbacks below;
    without them the streams fire but do nothing. *)

val profiles : (string * profile) list
val of_name : string -> profile option

type t

val create :
  ?nic:int -> rng:Rng.t -> machine:Machine.t -> boot_vector:int -> profile -> t
(** [create ~rng ~machine ~boot_vector profile] derives the per-class
    streams from [rng] and installs the fabric fault hook. [boot_vector]
    identifies hotplug boot IPIs, which draw from their own stream (and
    count as [fault.boot.dropped]) so boot-timeout injection is tunable
    independently of steady-state IPI loss. [?nic] prefixes every stream
    name with ["nic<i>."] so a fleet can run the same plan on every NIC
    with decorrelated draws; omitting it keeps the original single-NIC
    stream names (and therefore the exact PR 3 fault sequences). *)

val profile : t -> profile

val attach_table : t -> State_table.t -> unit
(** Gives the injector the accelerator mirror to stall/corrupt. Without a
    table the mirror stream is a no-op. *)

val set_probe_misfire : t -> (core:int -> unit) -> unit
(** Callback fired by the misfire stream; the harness points it at
    [Hw_probe.misfire]. *)

val set_cp_hang : t -> (hold:Time_ns.t -> unit) -> unit
(** Callback fired by the CP-hang stream; the harness spawns a lock-taking
    non-preemptible CP task holding for [hold]. *)

val set_dp_burst : t -> (size:int -> unit) -> unit
(** Callback fired by the DP-burst stream; the harness submits [size]
    background packets. *)

val set_churn_depart : t -> (unit -> unit) -> unit
(** Callback fired by the churn-departure stream; the harness spins up a
    short CP storm on a live dynamic tenant and retires it mid-storm.
    Each firing counts [fault.churn.departs]. *)

val set_churn_arrive : t -> (unit -> unit) -> unit
(** Callback fired by the churn-arrival stream; the harness attempts an
    admission ({!Taichi_core.Lifecycle.admit_with_backoff}), which lands
    on whatever governor rung is active. Counts [fault.churn.arrivals]. *)

val set_churn_overrun : t -> (unit -> unit) -> unit
(** Callback fired by the drain-overrun stream; the harness pins a
    tenant's drain open past [Config.drain_window] (e.g. with a
    long-held non-preemptible task) so the forced escalation path runs.
    Counts [fault.churn.overruns]. *)

val probe_suppress : t -> core:int -> bool
(** Suppressor predicate for [Hw_probe.set_suppressor]: draws from the
    probe stream and counts [fault.probe.suppressed] when it bites.
    Always [false] once the injector is stopped. *)

val arm : t -> until:Time_ns.t -> unit
(** [arm t ~until] installs the LAPIC loss filters and starts the periodic
    streams (mirror, misfire, CP hang, DP burst). At absolute time [until]
    all injection stops: filters removed, frozen records thawed, the
    fabric hook inert. *)

val active : t -> bool
(** [true] from {!create} until the [until] horizon passes. *)

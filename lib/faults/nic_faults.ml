(* NIC-level fault domains for a fleet run: which NICs crash, brown out,
   which fabric halves partition, and where drain-window overruns land —
   all decided up front as a deterministic plan keyed on epochs, so the
   fleet controller replays it identically at any --jobs count.

   Every per-NIC decision draws from that NIC's own named stream
   (Rng.split root "nic<i>.<class>"), mirroring the per-class streams of
   Injector: adding a fault class, or a NIC, never perturbs the draws of
   another. Fleet-wide decisions (the partition window) draw from the
   "fabric.partition" stream. *)

open Taichi_engine

type event =
  | Crash of int
  | Brownout_start of int
  | Brownout_end of int
  | Partition_start of int array
  | Partition_end
  | Drain_overrun of int

let event_label = function
  | Crash i -> Printf.sprintf "crash nic=%d" i
  | Brownout_start i -> Printf.sprintf "brownout-start nic=%d" i
  | Brownout_end i -> Printf.sprintf "brownout-end nic=%d" i
  | Partition_start _ -> "partition-start"
  | Partition_end -> "partition-end"
  | Drain_overrun i -> Printf.sprintf "drain-overrun nic=%d" i

type spec = {
  crashes : int;  (** NICs to kill inside the crash window *)
  crash_window : int * int;  (** inclusive epoch window for crashes *)
  brownouts : int;
  brownout_hold : int;  (** epochs a brownout lasts *)
  partition : bool;  (** one fabric bisection during the run *)
  partition_hold : int;
  overruns : int;  (** drain-window overruns pinned during failover *)
}

let quiet =
  {
    crashes = 0;
    crash_window = (0, 0);
    brownouts = 0;
    brownout_hold = 0;
    partition = false;
    partition_hold = 0;
    overruns = 0;
  }

(* Rank NICs by a score drawn from each NIC's own stream and keep the
   [k] lowest: a per-NIC-decorrelated, count-exact selection. Ties break
   by NIC id, so the plan is total-ordered. *)
let pick_nics ?(exclude = []) root ~cls ~nics k =
  let scored =
    List.init nics (fun i ->
        let rng = Rng.split root (Printf.sprintf "nic%d.%s" i cls) in
        (Rng.float rng 1.0, i, rng))
  in
  let sorted =
    List.sort
      (fun (a, i, _) (b, j, _) ->
        match compare a b with 0 -> compare i j | c -> c)
      scored
  in
  (* Every NIC draws its score before exclusion is applied, so an
     excluded NIC never perturbs another's stream. *)
  List.filter (fun (_, i, _) -> not (List.mem i exclude)) sorted
  |> List.filteri (fun idx _ -> idx < k)
  |> List.map (fun (_, i, rng) -> (i, rng))

let in_window rng (lo, hi) =
  if hi <= lo then lo else Rng.int_range rng ~lo ~hi

let crashed_nics events =
  List.filter_map (function _, Crash i -> Some i | _ -> None) events

let plan ~rng ~nics ~epochs spec =
  let events = ref [] in
  let add epoch ev = events := (max 0 (min (epochs - 1) epoch), ev) :: !events in
  (* Crashes: the chosen NIC's stream also places its crash epoch. *)
  List.iter
    (fun (i, nic_rng) -> add (in_window nic_rng spec.crash_window) (Crash i))
    (pick_nics rng ~cls:"crash" ~nics (min spec.crashes nics));
  (* Brownouts: window + hold from the NIC's own stream. *)
  List.iter
    (fun (i, nic_rng) ->
      let start = in_window nic_rng (1, max 1 (epochs / 2)) in
      add start (Brownout_start i);
      add (start + max 1 spec.brownout_hold) (Brownout_end i))
    (pick_nics rng ~cls:"brownout" ~nics (min spec.brownouts nics));
  (* One fabric bisection: each NIC picks its side from its own
     "nic<i>.partition" stream; the window comes from the fleet-level
     fabric stream. A degenerate all-one-side draw is re-homed by parity
     so the partition always has two sides. *)
  if spec.partition && nics > 1 then begin
    let fabric = Rng.split rng "fabric.partition" in
    let groups =
      Array.init nics (fun i ->
          let side = Rng.split rng (Printf.sprintf "nic%d.partition" i) in
          Rng.int side 2)
    in
    let all_same = Array.for_all (fun g -> g = groups.(0)) groups in
    if all_same then Array.iteri (fun i _ -> groups.(i) <- i mod 2) groups;
    let start = in_window fabric (1, max 1 (epochs / 2)) in
    add start (Partition_start groups);
    add (start + max 1 spec.partition_hold) Partition_end
  end;
  (* Drain overruns land during the failover tail: pinned to the second
     half of the run so they collide with post-crash re-placements — on
     survivors, never on a NIC the plan already kills. *)
  List.iter
    (fun (i, nic_rng) ->
      add (in_window nic_rng (epochs / 2, max (epochs / 2) (epochs - 2)))
        (Drain_overrun i))
    (pick_nics rng ~cls:"overrun" ~nics
       ~exclude:(crashed_nics !events)
       (min spec.overruns nics));
  (* Stable (epoch, insertion) order: sort is stable, so same-epoch
     events keep their class order — crashes first, then brownouts,
     partition, overruns — reversed back to insertion order first. *)
  List.stable_sort
    (fun (a, _) (b, _) -> compare a b)
    (List.rev !events)

(** NIC-level fault domains for a fleet run.

    A plan is a deterministic, epoch-keyed schedule of fleet faults —
    NIC crashes, brownouts, one fabric bisection, drain-window overruns
    aimed at the failover tail — computed up front so the fleet's
    sequential controller replays it identically at any [--jobs] count.

    Per-NIC decisions draw from that NIC's own named stream
    ([Rng.split root "nic<i>.<class>"]), mirroring {!Injector}'s
    per-class streams: adding a fault class or a NIC never perturbs the
    draws of another. *)

open Taichi_engine

type event =
  | Crash of int  (** permanently kill the NIC at this epoch's end *)
  | Brownout_start of int
  | Brownout_end of int
  | Partition_start of int array  (** group id per NIC *)
  | Partition_end
  | Drain_overrun of int
      (** pin a drain open on this NIC past its window mid-failover *)

val event_label : event -> string

type spec = {
  crashes : int;
  crash_window : int * int;  (** inclusive epoch window for crashes *)
  brownouts : int;
  brownout_hold : int;
  partition : bool;
  partition_hold : int;
  overruns : int;
}

val quiet : spec
(** No fleet faults — the integrity baseline. *)

val plan : rng:Rng.t -> nics:int -> epochs:int -> spec -> (int * event) list
(** [(epoch, event)] schedule sorted by epoch (stable class order within
    an epoch), every epoch clamped into [0, epochs-1]. *)

val crashed_nics : (int * event) list -> int list
(** The NICs a plan crashes, in schedule order. *)

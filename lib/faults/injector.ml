open Taichi_engine
open Taichi_hw
open Taichi_accel

type profile = {
  pname : string;
  ipi_drop_p : float;
  ipi_delay_p : float;
  ipi_delay_max : Time_ns.t;
  boot_drop_p : float;
  boot_drop_max : int;
  lapic_loss_p : float;
  mirror_period : Time_ns.t;
  mirror_stall : Time_ns.t;
  mirror_corrupt_p : float;
  probe_suppress_p : float;
  probe_misfire_period : Time_ns.t;
  cp_hang_period : Time_ns.t;
  cp_hang_hold : Time_ns.t;
  dp_burst_period : Time_ns.t;
  dp_burst_size : int;
  churn_depart_period : Time_ns.t;
  churn_arrive_period : Time_ns.t;
  churn_overrun_period : Time_ns.t;
}

let none =
  {
    pname = "none";
    ipi_drop_p = 0.;
    ipi_delay_p = 0.;
    ipi_delay_max = Time_ns.zero;
    boot_drop_p = 0.;
    boot_drop_max = 0;
    lapic_loss_p = 0.;
    mirror_period = Time_ns.zero;
    mirror_stall = Time_ns.zero;
    mirror_corrupt_p = 0.;
    probe_suppress_p = 0.;
    probe_misfire_period = Time_ns.zero;
    cp_hang_period = Time_ns.zero;
    cp_hang_hold = Time_ns.zero;
    dp_burst_period = Time_ns.zero;
    dp_burst_size = 0;
    churn_depart_period = Time_ns.zero;
    churn_arrive_period = Time_ns.zero;
    churn_overrun_period = Time_ns.zero;
  }

let flaky =
  {
    pname = "flaky";
    ipi_drop_p = 0.02;
    ipi_delay_p = 0.05;
    ipi_delay_max = Time_ns.us 5;
    boot_drop_p = 0.25;
    boot_drop_max = 4;
    lapic_loss_p = 0.01;
    mirror_period = Time_ns.us 500;
    mirror_stall = Time_ns.us 100;
    mirror_corrupt_p = 0.3;
    probe_suppress_p = 0.05;
    probe_misfire_period = Time_ns.us 400;
    cp_hang_period = Time_ns.ms 2;
    cp_hang_hold = Time_ns.us 300;
    dp_burst_period = Time_ns.ms 1;
    dp_burst_size = 256;
    churn_depart_period = Time_ns.zero;
    churn_arrive_period = Time_ns.zero;
    churn_overrun_period = Time_ns.zero;
  }

let storm =
  {
    pname = "storm";
    ipi_drop_p = 0.15;
    ipi_delay_p = 0.2;
    ipi_delay_max = Time_ns.us 50;
    boot_drop_p = 0.5;
    boot_drop_max = 8;
    lapic_loss_p = 0.05;
    mirror_period = Time_ns.us 100;
    mirror_stall = Time_ns.us 300;
    mirror_corrupt_p = 0.6;
    probe_suppress_p = 0.2;
    probe_misfire_period = Time_ns.us 150;
    cp_hang_period = Time_ns.us 600;
    cp_hang_hold = Time_ns.of_us_f 1500.;
    dp_burst_period = Time_ns.us 400;
    dp_burst_size = 512;
    churn_depart_period = Time_ns.zero;
    churn_arrive_period = Time_ns.zero;
    churn_overrun_period = Time_ns.zero;
  }

(* Churn chaos: moderate background faults (the flaky rates) with the
   three tenant-lifecycle classes armed — departures timed to land inside
   a CP storm, arrivals aimed at active governor rungs, and drains pinned
   past their window. The harness callbacks carry the tenant-side
   mechanics; the injector owns only the cadence and the receipts. *)
let churn =
  {
    flaky with
    pname = "churn";
    churn_depart_period = Time_ns.ms 4;
    churn_arrive_period = Time_ns.ms 3;
    churn_overrun_period = Time_ns.ms 10;
  }

let profiles =
  [ ("none", none); ("flaky", flaky); ("storm", storm); ("churn", churn) ]
let of_name n = List.assoc_opt n profiles

type t = {
  machine : Machine.t;
  profile : profile;
  boot_vector : int;
  (* One independent stream per fault class (see .mli). *)
  ipi_rng : Rng.t;
  boot_rng : Rng.t;
  lapic_rng : Rng.t;
  mirror_rng : Rng.t;
  probe_rng : Rng.t;
  cp_rng : Rng.t;
  dp_rng : Rng.t;
  churn_depart_rng : Rng.t;
  churn_arrive_rng : Rng.t;
  churn_overrun_rng : Rng.t;
  mutable table : State_table.t option;
  mutable probe_misfire : (core:int -> unit) option;
  mutable cp_hang : (hold:Time_ns.t -> unit) option;
  mutable dp_burst : (size:int -> unit) option;
  mutable churn_depart : (unit -> unit) option;
  mutable churn_arrive : (unit -> unit) option;
  mutable churn_overrun : (unit -> unit) option;
  mutable boot_dropped : int;
  mutable until : Time_ns.t;
  mutable stopped : bool;
  h_boot_dropped : Counters.handle;
  h_probe_suppressed : Counters.handle;
  h_mirror_corruptions : Counters.handle;
  h_mirror_stalls : Counters.handle;
  h_probe_misfires : Counters.handle;
  h_cp_hangs : Counters.handle;
  h_dp_bursts : Counters.handle;
  h_churn_departs : Counters.handle;
  h_churn_arrivals : Counters.handle;
  h_churn_overruns : Counters.handle;
  h_lapic_lost : Counters.handle;
}

let sim t = Machine.sim t.machine
let counters t = Machine.counters t.machine

let tracef t fmt =
  Trace.emitf (Machine.trace t.machine)
    ~time:(Sim.now (sim t))
    ~category:Trace.Cat.fault fmt

let fabric_fault t ~dst ~vector =
  if t.stopped then Machine.Pass
  else if vector = t.boot_vector then
    (* Boot drops come out of a bounded budget so a retrying hotplug is
       guaranteed to converge — unbounded 50% loss could (rarely but
       measurably) outlast any finite retry schedule. *)
    if
      t.boot_dropped < t.profile.boot_drop_max
      && Rng.bernoulli t.boot_rng ~p:t.profile.boot_drop_p
    then begin
      t.boot_dropped <- t.boot_dropped + 1;
      Counters.incr_h (counters t) t.h_boot_dropped;
      Machine.Drop
    end
    else Machine.Pass
  else if Rng.bernoulli t.ipi_rng ~p:t.profile.ipi_drop_p then Machine.Drop
  else if Rng.bernoulli t.ipi_rng ~p:t.profile.ipi_delay_p then
    Machine.Delay
      (Rng.int_range t.ipi_rng ~lo:1 ~hi:(max 1 t.profile.ipi_delay_max))
  else (ignore dst; Machine.Pass)

let create ?nic ~rng ~machine ~boot_vector profile =
  (* Fleet runs namespace every per-class stream by NIC id so identical
     profiles on different NICs draw decorrelated streams. Single-NIC
     plans ([?nic] absent) keep the PR 3 stream names bit-for-bit. *)
  let stream name =
    match nic with
    | None -> Rng.split rng name
    | Some i -> Rng.split rng (Printf.sprintf "nic%d.%s" i name)
  in
  let h = Counters.handle (Machine.counters machine) in
  let t =
    {
      machine;
      profile;
      boot_vector;
      ipi_rng = stream "fault.ipi";
      boot_rng = stream "fault.boot";
      lapic_rng = stream "fault.lapic";
      mirror_rng = stream "fault.mirror";
      probe_rng = stream "fault.probe";
      cp_rng = stream "fault.cp";
      dp_rng = stream "fault.dp";
      churn_depart_rng = stream "fault.churn.depart";
      churn_arrive_rng = stream "fault.churn.arrive";
      churn_overrun_rng = stream "fault.churn.overrun";
      table = None;
      probe_misfire = None;
      cp_hang = None;
      dp_burst = None;
      churn_depart = None;
      churn_arrive = None;
      churn_overrun = None;
      boot_dropped = 0;
      until = max_int;
      stopped = false;
      h_boot_dropped = h "fault.boot.dropped";
      h_probe_suppressed = h "fault.probe.suppressed";
      h_mirror_corruptions = h "fault.mirror.corruptions";
      h_mirror_stalls = h "fault.mirror.stalls";
      h_probe_misfires = h "fault.probe.misfires";
      h_cp_hangs = h "fault.cp.hangs";
      h_dp_bursts = h "fault.dp.bursts";
      h_churn_departs = h "fault.churn.departs";
      h_churn_arrivals = h "fault.churn.arrivals";
      h_churn_overruns = h "fault.churn.overruns";
      h_lapic_lost = h "fault.lapic.lost";
    }
  in
  Machine.set_fault_hook machine
    (Some (fun ~dst ~vector -> fabric_fault t ~dst ~vector));
  t

let profile t = t.profile
let attach_table t table = t.table <- Some table
let set_probe_misfire t f = t.probe_misfire <- Some f
let set_cp_hang t f = t.cp_hang <- Some f
let set_dp_burst t f = t.dp_burst <- Some f
let set_churn_depart t f = t.churn_depart <- Some f
let set_churn_arrive t f = t.churn_arrive <- Some f
let set_churn_overrun t f = t.churn_overrun <- Some f
let active t = not t.stopped

let probe_suppress t ~core =
  (not t.stopped)
  && t.profile.probe_suppress_p > 0.
  && Rng.bernoulli t.probe_rng ~p:t.profile.probe_suppress_p
  &&
  (Counters.incr_h (counters t) t.h_probe_suppressed;
   tracef t "probe suppress core=%d" core;
   true)

(* Each periodic stream reschedules itself with a per-class jitter draw so
   streams never phase-lock; the self-reschedule stops once the horizon
   passes, which keeps the post-[until] grace window fault-free. *)
let rec periodic t rng period f =
  if period > 0 then begin
    let jitter = Rng.int_range rng ~lo:0 ~hi:(max 1 (period / 4)) in
    ignore
      (Sim.after (sim t) (period + jitter) (fun () ->
           if (not t.stopped) && Sim.now (sim t) < t.until then begin
             f ();
             periodic t rng period f
           end))
  end

let mirror_fault t =
  match t.table with
  | None -> ()
  | Some table ->
      let core = Rng.int t.mirror_rng (Machine.physical_cores t.machine) in
      if Rng.bernoulli t.mirror_rng ~p:t.profile.mirror_corrupt_p then begin
        let wrong =
          match State_table.get table ~core with
          | State_table.P_state -> State_table.V_state
          | State_table.V_state -> State_table.P_state
        in
        State_table.force table ~core wrong;
        State_table.freeze table ~core;
        Counters.incr_h (counters t) t.h_mirror_corruptions;
        tracef t "mirror corrupt core=%d now=%s" core
          (State_table.state_name wrong)
      end
      else begin
        State_table.freeze table ~core;
        Counters.incr_h (counters t) t.h_mirror_stalls;
        tracef t "mirror stall core=%d" core
      end;
      (* Thaw later; a corrupted record stays wrong after the thaw until
         the scheduler writes it again or the resync detector forces it. *)
      ignore
        (Sim.after (sim t) t.profile.mirror_stall (fun () ->
             State_table.thaw table ~core))

let probe_misfire_fault t =
  match t.probe_misfire with
  | None -> ()
  | Some f ->
      let core = Rng.int t.probe_rng (Machine.physical_cores t.machine) in
      Counters.incr_h (counters t) t.h_probe_misfires;
      tracef t "probe misfire core=%d" core;
      f ~core

let cp_hang_fault t =
  match t.cp_hang with
  | None -> ()
  | Some f ->
      Counters.incr_h (counters t) t.h_cp_hangs;
      tracef t "cp hang hold=%d" t.profile.cp_hang_hold;
      f ~hold:t.profile.cp_hang_hold

let dp_burst_fault t =
  match t.dp_burst with
  | None -> ()
  | Some f ->
      Counters.incr_h (counters t) t.h_dp_bursts;
      tracef t "dp burst size=%d" t.profile.dp_burst_size;
      f ~size:t.profile.dp_burst_size

(* The three churn classes fire harness callbacks: the harness owns the
   lifecycle (which tenant to retire, what spec to admit, how to pin a
   drain open) — the injector owns only the cadence and the receipt. A
   departure rides with a CP storm when the profile also runs the cp_hang
   stream; the harness composes the two at the callback. *)
let churn_depart_fault t =
  match t.churn_depart with
  | None -> ()
  | Some f ->
      Counters.incr_h (counters t) t.h_churn_departs;
      tracef t "churn depart";
      f ()

let churn_arrive_fault t =
  match t.churn_arrive with
  | None -> ()
  | Some f ->
      Counters.incr_h (counters t) t.h_churn_arrivals;
      tracef t "churn arrive";
      f ()

let churn_overrun_fault t =
  match t.churn_overrun with
  | None -> ()
  | Some f ->
      Counters.incr_h (counters t) t.h_churn_overruns;
      tracef t "churn overrun";
      f ()

let stop t =
  t.stopped <- true;
  Machine.iter_lapics t.machine (fun lapic -> Lapic.set_loss_filter lapic None);
  (match t.table with
  | None -> ()
  | Some table ->
      for core = 0 to Machine.physical_cores t.machine - 1 do
        State_table.thaw table ~core
      done);
  tracef t "injector stopped"

let arm t ~until =
  t.until <- until;
  if t.profile.lapic_loss_p > 0. then
    Machine.iter_lapics t.machine (fun lapic ->
        Lapic.set_loss_filter lapic
          (Some
             (fun v ->
               (not t.stopped)
               && v <> t.boot_vector
               && Rng.bernoulli t.lapic_rng ~p:t.profile.lapic_loss_p
               &&
               (Counters.incr_h (counters t) t.h_lapic_lost;
                tracef t "lapic loss apic=%d vec=%d" (Lapic.apic_id lapic) v;
                true))));
  periodic t t.mirror_rng t.profile.mirror_period (fun () -> mirror_fault t);
  periodic t t.probe_rng t.profile.probe_misfire_period (fun () ->
      probe_misfire_fault t);
  periodic t t.cp_rng t.profile.cp_hang_period (fun () -> cp_hang_fault t);
  periodic t t.dp_rng t.profile.dp_burst_period (fun () -> dp_burst_fault t);
  periodic t t.churn_depart_rng t.profile.churn_depart_period (fun () ->
      churn_depart_fault t);
  periodic t t.churn_arrive_rng t.profile.churn_arrive_period (fun () ->
      churn_arrive_fault t);
  periodic t t.churn_overrun_rng t.profile.churn_overrun_period (fun () ->
      churn_overrun_fault t);
  ignore (Sim.at (sim t) until (fun () -> stop t))

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* --- writer -------------------------------------------------------------- *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      (* %.17g round-trips every float; trim to a canonical form so equal
         values always print identically (determinism of exports). *)
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | Str s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
  | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 4096 in
  write buf j;
  Buffer.contents buf

let to_channel oc j = output_string oc (to_string j)

(* --- parser -------------------------------------------------------------- *)

exception Parse_error of string

type cursor = { s : string; mutable pos : int }

let fail cur msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg cur.pos))

let peek cur = if cur.pos < String.length cur.s then Some cur.s.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let rec skip_ws cur =
  match peek cur with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance cur;
      skip_ws cur
  | Some _ | None -> ()

let expect cur c =
  match peek cur with
  | Some x when x = c -> advance cur
  | Some x -> fail cur (Printf.sprintf "expected %c, found %c" c x)
  | None -> fail cur (Printf.sprintf "expected %c, found end of input" c)

let literal cur word value =
  let n = String.length word in
  if cur.pos + n <= String.length cur.s && String.sub cur.s cur.pos n = word
  then begin
    cur.pos <- cur.pos + n;
    value
  end
  else fail cur (Printf.sprintf "invalid literal (expected %s)" word)

let parse_string cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek cur with
    | None -> fail cur "unterminated string"
    | Some '"' -> advance cur
    | Some '\\' -> (
        advance cur;
        match peek cur with
        | Some 'n' -> advance cur; Buffer.add_char buf '\n'; loop ()
        | Some 't' -> advance cur; Buffer.add_char buf '\t'; loop ()
        | Some 'r' -> advance cur; Buffer.add_char buf '\r'; loop ()
        | Some 'b' -> advance cur; Buffer.add_char buf '\b'; loop ()
        | Some 'f' -> advance cur; Buffer.add_char buf '\012'; loop ()
        | Some '/' -> advance cur; Buffer.add_char buf '/'; loop ()
        | Some '"' -> advance cur; Buffer.add_char buf '"'; loop ()
        | Some '\\' -> advance cur; Buffer.add_char buf '\\'; loop ()
        | Some 'u' ->
            advance cur;
            if cur.pos + 4 > String.length cur.s then fail cur "bad \\u escape";
            let hex = String.sub cur.s cur.pos 4 in
            cur.pos <- cur.pos + 4;
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail cur "bad \\u escape"
            in
            (* Escaped control characters only ever come from our own
               writer, which never emits codes above 0x1F. *)
            Buffer.add_char buf (Char.chr (code land 0xff));
            loop ()
        | Some c -> fail cur (Printf.sprintf "bad escape \\%c" c)
        | None -> fail cur "unterminated escape")
    | Some c ->
        advance cur;
        Buffer.add_char buf c;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number cur =
  let start = cur.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec scan () =
    match peek cur with
    | Some c when is_num_char c ->
        advance cur;
        scan ()
    | Some _ | None -> ()
  in
  scan ();
  let lit = String.sub cur.s start (cur.pos - start) in
  match int_of_string_opt lit with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt lit with
      | Some f -> Float f
      | None -> fail cur (Printf.sprintf "invalid number %S" lit))

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> fail cur "unexpected end of input"
  | Some '{' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some '}' then begin
        advance cur;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws cur;
          let k = parse_string cur in
          skip_ws cur;
          expect cur ':';
          let v = parse_value cur in
          skip_ws cur;
          match peek cur with
          | Some ',' ->
              advance cur;
              fields ((k, v) :: acc)
          | Some '}' ->
              advance cur;
              List.rev ((k, v) :: acc)
          | _ -> fail cur "expected , or } in object"
        in
        Obj (fields [])
      end
  | Some '[' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some ']' then begin
        advance cur;
        Arr []
      end
      else begin
        let rec items acc =
          let v = parse_value cur in
          skip_ws cur;
          match peek cur with
          | Some ',' ->
              advance cur;
              items (v :: acc)
          | Some ']' ->
              advance cur;
              List.rev (v :: acc)
          | _ -> fail cur "expected , or ] in array"
        in
        Arr (items [])
      end
  | Some '"' -> Str (parse_string cur)
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some 'n' -> literal cur "null" Null
  | Some ('-' | '0' .. '9') -> parse_number cur
  | Some c -> fail cur (Printf.sprintf "unexpected character %c" c)

let parse s =
  let cur = { s; pos = 0 } in
  let v = parse_value cur in
  skip_ws cur;
  if cur.pos <> String.length s then fail cur "trailing garbage";
  v

let parse_opt s = try Some (parse s) with Parse_error _ -> None

(* --- accessors ----------------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_list = function Arr l -> Some l | _ -> None
let to_str = function Str s -> Some s | _ -> None

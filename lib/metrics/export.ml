open Taichi_engine

let schema = "taichi-trace-v1"

type run = {
  experiment : string;
  policy : string;
  seed : int;
  duration : Time_ns.t;
  cores : int;
  tenants : int list;
      (* registered tenant ids under an explicit multi-tenant table;
         empty (and absent from the JSON) for single-tenant runs *)
  counters : (string * int) list;
  timeline : Timeline.t;
  events : Trace.record list;
}

let make_run ?(tenants = []) ~experiment ~policy ~seed ~duration ~cores
    ~counters trace =
  {
    experiment;
    policy;
    seed;
    duration;
    cores;
    tenants;
    counters = List.sort (fun (a, _) (b, _) -> compare a b) counters;
    timeline = Timeline.of_trace ~cores ~duration trace;
    events = Trace.records trace;
  }

let occupancy_to_json core (o : Timeline.occupancy) =
  Json.Obj
    [
      ("core", Json.Int core);
      ("dp_ns", Json.Int o.Timeline.dp);
      ("vcpu_ns", Json.Int o.Timeline.vcpu);
      ("switch_ns", Json.Int o.Timeline.switch);
      ("idle_ns", Json.Int o.Timeline.idle);
      ("total_ns", Json.Int (Timeline.total o));
    ]

let event_to_json (r : Trace.record) =
  Json.Obj
    [
      ("t_ns", Json.Int r.Trace.time);
      ("core", Json.Int r.Trace.core);
      ("cat", Json.Str r.Trace.category);
      ("msg", Json.Str r.Trace.message);
    ]

let run_to_json r =
  let tl = r.timeline in
  Json.Obj
    ([
      ("experiment", Json.Str r.experiment);
      ("policy", Json.Str r.policy);
      ("seed", Json.Int r.seed);
      ("duration_ns", Json.Int r.duration);
      ("cores", Json.Int r.cores);
    ]
    @ (match r.tenants with
      | [] -> []
      | ids -> [ ("tenants", Json.Arr (List.map (fun i -> Json.Int i) ids)) ])
    @ [
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) r.counters) );
      ( "timeline",
        Json.Arr
          (List.init r.cores (fun core ->
               occupancy_to_json core (Timeline.occupancy tl ~core))) );
      ( "event_counts",
        Json.Obj
          (List.map (fun (k, v) -> (k, Json.Int v)) (Timeline.event_counts tl))
      );
      ("events_dropped", Json.Int (Timeline.dropped tl));
      ("events", Json.Arr (List.map event_to_json r.events));
    ])

let to_json runs =
  Json.Obj
    [
      ("schema", Json.Str schema); ("runs", Json.Arr (List.map run_to_json runs));
    ]

let to_string runs = Json.to_string (to_json runs)

let write_file path runs =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Json.to_channel oc (to_json runs);
      output_char oc '\n')

(* --- validation (used by trace_lint and tests) --------------------------- *)

let ladder_rank = function
  | "normal" -> Some 0
  | "throttle" -> Some 1
  | "defer" -> Some 2
  | "shed" -> Some 3
  | "static_partition" -> Some 4
  | _ -> None

(* The only [Cat.overload] emitter is the governor's rung transition, so
   every overload event must carry the transition payload — optionally
   prefixed with the owning lane's [tenant=<id>] under a multi-tenant
   table. The tenant key is [-1] for the untagged (single-lane) chain, so
   each lane's ladder is validated as its own continuous chain. *)
let parse_transition msg =
  let body tenant msg =
    try
      Scanf.sscanf msg "seq=%d from=%s@ to=%s@ held=%d min=%d"
        (fun seq from to_ held min -> Some (tenant, seq, from, to_, held, min))
    with Scanf.Scan_failure _ | Failure _ | End_of_file -> None
  in
  match
    try
      Scanf.sscanf msg "tenant=%d %s@\n" (fun tid rest -> Some (tid, rest))
    with Scanf.Scan_failure _ | Failure _ | End_of_file -> None
  with
  | Some (tid, rest) when tid >= 0 -> body tid rest
  | Some _ | None -> body (-1) msg

(* The churn lifecycle's retirement marker: [retired tenant=<id>
   forced=<b>]. Once it appears, that tenant's lanes are frozen — any
   later per-tenant overload transition is a validation error. *)
let parse_retired msg =
  try Scanf.sscanf msg "retired tenant=%d forced=%B" (fun tid _ -> Some tid)
  with Scanf.Scan_failure _ | Failure _ | End_of_file -> None

(* Fleet exchange records, as emitted by Taichi_fleet.Fleet: sends and
   receives carry epoch stamps so the lint can check cross-NIC causality
   without pairing records across runs (the trace ring buffer may have
   dropped the matching send). *)
let parse_fleet_recv msg =
  try
    Scanf.sscanf msg "recv src=%d seq=%d epoch=%d sent=%d" (fun a b c d ->
        Some (a, b, c, d))
  with Scanf.Scan_failure _ | Failure _ | End_of_file -> None

let parse_fleet_send msg =
  try
    Scanf.sscanf msg "send dst=%d seq=%d epoch=%d" (fun a b c ->
        Some (a, b, c))
  with Scanf.Scan_failure _ | Failure _ | End_of_file -> None

let has_prefix prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* Runs carrying fleet events must use the harness's per-NIC label
   convention, "<experiment>.nic<NN>" — the prefix is what groups one
   rack's exports back together. *)
let is_per_nic_label s =
  match String.rindex_opt s '.' with
  | None -> false
  | Some i ->
      let tail = String.sub s (i + 1) (String.length s - i - 1) in
      has_prefix "nic" tail
      && String.length tail > 3
      && (match int_of_string_opt (String.sub tail 3 (String.length tail - 3))
          with
         | Some n -> n >= 0
         | None -> false)

let validate_json j =
  let ( let* ) x f = match x with Ok v -> f v | Error _ as e -> e in
  let require msg = function Some v -> Ok v | None -> Error msg in
  let* s = require "missing schema" (Json.member "schema" j) in
  let* s = require "schema not a string" (Json.to_str s) in
  let* () = if s = schema then Ok () else Error ("unknown schema " ^ s) in
  let* runs = require "missing runs" (Json.member "runs" j) in
  let* runs = require "runs not an array" (Json.to_list runs) in
  let check_run r =
    let* dur = require "missing duration_ns" (Json.member "duration_ns" r) in
    let* dur = require "duration_ns not an int" (Json.to_int dur) in
    let* tl = require "missing timeline" (Json.member "timeline" r) in
    let* tl = require "timeline not an array" (Json.to_list tl) in
    let* cores = require "missing cores" (Json.member "cores" r) in
    let* cores = require "cores not an int" (Json.to_int cores) in
    let* () =
      if List.length tl = cores then Ok ()
      else Error "timeline row count does not match cores"
    in
    (* Counter snapshots are exported via [Counters.dump], whose contract
       is strictly-sorted-by-name output whatever order the handles were
       interned in; an unsorted (or duplicated) key means some export
       path bypassed it and the byte-identity story is broken. *)
    let* () =
      match Json.member "counters" r with
      | None -> Ok ()
      | Some (Json.Obj fields) ->
          let rec sorted = function
            | (a, _) :: ((b, _) :: _ as rest) ->
                if String.compare a b < 0 then sorted rest
                else
                  Error
                    (Printf.sprintf
                       "counters snapshot is not sorted by name (%S then %S)"
                       a b)
            | _ -> Ok ()
          in
          sorted fields
      | Some _ -> Error "counters not an object"
    in
    (* A run that recorded illegal core-state transitions (Permissive-mode
       degradation) is not a clean export, even if its timeline is
       well-formed. Counters only materialise once incremented, so an
       absent counter means zero. *)
    let* () =
      match Json.member "counters" r with
      | None -> Ok ()
      | Some cs -> (
          match Json.member "core_state.illegal" cs with
          | None -> Ok ()
          | Some v -> (
              match Json.to_int v with
              | Some n when n > 0 ->
                  Error "core_state.illegal counter is non-zero"
              | Some _ -> Ok ()
              | None -> Error "core_state.illegal not an int"))
    in
    (* The recovery and overload subsystems export monotone tallies; a
       negative value means a counter was decremented (or two exports were
       subtracted), either of which breaks the forensic story the trace is
       supposed to tell. *)
    let* () =
      match Json.member "counters" r with
      | None -> Ok ()
      | Some (Json.Obj fields) ->
          List.fold_left
            (fun acc (k, v) ->
              let* () = acc in
              let monotone prefix =
                String.length k >= String.length prefix
                && String.sub k 0 (String.length prefix) = prefix
              in
              if monotone "recovery." || monotone "overload."
                 || monotone "fleet." then
                match Json.to_int v with
                | Some n when n < 0 ->
                    Error (Printf.sprintf "counter %s is negative" k)
                | Some _ -> Ok ()
                | None -> Error (Printf.sprintf "counter %s not an int" k)
              else Ok ())
            (Ok ()) fields
      | Some _ -> Error "counters not an object"
    in
    (* Event-log discipline: timestamps must never run backwards, and
       each overload ladder (one chain per tenant lane; one untagged
       chain on single-tenant runs) must move one rung at a time, in
       sequence, with a continuous from/to chain that respects the
       minimum dwell. *)
    let* () =
      match Json.member "events" r with
      | None -> Ok ()
      | Some evs ->
          let* evs = require "events not an array" (Json.to_list evs) in
          let* _, _, _, fleet_seen =
            List.fold_left
              (fun acc ev ->
                let* prev_t, chains, retired, fleet_seen = acc in
                let* t = require "event missing t_ns" (Json.member "t_ns" ev) in
                let* t = require "event t_ns not an int" (Json.to_int t) in
                let* () =
                  if t < prev_t then
                    Error
                      (Printf.sprintf
                         "event times run backwards (%d after %d)" t prev_t)
                  else Ok ()
                in
                let* cat = require "event missing cat" (Json.member "cat" ev) in
                let* cat =
                  require "event cat not a string" (Json.to_str cat)
                in
                if cat = "churn" then
                  (* Record retirement markers: from here on the tenant's
                     lanes are frozen. Other churn payloads pass through. *)
                  let retired =
                    match
                      Option.bind (Json.member "msg" ev) Json.to_str
                    with
                    | Some msg -> (
                        match parse_retired msg with
                        | Some tid -> tid :: retired
                        | None -> retired)
                    | None -> retired
                  in
                  Ok (t, chains, retired, fleet_seen)
                else if cat = "fleet" then
                  (* Cross-NIC causality: a receive must carry the epoch
                     its send happened in, strictly before the delivery
                     epoch — checked from the recv record alone, so a
                     ring-buffer-dropped send never fails the lint. *)
                  let* msg =
                    require "fleet event missing msg" (Json.member "msg" ev)
                  in
                  let* msg =
                    require "fleet event msg not a string" (Json.to_str msg)
                  in
                  let* () =
                    if has_prefix "recv " msg then
                      match parse_fleet_recv msg with
                      | None ->
                          Error
                            (Printf.sprintf "malformed fleet receive %S" msg)
                      | Some (src, seq, epoch, sent) ->
                          if src < 0 || seq < 0 then
                            Error
                              (Printf.sprintf
                                 "fleet receive with negative src/seq %S" msg)
                          else if sent >= epoch then
                            Error
                              (Printf.sprintf
                                 "fleet receive breaks causality: sent \
                                  epoch %d, delivered epoch %d (%S)"
                                 sent epoch msg)
                          else Ok ()
                    else if has_prefix "send " msg then
                      match parse_fleet_send msg with
                      | None ->
                          Error (Printf.sprintf "malformed fleet send %S" msg)
                      | Some (dst, seq, _epoch) ->
                          if dst < 0 || seq < 0 then
                            Error
                              (Printf.sprintf
                                 "fleet send with negative dst/seq %S" msg)
                          else Ok ()
                    else Ok ()
                  in
                  Ok (t, chains, retired, true)
                else if cat <> "overload" then Ok (t, chains, retired, fleet_seen)
                else
                  let* msg =
                    require "event missing msg" (Json.member "msg" ev)
                  in
                  let* msg =
                    require "event msg not a string" (Json.to_str msg)
                  in
                  let* tenant, seq, from, to_, held, min_dwell =
                    require
                      (Printf.sprintf "malformed overload transition %S" msg)
                      (parse_transition msg)
                  in
                  (* Frozen-after-retire: a retired tenant's ladder must
                     never move again — its lane is kept, not driven. *)
                  let* () =
                    if tenant >= 0 && List.mem tenant retired then
                      Error
                        (Printf.sprintf
                           "overload transition for retired tenant %d (lane \
                            must stay frozen)"
                           tenant)
                    else Ok ()
                  in
                  let want_seq, prev_level =
                    Option.value ~default:(1, "normal")
                      (List.assoc_opt tenant chains)
                  in
                  let lane_tag =
                    if tenant < 0 then ""
                    else Printf.sprintf " (tenant %d)" tenant
                  in
                  let* () =
                    if seq <> want_seq then
                      Error
                        (Printf.sprintf
                           "overload transition seq %d, expected %d%s" seq
                           want_seq lane_tag)
                    else Ok ()
                  in
                  let* () =
                    if from <> prev_level then
                      Error
                        (Printf.sprintf
                           "overload ladder chain broken: transition from %s \
                            but ladder was at %s%s"
                           from prev_level lane_tag)
                    else Ok ()
                  in
                  let* rf =
                    require
                      (Printf.sprintf "unknown overload level %s" from)
                      (ladder_rank from)
                  in
                  let* rt =
                    require
                      (Printf.sprintf "unknown overload level %s" to_)
                      (ladder_rank to_)
                  in
                  let* () =
                    if abs (rt - rf) <> 1 then
                      Error
                        (Printf.sprintf
                           "overload ladder skipped a rung (%s -> %s)%s" from
                           to_ lane_tag)
                    else Ok ()
                  in
                  let* () =
                    if held < min_dwell then
                      Error
                        (Printf.sprintf
                           "overload transition %d violated minimum dwell \
                            (held %dns < %dns)%s"
                           seq held min_dwell lane_tag)
                    else Ok ()
                  in
                  Ok
                    ( t,
                      (tenant, (want_seq + 1, to_))
                      :: List.remove_assoc tenant chains,
                      retired,
                      fleet_seen ))
              (Ok (0, [], [], false))
              evs
          in
          if fleet_seen then
            let* label =
              require "missing experiment" (Json.member "experiment" r)
            in
            let* label =
              require "experiment not a string" (Json.to_str label)
            in
            if is_per_nic_label label then Ok ()
            else
              Error
                (Printf.sprintf
                   "run %S carries fleet events but is not labelled with \
                    the per-NIC \".nic<NN>\" suffix"
                   label)
          else Ok ()
    in
    (* Per-tenant counter sections: every [tenant.<id>.<suffix>] counter
       must be non-negative, belong to a tenant id the run registered,
       and — because each per-tenant increment mirrors a global one — the
       per-tenant values must sum to exactly the global [<suffix>]
       counter. *)
    let* () =
      let registered =
        match Json.member "tenants" r with
        | Some (Json.Arr ids) -> Some (List.filter_map Json.to_int ids)
        | Some _ | None -> None
      in
      match Json.member "counters" r with
      | None -> Ok ()
      | Some (Json.Obj fields) ->
          let tenant_of k =
            match
              try
                Scanf.sscanf k "tenant.%d.%s@\n" (fun id suffix ->
                    Some (id, suffix))
              with Scanf.Scan_failure _ | Failure _ | End_of_file -> None
            with
            | Some (id, suffix) when suffix <> "" -> Some (id, suffix)
            | Some _ | None -> None
          in
          let* sums =
            List.fold_left
              (fun acc (k, v) ->
                let* sums = acc in
                match tenant_of k with
                | None -> Ok sums
                | Some (id, suffix) ->
                    let* n =
                      require
                        (Printf.sprintf "counter %s not an int" k)
                        (Json.to_int v)
                    in
                    let* () =
                      if n < 0 then
                        Error (Printf.sprintf "counter %s is negative" k)
                      else Ok ()
                    in
                    let* () =
                      match registered with
                      | Some ids when not (List.mem id ids) ->
                          Error
                            (Printf.sprintf
                               "counter %s names unregistered tenant %d" k id)
                      | Some _ -> Ok ()
                      | None ->
                          Error
                            (Printf.sprintf
                               "per-tenant counter %s in a run with no \
                                tenants field"
                               k)
                    in
                    let prev =
                      Option.value ~default:0 (List.assoc_opt suffix sums)
                    in
                    Ok ((suffix, prev + n) :: List.remove_assoc suffix sums))
              (Ok []) fields
          in
          List.fold_left
            (fun acc (suffix, total) ->
              let* () = acc in
              let global =
                match List.assoc_opt suffix fields with
                | Some v -> Option.value ~default:0 (Json.to_int v)
                | None -> 0
              in
              if total <> global then
                Error
                  (Printf.sprintf
                     "per-tenant %s counters sum to %d but global is %d"
                     suffix total global)
              else Ok ())
            (Ok ()) sums
      | Some _ -> Error "counters not an object"
    in
    List.fold_left
      (fun acc row ->
        let* () = acc in
        let field name =
          let* v = require ("missing " ^ name) (Json.member name row) in
          require (name ^ " not an int") (Json.to_int v)
        in
        let* dp = field "dp_ns" in
        let* vcpu = field "vcpu_ns" in
        let* switch = field "switch_ns" in
        let* idle = field "idle_ns" in
        let* total = field "total_ns" in
        if dp + vcpu + switch + idle <> total then
          Error "occupancy buckets do not sum to total_ns"
        else if total <> dur then
          Error "core occupancy total does not equal duration_ns"
        else Ok ())
      (Ok ()) tl
  in
  List.fold_left
    (fun acc r ->
      let* () = acc in
      check_run r)
    (Ok ()) runs

let validate_string s =
  match Json.parse_opt s with
  | None -> Error "not valid JSON"
  | Some j -> validate_json j

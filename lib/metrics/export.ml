open Taichi_engine

let schema = "taichi-trace-v1"

type run = {
  experiment : string;
  policy : string;
  seed : int;
  duration : Time_ns.t;
  cores : int;
  counters : (string * int) list;
  timeline : Timeline.t;
  events : Trace.record list;
}

let make_run ~experiment ~policy ~seed ~duration ~cores ~counters trace =
  {
    experiment;
    policy;
    seed;
    duration;
    cores;
    counters = List.sort (fun (a, _) (b, _) -> compare a b) counters;
    timeline = Timeline.of_trace ~cores ~duration trace;
    events = Trace.records trace;
  }

let occupancy_to_json core (o : Timeline.occupancy) =
  Json.Obj
    [
      ("core", Json.Int core);
      ("dp_ns", Json.Int o.Timeline.dp);
      ("vcpu_ns", Json.Int o.Timeline.vcpu);
      ("switch_ns", Json.Int o.Timeline.switch);
      ("idle_ns", Json.Int o.Timeline.idle);
      ("total_ns", Json.Int (Timeline.total o));
    ]

let event_to_json (r : Trace.record) =
  Json.Obj
    [
      ("t_ns", Json.Int r.Trace.time);
      ("core", Json.Int r.Trace.core);
      ("cat", Json.Str r.Trace.category);
      ("msg", Json.Str r.Trace.message);
    ]

let run_to_json r =
  let tl = r.timeline in
  Json.Obj
    [
      ("experiment", Json.Str r.experiment);
      ("policy", Json.Str r.policy);
      ("seed", Json.Int r.seed);
      ("duration_ns", Json.Int r.duration);
      ("cores", Json.Int r.cores);
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) r.counters) );
      ( "timeline",
        Json.Arr
          (List.init r.cores (fun core ->
               occupancy_to_json core (Timeline.occupancy tl ~core))) );
      ( "event_counts",
        Json.Obj
          (List.map (fun (k, v) -> (k, Json.Int v)) (Timeline.event_counts tl))
      );
      ("events_dropped", Json.Int (Timeline.dropped tl));
      ("events", Json.Arr (List.map event_to_json r.events));
    ]

let to_json runs =
  Json.Obj
    [
      ("schema", Json.Str schema); ("runs", Json.Arr (List.map run_to_json runs));
    ]

let to_string runs = Json.to_string (to_json runs)

let write_file path runs =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Json.to_channel oc (to_json runs);
      output_char oc '\n')

(* --- validation (used by trace_lint and tests) --------------------------- *)

let validate_json j =
  let ( let* ) x f = match x with Ok v -> f v | Error _ as e -> e in
  let require msg = function Some v -> Ok v | None -> Error msg in
  let* s = require "missing schema" (Json.member "schema" j) in
  let* s = require "schema not a string" (Json.to_str s) in
  let* () = if s = schema then Ok () else Error ("unknown schema " ^ s) in
  let* runs = require "missing runs" (Json.member "runs" j) in
  let* runs = require "runs not an array" (Json.to_list runs) in
  let check_run r =
    let* dur = require "missing duration_ns" (Json.member "duration_ns" r) in
    let* dur = require "duration_ns not an int" (Json.to_int dur) in
    let* tl = require "missing timeline" (Json.member "timeline" r) in
    let* tl = require "timeline not an array" (Json.to_list tl) in
    let* cores = require "missing cores" (Json.member "cores" r) in
    let* cores = require "cores not an int" (Json.to_int cores) in
    let* () =
      if List.length tl = cores then Ok ()
      else Error "timeline row count does not match cores"
    in
    (* A run that recorded illegal core-state transitions (Permissive-mode
       degradation) is not a clean export, even if its timeline is
       well-formed. Counters only materialise once incremented, so an
       absent counter means zero. *)
    let* () =
      match Json.member "counters" r with
      | None -> Ok ()
      | Some cs -> (
          match Json.member "core_state.illegal" cs with
          | None -> Ok ()
          | Some v -> (
              match Json.to_int v with
              | Some n when n > 0 ->
                  Error "core_state.illegal counter is non-zero"
              | Some _ -> Ok ()
              | None -> Error "core_state.illegal not an int"))
    in
    List.fold_left
      (fun acc row ->
        let* () = acc in
        let field name =
          let* v = require ("missing " ^ name) (Json.member name row) in
          require (name ^ " not an int") (Json.to_int v)
        in
        let* dp = field "dp_ns" in
        let* vcpu = field "vcpu_ns" in
        let* switch = field "switch_ns" in
        let* idle = field "idle_ns" in
        let* total = field "total_ns" in
        if dp + vcpu + switch + idle <> total then
          Error "occupancy buckets do not sum to total_ns"
        else if total <> dur then
          Error "core occupancy total does not equal duration_ns"
        else Ok ())
      (Ok ()) tl
  in
  List.fold_left
    (fun acc r ->
      let* () = acc in
      check_run r)
    (Ok ()) runs

let validate_string s =
  match Json.parse_opt s with
  | None -> Error "not valid JSON"
  | Some j -> validate_json j

open Taichi_engine

type objective =
  | Latency_percentile of { percentile : float; bound : Time_ns.t }
  | Mean_latency of Time_ns.t
  | Max_latency of Time_ns.t
  | Min_throughput of float

type t = { name : string; objective : objective }

type verdict = { slo : t; satisfied : bool; measured : float; target : float }

let latency_p name ~percentile ~bound =
  { name; objective = Latency_percentile { percentile; bound } }

let mean_latency name bound = { name; objective = Mean_latency bound }
let max_latency name bound = { name; objective = Max_latency bound }
let min_throughput name ~per_sec = { name; objective = Min_throughput per_sec }

let check_hist slo hist ~duration =
  let empty = Histogram.count hist = 0 in
  match slo.objective with
  | Latency_percentile { percentile; bound } ->
      let measured =
        if empty then infinity
        else float_of_int (Histogram.percentile hist percentile)
      in
      { slo; satisfied = measured <= float_of_int bound; measured;
        target = float_of_int bound }
  | Mean_latency bound ->
      let measured = if empty then infinity else Histogram.mean hist in
      { slo; satisfied = measured <= float_of_int bound; measured;
        target = float_of_int bound }
  | Max_latency bound ->
      let measured =
        if empty then infinity else float_of_int (Histogram.max_value hist)
      in
      { slo; satisfied = measured <= float_of_int bound; measured;
        target = float_of_int bound }
  | Min_throughput per_sec ->
      (* An empty window or a degenerate duration cannot demonstrate any
         throughput: the verdict is a definite "unsatisfied, measured 0"
         rather than whatever 0/0 would have produced. *)
      if empty || duration <= 0 then
        { slo; satisfied = false; measured = 0.0; target = per_sec }
      else
        let measured =
          float_of_int (Histogram.count hist) /. Time_ns.to_sec_f duration
        in
        { slo; satisfied = measured >= per_sec; measured; target = per_sec }

let check slo recorder ~duration =
  check_hist slo (Recorder.histogram recorder) ~duration

let check_all slos recorder ~duration =
  List.map (fun slo -> check slo recorder ~duration) slos

let pp_verdict fmt v =
  let status = if v.satisfied then "OK" else "VIOLATED" in
  match v.slo.objective with
  | Min_throughput _ ->
      Format.fprintf fmt "%s: %s (%.1f/s vs >= %.1f/s)" v.slo.name status
        v.measured v.target
  | Latency_percentile _ | Mean_latency _ | Max_latency _ ->
      (* Empty recorders measure [infinity], which has no meaningful
         [int_of_float] image; print it as "no samples" instead. *)
      let measured =
        if Float.is_finite v.measured then
          Time_ns.to_string (int_of_float v.measured)
        else "no samples"
      in
      Format.fprintf fmt "%s: %s (%s vs <= %s)" v.slo.name status measured
        (Time_ns.to_string (int_of_float v.target))

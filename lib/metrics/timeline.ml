open Taichi_engine

type occupancy = {
  dp : Time_ns.t;
  vcpu : Time_ns.t;
  switch : Time_ns.t;
  idle : Time_ns.t;
}

let total o = o.dp + o.vcpu + o.switch + o.idle

type t = {
  duration : Time_ns.t;
  cores : occupancy array;
  event_counts : (string * int) list;
  dropped : int;
}

type state = Dp | Vcpu | Switch | Idle

let state_of_message m =
  if m = Trace.Cat.state_dp then Some Dp
  else if m = Trace.Cat.state_vcpu then Some Vcpu
  else if m = Trace.Cat.state_switch then Some Switch
  else if m = Trace.Cat.state_idle then Some Idle
  else None

let of_trace ~cores ~duration trace =
  let occ =
    Array.make cores { dp = 0; vcpu = 0; switch = 0; idle = 0 }
  in
  (* Every core starts idle at t=0; each core.state record closes the
     running span and opens the next, so spans partition [0, duration] by
     construction and the buckets sum exactly to the wall time. *)
  let cur = Array.make cores Idle in
  let since = Array.make cores 0 in
  let counts : (string, int ref) Hashtbl.t = Hashtbl.create 32 in
  let account core upto =
    let d = max 0 (min upto duration - since.(core)) in
    if d > 0 then begin
      let o = occ.(core) in
      occ.(core) <-
        (match cur.(core) with
        | Dp -> { o with dp = o.dp + d }
        | Vcpu -> { o with vcpu = o.vcpu + d }
        | Switch -> { o with switch = o.switch + d }
        | Idle -> { o with idle = o.idle + d })
    end;
    since.(core) <- min upto duration
  in
  Trace.iter trace (fun r ->
      (match Hashtbl.find_opt counts r.Trace.category with
      | Some c -> incr c
      | None -> Hashtbl.replace counts r.Trace.category (ref 1));
      if r.Trace.category = Trace.Cat.core_state then
        match state_of_message r.Trace.message with
        | Some st when r.Trace.core >= 0 && r.Trace.core < cores ->
            account r.Trace.core r.Trace.time;
            cur.(r.Trace.core) <- st
        | Some _ | None -> ());
  for core = 0 to cores - 1 do
    account core duration
  done;
  let event_counts =
    Hashtbl.fold (fun k v acc -> (k, !v) :: acc) counts []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  { duration; cores = occ; event_counts; dropped = Trace.dropped trace }

let duration t = t.duration
let n_cores t = Array.length t.cores

let occupancy t ~core = t.cores.(core)
let event_counts t = t.event_counts
let dropped t = t.dropped

let pct part whole =
  if whole <= 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int whole

let pp fmt t =
  Format.fprintf fmt "timeline over %s (%d cores)@."
    (Time_ns.to_string t.duration)
    (Array.length t.cores);
  Array.iteri
    (fun core o ->
      Format.fprintf fmt
        "  core %2d: dp=%5.1f%% vcpu=%5.1f%% switch=%5.1f%% idle=%5.1f%%@."
        core
        (pct o.dp t.duration)
        (pct o.vcpu t.duration)
        (pct o.switch t.duration)
        (pct o.idle t.duration))
    t.cores;
  if t.event_counts <> [] then begin
    Format.fprintf fmt "  events:";
    List.iter
      (fun (cat, n) -> Format.fprintf fmt " %s=%d" cat n)
      t.event_counts;
    Format.fprintf fmt "@."
  end

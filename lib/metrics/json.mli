(** Minimal self-contained JSON tree, writer and parser.

    The exporter ({!Export}) writes through this module; the parser exists
    so tests and the [trace_lint] tool can validate exports without adding a
    JSON dependency to the toolchain. Writing is deterministic: object
    fields print in the order given, floats in a canonical form. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
val to_channel : out_channel -> t -> unit

exception Parse_error of string

val parse : string -> t
(** [parse s] parses one JSON document. Raises {!Parse_error} on malformed
    input or trailing garbage. *)

val parse_opt : string -> t option

val member : string -> t -> t option
(** [member key (Obj fields)] is the field's value, if present. *)

val to_int : t -> int option
val to_list : t -> t list option
val to_str : t -> string option

(** Per-core occupancy accounting folded from a machine trace.

    The scheduler-wide observability layer emits a [Trace.Cat.core_state]
    record whenever a physical core changes occupancy (data-plane polling /
    work, vCPU backing, world-switch overhead, idle/parked). Folding those
    transition events over [0, duration] yields, per core, how the wall
    time divides among the four occupancy classes — and the four buckets
    sum to [duration] exactly, by construction. *)

open Taichi_engine

type occupancy = {
  dp : Time_ns.t;  (** data-plane polling and packet/IO processing *)
  vcpu : Time_ns.t;  (** backing a vCPU (control-plane execution) *)
  switch : Time_ns.t;  (** world-switch / yield-resume overhead *)
  idle : Time_ns.t;  (** parked, or (on CP cores) not traced *)
}

val total : occupancy -> Time_ns.t
(** [total o] is the sum of the four buckets, i.e. the fold duration. *)

type t

val of_trace : cores:int -> duration:Time_ns.t -> Trace.t -> t
(** [of_trace ~cores ~duration trace] folds the retained records. Each core
    starts [idle] at time 0; records outside [Trace.Cat.core_state] only
    contribute to {!event_counts}. *)

val duration : t -> Time_ns.t
val n_cores : t -> int
val occupancy : t -> core:int -> occupancy

val event_counts : t -> (string * int) list
(** Number of retained trace records per category, sorted by category. *)

val dropped : t -> int
(** Records lost to the trace ring-buffer limit; a non-zero value means the
    occupancy attribution (though not the summation invariant) may be
    skewed at the start of the window. *)

val pp : Format.formatter -> t -> unit

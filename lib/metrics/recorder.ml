open Taichi_engine

type t = {
  name : string;
  hist : Histogram.t;
  stats : Stats.t;
  counters : (string, int ref) Hashtbl.t;
}

let create name =
  {
    name;
    hist = Histogram.create ();
    stats = Stats.create ();
    counters = Hashtbl.create 8;
  }

let name r = r.name

let observe r v =
  Histogram.add r.hist v;
  Stats.add_int r.stats v

let incr r ?(by = 1) key =
  match Hashtbl.find_opt r.counters key with
  | Some cell -> cell := !cell + by
  | None -> Hashtbl.replace r.counters key (ref by)

let counter r key =
  match Hashtbl.find_opt r.counters key with Some c -> !c | None -> 0

let counters r =
  Hashtbl.fold (fun k v acc -> (k, !v) :: acc) r.counters []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let count r = Histogram.count r.hist
let mean r = Stats.mean r.stats
let stddev r = Stats.stddev r.stats
let min_value r = Histogram.min_value r.hist
let max_value r = Histogram.max_value r.hist
let percentile r p = Histogram.percentile r.hist p
let histogram r = r.hist

let clear r =
  Histogram.clear r.hist;
  Stats.clear r.stats;
  Hashtbl.reset r.counters

let throughput_per_sec r ~duration =
  if duration <= 0 then 0.0
  else float_of_int (count r) /. Time_ns.to_sec_f duration

let pp_summary fmt r =
  if count r = 0 then Format.fprintf fmt "%s: no samples" r.name
  else
    Format.fprintf fmt "%s: n=%d mean=%s p50=%s p99=%s max=%s" r.name (count r)
      (Time_ns.to_string (int_of_float (mean r)))
      (Time_ns.to_string (percentile r 50.0))
      (Time_ns.to_string (percentile r 99.0))
      (Time_ns.to_string (max_value r))

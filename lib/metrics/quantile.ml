(* Sliding-window quantile sketch: a ring of per-slice log-bucketed
   histograms plus an incrementally maintained aggregate. Buckets use
   the shared [Taichi_engine.Bucket_layout] (the exact layout the engine
   Histogram uses — one implementation, so they cannot drift) but with a
   fixed capacity and clamping instead of growth, so observe/quantile
   never allocate. *)

open Taichi_engine

let bucket_cap = 1024
let index_of v = Stdlib.min (Bucket_layout.index_of v) (bucket_cap - 1)
let upper_of = Bucket_layout.upper_of

type t = {
  slice : Time_ns.t;
  slices : int;
  ring : int array array; (* slices x bucket_cap *)
  slice_n : int array; (* samples per slice *)
  agg : int array; (* column sums of live slices *)
  mutable n : int; (* samples in window *)
  mutable head : int; (* absolute slice number of ring head, -1 = empty *)
}

let create ?(slices = 8) ~slice () =
  if slice <= 0 then invalid_arg "Quantile.create: slice <= 0";
  if slices <= 0 then invalid_arg "Quantile.create: slices <= 0";
  {
    slice;
    slices;
    ring = Array.init slices (fun _ -> Array.make bucket_cap 0);
    slice_n = Array.make slices 0;
    agg = Array.make bucket_cap 0;
    n = 0;
    head = -1;
  }

let window t = t.slices * t.slice

let evict t slot =
  let row = t.ring.(slot) in
  if t.slice_n.(slot) > 0 then begin
    for i = 0 to bucket_cap - 1 do
      if row.(i) > 0 then begin
        t.agg.(i) <- t.agg.(i) - row.(i);
        row.(i) <- 0
      end
    done;
    t.n <- t.n - t.slice_n.(slot);
    t.slice_n.(slot) <- 0
  end

(* Advance the ring so that absolute slice [cur] is the head, evicting
   every slice that fell out of the window on the way. *)
let advance t ~now =
  let cur = now / t.slice in
  if t.head < 0 then t.head <- cur
  else if cur > t.head then begin
    let steps = cur - t.head in
    if steps >= t.slices then
      for slot = 0 to t.slices - 1 do
        evict t slot
      done
    else
      for s = 1 to steps do
        evict t ((t.head + s) mod t.slices)
      done;
    t.head <- cur
  end

let observe t ~now v =
  advance t ~now;
  let v = Stdlib.max 0 v in
  let i = index_of v in
  let slot = t.head mod t.slices in
  t.ring.(slot).(i) <- t.ring.(slot).(i) + 1;
  t.slice_n.(slot) <- t.slice_n.(slot) + 1;
  t.agg.(i) <- t.agg.(i) + 1;
  t.n <- t.n + 1

let count t ~now =
  advance t ~now;
  t.n

let quantile t ~now q =
  if q < 0.0 || q > 100.0 then invalid_arg "Quantile.quantile: q out of range";
  advance t ~now;
  if t.n = 0 then None
  else begin
    let target =
      Stdlib.max 1 (int_of_float (ceil (q /. 100.0 *. float_of_int t.n)))
    in
    let acc = ref 0 and i = ref 0 and result = ref 0 in
    while !acc < target && !i < bucket_cap do
      if t.agg.(!i) > 0 then begin
        acc := !acc + t.agg.(!i);
        result := upper_of !i
      end;
      incr i
    done;
    Some !result
  end

(** JSON export of traces, timelines and counters.

    One export file holds a list of runs (an experiment may build several
    systems — one per policy); each run carries its counters, the folded
    per-core occupancy timeline and the raw event log. The writer is
    deterministic: same seed, same trace, byte-identical output, so exports
    diff cleanly across PRs. Schema documented in DESIGN.md
    §Observability. *)

open Taichi_engine

val schema : string
(** Schema identifier written into every export ("taichi-trace-v1"). *)

type run = {
  experiment : string;
  policy : string;
  seed : int;
  duration : Time_ns.t;
  cores : int;
  tenants : int list;
      (** registered tenant ids under an explicit multi-tenant table;
          empty — and omitted from the JSON — on single-tenant runs *)
  counters : (string * int) list;
  timeline : Timeline.t;
  events : Trace.record list;
}

val make_run :
  ?tenants:int list ->
  experiment:string ->
  policy:string ->
  seed:int ->
  duration:Time_ns.t ->
  cores:int ->
  counters:(string * int) list ->
  Trace.t ->
  run
(** Snapshot a machine trace into a run record: folds the timeline, sorts
    the counters and captures the retained events. [tenants] (default
    empty) lists the registered tenant ids of a multi-tenant run. *)

val run_to_json : run -> Json.t
val to_json : run list -> Json.t
val to_string : run list -> string

val write_file : string -> run list -> unit
(** [write_file path runs] writes the export plus a trailing newline. *)

val validate_json : Json.t -> (unit, string) result
(** Structural and semantic check used by [trace_lint] and the tests:
    schema marker present, timeline rows match the core count, every
    core's [dp + vcpu + switch + idle] equals both its [total_ns] and the
    run's [duration_ns], [core_state.illegal] is zero, [recovery.*] and
    [overload.*] counters are non-negative, event timestamps never run
    backwards, and overload ladder transitions are well-formed: sequence
    numbers increment from 1, each transition departs the rung the
    previous one entered (starting from [normal]), rungs move one at a
    time, and every dwell meets the advertised minimum — checked per
    lane, with [tenant=<id>]-prefixed transitions forming one chain per
    tenant. Per-tenant counter sections ([tenant.<id>.<suffix>]) must be
    non-negative, name a tenant id from the run's [tenants] field, and
    sum — per suffix, across tenants — to exactly the global [<suffix>]
    counter. *)

val validate_string : string -> (unit, string) result

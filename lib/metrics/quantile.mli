(** Online sliding-window quantile sketch.

    The overload governor needs "p99 data-plane latency over the last few
    milliseconds" as a *live* signal, sampled every few hundred
    microseconds — [Recorder]'s histogram accumulates since the epoch and
    cannot forget. This sketch keeps a ring of per-time-slice log-bucketed
    histograms (HdrHistogram-style buckets, 32 sub-buckets per power of
    two) over a fixed window: observations land in the slice covering
    simulated [now]; slices older than the window are evicted lazily on
    the next [observe]/[quantile] call.

    Quantiles are read from the aggregate bucket counts and reported as
    the bucket's upper bound, so the estimate errs high (conservative for
    a latency guardrail) by at most one sub-bucket width (~3%).

    Everything is integer arithmetic driven by the simulated clock, so a
    sketch fed the same samples at the same times answers bit-identically
    — the determinism contract every governor decision inherits. *)

open Taichi_engine

type t

val create : ?slices:int -> slice:Time_ns.t -> unit -> t
(** [create ~slice ()] is an empty sketch whose window is
    [slices * slice] (default 8 slices). Raises [Invalid_argument] when
    [slice <= 0] or [slices <= 0]. *)

val window : t -> Time_ns.t
(** Total window covered by the ring. *)

val observe : t -> now:Time_ns.t -> Time_ns.t -> unit
(** [observe t ~now v] records sample [v] (clamped at 0) in the slice
    covering [now], first expiring slices that fell out of the window. *)

val count : t -> now:Time_ns.t -> int
(** Samples currently inside the window. *)

val quantile : t -> now:Time_ns.t -> float -> Time_ns.t option
(** [quantile t ~now q] is the [q]-th percentile (0..100) of the samples
    in the window ending at [now], or [None] when the window holds no
    samples. Raises [Invalid_argument] for [q] outside [0, 100]. *)

(** Service-level objective definitions and compliance checks.

    SLOs mirror the paper's two families: latency-percentile objectives for
    data-plane services and completion-time objectives for control-plane
    tasks (e.g. VM startup). *)

open Taichi_engine

type objective =
  | Latency_percentile of { percentile : float; bound : Time_ns.t }
      (** e.g. p99 RTT below 100 µs. *)
  | Mean_latency of Time_ns.t
  | Max_latency of Time_ns.t
  | Min_throughput of float  (** operations per second. *)

type t = { name : string; objective : objective }

type verdict = { slo : t; satisfied : bool; measured : float; target : float }

val latency_p : string -> percentile:float -> bound:Time_ns.t -> t
val mean_latency : string -> Time_ns.t -> t
val max_latency : string -> Time_ns.t -> t
val min_throughput : string -> per_sec:float -> t

val check : t -> Recorder.t -> duration:Time_ns.t -> verdict
(** [check slo recorder ~duration] evaluates the objective against the
    recorder's samples. An SLO over an empty recorder is unsatisfied —
    including [Min_throughput], which measures a definite 0.0 (never
    NaN) for an empty recorder or a non-positive duration. *)

val check_hist : t -> Histogram.t -> duration:Time_ns.t -> verdict
(** As {!check}, over a bare histogram — e.g. the merged per-service DP
    latency from [System.dp_latency_hist]. *)

val check_all : t list -> Recorder.t -> duration:Time_ns.t -> verdict list

val pp_verdict : Format.formatter -> verdict -> unit

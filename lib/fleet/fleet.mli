(** A rack of simulated NICs with a deterministic cross-NIC message
    exchange at epoch boundaries.

    The fleet is generic over the per-NIC universe ['nic] (the
    System-backed instantiation lives in taichi_platform): this module
    owns membership (alive / browned / crashed), the fabric partition,
    per-NIC outboxes and the epoch loop. Sends on NIC [i] during epoch
    [e] are delivered on NIC [j] at the start of epoch [e+1], in
    canonical (src-nic, per-src seq) order — and because each NIC's epoch
    work touches only NIC-local state while the exchange itself runs
    sequentially between epochs, stdout, traces and counters are
    byte-identical at any [jobs] count (DESIGN.md §15).

    Every exchange and membership event increments a [fleet.*] counter in
    the affected NIC's registry and reports through the [emit] callback
    (the harness points it at each NIC's trace, category
    {!Taichi_engine.Trace.Cat.fleet}). *)

open Taichi_engine

type msg = {
  src : int;
  dst : int;
  seq : int;  (** per-src monotonically increasing send sequence *)
  sent_epoch : int;
  payload : string;
}

type state = Alive | Browned | Crashed

val state_label : state -> string

type 'nic t

val create :
  nics:'nic array ->
  counters:Counters.t array ->
  ?emit:(nic:int -> string -> unit) ->
  unit ->
  'nic t
(** [create ~nics ~counters ()] is a fleet of [Array.length nics] NICs,
    all alive, with one counter registry per NIC (the harness passes each
    Machine's registry so [fleet.*] receipts land in the per-NIC trace
    exports). [emit ~nic msg] is called for every fleet event on that
    NIC. *)

val size : 'nic t -> int
val nic : 'nic t -> int -> 'nic
val counters : 'nic t -> Counters.t array

val epoch : 'nic t -> int
(** The current epoch: the one being executed during {!run}'s callbacks,
    [epochs] after {!run} returns. *)

val state : 'nic t -> int -> state
val alive : 'nic t -> int -> bool
(** [alive t i] is [true] unless NIC [i] has crashed ([Browned] counts as
    alive — slow, not dead). *)

val survivors : 'nic t -> int list
(** Ascending ids of the non-crashed NICs. *)

(** {2 Membership and fabric events}

    Controller-phase only: call these from {!run}'s [control] callback
    (or before {!run}); calling them from [deliver]/[advance] would race
    other NIC domains. *)

val crash : 'nic t -> int -> unit
(** Kill NIC [i] at the end of the current epoch: its epoch-[e] outbox is
    lost ([fleet.exchange.lost_crash]), it executes no further epochs,
    and messages addressed to it drop ([fleet.exchange.lost_down]). *)

val brownout : 'nic t -> int -> unit
(** Mark NIC [i] browned (slow). The fleet still runs and routes it; the
    harness reads {!state} to degrade the NIC's own epoch work. *)

val recover : 'nic t -> int -> unit
(** End a brownout. No effect on crashed NICs — a crash is permanent. *)

val partition : 'nic t -> groups:int array -> unit
(** Split the fabric: [groups.(i)] is NIC [i]'s side. Messages whose
    endpoints differ drop at the exchange
    ([fleet.exchange.lost_partition]) until {!heal}. *)

val heal : 'nic t -> unit
val partitioned : 'nic t -> bool

(** {2 Exchange} *)

val send : 'nic t -> src:int -> dst:int -> string -> unit
(** Queue [payload] from NIC [src] for delivery to NIC [dst] at the start
    of the next epoch. Safe from [src]'s own [deliver]/[advance] (the
    outbox is NIC-local) and from [control]. Sends from a crashed NIC are
    ignored. *)

val run :
  ?jobs:int ->
  ?control:(epoch:int -> unit) ->
  'nic t ->
  epochs:int ->
  deliver:(nic:int -> msg -> unit) ->
  advance:(nic:int -> epoch:int -> unit) ->
  unit
(** [run t ~epochs ~deliver ~advance] executes the epoch loop. Each
    epoch: (1) every live NIC — on up to [jobs] worker domains — drains
    its inbox in (src, seq) order through [deliver], then runs [advance]
    for the epoch; (2) the sequential [control] hook fires (fault events,
    failover); (3) the exchange routes every outbox into the next epoch's
    inboxes. A callback exception is re-raised after the phase completes,
    first failure in NIC order, so [jobs] never changes which error
    surfaces. *)

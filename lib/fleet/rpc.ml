(* Cross-NIC RPC over the epoch exchange: per-request timeout measured in
   epochs, capped-exponential retry, and loss accounting under
   [fleet.rpc.*] in the requester / server NIC's registry.

   An endpoint is strictly NIC-local: requests and retries are sent from
   its own NIC, inbound frames are handed to it by that NIC's deliver
   callback, and the timeout scan runs from that NIC's epoch hook — so an
   endpoint never races another NIC's domain and the retry schedule is a
   pure function of epoch numbers.

   Wire framing rides the exchange's string payload:
     "q|<id>|<tag>|<body>"   request
     "p|<id>|<tag>|<body>"   response
   Ids are per-endpoint, so (requester nic, id) is globally unique. *)

open Taichi_engine

type pending = {
  id : int;
  dst : int;
  tag : string;
  body : string;
  mutable attempts : int;  (** sends so far (first send counts) *)
  mutable deadline : int;  (** epoch at which the wait expires *)
  on_reply : string -> unit;
  on_abandon : unit -> unit;
}

type 'nic t = {
  fleet : 'nic Fleet.t;
  nic : int;
  timeout : int;
  retry_base : int;
  retry_cap : int;
  max_attempts : int;
  handlers : (string, src:int -> string -> string option) Hashtbl.t;
  mutable pending : pending list;  (** ascending id order *)
  mutable next_id : int;
}

let create ?(timeout = 2) ?(retry_base = 1) ?(retry_cap = 8)
    ?(max_attempts = 4) fleet ~nic =
  if timeout < 1 then invalid_arg "Rpc.create: timeout must be >= 1";
  if max_attempts < 1 then invalid_arg "Rpc.create: max_attempts must be >= 1";
  {
    fleet;
    nic;
    timeout;
    retry_base;
    retry_cap;
    max_attempts;
    handlers = Hashtbl.create 8;
    pending = [];
    next_id = 0;
  }

let count t name = Counters.incr (Fleet.counters t.fleet).(t.nic) name

let register t ~tag handler =
  if Hashtbl.mem t.handlers tag then
    invalid_arg (Printf.sprintf "Rpc.register: duplicate tag %S" tag);
  Hashtbl.replace t.handlers tag handler

let frame kind id tag body = Printf.sprintf "%s|%d|%s|%s" kind id tag body

let parse payload =
  match String.split_on_char '|' payload with
  | kind :: id :: tag :: rest when kind = "q" || kind = "p" -> (
      match int_of_string_opt id with
      | Some id -> Some (kind, id, tag, String.concat "|" rest)
      | None -> None)
  | _ -> None

let transmit t p =
  Fleet.send t.fleet ~src:t.nic ~dst:p.dst (frame "q" p.id p.tag p.body)

(* Capped-exponential wait before the k-th retry (k = attempts already
   made): timeout + min(cap, base * 2^(k-1)) epochs from the resend. *)
let backoff t k =
  t.timeout + min t.retry_cap (t.retry_base * (1 lsl min (k - 1) 20))

let call t ~dst ~tag body ~on_reply ~on_abandon =
  let id = t.next_id in
  t.next_id <- id + 1;
  let p =
    {
      id;
      dst;
      tag;
      body;
      attempts = 1;
      deadline = Fleet.epoch t.fleet + t.timeout;
      on_reply;
      on_abandon;
    }
  in
  t.pending <- t.pending @ [ p ];
  count t "fleet.rpc.sent";
  transmit t p

(* Hand an inbound exchange message to the endpoint. Returns [true] when
   the payload was an RPC frame (consumed), [false] otherwise so the
   caller can route non-RPC payloads elsewhere. *)
let deliver t (m : Fleet.msg) =
  match parse m.Fleet.payload with
  | None -> false
  | Some ("q", id, tag, body) ->
      (match Hashtbl.find_opt t.handlers tag with
      | None -> count t "fleet.rpc.unhandled"
      | Some handler -> (
          count t "fleet.rpc.served";
          match handler ~src:m.Fleet.src body with
          | None -> ()
          | Some reply ->
              Fleet.send t.fleet ~src:t.nic ~dst:m.Fleet.src
                (frame "p" id tag reply)));
      true
  | Some ("p", id, _tag, body) ->
      (match List.find_opt (fun p -> p.id = id) t.pending with
      | None ->
          (* Late duplicate: the request was already completed or
             abandoned. Count it, drop it. *)
          count t "fleet.rpc.stale_replies"
      | Some p ->
          t.pending <- List.filter (fun q -> q.id <> id) t.pending;
          count t "fleet.rpc.completed";
          p.on_reply body);
      true
  | Some _ -> false

(* Epoch-start timeout scan, run from the owning NIC's epoch hook after
   deliveries: every pending request whose deadline has passed either
   retries (with the grown deadline) or abandons. Scanning in ascending
   id order keeps receipt order deterministic. *)
let tick t ~epoch =
  let expired, live =
    List.partition (fun p -> p.deadline <= epoch) t.pending
  in
  t.pending <- live;
  List.iter
    (fun p ->
      count t "fleet.rpc.timeouts";
      if p.attempts >= t.max_attempts then begin
        count t "fleet.rpc.abandoned";
        p.on_abandon ()
      end
      else begin
        count t "fleet.rpc.retries";
        p.deadline <- epoch + backoff t p.attempts;
        p.attempts <- p.attempts + 1;
        t.pending <- t.pending @ [ p ];
        transmit t p
      end)
    expired

let outstanding t = List.length t.pending

(* A rack of simulated NICs with a deterministic cross-NIC message
   exchange at epoch boundaries.

   The fleet is generic over the per-NIC state ('nic): the engine here
   owns only membership (alive / browned / crashed), the fabric partition,
   the per-NIC outboxes and the epoch loop; everything that happens
   *inside* a NIC (its Sim, its System, its workload) is driven through
   the three callbacks of {!run}. This keeps the library free of any
   dependency above taichi_engine — the System-backed instantiation lives
   in taichi_platform.

   Determinism contract (the fleet half of DESIGN.md §11): a send on NIC
   i during epoch e is delivered on NIC j at the start of epoch e+1, and
   the inbox of every NIC is ordered by (src-nic, per-src sequence
   number). Because each NIC's epoch work touches only its own state and
   its own outbox, the per-epoch NIC phase can run on any number of
   worker domains — the exchange itself runs sequentially between epochs
   and routes outboxes in NIC order — so stdout, traces and counters are
   byte-identical at any [jobs] count. *)

open Taichi_engine

type msg = {
  src : int;
  dst : int;
  seq : int;  (** per-src monotonically increasing send sequence *)
  sent_epoch : int;
  payload : string;
}

type state = Alive | Browned | Crashed

let state_label = function
  | Alive -> "alive"
  | Browned -> "browned"
  | Crashed -> "crashed"

type 'nic t = {
  nics : 'nic array;
  counters : Counters.t array;
  emit : nic:int -> string -> unit;
  states : state array;
  (* Outboxes accumulate in reverse send order; [exchange] reverses. *)
  outboxes : msg list array;
  seqs : int array;
  inboxes : msg list array;
  (* Fabric partition: group id per NIC, or None when healed. Messages
     crossing a group boundary are dropped (and counted) at the exchange. *)
  mutable groups : int array option;
  mutable epoch : int;
}

let create ~nics ~counters ?(emit = fun ~nic:_ _ -> ()) () =
  let n = Array.length nics in
  if n = 0 then invalid_arg "Fleet.create: empty fleet";
  if Array.length counters <> n then
    invalid_arg "Fleet.create: one counter registry per NIC required";
  {
    nics;
    counters;
    emit;
    states = Array.make n Alive;
    outboxes = Array.make n [];
    seqs = Array.make n 0;
    inboxes = Array.make n [];
    groups = None;
    epoch = 0;
  }

let size t = Array.length t.nics
let nic t i = t.nics.(i)
let counters t = t.counters
let epoch t = t.epoch
let state t i = t.states.(i)
let alive t i = t.states.(i) <> Crashed

let survivors t =
  List.filter (alive t) (List.init (size t) (fun i -> i))

let count t i name = Counters.incr t.counters.(i) name

(* --- membership / fabric events (controller phase only) ------------------ *)

let crash t i =
  if alive t i then begin
    t.states.(i) <- Crashed;
    count t i "fleet.nic.crashes";
    t.emit ~nic:i (Printf.sprintf "nic crash nic=%d epoch=%d" i t.epoch)
  end

let brownout t i =
  if t.states.(i) = Alive then begin
    t.states.(i) <- Browned;
    count t i "fleet.nic.brownouts";
    t.emit ~nic:i (Printf.sprintf "nic brownout nic=%d epoch=%d" i t.epoch)
  end

let recover t i =
  if t.states.(i) = Browned then begin
    t.states.(i) <- Alive;
    count t i "fleet.nic.recoveries";
    t.emit ~nic:i (Printf.sprintf "nic recover nic=%d epoch=%d" i t.epoch)
  end

let partition t ~groups =
  if Array.length groups <> size t then
    invalid_arg "Fleet.partition: one group id per NIC required";
  t.groups <- Some (Array.copy groups);
  for i = 0 to size t - 1 do
    count t i "fleet.fabric.partitions"
  done;
  t.emit ~nic:0 (Printf.sprintf "fabric partition epoch=%d" t.epoch)

let heal t =
  if t.groups <> None then begin
    t.groups <- None;
    t.emit ~nic:0 (Printf.sprintf "fabric heal epoch=%d" t.epoch)
  end

let partitioned t = t.groups <> None

(* --- exchange ------------------------------------------------------------ *)

let send t ~src ~dst payload =
  if dst < 0 || dst >= size t then invalid_arg "Fleet.send: bad dst";
  if alive t src then begin
    let seq = t.seqs.(src) in
    t.seqs.(src) <- seq + 1;
    t.outboxes.(src) <-
      { src; dst; seq; sent_epoch = t.epoch; payload } :: t.outboxes.(src);
    count t src "fleet.exchange.sent";
    t.emit ~nic:src
      (Printf.sprintf "send dst=%d seq=%d epoch=%d" dst seq t.epoch)
  end

(* Route every epoch-e outbox into the epoch-e+1 inboxes. Outboxes are
   visited in ascending src order and each is already seq-ordered once
   reversed, so appending preserves the canonical (src, seq) inbox order
   without a sort. Loss is decided here, src registry charged:
   - a crashed sender's whole outbox is dropped (the NIC died with it),
   - a message to a crashed NIC is dropped,
   - a message crossing a partition boundary is dropped. *)
let exchange t =
  let n = size t in
  let inboxes = Array.make n [] in
  for src = 0 to n - 1 do
    let msgs = List.rev t.outboxes.(src) in
    t.outboxes.(src) <- [];
    if t.states.(src) = Crashed then
      List.iter (fun _ -> count t src "fleet.exchange.lost_crash") msgs
    else
      List.iter
        (fun m ->
          if t.states.(m.dst) = Crashed then
            count t src "fleet.exchange.lost_down"
          else
            let crossing =
              match t.groups with
              | None -> false
              | Some g -> g.(m.src) <> g.(m.dst)
            in
            if crossing then count t src "fleet.exchange.lost_partition"
            else inboxes.(m.dst) <- m :: inboxes.(m.dst))
        msgs
  done;
  for dst = 0 to n - 1 do
    t.inboxes.(dst) <- List.rev inboxes.(dst)
  done

(* --- epoch loop ---------------------------------------------------------- *)

let run ?(jobs = 1) ?(control = fun ~epoch:_ -> ()) t ~epochs ~deliver
    ~advance =
  let n = size t in
  (* One NIC's epoch: drain its inbox (canonical order), then advance its
     universe. Touches only NIC-local state, so NICs may run on worker
     domains in any interleaving. *)
  let nic_epoch i =
    if alive t i then begin
      let inbox = t.inboxes.(i) in
      t.inboxes.(i) <- [];
      List.iter
        (fun m ->
          count t i "fleet.exchange.delivered";
          t.emit ~nic:i
            (Printf.sprintf "recv src=%d seq=%d epoch=%d sent=%d" m.src
               m.seq t.epoch m.sent_epoch);
          deliver ~nic:i m)
        inbox;
      advance ~nic:i ~epoch:t.epoch
    end
  in
  let parallel_phase () =
    if jobs <= 1 || n <= 1 then
      for i = 0 to n - 1 do
        nic_epoch i
      done
    else begin
      let next = Atomic.make 0 in
      let failure = Atomic.make None in
      let worker () =
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            (try nic_epoch i
             with e ->
               (* Keep the first failure by NIC order so jobs never
                  changes which exception the caller sees. *)
               let bt = Printexc.get_raw_backtrace () in
               let rec record () =
                 let cur = Atomic.get failure in
                 let keep =
                   match cur with None -> true | Some (j, _, _) -> i < j
                 in
                 if keep && not (Atomic.compare_and_set failure cur
                                   (Some (i, e, bt)))
                 then record ()
               in
               record ());
            loop ()
          end
        in
        loop ()
      in
      let domains =
        List.init (min jobs n) (fun _ -> Domain.spawn worker)
      in
      List.iter Domain.join domains;
      match Atomic.get failure with
      | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end
  in
  for e = 0 to epochs - 1 do
    t.epoch <- e;
    parallel_phase ();
    control ~epoch:e;
    exchange t
  done;
  t.epoch <- epochs

(** Cross-NIC RPC over the {!Fleet} epoch exchange.

    Per-request timeout measured in epochs, capped-exponential retry
    ([timeout + min(cap, base * 2^(k-1))] epochs before the k-th retry,
    at most [max_attempts] sends), and loss accounting under
    [fleet.rpc.*] in the owning NIC's counter registry:
    [sent] / [completed] / [timeouts] / [retries] / [abandoned] on the
    requester, [served] / [unhandled] / [stale_replies] on the server.

    An endpoint is strictly NIC-local: wire it into that NIC's deliver
    callback ({!deliver}) and epoch hook ({!tick}); it never touches
    another NIC's state, so it is safe under fleet worker domains. *)

type 'nic t

val create :
  ?timeout:int ->
  ?retry_base:int ->
  ?retry_cap:int ->
  ?max_attempts:int ->
  'nic Fleet.t ->
  nic:int ->
  'nic t
(** Endpoint for NIC [nic]. [timeout] (default 2) epochs per wait,
    retries backed off by [min(retry_cap, retry_base * 2^(k-1))] extra
    epochs, abandoning after [max_attempts] (default 4) total sends. *)

val register : 'nic t -> tag:string -> (src:int -> string -> string option) -> unit
(** [register t ~tag handler] serves requests tagged [tag]; the handler's
    [Some reply] is sent back next epoch, [None] swallows the request
    (server-side drop — the requester times out). *)

val call :
  'nic t ->
  dst:int ->
  tag:string ->
  string ->
  on_reply:(string -> unit) ->
  on_abandon:(unit -> unit) ->
  unit
(** Send a request to [dst]; exactly one of the callbacks eventually
    fires (from {!deliver} or {!tick} on the owning NIC). *)

val deliver : 'nic t -> Fleet.msg -> bool
(** Route an inbound exchange message: [true] when consumed as an RPC
    frame, [false] when the payload is not RPC-framed. *)

val tick : 'nic t -> epoch:int -> unit
(** Epoch-start timeout scan (call after the epoch's deliveries): expired
    requests retry with the grown deadline or abandon. *)

val outstanding : 'nic t -> int
(** Requests still awaiting a reply or a verdict. *)

(** Kernel tasks and the operation DSL they execute.

    A task is a generator: each time the kernel is ready to run it, it asks
    the task's [step] function for the next operation — a stretch of
    computation, a lock acquisition, a sleep, a wait-queue interaction.
    This models arbitrary control-plane programs (device management,
    monitors, orchestration agents) without threading through the
    simulator: the closure carries the task's control state.

    Mutual recursion note: spinlocks and wait queues appear inside {!op}
    and hold tasks as waiters, so the three types are defined together
    here; their {e behaviour} (contention, wakeups, non-preemptible
    sections) is implemented by {!Kernel}. *)

open Taichi_engine

type prio = Rt | Normal
(** Two scheduling classes: [Rt] preempts [Normal]; round-robin within a
    class. *)

type exec_mode =
  | User  (** preemptible user-space computation *)
  | Kernel  (** preemptible kernel-space computation *)
  | Kernel_nonpreemptible
      (** a non-preemptible kernel routine — the ms-scale sections of §3.2
          that block the OS scheduler until they finish *)

type op =
  | Run of { duration : Time_ns.t; mode : exec_mode }
  | Acquire of spinlock
      (** spin (non-preemptibly) until the lock is granted; holding any
          lock makes the task non-preemptible *)
  | Release of spinlock
  | Sleep_for of Time_ns.t  (** leave the CPU; wake after the delay *)
  | Block of waitq  (** semaphore P: consume a credit or sleep *)
  | Signal of waitq  (** semaphore V: wake one sleeper or bank a credit *)
  | Exit

and spinlock = {
  lk_name : string;
  mutable owner : t option;
  waiters : t Queue.t;
  mutable acquisitions : int;
  mutable contentions : int;
}

and waitq = {
  wq_name : string;
  mutable credits : int;
  mutable sleepers : t list;
}

and state =
  | New
  | Runnable
  | Running
  | Spinning of spinlock
  | Blocked of waitq
  | Sleeping
  | Dead

and t = {
  tid : int;
  tname : string;
  prio : prio;
  mutable tenant : int;  (** owning tenant id; 0 = the implicit tenant *)
  mutable affinity : int list;  (** allowed kernel CPU ids; [] = any *)
  step : t -> op;
  mutable state : state;
  mutable cpu : int option;  (** CPU currently running or queuing the task *)
  mutable locks_held : int;
  mutable np_depth : int;  (** non-preemptible nesting from [Run] sections *)
  mutable spawned_at : Time_ns.t;
  mutable finished_at : Time_ns.t option;
  mutable cpu_time : Time_ns.t;  (** work actually executed *)
  mutable spin_time : Time_ns.t;  (** time burnt busy-waiting *)
  mutable wakeups : int;
  mutable kernel_entries : int;  (** kernel-mode operations issued *)
  mutable lock_acquisitions : int;  (** locks taken (audit telemetry) *)
  mutable cancelled : bool;  (** exit at the next preemptible boundary *)
}

val create :
  ?prio:prio ->
  ?tenant:int ->
  ?affinity:int list ->
  name:string ->
  step:(t -> op) ->
  unit ->
  t
(** [create ~name ~step ()] is a fresh task; ids are process-unique. *)

val spinlock : string -> spinlock
val waitq : string -> waitq

val nonpreemptible : t -> bool
(** [nonpreemptible t] is [true] when the task holds a lock, is inside a
    non-preemptible kernel section, or is spinning on a lock. *)

val is_finished : t -> bool

val cancel : t -> unit
(** Mark the task for cancellation: the kernel retires it with a normal
    [Exit] at the next point it would fetch an operation while
    preemptible. A task inside a critical section (lock held,
    non-preemptible run) finishes that section first, so invariants the
    section protects are never torn. The tenant drain path uses this to
    force-quiesce a departing tenant's stragglers. *)

val cancelled : t -> bool

val turnaround : t -> Time_ns.t option
(** Completion time minus spawn time, for finished tasks. *)

val pp : Format.formatter -> t -> unit

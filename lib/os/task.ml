open Taichi_engine

type prio = Rt | Normal

type exec_mode = User | Kernel | Kernel_nonpreemptible

type op =
  | Run of { duration : Time_ns.t; mode : exec_mode }
  | Acquire of spinlock
  | Release of spinlock
  | Sleep_for of Time_ns.t
  | Block of waitq
  | Signal of waitq
  | Exit

and spinlock = {
  lk_name : string;
  mutable owner : t option;
  waiters : t Queue.t;
  mutable acquisitions : int;
  mutable contentions : int;
}

and waitq = { wq_name : string; mutable credits : int; mutable sleepers : t list }

and state =
  | New
  | Runnable
  | Running
  | Spinning of spinlock
  | Blocked of waitq
  | Sleeping
  | Dead

and t = {
  tid : int;
  tname : string;
  prio : prio;
  mutable tenant : int;
  mutable affinity : int list;
  step : t -> op;
  mutable state : state;
  mutable cpu : int option;
  mutable locks_held : int;
  mutable np_depth : int;
  mutable spawned_at : Time_ns.t;
  mutable finished_at : Time_ns.t option;
  mutable cpu_time : Time_ns.t;
  mutable spin_time : Time_ns.t;
  mutable wakeups : int;
  mutable kernel_entries : int;
  mutable lock_acquisitions : int;
  mutable cancelled : bool;
}

(* Tids only need to be unique (they key per-kernel hashtables and show up
   in [pp]); an atomic counter keeps allocation race-free when several
   domains build systems concurrently. Nothing may depend on tid *values*:
   under a parallel sweep the interleaving is nondeterministic. *)
let next_tid = Atomic.make 0

let create ?(prio = Normal) ?(tenant = 0) ?(affinity = []) ~name ~step () =
  {
    tid = Atomic.fetch_and_add next_tid 1 + 1;
    tname = name;
    prio;
    tenant;
    affinity;
    step;
    state = New;
    cpu = None;
    locks_held = 0;
    np_depth = 0;
    spawned_at = 0;
    finished_at = None;
    cpu_time = 0;
    spin_time = 0;
    wakeups = 0;
    kernel_entries = 0;
    lock_acquisitions = 0;
    cancelled = false;
  }

let spinlock lk_name =
  { lk_name; owner = None; waiters = Queue.create (); acquisitions = 0; contentions = 0 }

let waitq wq_name = { wq_name; credits = 0; sleepers = [] }

let nonpreemptible t =
  t.locks_held > 0 || t.np_depth > 0
  || match t.state with Spinning _ -> true | _ -> false

let is_finished t = t.state = Dead
let cancel t = t.cancelled <- true
let cancelled t = t.cancelled

let turnaround t =
  match t.finished_at with Some f -> Some (f - t.spawned_at) | None -> None

let pp fmt t =
  let state_name =
    match t.state with
    | New -> "new"
    | Runnable -> "runnable"
    | Running -> "running"
    | Spinning l -> "spinning:" ^ l.lk_name
    | Blocked w -> "blocked:" ^ w.wq_name
    | Sleeping -> "sleeping"
    | Dead -> "dead"
  in
  Format.fprintf fmt "task<%d:%s %s cpu=%s>" t.tid t.tname state_name
    (match t.cpu with Some c -> string_of_int c | None -> "-")

open Taichi_engine
open Taichi_hw

type t = {
  sim : Sim.t;
  machine : Machine.t;
  dispatch_cost : Time_ns.t;
  handlers : (int * int, unit -> unit) Hashtbl.t;
  pending : (int * int, unit) Hashtbl.t;
  h_raised : Counters.handle;
  mutable raised : int;
  mutable handled : int;
  mutable coalesced : int;
}

let vector_taichi = 42

let create ?(dispatch_cost = Time_ns.ns 200) machine =
  {
    sim = Machine.sim machine;
    machine;
    dispatch_cost;
    handlers = Hashtbl.create 32;
    pending = Hashtbl.create 32;
    h_raised = Counters.handle (Machine.counters machine) "softirq.raised";
    raised = 0;
    handled = 0;
    coalesced = 0;
  }

let register t ~cpu ~vector f = Hashtbl.replace t.handlers (cpu, vector) f

let raise_softirq t ~cpu ~vector =
  t.raised <- t.raised + 1;
  Counters.incr_h (Machine.counters t.machine) t.h_raised;
  (let core = if cpu < Machine.physical_cores t.machine then cpu else Trace.no_core in
   Trace.emitf (Machine.trace t.machine) ~time:(Sim.now t.sim) ~core
     ~category:Trace.Cat.softirq "raise cpu=%d vec=%d" cpu vector);
  let key = (cpu, vector) in
  if Hashtbl.mem t.pending key then t.coalesced <- t.coalesced + 1
  else begin
    Hashtbl.replace t.pending key ();
    ignore
      (Sim.after t.sim t.dispatch_cost (fun () ->
           Hashtbl.remove t.pending key;
           if cpu < Machine.physical_cores t.machine then
             Accounting.charge (Machine.accounting t.machine) ~core:cpu
               Accounting.Os t.dispatch_cost;
           match Hashtbl.find_opt t.handlers key with
           | Some f ->
               t.handled <- t.handled + 1;
               f ()
           | None -> ()))
  end

let pending t ~cpu ~vector = Hashtbl.mem t.pending (cpu, vector)
let raised_count t = t.raised
let handled_count t = t.handled
let coalesced_count t = t.coalesced

open Taichi_engine
open Taichi_hw

type config = {
  timeslice : Time_ns.t;
  context_switch_cost : Time_ns.t;
  wake_latency : Time_ns.t;
  boot_delay : Time_ns.t;
  resched_vector : Lapic.vector;
  boot_vector : Lapic.vector;
}

let default_config =
  {
    timeslice = Time_ns.ms 3;
    context_switch_cost = Time_ns.us 2;
    wake_latency = Time_ns.us 1;
    boot_delay = Time_ns.ms 10;
    resched_vector = 0xFD;
    boot_vector = 0xF0;
  }

(* Idle CPUs re-attempt work stealing at this period, modeling the
   scheduler's idle load balancing. *)
let idle_rebalance_period = Time_ns.us 50

type cpu = {
  cid : int;
  kind : [ `Physical | `Virtual ];
  mutable online : bool;
  mutable backed : bool;
  mutable available : bool;
  mutable backing_core : int option;
  mutable speed_tax : float;
  rq_rt : Task.t Queue.t;
  rq_normal : Task.t Queue.t;
  mutable cur : Task.t option;
  (* In-flight Run bookkeeping; the remaining work itself lives on the task
     ([pending_work]) so preempted tasks can migrate and resume. *)
  mutable run_handle : Sim.handle option;
  mutable run_started : Time_ns.t;
  mutable spin_since : Time_ns.t option;
  mutable slice_timer : Sim.handle option;
  mutable need_resched : bool;
  mutable reclaimers : (unit -> unit) list;
  mutable reclaim_requested_at : Time_ns.t;
  mutable on_online : (unit -> unit) option;
  mutable idle_retry : Sim.handle option;
  lapic : Lapic.t;
}


type stats = {
  context_switches : int;
  preemptions : int;
  deferred_preemptions : int;
  steals : int;
  migrations : int;
  slice_expiries : int;
  reclaim_waits : int;
}

type t = {
  sim : Sim.t;
  machine : Machine.t;
  config : config;
  cpus : (int, cpu) Hashtbl.t;
  (* Remaining work of a preempted/paused Run, keyed by tid. Per kernel
     instance: two systems (or two domains) must never share run
     bookkeeping. *)
  pending : (int, Time_ns.t * Task.exec_mode) Hashtbl.t;
  mutable cpu_order : int list;
  mutable work_available_hook : int -> unit;
  mutable cpu_idle_hook : int -> unit;
  mutable task_done_hook : Task.t -> unit;
  mutable s_context_switches : int;
  mutable s_preemptions : int;
  mutable s_deferred : int;
  mutable s_steals : int;
  mutable s_migrations : int;
  mutable s_slice_expiries : int;
  mutable s_reclaim_waits : int;
  mutable s_cancellations : int;
  mutable s_max_deferred_wait : Time_ns.t;
  (* kernel.* counter handles, interned at [create]: per-event increments
     (context switches, steals) must not hash strings. *)
  h_context_switches : Counters.handle;
  h_steals : Counters.handle;
  h_cancellations : Counters.handle;
  h_migrations : Counters.handle;
  h_reclaims : Counters.handle;
}

let create ?(config = default_config) machine =
  let h = Counters.handle (Machine.counters machine) in
  {
    sim = Machine.sim machine;
    machine;
    config;
    cpus = Hashtbl.create 32;
    pending = Hashtbl.create 64;
    cpu_order = [];
    work_available_hook = (fun _ -> ());
    cpu_idle_hook = (fun _ -> ());
    task_done_hook = (fun _ -> ());
    s_context_switches = 0;
    s_preemptions = 0;
    s_deferred = 0;
    s_steals = 0;
    s_migrations = 0;
    s_slice_expiries = 0;
    s_reclaim_waits = 0;
    s_cancellations = 0;
    s_max_deferred_wait = 0;
    h_context_switches = h "kernel.context_switches";
    h_steals = h "kernel.steals";
    h_cancellations = h "kernel.cancellations";
    h_migrations = h "kernel.migrations";
    h_reclaims = h "kernel.reclaims";
  }

let sim t = t.sim
let machine t = t.machine
let config t = t.config
let cpu t id = Hashtbl.find t.cpus id
let cpu_id c = c.cid
let cpu_ids t = t.cpu_order
let cpu_kind c = c.kind
let is_online c = c.online
let is_backed c = c.backed
let is_available c = c.available
let current c = c.cur
let runqueue_length c = Queue.length c.rq_rt + Queue.length c.rq_normal
let cpu_has_work c = c.cur <> None || runqueue_length c > 0
let set_speed_tax c tax = c.speed_tax <- tax
let set_work_available_hook t f = t.work_available_hook <- f
let set_cpu_idle_hook t f = t.cpu_idle_hook <- f
let set_task_done_hook t f = t.task_done_hook <- f

let stats t =
  {
    context_switches = t.s_context_switches;
    preemptions = t.s_preemptions;
    deferred_preemptions = t.s_deferred;
    steals = t.s_steals;
    migrations = t.s_migrations;
    slice_expiries = t.s_slice_expiries;
    reclaim_waits = t.s_reclaim_waits;
  }

let max_deferred_wait t = t.s_max_deferred_wait

(* --- observability ------------------------------------------------------ *)

let trace t = Machine.trace t.machine
let count t h = Counters.incr_h (Machine.counters t.machine) h

(* For trace attribution a kernel CPU maps to the physical core currently
   backing it; unbacked vCPUs produce global (core-less) records. *)
let trace_core c =
  match c.backing_core with Some core -> core | None -> Trace.no_core

(* --- accounting ------------------------------------------------------- *)

let charge t c cls d =
  match c.backing_core with
  | Some core when d > 0 -> Accounting.charge (Machine.accounting t.machine) ~core cls d
  | Some _ | None -> ()

let scale c work =
  if c.speed_tax = 0.0 then work
  else work + int_of_float (float_of_int work *. c.speed_tax)

let unscale c wall =
  if c.speed_tax = 0.0 then wall
  else int_of_float (float_of_int wall /. (1.0 +. c.speed_tax))

(* --- run bookkeeping --------------------------------------------------- *)

let stop_spin_accounting t c =
  match c.spin_since with
  | Some since ->
      let d = Sim.now t.sim - since in
      charge t c Accounting.Spin d;
      (match c.cur with Some task -> task.Task.spin_time <- task.Task.spin_time + d | None -> ());
      c.spin_since <- None
  | None -> ()

let pause_run t c =
  match c.run_handle with
  | Some h ->
      Sim.cancel t.sim h;
      c.run_handle <- None;
      let task = match c.cur with Some x -> x | None -> assert false in
      let elapsed = Sim.now t.sim - c.run_started in
      let done_work = unscale c elapsed in
      (match Hashtbl.find_opt t.pending task.Task.tid with
      | Some (left, mode) ->
          Hashtbl.replace t.pending task.Task.tid (max 0 (left - done_work), mode)
      | None -> ());
      task.Task.cpu_time <- task.Task.cpu_time + done_work;
      charge t c Accounting.Cp_work elapsed
  | None -> ()

(* --- forward-declared mutually recursive scheduler core ---------------- *)

let rec dispatch t c =
  if c.online && c.backed && c.available && c.cur = None then begin
    (match c.idle_retry with Some h -> Sim.cancel t.sim h | None -> ());
    c.idle_retry <- None;
    match pick_next t c with
    | None ->
        (* Idle balancing: retry periodically so work queued on frozen
           vCPUs or unavailable cores is eventually pulled here — but only
           while such work exists, or the retry would keep the event queue
           alive forever. *)
        if steal_candidate_exists t c then
          c.idle_retry <-
            Some
              (Sim.after t.sim idle_rebalance_period (fun () ->
                   c.idle_retry <- None;
                   dispatch t c));
        t.cpu_idle_hook c.cid
    | Some task ->
        t.s_context_switches <- t.s_context_switches + 1;
        count t t.h_context_switches;
        c.cur <- Some task;
        task.Task.state <- Task.Running;
        task.Task.cpu <- Some c.cid;
        charge t c Accounting.Switch t.config.context_switch_cost;
        arm_slice t c;
        let expected = task in
        ignore
          (Sim.after t.sim t.config.context_switch_cost (fun () ->
               match c.cur with
               | Some cur when cur == expected && c.backed -> advance t c
               | Some _ | None -> ()))
  end

and pick_next t c =
  let pop_admissible q =
    (* Tasks are admissible on their queuing CPU by construction. *)
    if Queue.is_empty q then None else Some (Queue.pop q)
  in
  match pop_admissible c.rq_rt with
  | Some task -> Some task
  | None -> (
      match pop_admissible c.rq_normal with
      | Some task -> Some task
      | None -> try_steal t c)

and steal_candidate_exists t c =
  let admissible task =
    task.Task.affinity = [] || List.mem c.cid task.Task.affinity
  in
  List.exists
    (fun id ->
      id <> c.cid
      &&
      let c' = Hashtbl.find t.cpus id in
      Queue.fold (fun acc x -> acc || admissible x) false c'.rq_rt
      || Queue.fold (fun acc x -> acc || admissible x) false c'.rq_normal)
    t.cpu_order

and try_steal t c =
  let admissible task =
    task.Task.affinity = [] || List.mem c.cid task.Task.affinity
  in
  let best = ref None in
  List.iter
    (fun id ->
      if id <> c.cid then begin
        let c' = Hashtbl.find t.cpus id in
        let n = runqueue_length c' in
        let has_admissible =
          Queue.fold (fun acc x -> acc || admissible x) false c'.rq_rt
          || Queue.fold (fun acc x -> acc || admissible x) false c'.rq_normal
        in
        if n > 0 && has_admissible then
          match !best with
          | Some (_, m) when m >= n -> ()
          | Some _ | None -> best := Some (c', n)
      end)
    t.cpu_order;
  match !best with
  | None -> None
  | Some (victim, _) ->
      let steal_from q =
        let stolen = ref None in
        let keep = Queue.create () in
        Queue.iter
          (fun x ->
            if !stolen = None && admissible x then stolen := Some x
            else Queue.push x keep)
          q;
        Queue.clear q;
        Queue.transfer keep q;
        !stolen
      in
      let found =
        match steal_from victim.rq_rt with
        | Some x -> Some x
        | None -> steal_from victim.rq_normal
      in
      (match found with
      | Some task ->
          t.s_steals <- t.s_steals + 1;
          count t t.h_steals;
          Trace.emitf (trace t) ~time:(Sim.now t.sim) ~core:(trace_core c)
            ~category:Trace.Cat.kernel_steal "cpu=%d task=%s from=%d" c.cid
            task.Task.tname victim.cid;
          task.Task.cpu <- Some c.cid
      | None -> ());
      found

and arm_slice t c =
  (match c.slice_timer with Some h -> Sim.cancel t.sim h | None -> ());
  c.slice_timer <- None;
  match c.cur with
  | Some { Task.prio = Task.Normal; _ } ->
      c.slice_timer <- Some (Sim.after t.sim t.config.timeslice (fun () -> slice_expiry t c))
  | Some { Task.prio = Task.Rt; _ } | None -> ()

and slice_expiry t c =
  c.slice_timer <- None;
  match c.cur with
  | None -> ()
  | Some task ->
      t.s_slice_expiries <- t.s_slice_expiries + 1;
      if runqueue_length c > 0 then begin
        if Task.nonpreemptible task then begin
          c.need_resched <- true;
          t.s_deferred <- t.s_deferred + 1
        end
        else requeue_current t c
      end
      else arm_slice t c

and requeue_current t c =
  match c.cur with
  | None -> ()
  | Some task ->
      t.s_preemptions <- t.s_preemptions + 1;
      pause_run t c;
      task.Task.state <- Task.Runnable;
      c.cur <- None;
      c.need_resched <- false;
      (match task.Task.prio with
      | Task.Rt -> Queue.push task c.rq_rt
      | Task.Normal -> Queue.push task c.rq_normal);
      dispatch t c

and advance t c =
  match c.cur with
  | None -> dispatch t c
  | Some task -> (
      match task.Task.state with
      | Task.Spinning _ -> ()
      | _ when c.run_handle <> None -> ()
      | _ when not c.backed -> ()
      | _ -> run_ops t c task 0)

and run_ops t c task guard =
  if guard > 100_000 then
    failwith
      (Printf.sprintf "Kernel: task %s issued too many zero-cost ops" task.Task.tname);
  (* Cancellation is honoured only at preemptible boundaries: a task
     holding a lock or inside a non-preemptible section finishes that
     section first (its np bookkeeping unwinds through the normal path),
     then exits here instead of fetching its next operation. Any paused
     preemptible Run remainder is discarded. *)
  if task.Task.cancelled && not (Task.nonpreemptible task) then begin
    Hashtbl.remove t.pending task.Task.tid;
    t.s_cancellations <- t.s_cancellations + 1;
    count t t.h_cancellations;
    exit_task t c task
  end
  else
  (* A paused Run resumes before new ops are requested. *)
  match Hashtbl.find_opt t.pending task.Task.tid with
  | Some (left, _mode) when left > 0 -> start_run t c task left
  | Some (_, mode) ->
      Hashtbl.remove t.pending task.Task.tid;
      finish_run_effects t c task mode ~continue_guard:guard
  | None -> (
      let op = task.Task.step task in
      match op with
      | Task.Run { duration; mode } ->
          (match mode with
          | Task.Kernel | Task.Kernel_nonpreemptible ->
              task.Task.kernel_entries <- task.Task.kernel_entries + 1
          | Task.User -> ());
          if mode = Task.Kernel_nonpreemptible then
            task.Task.np_depth <- task.Task.np_depth + 1;
          Hashtbl.replace t.pending task.Task.tid (duration, mode);
          start_run t c task duration
      | Task.Acquire lock -> (
          match lock.Task.owner with
          | None ->
              lock.Task.owner <- Some task;
              lock.Task.acquisitions <- lock.Task.acquisitions + 1;
              task.Task.lock_acquisitions <- task.Task.lock_acquisitions + 1;
              task.Task.locks_held <- task.Task.locks_held + 1;
              run_ops t c task (guard + 1)
          | Some _ ->
              lock.Task.contentions <- lock.Task.contentions + 1;
              Queue.push task lock.Task.waiters;
              task.Task.state <- Task.Spinning lock;
              c.spin_since <- Some (Sim.now t.sim))
      | Task.Release lock ->
          (match lock.Task.owner with
          | Some o when o == task -> ()
          | Some _ | None ->
              failwith
                (Printf.sprintf "Kernel: %s released lock %s it does not own"
                   task.Task.tname lock.Task.lk_name));
          task.Task.locks_held <- task.Task.locks_held - 1;
          lock.Task.owner <- None;
          (if not (Queue.is_empty lock.Task.waiters) then begin
             let w = Queue.pop lock.Task.waiters in
             grant_lock t lock w
           end);
          after_np_boundary t c task guard
      | Task.Sleep_for d ->
          task.Task.state <- Task.Sleeping;
          task.Task.cpu <- None;
          c.cur <- None;
          ignore (Sim.after t.sim d (fun () -> wake t ~src:c.cid task));
          leave_cpu t c
      | Task.Block wq ->
          if wq.Task.credits > 0 then begin
            wq.Task.credits <- wq.Task.credits - 1;
            run_ops t c task (guard + 1)
          end
          else begin
            task.Task.state <- Task.Blocked wq;
            task.Task.cpu <- None;
            wq.Task.sleepers <- wq.Task.sleepers @ [ task ];
            c.cur <- None;
            leave_cpu t c
          end
      | Task.Signal wq ->
          signal_internal t ~src:c.cid wq;
          run_ops t c task (guard + 1)
      | Task.Exit -> exit_task t c task)

and exit_task t c task =
  task.Task.state <- Task.Dead;
  task.Task.finished_at <- Some (Sim.now t.sim);
  task.Task.cpu <- None;
  c.cur <- None;
  t.task_done_hook task;
  leave_cpu t c

and start_run t c task work =
  c.run_started <- Sim.now t.sim;
  let wall = max 1 (scale c work) in
  c.run_handle <- Some (Sim.after t.sim wall (fun () -> finish_run t c task))

and finish_run t c task =
  c.run_handle <- None;
  let elapsed = Sim.now t.sim - c.run_started in
  charge t c Accounting.Cp_work elapsed;
  match Hashtbl.find_opt t.pending task.Task.tid with
  | None -> assert false
  | Some (left, mode) ->
      task.Task.cpu_time <- task.Task.cpu_time + left;
      Hashtbl.remove t.pending task.Task.tid;
      finish_run_effects t c task mode ~continue_guard:0

and finish_run_effects t c task mode ~continue_guard =
  if mode = Task.Kernel_nonpreemptible then
    task.Task.np_depth <- task.Task.np_depth - 1;
  after_np_boundary t c task continue_guard

(* Called at every point where a task may have just become preemptible:
   honor pending reclaims first, then deferred rescheduling. *)
and after_np_boundary t c task guard =
  if Task.nonpreemptible task then run_ops t c task (guard + 1)
  else if c.reclaimers <> [] then begin
    migrate_out t c task;
    c.cur <- None;
    leave_cpu t c
  end
  else if c.need_resched then begin
    c.need_resched <- false;
    if runqueue_length c > 0 then requeue_current t c
    else run_ops t c task (guard + 1)
  end
  else run_ops t c task (guard + 1)

and migrate_out t c task =
  t.s_migrations <- t.s_migrations + 1;
  count t t.h_migrations;
  Trace.emitf (trace t) ~time:(Sim.now t.sim) ~core:(trace_core c)
    ~category:Trace.Cat.kernel_migrate "cpu=%d task=%s" c.cid task.Task.tname;
  pause_run t c;
  task.Task.state <- Task.Runnable;
  task.Task.cpu <- None;
  place_task t ~src:c.cid task

and leave_cpu t c =
  if c.reclaimers <> [] then grant_reclaims t c;
  dispatch t c

and grant_reclaims t c =
  (* Current task must already be gone; flush queued tasks elsewhere.
     Drain first: re-placement may legitimately push a task back onto this
     very queue when its affinity admits no other CPU. *)
  assert (c.cur = None);
  let drained = ref [] in
  let drain q =
    Queue.iter (fun task -> drained := task :: !drained) q;
    Queue.clear q
  in
  drain c.rq_rt;
  drain c.rq_normal;
  List.iter
    (fun task ->
      task.Task.cpu <- None;
      t.s_migrations <- t.s_migrations + 1;
      place_task t ~src:c.cid task)
    (List.rev !drained);
  let cbs = List.rev c.reclaimers in
  c.reclaimers <- [];
  let waited = Sim.now t.sim - c.reclaim_requested_at in
  if waited > t.s_max_deferred_wait then t.s_max_deferred_wait <- waited;
  count t t.h_reclaims;
  Trace.emitf (trace t) ~time:(Sim.now t.sim) ~core:(trace_core c)
    ~category:Trace.Cat.kernel_reclaim "cpu=%d waited=%d" c.cid waited;
  List.iter (fun cb -> cb ()) cbs

and grant_lock t lock w =
  w.Task.locks_held <- w.Task.locks_held + 1;
  w.Task.lock_acquisitions <- w.Task.lock_acquisitions + 1;
  lock.Task.owner <- Some w;
  lock.Task.acquisitions <- lock.Task.acquisitions + 1;
  (match w.Task.cpu with
  | Some cid -> (
      let wc = Hashtbl.find t.cpus cid in
      match wc.cur with
      | Some cur when cur == w ->
          stop_spin_accounting t wc;
          w.Task.state <- Task.Running;
          ignore (Sim.immediate t.sim (fun () -> advance t wc))
      | Some _ | None -> w.Task.state <- Task.Runnable)
  | None -> w.Task.state <- Task.Runnable)

and signal_internal t ?src wq =
  match wq.Task.sleepers with
  | [] -> wq.Task.credits <- wq.Task.credits + 1
  | first :: rest ->
      wq.Task.sleepers <- rest;
      wake t ?src first

and wake t ?src task =
  match task.Task.state with
  | Task.New | Task.Sleeping | Task.Blocked _ ->
      task.Task.state <- Task.Runnable;
      task.Task.wakeups <- task.Task.wakeups + 1;
      place_task t ?src task
  | Task.Runnable | Task.Running | Task.Spinning _ | Task.Dead -> ()

and place_task t ?src task =
  let allowed c =
    c.online && (task.Task.affinity = [] || List.mem c.cid task.Task.affinity)
  in
  let candidates =
    List.filter_map
      (fun id ->
        let c = Hashtbl.find t.cpus id in
        if allowed c then Some c else None)
      t.cpu_order
  in
  if candidates = [] then
    failwith
      (Printf.sprintf "Kernel: no online CPU admits task %s" task.Task.tname);
  let score c =
    (* Lower is better: idle backed available CPUs first, then idle
       available (unbacked vCPUs: enqueuing wakes the vCPU scheduler),
       then shortest queue among available, then anything. *)
    if c.available && c.backed && c.cur = None && runqueue_length c = 0 then 0
    else if c.available && c.cur = None && runqueue_length c = 0 then 1
    else if c.available then 2 + runqueue_length c
    else 1000 + runqueue_length c
  in
  let best =
    List.fold_left
      (fun acc c ->
        match acc with
        | None -> Some c
        | Some b -> if score c < score b then Some c else acc)
      None candidates
  in
  let c = match best with Some c -> c | None -> assert false in
  task.Task.cpu <- Some c.cid;
  (match task.Task.prio with
  | Task.Rt -> Queue.push task c.rq_rt
  | Task.Normal -> Queue.push task c.rq_normal);
  if not c.backed then t.work_available_hook c.cid
  else if c.available then begin
    let kick = c.cur = None || (task.Task.prio = Task.Rt && (match c.cur with Some x -> x.Task.prio = Task.Normal | None -> false)) in
    if kick then
      let src = match src with Some s -> s | None -> c.cid in
      Machine.send_ipi t.machine ~src ~dst:c.cid ~vector:t.config.resched_vector
  end

(* --- resched IPI handler ------------------------------------------------ *)

let on_resched t c =
  charge t c Accounting.Os (Time_ns.ns 300);
  match c.cur with
  | None -> dispatch t c
  | Some task ->
      let rt_waiting = not (Queue.is_empty c.rq_rt) in
      if rt_waiting && task.Task.prio = Task.Normal then begin
        if Task.nonpreemptible task then begin
          c.need_resched <- true;
          t.s_deferred <- t.s_deferred + 1
        end
        else requeue_current t c
      end

(* --- public CPU management ---------------------------------------------- *)

let register_cpu t c =
  Machine.register_lapic t.machine c.lapic;
  Lapic.register_handler c.lapic t.config.resched_vector (fun () -> on_resched t c);
  Lapic.register_handler c.lapic t.config.boot_vector (fun () ->
      if not c.online then
        ignore
          (Sim.after t.sim t.config.boot_delay (fun () ->
               c.online <- true;
               (match c.on_online with Some f -> f () | None -> ());
               c.on_online <- None;
               dispatch t c)));
  Hashtbl.replace t.cpus c.cid c;
  t.cpu_order <- t.cpu_order @ [ c.cid ]

let make_cpu ~id ~kind ~online ~backed ~available ~backing_core =
  {
    cid = id;
    kind;
    online;
    backed;
    available;
    backing_core;
    speed_tax = 0.0;
    rq_rt = Queue.create ();
    rq_normal = Queue.create ();
    cur = None;
    run_handle = None;
    run_started = 0;
    spin_since = None;
    slice_timer = None;
    need_resched = false;
    reclaimers = [];
    reclaim_requested_at = 0;
    on_online = None;
    idle_retry = None;
    lapic = Lapic.create ~apic_id:id;
  }

let add_physical_cpu t ?(available = true) ~id () =
  let c =
    make_cpu ~id ~kind:`Physical ~online:true ~backed:true ~available
      ~backing_core:(Some id)
  in
  register_cpu t c;
  c

let add_virtual_cpu t ~id =
  let c =
    make_cpu ~id ~kind:`Virtual ~online:false ~backed:false ~available:true
      ~backing_core:None
  in
  register_cpu t c;
  c

let boot t c ?on_online ~src () =
  c.on_online <- on_online;
  Machine.send_ipi t.machine ~src ~dst:c.cid ~vector:t.config.boot_vector

let set_backing_core _t c core = c.backing_core <- core

let set_backed t c backed =
  if c.backed <> backed then
    if not backed then begin
      (match c.slice_timer with Some h -> Sim.cancel t.sim h | None -> ());
      c.slice_timer <- None;
      pause_run t c;
      stop_spin_accounting t c;
      c.backed <- false
    end
    else begin
      c.backed <- true;
      (match c.cur with
      | Some task -> (
          match task.Task.state with
          | Task.Spinning _ -> c.spin_since <- Some (Sim.now t.sim)
          | _ ->
              arm_slice t c;
              advance t c)
      | None -> dispatch t c)
    end

let lend t c =
  if not c.available then begin
    c.available <- true;
    (* A lent physical core is control-plane occupied from the machine's
       point of view: record it on the authoritative state machine (the
       data-plane service moved the core to [Switching From_dp] when it
       yielded, just before the co-schedule policy called us). Lending a
       core the machine already sees as CP-occupied — a reclaim/lend cycle
       with no data-plane resume in between — changes nothing. *)
    if c.kind = `Physical && c.cid < Machine.physical_cores t.machine then begin
      let cs = Machine.core_state t.machine in
      match Core_state.get cs ~core:c.cid with
      | Core_state.Cp_dedicated -> ()
      | _ ->
          Core_state.transition cs ~core:c.cid ~cause:Core_state.Lend
            Core_state.Cp_dedicated
    end;
    dispatch t c
  end

let reclaim t c ~on_granted =
  c.available <- false;
  match c.cur with
  | None ->
      c.reclaim_requested_at <- Sim.now t.sim;
      c.reclaimers <- [ on_granted ];
      grant_reclaims t c
  | Some task ->
      if Task.nonpreemptible task then begin
        t.s_reclaim_waits <- t.s_reclaim_waits + 1;
        t.s_deferred <- t.s_deferred + 1;
        if c.reclaimers = [] then c.reclaim_requested_at <- Sim.now t.sim;
        c.reclaimers <- on_granted :: c.reclaimers
      end
      else begin
        migrate_out t c task;
        c.cur <- None;
        c.reclaim_requested_at <- Sim.now t.sim;
        c.reclaimers <- on_granted :: c.reclaimers;
        grant_reclaims t c
      end

let requeue_if_preemptible t c =
  match c.cur with
  | Some task when not (Task.nonpreemptible task) && task.Task.state = Task.Running ->
      pause_run t c;
      task.Task.state <- Task.Runnable;
      c.cur <- None;
      (match task.Task.prio with
      | Task.Rt -> Queue.push task c.rq_rt
      | Task.Normal -> Queue.push task c.rq_normal);
      if c.backed && c.available then dispatch t c
  | Some _ | None -> ()

let spawn t task =
  task.Task.spawned_at <- Sim.now t.sim;
  wake t task

let signal t ?src wq = signal_internal t ?src wq
let credits wq = wq.Task.credits

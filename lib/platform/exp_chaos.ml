open Taichi_engine
open Taichi_hw
open Taichi_os
open Taichi_accel
open Taichi_core
open Taichi_faults
open Taichi_workloads

(* A control-plane task that grabs a device lock and sits in a
   non-preemptible kernel routine for [hold] — the §3.2 pathology the
   CP-hang stream injects on demand. *)
let hang_task ~lock ~hold ~n =
  let stage = ref 0 in
  Task.create
    ~name:(Printf.sprintf "chaos-hang-%d" n)
    ~step:(fun _ ->
      let s = !stage in
      incr stage;
      match s with
      | 0 -> Task.Acquire lock
      | 1 -> Task.Run { duration = hold; mode = Task.Kernel_nonpreemptible }
      | 2 -> Task.Release lock
      | _ -> Task.Exit)
    ()

(* Per-fault-class report rows: which injection counters feed the class
   and which recovery counters answer it. "Detected" is the detector
   firing (a retry timer, the resync scan, a watchdog rung); "recovered"
   the repair actions taken. For IPI/boot/mirror the detector IS the
   repair, so the two columns read the same counters. *)
let classes =
  [
    ( "ipi",
      [ "fault.ipi.dropped"; "fault.ipi.delayed"; "fault.lapic.lost" ],
      [ "recovery.ipi.retry" ],
      [ "recovery.ipi.retry" ] );
    ( "boot",
      [ "fault.boot.dropped" ],
      [ "recovery.boot.retry" ],
      [ "recovery.boot.retry" ] );
    ( "mirror",
      [ "fault.mirror.stalls"; "fault.mirror.corruptions" ],
      [ "recovery.mirror.resync" ],
      [ "recovery.mirror.resync" ] );
    ( "probe",
      [ "fault.probe.suppressed"; "fault.probe.misfires" ],
      [ "recovery.watchdog.resched" ],
      [ "recovery.watchdog.resched" ] );
    ( "cp-hang",
      [ "fault.cp.hangs" ],
      [ "recovery.watchdog.rescue"; "recovery.watchdog.forced" ],
      [ "recovery.watchdog.rescue"; "recovery.watchdog.forced" ] );
    ( "dp-burst",
      [ "fault.dp.bursts" ],
      [ "probe.hw.triggers" ],
      [ "sched.evictions.probe" ] );
  ]

let sum counters names =
  List.fold_left (fun acc n -> acc + Counters.get counters n) 0 names

let report_scenario ctx sys tc =
  let counters = Machine.counters (System.machine sys) in
  Run_ctx.printf ctx "  %-10s %9s %9s %9s\n" "class" "injected" "detected"
    "recovered";
  List.iter
    (fun (cls, injected, detected, recovered) ->
      Run_ctx.printf ctx "  %-10s %9d %9d %9d\n" cls (sum counters injected)
        (sum counters detected) (sum counters recovered))
    classes;
  let rcv = Taichi.recovery tc in
  let hist = Recovery.latency_hist rcv in
  if Histogram.count hist > 0 then
    Run_ctx.printf ctx
      "  recovery latency: n=%d p50=%.1fus p99=%.1fus max=%.1fus\n"
      (Histogram.count hist)
      (float_of_int (Histogram.percentile hist 50.0) /. 1000.0)
      (float_of_int (Histogram.percentile hist 99.0) /. 1000.0)
      (float_of_int (Histogram.max_value hist) /. 1000.0);
  Run_ctx.printf ctx "  degraded: engaged=%d rearmed=%d (events=%d)\n"
    (Recovery.engaged_count rcv)
    (Recovery.rearmed_count rcv)
    (Recovery.events rcv)

(* One matrix cell: a fault profile against a resilient policy. Returns
   the degraded-mode activity so the storm oracle can run over whatever
   subset of the matrix was selected. *)
let run_scenario ctx ~seed ~scale ~profile ~policy =
  let pname = profile.Injector.pname in
  Run_ctx.printf ctx "\n-- profile %s x policy %s (seed %d)\n" pname
    (Policy.name policy) seed;
  let injector = ref None in
  let prepare machine =
    let rng = Rng.split (Rng.create ~seed) ("chaos-" ^ pname) in
    let inj =
      Injector.create ~rng ~machine
        ~boot_vector:Kernel.default_config.Kernel.boot_vector profile
    in
    injector := Some inj
  in
  Exp_common.with_system ~ctx ~prepare ~seed policy (fun sys ->
      let inj = Option.get !injector in
      let tc = Option.get (System.taichi sys) in
      let sim = System.sim sys in
      (* Wire the fault classes that need stack or workload cooperation. *)
      Injector.attach_table inj (Taichi.state_table tc);
      let probe = Taichi.hw_probe tc in
      Hw_probe.set_suppressor probe
        (Some (fun ~core -> Injector.probe_suppress inj ~core));
      Injector.set_probe_misfire inj (fun ~core -> Hw_probe.misfire probe ~core);
      let hang_lock = Task.spinlock "chaos-dev" in
      let hangs = ref 0 in
      Injector.set_cp_hang inj (fun ~hold ->
          incr hangs;
          System.spawn_cp sys (hang_task ~lock:hang_lock ~hold ~n:!hangs));
      let client = System.client sys in
      let dp_cores = Array.of_list (System.dp_cores sys) in
      let burst_rng = Rng.split (System.rng sys) "chaos-burst" in
      Injector.set_dp_burst inj (fun ~size ->
          for _ = 1 to size do
            let core = dp_cores.(Rng.int burst_rng (Array.length dp_cores)) in
            Client.submit_background client ~kind:Packet.Net_rx ~size:1400
              ~core
          done);
      (* Measurement window: faults live for [dur], then a fault-free
         grace long enough for the watchdog, the mirror resync scan and
         the degraded-mode quiet period to finish their work. *)
      let dur = Exp_common.scaled scale (Time_ns.ms 40) in
      let grace = Time_ns.ms 8 in
      let until = Sim.now sim + dur in
      Injector.arm inj ~until;
      Exp_common.start_bg_dp sys ~target:0.55 ~until;
      Exp_common.start_bg_cp sys;
      Exp_common.start_cp_churn sys ~period:(Time_ns.us 400)
        ~work:(Time_ns.us 150) ~until;
      System.advance sys (dur + grace);
      (* Oracles beyond the with_system audit. *)
      let stuck = Vcpu_sched.watchdog_stuck (Taichi.scheduler tc) in
      if stuck > 0 then
        failwith
          (Printf.sprintf
             "chaos %s/%s seed %d: %d vCPU(s) still hung past the watchdog \
              bound"
             pname (Policy.name policy) seed stuck);
      let rcv = Taichi.recovery tc in
      report_scenario ctx sys tc;
      (pname, Recovery.engaged_count rcv, Recovery.rearmed_count rcv))

let policies =
  [
    ("probe", Policy.Taichi (Config.resilient Config.default));
    ( "noprobe",
      Policy.Taichi (Config.resilient (Config.no_hw_probe Config.default)) );
  ]

let chaos_grid =
  List.concat_map
    (fun profile ->
      List.map
        (fun (ptag, policy) ->
          ( {
              Exp_desc.key =
                Printf.sprintf "%s-%s" profile.Injector.pname ptag;
              label =
                Printf.sprintf "profile %s, %s" profile.Injector.pname
                  (Policy.name policy);
            },
            (profile, policy) ))
        policies)
    [ Injector.flaky; Injector.storm ]

(* The CI matrix pins one profile per job; the CLI turns
   --chaos-profile / CHAOS_PROFILE into a cell filter over these keys. *)
let profile_filter name cell =
  match Injector.of_name name with
  | None -> failwith (Printf.sprintf "chaos: unknown fault profile %s" name)
  | Some p ->
      String.length cell.Exp_desc.key > String.length p.Injector.pname
      && String.sub cell.Exp_desc.key 0 (String.length p.Injector.pname)
         = p.Injector.pname

let chaos =
  Exp_desc.make ~name:"chaos"
    ~title:
      "CHAOS: seeded fault matrix x resilient Tai Chi (audit + watchdog \
       oracles)"
    ~description:
      "Deterministic fault-injection matrix (flaky and storm profiles) \
       against resilient Tai Chi variants, with audit, watchdog and \
       degraded-mode oracles"
    ~cells:(List.map fst chaos_grid)
    ~run_cell:(fun ctx ~seed ~scale cell ->
      let profile, policy =
        List.assoc cell.Exp_desc.key
          (List.map (fun (c, v) -> (c.Exp_desc.key, v)) chaos_grid)
      in
      run_scenario ctx ~seed ~scale ~profile ~policy)
    ~summarize:(fun ctx ~seed:_ ~scale:_ results ->
      let engaged =
        List.fold_left (fun acc (_, (_, e, _)) -> acc + e) 0 results
      in
      let rearmed =
        List.fold_left (fun acc (_, (_, _, r)) -> acc + r) 0 results
      in
      Run_ctx.printf ctx "\nmatrix total: degraded engaged=%d rearmed=%d\n"
        engaged rearmed;
      (* The storm profile is calibrated to push the recovery-event rate
         over the degraded threshold; when it ran, the fallback must have
         both engaged and re-armed somewhere in the matrix. *)
      if List.exists (fun (_, (pname, _, _)) -> pname = "storm") results
      then begin
        if engaged = 0 then
          failwith "chaos: degraded mode never engaged under the storm profile";
        if rearmed = 0 then
          failwith "chaos: degraded mode engaged but never re-armed"
      end)

(** Motivation experiments: Figs 2, 3, 4, 5 and 6, as sweepable
    descriptors. *)

val fig2 : Exp_desc.t
(** VM startup and CP execution time vs instance density under the static
    baseline (normalized to SLO / 1x density). One cell per density. *)

val fig3 : Exp_desc.t
(** CDF of data-plane CPU utilization: regenerated production population
    plus a simulated validation point. *)

val fig4 : Exp_desc.t
(** Anatomy of a non-preemptible-routine latency spike: naive
    co-scheduling vs Tai Chi on the same scenario. *)

val fig5 : Exp_desc.t
(** Histogram of long non-preemptible routine durations. *)

val fig6 : Exp_desc.t
(** Timing breakdown of one I/O descriptor through the accelerator. *)

open Taichi_engine
open Taichi_hw
open Taichi_os
open Taichi_metrics
open Taichi_accel
open Taichi_core
open Taichi_faults
open Taichi_workloads
open Taichi_controlplane
open Taichi_dataplane
open Exp_common

(* Tenant churn under fire: the live admit/retire lifecycle exercised as
   an experiment. The grid spans churn profiles:

   - {b steady}: arrival waves and a departure under saturation — every
     drain must complete (gracefully for quiet tenants, forced for a
     tenant retired mid-storm), victims keep their p99 contracts, and
     the vCPU/service pools are whole again afterwards.
   - {b flap}: rapid admit/retire thrash and a pool-exhaustion refusal
     that is retried with capped backoff until a departure frees the
     capacity — no abandoned admissions, dense never-reused ids.
   - {b chaos}: the churn fault profile (departures mid-CP-storm,
     arrivals into active governor rungs, drain-window overruns) on top
     of the flaky background faults; structural oracles only.

   Every cell additionally relies on the [drain-audit] Core_state
   invariant (via the with_system audit): a retired tenant must leave
   zero orphaned state — no vCPU, queue entry, task, service or ring
   descriptor. *)

(* The p99 contract the victims (boot tenants) are judged against: what a
   dynamic neighbour's arrival, storm or departure may add to their
   data-plane tail. *)
let contract = Time_ns.us 250

let boot_specs =
  [
    Tenant.spec ~weight:2 ~dp_p99_bound:contract "alpha";
    Tenant.spec ~dp_p99_bound:contract "bravo";
  ]

let dyn_spec i = Tenant.spec ~weight:2 (Printf.sprintf "dyn-%d" i)

type scenario = Wave | Depart | Flap | Refusal | Chaos

type victim_row = {
  vname : string;
  packets : int;
  p99_us : float;
  bound_us : float;
}

type outcome = {
  key : string;
  scenario : scenario;
  admitted : int;
  refused : int;
  retries : int;
  abandoned : int;
  drains : int;
  forced : int;
  forced_receipts : int;  (** recovery.drain.forced *)
  retired : int;
  spawn_refused : int;
  discarded : int;
  stragglers : int;  (** sched.grant_after_retire *)
  pool_end : int;
  floats_end : int;
  population : int;  (** Tenant.count at cell end — ids never reused *)
  victims : victim_row list;
  fingerprint : string;
}

(* --- helpers ------------------------------------------------------------- *)

let cp_task sys ~tenant ~work ~name =
  let rng = Rng.split (System.rng sys) ("churn-" ^ name) in
  let params =
    { Synth_cp.default_params with Synth_cp.total_work = work; phases = 3 }
  in
  Synth_cp.make ~tenant ~rng ~params ~locks:[] ~affinity:[] ~name ()

let spawn_work sys ~tenant ~count ~work ~tag =
  for i = 1 to count do
    System.spawn_cp ~tenant sys
      (cp_task sys ~tenant ~work ~name:(Printf.sprintf "%s-%d-%d" tag tenant i))
  done

(* Background traffic confined to the services a tenant currently owns —
   for a dynamic tenant, its floating services. *)
let feed_tenant_dp sys ~tenant ~target ~until =
  let client = System.client sys in
  let rng =
    Rng.split (System.rng sys) (Printf.sprintf "churn-dp-%d" tenant)
  in
  let cores =
    List.filter_map
      (fun dp ->
        if Dp_service.tenant dp = tenant then Some (Dp_service.core dp)
        else None)
      (System.services sys)
  in
  let net = List.filter (fun c -> List.mem c (System.net_cores sys)) cores in
  let sto =
    List.filter (fun c -> List.mem c (System.storage_cores sys)) cores
  in
  if net <> [] then
    Bgload.start client rng
      ~params:(Bgload.default_params ~target_util:target)
      ~cores:net ~kind:Packet.Net_rx ~size:1400 ~until;
  if sto <> [] then
    Bgload.start client rng
      ~params:
        {
          (Bgload.default_params ~target_util:target) with
          Bgload.per_packet_est = Time_ns.ns 5200;
        }
      ~cores:sto ~kind:Packet.Storage_read ~size:4096 ~until

(* Victim latency over the PINNED services only. A floating service's
   recorder spans every owner it ever served, so merging by current owner
   (as [System.dp_latency_hist_of] does) would blame a dynamic tenant's
   backlog on the boot tenant the service rests with. *)
let victim_hist sys ~tenant =
  let tc = Option.get (System.taichi sys) in
  let dps = System.services sys in
  let keep = List.length dps - (Taichi.config tc).Config.float_services in
  List.fold_left
    (fun acc dp ->
      if Dp_service.tenant dp = tenant then
        Histogram.merge acc
          (Taichi_metrics.Recorder.histogram (Dp_service.latency dp))
      else acc)
    (Histogram.create ())
    (List.filteri (fun i _ -> i < keep) dps)

let fingerprint_of sys extras =
  let counters = Counters.dump (Machine.counters (System.machine sys)) in
  let buf = Buffer.create 256 in
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s=%d;" k v))
    (List.sort compare counters);
  List.iter (fun s -> Buffer.add_string buf (s ^ ";")) extras;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let at sys offset f = ignore (Sim.after (System.sim sys) offset f)

let lifecycle_of sys =
  match System.lifecycle sys with
  | Some lc -> lc
  | None -> failwith "exp_churn: the policy did not build a churn lifecycle"

(* A chaos-cell CP task that grabs a lock and sits non-preemptible —
   the same §3.2 pathology exp_chaos injects. *)
let hang_task ~lock ~hold ~n =
  let stage = ref 0 in
  Task.create
    ~name:(Printf.sprintf "churn-hang-%d" n)
    ~step:(fun _ ->
      let s = !stage in
      incr stage;
      match s with
      | 0 -> Task.Acquire lock
      | 1 -> Task.Run { duration = hold; mode = Task.Kernel_nonpreemptible }
      | 2 -> Task.Release lock
      | _ -> Task.Exit)
    ()

(* --- scenario drivers ----------------------------------------------------- *)

(* Each driver schedules its churn events at absolute offsets from the
   cell start, so the relative order (and every oracle below) is stable
   across duration scales. *)

let drive_wave sys lc =
  (* Arrivals may land on an active governor rung (the backpressure
     refusal is part of normal operation); the backoff must carry each
     wave through to admission. *)
  let admit_and_run ~idx ~t_admit ~dwell =
    at sys t_admit (fun () ->
        Lifecycle.admit_with_backoff lc (dyn_spec idx)
          ~on_admitted:(fun id ->
            (* CP-only: a wave tenant that feeds its single float service
               saturates enough 200us busy windows (on top of the
               baseline) to double-vote with the p99 signal and ladder to
               the sticky static-partition rung, holding global
               backpressure for its whole life — the second wave could
               then never admit. The ring-drain path is exercised by
               steady-depart and the chaos cell instead. *)
            spawn_work sys ~tenant:id ~count:2 ~work:(Time_ns.ms 1)
              ~tag:"wave";
            at sys dwell (fun () -> Lifecycle.retire lc ~tenant:id))
          ~on_abandoned:(fun _ -> ()))
  in
  admit_and_run ~idx:0 ~t_admit:(Time_ns.ms 8) ~dwell:(Time_ns.ms 24);
  admit_and_run ~idx:1 ~t_admit:(Time_ns.ms 16) ~dwell:(Time_ns.ms 24)

let drive_depart sys lc =
  at sys (Time_ns.ms 8) (fun () ->
      match Lifecycle.admit lc ~vcpus:2 (dyn_spec 0) with
      | Error _ -> ()
      | Ok id ->
          (* A storm sized well past the retire point: the drain cannot
             quiesce inside its window and must escalate. *)
          spawn_work sys ~tenant:id ~count:4 ~work:(Time_ns.ms 20)
            ~tag:"depart";
          feed_tenant_dp sys ~tenant:id ~target:0.7
            ~until:(Sim.now (System.sim sys) + Time_ns.ms 24);
          at sys (Time_ns.ms 22) (fun () -> Lifecycle.retire lc ~tenant:id);
          (* Post-retire spawn: the drain gate must refuse it. *)
          at sys (Time_ns.ms 23) (fun () ->
              System.spawn_cp ~tenant:id sys
                (cp_task sys ~tenant:id ~work:(Time_ns.ms 1)
                   ~name:"depart-late")))

let drive_flap sys lc =
  for i = 0 to 3 do
    at sys (Time_ns.ms (8 + (10 * i))) (fun () ->
        match Lifecycle.admit lc (dyn_spec i) with
        | Error _ -> ()
        | Ok id ->
            spawn_work sys ~tenant:id ~count:2 ~work:(Time_ns.ms 1)
              ~tag:"flap";
            at sys (Time_ns.ms 5) (fun () -> Lifecycle.retire lc ~tenant:id))
  done

let drive_refusal sys lc =
  (* dyn-0 takes 3 of the 4 spare vCPUs; dyn-1 then asks for 2 and is
     refused until dyn-0 departs — the capped backoff must carry the
     retry across the departure. *)
  at sys (Time_ns.ms 8) (fun () ->
      match Lifecycle.admit lc ~vcpus:3 (dyn_spec 0) with
      | Error _ -> ()
      | Ok id ->
          spawn_work sys ~tenant:id ~count:2 ~work:(Time_ns.ms 1) ~tag:"ref";
          at sys (Time_ns.ms 6) (fun () -> Lifecycle.retire lc ~tenant:id));
  at sys (Time_ns.ms 8 + Time_ns.us 200) (fun () ->
      Lifecycle.admit_with_backoff lc ~vcpus:2 (dyn_spec 1)
        ~on_admitted:(fun id ->
          spawn_work sys ~tenant:id ~count:2 ~work:(Time_ns.ms 1) ~tag:"ref";
          at sys (Time_ns.ms 8) (fun () -> Lifecycle.retire lc ~tenant:id))
        ~on_abandoned:(fun _ -> ()))

let drive_chaos sys lc inj ~until =
  let tc = Option.get (System.taichi sys) in
  Injector.attach_table inj (Taichi.state_table tc);
  let probe = Taichi.hw_probe tc in
  Hw_probe.set_suppressor probe
    (Some (fun ~core -> Injector.probe_suppress inj ~core));
  Injector.set_probe_misfire inj (fun ~core -> Hw_probe.misfire probe ~core);
  let hang_lock = Task.spinlock "churn-dev" in
  let hangs = ref 0 in
  Injector.set_cp_hang inj (fun ~hold ->
      incr hangs;
      System.spawn_cp sys (hang_task ~lock:hang_lock ~hold ~n:!hangs));
  let client = System.client sys in
  let dp_cores = Array.of_list (System.dp_cores sys) in
  let burst_rng = Rng.split (System.rng sys) "churn-burst" in
  Injector.set_dp_burst inj (fun ~size ->
      for _ = 1 to size do
        let core = dp_cores.(Rng.int burst_rng (Array.length dp_cores)) in
        Client.submit_background client ~kind:Packet.Net_rx ~size:1400 ~core
      done);
  (* The three churn fault classes. [live] is this cell's view of the
     dynamic population (scoped to the closure — no module state). *)
  let next = ref 0 and live = ref [] in
  let fresh () =
    let i = !next in
    incr next;
    dyn_spec i
  in
  Injector.set_churn_arrive inj (fun () ->
      Lifecycle.admit_with_backoff lc (fresh ())
        ~on_admitted:(fun id ->
          live := !live @ [ id ];
          spawn_work sys ~tenant:id ~count:2 ~work:(Time_ns.ms 1) ~tag:"arr")
        ~on_abandoned:(fun _ -> ()));
  Injector.set_churn_depart inj (fun () ->
      match !live with
      | [] -> ()
      | id :: rest ->
          live := rest;
          (* Departure mid-CP-storm: pile work on, then retire into it. *)
          spawn_work sys ~tenant:id ~count:3 ~work:(Time_ns.ms 3) ~tag:"dep";
          at sys (Time_ns.us 200) (fun () -> Lifecycle.retire lc ~tenant:id));
  Injector.set_churn_overrun inj (fun () ->
      match Lifecycle.admit lc (fresh ()) with
      | Error _ -> ()
      | Ok id ->
          (* One task sized far past the drain window, retired under it:
             the graceful poll cannot win, the escalation must. *)
          spawn_work sys ~tenant:id ~count:1 ~work:(Time_ns.ms 8) ~tag:"ovr";
          at sys (Time_ns.us 200) (fun () -> Lifecycle.retire lc ~tenant:id));
  Injector.arm inj ~until

(* --- one cell ------------------------------------------------------------- *)

let measure ctx ~seed ~scale ~key ~scenario =
  let config =
    let c = Config.no_hw_probe Config.default in
    let c = Config.with_tenants c boot_specs in
    let c = Config.with_overload c in
    let c = if scenario = Chaos then Config.resilient c else c in
    Config.with_churn c
  in
  let injector = ref None in
  let prepare machine =
    if scenario = Chaos then begin
      let rng = Rng.split (Rng.create ~seed) "churn-chaos" in
      injector :=
        Some
          (Injector.create ~rng ~machine
             ~boot_vector:Kernel.default_config.Kernel.boot_vector
             Injector.churn)
    end
  in
  with_system ~ctx ~prepare ~seed (Policy.Taichi config) (fun sys ->
      let sim = System.sim sys in
      let counters = Machine.counters (System.machine sys) in
      let lc = lifecycle_of sys in
      let dur =
        if scenario = Chaos then max (Time_ns.ms 40) (scaled scale (Time_ns.ms 40))
        else max (Time_ns.ms 60) (scaled scale (Time_ns.ms 80))
      in
      let grace = Time_ns.ms 12 in
      let until = Sim.now sim + dur in
      (* Baseline: both boot tenants carry light DP traffic and a light CP
         population for the whole window — the victims whose p99 the
         contract protects. *)
      start_bg_dp sys ~target:0.25 ~storage_target:0.12 ~until;
      List.iter
        (fun tid -> spawn_work sys ~tenant:tid ~count:3 ~work:(dur / 16)
             ~tag:"boot")
        [ 0; 1 ];
      (match scenario with
      | Wave -> drive_wave sys lc
      | Depart -> drive_depart sys lc
      | Flap -> drive_flap sys lc
      | Refusal -> drive_refusal sys lc
      | Chaos -> drive_chaos sys lc (Option.get !injector) ~until);
      (* The grace window is fault- and churn-free: started drains finish
         (forced ones need the window plus a reap), the governor ladder
         relaxes, the books settle. *)
      System.advance sys (dur + grace);
      let get = Counters.get counters in
      let table = System.tenants sys in
      let victims =
        List.map
          (fun tid ->
            let tenant = Tenant.get table tid in
            let hist = victim_hist sys ~tenant:tid in
            let packets = Histogram.count hist in
            {
              vname = tenant.Tenant.name;
              packets;
              p99_us =
                (if packets = 0 then 0.0
                 else float_of_int (Histogram.percentile hist 99.0) /. 1e3);
              bound_us = float_of_int tenant.Tenant.dp_p99_bound /. 1e3;
            })
          [ 0; 1 ]
      in
      {
        key;
        scenario;
        admitted = get "churn.admitted";
        refused = get "churn.admit_refused";
        retries = get "churn.admit_retries";
        abandoned = get "churn.admit_abandoned";
        drains = get "churn.drains";
        forced = get "churn.drain_forced";
        forced_receipts = get "recovery.drain.forced";
        retired = get "churn.retired";
        spawn_refused = get "churn.spawn_refused";
        discarded = get "churn.drain_discarded_pkts";
        stragglers = get "sched.grant_after_retire";
        pool_end = Lifecycle.pool_size lc;
        floats_end = Lifecycle.free_services lc;
        population = Tenant.count table;
        victims;
        fingerprint =
          fingerprint_of sys
            (List.map
               (fun v -> Printf.sprintf "p99.%s=%.3f" v.vname v.p99_us)
               victims);
      })

(* --- oracles ------------------------------------------------------------- *)

let spares = 4 (* Config.with_churn defaults, pinned by the pool oracles *)
let floats = 2

let check_oracles cells repeat_fp =
  let fail fmt = Printf.ksprintf failwith fmt in
  List.iter
    (fun c ->
      (* Universal: every drain that started also finished — retirement
         is never left half-done, however it was provoked. *)
      if c.drains <> c.retired then
        fail "exp_churn[%s]: %d drains started but %d retirements completed"
          c.key c.drains c.retired;
      if c.retired > 0 && (c.pool_end <> spares || c.floats_end <> floats)
         && c.scenario <> Chaos
      then
        fail
          "exp_churn[%s]: pool not whole after retirement (vcpus %d/%d, \
           services %d/%d)"
          c.key c.pool_end spares c.floats_end floats;
      (* Victim contracts hold in every non-chaos cell. *)
      if c.scenario <> Chaos then
        List.iter
          (fun v ->
            if v.packets = 0 then
              fail "exp_churn[%s]: victim %s observed no DP traffic" c.key
                v.vname;
            if v.p99_us > v.bound_us then
              fail
                "exp_churn[%s]: churn moved victim %s's DP p99 to %.1fus, \
                 past its %.1fus contract"
                c.key v.vname v.p99_us v.bound_us)
          c.victims;
      match c.scenario with
      | Wave ->
          if c.admitted <> 2 || c.retired <> 2 then
            fail "exp_churn[%s]: expected 2 admit + 2 retire, got %d + %d"
              c.key c.admitted c.retired;
          if c.abandoned <> 0 then
            fail
              "exp_churn[%s]: %d arrivals abandoned — backpressure backoff \
               did not carry the wave through"
              c.key c.abandoned;
          if c.forced <> 0 then
            fail "exp_churn[%s]: %d quiet-tenant drains were forced" c.key
              c.forced;
          if c.population <> 4 then
            fail "exp_churn[%s]: population %d, expected 4 (dense, unreused)"
              c.key c.population
      | Depart ->
          if c.admitted <> 1 || c.retired <> 1 then
            fail "exp_churn[%s]: expected 1 admit + 1 retire, got %d + %d"
              c.key c.admitted c.retired;
          if c.forced < 1 then
            fail
              "exp_churn[%s]: a mid-storm departure drained gracefully — \
               the cell is not stressful enough to test escalation"
              c.key;
          if c.forced_receipts < 1 then
            fail "exp_churn[%s]: forced drain left no recovery receipt" c.key;
          if c.spawn_refused < 1 then
            fail
              "exp_churn[%s]: the post-retire spawn was not refused by the \
               drain gate"
              c.key
      | Flap ->
          if c.admitted <> 4 || c.retired <> 4 then
            fail "exp_churn[%s]: expected 4 flaps, got %d admit / %d retire"
              c.key c.admitted c.retired;
          if c.population <> 6 then
            fail "exp_churn[%s]: population %d, expected 6 (ids never reused)"
              c.key c.population
      | Refusal ->
          if c.refused < 1 then
            fail
              "exp_churn[%s]: pool exhaustion never refused an admission"
              c.key;
          if c.retries < 1 then
            fail "exp_churn[%s]: the refusal was never retried" c.key;
          if c.abandoned <> 0 then
            fail
              "exp_churn[%s]: %d admissions abandoned — the departure did \
               not free capacity inside the retry budget"
              c.key c.abandoned;
          if c.admitted <> 2 then
            fail "exp_churn[%s]: expected both tenants admitted, got %d"
              c.key c.admitted
      | Chaos ->
          if c.admitted < 1 then
            fail "exp_churn[%s]: chaos never admitted a tenant" c.key;
          if c.forced < 1 then
            fail
              "exp_churn[%s]: no drain-window overrun was forced under the \
               churn fault profile"
              c.key)
    cells;
  match repeat_fp with
  | Some (first, second) when first <> second ->
      failwith
        (Printf.sprintf
           "exp_churn: repeat run at the same seed diverged (%s vs %s)" first
           second)
  | _ -> ()

(* --- the grid ------------------------------------------------------------ *)

let grid =
  let cell key label v = ({ Exp_desc.key; label }, v) in
  [
    cell "steady-wave" "two arrival waves, graceful departures"
      (`Point Wave);
    cell "steady-depart" "departure under saturation (forced drain)"
      (`Point Depart);
    cell "flap-thrash" "4 rapid admit/retire flaps" (`Point Flap);
    cell "flap-refusal" "pool exhaustion, backoff across a departure"
      (`Point Refusal);
    cell "chaos-churn" "churn fault profile over flaky background faults"
      (`Point Chaos);
    cell "repeat-flap" "determinism repeat: 4 rapid flaps" `Repeat;
  ]

(* The CI matrix pins one profile per job; the CLI turns --churn-profile /
   CHURN_PROFILE into a cell filter over these keys (the repeat cell rides
   with the flap profile). *)
let profile_filter setting cell =
  let prefix s =
    let k = cell.Exp_desc.key in
    let n = String.length s in
    String.length k >= n && String.sub k 0 n = s
  in
  match setting with
  | "steady" -> prefix "steady-"
  | "flap" -> prefix "flap-" || prefix "repeat-flap"
  | "chaos" -> prefix "chaos-"
  | p -> failwith (Printf.sprintf "exp_churn: unknown churn profile %S" p)

let churn =
  Exp_desc.make ~name:"churn"
    ~title:
      "CHURN: live tenant admit/retire x {steady waves, flap/thrash, \
       chaos-under-churn} (drain, refusal, isolation and zero-orphan \
       oracles)"
    ~description:
      "Dynamic tenant population under fire: refusable admission with \
       capped backoff, graceful drain with watchdog-forced escalation, \
       pool restoration, victim p99 contracts and the zero-orphan drain \
       audit, including a chaos-under-churn fault profile"
    ~cells:(List.map fst grid)
    ~run_cell:(fun ctx ~seed ~scale cell ->
      match
        List.assoc cell.Exp_desc.key
          (List.map (fun (c, v) -> (c.Exp_desc.key, v)) grid)
      with
      | `Point scenario ->
          Run_ctx.printf ctx "\n-- %s: %s (seed %d)\n" cell.Exp_desc.key
            cell.Exp_desc.label seed;
          measure ctx ~seed ~scale ~key:cell.Exp_desc.key ~scenario
      | `Repeat ->
          Run_ctx.printf ctx
            "\n-- determinism check: repeating flap-thrash (seed %d)\n" seed;
          measure ctx ~seed ~scale ~key:"repeat-flap" ~scenario:Flap)
    ~summarize:(fun ctx ~seed:_ ~scale:_ results ->
      let outcome key =
        List.assoc_opt key
          (List.map (fun (c, r) -> (c.Exp_desc.key, r)) results)
      in
      let cells =
        List.filter_map
          (fun (c, r) ->
            if c.Exp_desc.key = "repeat-flap" then None else Some r)
          results
      in
      let table =
        Table.create
          ~columns:
            [
              ("cell", Table.Left);
              ("admit", Table.Right);
              ("refused", Table.Right);
              ("retries", Table.Right);
              ("drains", Table.Right);
              ("forced", Table.Right);
              ("retired", Table.Right);
              ("discard", Table.Right);
              ("straggle", Table.Right);
              ("pool", Table.Right);
              ("pop", Table.Right);
              ("p99_us", Table.Right);
            ]
      in
      List.iter
        (fun c ->
          let worst =
            List.fold_left (fun acc v -> Float.max acc v.p99_us) 0.0 c.victims
          in
          Table.add_row table
            [
              c.key;
              string_of_int c.admitted;
              string_of_int c.refused;
              string_of_int c.retries;
              string_of_int c.drains;
              string_of_int c.forced;
              string_of_int c.retired;
              string_of_int c.discarded;
              string_of_int c.stragglers;
              Printf.sprintf "%d+%d" c.pool_end c.floats_end;
              string_of_int c.population;
              Printf.sprintf "%.1f" worst;
            ])
        cells;
      Run_ctx.print_table ctx table;
      let repeat_fp =
        match (outcome "flap-thrash", outcome "repeat-flap") with
        | Some first, Some again -> Some (first.fingerprint, again.fingerprint)
        | _ -> None
      in
      check_oracles cells repeat_fp;
      Run_ctx.printf ctx
        "\nEvery drain completed (forced only where provoked), refusals \
         were retried across departures, victims kept their p99 contracts \
         and retired tenants left zero orphaned state.\n")

(** Declarative experiment descriptors: the registry's unit of work.

    A descriptor exposes its grid shape ([cells]) instead of hiding it in
    driver loops, which is what lets {!Sweep} fan cells out across
    domains and lets the CLI list cell counts or filter sub-matrices
    without running anything. *)

type cell = {
  key : string;  (** unique within the experiment; the canonical sort key *)
  label : string;  (** human-readable, for [--list] and progress output *)
}

type t =
  | T : {
      name : string;  (** registry id, e.g. ["fig17"] *)
      title : string;  (** banner line printed before the cells run *)
      description : string;  (** one-liner for [--list] *)
      cells : cell list;
      run_cell : Run_ctx.t -> seed:int -> scale:float -> cell -> 'r;
          (** evaluate one grid point. Must not touch shared mutable state:
              all output goes through the context, all harvest through its
              sink. Runs on an arbitrary domain. *)
      summarize :
        Run_ctx.t -> seed:int -> scale:float -> (cell * 'r) list -> unit;
          (** render tables / check cross-cell oracles, given the results
              of every cell that ran, in cell order. Always executes on
              the coordinating domain after all cells finished. *)
    }
      -> t

val make :
  name:string ->
  title:string ->
  description:string ->
  cells:cell list ->
  run_cell:(Run_ctx.t -> seed:int -> scale:float -> cell -> 'r) ->
  summarize:(Run_ctx.t -> seed:int -> scale:float -> (cell * 'r) list -> unit) ->
  t
(** Pack a descriptor. Raises [Invalid_argument] on duplicate cell keys. *)

val single :
  name:string ->
  title:string ->
  description:string ->
  (Run_ctx.t -> seed:int -> scale:float -> unit) ->
  t
(** A one-cell experiment whose driver prints everything itself (through
    the context). *)

val name : t -> string
val title : t -> string
val description : t -> string
val cells : t -> cell list
val cell_count : t -> int

open Taichi_engine
open Taichi_os
open Taichi_metrics
open Taichi_controlplane
open Exp_common

let param table cell = List.assoc cell.Exp_desc.key table

(* --- Fig 11 --------------------------------------------------------------- *)

let synth_run ctx sys ~concurrency =
  let rng = Rng.split (System.rng sys) "fig11" in
  let locks = [ Task.spinlock "drv-a"; Task.spinlock "drv-b" ] in
  let tasks =
    Synth_cp.make_batch ~rng ~params:Synth_cp.default_params ~locks ~affinity:[]
      ~count:concurrency ()
  in
  List.iter (fun task -> System.spawn_cp sys task) tasks;
  let ok = System.run_until_tasks_done sys tasks ~limit:(Time_ns.sec 30) in
  if not ok then
    Run_ctx.printf ctx "  (warning: synth_cp run hit the time limit)\n";
  avg_turnaround_ms tasks

let concurrencies = [ 1; 2; 4; 8; 16; 32 ]

(* The paper pins data-plane utilization at "30%, consistent with the
   production p99 case": production load whose per-second p99 is 30% has a
   mean near 12% (Fig 3), which is what the bursty generator targets — its
   on-phase seconds run at ~25-30%. *)
let fig11_dp_target = 0.12

let policy_tag = function Policy.Static_partition -> "base" | _ -> "taichi"

let fig11_grid =
  List.concat_map
    (fun conc ->
      List.map
        (fun policy ->
          ( {
              Exp_desc.key = Printf.sprintf "c%d-%s" conc (policy_tag policy);
              label =
                Printf.sprintf "concurrency %d, %s" conc (Policy.name policy);
            },
            (conc, policy) ))
        [ Policy.Static_partition; Policy.taichi_default ])
    concurrencies

let fig11 =
  Exp_desc.make ~name:"fig11"
    ~title:"Figure 11: synth_cp execution time vs concurrency (DP at 30%)"
    ~description:
      "Average synth_cp execution time vs concurrency, baseline vs Tai Chi, \
       with the data plane held at 30% utilization"
    ~cells:(List.map fst fig11_grid)
    ~run_cell:(fun ctx ~seed ~scale:_ cell ->
      let conc, policy =
        param (List.map (fun (c, p) -> (c.Exp_desc.key, p)) fig11_grid) cell
      in
      with_system ~ctx ~seed policy (fun sys ->
          let until = Sim.now (System.sim sys) + Time_ns.sec 30 in
          start_bg_dp sys ~target:fig11_dp_target ~until;
          (* Production CP CPUs are never dedicated to the benchmark: they
             carry the standing 300-500-task ecosystem (§3.2). *)
          start_cp_ecosystem sys ();
          synth_run ctx sys ~concurrency:conc))
    ~summarize:(fun ctx ~seed:_ ~scale:_ results ->
      let ms key =
        List.assoc key
          (List.map (fun (c, r) -> (c.Exp_desc.key, r)) results)
      in
      let table =
        Table.create
          ~columns:
            [
              ("concurrency", Table.Right);
              ("baseline_ms", Table.Right);
              ("taichi_ms", Table.Right);
              ("speedup", Table.Right);
            ]
      in
      List.iter
        (fun conc ->
          let base = ms (Printf.sprintf "c%d-base" conc) in
          let taichi = ms (Printf.sprintf "c%d-taichi" conc) in
          Table.add_row table
            [
              string_of_int conc;
              Table.cell_f base;
              Table.cell_f taichi;
              Printf.sprintf "%.2fx" (base /. Float.max 0.001 taichi);
            ])
        concurrencies;
      Run_ctx.print_table ctx table;
      Run_ctx.printf ctx "Paper shape: ~4x faster at 32 concurrent tasks.\n")

(* --- Fig 17 --------------------------------------------------------------- *)

let storm sys ~density =
  let sim = System.sim sys in
  let rng = Rng.split (System.rng sys) "fig17" in
  let locks =
    List.init 8 (fun i -> Task.spinlock (Printf.sprintf "device-driver-%d" i))
  in
  let recorder = Recorder.create "vm.startup" in
  let params =
    Vm_lifecycle.at_density ~base:(Vm_lifecycle.default_params ~rng) density
  in
  let params =
    {
      params with
      Vm_lifecycle.device =
        {
          params.Vm_lifecycle.device with
          Device_mgmt.dpcp_roundtrip = System.dpcp_roundtrip sys;
        };
    }
  in
  let n_vms = max 1 (int_of_float (10.0 *. density)) in
  let tasks =
    List.init n_vms (fun i ->
        Vm_lifecycle.startup_task ~sim ~rng ~params ~locks ~affinity:[]
          ~name:(Printf.sprintf "vm-%d" i)
          ~recorder ())
  in
  List.iter (fun task -> System.spawn_cp sys task) tasks;
  ignore (System.run_until_tasks_done sys tasks ~limit:(Time_ns.sec 60));
  Recorder.mean recorder /. 1e6

let fig17_densities = [ 1.0; 2.0; 3.0; 4.0 ]

let fig17_grid =
  List.concat_map
    (fun density ->
      List.map
        (fun policy ->
          ( {
              Exp_desc.key =
                Printf.sprintf "d%.0f-%s" density (policy_tag policy);
              label =
                Printf.sprintf "density %.0fx, %s" density (Policy.name policy);
            },
            (density, policy) ))
        [ Policy.Static_partition; Policy.taichi_default ])
    fig17_densities

let fig17 =
  Exp_desc.make ~name:"fig17"
    ~title:"Figure 17: VM startup vs density, with and without Tai Chi"
    ~description:
      "Average VM startup time vs instance density, with and without \
       Tai Chi, normalized to the CP SLO"
    ~cells:(List.map fst fig17_grid)
    ~run_cell:(fun ctx ~seed ~scale:_ cell ->
      let density, policy =
        param (List.map (fun (c, p) -> (c.Exp_desc.key, p)) fig17_grid) cell
      in
      with_system ~ctx ~seed policy (fun sys ->
          let until = Sim.now (System.sim sys) + Time_ns.sec 60 in
          start_bg_dp sys ~target:fig11_dp_target ~until;
          start_cp_ecosystem sys ();
          storm sys ~density))
    ~summarize:(fun ctx ~seed:_ ~scale:_ results ->
      let ms key =
        List.assoc key
          (List.map (fun (c, r) -> (c.Exp_desc.key, r)) results)
      in
      let slo_ms = Time_ns.to_ms_f Vm_lifecycle.slo in
      let table =
        Table.create
          ~columns:
            [
              ("density", Table.Right);
              ("baseline_ms", Table.Right);
              ("baseline/SLO", Table.Right);
              ("taichi_ms", Table.Right);
              ("taichi/SLO", Table.Right);
              ("reduction", Table.Right);
            ]
      in
      List.iter
        (fun density ->
          let base = ms (Printf.sprintf "d%.0f-base" density) in
          let taichi = ms (Printf.sprintf "d%.0f-taichi" density) in
          Table.add_row table
            [
              Printf.sprintf "%.0fx" density;
              Table.cell_f base;
              Printf.sprintf "%.2fx" (base /. slo_ms);
              Table.cell_f taichi;
              Printf.sprintf "%.2fx" (taichi /. slo_ms);
              Printf.sprintf "%.2fx" (base /. Float.max 0.001 taichi);
            ])
        fig17_densities;
      Run_ctx.print_table ctx table;
      Run_ctx.printf ctx "Paper shape: ~3.1x startup reduction at high density.\n")

open Taichi_engine
open Taichi_hw
open Taichi_os
open Taichi_accel
open Taichi_workloads
open Taichi_controlplane

let scaled s d = max (Time_ns.ms 10) (int_of_float (float_of_int d *. s))

(* --- trace export -------------------------------------------------------- *)

(* The experiment drivers build their systems internally, so [with_system]
   is the one chokepoint where tracing is switched on and the finished run
   harvested. Everything flows through the run context: the CLI and the
   bench harness build one, the sweep derives a private one per cell, and
   the harvest lands in the context's sink — never in shared refs.

   Invariant (re-audited for the multi-tenant sweeps): this module holds
   NO module-level mutable state — every ref, table and RNG below is
   created inside the function that uses it and scoped to one System.t.
   That is what lets [Sweep.run --jobs N] run cells on separate domains
   with byte-identical output; keep it that way when adding helpers. *)

let harvest_run ~ctx ~seed sys =
  let machine = System.machine sys in
  let table = System.tenants sys in
  let tenants =
    if Taichi_core.Tenant.is_multi table then Taichi_core.Tenant.ids table
    else []
  in
  let run =
    Taichi_metrics.Export.make_run ~tenants
      ~experiment:(Run_ctx.experiment ctx)
      ~policy:(Policy.name (System.policy sys))
      ~seed
      ~duration:(Sim.now (System.sim sys))
      ~cores:(Machine.physical_cores machine)
      ~counters:(Counters.dump (Machine.counters machine))
      (Machine.trace machine)
  in
  Run_ctx.harvest ctx run

(* --- post-run audit ------------------------------------------------------ *)

(* In [Abort] mode an audit violation kills the run (the behaviour tests
   and the bench harness rely on); the CLI runs in [Collect] mode so a
   batch of experiments completes, every failure is reported and the
   process exits with a distinct status code. *)

let check_audit ~ctx ~seed sys =
  let illegal =
    Counters.get (Machine.counters (System.machine sys)) "core_state.illegal"
  in
  let violations =
    System.audit sys
    @
    if illegal > 0 then
      [ Printf.sprintf "core_state.illegal counter is %d" illegal ]
    else []
  in
  match violations with
  | [] -> ()
  | violations -> (
      match Run_ctx.audit_mode ctx with
      | Run_ctx.Collect ->
          Run_ctx.record_audit_failure ctx
            { Run_ctx.experiment = Run_ctx.experiment ctx; seed; violations }
      | Run_ctx.Abort ->
          failwith
            (Printf.sprintf "Core_state.audit failed after %s (seed %d): %s"
               (Run_ctx.experiment ctx) seed
               (String.concat "; " violations)))

let with_system ?layout ?prepare ?(ctx = Run_ctx.default) ~seed policy f =
  let sys = System.create ~ctx ~seed ?layout ?prepare policy in
  System.warmup sys;
  let result = f sys in
  (* Every experiment run ends with a machine-wide coherence check: the
     authoritative core states, the kernel's backing view, the scheduler's
     placement maps and the accelerator mirror must all agree. *)
  check_audit ~ctx ~seed sys;
  let sim = System.sim sys in
  Run_ctx.record_engine_events ctx
    ~scheduled:(Sim.events_scheduled sim)
    ~processed:(Sim.events_processed sim);
  if Run_ctx.tracing ctx then harvest_run ~ctx ~seed sys;
  result

let start_bg_dp ?storage_target sys ~target ~until =
  let client = System.client sys in
  let rng = Rng.split (System.rng sys) "bg-dp" in
  let storage_target = Option.value storage_target ~default:target in
  Bgload.start client rng
    ~params:(Bgload.default_params ~target_util:target)
    ~cores:(System.net_cores sys) ~kind:Packet.Net_rx ~size:1400 ~until;
  Bgload.start client rng
    ~params:
      {
        (Bgload.default_params ~target_util:storage_target) with
        Bgload.per_packet_est = Time_ns.ns 5200;
      }
    ~cores:(System.storage_cores sys) ~kind:Packet.Storage_read ~size:4096
    ~until

(* Health monitors and log flushers are the admissions that must never be
   throttled: they are what tells the operator the NIC is overloaded. *)
let start_bg_cp sys =
  let rng = Rng.split (System.rng sys) "bg-cp" in
  let tasks = Monitor.standard_background ~rng ~affinity:[] () in
  List.iter
    (fun task -> System.spawn_cp ~cls:Taichi_core.Overload.Critical sys task)
    tasks

let start_cp_ecosystem sys ?(tasks = 48) ?(target_util = 1.8) () =
  let rng = Rng.split (System.rng sys) "cp-eco" in
  let eco =
    Monitor.production_ecosystem ~rng ~affinity:[] ~tasks ~target_util ()
  in
  List.iter (fun task -> System.spawn_cp sys task) eco

let start_cp_churn sys ~period ~work ~until =
  let sim = System.sim sys in
  let rng = Rng.split (System.rng sys) "cp-churn" in
  let params = { Synth_cp.default_params with total_work = work; phases = 3 } in
  let lock = Task.spinlock "churn-dev" in
  let counter = ref 0 in
  let held_h =
    Counters.handle
      (Taichi_hw.Machine.counters (System.machine sys))
      "overload.client_held.churn"
  in
  let rec tick () =
    if Sim.now sim < until then begin
      (* Churn is housekeeping: a well-behaved deferrable client watches
         the governor's backpressure signal and holds its submissions
         while the ladder is at Defer or deeper (they are counted, not
         silently lost — the post-storm report shows what the brownout
         cost). *)
      if System.cp_backpressure sys then
        Counters.incr_h
          (Taichi_hw.Machine.counters (System.machine sys))
          held_h
      else begin
        incr counter;
        let task =
          Synth_cp.make ~rng ~params ~locks:[ lock ] ~affinity:[]
            ~name:(Printf.sprintf "churn-%d" !counter)
            ()
        in
        System.spawn_cp ~cls:Taichi_core.Overload.Deferrable sys task
      end;
      ignore (Sim.after sim period tick)
    end
  in
  tick ()

let avg_turnaround_ms tasks =
  let finished = List.filter_map Task.turnaround tasks in
  match finished with
  | [] -> 0.0
  | _ ->
      let sum = List.fold_left ( + ) 0 finished in
      Time_ns.to_ms_f (sum / List.length finished)

let overhead_pct ~baseline ~measured =
  if baseline = 0.0 then 0.0 else (baseline -. measured) /. baseline *. 100.0

open Taichi_engine
open Taichi_hw
open Taichi_os
open Taichi_accel
open Taichi_workloads
open Taichi_controlplane

let scaled s d = max (Time_ns.ms 10) (int_of_float (float_of_int d *. s))

(* --- trace export -------------------------------------------------------- *)

(* The experiment drivers build their systems internally, so [with_system]
   is the one chokepoint where tracing can be switched on and the finished
   run harvested. The CLI and the bench harness set the flag and the
   current experiment id, then collect the accumulated runs at the end. *)

let tracing = ref false
let experiment_name = ref "unnamed"
let collected : Taichi_metrics.Export.run list ref = ref []

let set_tracing on = tracing := on
let set_experiment name = experiment_name := name
let reset_trace_runs () = collected := []
let trace_runs () = List.rev !collected

let harvest_run ~seed sys =
  let machine = System.machine sys in
  let run =
    Taichi_metrics.Export.make_run ~experiment:!experiment_name
      ~policy:(Policy.name (System.policy sys))
      ~seed
      ~duration:(Sim.now (System.sim sys))
      ~cores:(Machine.physical_cores machine)
      ~counters:(Counters.dump (Machine.counters machine))
      (Machine.trace machine)
  in
  collected := run :: !collected

(* --- post-run audit ------------------------------------------------------ *)

(* By default an audit violation aborts the process (the behaviour tests
   and the bench harness rely on). The CLI instead switches to collect
   mode so it can run several experiments, report every failure and exit
   with a distinct status code. *)

type audit_failure = { experiment : string; seed : int; violations : string list }

let audit_collect = ref false
let audit_failed : audit_failure list ref = ref []

let set_audit_collect on = audit_collect := on
let reset_audit_failures () = audit_failed := []
let audit_failures () = List.rev !audit_failed

let check_audit ~seed sys =
  let illegal =
    Counters.get (Machine.counters (System.machine sys)) "core_state.illegal"
  in
  let violations =
    System.audit sys
    @
    if illegal > 0 then
      [ Printf.sprintf "core_state.illegal counter is %d" illegal ]
    else []
  in
  match violations with
  | [] -> ()
  | violations ->
      if !audit_collect then
        audit_failed :=
          { experiment = !experiment_name; seed; violations } :: !audit_failed
      else
        failwith
          (Printf.sprintf "Core_state.audit failed after %s (seed %d): %s"
             !experiment_name seed
             (String.concat "; " violations))

let with_system ?layout ?prepare ~seed policy f =
  let sys = System.create ~seed ?layout ?prepare policy in
  if !tracing then Trace.set_enabled (Machine.trace (System.machine sys)) true;
  System.warmup sys;
  let result = f sys in
  (* Every experiment run ends with a machine-wide coherence check: the
     authoritative core states, the kernel's backing view, the scheduler's
     placement maps and the accelerator mirror must all agree. *)
  check_audit ~seed sys;
  if !tracing then harvest_run ~seed sys;
  result

let start_bg_dp ?storage_target sys ~target ~until =
  let client = System.client sys in
  let rng = Rng.split (System.rng sys) "bg-dp" in
  let storage_target = Option.value storage_target ~default:target in
  Bgload.start client rng
    ~params:(Bgload.default_params ~target_util:target)
    ~cores:(System.net_cores sys) ~kind:Packet.Net_rx ~size:1400 ~until;
  Bgload.start client rng
    ~params:
      {
        (Bgload.default_params ~target_util:storage_target) with
        Bgload.per_packet_est = Time_ns.ns 5200;
      }
    ~cores:(System.storage_cores sys) ~kind:Packet.Storage_read ~size:4096
    ~until

(* Health monitors and log flushers are the admissions that must never be
   throttled: they are what tells the operator the NIC is overloaded. *)
let start_bg_cp sys =
  let rng = Rng.split (System.rng sys) "bg-cp" in
  let tasks = Monitor.standard_background ~rng ~affinity:[] () in
  List.iter
    (fun task -> System.spawn_cp ~cls:Taichi_core.Overload.Critical sys task)
    tasks

let start_cp_ecosystem sys ?(tasks = 48) ?(target_util = 1.8) () =
  let rng = Rng.split (System.rng sys) "cp-eco" in
  let eco =
    Monitor.production_ecosystem ~rng ~affinity:[] ~tasks ~target_util ()
  in
  List.iter (fun task -> System.spawn_cp sys task) eco

let start_cp_churn sys ~period ~work ~until =
  let sim = System.sim sys in
  let rng = Rng.split (System.rng sys) "cp-churn" in
  let params = { Synth_cp.default_params with total_work = work; phases = 3 } in
  let lock = Task.spinlock "churn-dev" in
  let counter = ref 0 in
  let rec tick () =
    if Sim.now sim < until then begin
      (* Churn is housekeeping: a well-behaved deferrable client watches
         the governor's backpressure signal and holds its submissions
         while the ladder is at Defer or deeper (they are counted, not
         silently lost — the post-storm report shows what the brownout
         cost). *)
      if System.cp_backpressure sys then
        Counters.incr
          (Taichi_hw.Machine.counters (System.machine sys))
          "overload.client_held.churn"
      else begin
        incr counter;
        let task =
          Synth_cp.make ~rng ~params ~locks:[ lock ] ~affinity:[]
            ~name:(Printf.sprintf "churn-%d" !counter)
            ()
        in
        System.spawn_cp ~cls:Taichi_core.Overload.Deferrable sys task
      end;
      ignore (Sim.after sim period tick)
    end
  in
  tick ()

let avg_turnaround_ms tasks =
  let finished = List.filter_map Task.turnaround tasks in
  match finished with
  | [] -> 0.0
  | _ ->
      let sum = List.fold_left ( + ) 0 finished in
      Time_ns.to_ms_f (sum / List.length finished)

let overhead_pct ~baseline ~measured =
  if baseline = 0.0 then 0.0 else (baseline -. measured) /. baseline *. 100.0

let banner title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* Domain-parallel execution of an experiment descriptor's cell grid.

   Determinism contract: a sweep at --jobs N produces byte-identical
   stdout and byte-identical harvested runs to --jobs 1 at the same
   seeds. The pieces that make that true:

   - every cell runs against its own derived Run_ctx (private sink,
     private output buffer) on top of its own Sim/Machine/Rng universe,
     so nothing it computes depends on what other cells are doing;
   - buffers are flushed and sinks absorbed in cell (declaration) order,
     never in completion order;
   - a failing cell does not short-circuit the grid — every cell runs,
     then the first failure in cell order is re-raised. Sequential runs
     behave the same way, so jobs never changes which cells executed. *)

let run ?(jobs = 1) ?(filter = fun (_ : Exp_desc.cell) -> true) ctx
    (Exp_desc.T d) ~seed ~scale =
  let cells = Array.of_list (List.filter filter d.cells) in
  let n = Array.length cells in
  Run_ctx.banner ctx d.title;
  let ctxs = Array.map (fun _ -> Run_ctx.for_cell ctx) cells in
  let results = Array.make n None in
  let run_one i =
    results.(i) <-
      Some
        (try Ok (d.run_cell ctxs.(i) ~seed ~scale cells.(i))
         with e -> Error (e, Printexc.get_raw_backtrace ()))
  in
  let merge_one i =
    Run_ctx.flush_into ~into:ctx ctxs.(i);
    Run_ctx.absorb ~into:ctx ctxs.(i)
  in
  if jobs <= 1 || n <= 1 then
    (* Stream: run, print and merge cell by cell, in declaration order. *)
    for i = 0 to n - 1 do
      run_one i;
      merge_one i
    done
  else begin
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          run_one i;
          loop ()
        end
      in
      loop ()
    in
    let domains = List.init (min jobs n) (fun _ -> Domain.spawn worker) in
    List.iter Domain.join domains;
    for i = 0 to n - 1 do
      merge_one i
    done
  end;
  (* First failure in cell order wins, after every buffer reached stdout
     so the failing cell's own report is visible. *)
  Array.iter
    (function
      | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
      | Some (Ok _) | None -> ())
    results;
  let pairs =
    Array.to_list
      (Array.mapi
         (fun i r ->
           match r with
           | Some (Ok v) -> (cells.(i), v)
           | Some (Error _) | None -> assert false)
         results)
  in
  d.summarize ctx ~seed ~scale pairs

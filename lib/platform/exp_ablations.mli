(** Ablation benchmarks for the design choices DESIGN.md calls out:
    adaptive vCPU time slice, adaptive empty-poll threshold, and
    lock-context safe rescheduling. *)

val ablations : Exp_desc.t
(** Runs the same mixed CP/DP scenario under full Tai Chi and each
    single-mechanism-disabled variant (one cell per variant); reports CP
    throughput, DP latency, VM-exit pressure and safety counters. *)

open Taichi_engine
open Taichi_os
open Taichi_accel
open Taichi_metrics
open Taichi_workloads
open Taichi_controlplane
open Exp_common

(* Each descriptor keeps a typed side table keyed by cell key; [param]
   recovers the grid point from the cell the sweep hands back. *)
let param table cell = List.assoc cell.Exp_desc.key table

(* --- Fig 2 ---------------------------------------------------------------- *)

(* One density point: a storm of concurrent VM creations on the static
   baseline. Returns (avg CP execution ms, avg VM startup ms). *)
let startup_storm ctx sys ~rng ~density ~vms_base =
  let sim = System.sim sys in
  let locks =
    List.init 8 (fun i -> Task.spinlock (Printf.sprintf "device-driver-%d" i))
  in
  let recorder = Recorder.create "vm.startup" in
  let params =
    Vm_lifecycle.at_density
      ~base:(Vm_lifecycle.default_params ~rng)
      density
  in
  let params =
    {
      params with
      Vm_lifecycle.device =
        {
          params.Vm_lifecycle.device with
          Device_mgmt.dpcp_roundtrip = System.dpcp_roundtrip sys;
        };
    }
  in
  let n_vms = max 1 (int_of_float (vms_base *. density)) in
  let tasks =
    List.init n_vms (fun i ->
        Vm_lifecycle.startup_task ~sim ~rng ~params ~locks ~affinity:[]
          ~name:(Printf.sprintf "vm-start-%d" i)
          ~recorder ())
  in
  List.iter (fun task -> System.spawn_cp sys task) tasks;
  let ok = System.run_until_tasks_done sys tasks ~limit:(Time_ns.sec 60) in
  if not ok then Run_ctx.printf ctx "  (warning: storm did not finish in limit)\n";
  let cp_ms = avg_turnaround_ms tasks in
  let startup_ms = Recorder.mean recorder /. 1e6 in
  (cp_ms, startup_ms)

let densities = [ 1.0; 2.0; 3.0; 4.0 ]

let fig2_grid =
  List.map
    (fun density ->
      ( {
          Exp_desc.key = Printf.sprintf "%.0fx" density;
          label = Printf.sprintf "density %.0fx, baseline" density;
        },
        density ))
    densities

let fig2 =
  Exp_desc.make ~name:"fig2"
    ~title:
      "Figure 2: CP execution & VM startup vs instance density (baseline)"
    ~description:
      "CP execution time and VM startup degradation vs instance density on \
       the static baseline"
    ~cells:(List.map fst fig2_grid)
    ~run_cell:(fun ctx ~seed ~scale:_ cell ->
      let density = param (List.map (fun (c, d) -> (c.Exp_desc.key, d)) fig2_grid) cell in
      with_system ~ctx ~seed Policy.Static_partition (fun sys ->
          let until = Sim.now (System.sim sys) + Time_ns.sec 60 in
          start_bg_dp sys ~target:0.12 ~until;
          start_cp_ecosystem sys ();
          let rng = Rng.split (System.rng sys) "fig2" in
          let cp, st = startup_storm ctx sys ~rng ~density ~vms_base:10.0 in
          (density, cp, st)))
    ~summarize:(fun ctx ~seed:_ ~scale:_ results ->
      let results = List.map snd results in
      let slo_ms = Time_ns.to_ms_f Vm_lifecycle.slo in
      let base_cp = match results with (_, cp, _) :: _ -> cp | [] -> 1.0 in
      let table =
        Table.create
          ~columns:
            [
              ("density", Table.Right);
              ("cp_exec_ms", Table.Right);
              ("cp_exec_norm", Table.Right);
              ("vm_startup_ms", Table.Right);
              ("startup_vs_slo", Table.Right);
            ]
      in
      List.iter
        (fun (d, cp, st) ->
          Table.add_row table
            [
              Printf.sprintf "%.0fx" d;
              Table.cell_f cp;
              Printf.sprintf "%.1fx" (cp /. base_cp);
              Table.cell_f st;
              Printf.sprintf "%.2fx" (st /. slo_ms);
            ])
        results;
      Run_ctx.print_table ctx table;
      Run_ctx.printf ctx
        "Paper shape: CP exec ~8x worse and startup ~3.1x over SLO at 4x \
         density.\n")

(* --- Fig 3 ---------------------------------------------------------------- *)

let fig3 =
  Exp_desc.single ~name:"fig3"
    ~title:"Figure 3: CDF of data-plane CPU utilization"
    ~description:
      "CDF of per-second data-plane utilization from the regenerated \
       production population, plus a simulated validation point"
    (fun ctx ~seed ~scale ->
      let rng = Rng.create ~seed in
      let n = max 10_000 (int_of_float (1_200_000.0 *. scale)) in
      let samples = Production_trace.sample_utilizations rng ~n in
      let xs = [ 0.05; 0.10; 0.15; 0.20; 0.25; 0.325; 0.50; 0.75; 1.0 ] in
      let table =
        Table.create
          ~columns:[ ("util_below", Table.Right); ("fraction", Table.Right) ]
      in
      List.iter
        (fun (x, y) ->
          Table.add_row table
            [ Printf.sprintf "%.1f%%" (x *. 100.0); Printf.sprintf "%.4f" y ])
        (Production_trace.cdf_points samples ~xs);
      Run_ctx.print_table ctx table;
      Run_ctx.printf ctx
        "%d samples, mean util %.1f%%; fraction below 32.5%% = %.2f%% (paper: \
         99.68%%)\n"
        n
        (Production_trace.mean samples *. 100.0)
        (Production_trace.fraction_below samples 0.325 *. 100.0);
      (* Simulated validation: drive the modeled data plane at the trace mean
         and check the measured useful utilization agrees. *)
      with_system ~ctx ~seed Policy.Static_partition (fun sys ->
          let d = scaled scale (Time_ns.sec 2) in
          let until = Sim.now (System.sim sys) + d in
          start_bg_dp sys ~target:0.10 ~until;
          System.advance sys d;
          Run_ctx.printf ctx
            "Simulated validation: offered 10.0%%, measured useful DP \
             utilization %.1f%%\n"
            (System.dp_work_utilization sys *. 100.0)))

(* --- Fig 4 ---------------------------------------------------------------- *)

(* A CP task that alternates user compute with a long spinlock-protected
   non-preemptible routine, colocated with a latency-probed data-plane
   core. *)
let spike_scenario ctx ~seed policy =
  with_system ~ctx ~seed policy (fun sys ->
      let lock = Task.spinlock "fig4-driver" in
      let routine = Time_ns.ms 4 in
      let body =
        [ Program.compute (Time_ns.ms 1) ]
        @ Program.critical_section lock [ Program.kernel_routine routine ]
        @ [ Program.sleep (Time_ns.us 300) ]
      in
      let cp =
        Task.create ~name:"fig4-cp"
          ~step:(Program.to_step [ Program.Forever body ])
          ()
      in
      (match policy with
      | Policy.Naive_coschedule ->
          (* Pin onto the probed data-plane core, the naive colocation. *)
          cp.Task.affinity <- [ List.hd (System.net_cores sys) ]
      | _ -> ());
      System.spawn_cp sys cp;
      let probe_core = List.hd (System.net_cores sys) in
      let recorder = Recorder.create "fig4.rtt" in
      let rng = Rng.split (System.rng sys) "fig4" in
      Ping.run (System.client sys) rng
        ~params:
          { Ping.default_params with interval = Time_ns.us 200; count = 2000 }
        ~core:probe_core ~recorder;
      System.advance sys (Time_ns.ms 500);
      let dp = List.hd (System.net_services sys) in
      ( Ping.summarize recorder,
        Taichi_dataplane.Dp_service.spikes dp,
        Kernel.max_deferred_wait (System.kernel sys) ))

let fig4_grid =
  [
    ( { Exp_desc.key = "naive"; label = "naive co-schedule" },
      Policy.Naive_coschedule );
    ({ Exp_desc.key = "taichi"; label = "taichi" }, Policy.taichi_default);
  ]

let fig4 =
  Exp_desc.make ~name:"fig4"
    ~title:"Figure 4: latency spike from a non-preemptible CP routine"
    ~description:
      "Worst-case DP latency spike caused by a non-preemptible CP routine, \
       naive co-scheduling vs Tai Chi"
    ~cells:(List.map fst fig4_grid)
    ~run_cell:(fun ctx ~seed ~scale:_ cell ->
      let policy =
        param (List.map (fun (c, p) -> (c.Exp_desc.key, p)) fig4_grid) cell
      in
      spike_scenario ctx ~seed policy)
    ~summarize:(fun ctx ~seed:_ ~scale:_ results ->
      let get key =
        List.assoc key
          (List.map (fun (c, r) -> (c.Exp_desc.key, r)) results)
      in
      let naive, naive_spikes, naive_wait = get "naive" in
      let taichi, taichi_spikes, _ = get "taichi" in
      let table =
        Table.create
          ~columns:
            [
              ("scheduler", Table.Left);
              ("rtt_avg_us", Table.Right);
              ("rtt_max_us", Table.Right);
              ("spikes>100us", Table.Right);
            ]
      in
      Table.add_row table
        [
          "naive co-schedule";
          Table.cell_f naive.Ping.avg_us;
          Table.cell_f naive.Ping.max_us;
          string_of_int naive_spikes;
        ];
      Table.add_row table
        [
          "taichi";
          Table.cell_f taichi.Ping.avg_us;
          Table.cell_f taichi.Ping.max_us;
          string_of_int taichi_spikes;
        ];
      Run_ctx.print_table ctx table;
      Run_ctx.printf ctx
        "Naive worst reclaim wait (T2-T3 of Fig 4): %s; Tai Chi breaks the \
         routine via vCPU preemption.\n"
        (Time_ns.to_string naive_wait))

(* --- Fig 5 ---------------------------------------------------------------- *)

let fig5 =
  Exp_desc.single ~name:"fig5"
    ~title:"Figure 5: long non-preemptible routine durations"
    ~description:
      "Duration distribution of long non-preemptible kernel routines \
       (sampled population)"
    (fun ctx ~seed ~scale ->
      let rng = Rng.create ~seed in
      let sampler = Nonpreempt.create rng in
      let n = max 10_000 (int_of_float (456_000.0 *. scale)) in
      let hist = Histogram.create () in
      for _ = 1 to n do
        Histogram.add hist (Nonpreempt.sample_long sampler)
      done;
      let table =
        Table.create
          ~columns:
            [
              ("duration", Table.Left);
              ("count", Table.Right);
              ("share", Table.Right);
            ]
      in
      List.iter
        (fun (label, lo, hi) ->
          let share =
            Histogram.fraction_below hist hi -. Histogram.fraction_below hist lo
          in
          Table.add_row table
            [
              label;
              string_of_int (int_of_float (share *. float_of_int n));
              Table.cell_pct share;
            ])
        Nonpreempt.fig5_buckets;
      Run_ctx.print_table ctx table;
      Run_ctx.printf ctx "n=%d max=%s (paper: 94.5%% in 1-5ms, max 67ms)\n" n
        (Time_ns.to_string (Histogram.max_value hist)))

(* --- Fig 6 ---------------------------------------------------------------- *)

let fig6 =
  Exp_desc.single ~name:"fig6"
    ~title:"Figure 6: I/O descriptor timing breakdown"
    ~description:
      "Per-stage descriptor timing through the accelerator pipeline and the \
       hardware window that hides the vCPU switch"
    (fun ctx ~seed ~scale:_ ->
      with_system ~ctx ~seed Policy.Static_partition (fun sys ->
          let core = List.hd (System.net_cores sys) in
          let finished = ref None in
          (* Copy the stage timestamps inside the completion callback:
             the descriptor's arena slot recycles once the hook chain
             returns. *)
          Client.submit (System.client sys) ~kind:Packet.Net_rx ~size:1400 ~core
            ~on_done:(fun pkt ->
              finished :=
                Some (pkt.Packet.t_submit, pkt.Packet.t_ring, pkt.Packet.t_done))
            ();
          System.advance sys (Time_ns.ms 1);
          match !finished with
          | None -> Run_ctx.printf ctx "descriptor did not complete?!\n"
          | Some (t_submit, t_ring, t_done) ->
              let cfg = Pipeline.config (System.pipeline sys) in
              let table =
                Table.create
                  ~columns:[ ("stage", Table.Left); ("duration", Table.Right) ]
              in
              Table.add_row table
                [
                  "(2) accelerator preprocess";
                  Time_ns.to_string cfg.Pipeline.preprocess;
                ];
              Table.add_row table
                [
                  "(3) transfer to shared ring";
                  Time_ns.to_string cfg.Pipeline.transfer;
                ];
              Table.add_row table
                [
                  "(4) software processing";
                  Time_ns.to_string (t_done - t_ring);
                ];
              Table.add_row table
                [
                  "total (submit to done)";
                  Time_ns.to_string (t_done - t_submit);
                ];
              Run_ctx.print_table ctx table;
              Run_ctx.printf ctx
                "Hardware window (2)+(3) = %s hides the 2us vCPU switch \
                 (Observation 4).\n"
                (Time_ns.to_string (Pipeline.window (System.pipeline sys)))))

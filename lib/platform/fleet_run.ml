(* The System-backed fleet: N full SmartNIC systems on the generic
   Taichi_fleet epoch substrate, under a region-wide VM-startup storm
   with NIC-level fault domains and cross-NIC tenant failover.

   Determinism layering (DESIGN.md §15): each NIC is a complete private
   universe — its own Sim, Machine, Rng (split from the root seed by NIC
   name) and counter registry — advanced epoch by epoch on the fleet's
   worker domains. Everything cross-NIC (the exchange, the fault plan,
   the failover manager's placement decisions) runs in the sequential
   controller phase between epochs, so the whole run is byte-identical
   at any fleet jobs count and any sweep --jobs count.

   Failover protocol: when the plan crashes NIC i at the end of epoch e,
   the controller snapshots i's committed dynamic tenants, then (failover
   on) re-places each — heaviest first — on the survivor with the least
   admitted weight, preferring survivors whose governor is not in
   backpressure, through the survivor's refusable
   Lifecycle.admit_with_backoff: refusals and abandons are pushback, not
   errors, and every outcome lands as a [fleet.failover.*] receipt in the
   survivor's registry. Failover off: the same tenants are recorded lost
   ([fleet.failover.lost] on the crashed NIC). *)

open Taichi_engine
open Taichi_hw
open Taichi_os
open Taichi_accel
open Taichi_core
open Taichi_faults
open Taichi_fleet
open Taichi_workloads
open Taichi_controlplane

let guardrail = Config.default.Config.overload_p99_bound

(* Boot tenants per NIC (the fleet victims) — same contract discipline as
   exp_churn, relaxed to the fleet guardrail. *)
let boot_specs =
  [ Tenant.spec ~weight:2 "alpha"; Tenant.spec "bravo" ]

type params = {
  nics : int;
  epochs : int;
  epoch_len : Time_ns.t;  (** simulated time per epoch *)
  density : float;  (** VM-startup storm intensity (exp_overload scale) *)
  governor : bool;
  failover : bool;
  faults : Nic_faults.spec;
  fleet_jobs : int;  (** worker domains inside the fleet *)
}

let default_params =
  {
    nics = 8;
    epochs = 48;
    epoch_len = Time_ns.of_us_f 2500.;
    density = 4.0;
    governor = true;
    failover = true;
    faults = Nic_faults.quiet;
    fleet_jobs = 4;
  }

type receipt = {
  tenant : string;
  weight : int;
  from_nic : int;
  to_nic : int;
  at_epoch : int;
}

type nic_report = {
  nr_nic : int;
  nr_state : string;
  nr_p99_us : float;
  nr_guard_ok : bool;
  nr_packets : int;
  nr_vms : int;  (** VM startups completed on this NIC *)
  nr_admitted : int;
  nr_rpc_sent : int;
  nr_rpc_completed : int;
  nr_rpc_retries : int;
  nr_rpc_timeouts : int;
  nr_rpc_abandoned : int;
  nr_exch_sent : int;
  nr_exch_delivered : int;
  nr_exch_lost : int;
}

type report = {
  r_nics : nic_report list;
  r_crashed : int list;
  r_attainment : float;  (** surviving NICs holding the DP p99 guardrail *)
  r_survivors : int;
  r_committed : receipt list;  (** committed tenants on NICs at crash time *)
  r_replaced : receipt list;
  r_lost : receipt list;  (** failover off: tenants that died with the NIC *)
  r_refused : int;  (** failover admission pushbacks, fleet-wide *)
  r_abandoned : int;
  r_forced_drains : int;
  r_overruns_admitted : int;
  r_fingerprint : string;
}

(* Per-NIC universe handed to the generic fleet as its 'nic. The mutable
   refs are NIC-local: written only by this NIC's worker domain or by the
   sequential controller (never both within a phase), which the
   Domain.join barrier between phases makes race-free. *)
type env = {
  idx : int;
  sys : System.t;
  ectx : Run_ctx.t;  (** per-NIC experiment label, shared sink *)
  vm_rng : Rng.t;
  vm_params : Vm_lifecycle.params;
  locks : Task.spinlock list;
  recorder : Taichi_metrics.Recorder.t;
  burst_rng : Rng.t;
  mutable rpc : env Rpc.t option;
  mutable vm_count : int;
  mutable carry : float;  (** fractional storm arrivals carried over *)
  mutable tenants : (string * int) list;  (** committed dynamic tenants *)
  mutable replaced_in : receipt list;  (** failover arrivals, newest first *)
  mutable abandoned_in : receipt list;
  mutable overrun_next : int;
}

let counters_of env = Machine.counters (System.machine env.sys)

let emit env fmt =
  Printf.ksprintf
    (fun msg ->
      let machine = System.machine env.sys in
      Trace.emit (Machine.trace machine)
        ~time:(Sim.now (System.sim env.sys))
        ~category:Trace.Cat.fleet msg)
    fmt

(* --- per-NIC construction ------------------------------------------------ *)

let make_config p =
  let c = Config.no_hw_probe Config.default in
  let c = Config.with_tenants c boot_specs in
  let c = if p.governor then Config.with_overload c else c in
  Config.with_churn c

let lifecycle_of env =
  match System.lifecycle env.sys with
  | Some lc -> lc
  | None -> failwith "fleet_run: NIC built without a churn lifecycle"

let dyn_name ~nic n = Printf.sprintf "dyn-n%d-%d" nic n

let cp_task env ~tenant ~work ~name =
  let rng = Rng.split (System.rng env.sys) ("fleet-" ^ name) in
  let params =
    { Synth_cp.default_params with Synth_cp.total_work = work; phases = 3 }
  in
  Synth_cp.make ~tenant ~rng ~params ~locks:[] ~affinity:[] ~name ()

let spawn_tenant_work env ~tenant ~count ~work ~tag =
  for i = 1 to count do
    System.spawn_cp ~tenant env.sys
      (cp_task env ~tenant ~work
         ~name:(Printf.sprintf "%s-%d-%d" tag tenant i))
  done

let make_env ~ctx ~seed ~nic_idx p =
  let nic_seed =
    (* Per-NIC universes decorrelate through the root RNG's named split;
       the int folds the stream down to a System seed. *)
    Rng.int (Rng.split (Rng.create ~seed) (Printf.sprintf "nic%d" nic_idx))
      max_int
  in
  let label =
    Printf.sprintf "%s.nic%02d" (Run_ctx.experiment ctx) nic_idx
  in
  let ectx = Run_ctx.with_experiment ctx label in
  let sys =
    System.create ~ctx:ectx ~seed:nic_seed (Policy.Taichi (make_config p))
  in
  System.warmup sys;
  let rng = System.rng sys in
  let vm_rng = Rng.split rng "fleet-storm" in
  let vm_params =
    let base =
      Vm_lifecycle.at_density
        ~base:(Vm_lifecycle.default_params ~rng:vm_rng)
        p.density
    in
    {
      base with
      Vm_lifecycle.device =
        {
          base.Vm_lifecycle.device with
          Device_mgmt.dpcp_roundtrip = System.dpcp_roundtrip sys;
        };
    }
  in
  {
    idx = nic_idx;
    sys;
    ectx;
    vm_rng;
    vm_params;
    locks =
      List.init 4 (fun i ->
          Task.spinlock (Printf.sprintf "fleet-dev-%d-%d" nic_idx i));
    recorder = Taichi_metrics.Recorder.create "vm.startup";
    burst_rng = Rng.split rng "fleet-burst";
    rpc = None;
    vm_count = 0;
    carry = 0.0;
    tenants = [];
    replaced_in = [];
    abandoned_in = [];
    overrun_next = 0;
  }

(* --- workload ------------------------------------------------------------- *)

(* One epoch's slice of the region-wide VM-startup storm: the diurnal ×
   flash-crowd factor modulates the per-epoch arrival budget; fractional
   arrivals carry to the next epoch so the long-run rate matches the
   curve exactly. *)
let storm_epoch env ~epoch ~epochs ~epoch_len ~density ~crowds =
  let phase = float_of_int epoch /. float_of_int (max 1 epochs) in
  let factor = Production_trace.load_factor ~crowds ~phase () in
  let budget = env.carry +. (density /. 4.0 *. factor) in
  let count = int_of_float budget in
  env.carry <- budget -. float_of_int count;
  if count > 0 then begin
    let sim = System.sim env.sys in
    let gap = epoch_len / (count + 1) in
    for i = 1 to count do
      env.vm_count <- env.vm_count + 1;
      let task =
        Vm_lifecycle.startup_task ~sim ~rng:env.vm_rng ~params:env.vm_params
          ~locks:env.locks ~affinity:[]
          ~name:(Printf.sprintf "vm-n%d-%d" env.idx env.vm_count)
          ~recorder:env.recorder ()
      in
      ignore
        (Sim.after sim (gap * i) (fun () ->
             System.spawn_cp ~cls:Overload.Standard env.sys task))
    done
  end

(* A browned NIC is slow, not dead: every epoch it eats an extra burst of
   background packets, which is what drags its DP tail. *)
let brownout_load env =
  let client = System.client env.sys in
  let dp_cores = Array.of_list (System.dp_cores env.sys) in
  for _ = 1 to 384 do
    let core = dp_cores.(Rng.int env.burst_rng (Array.length dp_cores)) in
    Client.submit_background client ~kind:Packet.Net_rx ~size:1400 ~core
  done

(* The RPC ping the NICs exchange every epoch: the server side answers
   and absorbs a small DP burst on behalf of the caller — the cross-NIC
   coupling that makes fabric loss observable in the data plane. *)
let serve_ping env ~src:_ body =
  let client = System.client env.sys in
  let dp_cores = Array.of_list (System.dp_cores env.sys) in
  for _ = 1 to 24 do
    let core = dp_cores.(Rng.int env.burst_rng (Array.length dp_cores)) in
    Client.submit_background client ~kind:Packet.Net_rx ~size:1400 ~core
  done;
  Some ("ack:" ^ body)

(* --- failover ------------------------------------------------------------- *)

(* Admitted dynamic weight currently placed on a NIC — the spread key. *)
let placed_weight env =
  List.fold_left (fun acc (_, w) -> acc + w) 0 env.tenants

let survivor_score fleet i =
  let env = Fleet.nic fleet i in
  (* Backpressured survivors rank behind free ones at any weight. *)
  let bp = if System.cp_backpressure env.sys then 1 else 0 in
  (bp, placed_weight env, i)

let pick_survivor fleet ~exclude =
  let candidates =
    List.filter (fun i -> not (List.mem i exclude)) (Fleet.survivors fleet)
  in
  match candidates with
  | [] -> None
  | first :: rest ->
      Some
        (List.fold_left
           (fun best i ->
             if survivor_score fleet i < survivor_score fleet best then i
             else best)
           first rest)

let replace_tenant fleet ~from_nic ~exclude ~at_epoch (name, weight) =
  match pick_survivor fleet ~exclude:(from_nic :: exclude) with
  | None -> None
  | Some dst ->
      let env = Fleet.nic fleet dst in
      let lc = lifecycle_of env in
      let counters = counters_of env in
      (* Count the assignment into the spread key immediately: a second
         re-placement in the same crash must see this one. The entry is
         confirmed (kept) on admission and withdrawn on abandon. *)
      env.tenants <- env.tenants @ [ (name, weight) ];
      emit env "failover try tenant=%s from=%d to=%d epoch=%d" name from_nic
        dst at_epoch;
      Lifecycle.admit_with_backoff lc
        ~on_refused:(fun _ -> Counters.incr counters "fleet.failover.refused")
        (Tenant.spec ~weight name)
        ~on_admitted:(fun id ->
          Counters.incr counters "fleet.failover.replaced";
          emit env "failover placed tenant=%s from=%d to=%d tenant_id=%d"
            name from_nic dst id;
          env.replaced_in <-
            { tenant = name; weight; from_nic; to_nic = dst; at_epoch }
            :: env.replaced_in;
          spawn_tenant_work env ~tenant:id ~count:2 ~work:(Time_ns.ms 1)
            ~tag:"fo")
        ~on_abandoned:(fun _ ->
          Counters.incr counters "fleet.failover.abandoned";
          emit env "failover abandoned tenant=%s from=%d to=%d" name from_nic
            dst;
          env.abandoned_in <-
            { tenant = name; weight; from_nic; to_nic = dst; at_epoch }
            :: env.abandoned_in;
          env.tenants <-
            List.filter (fun (n, _) -> n <> name) env.tenants);
      Some dst

(* Drain-window overrun during failover: admit a short-lived tenant on
   the target NIC, hand it work sized far past the drain window, retire
   it under that work — the graceful poll cannot win, the watchdog
   escalation must (exp_churn's overrun driver, aimed by the fleet
   plan). *)
let drain_overrun env =
  let lc = lifecycle_of env in
  let n = env.overrun_next in
  env.overrun_next <- n + 1;
  match Lifecycle.admit lc (Tenant.spec (Printf.sprintf "ovr-n%d-%d" env.idx n)) with
  | Error _ -> false
  | Ok id ->
      emit env "overrun pinned tenant_id=%d" id;
      spawn_tenant_work env ~tenant:id ~count:1 ~work:(Time_ns.ms 8)
        ~tag:"ovr";
      ignore
        (Sim.after (System.sim env.sys) (Time_ns.us 200) (fun () ->
             Lifecycle.retire lc ~tenant:id));
      true

(* --- the run -------------------------------------------------------------- *)

let p99_us_of hist =
  if Histogram.count hist = 0 then 0.0
  else float_of_int (Histogram.percentile hist 99.0) /. 1e3

let fingerprint envs extras =
  let buf = Buffer.create 1024 in
  List.iter
    (fun env ->
      Buffer.add_string buf (Printf.sprintf "nic%d:" env.idx);
      List.iter
        (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s=%d;" k v))
        (Counters.dump (counters_of env)))
    envs;
  List.iter (fun s -> Buffer.add_string buf (s ^ ";")) extras;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let run ?(ctx = Run_ctx.default) ~seed p =
  if p.nics < 2 then invalid_arg "Fleet_run.run: need at least 2 NICs";
  let root = Rng.create ~seed in
  let crowds = Production_trace.flash_crowds (Rng.split root "crowds") ~n:2 in
  let plan =
    Nic_faults.plan ~rng:(Rng.split root "nic-faults") ~nics:p.nics
      ~epochs:p.epochs p.faults
  in
  let envs =
    Array.init p.nics (fun i -> make_env ~ctx ~seed ~nic_idx:i p)
  in
  let fleet =
    Fleet.create ~nics:envs
      ~counters:(Array.map counters_of envs)
      ~emit:(fun ~nic msg -> emit envs.(nic) "%s" msg)
      ()
  in
  Array.iter
    (fun env ->
      let rpc =
        Rpc.create ~timeout:2 ~retry_base:1 ~retry_cap:4 ~max_attempts:3
          fleet ~nic:env.idx
      in
      Rpc.register rpc ~tag:"ping" (fun ~src body -> serve_ping env ~src body);
      env.rpc <- Some rpc)
    envs;
  (* Commit one dynamic tenant per NIC before the storm: the population
     the failover oracle protects. Weights 1..3 give the spread policy
     something to balance. *)
  Array.iter
    (fun env ->
      let weight = 1 + (env.idx mod 3) in
      let name = dyn_name ~nic:env.idx 0 in
      match Lifecycle.admit (lifecycle_of env) (Tenant.spec ~weight name) with
      | Ok id ->
          env.tenants <- [ (name, weight) ];
          spawn_tenant_work env ~tenant:id ~count:2 ~work:(Time_ns.ms 1)
            ~tag:"seed"
      | Error _ ->
          failwith
            (Printf.sprintf "fleet_run: NIC %d refused its boot-time tenant"
               env.idx))
    envs;
  (* Steady background per NIC for the whole storm window (the same mix
     exp_overload's guardrail contrast was proven on). *)
  let horizon = p.epochs * p.epoch_len in
  Array.iter
    (fun env ->
      let sim = System.sim env.sys in
      let until = Sim.now sim + horizon in
      Exp_common.start_bg_dp env.sys ~target:0.25 ~storage_target:0.12 ~until;
      Exp_common.start_bg_cp env.sys;
      Exp_common.start_cp_churn env.sys ~period:(Time_ns.us 300)
        ~work:(Time_ns.us 200) ~until)
    envs;
  (* Controller state the epoch loop accumulates (sequential phase only). *)
  let committed = ref [] in
  let lost = ref [] in
  let crashed = ref [] in
  let forced_overruns = ref 0 in
  (* Abandoned-receipt high-water mark per NIC: the controller re-places
     each abandoned tenant exactly once per abandon, on a different
     survivor (the one that just gave up is excluded for that round). *)
  let retried = Array.make p.nics 0 in
  (* Overrun events whose pin admission was refused under storm
     backpressure: retried every epoch until one lands. *)
  let pending_overruns = ref [] in
  let deliver ~nic m =
    let env = envs.(nic) in
    ignore (Rpc.deliver (Option.get env.rpc) m : bool)
  in
  let advance ~nic ~epoch =
    let env = envs.(nic) in
    Rpc.tick (Option.get env.rpc) ~epoch;
    if Fleet.state fleet nic = Fleet.Browned then brownout_load env;
    storm_epoch env ~epoch ~epochs:p.epochs ~epoch_len:p.epoch_len
      ~density:p.density ~crowds;
    (* One ping per epoch, round-robin across the rack: nic+1+k mod n
       with k in [0, n-2] never lands back on the caller. *)
    let peer = (nic + 1 + (epoch mod (p.nics - 1))) mod p.nics in
    Rpc.call (Option.get env.rpc) ~dst:peer ~tag:"ping"
      (Printf.sprintf "e%d" epoch)
      ~on_reply:(fun _ -> ())
      ~on_abandon:(fun () -> ());
    System.advance env.sys p.epoch_len
  in
  let control ~epoch =
    List.iter
      (fun (e, event) ->
        if e = epoch then
          match event with
          | Nic_faults.Crash i when Fleet.alive fleet i ->
              let env = envs.(i) in
              let victims = env.tenants in
              List.iter
                (fun (name, weight) ->
                  committed :=
                    {
                      tenant = name;
                      weight;
                      from_nic = i;
                      to_nic = -1;
                      at_epoch = epoch;
                    }
                    :: !committed)
                victims;
              Fleet.crash fleet i;
              crashed := i :: !crashed;
              if p.failover then
                (* Heaviest first so the spread policy sees the big lanes
                   early; ties re-place in name order. *)
                List.iter
                  (fun t ->
                    ignore
                      (replace_tenant fleet ~from_nic:i ~exclude:[]
                         ~at_epoch:epoch t))
                  (List.stable_sort
                     (fun (_, a) (_, b) -> compare b a)
                     victims)
              else
                List.iter
                  (fun (name, weight) ->
                    Counters.incr (counters_of env) "fleet.failover.lost";
                    lost :=
                      {
                        tenant = name;
                        weight;
                        from_nic = i;
                        to_nic = -1;
                        at_epoch = epoch;
                      }
                      :: !lost)
                  victims
          | Nic_faults.Crash _ -> ()
          | Nic_faults.Brownout_start i -> Fleet.brownout fleet i
          | Nic_faults.Brownout_end i -> Fleet.recover fleet i
          | Nic_faults.Partition_start groups ->
              Fleet.partition fleet ~groups
          | Nic_faults.Partition_end -> Fleet.heal fleet
          | Nic_faults.Drain_overrun i ->
              if Fleet.alive fleet i then
                if drain_overrun envs.(i) then incr forced_overruns
                else pending_overruns := !pending_overruns @ [ i ])
      plan;
    (match !pending_overruns with
    | [] -> ()
    | pending ->
        pending_overruns :=
          List.filter
            (fun i ->
              Fleet.alive fleet i
              &&
              if drain_overrun envs.(i) then begin
                incr forced_overruns;
                false
              end
              else true)
            pending);
    (* Re-place tenants whose failover admission was abandoned during
       the parallel phase: a backpressured survivor exhausting its
       backoff budget is pushback, not loss — the controller moves the
       tenant to the next-best survivor. *)
    if p.failover then
      Array.iteri
        (fun i env ->
          let receipts = env.abandoned_in in
          let len = List.length receipts in
          if len > retried.(i) then begin
            let fresh = List.filteri (fun k _ -> k < len - retried.(i)) receipts in
            retried.(i) <- len;
            List.iter
              (fun r ->
                ignore
                  (replace_tenant fleet ~from_nic:r.from_nic
                     ~exclude:[ r.to_nic ] ~at_epoch:epoch
                     (r.tenant, r.weight)))
              (List.rev fresh)
          end)
        envs
  in
  Fleet.run ~jobs:p.fleet_jobs ~control fleet ~epochs:p.epochs ~deliver
    ~advance;
  (* Settle: pending failover backoffs, drains and the governor's re-arm
     run out on every survivor, fault- and storm-free. *)
  (* The settle runs in steps, retrying still-refused overrun pins
     between them: a governor that stayed backpressured through the last
     storm epoch re-arms within a step or two, and the drain-overrun
     escalation then collides with the failover resolution below — the
     exact window the fault plan aims for. *)
  let retry_pending_overruns ~fallback () =
    pending_overruns :=
      List.filter
        (fun i ->
          let try_on j = Fleet.alive fleet j && drain_overrun envs.(j) in
          let pinned =
            try_on i
            || (fallback
               && List.exists
                    (fun j -> j <> i && try_on j)
                    (Fleet.survivors fleet))
          in
          if pinned then incr forced_overruns;
          not pinned)
        !pending_overruns
  in
  for _ = 1 to 4 do
    List.iter
      (fun i -> System.advance envs.(i).sys (Time_ns.ms 5))
      (Fleet.survivors fleet);
    retry_pending_overruns ~fallback:false ()
  done;
  (* Post-storm resolution: the 20 ms settle exceeds the longest
     admit_with_backoff chain (~11 ms), so every failover admission is
     now terminal — anything committed but not re-placed was abandoned
     everywhere it was tried. The storm is over and the governor has
     re-armed, so direct admissions in survivor-score order place the
     stragglers; a bounded number of advance-and-retry rounds covers a
     governor still stepping down its ladder. *)
  if p.failover then begin
    let placed name from_nic =
      Array.exists
        (fun env ->
          List.exists
            (fun r -> r.tenant = name && r.from_nic = from_nic)
            env.replaced_in)
        envs
    in
    let sorted_survivors ~exclude =
      List.sort
        (fun a b -> compare (survivor_score fleet a) (survivor_score fleet b))
        (List.filter
           (fun i -> not (List.mem i exclude))
           (Fleet.survivors fleet))
    in
    let place_direct c =
      let rec try_nics = function
        | [] -> false
        | dst :: rest -> (
            let env = envs.(dst) in
            match
              Lifecycle.admit (lifecycle_of env)
                (Tenant.spec ~weight:c.weight c.tenant)
            with
            | Ok id ->
                Counters.incr (counters_of env) "fleet.failover.replaced";
                emit env
                  "failover placed tenant=%s from=%d to=%d tenant_id=%d \
                   post-storm"
                  c.tenant c.from_nic dst id;
                env.tenants <- env.tenants @ [ (c.tenant, c.weight) ];
                env.replaced_in <-
                  { c with to_nic = dst; at_epoch = p.epochs }
                  :: env.replaced_in;
                true
            | Error _ ->
                Counters.incr (counters_of env) "fleet.failover.refused";
                try_nics rest)
      in
      try_nics (sorted_survivors ~exclude:[ c.from_nic ])
    in
    let rec resolve round =
      let unresolved =
        List.filter
          (fun c -> not (placed c.tenant c.from_nic))
          (List.rev !committed)
      in
      if unresolved <> [] && round < 10 then begin
        List.iter (fun c -> ignore (place_direct c : bool)) unresolved;
        List.iter
          (fun i -> System.advance envs.(i).sys (Time_ns.ms 5))
          (Fleet.survivors fleet);
        resolve (round + 1)
      end
    in
    resolve 0
  end;
  (* A drain overrun pinned in a late settle step still needs its retire
     to fire (200 us after the pin) and the watchdog to escalate and
     reap; give overrun cells a drain tail. A pin whose home NIC kept
     refusing (e.g. its spare pool went to re-placed tenants) falls back
     to any survivor first — the overrun is about the drain watchdog,
     not about which NIC hosts it. *)
  if p.faults.Nic_faults.overruns > 0 then begin
    retry_pending_overruns ~fallback:true ();
    List.iter
      (fun i -> System.advance envs.(i).sys (Time_ns.ms 15))
      (Fleet.survivors fleet)
  end;
  (* Harvest in NIC order: audit survivors (a crashed NIC froze
     mid-flight — its invariants are allowed to be mid-transition), then
     export every NIC's run under its per-NIC label. *)
  let survivors = Fleet.survivors fleet in
  Array.iter
    (fun env ->
      if List.mem env.idx survivors then
        Exp_common.check_audit ~ctx:env.ectx ~seed env.sys;
      let sim = System.sim env.sys in
      Run_ctx.record_engine_events env.ectx
        ~scheduled:(Sim.events_scheduled sim)
        ~processed:(Sim.events_processed sim);
      if Run_ctx.tracing env.ectx then
        Exp_common.harvest_run ~ctx:env.ectx ~seed env.sys)
    envs;
  let nic_reports =
    Array.to_list
      (Array.map
         (fun env ->
           let get = Counters.get (counters_of env) in
           let hist = System.dp_latency_hist env.sys in
           let p99 = p99_us_of hist in
           {
             nr_nic = env.idx;
             nr_state = Fleet.state_label (Fleet.state fleet env.idx);
             nr_p99_us = p99;
             nr_guard_ok = p99 <= float_of_int guardrail /. 1e3;
             nr_packets = Histogram.count hist;
             nr_vms = Taichi_metrics.Recorder.count env.recorder;
             nr_admitted = get "churn.admitted";
             nr_rpc_sent = get "fleet.rpc.sent";
             nr_rpc_completed = get "fleet.rpc.completed";
             nr_rpc_retries = get "fleet.rpc.retries";
             nr_rpc_timeouts = get "fleet.rpc.timeouts";
             nr_rpc_abandoned = get "fleet.rpc.abandoned";
             nr_exch_sent = get "fleet.exchange.sent";
             nr_exch_delivered = get "fleet.exchange.delivered";
             nr_exch_lost =
               get "fleet.exchange.lost_crash"
               + get "fleet.exchange.lost_down"
               + get "fleet.exchange.lost_partition";
           })
         envs)
  in
  let holding =
    List.filter
      (fun r -> r.nr_state <> "crashed" && r.nr_guard_ok)
      nic_reports
  in
  let n_survivors = List.length survivors in
  let replaced =
    List.concat_map (fun env -> List.rev env.replaced_in)
      (Array.to_list envs)
  in
  let abandoned =
    List.concat_map (fun env -> List.rev env.abandoned_in)
      (Array.to_list envs)
  in
  let sum_counter name =
    Array.fold_left (fun acc env -> acc + Counters.get (counters_of env) name)
      0 envs
  in
  {
    r_nics = nic_reports;
    r_crashed = List.rev !crashed;
    r_attainment =
      (if n_survivors = 0 then 0.0
       else float_of_int (List.length holding) /. float_of_int n_survivors);
    r_survivors = n_survivors;
    r_committed = List.rev !committed;
    r_replaced = replaced;
    r_lost = List.rev !lost;
    r_refused = sum_counter "fleet.failover.refused";
    r_abandoned = List.length abandoned;
    r_forced_drains = sum_counter "churn.drain_forced";
    r_overruns_admitted = !forced_overruns;
    r_fingerprint =
      fingerprint (Array.to_list envs)
        (List.map
           (fun r -> Printf.sprintf "p99.%d=%.3f" r.nr_nic r.nr_p99_us)
           nic_reports);
  }

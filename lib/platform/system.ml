open Taichi_engine
open Taichi_hw
open Taichi_os
open Taichi_accel
open Taichi_core
open Taichi_dataplane
open Taichi_workloads

type layout = { n_net : int; n_storage : int; n_cp : int }

let default_layout = { n_net = 5; n_storage = 3; n_cp = 4 }

type t = {
  sim : Sim.t;
  machine : Machine.t;
  kernel : Kernel.t;
  pipeline : Pipeline.t;
  policy : Policy.t;
  rng : Rng.t;
  client : Client.t;
  taichi : Taichi.t option;
  net_cores : int list;
  storage_cores : int list;
  cp_cores : int list;
  net_services : Dp_service.t list;
  storage_services : Dp_service.t list;
  tenant_table : Tenant.table;
      (* THE tenant registry for this system — one shared mutable
         instance threaded through Taichi.install, so churn-time
         admissions are visible to every layer and to the export *)
  mutable epoch : Time_ns.t;
  h_spawn_refused : Counters.handle;
  l_spawn_refused : Counters.lane;
}

let range lo n = List.init n (fun i -> lo + i)

let create ?(seed = 42) ?(layout = default_layout) ?prepare
    ?(ctx = Run_ctx.default) policy =
  let sim = Sim.create () in
  let total = layout.n_net + layout.n_storage + layout.n_cp in
  let machine =
    Machine.create ~config:{ Machine.default_config with physical_cores = total } sim
  in
  (* The prepare hook runs before the kernel or any scheduler exists, so a
     fault injector installed here already covers the vCPU hotplug boot
     IPIs issued during system assembly and warm-up. *)
  (match prepare with Some f -> f machine | None -> ());
  let kernel = Kernel.create machine in
  let pipeline = Pipeline.create sim in
  let rng = Rng.create ~seed in
  (* Infrastructure cores consumed by the policy (type-2 emulation + guest
     OS) come off the data-plane partitions, one per subsystem. *)
  let lost = Policy.dp_cores_lost policy in
  let lost_net = lost / 2 and lost_sto = lost - (lost / 2) in
  let n_net = layout.n_net - lost_net
  and n_storage = layout.n_storage - lost_sto in
  let net_cores = range 0 n_net in
  let storage_cores = range layout.n_net n_storage in
  let cp_base = layout.n_net + layout.n_storage in
  let cp_cores = range cp_base layout.n_cp in
  (* Every physical core is a kernel logical CPU; data-plane-owned cores
     are unavailable to the task scheduler. *)
  List.iter
    (fun id ->
      let available = id >= cp_base in
      let c = Kernel.add_physical_cpu kernel ~available ~id () in
      Kernel.set_speed_tax c (if available then Policy.cp_speed_tax policy else 0.0))
    (range 0 total);
  (* Dedicated CP cores are control-plane occupied from bring-up on the
     authoritative state machine; data-plane cores transition when their
     service starts, and cores lost to infrastructure stay [Offline]. *)
  List.iter
    (fun id ->
      Core_state.transition (Machine.core_state machine) ~core:id
        ~cause:Core_state.Hotplug Core_state.Cp_dedicated)
    cp_cores;
  (* Data-plane services. Under an explicit multi-tenant table each
     subsystem's services are dealt round-robin across tenants (position
     mod count — deterministic in the core layout), so every tenant owns
     rings on both subsystems when it has enough cores. The implicit
     single tenant leaves every service on tenant 0 as before. *)
  let tenant_table = Config.tenant_table (Policy.config policy) in
  let owner i =
    if Tenant.is_multi tenant_table then i mod Tenant.count tenant_table else 0
  in
  let dp_tax = Policy.dp_speed_tax policy in
  let make_net i core =
    let dp = Net_service.create ~tenant:(owner i) machine pipeline ~core in
    Dp_service.set_speed_tax dp dp_tax;
    dp
  in
  let make_sto i core =
    let dp = Storage_service.create ~tenant:(owner i) machine pipeline ~core in
    Dp_service.set_speed_tax dp dp_tax;
    dp
  in
  let net_services = List.mapi make_net net_cores in
  let storage_services = List.mapi make_sto storage_cores in
  let services = net_services @ storage_services in
  (* Ring-delivery notifications. *)
  let hook =
    List.fold_left
      (fun acc dp -> Dp_service.attach_delivery dp acc)
      (fun ~core:_ -> ())
      services
  in
  Pipeline.set_deliver_hook pipeline hook;
  (* Policy machinery. *)
  let taichi =
    match policy with
    | Policy.Taichi config | Policy.Taichi_vdp config ->
        Some
          (Taichi.install ~config ~tenants:tenant_table ~machine ~kernel
             ~pipeline ~dps:services ~cp_pcpus:cp_cores ())
    | Policy.Static_partition | Policy.Type2 -> None
    | Policy.Naive_coschedule | Policy.Uintr_coschedule | Policy.Dedicated_core
      ->
        (* Idle data-plane cores are lent to the kernel scheduler itself;
           packets must wait for any non-preemptible routine to finish.
           The variants differ in resume-notification cost (UINTR) and in
           the dedicated scheduler core already removed from the
           data-plane partition above. *)
        let switch_cost = Policy.reclaim_switch_cost policy in
        List.iter
          (fun dp ->
            let hooks = Dp_service.hooks dp in
            let core = Dp_service.core dp in
            hooks.Dp_service.idle_detected <-
              (fun dp ->
                if Dp_service.try_yield dp then
                  Kernel.lend kernel (Kernel.cpu kernel core));
            hooks.Dp_service.work_arrived_while_yielded <-
              (fun dp ->
                Kernel.reclaim kernel (Kernel.cpu kernel core)
                  ~on_granted:(fun () -> Dp_service.resume dp ~switch_cost)))
          services;
        None
  in
  let client = Client.create sim pipeline ~services in
  List.iter Dp_service.start services;
  (* Tracing switches on only once assembly is done: boot-time service
     starts are not part of the measured run, and keeping the cutover
     here preserves export compatibility with the pre-Run_ctx layout. *)
  if Run_ctx.tracing ctx then Trace.set_enabled (Machine.trace machine) true;
  {
    sim;
    machine;
    kernel;
    pipeline;
    policy;
    rng;
    client;
    taichi;
    net_cores;
    storage_cores;
    cp_cores;
    net_services;
    storage_services;
    tenant_table;
    epoch = 0;
    h_spawn_refused = Counters.handle (Machine.counters machine) "churn.spawn_refused";
    l_spawn_refused = Counters.lane (Machine.counters machine) "churn.spawn_refused";
  }

let sim t = t.sim
let machine t = t.machine
let kernel t = t.kernel
let pipeline t = t.pipeline
let policy t = t.policy
let rng t = t.rng
let client t = t.client
let taichi t = t.taichi
let net_cores t = t.net_cores
let storage_cores t = t.storage_cores
let dp_cores t = t.net_cores @ t.storage_cores
let cp_cores t = t.cp_cores

let cp_affinity t =
  match t.policy with
  | Policy.Naive_coschedule | Policy.Uintr_coschedule | Policy.Dedicated_core ->
      dp_cores t @ t.cp_cores
  | Policy.Static_partition | Policy.Type2 -> t.cp_cores
  | Policy.Taichi _ | Policy.Taichi_vdp _ -> (
      match t.taichi with
      | Some tc -> Taichi.cp_cpu_ids tc
      | None -> t.cp_cores)

let net_services t = t.net_services
let storage_services t = t.storage_services
let services t = t.net_services @ t.storage_services

let overload t =
  match t.taichi with Some tc -> Taichi.overload tc | None -> None

let cp_backpressure t =
  match overload t with Some ov -> Overload.backpressure ov | None -> false

let tenants t = t.tenant_table

let lifecycle t =
  match t.taichi with Some tc -> Taichi.lifecycle tc | None -> None

(* A tenant's CP CPU set: the shared dedicated CP pCPUs plus only its own
   vCPUs, so one tenant's control-plane storm queues behind its own
   weighted share instead of every vCPU on the machine. Falls back to the
   policy-wide set under the implicit single tenant (where the two
   coincide) or when the policy runs no vCPUs at all. *)
let cp_affinity_for t tenant =
  match t.taichi with
  | Some tc when Tenant.is_multi (tenants t) ->
      t.cp_cores
      @ List.filter_map
          (fun v ->
            if v.Taichi_virt.Vcpu.tenant = tenant then
              Some v.Taichi_virt.Vcpu.kcpu
            else None)
          (Taichi.vcpus tc)
  | Some _ | None -> cp_affinity t

let spawn_cp ?(cls = Overload.Standard) ?(tenant = 0) t task =
  let lc = lifecycle t in
  let refused =
    match lc with Some lc -> not (Lifecycle.accepting lc ~tenant) | None -> false
  in
  if refused then begin
    (* The drain gate: a Draining or Retired tenant admits no new CP
       work. Counted globally and on the tenant's lane (both sides of
       the refusal, so lane sums still equal globals). *)
    Counters.incr_h (Machine.counters t.machine) t.h_spawn_refused;
    if Tenant.is_multi t.tenant_table then
      Counters.lane_incr t.l_spawn_refused tenant
  end
  else begin
    task.Task.tenant <- tenant;
    (* Respect an explicit pin; otherwise bind to the tenant's CP CPU set. *)
    if task.Task.affinity = [] then
      task.Task.affinity <- cp_affinity_for t tenant;
    (* Register with the drain bookkeeping only once the task really
       spawns: an admission the governor parks and later sheds must not
       hold a drain hostage. *)
    let spawn () =
      (match lc with
      | Some lc -> Lifecycle.note_task lc ~tenant task
      | None -> ());
      Kernel.spawn t.kernel task
    in
    match overload t with
    | None -> spawn ()
    | Some ov -> ignore (Overload.admit ov ~tenant ~cls spawn)
  end

let advance t d = Sim.run ~until:(Sim.now t.sim + d) t.sim

let warmup t =
  (match t.taichi with
  | Some tc ->
      (* Boot IPIs can be dropped under fault injection; the boot watchdog
         re-issues them with backoff, so give a resilient system a longer
         leash before declaring the hotplug failed. *)
      let budget =
        if (Taichi.config tc).Config.resilience then Time_ns.ms 500
        else Time_ns.ms 100
      in
      let deadline = Sim.now t.sim + budget in
      while (not (Taichi.ready tc)) && Sim.now t.sim < deadline do
        advance t (Time_ns.ms 1)
      done;
      if not (Taichi.ready tc) then failwith "System.warmup: vCPUs failed to boot"
  | None -> advance t (Time_ns.ms 1));
  t.epoch <- Sim.now t.sim

let run_until_tasks_done t tasks ~limit =
  let deadline = Sim.now t.sim + limit in
  let all_done () = List.for_all Task.is_finished tasks in
  while (not (all_done ())) && Sim.now t.sim < deadline do
    advance t (Time_ns.ms 1)
  done;
  all_done ()

let epoch t = t.epoch
let elapsed t = Sim.now t.sim - t.epoch

let audit t = Core_state.audit (Machine.core_state t.machine)

let dp_latency_hist t =
  List.fold_left
    (fun acc dp ->
      Histogram.merge acc (Taichi_metrics.Recorder.histogram (Dp_service.latency dp)))
    (Histogram.create ()) (services t)

let dp_latency_hist_of t ~tenant =
  List.fold_left
    (fun acc dp ->
      if Dp_service.tenant dp = tenant then
        Histogram.merge acc
          (Taichi_metrics.Recorder.histogram (Dp_service.latency dp))
      else acc)
    (Histogram.create ()) (services t)

let dp_spikes t =
  List.fold_left (fun acc dp -> acc + Dp_service.spikes dp) 0 (services t)

let dp_work_utilization t =
  let cores = dp_cores t in
  let e = elapsed t in
  if e <= 0 || cores = [] then 0.0
  else begin
    let acct = Machine.accounting t.machine in
    let work =
      List.fold_left
        (fun acc core -> acc + Accounting.busy_class acct ~core Accounting.Dp_work)
        0 cores
    in
    float_of_int work /. (float_of_int e *. float_of_int (List.length cores))
  end

let dpcp_roundtrip t = Policy.dpcp_roundtrip t.policy

(** The System-backed fleet harness: N full SmartNIC systems on the
    {!Taichi_fleet} epoch substrate, under a region-wide VM-startup
    storm (diurnal × flash-crowd modulated, {!Taichi_workloads.Production_trace}),
    with NIC-level fault domains ({!Taichi_faults.Nic_faults}) and
    cross-NIC tenant failover through each survivor's refusable
    {!Taichi_core.Lifecycle.admit_with_backoff}.

    Everything cross-NIC — the exchange, the fault plan, the failover
    placement — runs in the sequential controller phase between epochs;
    each NIC is a private universe advanced on the fleet's worker
    domains, so a run is byte-identical at any jobs count. *)

open Taichi_engine
open Taichi_faults

val guardrail : Time_ns.t
(** The 150 µs DP p99 bound each NIC is judged against for fleet SLO
    attainment ([Config.overload_p99_bound]). *)

type params = {
  nics : int;
  epochs : int;
  epoch_len : Time_ns.t;
  density : float;  (** VM-startup storm intensity (exp_overload scale) *)
  governor : bool;
  failover : bool;
  faults : Nic_faults.spec;
  fleet_jobs : int;  (** worker domains inside the fleet *)
}

val default_params : params
(** 8 NICs × 48 × 2.5 ms epochs, density 4, governor and failover on, no
    fleet faults, 4 worker domains. *)

type receipt = {
  tenant : string;
  weight : int;
  from_nic : int;
  to_nic : int;  (** -1 in committed/lost records *)
  at_epoch : int;
}

type nic_report = {
  nr_nic : int;
  nr_state : string;
  nr_p99_us : float;
  nr_guard_ok : bool;
  nr_packets : int;
  nr_vms : int;
  nr_admitted : int;
  nr_rpc_sent : int;
  nr_rpc_completed : int;
  nr_rpc_retries : int;
  nr_rpc_timeouts : int;
  nr_rpc_abandoned : int;
  nr_exch_sent : int;
  nr_exch_delivered : int;
  nr_exch_lost : int;
}

type report = {
  r_nics : nic_report list;
  r_crashed : int list;
  r_attainment : float;
      (** fraction of surviving NICs holding the DP p99 guardrail *)
  r_survivors : int;
  r_committed : receipt list;
      (** dynamic tenants committed on a NIC at its crash *)
  r_replaced : receipt list;
  r_lost : receipt list;  (** failover off: died with their NIC *)
  r_refused : int;  (** failover admission pushbacks, fleet-wide *)
  r_abandoned : int;
  r_forced_drains : int;
  r_overruns_admitted : int;
  r_fingerprint : string;
}

val run : ?ctx:Run_ctx.t -> seed:int -> params -> report
(** One fleet run: build and warm N NICs, commit one dynamic tenant per
    NIC, drive the storm through the epoch loop with the fault plan and
    failover, settle, audit survivors and (when tracing) harvest every
    NIC's export under a ["<experiment>.nic<NN>"] label. *)

(** Scheduling policies: Tai Chi, its ablations, and the systems the paper
    compares against (§6.1, §6.3). *)

open Taichi_core

type t =
  | Static_partition
      (** the production baseline: CPUs statically split between
          data-plane services (8) and control-plane tasks (4) *)
  | Taichi of Config.t
      (** the full framework; ablations are expressed through the config *)
  | Taichi_vdp of Config.t
      (** §6.3 "Tai Chi-vDP": identical, but data-plane services execute
          in vCPU contexts (type-1-like), paying the nested-page-table tax
          and doubled switch latency *)
  | Type2
      (** traditional QEMU+KVM: a guest OS hosts the control plane; device
          emulation and the guest permanently consume data-plane cores and
          DP–CP IPC becomes RPC *)
  | Naive_coschedule
      (** §3.2 strawman: control-plane tasks schedule directly onto idle
          data-plane cores through the OS scheduler, exposing data-plane
          packets to non-preemptible routines *)
  | Uintr_coschedule
      (** user-interrupt-style co-scheduling (Skyloft/Vessel family): the
          preemption {e notification} is nearly free, but the mechanism
          still cannot break non-preemptible kernel routines (§3.3 point
          1), so the ms-scale spikes remain *)
  | Dedicated_core
      (** Shenango/Caladan-style: a dedicated scheduler core polls queues
          and reallocates cores; it permanently burns one data-plane core
          (§3.3 point 2) and core reallocation still waits on
          non-preemptible routines *)

val name : t -> string

val config : t -> Config.t
(** The policy's Tai Chi config, or [Config.default] for policies that
    carry none — so layout decisions keyed off config fields (e.g. the
    tenant table) see the implicit defaults under baseline policies. *)

val taichi_default : t
(** [Taichi Config.default]. *)

val taichi_no_hw_probe : t
(** The §6.4 ablation. *)

val dp_cores_lost : t -> int
(** Physical data-plane cores consumed by the policy's infrastructure
    (2 for type-2 device emulation + guest OS, 0 otherwise). *)

val dp_speed_tax : t -> float
(** Execution tax on data-plane packet processing (nested page tables for
    vDP, virtio emulation residue for type-2). *)

val cp_speed_tax : t -> float
(** Execution tax on control-plane work (guest mode under type-2). *)

val dpcp_roundtrip : t -> Taichi_engine.Time_ns.t
(** Latency of one control-plane/data-plane coordination exchange: native
    IPC (30 µs) everywhere except type-2, whose broken IPC semantics
    require RPC (§3.4, Table 2). *)

val reclaim_switch_cost : t -> Taichi_engine.Time_ns.t
(** Data-plane resume cost after reclaiming a lent core: the OS
    context-switch path (2 µs), or a near-free notification for
    UINTR-style co-scheduling. *)

(** Shared plumbing for the experiment drivers. *)

open Taichi_engine
open Taichi_os

val scaled : float -> Time_ns.t -> Time_ns.t
(** [scaled s d] shrinks duration [d] by scale [s], floored at 10 ms. *)

val with_system :
  ?layout:System.layout ->
  ?prepare:(Taichi_hw.Machine.t -> unit) ->
  seed:int ->
  Policy.t ->
  (System.t -> 'a) ->
  'a
(** Create, warm up, run the body. When tracing is on (see {!set_tracing})
    the machine trace is enabled before warmup and an {!Taichi_metrics.Export.run}
    snapshot is harvested after the body returns. [prepare] is forwarded
    to {!System.create}. After the body, the machine-wide audit runs: a
    violation (or a non-zero [core_state.illegal] counter) either aborts
    the run or, in collect mode, is recorded for the CLI to report. *)

type audit_failure = {
  experiment : string;
  seed : int;
  violations : string list;
}

val set_audit_collect : bool -> unit
(** In collect mode (used by the CLI), post-run audit violations are
    accumulated instead of raising, so a batch of experiments completes
    and the process can exit with a distinct non-zero status. Default:
    off — violations raise [Failure]. *)

val reset_audit_failures : unit -> unit

val audit_failures : unit -> audit_failure list
(** Failures collected since the last reset, in completion order. *)

val set_tracing : bool -> unit
(** Globally enable trace collection for every system subsequently built
    through {!with_system}. *)

val set_experiment : string -> unit
(** Label harvested runs with the experiment id currently executing. *)

val trace_runs : unit -> Taichi_metrics.Export.run list
(** Harvested runs, in completion order. *)

val reset_trace_runs : unit -> unit

val start_bg_dp :
  ?storage_target:float -> System.t -> target:float -> until:Time_ns.t -> unit
(** Bursty background traffic pinning every data-plane core at [target]
    useful utilization (networking and storage streams).
    [?storage_target] overrides the storage stream's utilization
    (default: same as [target]) — the storage per-packet cost is ~2.4x
    the networking one, so an experiment whose latency oracle must be
    attributable to scheduling (not to the generator's own burst
    queueing) can keep the storage stream lighter. *)

val start_bg_cp : System.t -> unit
(** The standard long-lived control-plane background (monitors, log
    flusher, orchestration agent), admitted as [Overload.Critical] —
    never throttled by the governor. *)

val start_cp_ecosystem : System.t -> ?tasks:int -> ?target_util:float -> unit -> unit
(** A production-scale control-plane ecosystem (default 48 tasks consuming
    ~1.8 cores), the steady load the §3.2 fleet carries on its dedicated
    CP CPUs. *)

val start_cp_churn :
  System.t -> period:Time_ns.t -> work:Time_ns.t -> until:Time_ns.t -> unit
(** Periodically spawn short synth_cp tasks — bursty control-plane demand
    that keeps vCPUs requesting data-plane cycles during data-plane
    benchmarks. Submitted as [Overload.Deferrable]; while the governor
    signals backpressure the client holds its submissions and counts them
    under [overload.client_held.churn]. *)

val avg_turnaround_ms : Task.t list -> float
(** Mean turnaround of finished tasks, in milliseconds. *)

val overhead_pct : baseline:float -> measured:float -> float
(** [(baseline - measured) / baseline * 100], i.e. positive = slower than
    baseline (for higher-is-better metrics). *)

val banner : string -> unit
(** Experiment section header on stdout. *)

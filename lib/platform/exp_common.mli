(** Shared plumbing for the experiment drivers.

    Carries no mutable module state: tracing, experiment labels, audit
    mode and the harvest of finished runs all flow through the explicit
    {!Run_ctx.t} a caller passes in (the sweep derives one per cell). *)

open Taichi_engine
open Taichi_os

val scaled : float -> Time_ns.t -> Time_ns.t
(** [scaled s d] shrinks duration [d] by scale [s], floored at 10 ms. *)

val harvest_run : ctx:Run_ctx.t -> seed:int -> System.t -> unit
(** Snapshot one finished system into the context's sink (an
    {!Taichi_metrics.Export.run} labelled with the context's experiment
    name). {!with_system} calls this automatically; the fleet harness —
    which keeps N systems alive across one run — calls it per NIC, under
    a per-NIC experiment label. *)

val check_audit : ctx:Run_ctx.t -> seed:int -> System.t -> unit
(** The machine-wide coherence check {!with_system} runs after the body:
    abort or collect per the context's audit mode. Exposed for the fleet
    harness, which audits each surviving NIC. *)

val with_system :
  ?layout:System.layout ->
  ?prepare:(Taichi_hw.Machine.t -> unit) ->
  ?ctx:Run_ctx.t ->
  seed:int ->
  Policy.t ->
  (System.t -> 'a) ->
  'a
(** Create, warm up, run the body. When the context enables tracing the
    machine trace is switched on at system-assembly end and an
    {!Taichi_metrics.Export.run} snapshot is harvested into the context's
    sink after the body returns. [prepare] is forwarded to
    {!System.create}. After the body, the machine-wide audit runs: a
    violation (or a non-zero [core_state.illegal] counter) either aborts
    the run ({!Run_ctx.Abort}, the default) or is recorded in the context
    for the CLI to report ({!Run_ctx.Collect}). [ctx] defaults to
    {!Run_ctx.default}: tracing off, abort on violation. *)

val start_bg_dp :
  ?storage_target:float -> System.t -> target:float -> until:Time_ns.t -> unit
(** Bursty background traffic pinning every data-plane core at [target]
    useful utilization (networking and storage streams).
    [?storage_target] overrides the storage stream's utilization
    (default: same as [target]) — the storage per-packet cost is ~2.4x
    the networking one, so an experiment whose latency oracle must be
    attributable to scheduling (not to the generator's own burst
    queueing) can keep the storage stream lighter. *)

val start_bg_cp : System.t -> unit
(** The standard long-lived control-plane background (monitors, log
    flusher, orchestration agent), admitted as [Overload.Critical] —
    never throttled by the governor. *)

val start_cp_ecosystem : System.t -> ?tasks:int -> ?target_util:float -> unit -> unit
(** A production-scale control-plane ecosystem (default 48 tasks consuming
    ~1.8 cores), the steady load the §3.2 fleet carries on its dedicated
    CP CPUs. *)

val start_cp_churn :
  System.t -> period:Time_ns.t -> work:Time_ns.t -> until:Time_ns.t -> unit
(** Periodically spawn short synth_cp tasks — bursty control-plane demand
    that keeps vCPUs requesting data-plane cycles during data-plane
    benchmarks. Submitted as [Overload.Deferrable]; while the governor
    signals backpressure the client holds its submissions and counts them
    under [overload.client_held.churn]. *)

val avg_turnaround_ms : Task.t list -> float
(** Mean turnaround of finished tasks, in milliseconds. *)

val overhead_pct : baseline:float -> measured:float -> float
(** [(baseline - measured) / baseline * 100], i.e. positive = slower than
    baseline (for higher-is-better metrics). *)

open Taichi_engine
open Taichi_os
open Taichi_metrics
open Taichi_core
open Taichi_controlplane
open Exp_common

(* The DP p99 guardrail the storm cells are judged against — the same
   bound the governor escalates on, so "the governor holds what it
   watches" is exactly what the oracle checks. *)
let guardrail = Config.default.Config.overload_p99_bound

let densities = [ 1.0; 2.0; 4.0 ]
let max_density = 4.0

(* Bounded-ladder oracle: a healthy run is a handful of escalations and
   the matching relaxes; anything past this is flapping. *)
let max_transitions = 16

type outcome = {
  density : float;
  governor : bool;
  p99_us : float;
  guard : Slo.verdict;
  startup_ms : float;
  vms_done : int;
  vms_total : int;
  transitions : int;
  escalations : int;
  max_level : string;
  final_level : string;
  shed_critical : int;
  shed_standard : int;
  shed_deferrable : int;
  deferred : int;
  held : int;
  fingerprint : string;
}

(* The fig17 VM-startup storm, submitted through the governed admission
   path as Standard-class work. Arrivals are staggered across [spread] so
   the late wave hits an already-deep ladder and exercises the deferred
   path (a single burst would all be admitted at Normal). *)
let storm sys ~density ~spread ~recorder =
  let sim = System.sim sys in
  let rng = Rng.split (System.rng sys) "overload-storm" in
  let locks =
    List.init 8 (fun i -> Task.spinlock (Printf.sprintf "device-driver-%d" i))
  in
  let params =
    Vm_lifecycle.at_density ~base:(Vm_lifecycle.default_params ~rng) density
  in
  let params =
    {
      params with
      Vm_lifecycle.device =
        {
          params.Vm_lifecycle.device with
          Device_mgmt.dpcp_roundtrip = System.dpcp_roundtrip sys;
        };
    }
  in
  let n_vms = max 1 (int_of_float (10.0 *. density)) in
  let tasks =
    List.init n_vms (fun i ->
        Vm_lifecycle.startup_task ~sim ~rng ~params ~locks ~affinity:[]
          ~name:(Printf.sprintf "vm-%d" i)
          ~recorder ())
  in
  let gap = spread / max 1 n_vms in
  List.iteri
    (fun i task ->
      ignore
        (Sim.after sim (gap * i) (fun () ->
             System.spawn_cp ~cls:Overload.Standard sys task)))
    tasks;
  tasks

(* A deterministic digest of everything the cell measured: identical
   seeds must reproduce it bit-for-bit (the acceptance oracle below runs
   the hottest cell twice and compares). *)
let fingerprint_of sys extras =
  let counters =
    Counters.dump (Taichi_hw.Machine.counters (System.machine sys))
  in
  let buf = Buffer.create 256 in
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s=%d;" k v))
    (List.sort compare counters);
  List.iter (fun s -> Buffer.add_string buf (s ^ ";")) extras;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let measure ctx ~seed ~scale ~density ~governor =
  let config =
    (* Both cells run the no-hardware-probe ablation: without the probe's
       microsecond eviction, DP recovery rides on slice expiry, so CP
       placement pressure actually reaches the DP tail — the regime where
       admission control has something to save. *)
    let c = Config.no_hw_probe Config.default in
    if governor then Config.with_overload c else c
  in
  with_system ~ctx ~seed (Policy.Taichi config) (fun sys ->
      let sim = System.sim sys in
      let counters = Taichi_hw.Machine.counters (System.machine sys) in
      let tc = Option.get (System.taichi sys) in
      let ov = Taichi.overload tc in
      (* Track the deepest rung the ladder reached. *)
      let deepest = ref Overload.Normal in
      (match ov with
      | Some ov ->
          Overload.on_transition ov (fun _ to_ ->
              if Overload.rank to_ > Overload.rank !deepest then deepest := to_)
      | None -> ());
      (* Floor the storm window at 100 ms: in short windows the ladder's
         escalation transient (~2 ms of polluted tail before Static
         engages) weighs enough in p99 that the guardrail contrast the
         oracles check cannot form, at any scale. *)
      let dur = max (Time_ns.ms 100) (scaled scale (Time_ns.ms 120)) in
      let until = Sim.now sim + dur in
      (* Storm mix: heavy background DP traffic (the latency victims),
         Critical monitors, Deferrable churn, and the Standard VM-startup
         storm — one client per priority class. *)
      (* Background DP at 0.35 (storage lighter at 0.15): the bursty
         generator's on-phase then runs well under saturation, so the
         measured tail is attributable to CP placements stealing DP
         cores, not to the generator's own burst queueing. *)
      start_bg_dp sys ~target:0.25 ~storage_target:0.12 ~until;
      start_bg_cp sys;
      start_cp_churn sys ~period:(Time_ns.us 300) ~work:(Time_ns.us 200) ~until;
      let recorder = Recorder.create "vm.startup" in
      let tasks = storm sys ~density ~spread:(dur / 3) ~recorder in
      System.advance sys dur;
      (* Post-storm: let deferred admissions drain and the ladder re-arm.
         The quiet tail is sized generously past overload_quiet so "still
         not Normal" means a stuck ladder, not a short tail. *)
      ignore (System.run_until_tasks_done sys tasks ~limit:(Time_ns.sec 2));
      System.advance sys (Time_ns.ms 20);
      let hist = System.dp_latency_hist sys in
      let p99_us =
        if Taichi_engine.Histogram.count hist = 0 then 0.0
        else float_of_int (Taichi_engine.Histogram.percentile hist 99.0) /. 1e3
      in
      (* Evaluate the guardrail as a proper SLO verdict over the merged DP
         latency histogram rather than a raw comparison. *)
      let guard =
        Slo.check_hist
          (Slo.latency_p "dp.p99" ~percentile:99.0 ~bound:guardrail)
          hist ~duration:(System.elapsed sys)
      in
      let vms_done = List.length (List.filter Task.is_finished tasks) in
      let get = Counters.get counters in
      {
        density;
        governor;
        p99_us;
        guard;
        startup_ms =
          (if Recorder.count recorder = 0 then 0.0
           else Recorder.mean recorder /. 1e6);
        vms_done;
        vms_total = List.length tasks;
        transitions =
          (match ov with Some ov -> Overload.transitions ov | None -> 0);
        escalations =
          (match ov with Some ov -> Overload.escalations ov | None -> 0);
        max_level = Overload.level_label !deepest;
        final_level =
          (match ov with
          | Some ov -> Overload.level_label (Overload.level ov)
          | None -> "-");
        shed_critical = get "overload.shed.critical";
        shed_standard = get "overload.shed.standard";
        shed_deferrable = get "overload.shed.deferrable";
        deferred =
          get "overload.deferred.standard" + get "overload.deferred.deferrable";
        held = get "overload.client_held.churn";
        fingerprint =
          fingerprint_of sys
            [
              Printf.sprintf "p99=%.3f" p99_us;
              Printf.sprintf "startup=%d" (Recorder.count recorder);
            ];
      })

let check_oracles cells repeat_fp =
  let fail fmt = Printf.ksprintf failwith fmt in
  let on_cells = List.filter (fun c -> c.governor) cells in
  let off_cells = List.filter (fun c -> not c.governor) cells in
  (* 1. The storm cell contrast: governor-off breaches the DP p99
     guardrail at max density; governor-on holds it. *)
  List.iter
    (fun off ->
      if off.density = max_density && off.guard.Slo.satisfied then
        fail
          "exp_overload: governor-off baseline held the guardrail at %.0fx \
           (p99=%.1fus) — the storm is not stressful enough to test the \
           governor"
          max_density off.p99_us)
    off_cells;
  List.iter
    (fun on ->
      if on.density = max_density && not on.guard.Slo.satisfied then
        fail
          "exp_overload: governor-on breached the DP p99 guardrail at %.0fx \
           (p99=%.1fus > %.1fus)"
          max_density on.p99_us
          (float_of_int guardrail /. 1e3))
    on_cells;
  List.iter
    (fun c ->
      (* 2. Only the lowest class is ever shed. *)
      if c.shed_critical > 0 || c.shed_standard > 0 then
        fail
          "exp_overload: shed a non-deferrable admission at %.0fx \
           (critical=%d standard=%d)"
          c.density c.shed_critical c.shed_standard;
      (* 3. Bounded ladder: no flapping. *)
      if c.transitions > max_transitions then
        fail "exp_overload: %d ladder transitions at %.0fx (max %d) — flapping"
          c.transitions c.density max_transitions;
      (* 4. Post-storm the ladder re-armed all the way down. *)
      if c.final_level <> "normal" then
        fail "exp_overload: ladder still at %s after the post-storm quiet tail"
          c.final_level)
    on_cells;
  (* 5. Bit-identical repeat at the same seed. *)
  match repeat_fp with
  | Some (first, second) when first <> second ->
      fail "exp_overload: repeat run at the same seed diverged (%s vs %s)"
        first second
  | _ -> ()

(* The grid: (density x governor), plus an explicit determinism-repeat
   cell that re-measures the hottest governed point at the same seed. *)
let overload_grid =
  List.concat_map
    (fun density ->
      List.map
        (fun governor ->
          ( {
              Exp_desc.key =
                Printf.sprintf "d%.0f-%s" density
                  (if governor then "on" else "off");
              label =
                Printf.sprintf "density %.0fx, governor %s" density
                  (if governor then "on" else "off");
            },
            `Point (density, governor) ))
        [ false; true ])
    densities
  @ [
      ( {
          Exp_desc.key = "repeat-d4-on";
          label = "determinism repeat: density 4x, governor on";
        },
        `Repeat );
    ]

(* The CI matrix pins one governor setting per job; the CLI turns
   --overload / OVERLOAD_GOVERNOR into a cell filter over these keys
   (the repeat cell counts as a governed cell). *)
let governor_filter setting cell =
  let suffix s =
    let k = cell.Exp_desc.key in
    let n = String.length s in
    String.length k >= n && String.sub k (String.length k - n) n = s
  in
  match setting with
  | "on" -> suffix "-on"
  | "off" -> suffix "-off"
  | g -> failwith (Printf.sprintf "exp_overload: unknown governor %S" g)

let overload =
  Exp_desc.make ~name:"overload"
    ~title:
      "OVERLOAD: VM-startup storm x density, brownout governor on/off (DP \
       p99 guardrail oracle)"
    ~description:
      "VM-startup storm x density sweep with the brownout governor on/off: \
       guardrail contrast, shed discipline, bounded-ladder and determinism \
       oracles"
    ~cells:(List.map fst overload_grid)
    ~run_cell:(fun ctx ~seed ~scale cell ->
      match
        List.assoc cell.Exp_desc.key
          (List.map (fun (c, v) -> (c.Exp_desc.key, v)) overload_grid)
      with
      | `Point (density, governor) ->
          Run_ctx.printf ctx "\n-- density %.0fx, governor %s (seed %d)\n"
            density
            (if governor then "on" else "off")
            seed;
          measure ctx ~seed ~scale ~density ~governor
      | `Repeat ->
          Run_ctx.printf ctx
            "\n-- determinism check: repeating density %.0fx governor on \
             (seed %d)\n"
            max_density seed;
          measure ctx ~seed ~scale ~density:max_density ~governor:true)
    ~summarize:(fun ctx ~seed:_ ~scale:_ results ->
      let outcome key =
        List.assoc_opt key
          (List.map (fun (c, r) -> (c.Exp_desc.key, r)) results)
      in
      let cells =
        List.filter_map
          (fun (c, r) ->
            if c.Exp_desc.key = "repeat-d4-on" then None else Some r)
          results
      in
      let table =
        Table.create
          ~columns:
            [
              ("density", Table.Right);
              ("governor", Table.Left);
              ("dp_p99_us", Table.Right);
              ("guardrail", Table.Left);
              ("startup_ms", Table.Right);
              ("vms", Table.Right);
              ("trans", Table.Right);
              ("deepest", Table.Left);
              ("final", Table.Left);
              ("shed", Table.Right);
              ("deferred", Table.Right);
              ("held", Table.Right);
            ]
      in
      List.iter
        (fun c ->
          Table.add_row table
            [
              Printf.sprintf "%.0fx" c.density;
              (if c.governor then "on" else "off");
              Printf.sprintf "%.1f" c.p99_us;
              (if c.guard.Slo.satisfied then "held" else "BREACHED");
              Printf.sprintf "%.1f" c.startup_ms;
              Printf.sprintf "%d/%d" c.vms_done c.vms_total;
              string_of_int c.transitions;
              c.max_level;
              c.final_level;
              string_of_int c.shed_deferrable;
              string_of_int c.deferred;
              string_of_int c.held;
            ])
        cells;
      Run_ctx.print_table ctx table;
      (* Determinism oracle: the repeat cell measured the hottest governed
         point again; the two digests must match. *)
      let repeat_fp =
        match (outcome "d4-on", outcome "repeat-d4-on") with
        | Some first, Some again -> Some (first.fingerprint, again.fingerprint)
        | _ -> None
      in
      check_oracles cells repeat_fp;
      if List.exists (fun c -> c.governor) cells then
        Run_ctx.printf ctx
          "\nGuardrail %s held with the governor on; deferrable work was \
           held/shed instead of sinking the data plane.\n"
          (Time_ns.to_string guardrail)
      else
        Run_ctx.printf ctx
          "\nBaseline (governor off): the storm breaches the %s DP p99 \
           guardrail at %.0fx density.\n"
          (Time_ns.to_string guardrail) max_density)

open Taichi_engine
open Taichi_core
open Taichi_virt

type t =
  | Static_partition
  | Taichi of Config.t
  | Taichi_vdp of Config.t
  | Type2
  | Naive_coschedule
  | Uintr_coschedule
  | Dedicated_core

let name = function
  | Static_partition -> "baseline"
  | Taichi cfg when not cfg.Config.hw_probe -> "taichi-no-hwprobe"
  | Taichi _ -> "taichi"
  | Taichi_vdp _ -> "taichi-vdp"
  | Type2 -> "type2"
  | Naive_coschedule -> "naive"
  | Uintr_coschedule -> "uintr"
  | Dedicated_core -> "dedicated-core"

let taichi_default = Taichi Config.default
let taichi_no_hw_probe = Taichi (Config.no_hw_probe Config.default)

let config = function
  | Taichi cfg | Taichi_vdp cfg -> cfg
  | Static_partition | Type2 | Naive_coschedule | Uintr_coschedule
  | Dedicated_core ->
      Config.default

let dp_cores_lost = function
  | Type2 -> 2
  | Dedicated_core -> 1
  | Static_partition | Taichi _ | Taichi_vdp _ | Naive_coschedule
  | Uintr_coschedule ->
      0

let dp_speed_tax = function
  | Taichi_vdp cfg -> cfg.Config.cost.Cost_model.npt_tax +. 0.015
  | Type2 -> 0.02
  | Static_partition | Taichi _ | Naive_coschedule | Uintr_coschedule
  | Dedicated_core ->
      0.0

let cp_speed_tax = function
  | Type2 -> 0.05
  | Static_partition | Taichi _ | Taichi_vdp _ | Naive_coschedule
  | Uintr_coschedule | Dedicated_core ->
      0.0

let dpcp_roundtrip = function
  | Type2 -> Time_ns.us 150
  | Static_partition | Taichi _ | Taichi_vdp _ | Naive_coschedule
  | Uintr_coschedule | Dedicated_core ->
      Time_ns.us 30

(* Cost of giving a reclaimed core back to its data-plane service: the OS
   context-switch path for a normal scheduler, near-zero notification for
   UINTR-style designs (the waiting is in the non-preemptible routine, not
   the notification). *)
let reclaim_switch_cost = function
  | Uintr_coschedule -> Time_ns.ns 200
  | Static_partition | Taichi _ | Taichi_vdp _ | Type2 | Naive_coschedule
  | Dedicated_core ->
      Time_ns.us 2

(* The explicit run context that replaced Exp_common's module-level refs.

   The record itself is immutable — deriving a cell context never mutates
   the parent — but it carries two pieces of owned mutable state:

   - [sink]: where harvested trace runs and collected audit failures
     accumulate. A sweep gives every cell its own sink and merges them
     back in deterministic cell order, so a --jobs 8 run exports the same
     JSON bytes as --jobs 1.

   - [out]: where the cell's human-readable progress output goes. Cells
     buffer; the sweep flushes buffers in cell order, which keeps stdout
     byte-identical under parallelism. *)

type audit_mode = Abort | Collect

type audit_failure = {
  experiment : string;
  seed : int;
  violations : string list;
}

type sink = {
  mutable runs : Taichi_metrics.Export.run list; (* newest first *)
  mutable audits : audit_failure list; (* newest first *)
  mutable engine_scheduled : int; (* Sim events scheduled, summed over runs *)
  mutable engine_processed : int; (* Sim events fired, summed over runs *)
}

type out = Stdout | Buffered of Buffer.t

type t = {
  experiment : string;
  tracing : bool;
  audit : audit_mode;
  sink : sink;
  out : out;
}

let new_sink () =
  { runs = []; audits = []; engine_scheduled = 0; engine_processed = 0 }

let create ?(tracing = false) ?(audit = Abort) ?(experiment = "unnamed") () =
  { experiment; tracing; audit; sink = new_sink (); out = Stdout }

let default = create ()

let experiment t = t.experiment
let tracing t = t.tracing
let audit_mode t = t.audit

let with_experiment t experiment = { t with experiment }

let for_cell t =
  { t with sink = new_sink (); out = Buffered (Buffer.create 1024) }

(* --- output -------------------------------------------------------------- *)

let print_string t s =
  match t.out with
  | Stdout -> print_string s
  | Buffered b -> Buffer.add_string b s

let printf t fmt = Printf.ksprintf (print_string t) fmt

let print_table t table = print_string t (Taichi_metrics.Table.render table)

let banner t title =
  printf t "\n%s\n%s\n" title (String.make (String.length title) '=')

let flush_into_stdout t =
  match t.out with
  | Stdout -> ()
  | Buffered b ->
      Stdlib.print_string (Buffer.contents b);
      Buffer.clear b

(* Cell output propagates to the parent's output, wherever that points:
   stdout for the CLI, the parent's own buffer when a sweep itself runs
   under a buffered context (the bench's silent timing runs). *)
let flush_into ~into t =
  match t.out with
  | Stdout -> ()
  | Buffered b ->
      print_string into (Buffer.contents b);
      Buffer.clear b

let buffered_contents t =
  match t.out with Stdout -> "" | Buffered b -> Buffer.contents b

(* --- harvest sinks ------------------------------------------------------- *)

let harvest t run = t.sink.runs <- run :: t.sink.runs

let record_audit_failure t failure = t.sink.audits <- failure :: t.sink.audits

let record_engine_events t ~scheduled ~processed =
  t.sink.engine_scheduled <- t.sink.engine_scheduled + scheduled;
  t.sink.engine_processed <- t.sink.engine_processed + processed

let runs t = List.rev t.sink.runs
let audit_failures t = List.rev t.sink.audits

let engine_events t = (t.sink.engine_scheduled, t.sink.engine_processed)

(* Append [src]'s harvest to [dst] preserving completion order within
   [src]; the sweep calls this once per cell, in cell order. *)
let absorb ~into:dst src =
  dst.sink.runs <- List.rev_append (runs src) dst.sink.runs;
  dst.sink.audits <- List.rev_append (audit_failures src) dst.sink.audits;
  dst.sink.engine_scheduled <- dst.sink.engine_scheduled + src.sink.engine_scheduled;
  dst.sink.engine_processed <- dst.sink.engine_processed + src.sink.engine_processed

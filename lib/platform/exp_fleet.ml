open Taichi_faults
open Taichi_metrics

(* Fleet-scale resilience: a rack of SmartNICs under a region-wide
   VM-startup storm, with NIC fault domains, cross-NIC tenant failover
   and fleet SLO attainment (fraction of surviving NICs holding the
   150 µs DP p99 guardrail). The grid contrasts governor on/off and
   failover on/off around mid-storm NIC crashes, plus a quiet
   integrity cell for the exchange/RPC accounting and the determinism
   repeat. *)

let mid_crash ~crashes =
  {
    Nic_faults.quiet with
    Nic_faults.crashes;
    crash_window = (12, 28);
  }

let storm_faults =
  {
    Nic_faults.crashes = 2;
    crash_window = (12, 30);
    brownouts = 1;
    brownout_hold = 8;
    partition = true;
    partition_hold = 6;
    overruns = 1;
  }

type point = {
  nics : int;
  governor : bool;
  failover : bool;
  faults : Nic_faults.spec;
}

type outcome = { key : string; point : point; rep : Fleet_run.report }

let params_of ~scale pt =
  (* The storm window is floored at 40 epochs (100 ms of simulated time):
     shorter windows leave the governor's escalation transient dominating
     p99 and the attainment contrast cannot form (same floor as
     exp_overload). *)
  let epochs = max 40 (int_of_float (48.0 *. scale)) in
  {
    Fleet_run.default_params with
    Fleet_run.nics = pt.nics;
    epochs;
    governor = pt.governor;
    failover = pt.failover;
    faults = pt.faults;
    fleet_jobs = min pt.nics 4;
  }

let measure ctx ~seed ~scale ~key pt =
  let rep = Fleet_run.run ~ctx ~seed (params_of ~scale pt) in
  ignore ctx;
  { key; point = pt; rep }

(* --- oracles -------------------------------------------------------------- *)

let committed_names_of rep ~from_nic =
  List.filter_map
    (fun r ->
      if r.Fleet_run.from_nic = from_nic then Some r.Fleet_run.tenant
      else None)
    rep.Fleet_run.r_committed

let check_oracles cells repeat_fp =
  let fail fmt = Printf.ksprintf failwith fmt in
  List.iter
    (fun c ->
      let rep = c.rep in
      (* Exchange accounting: every NIC's deliveries and losses are
         bounded by the fleet's sends (the final epoch's exchange is
         still in flight, so <=, never =). *)
      let sum f =
        List.fold_left (fun acc r -> acc + f r) 0 rep.Fleet_run.r_nics
      in
      let sent = sum (fun r -> r.Fleet_run.nr_exch_sent) in
      let delivered = sum (fun r -> r.Fleet_run.nr_exch_delivered) in
      let lost = sum (fun r -> r.Fleet_run.nr_exch_lost) in
      if delivered + lost > sent then
        fail
          "exp_fleet[%s]: exchange books don't balance (%d delivered + %d \
           lost > %d sent)"
          c.key delivered lost sent;
      (* Failover receipts land only on crashed NICs' tenants. *)
      List.iter
        (fun r ->
          if not (List.mem r.Fleet_run.from_nic rep.Fleet_run.r_crashed) then
            fail
              "exp_fleet[%s]: failover receipt for tenant %s names NIC %d, \
               which never crashed"
              c.key r.Fleet_run.tenant r.Fleet_run.from_nic;
          if
            not
              (List.mem r.Fleet_run.tenant
                 (committed_names_of rep ~from_nic:r.Fleet_run.from_nic))
          then
            fail
              "exp_fleet[%s]: failover receipt for %s, which was not \
               committed on crashed NIC %d"
              c.key r.Fleet_run.tenant r.Fleet_run.from_nic)
        rep.Fleet_run.r_replaced;
      if c.point.failover then begin
        (* Zero committed-tenant loss: every tenant committed on a
           crashed NIC was re-placed on a survivor (or the chain of
           crashes re-placed it again). *)
        if rep.Fleet_run.r_lost <> [] then
          fail "exp_fleet[%s]: %d tenants lost with failover on" c.key
            (List.length rep.Fleet_run.r_lost);
        List.iter
          (fun cm ->
            let replaced =
              List.exists
                (fun r ->
                  r.Fleet_run.tenant = cm.Fleet_run.tenant
                  && r.Fleet_run.from_nic = cm.Fleet_run.from_nic)
                rep.Fleet_run.r_replaced
            in
            if not replaced then
              fail
                "exp_fleet[%s]: committed tenant %s (NIC %d) was never \
                 re-placed"
                c.key cm.Fleet_run.tenant cm.Fleet_run.from_nic)
          rep.Fleet_run.r_committed
      end
      else if rep.Fleet_run.r_crashed <> [] then begin
        (* Failover off: the crash must actually cost committed tenants,
           and nothing may have been re-placed. *)
        if rep.Fleet_run.r_replaced <> [] then
          fail "exp_fleet[%s]: failover off but %d tenants were re-placed"
            c.key
            (List.length rep.Fleet_run.r_replaced);
        if rep.Fleet_run.r_lost = [] then
          fail
            "exp_fleet[%s]: failover off and NICs crashed, yet no tenant \
             was lost — the crash hit nothing"
            c.key
      end;
      (* Crash count matches the plan. *)
      let planned = c.point.faults.Nic_faults.crashes in
      if List.length rep.Fleet_run.r_crashed <> planned then
        fail "exp_fleet[%s]: %d NICs crashed, plan said %d" c.key
          (List.length rep.Fleet_run.r_crashed)
          planned;
      (* Quiet cell: a faultless fabric loses nothing and abandons no
         RPC. *)
      if
        planned = 0
        && (not c.point.faults.Nic_faults.partition)
        && c.point.faults.Nic_faults.brownouts = 0
      then begin
        if lost > 0 then
          fail "exp_fleet[%s]: %d messages lost on a faultless fabric" c.key
            lost;
        let rpc_abandoned =
          sum (fun r -> r.Fleet_run.nr_rpc_abandoned)
        in
        let rpc_timeouts = sum (fun r -> r.Fleet_run.nr_rpc_timeouts) in
        if rpc_abandoned > 0 || rpc_timeouts > 0 then
          fail
            "exp_fleet[%s]: faultless fabric produced %d RPC timeouts / %d \
             abandons"
            c.key rpc_timeouts rpc_abandoned
      end;
      (* A drain-window overrun that admitted must have forced a drain. *)
      if
        rep.Fleet_run.r_overruns_admitted > 0
        && rep.Fleet_run.r_forced_drains < 1
      then
        fail
          "exp_fleet[%s]: a drain overrun was pinned but no drain was \
           forced"
          c.key)
    cells;
  (* Fleet SLO attainment: governor on >= governor off on the matched
     8-NIC crash cells (equality tolerated — the oracle is that the
     governor never costs attainment). *)
  let find k = List.find_opt (fun c -> c.key = k) cells in
  (match (find "n8-gov_on-fo_on", find "n8-gov_off-fo_on") with
  | Some on, Some off ->
      if
        on.rep.Fleet_run.r_attainment < off.rep.Fleet_run.r_attainment
      then
        fail
          "exp_fleet: governor-on fleet attainment %.2f < governor-off \
           %.2f"
          on.rep.Fleet_run.r_attainment off.rep.Fleet_run.r_attainment
  | _ -> ());
  match repeat_fp with
  | Some (first, second) when first <> second ->
      failwith
        (Printf.sprintf
           "exp_fleet: repeat run at the same seed diverged (%s vs %s)"
           first second)
  | _ -> ()

(* --- the grid ------------------------------------------------------------- *)

let grid =
  let cell key label v = ({ Exp_desc.key; label }, v) in
  let pt nics governor failover faults = { nics; governor; failover; faults } in
  [
    cell "n8-gov_on-fo_on" "8 NICs, 1 crash, governor on, failover on"
      (`Point (pt 8 true true (mid_crash ~crashes:1)));
    cell "n8-gov_off-fo_on" "8 NICs, 1 crash, governor off, failover on"
      (`Point (pt 8 false true (mid_crash ~crashes:1)));
    cell "n8-gov_on-fo_off" "8 NICs, 1 crash, failover off (loss accounting)"
      (`Point (pt 8 true false (mid_crash ~crashes:1)));
    cell "n8-quiet-fo_on" "8 NICs, faultless fabric (integrity baseline)"
      (`Point (pt 8 true true Nic_faults.quiet));
    cell "n16-storm-gov_on-fo_on"
      "16 NICs: 2 crashes + brownout + partition + drain overrun"
      (`Point (pt 16 true true storm_faults));
    cell "repeat-n8-gov_on-fo_on"
      "determinism repeat: 8 NICs, 1 crash, governor on, failover on"
      `Repeat;
  ]

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* The CI matrix pins (nics, failover) per job; the CLI turns --nics /
   FLEET_NICS and --failover / FLEET_FAILOVER into cell filters over
   these keys (the repeat cell rides with its base cell's settings). *)
let nics_filter n cell =
  contains ~needle:(Printf.sprintf "n%d-" n) cell.Exp_desc.key

let failover_filter setting cell =
  match setting with
  | "on" -> contains ~needle:"fo_on" cell.Exp_desc.key
  | "off" -> contains ~needle:"fo_off" cell.Exp_desc.key
  | s -> failwith (Printf.sprintf "exp_fleet: unknown failover setting %S" s)

let fleet =
  Exp_desc.make ~name:"fleet"
    ~title:
      "FLEET: a rack of SmartNICs x {NIC crashes, brownout, partition, \
       drain overrun} with cross-NIC tenant failover (fleet SLO \
       attainment, zero-loss and determinism oracles)"
    ~description:
      "Region-wide VM-startup storm across 8-16 NICs with mid-storm NIC \
       crashes: deterministic epoch exchange, cross-NIC RPC \
       timeout/retry accounting, tenant failover through refusable \
       backoff admission, fleet SLO attainment governor on/off"
    ~cells:(List.map fst grid)
    ~run_cell:(fun ctx ~seed ~scale cell ->
      match
        List.assoc cell.Exp_desc.key
          (List.map (fun (c, v) -> (c.Exp_desc.key, v)) grid)
      with
      | `Point pt ->
          Run_ctx.printf ctx "\n-- %s: %s (seed %d)\n" cell.Exp_desc.key
            cell.Exp_desc.label seed;
          measure ctx ~seed ~scale ~key:cell.Exp_desc.key pt
      | `Repeat ->
          Run_ctx.printf ctx
            "\n-- determinism check: repeating n8-gov_on-fo_on (seed %d)\n"
            seed;
          measure ctx ~seed ~scale ~key:"repeat-n8-gov_on-fo_on"
            (let (_, v) = List.hd grid in
             match v with `Point pt -> pt | `Repeat -> assert false))
    ~summarize:(fun ctx ~seed:_ ~scale:_ results ->
      let outcome key =
        List.assoc_opt key
          (List.map (fun (c, r) -> (c.Exp_desc.key, r)) results)
      in
      let cells =
        List.filter_map
          (fun (c, r) ->
            if c.Exp_desc.key = "repeat-n8-gov_on-fo_on" then None
            else Some r)
          results
      in
      let table =
        Table.create
          ~columns:
            [
              ("cell", Table.Left);
              ("nics", Table.Right);
              ("crashed", Table.Right);
              ("attain", Table.Right);
              ("committed", Table.Right);
              ("replaced", Table.Right);
              ("refused", Table.Right);
              ("abandoned", Table.Right);
              ("lost", Table.Right);
              ("rpc", Table.Right);
              ("retries", Table.Right);
              ("forced", Table.Right);
            ]
      in
      List.iter
        (fun c ->
          let rep = c.rep in
          let sum f =
            List.fold_left (fun acc r -> acc + f r) 0 rep.Fleet_run.r_nics
          in
          Table.add_row table
            [
              c.key;
              string_of_int c.point.nics;
              string_of_int (List.length rep.Fleet_run.r_crashed);
              Printf.sprintf "%.2f" rep.Fleet_run.r_attainment;
              string_of_int (List.length rep.Fleet_run.r_committed);
              string_of_int (List.length rep.Fleet_run.r_replaced);
              string_of_int rep.Fleet_run.r_refused;
              string_of_int rep.Fleet_run.r_abandoned;
              string_of_int (List.length rep.Fleet_run.r_lost);
              Printf.sprintf "%d/%d"
                (sum (fun r -> r.Fleet_run.nr_rpc_completed))
                (sum (fun r -> r.Fleet_run.nr_rpc_sent));
              string_of_int (sum (fun r -> r.Fleet_run.nr_rpc_retries));
              string_of_int rep.Fleet_run.r_forced_drains;
            ])
        cells;
      Run_ctx.print_table ctx table;
      let repeat_fp =
        match (outcome "n8-gov_on-fo_on", outcome "repeat-n8-gov_on-fo_on")
        with
        | Some first, Some again ->
            Some
              ( first.rep.Fleet_run.r_fingerprint,
                again.rep.Fleet_run.r_fingerprint )
        | _ -> None
      in
      check_oracles cells repeat_fp;
      Run_ctx.printf ctx
        "\nEvery committed tenant on a crashed NIC was re-placed on a \
         survivor (failover on), the governor never cost fleet SLO \
         attainment, and the exchange books balanced.\n")

(** Registry of every paper table and figure reproduction. *)

val all : Exp_desc.t list
(** Descriptors in paper order: fig2, fig3, fig4, fig5, fig6, fig11,
    fig12, fig13, table5, fig14, fig15, fig16, fig17, table1, table2,
    sec8, the [ablations] suite, the [chaos] fault-injection matrix (see
    {!Exp_chaos}), the [overload] brownout-governor storm matrix (see
    {!Exp_overload}), plus the [multitenant] isolation grid (see
    {!Exp_multitenant}). Run them through {!Sweep.run}. *)

val find : string -> Exp_desc.t option
(** Look an experiment up by name. *)

val closest : string -> (string * int) option
(** Closest registered name by edit distance (within distance 3) and its
    cell count, for "did you mean" suggestions on unknown names. *)

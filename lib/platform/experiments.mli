(** Registry of every paper table and figure reproduction. *)

val all : (string * (seed:int -> scale:float -> unit)) list
(** [(id, run)] pairs in paper order: fig2, fig3, fig4, fig5, fig6, fig11,
    fig12, fig13, table5, fig14, fig15, fig16, fig17, table1, table2,
    sec8, the [ablations] suite, the [chaos] fault-injection matrix (see
    {!Exp_chaos}), plus the [overload] brownout-governor storm matrix
    (see {!Exp_overload}). [scale] shrinks simulated durations for quick
    runs. *)

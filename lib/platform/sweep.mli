(** Domain-parallel sweep runner for experiment descriptors.

    Executes a descriptor's cell grid across OCaml domains and merges the
    results back deterministically: cell output buffers are flushed and
    harvest sinks absorbed in cell declaration order, never completion
    order, so [run ~jobs:8] produces byte-identical stdout and trace
    export to [run ~jobs:1] at the same seeds. See DESIGN.md §11. *)

val run :
  ?jobs:int ->
  ?filter:(Exp_desc.cell -> bool) ->
  Run_ctx.t ->
  Exp_desc.t ->
  seed:int ->
  scale:float ->
  unit
(** [run ~jobs ~filter ctx desc ~seed ~scale] prints the descriptor's
    banner, evaluates every cell passing [filter] (default: all) on a
    pool of [jobs] domains (default 1 = inline), each against a context
    derived from [ctx] with {!Run_ctx.for_cell}, then calls the
    descriptor's [summarize] on the coordinating domain.

    A failing cell never short-circuits the grid: every cell runs, then
    the first failure in cell order is re-raised (identically at any
    [jobs]), after all cell output has been flushed. *)

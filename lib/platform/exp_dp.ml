open Taichi_engine
open Taichi_os
open Taichi_accel
open Taichi_core
open Taichi_metrics
open Taichi_workloads
open Taichi_controlplane
open Exp_common

let param table cell = List.assoc cell.Exp_desc.key table
let result results key =
  List.assoc key (List.map (fun (c, r) -> (c.Exp_desc.key, r)) results)

(* Standard control-plane pressure during data-plane benchmarks: the
   long-lived background plus bursty short tasks offering more work than
   the dedicated CP cores can absorb, so Tai Chi has sustained vCPU demand
   to co-schedule (the §6 experiments all run under CP stress). *)
let cp_pressure sys ~until =
  start_bg_cp sys;
  start_cp_churn sys ~period:(Time_ns.ms 1) ~work:(Time_ns.ms 5) ~until

let four_systems =
  [
    ("base", Policy.Static_partition);
    ("taichi", Policy.taichi_default);
    ("vdp", Policy.Taichi_vdp Config.default);
    ("type2", Policy.Type2);
  ]

let four_system_cells =
  List.map
    (fun (tag, policy) ->
      ({ Exp_desc.key = tag; label = Policy.name policy }, policy))
    four_systems

(* --- Fig 12: netperf tcp_crr ---------------------------------------------- *)

let fig12 =
  Exp_desc.make ~name:"fig12"
    ~title:"Figure 12: netperf tcp_crr across four systems"
    ~description:
      "netperf tcp_crr connections/s across baseline / Tai Chi / Tai Chi-vDP \
       / type-2"
    ~cells:(List.map fst four_system_cells)
    ~run_cell:(fun ctx ~seed ~scale cell ->
      let policy =
        param
          (List.map (fun (c, p) -> (c.Exp_desc.key, p)) four_system_cells)
          cell
      in
      let dur = scaled scale (Time_ns.ms 400) in
      with_system ~ctx ~seed policy (fun sys ->
          let sim = System.sim sys in
          let until = Sim.now sim + dur in
          cp_pressure sys ~until;
          let rng = Rng.split (System.rng sys) "crr" in
          let r =
            Netperf.tcp_crr (System.client sys) rng
              ~cores:(System.net_cores sys) ~until
          in
          System.advance sys (dur + Time_ns.ms 5);
          ( Policy.name policy,
            Rr_engine.tps r ~duration:dur,
            Rr_engine.rx_pps r ~duration:dur,
            Rr_engine.tx_pps r ~duration:dur )))
    ~summarize:(fun ctx ~seed:_ ~scale:_ results ->
      let results = List.map snd results in
      let base_cps =
        match results with (_, cps, _, _) :: _ -> cps | [] -> 1.0
      in
      let table =
        Table.create
          ~columns:
            [
              ("system", Table.Left);
              ("cps", Table.Right);
              ("avg_rx_pps", Table.Right);
              ("avg_tx_pps", Table.Right);
              ("vs_baseline", Table.Right);
            ]
      in
      List.iter
        (fun (name, cps, rx, tx) ->
          Table.add_row table
            [
              name;
              Table.cell_f cps;
              Table.cell_f rx;
              Table.cell_f tx;
              Printf.sprintf "%+.1f%%" ((cps -. base_cps) /. base_cps *. 100.0);
            ])
        results;
      Run_ctx.print_table ctx table;
      Run_ctx.printf ctx
        "Paper shape: Tai Chi ~-0.2%%, vDP ~-8%%, type-2 ~-26%% vs baseline.\n")

(* --- Fig 13: fio ------------------------------------------------------------ *)

let fig13 =
  Exp_desc.make ~name:"fig13"
    ~title:"Figure 13: fio 4KiB IOPS across four systems"
    ~description:"fio 4 KiB random-read IOPS across the same four systems"
    ~cells:(List.map fst four_system_cells)
    ~run_cell:(fun ctx ~seed ~scale cell ->
      let policy =
        param
          (List.map (fun (c, p) -> (c.Exp_desc.key, p)) four_system_cells)
          cell
      in
      let dur = scaled scale (Time_ns.ms 400) in
      let params = Fio.default_params in
      with_system ~ctx ~seed policy (fun sys ->
          let sim = System.sim sys in
          let until = Sim.now sim + dur in
          cp_pressure sys ~until;
          let rng = Rng.split (System.rng sys) "fio" in
          let r =
            Fio.run (System.client sys) rng ~params
              ~cores:(System.storage_cores sys) ~until
          in
          System.advance sys (dur + Time_ns.ms 5);
          ( Policy.name policy,
            Fio.iops r ~duration:dur,
            Fio.bandwidth_mb r ~params ~duration:dur )))
    ~summarize:(fun ctx ~seed:_ ~scale:_ results ->
      let results = List.map snd results in
      let base = match results with (_, iops, _) :: _ -> iops | [] -> 1.0 in
      let table =
        Table.create
          ~columns:
            [
              ("system", Table.Left);
              ("iops", Table.Right);
              ("bw_MB/s", Table.Right);
              ("vs_baseline", Table.Right);
            ]
      in
      List.iter
        (fun (name, iops, bw) ->
          Table.add_row table
            [
              name;
              Table.cell_f iops;
              Table.cell_f bw;
              Printf.sprintf "%+.1f%%" ((iops -. base) /. base *. 100.0);
            ])
        results;
      Run_ctx.print_table ctx table;
      Run_ctx.printf ctx
        "Paper shape: Tai Chi ~-0.06%%, vDP ~-6%%, type-2 ~-25.7%% vs \
         baseline.\n")

(* --- Table 5: ping RTT ------------------------------------------------------ *)

let table5_grid =
  [
    ( { Exp_desc.key = "base"; label = "baseline" },
      ("baseline", Policy.Static_partition) );
    ( { Exp_desc.key = "taichi"; label = "taichi" },
      ("taichi", Policy.taichi_default) );
    ( { Exp_desc.key = "noprobe"; label = "taichi w/o HW probe" },
      ("taichi w/o HW probe", Policy.taichi_no_hw_probe) );
  ]

let table5 =
  Exp_desc.make ~name:"table5"
    ~title:"Table 5: ping RTT across three mechanisms"
    ~description:
      "ping RTT: baseline vs Tai Chi vs Tai Chi without the hardware \
       workload probe"
    ~cells:(List.map fst table5_grid)
    ~run_cell:(fun ctx ~seed ~scale cell ->
      let name, policy =
        param (List.map (fun (c, p) -> (c.Exp_desc.key, p)) table5_grid) cell
      in
      let count = max 400 (int_of_float (3000.0 *. scale)) in
      let summary =
        with_system ~ctx ~seed policy (fun sys ->
            let sim = System.sim sys in
            let interval = Time_ns.ms 2 in
            let dur = (count * interval) + Time_ns.ms 50 in
            let until = Sim.now sim + dur in
            cp_pressure sys ~until;
            let recorder = Recorder.create "ping.rtt" in
            let rng = Rng.split (System.rng sys) "ping" in
            Ping.run (System.client sys) rng
              ~params:{ Ping.default_params with interval; count }
              ~core:(List.hd (System.net_cores sys))
              ~recorder;
            System.advance sys dur;
            Ping.summarize recorder)
      in
      (name, summary))
    ~summarize:(fun ctx ~seed:_ ~scale:_ results ->
      let table =
        Table.create
          ~columns:
            [
              ("mechanism", Table.Left);
              ("min_us", Table.Right);
              ("avg_us", Table.Right);
              ("max_us", Table.Right);
              ("mdev_us", Table.Right);
            ]
      in
      List.iter
        (fun (_, (name, summary)) ->
          Table.add_row table
            [
              name;
              Table.cell_f summary.Ping.min_us;
              Table.cell_f summary.Ping.avg_us;
              Table.cell_f summary.Ping.max_us;
              Table.cell_f summary.Ping.mdev_us;
            ])
        results;
      Run_ctx.print_table ctx table;
      Run_ctx.printf ctx
        "Paper shape: without the probe min/avg/max/mdev inflate (+23%%/+23%%/\
         ~3x/+80%%); with it Tai Chi matches the baseline.\n")

(* --- Fig 14: normalized netperf/sockperf ------------------------------------ *)

(* Latency-limited closed-loop variants: offered load below the data-plane
   ceiling, so scheduling-induced latency shows up as throughput. *)
let rr_case ~connections ~stages ~think client rng ~cores ~until =
  Rr_engine.run client rng
    ~params:{ Rr_engine.connections; stages; think; ramp = Time_ns.ms 1 }
    ~cores ~until

(* Each run-case is one system build; the tcp_stream case contributes two
   display rows (rx and tx pps), so a cell's result is a float list. *)
let fig14_runs = [ "udp_stream"; "tcp_stream"; "tcp_rr"; "sock_tcp"; "sock_udp" ]

let fig14_dur = Time_ns.ms 500

let fig14_case ctx ~seed policy case =
  let dur = fig14_dur in
  let run f =
    with_system ~ctx ~seed policy (fun sys ->
        let sim = System.sim sys in
        let until = Sim.now sim + dur in
        cp_pressure sys ~until;
        let rng = Rng.split (System.rng sys) "fig14" in
        let out = f sys rng until in
        System.advance sys (dur + Time_ns.ms 5);
        out ())
  in
  let cores sys = System.net_cores sys in
  match case with
  | "udp_stream" ->
      run (fun sys rng until ->
          let r =
            Netperf.stream ~gap_mean:(Time_ns.us 15) (System.client sys) rng
              ~connections:8 ~window:1 ~size:1400 ~with_acks:false
              ~cores:(cores sys) ~until
          in
          fun () -> [ Netperf.stream_rx_pps r ~duration:dur ])
  | "tcp_stream" ->
      run (fun sys rng until ->
          let r =
            Netperf.stream ~gap_mean:(Time_ns.us 15) (System.client sys) rng
              ~connections:8 ~window:1 ~size:1460 ~with_acks:true
              ~cores:(cores sys) ~until
          in
          fun () ->
            [
              Netperf.stream_rx_pps r ~duration:dur;
              Netperf.stream_tx_pps r ~duration:dur;
            ])
  | "tcp_rr" ->
      run (fun sys rng until ->
          let r =
            rr_case ~connections:48
              ~stages:
                [
                  Rr_engine.stage ~kind:Packet.Net_rx ~size:128
                    ~gap_after:(Time_ns.us 3) ();
                  Rr_engine.stage ~kind:Packet.Net_tx ~size:128 ~rx:false ();
                ]
              ~think:(Time_ns.us 14) (System.client sys) rng ~cores:(cores sys)
              ~until
          in
          fun () -> [ Rr_engine.tps r ~duration:dur ])
  | "sock_tcp" ->
      run (fun sys rng until ->
          let r =
            rr_case ~connections:32
              ~stages:
                [
                  Rr_engine.stage ~conn_setup:true ~kind:Packet.Net_rx ~size:64
                    ~gap_after:(Time_ns.us 3) ();
                  Rr_engine.stage ~kind:Packet.Net_tx ~size:256 ~rx:false ();
                ]
              ~think:(Time_ns.us 30) (System.client sys) rng ~cores:(cores sys)
              ~until
          in
          fun () -> [ Rr_engine.tps r ~duration:dur ])
  | "sock_udp" ->
      run (fun sys rng until ->
          let r =
            Sockperf.udp (System.client sys) rng ~cores:(cores sys) ~until
          in
          fun () -> [ (Sockperf.udp_summary r).Sockperf.avg_us ])
  | case -> invalid_arg ("fig14: unknown case " ^ case)

let fig14_grid =
  List.concat_map
    (fun case ->
      List.map
        (fun (tag, policy) ->
          ( {
              Exp_desc.key = Printf.sprintf "%s-%s" case tag;
              label = Printf.sprintf "%s, %s" case (Policy.name policy);
            },
            (case, policy) ))
        [ ("base", Policy.Static_partition); ("taichi", Policy.taichi_default) ])
    fig14_runs

let fig14_cases =
  [ "udp_stream(rx_pps)"; "tcp_stream(rx_pps)"; "tcp_stream(tx_pps)";
    "tcp_rr(tps)"; "sockperf_tcp(cps)"; "sockperf_udp(avg_lat)" ]

let fig14 =
  Exp_desc.make ~name:"fig14"
    ~title:"Figure 14: normalized netperf/sockperf performance under Tai Chi"
    ~description:
      "Normalized netperf/sockperf performance under Tai Chi vs the static \
       baseline, six microbenchmark cases"
    ~cells:(List.map fst fig14_grid)
    ~run_cell:(fun ctx ~seed ~scale:_ cell ->
      let case, policy =
        param (List.map (fun (c, p) -> (c.Exp_desc.key, p)) fig14_grid) cell
      in
      fig14_case ctx ~seed policy case)
    ~summarize:(fun ctx ~seed:_ ~scale:_ results ->
      let vals tag =
        List.concat_map
          (fun case -> result results (Printf.sprintf "%s-%s" case tag))
          fig14_runs
      in
      let base = vals "base" and taichi = vals "taichi" in
      let table =
        Table.create
          ~columns:
            [
              ("case", Table.Left);
              ("baseline", Table.Right);
              ("taichi", Table.Right);
              ("overhead", Table.Right);
            ]
      in
      let overheads = ref [] in
      List.iteri
        (fun i name ->
          let b = List.nth base i and t = List.nth taichi i in
          (* The latency case is lower-is-better. *)
          let ov =
            if i = 5 then (t -. b) /. b *. 100.0 else (b -. t) /. b *. 100.0
          in
          overheads := ov :: !overheads;
          Table.add_row table
            [ name; Table.cell_f b; Table.cell_f t; Printf.sprintf "%.2f%%" ov ])
        fig14_cases;
      Run_ctx.print_table ctx table;
      let ovs = !overheads in
      Run_ctx.printf ctx
        "Average overhead %.2f%% (paper: 0.6%% avg, 1.92%% peak).\n"
        (List.fold_left ( +. ) 0.0 ovs /. float_of_int (List.length ovs)))

(* --- Fig 15: MySQL ----------------------------------------------------------- *)

let two_policy_cells =
  [
    ( { Exp_desc.key = "base"; label = "static baseline" },
      Policy.Static_partition );
    ({ Exp_desc.key = "taichi"; label = "taichi" }, Policy.taichi_default);
  ]

let fig15 =
  Exp_desc.make ~name:"fig15"
    ~title:"Figure 15: MySQL (192 sysbench threads) under Tai Chi"
    ~description:"MySQL (sysbench) throughput under Tai Chi vs baseline"
    ~cells:(List.map fst two_policy_cells)
    ~run_cell:(fun ctx ~seed ~scale cell ->
      let policy =
        param
          (List.map (fun (c, p) -> (c.Exp_desc.key, p)) two_policy_cells)
          cell
      in
      let dur = scaled scale (Time_ns.sec 4) in
      with_system ~ctx ~seed policy (fun sys ->
          let sim = System.sim sys in
          let until = Sim.now sim + dur in
          cp_pressure sys ~until;
          let rng = Rng.split (System.rng sys) "mysql" in
          let r =
            Mysql.run (System.client sys) rng ~params:Mysql.default_params
              ~net_cores:(System.net_cores sys)
              ~storage_cores:(System.storage_cores sys)
              ~duration:dur
          in
          System.advance sys (dur + Time_ns.ms 5);
          Mysql.metrics r))
    ~summarize:(fun ctx ~seed:_ ~scale:_ results ->
      let b = result results "base" and t = result results "taichi" in
      let table =
        Table.create
          ~columns:
            [
              ("metric", Table.Left);
              ("baseline", Table.Right);
              ("taichi", Table.Right);
              ("overhead", Table.Right);
            ]
      in
      let row name bv tv =
        Table.add_row table
          [
            name;
            Table.cell_f bv;
            Table.cell_f tv;
            Printf.sprintf "%.2f%%" (overhead_pct ~baseline:bv ~measured:tv);
          ]
      in
      row "max_query/s" b.Mysql.max_query t.Mysql.max_query;
      row "avg_query/s" b.Mysql.avg_query t.Mysql.avg_query;
      row "max_trans/s" b.Mysql.max_trans t.Mysql.max_trans;
      row "avg_trans/s" b.Mysql.avg_trans t.Mysql.avg_trans;
      Run_ctx.print_table ctx table;
      Run_ctx.printf ctx "Paper shape: ~1.56%% average overhead.\n")

(* --- Fig 16: Nginx ----------------------------------------------------------- *)

let fig16_grid =
  List.concat_map
    (fun (proto_tag, proto) ->
      List.map
        (fun (tag, policy) ->
          ( {
              Exp_desc.key = Printf.sprintf "%s-%s" proto_tag tag;
              label =
                Printf.sprintf "%s, %s" proto_tag (Policy.name policy);
            },
            (proto, policy) ))
        [ ("base", Policy.Static_partition); ("taichi", Policy.taichi_default) ])
    [ ("http", `Http); ("https", `Https) ]

let fig16 =
  Exp_desc.make ~name:"fig16"
    ~title:"Figure 16: Nginx requests/s under Tai Chi (10k connections)"
    ~description:"Nginx (wrk) requests per second under Tai Chi vs baseline"
    ~cells:(List.map fst fig16_grid)
    ~run_cell:(fun ctx ~seed ~scale cell ->
      let proto, policy =
        param (List.map (fun (c, p) -> (c.Exp_desc.key, p)) fig16_grid) cell
      in
      let dur = scaled scale (Time_ns.sec 1) in
      with_system ~ctx ~seed policy (fun sys ->
          let sim = System.sim sys in
          let until = Sim.now sim + dur in
          cp_pressure sys ~until;
          let rng = Rng.split (System.rng sys) "nginx" in
          let r =
            match proto with
            | `Http ->
                Nginx.http (System.client sys) rng
                  ~cores:(System.net_cores sys) ~until
            | `Https ->
                Nginx.https_short (System.client sys) rng
                  ~cores:(System.net_cores sys) ~until
          in
          System.advance sys (dur + Time_ns.ms 5);
          Nginx.requests_per_sec r ~duration:dur))
    ~summarize:(fun ctx ~seed:_ ~scale:_ results ->
      let table =
        Table.create
          ~columns:
            [
              ("protocol", Table.Left);
              ("baseline_rps", Table.Right);
              ("taichi_rps", Table.Right);
              ("overhead", Table.Right);
            ]
      in
      List.iter
        (fun name ->
          let b = result results (name ^ "-base") in
          let t = result results (name ^ "-taichi") in
          let shown = if name = "https" then "https_short" else name in
          Table.add_row table
            [
              shown;
              Table.cell_f b;
              Table.cell_f t;
              Printf.sprintf "%.2f%%" (overhead_pct ~baseline:b ~measured:t);
            ])
        [ "http"; "https" ];
      Run_ctx.print_table ctx table;
      Run_ctx.printf ctx "Paper shape: ~0.51%% average overhead, up to ~1%%.\n")

(* --- §8: dynamic repartitioning ---------------------------------------------- *)

(* Two measurement kinds over two layouts; the variant keeps the cell
   result honest instead of overloading a float pair. *)
type sec8_result = Peak of float * float | Cp_time of float

let sec8_boost_layout = { System.n_net = 6; n_storage = 4; n_cp = 2 }

let sec8_grid =
  [
    ( { Exp_desc.key = "peak-4cp"; label = "peak throughput, 4 CP cores" },
      (`Peak, System.default_layout) );
    ( { Exp_desc.key = "peak-2cp"; label = "peak throughput, 2 CP cores" },
      (`Peak, sec8_boost_layout) );
    ( { Exp_desc.key = "cptime-4cp"; label = "synth_cp time, 4 CP cores" },
      (`Cp, System.default_layout) );
    ( { Exp_desc.key = "cptime-2cp"; label = "synth_cp time, 2 CP cores" },
      (`Cp, sec8_boost_layout) );
  ]

let sec8 =
  Exp_desc.make ~name:"sec8"
    ~title:"Section 8: reallocating 50% of CP pCPUs to the data plane"
    ~description:
      "Reallocate 50% of CP pCPUs to the data plane via Tai Chi's dynamic \
       partitioning: peak IOPS / CPS gains with unchanged CP performance"
    ~cells:(List.map fst sec8_grid)
    ~run_cell:(fun ctx ~seed ~scale cell ->
      let kind, layout =
        param (List.map (fun (c, p) -> (c.Exp_desc.key, p)) sec8_grid) cell
      in
      match kind with
      | `Peak ->
          let dur = scaled scale (Time_ns.ms 400) in
          with_system ~ctx ~seed ~layout Policy.taichi_default (fun sys ->
              let sim = System.sim sys in
              let until = Sim.now sim + dur in
              start_bg_cp sys;
              let rng = Rng.split (System.rng sys) "sec8" in
              let crr =
                Netperf.tcp_crr (System.client sys) rng
                  ~cores:(System.net_cores sys) ~until
              in
              let fio =
                Fio.run (System.client sys) rng ~params:Fio.default_params
                  ~cores:(System.storage_cores sys) ~until
              in
              System.advance sys (dur + Time_ns.ms 5);
              Peak
                ( Rr_engine.tps crr ~duration:dur,
                  Fio.iops fio ~duration:dur ))
      | `Cp ->
          with_system ~ctx ~seed ~layout Policy.taichi_default (fun sys ->
              let rng = Rng.split (System.rng sys) "sec8cp" in
              let tasks =
                Synth_cp.make_batch ~rng ~params:Synth_cp.default_params
                  ~locks:[ Task.spinlock "sec8" ] ~affinity:[] ~count:8 ()
              in
              List.iter (fun task -> System.spawn_cp sys task) tasks;
              ignore
                (System.run_until_tasks_done sys tasks ~limit:(Time_ns.sec 20));
              Cp_time (avg_turnaround_ms tasks)))
    ~summarize:(fun ctx ~seed:_ ~scale:_ results ->
      let peak key =
        match result results key with
        | Peak (cps, iops) -> (cps, iops)
        | Cp_time _ -> (0.0, 0.0)
      in
      let cp key =
        match result results key with Cp_time ms -> ms | Peak _ -> 0.0
      in
      let cps0, iops0 = peak "peak-4cp" in
      let cps1, iops1 = peak "peak-2cp" in
      let cp0 = cp "cptime-4cp" and cp1 = cp "cptime-2cp" in
      let table =
        Table.create
          ~columns:
            [
              ("metric", Table.Left);
              ("4 CP cores", Table.Right);
              ("2 CP cores", Table.Right);
              ("change", Table.Right);
            ]
      in
      let row name v0 v1 =
        Table.add_row table
          [
            name;
            Table.cell_f v0;
            Table.cell_f v1;
            Printf.sprintf "%+.1f%%" ((v1 -. v0) /. v0 *. 100.0);
          ]
      in
      row "peak CPS" cps0 cps1;
      row "peak IOPS" iops0 iops1;
      row "synth_cp avg ms (8 tasks)" cp0 cp1;
      Run_ctx.print_table ctx table;
      Run_ctx.printf ctx
        "Paper shape: +39%% peak IOPS, +43%% CPS, CP performance consistent \
         (idle DP cycles absorb the lost CP cores).\n")

(* Declarative experiment descriptors.

   An experiment used to be an opaque [seed -> scale -> unit] closure that
   hid its grid inside nested loops; the registry could neither enumerate
   the cells nor run them anywhere but inline. A descriptor makes the grid
   shape first-class: [cells] enumerates every (figure x policy x knob)
   point, [run_cell] evaluates one point against a run context, and
   [summarize] — always executed on the coordinating domain, after every
   cell has completed — renders tables and checks cross-cell oracles.

   The result type ['r] is existential: each driver picks its own, and the
   pack guarantees [summarize] only ever sees results produced by its own
   [run_cell]. *)

type cell = { key : string; label : string }

type t =
  | T : {
      name : string;
      title : string;
      description : string;
      cells : cell list;
      run_cell : Run_ctx.t -> seed:int -> scale:float -> cell -> 'r;
      summarize :
        Run_ctx.t -> seed:int -> scale:float -> (cell * 'r) list -> unit;
    }
      -> t

let make ~name ~title ~description ~cells ~run_cell ~summarize =
  ignore
    (List.fold_left
       (fun seen c ->
         if List.mem c.key seen then
           invalid_arg
             (Printf.sprintf "Exp_desc.make: duplicate cell key %S in %s" c.key
                name)
         else c.key :: seen)
       [] cells);
  T { name; title; description; cells; run_cell; summarize }

(* A one-cell experiment: the driver does all its printing through the
   cell context and there is nothing to merge. *)
let single ~name ~title ~description run =
  T
    {
      name;
      title;
      description;
      cells = [ { key = "all"; label = title } ];
      run_cell = (fun ctx ~seed ~scale _cell -> run ctx ~seed ~scale);
      summarize = (fun _ctx ~seed:_ ~scale:_ _results -> ());
    }

let name (T d) = d.name
let title (T d) = d.title
let description (T d) = d.description
let cells (T d) = d.cells
let cell_count (T d) = List.length d.cells

(** Full simulated SmartNIC systems under a scheduling policy.

    [create] assembles the Table 4 environment — a 12-core SmartNIC with
    the accelerator pipeline, networking and storage data-plane services,
    a kernel, and the policy's scheduling machinery — and wires every
    hook. Experiments then attach workloads and control-plane tasks and
    advance simulated time. *)

open Taichi_engine
open Taichi_hw
open Taichi_os
open Taichi_accel
open Taichi_core
open Taichi_dataplane
open Taichi_workloads

type layout = {
  n_net : int;  (** networking data-plane cores *)
  n_storage : int;  (** storage data-plane cores *)
  n_cp : int;  (** dedicated control-plane cores *)
}

val default_layout : layout
(** 5 networking + 3 storage data-plane cores, 4 control-plane cores: the
    paper's 8/4 static split on a 12-CPU SmartNIC (Table 4, §6.1). *)

type t

val create :
  ?seed:int ->
  ?layout:layout ->
  ?prepare:(Machine.t -> unit) ->
  ?ctx:Run_ctx.t ->
  Policy.t ->
  t
(** Build the system. For Tai Chi policies, vCPUs still need their hotplug
    boot: call {!warmup}. [prepare] runs right after the machine is
    assembled and before the kernel, services or scheduler exist — the
    chaos harness uses it to install a fault injector that must already
    cover the boot IPIs. [ctx] (default {!Run_ctx.default}) carries the
    run configuration: when it enables tracing, the machine trace is
    switched on once assembly completes, just before [create] returns. *)

val warmup : t -> unit
(** Advance simulated time until the policy's infrastructure is ready
    (vCPU hotplug etc.) and set the measurement epoch. *)

val sim : t -> Sim.t
val machine : t -> Machine.t
val kernel : t -> Kernel.t
val pipeline : t -> Pipeline.t
val policy : t -> Policy.t
val rng : t -> Rng.t
val client : t -> Client.t
val taichi : t -> Taichi.t option

val net_cores : t -> int list
val storage_cores : t -> int list
val dp_cores : t -> int list
val cp_cores : t -> int list  (** dedicated CP physical CPU ids *)

val cp_affinity : t -> int list
(** Kernel CPU ids control-plane tasks bind to under this policy. *)

val net_services : t -> Dp_service.t list
val storage_services : t -> Dp_service.t list
val services : t -> Dp_service.t list

val overload : t -> Overload.t option
(** The policy's overload governor, when armed ([Config.overload] under a
    Tai Chi policy). *)

val cp_backpressure : t -> bool
(** The governor's backpressure signal: true while the brownout ladder is
    at [Defer] or deeper. Workload clients should hold deferrable
    submissions. Always false without a governor. *)

val tenants : t -> Tenant.table
(** The system's one shared tenant table — built once in {!create} and
    threaded through every layer, so dynamically admitted tenants are
    visible here (and in the export) the instant the churn lifecycle
    registers them. *)

val lifecycle : t -> Lifecycle.t option
(** The tenant-churn lifecycle manager, present under a Tai Chi policy
    with [Config.churn] set. *)

val cp_affinity_for : t -> int -> int list
(** [cp_affinity_for t tenant] is the CP CPU set for one tenant's tasks:
    the shared dedicated CP pCPUs plus only that tenant's vCPUs under an
    explicit multi-tenant Tai Chi table; {!cp_affinity} otherwise. *)

val spawn_cp : ?cls:Overload.cls -> ?tenant:int -> t -> Task.t -> unit
(** Spawn a control-plane task owned by [tenant] (default 0, the implicit
    tenant): the task is stamped with the tenant id, and tasks without an
    explicit affinity are bound to {!cp_affinity_for}; an existing pin is
    respected. With an armed overload governor the admission is routed
    through [Overload.admit] on the owning tenant's lane under [cls]
    (default [Standard]) — it may be deferred until that ladder relaxes,
    or shed entirely for [Deferrable] work at the deepest rungs. Under
    churn, a [Draining] or [Retired] tenant refuses the spawn outright
    (counted under [churn.spawn_refused], globally and on the tenant's
    lane), and successfully spawned tasks are registered with the
    lifecycle so a later drain can wait for — or cancel — them. *)

val advance : t -> Time_ns.t -> unit
(** Run the simulation for a further duration. *)

val run_until_tasks_done : t -> Task.t list -> limit:Time_ns.t -> bool
(** Advance until every task finished (true) or the limit elapsed. *)

val epoch : t -> Time_ns.t
(** Start of the measurement window (set by {!warmup}). *)

val elapsed : t -> Time_ns.t
(** Simulated time since the epoch. *)

val audit : t -> string list
(** Machine-wide coherence check: runs every invariant registered on the
    authoritative {!Taichi_hw.Core_state} machine (kernel backing ⇔
    [Vcpu_running], service yielded ⇔ not data-plane owned, accelerator
    mirror lag bounded by the IPI latency) plus the illegal-transition
    count. Empty means coherent; [Exp_common.with_system] fails the run on
    any violation. *)

val dp_latency_hist : t -> Histogram.t
(** Merged per-packet latency across all data-plane services. *)

val dp_latency_hist_of : t -> tenant:int -> Histogram.t
(** Merged per-packet latency across one tenant's data-plane services —
    the victim/aggressor split the isolation oracles measure. *)

val dp_spikes : t -> int
(** Total tail-latency spikes observed by data-plane services. *)

val dp_work_utilization : t -> float
(** Useful data-plane processing time over (elapsed x data-plane cores). *)

val dpcp_roundtrip : t -> Time_ns.t

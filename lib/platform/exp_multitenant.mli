(** Multi-tenant scheduling experiments: tenant count x weight ratio x
    aggressor profile.

    Oracles: weighted vCPU grant shares converge to configured weights
    within 5% under saturation; an idle tenant's capacity is
    redistributed (work conservation); and a CP storm or DP burst from
    the aggressor tenant keeps every victim's DP p99 inside its
    contracted bound with all governor activity attributed to the
    aggressor's ladder only. *)

val multitenant : Exp_desc.t

val aggressor_filter : string -> Exp_desc.cell -> bool
(** [aggressor_filter setting] is the cell filter behind the CLI's
    [--aggressor] / [MULTITENANT_AGGRESSOR] narrowing: ["on"] keeps the
    storm/burst (and determinism-repeat) cells, ["off"] the
    saturation/idle cells. Raises on any other setting. *)

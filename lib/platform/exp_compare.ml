open Taichi_engine
open Taichi_os
open Taichi_core
open Taichi_metrics
open Taichi_workloads
open Taichi_controlplane
open Exp_common

let param table cell = List.assoc cell.Exp_desc.key table
let result results key =
  List.assoc key (List.map (fun (c, r) -> (c.Exp_desc.key, r)) results)

(* Worst data-plane disruption a bursty non-preemptible control-plane load
   can cause under a policy: max ping RTT minus baseline min. *)
let worst_disruption ctx ~seed policy =
  with_system ~ctx ~seed policy (fun sys ->
      let lock = Task.spinlock "t1-driver" in
      let rng = Rng.split (System.rng sys) "table1" in
      let np = Nonpreempt.create rng in
      let body =
        [
          Program.compute (Time_ns.us 500);
          Program.Gen
            (fun () ->
              Program.critical_section lock
                [ Program.kernel_routine (Nonpreempt.sample_long np) ]);
          Program.sleep (Time_ns.us 200);
        ]
      in
      let cp =
        Task.create ~name:"t1-cp"
          ~step:(Program.to_step [ Program.Forever body ])
          ()
      in
      (match policy with
      | Policy.Naive_coschedule | Policy.Uintr_coschedule
      | Policy.Dedicated_core ->
          cp.Task.affinity <- [ List.hd (System.net_cores sys) ]
      | _ -> ());
      System.spawn_cp sys cp;
      let recorder = Recorder.create "t1.rtt" in
      Ping.run (System.client sys) rng
        ~params:
          { Ping.default_params with interval = Time_ns.us 250; count = 1200 }
        ~core:(List.hd (System.net_cores sys))
        ~recorder;
      System.advance sys (Time_ns.ms 400);
      let s = Ping.summarize recorder in
      s.Ping.max_us -. s.Ping.min_us)

(* Measured analogues of the co-scheduling mechanism families the paper
   compares against: a dedicated-scheduler-core design (Shenango/
   Caladan), an OS-scheduler path (Concord-like), and a user-interrupt
   path (Skyloft/Vessel). All share the fatal property the measurement
   exposes: none can break a non-preemptible kernel routine. *)
let table1_grid =
  [
    ( { Exp_desc.key = "dedicated"; label = "Shenango/Caladan-style" },
      ( "Shenango/Caladan-style",
        Policy.Dedicated_core,
        "high (1 core burnt)",
        "partial" ) );
    ( { Exp_desc.key = "os-sched"; label = "Concord-style (OS sched)" },
      ("Concord-style (OS sched)", Policy.Naive_coschedule, "low", "partial") );
    ( { Exp_desc.key = "uintr"; label = "Skyloft/Vessel-style (UINTR)" },
      ( "Skyloft/Vessel-style (UINTR)",
        Policy.Uintr_coschedule,
        "low",
        "partial" ) );
    ( { Exp_desc.key = "taichi"; label = "Tai Chi" },
      ("Tai Chi", Policy.taichi_default, "low (no dedicated core)", "full") );
  ]

let table1 =
  Exp_desc.make ~name:"table1"
    ~title:"Table 1: prior work vs Tai Chi (measured analogues)"
    ~description:
      "Worst measured DP disruption under measured analogues of prior \
       co-scheduling mechanism families vs Tai Chi"
    ~cells:(List.map fst table1_grid)
    ~run_cell:(fun ctx ~seed ~scale:_ cell ->
      let name, policy, overhead, transparency =
        param (List.map (fun (c, p) -> (c.Exp_desc.key, p)) table1_grid) cell
      in
      let us = worst_disruption ctx ~seed policy in
      (name, us, overhead, transparency))
    ~summarize:(fun ctx ~seed:_ ~scale:_ results ->
      let table =
        Table.create
          ~columns:
            [
              ("system", Table.Left);
              ("measured worst DP disruption", Table.Right);
              ("framework overhead", Table.Left);
              ("CP transparency", Table.Left);
            ]
      in
      List.iter
        (fun (_, (name, us, overhead, transparency)) ->
          let granularity =
            if us >= 1000.0 then
              Printf.sprintf "%.1fms (ms-scale)" (us /. 1000.0)
            else Printf.sprintf "%.0fus (us-scale)" us
          in
          Table.add_row table [ name; granularity; overhead; transparency ])
        results;
      Run_ctx.print_table ctx table;
      Run_ctx.printf ctx
        "Non-preemptible routines push every OS/interrupt-based mechanism to \
         ms-scale disruption; Tai Chi's vCPU encapsulation stays at us scale \
         (paper Table 1).\n")

let quick_cps ctx ~seed policy =
  with_system ~ctx ~seed policy (fun sys ->
      let sim = System.sim sys in
      let dur = Time_ns.ms 200 in
      let until = Sim.now sim + dur in
      start_bg_cp sys;
      let rng = Rng.split (System.rng sys) "table2" in
      let r =
        Netperf.tcp_crr (System.client sys) rng ~cores:(System.net_cores sys)
          ~until
      in
      System.advance sys (dur + Time_ns.ms 5);
      Rr_engine.tps r ~duration:dur)

let table2_grid =
  [
    ( { Exp_desc.key = "base"; label = "static baseline" },
      Policy.Static_partition );
    ( { Exp_desc.key = "type1"; label = "type-1 (vDP)" },
      Policy.Taichi_vdp Config.default );
    ({ Exp_desc.key = "type2"; label = "type-2 (QEMU+KVM)" }, Policy.Type2);
    ({ Exp_desc.key = "taichi"; label = "Tai Chi" }, Policy.taichi_default);
  ]

let table2 =
  Exp_desc.make ~name:"table2"
    ~title:"Table 2: type-1 / type-2 / Tai Chi (measured DP performance)"
    ~description:
      "Qualitative type-1 / type-2 / Tai Chi comparison anchored on measured \
       DP performance"
    ~cells:(List.map fst table2_grid)
    ~run_cell:(fun ctx ~seed ~scale:_ cell ->
      let policy =
        param (List.map (fun (c, p) -> (c.Exp_desc.key, p)) table2_grid) cell
      in
      quick_cps ctx ~seed policy)
    ~summarize:(fun ctx ~seed:_ ~scale:_ results ->
      let base = result results "base" in
      let pct v = Printf.sprintf "%.1f%% of baseline" (v /. base *. 100.0) in
      let table =
        Table.create
          ~columns:
            [
              ("property", Table.Left);
              ("type-1 (vDP)", Table.Left);
              ("type-2 (QEMU+KVM)", Table.Left);
              ("Tai Chi", Table.Left);
            ]
      in
      Table.add_row table
        [ "DP residency"; "guest context (vCPU)"; "SmartNIC OS"; "SmartNIC OS" ];
      Table.add_row table
        [
          "DP performance";
          pct (result results "type1");
          pct (result results "type2");
          pct (result results "taichi");
        ];
      Table.add_row table
        [ "CP residency"; "guest context"; "guest OS"; "SmartNIC OS (vCPU)" ];
      Table.add_row table [ "OS count"; "1"; "2"; "1" ];
      Table.add_row table
        [
          "DP-CP IPC";
          "native";
          Printf.sprintf "broken (RPC, %s)"
            (Time_ns.to_string (Policy.dpcp_roundtrip Policy.Type2));
          Printf.sprintf "native (%s)"
            (Time_ns.to_string (Policy.dpcp_roundtrip Policy.taichi_default));
        ];
      Run_ctx.print_table ctx table)

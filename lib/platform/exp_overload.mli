(** The [overload] experiment: VM-startup storm x density sweep x
    overload governor on/off.

    Every cell runs the same storm mix — heavy background DP traffic, the
    Critical monitor background, Deferrable control-plane churn and a
    Standard-class VM-startup storm scaled by density — under the
    no-hardware-probe Tai Chi ablation (so CP placement pressure actually
    reaches the data-plane tail), with and without [Config.overload].
    The determinism repeat is an explicit extra cell ([repeat-d4-on])
    that re-measures the hottest governed point.

    Oracles (run in the descriptor's summarize step), beyond the
    machine-wide Core_state audit:

    - the governor-off baseline breaches the DP p99 guardrail at the top
      density while governor-on holds it;
    - only the [Deferrable] class is ever shed;
    - the ladder performs a bounded number of transitions (no flapping)
      and is back at [Normal] after the post-storm quiet tail;
    - the repeat cell reproduces a bit-identical measurement digest. *)

val overload : Exp_desc.t
(** One cell per (density x governor) grid point plus the determinism
    repeat cell. *)

val governor_filter : string -> Exp_desc.cell -> bool
(** Cell filter keeping one governor setting, ["on"] or ["off"] (the
    CLI's [--overload] / the [OVERLOAD_GOVERNOR] environment variable);
    the repeat cell counts as governed. Raises [Failure] on any other
    setting. *)

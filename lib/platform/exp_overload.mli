(** The [exp_overload] experiment: VM-startup storm x density sweep x
    overload governor on/off.

    Every cell runs the same storm mix — heavy background DP traffic, the
    Critical monitor background, Deferrable control-plane churn and a
    Standard-class VM-startup storm scaled by density — under the
    no-hardware-probe Tai Chi ablation (so CP placement pressure actually
    reaches the data-plane tail), with and without [Config.overload].

    Oracles, beyond the machine-wide Core_state audit:

    - the governor-off baseline breaches the DP p99 guardrail at the top
      density while governor-on holds it;
    - only the [Deferrable] class is ever shed;
    - the ladder performs a bounded number of transitions (no flapping)
      and is back at [Normal] after the post-storm quiet tail;
    - repeating the hottest governed cell at the same seed reproduces a
      bit-identical measurement digest. *)

val set_governor_filter : string option -> unit
(** Restrict the matrix to one governor setting: ["on"] or ["off"] (the
    CLI's [--overload], also honoured from the [OVERLOAD_GOVERNOR]
    environment variable). [None] restores both. *)

val overload : seed:int -> scale:float -> unit

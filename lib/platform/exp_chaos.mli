(** The [chaos] experiment: a seeded fault matrix crossed with resilient
    Tai Chi policies.

    For every fault profile ({!Taichi_faults.Injector.flaky},
    {!Taichi_faults.Injector.storm}) and each policy under test, the
    driver installs a deterministic injector before the system boots,
    arms it for the measurement window, drives mixed data-plane and
    control-plane load through it, then checks the recovery oracles:

    - the machine-wide Core_state audit (via [Exp_common.with_system]);
    - no vCPU still hung past the watchdog bound at the end of the grace
      window ([Vcpu_sched.watchdog_stuck] must be zero);
    - when the storm profile is in the matrix, degraded mode must have
      both engaged and re-armed in at least one scenario.

    The report prints a per-fault-class injected / detected / recovered
    table and the recovery-latency histogram, all read back from the
    machine counter registry and the {!Taichi_core.Recovery} tracker —
    the same data the trace export carries. *)

val set_profile_filter : string option -> unit
(** Restrict the matrix to one named profile (the CLI's
    [--chaos-profile], also honoured from the [CHAOS_PROFILE]
    environment variable). [None] restores the full matrix. *)

val chaos : seed:int -> scale:float -> unit

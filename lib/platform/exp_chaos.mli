(** The [chaos] experiment: a seeded fault matrix crossed with resilient
    Tai Chi policies.

    For every fault profile ({!Taichi_faults.Injector.flaky},
    {!Taichi_faults.Injector.storm}) and each policy under test, the
    cell installs a deterministic injector before the system boots,
    arms it for the measurement window, drives mixed data-plane and
    control-plane load through it, then checks the recovery oracles:

    - the machine-wide Core_state audit (via [Exp_common.with_system]);
    - no vCPU still hung past the watchdog bound at the end of the grace
      window ([Vcpu_sched.watchdog_stuck] must be zero);
    - when the storm profile is in the selected matrix, degraded mode
      must have both engaged and re-armed in at least one scenario
      (checked in the descriptor's summarize step over whatever cells
      ran).

    The report prints a per-fault-class injected / detected / recovered
    table and the recovery-latency histogram, all read back from the
    machine counter registry and the {!Taichi_core.Recovery} tracker —
    the same data the trace export carries. *)

val chaos : Exp_desc.t
(** One cell per (fault profile x resilient policy) matrix point. *)

val profile_filter : string -> Exp_desc.cell -> bool
(** Cell filter keeping only the named profile's matrix row (the CLI's
    [--chaos-profile] / the [CHAOS_PROFILE] environment variable).
    Raises [Failure] on an unknown profile name. *)

open Taichi_engine
open Taichi_os
open Taichi_metrics
open Taichi_core
open Taichi_virt
open Taichi_accel
open Taichi_workloads
open Taichi_controlplane
open Taichi_dataplane
open Exp_common

(* Noisy-neighbour isolation under first-class tenants. The grid spans
   tenant count x weight ratio x aggressor profile and checks the three
   contracts the tenant abstraction makes:

   - {b Shares}: under saturation every tenant's vCPU grant time matches
     its configured weight within [share_tol] — the two-stage weighted
     scheduler's deficit round-robin converges.
   - {b Work conservation}: an idle tenant's capacity is redistributed to
     the backlogged ones instead of being reserved.
   - {b Isolation}: a CP storm or DP burst from the aggressor tenant
     moves every victim's DP p99 by no more than that victim's
     contracted bound, and all governor activity (ladder transitions,
     shed, deferrals, placement denials) lands on the aggressor's lane
     only. *)

let share_tol = 0.05

(* Bounded-ladder oracle, per lane (same budget as exp_overload). *)
let max_transitions = 16

type scenario = Sat | Idle | Cpstorm | Dpburst

let is_aggressor_scenario = function
  | Cpstorm | Dpburst -> true
  | Sat | Idle -> false

type tenant_row = {
  tid : int;
  tname : string;
  weight : int;
  granted_ms : float;
  share : float;  (** fraction of the cell's total grant time *)
  wshare : float;  (** weight / total weight *)
  packets : int;
  p99_us : float;
  bound_us : float;
  level : string;  (** final lane rung; "-" without a governor *)
  lane_trans : int;
  lane_esc : int;
  lane_shed : int;
  lane_deferred : int;
  lane_denied : int;
}

type outcome = {
  key : string;
  scenario : scenario;
  aggressor : int option;
  rows : tenant_row list;
  total_granted_ms : float;
  vms_done : int;
  vms_total : int;
  fingerprint : string;
}

(* --- workloads ----------------------------------------------------------- *)

(* Per-tenant CP saturation: long synthetic tasks pinned to the tenant's
   own vCPUs (two per vCPU, each sized to the whole window), so every
   tenant stays backlogged in the scheduler's tenant stage for the full
   measurement and grant time — not task arrival — is the contended
   resource. *)
let saturate sys ~tenant ~kcpus ~dur =
  let rng = Rng.split (System.rng sys) (Printf.sprintf "mt-sat-%d" tenant) in
  let params =
    { Synth_cp.default_params with Synth_cp.total_work = dur; phases = 4 }
  in
  List.iteri
    (fun i _ ->
      List.iter
        (fun j ->
          let task =
            Synth_cp.make ~tenant ~rng ~params ~locks:[] ~affinity:kcpus
              ~name:(Printf.sprintf "mt%d-sat-%d-%d" tenant i j)
              ()
          in
          System.spawn_cp ~tenant sys task)
        [ 0; 1 ])
    kcpus

(* A light steady CP population — the victim's normal day. *)
let light_cp sys ~tenant ~dur =
  let rng = Rng.split (System.rng sys) (Printf.sprintf "mt-light-%d" tenant) in
  let params =
    { Synth_cp.default_params with Synth_cp.total_work = dur / 8; phases = 3 }
  in
  let tasks =
    Synth_cp.make_batch ~tenant ~rng ~params ~locks:[] ~affinity:[] ~count:4 ()
  in
  List.iter (fun task -> System.spawn_cp ~tenant sys task) tasks

(* The fig17 VM-startup storm, owned by one tenant: the whole burst is
   admitted through that tenant's ladder as Standard work. *)
let storm sys ~tenant ~density ~spread ~recorder =
  let sim = System.sim sys in
  let rng = Rng.split (System.rng sys) "mt-storm" in
  let locks =
    List.init 8 (fun i -> Task.spinlock (Printf.sprintf "mt-driver-%d" i))
  in
  let params =
    Vm_lifecycle.at_density ~base:(Vm_lifecycle.default_params ~rng) density
  in
  let params =
    {
      params with
      Vm_lifecycle.device =
        {
          params.Vm_lifecycle.device with
          Device_mgmt.dpcp_roundtrip = System.dpcp_roundtrip sys;
        };
    }
  in
  let n_vms = max 1 (int_of_float (10.0 *. density)) in
  let tasks =
    List.init n_vms (fun i ->
        Vm_lifecycle.startup_task ~tenant ~sim ~rng ~params ~locks ~affinity:[]
          ~name:(Printf.sprintf "mt-vm-%d" i)
          ~recorder ())
  in
  let gap = spread / max 1 n_vms in
  List.iteri
    (fun i task ->
      ignore
        (Sim.after sim (gap * i) (fun () ->
             System.spawn_cp ~cls:Overload.Standard ~tenant sys task)))
    tasks;
  tasks

(* A DP burst confined to the aggressor's own service cores: near-
   saturating bursty traffic on top of the baseline. *)
let burst sys ~cores ~until =
  let client = System.client sys in
  let rng = Rng.split (System.rng sys) "mt-burst" in
  let net = List.filter (fun c -> List.mem c (System.net_cores sys)) cores in
  let sto =
    List.filter (fun c -> List.mem c (System.storage_cores sys)) cores
  in
  if net <> [] then
    Bgload.start client rng
      ~params:(Bgload.default_params ~target_util:0.9)
      ~cores:net ~kind:Packet.Net_rx ~size:1400 ~until;
  if sto <> [] then
    Bgload.start client rng
      ~params:
        {
          (Bgload.default_params ~target_util:0.6) with
          Bgload.per_packet_est = Time_ns.ns 5200;
        }
      ~cores:sto ~kind:Packet.Storage_read ~size:4096 ~until

(* Deterministic digest of the cell (same discipline as exp_overload):
   identical seeds must reproduce it bit-for-bit. *)
let fingerprint_of sys extras =
  let counters =
    Counters.dump (Taichi_hw.Machine.counters (System.machine sys))
  in
  let buf = Buffer.create 256 in
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s=%d;" k v))
    (List.sort compare counters);
  List.iter (fun s -> Buffer.add_string buf (s ^ ";")) extras;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* --- one cell ------------------------------------------------------------ *)

let measure ctx ~seed ~scale ~key ~specs ~scenario =
  let config =
    (* Same regime as exp_overload: without the hardware probe CP
       placement pressure actually reaches the DP tail, so the aggressor
       has something to pollute. *)
    let c = Config.no_hw_probe Config.default in
    let c = Config.with_tenants c specs in
    if is_aggressor_scenario scenario then Config.with_overload c
    else
      (* The share cells oversubscribe vCPUs (8 per tenant): a tenant
         whose every vCPU is placed drops out of the scheduler's tenant
         stage and its virtual clock is forgiven on re-entry, so with
         only enough vCPUs to cover its share the weight advantage
         erodes. Oversubscription — the paper's own deployment model —
         keeps every backlogged tenant continuously eligible. *)
      { c with Config.n_vcpus = 8 * List.length specs }
  in
  with_system ~ctx ~seed (Policy.Taichi config) (fun sys ->
      let sim = System.sim sys in
      let counters = Taichi_hw.Machine.counters (System.machine sys) in
      let table = System.tenants sys in
      let n = Tenant.count table in
      let aggressor =
        if is_aggressor_scenario scenario then Some (n - 1) else None
      in
      let tc = Option.get (System.taichi sys) in
      let sched = Taichi.scheduler tc in
      let kcpus_of tid =
        List.filter_map
          (fun v -> if v.Vcpu.tenant = tid then Some v.Vcpu.kcpu else None)
          (Taichi.vcpus tc)
      in
      let cores_of tid =
        List.filter_map
          (fun dp ->
            if Dp_service.tenant dp = tid then Some (Dp_service.core dp)
            else None)
          (System.services sys)
      in
      let dur = max (Time_ns.ms 100) (scaled scale (Time_ns.ms 120)) in
      let until = Sim.now sim + dur in
      (* Baseline DP traffic on every core. The saturation cells run it
         hotter so the residual core capacity — the resource the tenant
         stage arbitrates — is smaller than any tenant's vCPU width and
         weights, not vCPU counts, decide the split. *)
      (match scenario with
      | Sat | Idle -> start_bg_dp sys ~target:0.5 ~storage_target:0.25 ~until
      | Cpstorm | Dpburst ->
          start_bg_dp sys ~target:0.25 ~storage_target:0.12 ~until);
      let recorder = Recorder.create "vm.startup" in
      let storm_tasks =
        match scenario with
        | Sat ->
            for tid = 0 to n - 1 do
              saturate sys ~tenant:tid ~kcpus:(kcpus_of tid) ~dur
            done;
            []
        | Idle ->
            (* The last tenant submits nothing: its share must flow to
               the backlogged tenants, not sit reserved. *)
            for tid = 0 to n - 2 do
              saturate sys ~tenant:tid ~kcpus:(kcpus_of tid) ~dur
            done;
            []
        | Cpstorm ->
            start_bg_cp sys;
            for tid = 0 to n - 2 do
              light_cp sys ~tenant:tid ~dur
            done;
            storm sys ~tenant:(n - 1) ~density:4.0 ~spread:(dur / 3) ~recorder
        | Dpburst ->
            start_bg_cp sys;
            for tid = 0 to n - 1 do
              light_cp sys ~tenant:tid ~dur
            done;
            burst sys ~cores:(cores_of (n - 1)) ~until;
            []
      in
      System.advance sys dur;
      if storm_tasks <> [] then begin
        (* Post-storm: let deferred admissions drain and the aggressor
           ladder re-arm before the books close. *)
        ignore
          (System.run_until_tasks_done sys storm_tasks ~limit:(Time_ns.sec 2));
        System.advance sys (Time_ns.ms 20)
      end;
      let ov = System.overload sys in
      let granted tid =
        Vcpu_sched.granted_ns sched ~tenant:tid
      in
      let total_granted = List.fold_left ( + ) 0 (List.map granted (Tenant.ids table)) in
      let total_weight = Tenant.total_weight table in
      let get = Counters.get counters in
      let rows =
        List.map
          (fun tid ->
            let tenant = Tenant.get table tid in
            let hist = System.dp_latency_hist_of sys ~tenant:tid in
            let packets = Histogram.count hist in
            let p99_us =
              if packets = 0 then 0.0
              else float_of_int (Histogram.percentile hist 99.0) /. 1e3
            in
            let g = granted tid in
            {
              tid;
              tname = tenant.Tenant.name;
              weight = tenant.Tenant.weight;
              granted_ms = float_of_int g /. 1e6;
              share =
                (if total_granted = 0 then 0.0
                 else float_of_int g /. float_of_int total_granted);
              wshare = float_of_int tenant.Tenant.weight /. float_of_int total_weight;
              packets;
              p99_us;
              bound_us = float_of_int tenant.Tenant.dp_p99_bound /. 1e3;
              level =
                (match ov with
                | Some ov -> Overload.level_label (Overload.level_of ov ~tenant:tid)
                | None -> "-");
              lane_trans = get (Tenant.counter tid "overload.transitions");
              lane_esc = get (Tenant.counter tid "overload.escalations");
              lane_shed =
                List.fold_left
                  (fun acc cls ->
                    acc
                    + get
                        (Tenant.counter tid
                           ("overload.shed." ^ Tenant.cls_name cls)))
                  0 Tenant.all_classes;
              lane_deferred =
                List.fold_left
                  (fun acc cls ->
                    acc
                    + get
                        (Tenant.counter tid
                           ("overload.deferred." ^ Tenant.cls_name cls)))
                  0 Tenant.all_classes;
              lane_denied = get (Tenant.counter tid "overload.place_denied");
            })
          (Tenant.ids table)
      in
      {
        key;
        scenario;
        aggressor;
        rows;
        total_granted_ms = float_of_int total_granted /. 1e6;
        vms_done = List.length (List.filter Task.is_finished storm_tasks);
        vms_total = List.length storm_tasks;
        fingerprint =
          fingerprint_of sys
            (List.map (fun r -> Printf.sprintf "p99.%d=%.3f" r.tid r.p99_us) rows);
      })

(* --- oracles ------------------------------------------------------------- *)

let check_oracles cells repeat_fp =
  let fail fmt = Printf.ksprintf failwith fmt in
  List.iter
    (fun c ->
      match c.scenario with
      | Sat ->
          (* Weighted-sharing: every backlogged tenant's grant share
             matches its weight share within the tolerance. *)
          if c.total_granted_ms <= 0.0 then
            fail "exp_multitenant[%s]: no vCPU grant time under saturation"
              c.key;
          List.iter
            (fun r ->
              if Float.abs (r.share -. r.wshare) > share_tol then
                fail
                  "exp_multitenant[%s]: tenant %s (weight %d) got share %.3f, \
                   expected %.3f +/- %.2f — weighted scheduling did not \
                   converge"
                  c.key r.tname r.weight r.share r.wshare share_tol)
            c.rows
      | Idle ->
          (* Work conservation: the idle tenant's capacity flows to the
             backlogged ones — their combined share approaches 1 instead
             of stopping at their combined weight share. *)
          let idle = List.nth c.rows (List.length c.rows - 1) in
          let active_share =
            List.fold_left
              (fun acc r -> if r.tid = idle.tid then acc else acc +. r.share)
              0.0 c.rows
          in
          if c.total_granted_ms <= 0.0 then
            fail "exp_multitenant[%s]: no vCPU grant time with a tenant idle"
              c.key;
          if active_share < 0.9 then
            fail
              "exp_multitenant[%s]: backlogged tenants got only %.3f of the \
               grant time with tenant %s idle — capacity was reserved, not \
               redistributed"
              c.key active_share idle.tname
      | Cpstorm | Dpburst ->
          let agg = Option.get c.aggressor in
          List.iter
            (fun r ->
              if r.tid <> agg then begin
                (* Isolation: every victim's DP p99 stays inside its
                   contracted bound, on real traffic. *)
                if r.packets = 0 then
                  fail
                    "exp_multitenant[%s]: victim %s observed no DP traffic — \
                     the isolation oracle is vacuous"
                    c.key r.tname;
                if r.p99_us > r.bound_us then
                  fail
                    "exp_multitenant[%s]: aggressor moved victim %s's DP p99 \
                     to %.1fus, past its %.1fus contract"
                    c.key r.tname r.p99_us r.bound_us;
                (* Attribution: no governor activity on a victim lane. *)
                if
                  r.lane_trans > 0 || r.lane_shed > 0 || r.lane_deferred > 0
                  || r.lane_denied > 0
                then
                  fail
                    "exp_multitenant[%s]: governor activity on victim %s's \
                     lane (trans=%d shed=%d deferred=%d denied=%d) — brownout \
                     was not attributed to the aggressor only"
                    c.key r.tname r.lane_trans r.lane_shed r.lane_deferred
                    r.lane_denied
              end
              else begin
                if c.scenario = Cpstorm && r.lane_esc = 0 then
                  fail
                    "exp_multitenant[%s]: the CP storm never escalated the \
                     aggressor's ladder — the cell is not stressful enough \
                     to test isolation"
                    c.key;
                if r.lane_trans > max_transitions then
                  fail
                    "exp_multitenant[%s]: %d transitions on the aggressor \
                     lane (max %d) — flapping"
                    c.key r.lane_trans max_transitions
              end)
            c.rows)
    cells;
  (* Cross-cell work conservation: with the same weights and window, the
     backlogged tenant must end up with strictly more grant time when its
     neighbour idles than when the neighbour competes. *)
  let outcome key = List.find_opt (fun c -> c.key = key) cells in
  (match (outcome "sat-t2-skew", outcome "idle-t2-skew") with
  | Some sat, Some idle ->
      let g cell tid = (List.nth cell.rows tid).granted_ms in
      if g idle 0 <= g sat 0 then
        failwith
          (Printf.sprintf
             "exp_multitenant: tenant alpha gained nothing from its \
              neighbour idling (%.2fms idle vs %.2fms contended) — not work \
              conserving"
             (g idle 0) (g sat 0))
  | _ -> ());
  match repeat_fp with
  | Some (first, second) when first <> second ->
      failwith
        (Printf.sprintf
           "exp_multitenant: repeat run at the same seed diverged (%s vs %s)"
           first second)
  | _ -> ()

(* --- the grid ------------------------------------------------------------ *)

(* The p99 contract the isolation cells are judged against. Looser than
   the governor's own 150 us escalation guardrail: the victims run their
   own CP population on top of the baseline traffic, and the contract
   bounds what the *aggressor* may add — not the victim's self-inflicted
   tail. *)
let contract = Time_ns.us 200

let t2_even =
  [
    Tenant.spec ~dp_p99_bound:contract "alpha";
    Tenant.spec ~dp_p99_bound:contract "bravo";
  ]

let t2_skew =
  [
    Tenant.spec ~weight:3 ~dp_p99_bound:contract "alpha";
    Tenant.spec ~dp_p99_bound:contract "bravo";
  ]

let t3_skew =
  [
    Tenant.spec ~weight:4 ~dp_p99_bound:contract "alpha";
    Tenant.spec ~weight:2 ~dp_p99_bound:contract "bravo";
    Tenant.spec ~dp_p99_bound:contract "charlie";
  ]

let grid =
  let cell key label v = ({ Exp_desc.key; label }, v) in
  [
    cell "sat-t2-even" "2 tenants 1:1, all saturating" (`Point (Sat, t2_even));
    cell "sat-t2-skew" "2 tenants 3:1, all saturating" (`Point (Sat, t2_skew));
    cell "sat-t3-skew" "3 tenants 4:2:1, all saturating"
      (`Point (Sat, t3_skew));
    cell "idle-t2-skew" "2 tenants 3:1, bravo idle" (`Point (Idle, t2_skew));
    cell "storm-t2-even" "2 tenants 1:1, bravo runs a CP storm"
      (`Point (Cpstorm, t2_even));
    cell "storm-t2-skew" "2 tenants 3:1, bravo runs a CP storm"
      (`Point (Cpstorm, t2_skew));
    cell "storm-t3-skew" "3 tenants 4:2:1, charlie runs a CP storm"
      (`Point (Cpstorm, t3_skew));
    cell "burst-t2-even" "2 tenants 1:1, bravo bursts its data plane"
      (`Point (Dpburst, t2_even));
    cell "burst-t2-skew" "2 tenants 3:1, bravo bursts its data plane"
      (`Point (Dpburst, t2_skew));
    cell "repeat-storm-t2-skew"
      "determinism repeat: 2 tenants 3:1, CP storm" `Repeat;
  ]

(* The CI matrix pins one aggressor setting per job; the CLI turns
   --aggressor / MULTITENANT_AGGRESSOR into a cell filter over these
   keys (the repeat cell counts as an aggressor cell). *)
let aggressor_filter setting cell =
  let prefix s =
    let k = cell.Exp_desc.key in
    let n = String.length s in
    String.length k >= n && String.sub k 0 n = s
  in
  match setting with
  | "on" -> prefix "storm-" || prefix "burst-" || prefix "repeat-storm"
  | "off" -> prefix "sat-" || prefix "idle-"
  | a -> failwith (Printf.sprintf "exp_multitenant: unknown aggressor %S" a)

let multitenant =
  Exp_desc.make ~name:"multitenant"
    ~title:
      "MULTITENANT: tenant count x weight ratio x aggressor profile \
       (weighted-share, work-conservation and noisy-neighbour isolation \
       oracles)"
    ~description:
      "Two-stage weighted scheduler under multi-tenant load: weighted \
       shares converge under saturation, idle capacity is redistributed, \
       and a CP storm / DP burst from one tenant stays inside every \
       victim's p99 contract with brownout attributed to the aggressor's \
       ladder only"
    ~cells:(List.map fst grid)
    ~run_cell:(fun ctx ~seed ~scale cell ->
      match
        List.assoc cell.Exp_desc.key
          (List.map (fun (c, v) -> (c.Exp_desc.key, v)) grid)
      with
      | `Point (scenario, specs) ->
          Run_ctx.printf ctx "\n-- %s: %s (seed %d)\n" cell.Exp_desc.key
            cell.Exp_desc.label seed;
          measure ctx ~seed ~scale ~key:cell.Exp_desc.key ~specs ~scenario
      | `Repeat ->
          Run_ctx.printf ctx
            "\n-- determinism check: repeating storm-t2-skew (seed %d)\n" seed;
          measure ctx ~seed ~scale ~key:"repeat-storm-t2-skew" ~specs:t2_skew
            ~scenario:Cpstorm)
    ~summarize:(fun ctx ~seed:_ ~scale:_ results ->
      let outcome key =
        List.assoc_opt key
          (List.map (fun (c, r) -> (c.Exp_desc.key, r)) results)
      in
      let cells =
        List.filter_map
          (fun (c, r) ->
            if c.Exp_desc.key = "repeat-storm-t2-skew" then None else Some r)
          results
      in
      let table =
        Table.create
          ~columns:
            [
              ("cell", Table.Left);
              ("tenant", Table.Left);
              ("w", Table.Right);
              ("granted_ms", Table.Right);
              ("share", Table.Right);
              ("target", Table.Right);
              ("dp_p99_us", Table.Right);
              ("bound_us", Table.Right);
              ("lane", Table.Left);
              ("trans", Table.Right);
              ("shed", Table.Right);
              ("deferred", Table.Right);
            ]
      in
      List.iter
        (fun c ->
          List.iter
            (fun r ->
              let marker =
                if c.aggressor = Some r.tid then r.tname ^ "*" else r.tname
              in
              Table.add_row table
                [
                  c.key;
                  marker;
                  string_of_int r.weight;
                  Printf.sprintf "%.2f" r.granted_ms;
                  Printf.sprintf "%.3f" r.share;
                  Printf.sprintf "%.3f" r.wshare;
                  Printf.sprintf "%.1f" r.p99_us;
                  Printf.sprintf "%.1f" r.bound_us;
                  r.level;
                  string_of_int r.lane_trans;
                  string_of_int r.lane_shed;
                  string_of_int r.lane_deferred;
                ])
            c.rows)
        cells;
      Run_ctx.print_table ctx table;
      let repeat_fp =
        match (outcome "storm-t2-skew", outcome "repeat-storm-t2-skew") with
        | Some first, Some again -> Some (first.fingerprint, again.fingerprint)
        | _ -> None
      in
      check_oracles cells repeat_fp;
      Run_ctx.printf ctx
        "\nShares track weights within %.0f%%, idle capacity is \
         redistributed, and every aggressor cell (*) kept its victims \
         inside their p99 contracts with brownout on the aggressor's lane \
         only.\n"
        (share_tol *. 100.0))

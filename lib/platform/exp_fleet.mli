(** The [fleet] experiment: a rack of SmartNICs x NIC fault domains x
    cross-NIC tenant failover.

    Every cell runs a region-wide VM-startup storm (diurnal x
    flash-crowd modulated) across 8-16 full systems on the
    {!Taichi_fleet} epoch substrate, with a cross-NIC RPC ping mesh and
    a deterministic fault plan ({!Taichi_faults.Nic_faults}): mid-storm
    NIC crashes, a brownout, a fabric partition and a drain-window
    overrun in the 16-NIC storm cell. The grid contrasts governor
    on/off and failover on/off; a quiet faultless cell baselines the
    exchange/RPC accounting and the explicit repeat cell re-measures
    the primary point for bit-identity.

    Oracles (run in the descriptor's summarize step), beyond the
    per-survivor Core_state audit:

    - zero committed-tenant loss with failover on: every dynamic tenant
      committed on a crashed NIC is re-placed on a survivor;
    - with failover off, the crash demonstrably costs tenants (and
      nothing is re-placed);
    - failover receipts land only on crashed NICs' own committed
      tenants;
    - fleet SLO attainment with the governor on is never below
      governor off on the matched 8-NIC crash cells;
    - the exchange books balance (delivered + lost <= sent) and a
      faultless fabric loses nothing and abandons no RPC;
    - the repeat cell reproduces a bit-identical fleet fingerprint. *)

val fleet : Exp_desc.t
(** Six cells: 8-NIC crash x governor on/off x failover on/off (three
    points), the faultless integrity cell, the 16-NIC storm cell, and
    the determinism repeat. *)

val nics_filter : int -> Exp_desc.cell -> bool
(** Cell filter keeping the cells whose fleet is [n] NICs wide (the
    CLI's [--nics] / the [FLEET_NICS] environment variable); the repeat
    cell rides with its 8-NIC base cell. *)

val failover_filter : string -> Exp_desc.cell -> bool
(** Cell filter keeping one failover setting, ["on"] or ["off"] (the
    CLI's [--failover] / the [FLEET_FAILOVER] environment variable).
    Raises [Failure] on any other setting. *)

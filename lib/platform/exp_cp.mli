(** Control-plane performance experiments: Fig 11 (§6.2) and Fig 17
    (§6.6), as sweepable descriptors. *)

val fig11 : Exp_desc.t
(** Average synth_cp execution time vs concurrency, baseline vs Tai Chi,
    with the data plane held at 30% utilization. One cell per
    (concurrency, policy) grid point. *)

val fig17 : Exp_desc.t
(** Average VM startup time vs instance density, with and without
    Tai Chi, normalized to the CP SLO. One cell per (density, policy)
    grid point. *)

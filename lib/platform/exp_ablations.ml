open Taichi_engine
open Taichi_os
open Taichi_core
open Taichi_metrics
open Taichi_workloads
open Taichi_controlplane
open Exp_common

type outcome = {
  label : string;
  cp_ms : float;  (** avg synth_cp turnaround *)
  rtt_max_us : float;
  vm_exits : int;
  placements : int;
  unsafe : int;
  max_spin_ms : float;  (** worst per-task spin time: lock-safety damage *)
}

let scenario ctx ~seed label config =
  with_system ~ctx ~seed (Policy.Taichi config) (fun sys ->
      let sim = System.sim sys in
      let horizon = Time_ns.sec 4 in
      let until = Sim.now sim + horizon in
      start_bg_dp sys ~target:0.15 ~until;
      start_bg_cp sys;
      (* Latency probe on one core. *)
      let rtt = Recorder.create "rtt" in
      let rng = Rng.split (System.rng sys) "abl" in
      Ping.run (System.client sys) rng
        ~params:{ Ping.default_params with interval = Time_ns.ms 1; count = 2000 }
        ~core:(List.hd (System.net_cores sys))
        ~recorder:rtt;
      (* Lock-heavy CP burst. *)
      let tasks =
        Synth_cp.make_batch ~rng
          ~params:{ Synth_cp.default_params with total_work = Time_ns.ms 25 }
          ~locks:[ Task.spinlock "abl-a"; Task.spinlock "abl-b" ]
          ~affinity:[] ~count:24 ()
      in
      List.iter (fun t -> System.spawn_cp sys t) tasks;
      ignore (System.run_until_tasks_done sys tasks ~limit:horizon);
      let tc = match System.taichi sys with Some tc -> tc | None -> assert false in
      let s = Vcpu_sched.stats (Taichi.scheduler tc) in
      let max_spin =
        List.fold_left (fun acc t -> max acc t.Task.spin_time) 0 tasks
      in
      {
        label;
        cp_ms = avg_turnaround_ms tasks;
        rtt_max_us =
          (if Recorder.count rtt = 0 then 0.0
           else Time_ns.to_us_f (Recorder.max_value rtt));
        vm_exits = Taichi.total_vm_exits tc;
        placements = s.Vcpu_sched.placements;
        unsafe = s.Vcpu_sched.unsafe_suspensions;
        max_spin_ms = Time_ns.to_ms_f max_spin;
      })

let variants =
  [
    ("full", "full taichi", Config.default);
    ("fixed-slice", "fixed slice", Config.fixed_slice Config.default);
    ("fixed-threshold", "fixed threshold", Config.fixed_threshold Config.default);
    ("unsafe-locks", "no lock-safe resched", Config.unsafe_locks Config.default);
  ]

let ablations_grid =
  List.map
    (fun (key, label, config) ->
      ({ Exp_desc.key; label }, (label, config)))
    variants

let ablations =
  Exp_desc.make ~name:"ablations"
    ~title:"Ablations: adaptive slice / adaptive threshold / lock safety"
    ~description:
      "Disable each Tai Chi mechanism in turn (adaptive slice, adaptive \
       threshold, lock-safe rescheduling) and measure the damage"
    ~cells:(List.map fst ablations_grid)
    ~run_cell:(fun ctx ~seed ~scale:_ cell ->
      let label, config =
        List.assoc cell.Exp_desc.key
          (List.map (fun (c, v) -> (c.Exp_desc.key, v)) ablations_grid)
      in
      scenario ctx ~seed label config)
    ~summarize:(fun ctx ~seed:_ ~scale:_ results ->
      let table =
        Table.create
          ~columns:
            [
              ("variant", Table.Left);
              ("cp_avg_ms", Table.Right);
              ("rtt_max_us", Table.Right);
              ("vm_exits", Table.Right);
              ("placements", Table.Right);
              ("unsafe_susp", Table.Right);
              ("max_spin_ms", Table.Right);
            ]
      in
      List.iter
        (fun (_, o) ->
          Table.add_row table
            [
              o.label;
              Table.cell_f o.cp_ms;
              Table.cell_f o.rtt_max_us;
              string_of_int o.vm_exits;
              string_of_int o.placements;
              string_of_int o.unsafe;
              Table.cell_f o.max_spin_ms;
            ])
        results;
      Run_ctx.print_table ctx table;
      Run_ctx.printf ctx
        "Expected: fixed slice raises VM-exit pressure; fixed threshold \
         either wastes idle cycles or false-positives; disabling lock safety \
         produces unsafe suspensions and inflated spin times.\n")

(** Tenant churn under fire: the live admit/retire lifecycle as an
    experiment. Cells cover steady arrival waves with graceful
    departures, a departure under CP/DP saturation (forcing the drain
    watchdog), rapid admit/retire flapping, pool-exhaustion refusal with
    capped-backoff retry across a departure, and a chaos-under-churn run
    on the {!Taichi_faults.Injector.churn} fault profile. Oracles check
    that every drain completes, refusals are retried (never abandoned),
    victim tenants keep their DP p99 contracts, resource pools are whole
    after every retirement, and a repeated cell fingerprints
    identically. The zero-orphan drain audit runs via the standard
    [with_system] audit hook. *)

val churn : Exp_desc.t

val profile_filter : string -> Exp_desc.cell -> bool
(** [profile_filter setting cell] is the [--churn-profile] CLI filter:
    ["steady"], ["flap"] (which also keeps the determinism repeat cell)
    or ["chaos"]. Fails on any other setting. *)

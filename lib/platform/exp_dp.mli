(** Data-plane experiments: Figs 12-16, Table 5 (§6.3-§6.5) and the §8
    dynamic-repartitioning proof of concept, as sweepable descriptors. *)

val fig12 : Exp_desc.t
(** netperf tcp_crr across baseline / Tai Chi / Tai Chi-vDP / type-2. *)

val fig13 : Exp_desc.t
(** fio 4 KiB IOPS across the same four systems. *)

val table5 : Exp_desc.t
(** ping RTT: baseline vs Tai Chi vs Tai Chi without the hardware
    workload probe. *)

val fig14 : Exp_desc.t
(** Normalized netperf/sockperf performance under Tai Chi. One cell per
    (run-case, policy); the tcp_stream case yields two display rows. *)

val fig15 : Exp_desc.t
(** MySQL (sysbench) throughput under Tai Chi vs baseline. *)

val fig16 : Exp_desc.t
(** Nginx (wrk) requests per second under Tai Chi vs baseline. *)

val sec8 : Exp_desc.t
(** Reallocate 50% of CP pCPUs to the data plane via Tai Chi's dynamic
    partitioning: peak IOPS / CPS gains with unchanged CP performance. *)

let all =
  [
    Exp_motivation.fig2;
    Exp_motivation.fig3;
    Exp_motivation.fig4;
    Exp_motivation.fig5;
    Exp_motivation.fig6;
    Exp_cp.fig11;
    Exp_dp.fig12;
    Exp_dp.fig13;
    Exp_dp.table5;
    Exp_dp.fig14;
    Exp_dp.fig15;
    Exp_dp.fig16;
    Exp_cp.fig17;
    Exp_compare.table1;
    Exp_compare.table2;
    Exp_dp.sec8;
    Exp_ablations.ablations;
    Exp_chaos.chaos;
    Exp_overload.overload;
    Exp_multitenant.multitenant;
    Exp_churn.churn;
    Exp_fleet.fleet;
  ]

let find name = List.find_opt (fun d -> Exp_desc.name d = name) all

(* Edit distance for "did you mean" suggestions on a typoed experiment
   name — the registry is tiny, so the O(n*m) textbook recurrence is
   plenty. *)
let edit_distance a b =
  let la = String.length a and lb = String.length b in
  let d = Array.make_matrix (la + 1) (lb + 1) 0 in
  for i = 0 to la do
    d.(i).(0) <- i
  done;
  for j = 0 to lb do
    d.(0).(j) <- j
  done;
  for i = 1 to la do
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      d.(i).(j) <-
        min
          (min (d.(i - 1).(j) + 1) (d.(i).(j - 1) + 1))
          (d.(i - 1).(j - 1) + cost)
    done
  done;
  d.(la).(lb)

let closest name =
  let scored =
    List.map
      (fun d ->
        ( edit_distance name (Exp_desc.name d),
          (Exp_desc.name d, Exp_desc.cell_count d) ))
      all
  in
  match List.sort compare scored with
  | (dist, candidate) :: _ when dist <= 3 -> Some candidate
  | _ -> None

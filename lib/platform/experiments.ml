let all =
  [
    ("fig2", Exp_motivation.fig2);
    ("fig3", Exp_motivation.fig3);
    ("fig4", Exp_motivation.fig4);
    ("fig5", Exp_motivation.fig5);
    ("fig6", Exp_motivation.fig6);
    ("fig11", Exp_cp.fig11);
    ("fig12", Exp_dp.fig12);
    ("fig13", Exp_dp.fig13);
    ("table5", Exp_dp.table5);
    ("fig14", Exp_dp.fig14);
    ("fig15", Exp_dp.fig15);
    ("fig16", Exp_dp.fig16);
    ("fig17", Exp_cp.fig17);
    ("table1", Exp_compare.table1);
    ("table2", Exp_compare.table2);
    ("sec8", Exp_dp.sec8);
    ("ablations", Exp_ablations.ablations);
    ("chaos", Exp_chaos.chaos);
    ("overload", Exp_overload.overload);
  ]

(** Explicit, immutable experiment run context.

    Replaces the module-level [set_tracing] / [set_experiment] /
    [set_audit_collect] / [trace_runs] / [audit_failures] refs that used
    to live in {!Exp_common}: everything a run needs to know (tracing
    on/off, experiment label, audit mode) and everything it produces
    (harvested trace runs, collected audit violations, progress output)
    flows through a value of this type. The record is immutable; the
    harvest sink and the output buffer it points at are owned by exactly
    one cell at a time, which is what makes the domain-parallel sweep
    race-free and bit-deterministic. *)

type audit_mode =
  | Abort  (** post-run audit violations raise [Failure] (tests, bench) *)
  | Collect
      (** violations are recorded in the sink so a batch completes and the
          CLI can exit with its distinct audit status *)

type audit_failure = {
  experiment : string;
  seed : int;
  violations : string list;
}

type t

val create :
  ?tracing:bool -> ?audit:audit_mode -> ?experiment:string -> unit -> t
(** Fresh context with a fresh, empty harvest sink, writing output
    straight to stdout. Defaults: tracing off, [Abort], ["unnamed"]. *)

val default : t
(** [create ()] — the context used when a caller has no opinion. *)

val experiment : t -> string
val tracing : t -> bool
val audit_mode : t -> audit_mode

val with_experiment : t -> string -> t
(** Same sink and output, new experiment label. *)

val for_cell : t -> t
(** Derive a per-cell context: same tracing / audit mode / experiment
    label, but a fresh private sink and a fresh private output buffer.
    The sweep runs one cell per derived context, then merges with
    {!absorb} and {!flush_into_stdout} in deterministic cell order. *)

val print_string : t -> string -> unit
val printf : t -> ('a, unit, string, unit) format4 -> 'a
val print_table : t -> Taichi_metrics.Table.t -> unit

val banner : t -> string -> unit
(** Section header ("title\n=====") through the context's output. *)

val flush_into_stdout : t -> unit
(** Emit and clear a cell context's buffered output; no-op on an
    unbuffered context. *)

val flush_into : into:t -> t -> unit
(** [flush_into ~into:parent cell] moves the cell's buffered output to
    the parent's output (stdout, or the parent's own buffer when the
    whole sweep runs buffered); no-op on an unbuffered cell. *)

val buffered_contents : t -> string
(** Current buffered output without clearing it; [""] on an unbuffered
    context. The equivalence tests run whole sweeps under a buffered
    context and compare these bytes across job counts. *)

val harvest : t -> Taichi_metrics.Export.run -> unit
val record_audit_failure : t -> audit_failure -> unit

val record_engine_events : t -> scheduled:int -> processed:int -> unit
(** Accumulate one finished system's simulator event counters into the
    sink. [Exp_common.with_system] calls this for every run, so a cell
    context's totals tell the bench how much engine work a cell did. *)

val runs : t -> Taichi_metrics.Export.run list
(** Harvested trace runs, in completion order. *)

val audit_failures : t -> audit_failure list
(** Collected audit failures, in completion order. *)

val engine_events : t -> int * int
(** [(scheduled, processed)] simulator event totals accumulated by
    {!record_engine_events} (and merged by {!absorb}). *)

val absorb : into:t -> t -> unit
(** [absorb ~into:parent cell] appends the cell sink's runs and audit
    failures to the parent sink, preserving the cell's internal order. *)

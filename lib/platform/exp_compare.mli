(** Comparison tables: Table 1 (prior work) and Table 2 (virtualization
    approaches), with measured values where the simulator can produce
    them, as sweepable descriptors. *)

val table1 : Exp_desc.t
(** Scheduling granularity / framework overhead / CP transparency,
    combining the paper's qualitative rows with measured granularity for
    the OS-scheduler (naive) path and Tai Chi. One cell per mechanism
    family. *)

val table2 : Exp_desc.t
(** Type-1 vs type-2 vs Tai Chi: residency, measured data-plane
    performance, OS count and DP-CP IPC latency. One cell per measured
    system. *)

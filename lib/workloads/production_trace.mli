(** Synthetic production telemetry (Figs 3 and 5 inputs).

    The paper's motivation figures summarize fleet telemetry we cannot
    access: 1.2 million per-second data-plane CPU utilization records
    (99.68% below 32.5%) and 12 node-hours of non-preemptible routine
    traces. This module regenerates statistically equivalent populations
    from the published summary statistics, so the motivation figures can
    be reproduced and the generators validated by property tests. *)

open Taichi_engine

val sample_utilizations : Rng.t -> n:int -> float array
(** Per-core-second data-plane utilization samples: a lognormal body
    (median ≈ 10%, σ ≈ 0.42) with rare burst seconds, calibrated so
    ≈99.7% of samples fall below 32.5%. *)

val fraction_below : float array -> float -> float

val cdf_points : float array -> xs:float list -> (float * float) list
(** [(x, fraction of samples <= x)] for each requested threshold. *)

val mean : float array -> float

(** {2 Fleet load curves}

    Deterministic modulation of offered load over a synthetic day, used by
    the fleet experiment to drive correlated tenant bursts (ROADMAP item
    3). All functions are pure in their arguments, so N NICs evaluating
    the same curve at the same phase agree without shared state. *)

val diurnal : phase:float -> float
(** [diurnal ~phase] is the diurnal load multiplier at [phase] ∈ [0,1)
    of the synthetic day (values outside wrap): a sine with trough 0.4x
    at phase 0 and peak 1.6x at phase 0.5. *)

type flash_crowd = { at : float; magnitude : float; width : float }
(** A flash crowd centred at day-phase [at], multiplying load by up to
    [magnitude] and decaying linearly to 1x at distance [width]. *)

val flash_crowds : Rng.t -> n:int -> flash_crowd list
(** [flash_crowds rng ~n] draws [n] crowds from [rng] — deterministic per
    seed, so a fleet harness derives one list per run and every NIC sees
    the same correlated bursts. *)

val load_factor : ?crowds:flash_crowd list -> phase:float -> unit -> float
(** [load_factor ?crowds ~phase ()] is the combined diurnal × flash-crowd
    multiplier, clamped to at least 0.05. *)

open Taichi_engine

let sample_utilizations rng ~n =
  Array.init n (fun _ ->
      let base =
        if Rng.bernoulli rng ~p:0.002 then
          (* Burst second: provisioning headroom being consumed. *)
          Dist.uniform rng ~lo:0.33 ~hi:0.95
        else Dist.lognormal rng ~mu:(log 0.10) ~sigma:0.42
      in
      Float.max 0.004 (Float.min 1.0 base))

let fraction_below samples x =
  let below = Array.fold_left (fun acc v -> if v < x then acc + 1 else acc) 0 samples in
  float_of_int below /. float_of_int (Array.length samples)

let cdf_points samples ~xs =
  List.map (fun x -> (x, fraction_below samples x)) xs

let mean samples =
  Array.fold_left ( +. ) 0.0 samples /. float_of_int (Array.length samples)

(* Fleet load-curve modulation (ROADMAP item 3): a diurnal sine over a
   synthetic day plus seeded flash crowds, both pure functions of their
   inputs so every NIC in a fleet can evaluate the same curve without
   sharing state. *)

let diurnal ~phase =
  let p = phase -. Float.of_int (int_of_float phase) in
  let p = if p < 0.0 then p +. 1.0 else p in
  (* Trough 0.4x at p=0 ("03:00"), peak 1.6x half a day later. *)
  1.0 -. (0.6 *. cos (2.0 *. Float.pi *. p))

type flash_crowd = { at : float; magnitude : float; width : float }

let flash_crowds rng ~n =
  List.init (max 0 n) (fun _ ->
      {
        at = Rng.float rng 1.0;
        magnitude = Dist.uniform rng ~lo:1.5 ~hi:4.0;
        width = Dist.uniform rng ~lo:0.01 ~hi:0.05;
      })

let crowd_factor crowds ~phase =
  List.fold_left
    (fun acc c ->
      (* Wrap-around distance on the unit circle keeps a crowd near the
         day boundary symmetric. *)
      let d = Float.abs (phase -. c.at) in
      let d = Float.min d (1.0 -. d) in
      if d >= c.width then acc
      else acc +. ((c.magnitude -. 1.0) *. (1.0 -. (d /. c.width))))
    1.0 crowds

let load_factor ?(crowds = []) ~phase () =
  Float.max 0.05 (diurnal ~phase *. crowd_factor crowds ~phase)

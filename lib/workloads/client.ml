open Taichi_engine
open Taichi_accel
open Taichi_dataplane

type t = {
  sim : Sim.t;
  pipeline : Pipeline.t;
  handlers : (int, Packet.t -> unit) Hashtbl.t;
  mutable next_tag : int;
}

let conn_bit = Net_service.connection_tag_bit

let create sim pipeline ~services =
  let t = { sim; pipeline; handlers = Hashtbl.create 4096; next_tag = 1 } in
  let route pkts n =
    for i = 0 to n - 1 do
      let pkt = pkts.(i) in
      let key = pkt.Packet.tag land lnot conn_bit in
      match Hashtbl.find_opt t.handlers key with
      | Some f ->
          Hashtbl.remove t.handlers key;
          f pkt
      | None -> ()
    done
  in
  List.iter
    (fun dp ->
      let hooks = Dp_service.hooks dp in
      let previous = hooks.Dp_service.on_packets_done in
      hooks.Dp_service.on_packets_done <-
        (fun pkts n ->
          previous pkts n;
          route pkts n))
    services;
  t

let sim t = t.sim

let submit t ~kind ~size ~core ?(conn_setup = false) ~on_done () =
  let tag = t.next_tag in
  t.next_tag <- t.next_tag + 1;
  Hashtbl.replace t.handlers tag on_done;
  let full_tag = if conn_setup then tag lor conn_bit else tag in
  let pkt =
    Packet.alloc (Pipeline.arena t.pipeline) ~kind ~size ~dst_core:core
      ~tag:full_tag
  in
  Pipeline.submit t.pipeline pkt

let submit_background t ~kind ~size ~core =
  let pkt =
    Packet.alloc (Pipeline.arena t.pipeline) ~kind ~size ~dst_core:core ~tag:0
  in
  Pipeline.submit t.pipeline pkt

let outstanding t = Hashtbl.length t.handlers

open Taichi_engine

type config = { preprocess : Time_ns.t; transfer : Time_ns.t }

let default_config = { preprocess = Time_ns.ns 2700; transfer = Time_ns.ns 500 }

(* Packet deliveries are batched: instead of one engine event (and one
   closure) per submitted packet, the pipeline keeps a FIFO of
   in-flight descriptors — due time, reserved engine sequence number,
   destination flight cell, packet — in circular parallel arrays, and
   arms a single drain timer for the queue head. The hardware window is
   constant, so due times and sequence numbers are both monotone in
   submit order and the FIFO never needs sorting.

   Bit-exactness with the seed one-event-per-packet engine: each packet
   reserves, at submit, exactly the sequence number its dedicated event
   would have carried, and the drain only delivers the next packet
   inline when no foreign event orders before that packet's (due, seq);
   otherwise it re-arms the timer under the packet's own reserved seq
   and yields, letting the engine interleave the foreign event exactly
   where the per-packet engine would have. *)

type t = {
  sim : Sim.t;
  config : config;
  arena : Packet.arena;
      (* descriptor pool for everything submitted through this pipeline;
         the service frees after [on_packets_done], the drop and
         discard paths free inline *)
  rings : (int, Ring.t) Hashtbl.t;
  in_flight : (int, int ref) Hashtbl.t;
  mutable probe_hook : (Packet.t -> unit) option;
  mutable deliver_hook : core:int -> unit;
  mutable submitted : int;
  mutable delivered : int;
  (* delivery FIFO (circular; grows by doubling; capacity power of 2) *)
  mutable q_due : int array;
  mutable q_seq : int array;
  mutable q_cell : int ref array;
  mutable q_pkt : Packet.t array;
  mutable q_head : int;
  mutable q_len : int;
  (* true iff a drain timer is pending or a drain is in progress *)
  mutable armed : bool;
  mutable drain_cb : unit -> unit;
}

let config t = t.config
let arena t = t.arena
let window t = t.config.preprocess + t.config.transfer
let attach_ring t ~core ring = Hashtbl.replace t.rings core ring
let ring t ~core = Hashtbl.find t.rings core
let set_probe_hook t hook = t.probe_hook <- hook
let set_deliver_hook t hook = t.deliver_hook <- hook

let flight_cell t core =
  match Hashtbl.find_opt t.in_flight core with
  | Some cell -> cell
  | None ->
      let cell = ref 0 in
      Hashtbl.replace t.in_flight core cell;
      cell

let in_flight t ~core = !(flight_cell t core)

(* --- delivery FIFO ------------------------------------------------------- *)

let enqueue t ~due ~seq ~cell pkt =
  let cap = Array.length t.q_due in
  if t.q_len = cap then begin
    (* The packet being enqueued doubles as the fill value, so the empty
       pipeline never needs a dummy descriptor. *)
    let ncap = if cap = 0 then 64 else cap * 2 in
    let ndue = Array.make ncap 0
    and nseq = Array.make ncap 0
    and ncell = Array.make ncap cell
    and npkt = Array.make ncap pkt in
    for i = 0 to t.q_len - 1 do
      let j = (t.q_head + i) land (cap - 1) in
      ndue.(i) <- t.q_due.(j);
      nseq.(i) <- t.q_seq.(j);
      ncell.(i) <- t.q_cell.(j);
      npkt.(i) <- t.q_pkt.(j)
    done;
    t.q_due <- ndue;
    t.q_seq <- nseq;
    t.q_cell <- ncell;
    t.q_pkt <- npkt;
    t.q_head <- 0
  end;
  let cap = Array.length t.q_due in
  let i = (t.q_head + t.q_len) land (cap - 1) in
  t.q_due.(i) <- due;
  t.q_seq.(i) <- seq;
  t.q_cell.(i) <- cell;
  t.q_pkt.(i) <- pkt;
  t.q_len <- t.q_len + 1

(* Deliver the queue head, then keep draining inline while the next
   packet is due at this same instant and nothing else wants to fire
   first. *)
let rec drain t =
  let mask = Array.length t.q_due - 1 in
  let h = t.q_head in
  let pkt = t.q_pkt.(h) in
  let cell = t.q_cell.(h) in
  t.q_head <- (h + 1) land mask;
  t.q_len <- t.q_len - 1;
  decr cell;
  pkt.Packet.t_ring <- Sim.now t.sim;
  let ring = Hashtbl.find t.rings pkt.Packet.dst_core in
  (* The destination ring's owner claims the packet: tenant identity is a
     property of where the I/O lands, stamped on the delivery path. *)
  pkt.Packet.tenant <- Ring.tenant ring;
  if Ring.push ring pkt then begin
    t.delivered <- t.delivered + 1;
    t.deliver_hook ~core:pkt.Packet.dst_core
  end
  else
    (* A full ring drops the descriptor on the floor; its slot recycles
       immediately. *)
    Packet.free t.arena pkt;
  if t.q_len = 0 then t.armed <- false
  else begin
    let h = t.q_head in
    let due = t.q_due.(h) and seq = t.q_seq.(h) in
    if due > Sim.now t.sim then arm t ~due ~seq
    else if Sim.has_event_before t.sim ~time:due ~seq then arm t ~due ~seq
    else drain t
  end

and arm t ~due ~seq =
  t.armed <- true;
  Sim.at_reserved t.sim due ~seq t.drain_cb

let create ?(config = default_config) sim =
  let t =
    {
      sim;
      config;
      arena = Packet.arena ~capacity:4096 ();
      rings = Hashtbl.create 16;
      in_flight = Hashtbl.create 16;
      probe_hook = None;
      deliver_hook = (fun ~core:_ -> ());
      submitted = 0;
      delivered = 0;
      q_due = [||];
      q_seq = [||];
      q_cell = [||];
      q_pkt = [||];
      q_head = 0;
      q_len = 0;
      armed = false;
      drain_cb = (fun () -> ());
    }
  in
  (* One drain closure per pipeline, allocated here once — the per-packet
     path allocates none. *)
  t.drain_cb <- (fun () -> drain t);
  t

let submit t pkt =
  t.submitted <- t.submitted + 1;
  pkt.Packet.t_submit <- Sim.now t.sim;
  let cell = flight_cell t pkt.Packet.dst_core in
  incr cell;
  (match t.probe_hook with Some hook -> hook pkt | None -> ());
  (* Reserved after the probe hook, matching the seed engine's sequence
     assignment order exactly. *)
  let seq = Sim.reserve_seq t.sim in
  let due = Sim.now t.sim + window t in
  enqueue t ~due ~seq ~cell pkt;
  if not t.armed then arm t ~due ~seq

let submitted t = t.submitted
let delivered t = t.delivered

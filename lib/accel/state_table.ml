type cpu_state = P_state | V_state

type t = {
  states : cpu_state array;
  frozen : bool array;
  mutable updates : int;
  mutable stalled : int;
}

let create ~cores =
  {
    states = Array.make cores P_state;
    frozen = Array.make cores false;
    updates = 0;
    stalled = 0;
  }

let get t ~core = t.states.(core)

(* A frozen record models the accelerator losing table-update writes for
   one CPU: ordinary [set]s are dropped (and counted) so the mirror goes
   stale, exactly the divergence the resync detector must catch. *)
let set t ~core s =
  if t.frozen.(core) then t.stalled <- t.stalled + 1
  else begin
    t.states.(core) <- s;
    t.updates <- t.updates + 1
  end

let freeze t ~core = t.frozen.(core) <- true
let thaw t ~core = t.frozen.(core) <- false
let frozen t ~core = t.frozen.(core)

let force t ~core s =
  t.frozen.(core) <- false;
  t.states.(core) <- s;
  t.updates <- t.updates + 1

let state_name = function P_state -> "P" | V_state -> "V"
let updates t = t.updates
let stalled_updates t = t.stalled

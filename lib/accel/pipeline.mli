(** The programmable I/O preprocessing pipeline (Fig 6).

    Every offloaded I/O descriptor walks two hardware stages before any
    software sees it: preprocessing (payload handling inside the
    accelerator, 2.7 µs) and transfer into the ring shared with the
    data-plane service (0.5 µs). The pipeline exposes a probe hook that
    fires at packet {e detection}, before preprocessing starts — the
    scheduling window Tai Chi's hardware workload probe exploits to hide
    the 2 µs vCPU switch (§3.4 Observation 4). *)

open Taichi_engine

type config = {
  preprocess : Time_ns.t;  (** Fig 6 stage ② *)
  transfer : Time_ns.t;  (** Fig 6 stage ③ *)
}

val default_config : config
(** 2.7 µs + 0.5 µs, the paper's measured stage times. *)

type t

val create : ?config:config -> Sim.t -> t

val config : t -> config

val arena : t -> Packet.arena
(** The descriptor pool everything submitted through this pipeline is
    allocated from. Clients {!Packet.alloc} here; the consuming service
    frees once [on_packets_done] returns, and the pipeline itself frees
    descriptors a full ring drops. *)

val window : t -> Time_ns.t
(** [window t] is the total hardware window (preprocess + transfer). *)

val attach_ring : t -> core:int -> Ring.t -> unit
(** Bind the ring that receives descriptors destined to [core]. *)

val ring : t -> core:int -> Ring.t
(** Raises [Not_found] when no ring is attached. *)

val set_probe_hook : t -> (Packet.t -> unit) option -> unit
(** Install the detection-time hook (the hardware workload probe). *)

val set_deliver_hook : t -> (core:int -> unit) -> unit
(** Called after a descriptor lands in a ring, with the destination core —
    how the data-plane service model learns its ring became non-empty. *)

val submit : t -> Packet.t -> unit
(** [submit t pkt] runs the probe hook now, then delivers the descriptor to
    its core's ring after the hardware window. Stamps [t_submit] and
    [t_ring]. *)

val in_flight : t -> core:int -> int
(** Descriptors submitted but not yet delivered for [core] — the yield
    race window the vCPU scheduler re-checks before committing a yield. *)

val submitted : t -> int
val delivered : t -> int

type t = {
  name : string;
  capacity : int;
  mutable tenant : int;
  q : Packet.t Queue.t;
  mutable drops : int;
  mutable enqueued : int;
}

let create ?(capacity = 4096) ?(tenant = 0) ~name () =
  { name; capacity; tenant; q = Queue.create (); drops = 0; enqueued = 0 }

let name t = t.name
let capacity t = t.capacity
let tenant t = t.tenant
let set_tenant t tenant = t.tenant <- tenant
let length t = Queue.length t.q
let is_empty t = Queue.is_empty t.q
let iter f t = Queue.iter f t.q

let push t pkt =
  if Queue.length t.q >= t.capacity then begin
    t.drops <- t.drops + 1;
    false
  end
  else begin
    Queue.push pkt t.q;
    t.enqueued <- t.enqueued + 1;
    true
  end

let pop_burst t ~max =
  let rec take n acc =
    if n = 0 || Queue.is_empty t.q then List.rev acc
    else take (n - 1) (Queue.pop t.q :: acc)
  in
  take max []

let drops t = t.drops
let total_enqueued t = t.enqueued

(* A bounded descriptor ring as a preallocated circular buffer: push and
   pop move two ints, no per-entry allocation (the seed used [Queue.t],
   one cons cell per push). Hot consumers drain with {!pop_burst_into}
   into a caller-owned scratch array; the list-returning {!pop_burst}
   survives for cold paths and tests. *)

type t = {
  name : string;
  capacity : int;
  mutable tenant : int;
  buf : Packet.t array;
  mutable head : int;
  mutable len : int;
  mutable drops : int;
  mutable enqueued : int;
}

let create ?(capacity = 4096) ?(tenant = 0) ~name () =
  if capacity < 1 then invalid_arg "Ring.create: capacity must be >= 1";
  {
    name;
    capacity;
    tenant;
    buf = Array.make capacity Packet.dummy;
    head = 0;
    len = 0;
    drops = 0;
    enqueued = 0;
  }

let name t = t.name
let capacity t = t.capacity
let tenant t = t.tenant
let set_tenant t tenant = t.tenant <- tenant
let length t = t.len
let is_empty t = t.len = 0

let wrap t i = if i >= t.capacity then i - t.capacity else i

let iter f t =
  for k = 0 to t.len - 1 do
    f t.buf.(wrap t (t.head + k))
  done

let push t pkt =
  if t.len >= t.capacity then begin
    t.drops <- t.drops + 1;
    false
  end
  else begin
    t.buf.(wrap t (t.head + t.len)) <- pkt;
    t.len <- t.len + 1;
    t.enqueued <- t.enqueued + 1;
    true
  end

let pop_burst_into t dst ~max =
  let n = min (min max (Array.length dst)) t.len in
  for k = 0 to n - 1 do
    dst.(k) <- t.buf.(wrap t (t.head + k))
  done;
  t.head <- wrap t (t.head + n);
  t.len <- t.len - n;
  n

let pop_burst t ~max =
  let n = min max t.len in
  let rec take k acc =
    if k < 0 then acc else take (k - 1) (t.buf.(wrap t (t.head + k)) :: acc)
  in
  let pkts = take (n - 1) [] in
  t.head <- wrap t (t.head + n);
  t.len <- t.len - n;
  pkts

let drops t = t.drops
let total_enqueued t = t.enqueued

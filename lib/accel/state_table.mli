(** The per-CPU state table inside the programmable accelerator.

    The hardware workload probe keeps one record per physical core: either
    P-state (a data-plane service runs natively; probe interrupts are
    masked) or V-state (a vCPU currently occupies the core; an arriving
    packet must trigger an IRQ to evict it). The vCPU scheduler updates the
    table on every placement change (§4.3, Fig 10). *)

type cpu_state = P_state | V_state

type t

val create : cores:int -> t
val get : t -> core:int -> cpu_state
val set : t -> core:int -> cpu_state -> unit
val state_name : cpu_state -> string

val updates : t -> int
(** Number of applied [set]/[force] calls — the table-update traffic
    between the vCPU scheduler and the accelerator. *)

(** {2 Fault injection}

    A per-core record can be frozen to model the accelerator losing
    table-update writes: while frozen, {!set} drops the write (counted in
    {!stalled_updates}) and the record goes stale. Recovery resyncs with
    {!force}, which always applies and un-freezes the record. *)

val freeze : t -> core:int -> unit
val thaw : t -> core:int -> unit
val frozen : t -> core:int -> bool

val force : t -> core:int -> cpu_state -> unit
(** [force t ~core s] writes [s] regardless of the frozen bit and thaws
    the record — the divergence detector's resync primitive. *)

val stalled_updates : t -> int
(** Writes dropped because the target record was frozen. *)

(** I/O work descriptors flowing through the SmartNIC accelerator.

    A "packet" stands for one unit of offloaded I/O — a network frame for
    the DPDK-like service or a block request for the SPDK-like service.
    Timestamps cover the Fig 6 pipeline stages.

    Descriptors on the hot path live in a preallocated {!arena} and
    recycle through a free list (mirroring the Sim event pool), so
    steady-state traffic allocates nothing per packet. {!create} remains
    for cold paths and tests; it heap-allocates a record the arena
    ignores. *)

open Taichi_engine

type kind = Net_rx | Net_tx | Storage_read | Storage_write

type t = {
  mutable pid : int;
  mutable kind : kind;
  mutable size : int;  (** bytes *)
  mutable dst_core : int;
      (** physical core whose data-plane service handles it *)
  mutable tag : int;  (** caller-defined correlation id (flow, op, request) *)
  mutable tenant : int;
      (** owning tenant id, stamped from the destination ring at submit;
          0 = the implicit tenant *)
  mutable t_submit : Time_ns.t;  (** entered the accelerator (Fig 6 ①) *)
  mutable t_ring : Time_ns.t;  (** landed in the service ring (Fig 6 ③) *)
  mutable t_done : Time_ns.t;  (** software processing finished (Fig 6 ④) *)
  idx : int;
      (** arena slot identity, fixed for the record's whole life;
          [-1] for heap packets from {!create} *)
}

val create : kind:kind -> size:int -> dst_core:int -> tag:int -> t
(** Heap-allocate a standalone packet ([idx = -1]); {!free} on it is a
    no-op. For hot paths use {!alloc}. *)

val dummy : t
(** A shared inert record for initialising packet arrays. Never enqueue
    or free it. *)

val kind_name : kind -> string
val pp : Format.formatter -> t -> unit

(** {1 Arena} *)

exception Exhausted
(** Raised by {!alloc} when a [fixed] arena has no free slot. *)

type arena

val arena : ?fixed:bool -> capacity:int -> unit -> arena
(** A preallocated pool of [capacity] descriptor records. By default the
    arena doubles when it runs dry; [~fixed:true] makes {!alloc} raise
    {!Exhausted} instead. *)

val alloc : arena -> kind:kind -> size:int -> dst_core:int -> tag:int -> t
(** Pop a free slot and restamp it in place: no allocation. The caller
    chain owns the record until someone calls {!free}; completion
    callbacks must copy fields they need later, since the slot recycles
    after free. *)

val free : arena -> t -> unit
(** Return a packet's slot to the free list and bump its generation.
    No-op for heap packets ([idx = -1]); raises [Invalid_argument] on a
    double free or a packet from another arena. *)

val index : t -> int
(** The packet's arena slot, [-1] for heap packets. *)

val generation : arena -> int -> int
(** How many times slot [i] has been freed — distinct generations never
    alias. *)

val is_live : arena -> int -> bool
val arena_capacity : arena -> int
val live_packets : arena -> int

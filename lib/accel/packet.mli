(** I/O work descriptors flowing through the SmartNIC accelerator.

    A "packet" stands for one unit of offloaded I/O — a network frame for
    the DPDK-like service or a block request for the SPDK-like service.
    Timestamps cover the Fig 6 pipeline stages. *)

open Taichi_engine

type kind = Net_rx | Net_tx | Storage_read | Storage_write

type t = {
  pid : int;
  kind : kind;
  size : int;  (** bytes *)
  dst_core : int;  (** physical core whose data-plane service handles it *)
  tag : int;  (** caller-defined correlation id (flow, op, request) *)
  mutable tenant : int;
      (** owning tenant id, stamped from the destination ring at submit;
          0 = the implicit tenant *)
  mutable t_submit : Time_ns.t;  (** entered the accelerator (Fig 6 ①) *)
  mutable t_ring : Time_ns.t;  (** landed in the service ring (Fig 6 ③) *)
  mutable t_done : Time_ns.t;  (** software processing finished (Fig 6 ④) *)
}

val create : kind:kind -> size:int -> dst_core:int -> tag:int -> t
val kind_name : kind -> string
val pp : Format.formatter -> t -> unit

(** A bounded descriptor ring between the accelerator and one data-plane
    service — the memory "shared with the corresponding DP service" of
    Fig 6 ③. *)

type t

val create : ?capacity:int -> ?tenant:int -> name:string -> unit -> t
(** [create ~name ()] is an empty ring; default capacity 4096, owned by
    the implicit tenant 0. *)

val name : t -> string
val capacity : t -> int

val tenant : t -> int
(** [tenant t] is the owning tenant id; packets delivered into this ring
    are stamped with it. *)

val set_tenant : t -> int -> unit
(** Reassign ring ownership. The tenant-churn lifecycle hands floating
    rings to a newly admitted tenant and back to the pool on retire;
    packets already resident keep the stamp they were delivered with. *)

val length : t -> int
val is_empty : t -> bool

val iter : (Packet.t -> unit) -> t -> unit
(** Visit resident descriptors FIFO-first; the drain audit uses this to
    prove a retired tenant left no packets behind. *)

val push : t -> Packet.t -> bool
(** [push t pkt] enqueues and returns [true]; returns [false] (and counts a
    drop) when the ring is full. *)

val pop_burst : t -> max:int -> Packet.t list
(** [pop_burst t ~max] dequeues up to [max] descriptors in FIFO order —
    [rte_eth_rx_burst] semantics. Allocates the list; hot consumers use
    {!pop_burst_into}. *)

val pop_burst_into : t -> Packet.t array -> max:int -> int
(** [pop_burst_into t dst ~max] dequeues up to
    [min max (Array.length dst)] descriptors into [dst.(0..n-1)] and
    returns [n] — the allocation-free burst used on the service poll
    loop. *)

val drops : t -> int
val total_enqueued : t -> int

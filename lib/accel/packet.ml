open Taichi_engine

type kind = Net_rx | Net_tx | Storage_read | Storage_write

type t = {
  pid : int;
  kind : kind;
  size : int;
  dst_core : int;
  tag : int;
  mutable tenant : int;
  mutable t_submit : Time_ns.t;
  mutable t_ring : Time_ns.t;
  mutable t_done : Time_ns.t;
}

(* Pids only need to be unique for identification in [pp]; the atomic
   counter keeps allocation race-free when several simulated systems run
   on concurrent domains. Behaviour must never depend on pid values. *)
let next_pid = Atomic.make 0

let create ~kind ~size ~dst_core ~tag =
  let pid = Atomic.fetch_and_add next_pid 1 + 1 in
  {
    pid;
    kind;
    size;
    dst_core;
    tag;
    tenant = 0;
    t_submit = 0;
    t_ring = 0;
    t_done = 0;
  }

let kind_name = function
  | Net_rx -> "net_rx"
  | Net_tx -> "net_tx"
  | Storage_read -> "storage_read"
  | Storage_write -> "storage_write"

let pp fmt t =
  Format.fprintf fmt "pkt<%d %s %dB core%d tag=%d>" t.pid (kind_name t.kind)
    t.size t.dst_core t.tag

open Taichi_engine

type kind = Net_rx | Net_tx | Storage_read | Storage_write

type t = {
  mutable pid : int;
  mutable kind : kind;
  mutable size : int;
  mutable dst_core : int;
  mutable tag : int;
  mutable tenant : int;
  mutable t_submit : Time_ns.t;
  mutable t_ring : Time_ns.t;
  mutable t_done : Time_ns.t;
  idx : int;
}

(* Pids only need to be unique for identification in [pp]; the atomic
   counter keeps allocation race-free when several simulated systems run
   on concurrent domains. Behaviour must never depend on pid values. *)
let next_pid = Atomic.make 0

let create ~kind ~size ~dst_core ~tag =
  let pid = Atomic.fetch_and_add next_pid 1 + 1 in
  {
    pid;
    kind;
    size;
    dst_core;
    tag;
    tenant = 0;
    t_submit = 0;
    t_ring = 0;
    t_done = 0;
    idx = -1;
  }

let dummy =
  {
    pid = 0;
    kind = Net_rx;
    size = 0;
    dst_core = 0;
    tag = 0;
    tenant = 0;
    t_submit = 0;
    t_ring = 0;
    t_done = 0;
    idx = -1;
  }

let kind_name = function
  | Net_rx -> "net_rx"
  | Net_tx -> "net_tx"
  | Storage_read -> "storage_read"
  | Storage_write -> "storage_write"

let pp fmt t =
  Format.fprintf fmt "pkt<%d %s %dB core%d tag=%d>" t.pid (kind_name t.kind)
    t.size t.dst_core t.tag

(* --- arena ---------------------------------------------------------------- *)

(* Descriptor records live in a preallocated arena and recycle through a
   LIFO free list, mirroring the Sim event pool: a steady-state run
   allocates nothing on the per-packet path — [alloc] pops a slot,
   restamps the fields in place and hands the same record back out. The
   slot index is the packet's identity ([idx], immutable for the record's
   whole life); generations count recycles per slot so tests can prove no
   stale handle ever aliases a new allocation. [create] survives for cold
   paths and tests: a heap packet carries [idx = -1] and [free] ignores
   it.

   Ownership rule: whoever takes a packet out of circulation frees it —
   the data-plane service after [on_packets_done] returns, the pipeline
   when a full ring drops the delivery, the drain escalation when it
   discards a backlog. Completion callbacks must copy what they need;
   retaining the record past the callback reads recycled fields. *)

exception Exhausted

type arena = {
  mutable slots : t array;
  mutable gens : int array; (* recycles per slot, bumped on free *)
  mutable alive : bool array;
  mutable freelist : int array; (* LIFO stack of free slot indices *)
  mutable free_top : int;
  fixed : bool; (* fixed capacity: [alloc] on empty raises {!Exhausted} *)
}

let fresh_slot i =
  {
    pid = 0;
    kind = Net_rx;
    size = 0;
    dst_core = 0;
    tag = 0;
    tenant = 0;
    t_submit = 0;
    t_ring = 0;
    t_done = 0;
    idx = i;
  }

let arena ?(fixed = false) ~capacity () =
  if capacity < 1 then invalid_arg "Packet.arena: capacity must be >= 1";
  {
    slots = Array.init capacity fresh_slot;
    gens = Array.make capacity 0;
    alive = Array.make capacity false;
    (* top of stack = lowest index, so allocation order is predictable *)
    freelist = Array.init capacity (fun i -> capacity - 1 - i);
    free_top = capacity;
    fixed;
  }

let arena_capacity a = Array.length a.slots
let live_packets a = Array.length a.slots - a.free_top

let grow a =
  let cap = Array.length a.slots in
  let ncap = cap * 2 in
  let slots = Array.init ncap (fun i -> if i < cap then a.slots.(i) else fresh_slot i) in
  let gens = Array.make ncap 0 in
  Array.blit a.gens 0 gens 0 cap;
  let alive = Array.make ncap false in
  Array.blit a.alive 0 alive 0 cap;
  let freelist = Array.make ncap 0 in
  for k = 0 to cap - 1 do
    freelist.(k) <- ncap - 1 - k
  done;
  a.slots <- slots;
  a.gens <- gens;
  a.alive <- alive;
  a.freelist <- freelist;
  a.free_top <- cap

let alloc a ~kind ~size ~dst_core ~tag =
  if a.free_top = 0 then if a.fixed then raise Exhausted else grow a;
  a.free_top <- a.free_top - 1;
  let i = a.freelist.(a.free_top) in
  a.alive.(i) <- true;
  let p = a.slots.(i) in
  p.pid <- Atomic.fetch_and_add next_pid 1 + 1;
  p.kind <- kind;
  p.size <- size;
  p.dst_core <- dst_core;
  p.tag <- tag;
  p.tenant <- 0;
  p.t_submit <- 0;
  p.t_ring <- 0;
  p.t_done <- 0;
  p

let free a p =
  if p.idx >= 0 then begin
    if p.idx >= Array.length a.slots || a.slots.(p.idx) != p then
      invalid_arg "Packet.free: packet does not belong to this arena";
    if not a.alive.(p.idx) then invalid_arg "Packet.free: double free";
    a.alive.(p.idx) <- false;
    a.gens.(p.idx) <- a.gens.(p.idx) + 1;
    a.freelist.(a.free_top) <- p.idx;
    a.free_top <- a.free_top + 1
  end

let index p = p.idx
let generation a i = a.gens.(i)
let is_live a i = a.alive.(i)

open Taichi_engine
open Taichi_accel

type cost_params = {
  base : Time_ns.t;
  per_byte_ns : float;
  connection_extra : Time_ns.t;
}

(* Calibrated to SmartNIC-class ARM cores: a per-core ceiling of roughly
   450k small packets/s, with connection establishment costing an order of
   magnitude more than forwarding (flow insertion, state allocation). *)
let default_cost =
  { base = Time_ns.ns 1800; per_byte_ns = 0.30; connection_extra = Time_ns.ns 12000 }

let connection_tag_bit = 1 lsl 60

let packet_cost cost pkt =
  let size_cost = int_of_float (float_of_int pkt.Packet.size *. cost.per_byte_ns) in
  let conn =
    if pkt.Packet.tag land connection_tag_bit <> 0 then cost.connection_extra
    else 0
  in
  cost.base + size_cost + conn

let create ?(cost = default_cost) ?tenant machine pipeline ~core =
  let config =
    Dp_service.default_config ?tenant ~core ~per_packet:(packet_cost cost) ()
  in
  Dp_service.create machine pipeline config

(** The DPDK-like networking data-plane service.

    A thin specialization of {!Dp_service} with a packet-size-aware cost
    model for software packet processing (header parsing, flow lookup,
    vswitch actions, TX descriptor setup). *)

open Taichi_engine
open Taichi_hw
open Taichi_accel

type cost_params = {
  base : Time_ns.t;  (** fixed per-packet software cost *)
  per_byte_ns : float;  (** payload-touching cost per byte *)
  connection_extra : Time_ns.t;
      (** extra cost for connection-establishment packets (tag-marked),
          used by tcp_crr/CPS-style workloads *)
}

val default_cost : cost_params

val connection_tag_bit : int
(** Workloads set this bit in [Packet.tag] to mark a packet as carrying
    connection establishment work. *)

val packet_cost : cost_params -> Packet.t -> Time_ns.t

val create :
  ?cost:cost_params ->
  ?tenant:int ->
  Machine.t ->
  Pipeline.t ->
  core:int ->
  Dp_service.t
(** A networking service pinned to [core]. *)

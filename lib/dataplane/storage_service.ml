open Taichi_engine
open Taichi_accel

type cost_params = {
  per_io : Time_ns.t;
  per_4k : Time_ns.t;
  write_penalty : float;
}

(* Roughly 200k 4-KiB IOPS per SmartNIC core. *)
let default_cost =
  { per_io = Time_ns.ns 4000; per_4k = Time_ns.ns 1000; write_penalty = 0.15 }

let io_cost cost pkt =
  let blocks = (pkt.Packet.size + 4095) / 4096 in
  let base = cost.per_io + (blocks * cost.per_4k) in
  match pkt.Packet.kind with
  | Packet.Storage_write ->
      base + int_of_float (float_of_int base *. cost.write_penalty)
  | Packet.Storage_read | Packet.Net_rx | Packet.Net_tx -> base

let create ?(cost = default_cost) ?tenant machine pipeline ~core =
  let config =
    Dp_service.default_config ?tenant ~core ~per_packet:(io_cost cost) ()
  in
  Dp_service.create machine pipeline config

(** The SPDK-like storage data-plane service.

    Block I/O requests (reads and writes) flow through the same
    accelerator pipeline and poll-mode loop; the software cost covers
    request validation, mapping, and backend submission. *)

open Taichi_engine
open Taichi_hw
open Taichi_accel

type cost_params = {
  per_io : Time_ns.t;  (** fixed cost per block request *)
  per_4k : Time_ns.t;  (** additional cost per 4 KiB of payload *)
  write_penalty : float;  (** relative extra cost of writes over reads *)
}

val default_cost : cost_params

val io_cost : cost_params -> Packet.t -> Time_ns.t

val create :
  ?cost:cost_params ->
  ?tenant:int ->
  Machine.t ->
  Pipeline.t ->
  core:int ->
  Dp_service.t

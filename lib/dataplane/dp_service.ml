open Taichi_engine
open Taichi_hw
open Taichi_accel
open Taichi_metrics

type config = {
  core : int;
  tenant : int;
  burst : int;
  poll_iter : Time_ns.t;
  per_packet : Packet.t -> Time_ns.t;
  spike_threshold : Time_ns.t;
}

let default_config ?(tenant = 0) ~core ~per_packet () =
  {
    core;
    tenant;
    burst = 32;
    poll_iter = Time_ns.ns 100;
    per_packet;
    spike_threshold = Time_ns.us 100;
  }

type state = Processing | Counting | Idle_parked | Yielded

type t = {
  sim : Sim.t;
  machine : Machine.t;
  cs : Core_state.t;
  pipeline : Pipeline.t;
  config : config;
  ring : Ring.t;
  burst_buf : Packet.t array;
      (* scratch for the poll-loop burst: the service is strictly
         sequential (one outstanding processing event), so one buffer
         per service suffices and the pop-process-complete cycle
         allocates nothing *)
  hooks : hooks;
  latency : Recorder.t;
  mutable started : bool;
  mutable speed_tax : float;
  mutable idle_event : Sim.handle option;
  mutable poll_since : Time_ns.t;  (** start of the current empty-poll span *)
  mutable park_since : Time_ns.t;  (** start of the current parked span *)
  mutable poll_dwell : Time_ns.t;  (** cumulative empty-poll (Counting) time *)
  mutable park_dwell : Time_ns.t;  (** cumulative parked (Idle_parked) time *)
  mutable resuming : bool;
  mutable latency_sink : (Time_ns.t -> unit) option;
  (* dp.* counter cells, interned at [create]: the global handle and the
     per-tenant mirror lane for the same name. [count] is two array
     stores — the per-event [Printf.sprintf "tenant.%d.%s"] is gone. *)
  c_parks : cell;
  c_wakes : cell;
  c_yields : cell;
  c_resumes : cell;
  mutable tag_tenant : bool;
      (** mirror dp.* counters into the per-tenant namespace; only set
          under an explicit multi-tenant table *)
  mutable owner : int;
      (** current owning tenant. Starts as [config.tenant] (the resting
          owner) and changes only through {!set_owner} when the churn
          lifecycle floats this service to a dynamic tenant and back. *)
}

and cell = { ch : Counters.handle; cl : Counters.lane }

and hooks = {
  mutable idle_threshold : unit -> int;
  mutable idle_detected : t -> unit;
  mutable work_arrived_while_yielded : t -> unit;
  mutable on_packets_done : Packet.t array -> int -> unit;
      (** called with the burst scratch array and the burst length; the
          packets are freed back to the pipeline arena as soon as the
          hook returns, so handlers must copy anything they keep *)
}

let default_hooks () =
  {
    idle_threshold = (fun () -> 200);
    idle_detected = (fun _ -> ());
    work_arrived_while_yielded = (fun _ -> ());
    on_packets_done = (fun _ _ -> ());
  }

let charge t cls d =
  if d > 0 then
    Accounting.charge (Machine.accounting t.machine) ~core:t.config.core cls d

let count t c =
  Counters.incr_h (Machine.counters t.machine) c.ch;
  if t.tag_tenant then Counters.lane_incr c.cl t.owner

let emit t ~category message =
  Trace.emit (Machine.trace t.machine) ~time:(Sim.now t.sim) ~core:t.config.core
    ~category message

(* The service's externally visible state is derived from the authoritative
   per-core machine — it holds no occupancy word of its own. Anything other
   than the three data-plane states means the core is lent out (or not yet
   started). *)
let state t =
  match Core_state.get t.cs ~core:t.config.core with
  | Core_state.Dp_running -> Processing
  | Core_state.Dp_counting -> Counting
  | Core_state.Dp_parked -> Idle_parked
  | Core_state.Offline | Core_state.Vcpu_running _ | Core_state.Switching _
  | Core_state.Cp_dedicated ->
      Yielded

let transition t ~cause st = Core_state.transition t.cs ~core:t.config.core ~cause st

(* Close out the running empty-poll span. Both empty polling and parking
   are charged to the [Dp_poll] accounting class (the core is burning
   cycles without doing packet work either way), but their dwell times are
   tracked separately so per-state stats are unambiguous. *)
let settle_poll_time t =
  let d = Sim.now t.sim - t.poll_since in
  if d > 0 then begin
    charge t Accounting.Dp_poll d;
    t.poll_dwell <- t.poll_dwell + d
  end;
  t.poll_since <- Sim.now t.sim

let settle_park_time t =
  let d = Sim.now t.sim - t.park_since in
  if d > 0 then begin
    charge t Accounting.Dp_poll d;
    t.park_dwell <- t.park_dwell + d
  end;
  t.park_since <- Sim.now t.sim

let rec enter_counting t ~cause =
  transition t ~cause Core_state.Dp_counting;
  t.poll_since <- Sim.now t.sim;
  let n = t.hooks.idle_threshold () in
  let span = n * t.config.poll_iter in
  t.idle_event <-
    Some
      (Sim.after t.sim span (fun () ->
           t.idle_event <- None;
           settle_poll_time t;
           transition t ~cause:Core_state.Park Core_state.Dp_parked;
           t.park_since <- Sim.now t.sim;
           count t t.c_parks;
           emit t ~category:Trace.Cat.dp_park (Printf.sprintf "n=%d" n);
           t.hooks.idle_detected t))

and start_processing t ~cause ~discovery =
  transition t ~cause Core_state.Dp_running;
  if discovery > 0 then charge t Accounting.Dp_poll discovery;
  ignore (Sim.after t.sim discovery (fun () -> process_loop t))

and process_loop t =
  let n = Ring.pop_burst_into t.ring t.burst_buf ~max:t.config.burst in
  if n = 0 then enter_counting t ~cause:Core_state.Drain
  else begin
    Recorder.incr t.latency "bursts";
    let work = ref 0 in
    for i = 0 to n - 1 do
      work := !work + t.config.per_packet t.burst_buf.(i)
    done;
    let work = !work in
    let work =
      if t.speed_tax = 0.0 then work
      else work + int_of_float (float_of_int work *. t.speed_tax)
    in
    let wall =
      Cache_model.charge_work (Machine.cache t.machine) ~core:t.config.core work
    in
    ignore
      (Sim.after t.sim wall (fun () ->
           charge t Accounting.Dp_work wall;
           let now = Sim.now t.sim in
           for i = 0 to n - 1 do
             let p = t.burst_buf.(i) in
             p.Packet.t_done <- now;
             let lat = now - p.Packet.t_submit in
             Recorder.observe t.latency lat;
             (match t.latency_sink with Some f -> f lat | None -> ());
             if lat > t.config.spike_threshold then
               Recorder.incr t.latency "spikes"
           done;
           t.hooks.on_packets_done t.burst_buf n;
           let arena = Pipeline.arena t.pipeline in
           for i = 0 to n - 1 do
             Packet.free arena t.burst_buf.(i)
           done;
           process_loop t))
  end

let on_ring_activity t =
  if t.started then
    match state t with
    | Processing -> ()
    | Counting ->
        (match t.idle_event with Some h -> Sim.cancel t.sim h | None -> ());
        t.idle_event <- None;
        settle_poll_time t;
        start_processing t ~cause:Core_state.Wake ~discovery:t.config.poll_iter
    | Idle_parked ->
        settle_park_time t;
        count t t.c_wakes;
        emit t ~category:Trace.Cat.dp_wake "work arrived";
        start_processing t ~cause:Core_state.Wake ~discovery:t.config.poll_iter
    | Yielded -> t.hooks.work_arrived_while_yielded t

let create machine pipeline config =
  let sim = Machine.sim machine in
  let ring =
    Ring.create
      ~name:(Printf.sprintf "dp-core%d" config.core)
      ~tenant:config.tenant ()
  in
  Pipeline.attach_ring pipeline ~core:config.core ring;
  let ctr = Machine.counters machine in
  let cell name = { ch = Counters.handle ctr name; cl = Counters.lane ctr name } in
  let t =
    {
      sim;
      machine;
      cs = Machine.core_state machine;
      pipeline;
      config;
      ring;
      burst_buf = Array.make (max 1 config.burst) Packet.dummy;
      hooks = default_hooks ();
      latency = Recorder.create (Printf.sprintf "dp%d.latency" config.core);
      started = false;
      speed_tax = 0.0;
      idle_event = None;
      poll_since = 0;
      park_since = 0;
      poll_dwell = 0;
      park_dwell = 0;
      resuming = false;
      c_parks = cell "dp.parks";
      c_wakes = cell "dp.wakes";
      c_yields = cell "dp.yields";
      c_resumes = cell "dp.resumes";
      latency_sink = None;
      tag_tenant = false;
      owner = config.tenant;
    }
  in
  t

let start t =
  if not t.started then begin
    t.started <- true;
    if Ring.is_empty t.ring then enter_counting t ~cause:Core_state.Hotplug
    else
      start_processing t ~cause:Core_state.Hotplug
        ~discovery:t.config.poll_iter
  end

let hooks t = t.hooks
let core t = t.config.core
let config t = t.config
let ring t = t.ring
let set_speed_tax t tax = t.speed_tax <- tax
let set_latency_sink t sink = t.latency_sink <- sink
let tenant t = t.owner
let set_tag_tenant t on = t.tag_tenant <- on

(* Reassigning ownership re-stamps the ring, so packets delivered from
   now on carry the new tenant; descriptors already resident keep their
   old stamp (the drain audit checks none are left behind on retire). *)
let set_owner t tenant =
  t.owner <- tenant;
  Ring.set_tenant t.ring tenant

let resting_owner t = t.config.tenant

let pending_work t =
  (not (Ring.is_empty t.ring))
  || Pipeline.in_flight t.pipeline ~core:t.config.core > 0

(* Force-drain escalation: throw the resident descriptors away (no
   latency observation — they were never served). Returns how many were
   discarded so the lifecycle can issue receipts; packets the service
   already popped for processing complete normally. *)
let discard_backlog t =
  let n = Ring.length t.ring in
  if n > 0 then begin
    let arena = Pipeline.arena t.pipeline in
    List.iter (Packet.free arena) (Ring.pop_burst t.ring ~max:n)
  end;
  n

let try_yield t =
  match state t with
  | (Counting | Idle_parked) as st when not (pending_work t) ->
      (match t.idle_event with Some h -> Sim.cancel t.sim h | None -> ());
      t.idle_event <- None;
      (match st with
      | Counting -> settle_poll_time t
      | _ -> settle_park_time t);
      (* The core leaves data-plane occupancy here; whoever takes it over
         (the vCPU scheduler, or the kernel under co-schedule policies)
         performs the next transition. *)
      transition t ~cause:Core_state.Yield (Core_state.Switching Core_state.From_dp);
      Recorder.incr t.latency "yields";
      count t t.c_yields;
      emit t ~category:Trace.Cat.dp_yield "core given up";
      true
  | Counting | Idle_parked | Processing | Yielded -> false

let resume t ~switch_cost =
  if t.started && state t = Yielded && not t.resuming then begin
    t.resuming <- true;
    Recorder.incr t.latency "resumes";
    count t t.c_resumes;
    emit t ~category:Trace.Cat.dp_resume
      (Printf.sprintf "switch_cost=%d" switch_cost);
    (* The evictor (vCPU scheduler) may already have moved the core into
       [Switching To_dp] as part of the eviction; only transition here when
       the give-back originates elsewhere (kernel reclaim under
       co-schedule, or a revoked yield nobody claimed). *)
    (match Core_state.get t.cs ~core:t.config.core with
    | Core_state.Switching Core_state.To_dp -> ()
    | _ ->
        transition t ~cause:Core_state.Resume
          (Core_state.Switching Core_state.To_dp));
    ignore
      (Sim.after t.sim switch_cost (fun () ->
           charge t Accounting.Switch switch_cost;
           t.resuming <- false;
           if Ring.is_empty t.ring then enter_counting t ~cause:Core_state.Resume
           else
             start_processing t ~cause:Core_state.Resume
               ~discovery:t.config.poll_iter))
  end

let latency t = t.latency
let packets_processed t = Recorder.count t.latency
let yields t = Recorder.counter t.latency "yields"
let spikes t = Recorder.counter t.latency "spikes"
let empty_poll_time t = t.poll_dwell
let parked_time t = t.park_dwell

let busy_fraction t ~elapsed =
  if elapsed <= 0 then 0.0
  else
    let work =
      Accounting.busy_class (Machine.accounting t.machine) ~core:t.config.core
        Accounting.Dp_work
    in
    float_of_int work /. float_of_int elapsed

(* Wire the pipeline's delivery notification for this service's core. The
   pipeline has a single deliver hook, so the platform composes them; this
   helper builds the composition step. *)
let attach_delivery t previous ~core:c =
  if c = t.config.core then on_ring_activity t else previous ~core:c

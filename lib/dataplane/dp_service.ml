open Taichi_engine
open Taichi_hw
open Taichi_accel
open Taichi_metrics

type config = {
  core : int;
  burst : int;
  poll_iter : Time_ns.t;
  per_packet : Packet.t -> Time_ns.t;
  spike_threshold : Time_ns.t;
}

let default_config ~core ~per_packet =
  {
    core;
    burst = 32;
    poll_iter = Time_ns.ns 100;
    per_packet;
    spike_threshold = Time_ns.us 100;
  }

type state = Processing | Counting | Idle_parked | Yielded

type t = {
  sim : Sim.t;
  machine : Machine.t;
  pipeline : Pipeline.t;
  config : config;
  ring : Ring.t;
  hooks : hooks;
  latency : Recorder.t;
  mutable state : state;
  mutable started : bool;
  mutable speed_tax : float;
  mutable idle_event : Sim.handle option;
  mutable poll_since : Time_ns.t;  (** start of the current poll/park span *)
  mutable resuming : bool;
}

and hooks = {
  mutable idle_threshold : unit -> int;
  mutable idle_detected : t -> unit;
  mutable work_arrived_while_yielded : t -> unit;
  mutable on_packets_done : Packet.t list -> unit;
}

let default_hooks () =
  {
    idle_threshold = (fun () -> 200);
    idle_detected = (fun _ -> ());
    work_arrived_while_yielded = (fun _ -> ());
    on_packets_done = (fun _ -> ());
  }

let charge t cls d =
  if d > 0 then
    Accounting.charge (Machine.accounting t.machine) ~core:t.config.core cls d

let count t name = Counters.incr (Machine.counters t.machine) name

let emit t ~category message =
  Trace.emit (Machine.trace t.machine) ~time:(Sim.now t.sim) ~core:t.config.core
    ~category message

(* Occupancy transition for the timeline fold: this core is now polling /
   processing ([state_dp]), parked ([state_idle]), or in a switch. *)
let emit_state t st = emit t ~category:Trace.Cat.core_state st

(* Close out the running empty-poll / parked span as poll time. *)
let settle_poll_time t =
  let d = Sim.now t.sim - t.poll_since in
  charge t Accounting.Dp_poll d;
  t.poll_since <- Sim.now t.sim

let rec enter_counting t =
  t.state <- Counting;
  t.poll_since <- Sim.now t.sim;
  let n = t.hooks.idle_threshold () in
  let span = n * t.config.poll_iter in
  t.idle_event <-
    Some
      (Sim.after t.sim span (fun () ->
           t.idle_event <- None;
           settle_poll_time t;
           t.state <- Idle_parked;
           t.poll_since <- Sim.now t.sim;
           count t "dp.parks";
           emit t ~category:Trace.Cat.dp_park (Printf.sprintf "n=%d" n);
           emit_state t Trace.Cat.state_idle;
           t.hooks.idle_detected t))

and start_processing t ~discovery =
  t.state <- Processing;
  if discovery > 0 then charge t Accounting.Dp_poll discovery;
  ignore (Sim.after t.sim discovery (fun () -> process_loop t))

and process_loop t =
  match Ring.pop_burst t.ring ~max:t.config.burst with
  | [] -> enter_counting t
  | pkts ->
      Recorder.incr t.latency "bursts";
      let work =
        List.fold_left (fun acc p -> acc + t.config.per_packet p) 0 pkts
      in
      let work =
        if t.speed_tax = 0.0 then work
        else work + int_of_float (float_of_int work *. t.speed_tax)
      in
      let wall =
        Cache_model.charge_work (Machine.cache t.machine) ~core:t.config.core work
      in
      ignore
        (Sim.after t.sim wall (fun () ->
             charge t Accounting.Dp_work wall;
             let now = Sim.now t.sim in
             List.iter
               (fun p ->
                 p.Packet.t_done <- now;
                 let lat = now - p.Packet.t_submit in
                 Recorder.observe t.latency lat;
                 if lat > t.config.spike_threshold then
                   Recorder.incr t.latency "spikes")
               pkts;
             t.hooks.on_packets_done pkts;
             process_loop t))

let on_ring_activity t =
  if t.started then
    match t.state with
    | Processing -> ()
    | Counting ->
        (match t.idle_event with Some h -> Sim.cancel h | None -> ());
        t.idle_event <- None;
        settle_poll_time t;
        start_processing t ~discovery:t.config.poll_iter
    | Idle_parked ->
        settle_poll_time t;
        count t "dp.wakes";
        emit t ~category:Trace.Cat.dp_wake "work arrived";
        emit_state t Trace.Cat.state_dp;
        start_processing t ~discovery:t.config.poll_iter
    | Yielded -> t.hooks.work_arrived_while_yielded t

let create machine pipeline config =
  let sim = Machine.sim machine in
  let ring = Ring.create ~name:(Printf.sprintf "dp-core%d" config.core) () in
  Pipeline.attach_ring pipeline ~core:config.core ring;
  let t =
    {
      sim;
      machine;
      pipeline;
      config;
      ring;
      hooks = default_hooks ();
      latency = Recorder.create (Printf.sprintf "dp%d.latency" config.core);
      state = Counting;
      started = false;
      speed_tax = 0.0;
      idle_event = None;
      poll_since = 0;
      resuming = false;
    }
  in
  t

let start t =
  if not t.started then begin
    t.started <- true;
    emit_state t Trace.Cat.state_dp;
    if Ring.is_empty t.ring then enter_counting t
    else start_processing t ~discovery:t.config.poll_iter
  end

let hooks t = t.hooks
let state t = t.state
let core t = t.config.core
let config t = t.config
let ring t = t.ring
let set_speed_tax t tax = t.speed_tax <- tax

let pending_work t =
  (not (Ring.is_empty t.ring))
  || Pipeline.in_flight t.pipeline ~core:t.config.core > 0

let try_yield t =
  match t.state with
  | (Counting | Idle_parked) when not (pending_work t) ->
      (match t.idle_event with Some h -> Sim.cancel h | None -> ());
      t.idle_event <- None;
      settle_poll_time t;
      t.state <- Yielded;
      Recorder.incr t.latency "yields";
      count t "dp.yields";
      emit t ~category:Trace.Cat.dp_yield "core given up";
      (* The core leaves data-plane occupancy here; whoever takes it over
         (the vCPU scheduler, or the kernel under co-schedule policies)
         emits the next transition. *)
      emit_state t Trace.Cat.state_idle;
      true
  | Counting | Idle_parked | Processing | Yielded -> false

let resume t ~switch_cost =
  if t.state = Yielded && not t.resuming then begin
    t.resuming <- true;
    Recorder.incr t.latency "resumes";
    count t "dp.resumes";
    emit t ~category:Trace.Cat.dp_resume
      (Printf.sprintf "switch_cost=%d" switch_cost);
    emit_state t Trace.Cat.state_switch;
    ignore
      (Sim.after t.sim switch_cost (fun () ->
           charge t Accounting.Switch switch_cost;
           t.resuming <- false;
           emit_state t Trace.Cat.state_dp;
           if Ring.is_empty t.ring then enter_counting t
           else start_processing t ~discovery:t.config.poll_iter))
  end

let latency t = t.latency
let packets_processed t = Recorder.count t.latency
let yields t = Recorder.counter t.latency "yields"
let spikes t = Recorder.counter t.latency "spikes"

let busy_fraction t ~elapsed =
  if elapsed <= 0 then 0.0
  else
    let work =
      Accounting.busy_class (Machine.accounting t.machine) ~core:t.config.core
        Accounting.Dp_work
    in
    float_of_int work /. float_of_int elapsed

(* Wire the pipeline's delivery notification for this service's core. The
   pipeline has a single deliver hook, so the platform composes them; this
   helper builds the composition step. *)
let attach_delivery t previous ~core:c =
  if c = t.config.core then on_ring_activity t else previous ~core:c

(** A poll-mode data-plane service (DPDK/SPDK style) pinned to one core.

    The service owns its physical core and runs the canonical run-to-
    completion loop of Fig 9: poll the RX ring in bursts, process what
    arrived, and count consecutive empty polls. When the empty-poll count
    crosses the (externally owned, adaptive) threshold it reports idleness
    — the [notify_idle_DP_CPU_cycles] call a production service adds in
    under ten lines. What happens next is up to the attached policy hooks:
    the baseline keeps polling, Tai Chi lends the core to a vCPU, the
    naive co-scheduler lends it to the kernel directly.

    Empty polling is virtualized: instead of simulating every 100 ns poll
    iteration, one cancellable event is scheduled at the exact time the
    threshold would be crossed. This is behaviour-preserving because the
    poll loop is deterministic between ring arrivals. *)

open Taichi_engine
open Taichi_hw
open Taichi_accel
open Taichi_metrics

type config = {
  core : int;  (** physical core the service is pinned to *)
  tenant : int;  (** owning tenant id; 0 = the implicit tenant *)
  burst : int;  (** max descriptors per poll, DPDK default 32 *)
  poll_iter : Time_ns.t;  (** cost of one empty poll iteration *)
  per_packet : Packet.t -> Time_ns.t;  (** software processing cost *)
  spike_threshold : Time_ns.t;
      (** packet latency above this counts as a tail-latency spike *)
}

val default_config :
  ?tenant:int -> core:int -> per_packet:(Packet.t -> Time_ns.t) -> unit -> config
(** burst 32, poll_iter 100 ns, spike threshold 100 µs, tenant 0. *)

(** The service's view of its core, derived from the authoritative
    {!Taichi_hw.Core_state} machine rather than stored here: [Processing],
    [Counting] and [Idle_parked] map 1:1 onto [Dp_running], [Dp_counting]
    and [Dp_parked]; every other core state (including [Offline] before
    {!start}) reads as [Yielded]. *)
type state =
  | Processing  (** executing a burst *)
  | Counting  (** empty-polling towards the idleness threshold *)
  | Idle_parked  (** threshold crossed, core not taken by anyone *)
  | Yielded  (** core lent out (to a vCPU or to the kernel) *)

type t

(** Policy attachment points; all default to no-ops / constants. *)
type hooks = {
  mutable idle_threshold : unit -> int;
      (** consecutive empty polls before idleness is declared (adaptive N
          of §4.3); default 200 *)
  mutable idle_detected : t -> unit;
      (** threshold crossed; the policy may take the core *)
  mutable work_arrived_while_yielded : t -> unit;
      (** a descriptor landed in the ring while the core was lent out *)
  mutable on_packets_done : Packet.t array -> int -> unit;
      (** processing of a burst finished (workload completion path).
          Called with the service's burst scratch array and the number of
          valid entries; the descriptors are freed back to the pipeline
          arena when the hook returns, so handlers must copy any field
          they keep *)
}

val create : Machine.t -> Pipeline.t -> config -> t
(** Creates the service, attaches its RX ring to the pipeline for
    [config.core], and registers ring-delivery notification. The service
    is stopped until {!start}. *)

val start : t -> unit
(** Begin the poll loop (in [Counting] state). *)

val hooks : t -> hooks
val state : t -> state
val core : t -> int
val config : t -> config
val ring : t -> Ring.t

val set_speed_tax : t -> float -> unit
(** Guest-mode execution tax for the Tai Chi-vDP configuration: packet
    processing takes [1 + tax] longer. *)

val set_latency_sink : t -> (Time_ns.t -> unit) option -> unit
(** [set_latency_sink t (Some f)] calls [f lat] for every completed packet
    alongside the {!latency} recorder — the overload governor's live
    latency feed. [None] (the default) detaches it. *)

val tenant : t -> int
(** Current owning tenant id (the ring's owner). *)

val set_owner : t -> int -> unit
(** Reassign the service (and its ring) to a tenant. Used by the churn
    lifecycle to float a pool service to a newly admitted tenant and
    hand it back on retire; counters and the latency sink attribute to
    the owner at the instant they fire. *)

val resting_owner : t -> int
(** The boot-time owner from the service's config — where {!set_owner}
    returns the service when its dynamic tenant retires. *)

val set_tag_tenant : t -> bool -> unit
(** Mirror every dp.* counter this service increments into the
    [tenant.<id>.dp.*] namespace. Off by default; the platform enables it
    only under an explicit multi-tenant table, preserving single-tenant
    counter sets byte-for-byte. *)

val pending_work : t -> bool
(** Ring descriptors waiting or in flight in the accelerator. *)

val discard_backlog : t -> int
(** Force-drain escalation: throw away every descriptor resident in the
    ring (no latency observation) and return how many were discarded.
    Packets already popped for processing complete normally. *)

val try_yield : t -> bool
(** Policy-side: take the core. Succeeds only in [Idle_parked] or
    [Counting] state with no pending work; the service stops polling and
    enters [Yielded]. *)

val resume : t -> switch_cost:Time_ns.t -> unit
(** Policy-side: give the core back. After [switch_cost] the service polls
    again: processes pending work or resumes counting. No-op unless
    [Yielded]. *)

val latency : t -> Recorder.t
(** Per-packet latency (submit to processing completion), with counters
    ["spikes"], ["bursts"], ["yields"], ["resumes"]. *)

val packets_processed : t -> int
val yields : t -> int
val spikes : t -> int

val empty_poll_time : t -> Time_ns.t
(** Cumulative time spent empty-polling in [Counting]. Both this and
    {!parked_time} are charged to the [Dp_poll] accounting class; the
    split accessors disambiguate the per-state dwell. *)

val parked_time : t -> Time_ns.t
(** Cumulative time spent parked in [Idle_parked]. *)

val busy_fraction : t -> elapsed:Time_ns.t -> float
(** Fraction of [elapsed] spent doing useful packet processing — the
    "data-plane CPU utilization" of Fig 3. *)

val attach_delivery : t -> (core:int -> unit) -> core:int -> unit
(** [attach_delivery t previous] composes this service's ring-activity
    handler with an existing pipeline delivery hook: use as
    [Pipeline.set_deliver_hook p (Dp_service.attach_delivery t old_hook)]. *)

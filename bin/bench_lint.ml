(* Validate a taichi-bench-engine-v1 JSON export (the tracked engine
   throughput trajectory written by `make bench-json`): parses the file,
   checks the schema marker, the hotpath section's shape — including that
   the calendar and legacy engines processed the identical event counts,
   the determinism guarantee the bench itself asserts — and that every
   fig17 cell row carries the expected fields. Exit 0 on success so CI
   can gate on it before uploading the artifact. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let fail fmt = Printf.ksprintf (fun msg -> Error msg) fmt

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let field name json =
  match Taichi_metrics.Json.member name json with
  | Some v -> Ok v
  | None -> fail "missing field %S" name

let int_field name json =
  let* v = field name json in
  match Taichi_metrics.Json.to_int v with
  | Some i -> Ok i
  | None -> fail "field %S is not an integer" name

let number_field name json =
  let* v = field name json in
  match v with
  | Taichi_metrics.Json.Float f -> Ok f
  | Taichi_metrics.Json.Int i -> Ok (float_of_int i)
  | _ -> fail "field %S is not a number" name

let check_engine name json =
  let* eng = field name json in
  let* wall = number_field "wall_s" eng in
  let* rate = number_field "events_per_sec" eng in
  if wall <= 0.0 then fail "%s.wall_s must be positive" name
  else if rate <= 0.0 then fail "%s.events_per_sec must be positive" name
  else Ok ()

let check_hotpath json =
  let* hp = field "hotpath" json in
  let* chains = int_field "chains" hp in
  let* standing = int_field "standing" hp in
  let* horizon = int_field "horizon_ns" hp in
  let* scheduled = int_field "events_scheduled" hp in
  let* processed = int_field "events_processed" hp in
  let* () = check_engine "calendar" hp in
  let* () = check_engine "legacy" hp in
  let* speedup = number_field "speedup" hp in
  if chains <= 0 || standing <= 0 || horizon <= 0 then
    fail "hotpath workload parameters must be positive"
  else if scheduled <= 0 || processed <= 0 || processed > scheduled then
    fail "hotpath event counts are implausible (%d scheduled, %d processed)"
      scheduled processed
  else if speedup <= 0.0 then fail "hotpath.speedup must be positive"
  else Ok ()

let check_cell i json =
  let* cell = field "cell" json in
  let* name =
    match Taichi_metrics.Json.to_str cell with
    | Some s when s <> "" -> Ok s
    | _ -> fail "fig17[%d].cell is not a non-empty string" i
  in
  let* scheduled = int_field "events_scheduled" json in
  let* processed = int_field "events_processed" json in
  let* wall = number_field "wall_s" json in
  let* rate = number_field "events_per_sec" json in
  if scheduled <= 0 || processed <= 0 || processed > scheduled then
    fail "fig17 cell %S event counts are implausible" name
  else if wall <= 0.0 || rate <= 0.0 then
    fail "fig17 cell %S timings must be positive" name
  else Ok ()

let fig17_cells = 8

let check_fig17 json =
  let* cells = field "fig17" json in
  match Taichi_metrics.Json.to_list cells with
  | None -> fail "field \"fig17\" is not an array"
  | Some rows ->
      if List.length rows <> fig17_cells then
        fail "expected %d fig17 cells, found %d" fig17_cells
          (List.length rows)
      else
        List.fold_left
          (fun acc (i, row) ->
            let* () = acc in
            check_cell i row)
          (Ok ())
          (List.mapi (fun i row -> (i, row)) rows)

let validate contents =
  let* json =
    match Taichi_metrics.Json.parse_opt contents with
    | Some j -> Ok j
    | None -> fail "malformed JSON"
  in
  let* schema = field "schema" json in
  let* () =
    match Taichi_metrics.Json.to_str schema with
    | Some "taichi-bench-engine-v1" -> Ok ()
    | Some other -> fail "unexpected schema %S" other
    | None -> fail "schema marker is not a string"
  in
  let* _seed = int_field "seed" json in
  let* _scale = number_field "scale" json in
  let* () = check_hotpath json in
  check_fig17 json

let () =
  match Sys.argv with
  | [| _; path |] -> (
      let contents =
        try read_file path
        with Sys_error msg ->
          Printf.eprintf "bench_lint: %s\n" msg;
          exit 2
      in
      match validate contents with
      | Ok () ->
          Printf.printf "bench_lint: %s OK\n" path;
          exit 0
      | Error msg ->
          Printf.eprintf "bench_lint: %s: %s\n" path msg;
          exit 1)
  | _ ->
      Printf.eprintf "usage: bench_lint BENCH_ENGINE.json\n";
      exit 2

(* Validate a taichi-bench-engine-v2 JSON export (the tracked engine
   throughput trajectory written by `make bench-json`): parses the file,
   checks the schema marker, the hotpath section's shape — including that
   the calendar and legacy engines processed the identical event counts,
   the determinism guarantee the bench itself asserts — the full-work
   hot-path section (string-vs-handle bookkeeping on the same event
   program), the counters and packet_arena microbench sections — whose
   minor-words-per-op figures are the allocation-free contract of the
   per-event path — that every fig17 cell row carries the expected
   fields, and that the multitenant counter-lane section is coherent
   (strictly increasing — possibly sparse — tenant ids, non-negative
   per-tenant rows, per-suffix sums equal to the globals, and a churn
   sub-run whose retired lanes are still reported), plus a fleet sub-run
   section whose crash/failover accounting balances.

   With a second argument (the committed BENCH_FLOORS.json) it also
   enforces the perf floors: minimum hot-path events/sec and speedups,
   maximum allocation per op. Exit 0 on success so CI can gate on it
   before uploading the artifact. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let fail fmt = Printf.ksprintf (fun msg -> Error msg) fmt

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let field name json =
  match Taichi_metrics.Json.member name json with
  | Some v -> Ok v
  | None -> fail "missing field %S" name

let int_field name json =
  let* v = field name json in
  match Taichi_metrics.Json.to_int v with
  | Some i -> Ok i
  | None -> fail "field %S is not an integer" name

let number_field name json =
  let* v = field name json in
  match v with
  | Taichi_metrics.Json.Float f -> Ok f
  | Taichi_metrics.Json.Int i -> Ok (float_of_int i)
  | _ -> fail "field %S is not a number" name

let check_engine name json =
  let* eng = field name json in
  let* wall = number_field "wall_s" eng in
  let* rate = number_field "events_per_sec" eng in
  if wall <= 0.0 then fail "%s.wall_s must be positive" name
  else if rate <= 0.0 then fail "%s.events_per_sec must be positive" name
  else Ok ()

let check_hotpath json =
  let* hp = field "hotpath" json in
  let* chains = int_field "chains" hp in
  let* standing = int_field "standing" hp in
  let* horizon = int_field "horizon_ns" hp in
  let* scheduled = int_field "events_scheduled" hp in
  let* processed = int_field "events_processed" hp in
  let* () = check_engine "calendar" hp in
  let* () = check_engine "legacy" hp in
  let* speedup = number_field "speedup" hp in
  if chains <= 0 || standing <= 0 || horizon <= 0 then
    fail "hotpath workload parameters must be positive"
  else if scheduled <= 0 || processed <= 0 || processed > scheduled then
    fail "hotpath event counts are implausible (%d scheduled, %d processed)"
      scheduled processed
  else if speedup <= 0.0 then fail "hotpath.speedup must be positive"
  else Ok ()

let check_cell i json =
  let* cell = field "cell" json in
  let* name =
    match Taichi_metrics.Json.to_str cell with
    | Some s when s <> "" -> Ok s
    | _ -> fail "fig17[%d].cell is not a non-empty string" i
  in
  let* scheduled = int_field "events_scheduled" json in
  let* processed = int_field "events_processed" json in
  let* wall = number_field "wall_s" json in
  let* rate = number_field "events_per_sec" json in
  if scheduled <= 0 || processed <= 0 || processed > scheduled then
    fail "fig17 cell %S event counts are implausible" name
  else if wall <= 0.0 || rate <= 0.0 then
    fail "fig17 cell %S timings must be positive" name
  else Ok ()

(* A tenant-row array shared by the steady section and the churn
   sub-run. Ids must be strictly increasing but may be sparse: under
   churn a lane that never accrued a mirrored counter is legitimately
   omitted, so requiring density from 0 would reject valid exports. *)
let check_tenant_rows ~label ~sums rows =
  let* _last =
    List.fold_left
      (fun acc row ->
        let* prev = acc in
        let* id = int_field "id" row in
        let* weight = int_field "weight" row in
        let* granted = int_field "granted_ns" row in
        let* counters = field "counters" row in
        if id < 0 then fail "%s tenant id %d is negative" label id
        else if id <= prev then
          fail "%s tenant ids must be strictly increasing (%d after %d)" label
            id prev
        else if weight <= 0 then fail "tenant %d weight must be positive" id
        else if granted < 0 then fail "tenant %d granted_ns is negative" id
        else
          let* () =
            match counters with
            | Taichi_metrics.Json.Obj kvs ->
                List.fold_left
                  (fun acc (suffix, v) ->
                    let* () = acc in
                    match Taichi_metrics.Json.to_int v with
                    | Some n when n >= 0 ->
                        (match sums with
                        | Some sums ->
                            Hashtbl.replace sums suffix
                              (n
                              + Option.value ~default:0
                                  (Hashtbl.find_opt sums suffix))
                        | None -> ());
                        Ok ()
                    | Some n ->
                        fail "tenant %d counter %S is negative (%d)" id suffix
                          n
                    | None ->
                        fail "tenant %d counter %S is not an integer" id
                          suffix)
                  (Ok ()) kvs
            | _ -> fail "tenant %d counters is not an object" id
          in
          Ok id)
      (Ok (-1)) rows
  in
  Ok ()

(* The churn sub-run: the lifecycle must have completed every drain it
   started, restored the pools, and kept the retired lanes' rows in the
   report — a frozen lane is still accounted for, never deleted. *)
let check_mt_churn mt =
  let* churn = field "churn" mt in
  let* admitted = int_field "admitted" churn in
  let* retired = int_field "retired" churn in
  let* forced = int_field "forced" churn in
  let* pool = int_field "pool_vcpus" churn in
  let* floats = int_field "float_services" churn in
  let* retired_ids = field "retired_ids" churn in
  let* tenants = field "tenants" churn in
  let* rows =
    match Taichi_metrics.Json.to_list tenants with
    | Some [] -> fail "multitenant.churn.tenants is empty"
    | Some rows -> Ok rows
    | None -> fail "multitenant.churn.tenants is not an array"
  in
  let* ids =
    match Taichi_metrics.Json.to_list retired_ids with
    | Some l ->
        List.fold_left
          (fun acc v ->
            let* acc = acc in
            match Taichi_metrics.Json.to_int v with
            | Some i -> Ok (i :: acc)
            | None -> fail "multitenant.churn.retired_ids entry not an int")
          (Ok []) l
    | None -> fail "multitenant.churn.retired_ids is not an array"
  in
  if admitted < 1 then fail "churn sub-run admitted no tenant"
  else if retired < 1 then fail "churn sub-run retired no tenant"
  else if retired > admitted then
    fail "churn sub-run retired %d > admitted %d" retired admitted
  else if forced < 0 || forced > retired then
    fail "churn sub-run forced-drain count %d is implausible" forced
  else if pool < 0 || floats < 0 then
    fail "churn sub-run pool sizes are negative"
  else if List.length ids <> retired then
    fail "churn sub-run lists %d retired ids for %d retirements"
      (List.length ids) retired
  else
    let* () = check_tenant_rows ~label:"multitenant.churn" ~sums:None rows in
    (* Frozen, not forgotten: every retired tenant still has its row. *)
    List.fold_left
      (fun acc id ->
        let* () = acc in
        let present =
          List.exists
            (fun row ->
              match
                Option.bind
                  (Taichi_metrics.Json.member "id" row)
                  Taichi_metrics.Json.to_int
              with
              | Some i -> i = id
              | None -> false)
            rows
        in
        if present then Ok ()
        else
          fail
            "retired tenant %d has no row in the churn section (frozen lanes \
             must stay reported)"
            id)
      (Ok ()) ids

(* The multitenant section mirrors the per-tenant counter discipline the
   trace validator enforces: strictly increasing (possibly sparse)
   tenant ids, every per-tenant row non-negative, and — per suffix — the
   tenant rows sum to exactly the global counter. *)
let check_multitenant json =
  let* mt = field "multitenant" json in
  let* tenants = field "tenants" mt in
  let* globals = field "globals" mt in
  let* global_rows =
    match globals with
    | Taichi_metrics.Json.Obj kvs -> Ok kvs
    | _ -> fail "multitenant.globals is not an object"
  in
  let* rows =
    match Taichi_metrics.Json.to_list tenants with
    | Some [] -> fail "multitenant.tenants is empty"
    | Some rows -> Ok rows
    | None -> fail "multitenant.tenants is not an array"
  in
  let sums = Hashtbl.create 32 in
  let* () =
    check_tenant_rows ~label:"multitenant" ~sums:(Some sums) rows
  in
  let* () =
    List.fold_left
      (fun acc (suffix, v) ->
        let* () = acc in
        match Taichi_metrics.Json.to_int v with
        | None -> fail "multitenant.globals.%s is not an integer" suffix
        | Some g ->
            let sum =
              Option.value ~default:0 (Hashtbl.find_opt sums suffix)
            in
            if sum <> g then
              fail
                "per-tenant sums for %S do not equal the global counter (%d \
                 != %d)"
                suffix sum g
            else Ok ())
      (Ok ()) global_rows
  in
  (* Every mirrored suffix must also have its global next to it. *)
  let* () =
    Hashtbl.fold
      (fun suffix _ acc ->
        let* () = acc in
        if List.mem_assoc suffix global_rows then Ok ()
        else fail "mirrored suffix %S has no global counter in the section"
               suffix)
      sums (Ok ())
  in
  check_mt_churn mt

(* The fleet sub-run: a rack with one planned crash and failover on, so
   the section must show the crash, a re-placement for every committed
   tenant, RPC completions bounded by sends, and an attainment that is a
   fraction of the surviving rack. *)
let check_fleet json =
  let* fl = field "fleet" json in
  let* nics = int_field "nics" fl in
  let* epochs = int_field "epochs" fl in
  let* crashed = int_field "crashed" fl in
  let* committed = int_field "committed" fl in
  let* replaced = int_field "replaced" fl in
  let* abandoned = int_field "abandoned" fl in
  let* rpc_sent = int_field "rpc_sent" fl in
  let* rpc_completed = int_field "rpc_completed" fl in
  let* rpc_retries = int_field "rpc_retries" fl in
  let* attainment = number_field "attainment" fl in
  if nics < 2 || epochs < 1 then
    fail "fleet sub-run shape is implausible (%d NICs, %d epochs)" nics epochs
  else if crashed < 1 || crashed >= nics then
    fail "fleet sub-run crash count %d is implausible for %d NICs" crashed
      nics
  else if committed < crashed then
    fail "fleet sub-run committed %d tenants across %d crashes" committed
      crashed
  else if replaced < committed then
    fail
      "fleet sub-run re-placed %d of %d committed tenants (failover must be \
       lossless)"
      replaced committed
  else if abandoned < 0 || rpc_retries < 0 then
    fail "fleet sub-run loss counters are negative"
  else if rpc_sent < 1 || rpc_completed < 0 || rpc_completed > rpc_sent then
    fail "fleet sub-run RPC books do not balance (%d completed, %d sent)"
      rpc_completed rpc_sent
  else if attainment < 0.0 || attainment > 1.0 then
    fail "fleet sub-run attainment %f is not a fraction" attainment
  else Ok ()

(* The full-work section: both bookkeeping styles ran the identical
   event program, so the shared counts must be plausible and the two
   rate objects well-formed. *)
let check_hotpath_full json =
  let* fw = field "hotpath_full" json in
  let* chains = int_field "chains" fw in
  let* burst = int_field "burst" fw in
  let* horizon = int_field "horizon_ns" fw in
  let* scheduled = int_field "events_scheduled" fw in
  let* processed = int_field "events_processed" fw in
  let* packets = int_field "packets" fw in
  let* () = check_engine "oldstyle" fw in
  let* () = check_engine "newstyle" fw in
  let* speedup = number_field "speedup" fw in
  if chains <= 0 || burst <= 0 || horizon <= 0 then
    fail "hotpath_full workload parameters must be positive"
  else if scheduled <= 0 || processed <= 0 || processed > scheduled then
    fail
      "hotpath_full event counts are implausible (%d scheduled, %d processed)"
      scheduled processed
  else if packets <> processed * burst then
    fail "hotpath_full packets %d != processed %d * burst %d" packets
      processed burst
  else if speedup <= 0.0 then fail "hotpath_full.speedup must be positive"
  else Ok ()

(* The microbench sections carry the allocation-free contract: the
   handle, lane and arena paths must not allocate per op (a hair above
   zero tolerated for the Gc.minor_words probe itself). *)
let alloc_free_tolerance = 0.01

let check_counters json =
  let* c = field "counters" json in
  let* ops = int_field "ops" c in
  let* string_ns = number_field "string_incr_ns" c in
  let* handle_ns = number_field "handle_incr_ns" c in
  let* lane_ns = number_field "lane_incr_ns" c in
  let* handle_minor = number_field "handle_minor_words_per_op" c in
  let* lane_minor = number_field "lane_minor_words_per_op" c in
  let* speedup = number_field "speedup" c in
  if ops <= 0 then fail "counters.ops must be positive"
  else if string_ns <= 0.0 || handle_ns <= 0.0 || lane_ns <= 0.0 then
    fail "counters timings must be positive"
  else if handle_minor > alloc_free_tolerance then
    fail "counters.handle_incr allocates %f minor words/op (must be 0)"
      handle_minor
  else if lane_minor > alloc_free_tolerance then
    fail "counters.lane_incr allocates %f minor words/op (must be 0)"
      lane_minor
  else if speedup <= 0.0 then fail "counters.speedup must be positive"
  else Ok ()

let check_packet_arena json =
  let* p = field "packet_arena" json in
  let* ops = int_field "ops" p in
  let* create_ns = number_field "create_ns" p in
  let* alloc_free_ns = number_field "alloc_free_ns" p in
  let* create_minor = number_field "create_minor_words_per_op" p in
  let* alloc_free_minor = number_field "alloc_free_minor_words_per_op" p in
  if ops <= 0 then fail "packet_arena.ops must be positive"
  else if create_ns <= 0.0 || alloc_free_ns <= 0.0 then
    fail "packet_arena timings must be positive"
  else if create_minor <= 0.0 then
    fail
      "packet_arena.create_minor_words_per_op is %f — heap create must \
       allocate, or the probe is broken"
      create_minor
  else if alloc_free_minor > alloc_free_tolerance then
    fail "packet_arena.alloc_free allocates %f minor words/op (must be 0)"
      alloc_free_minor
  else Ok ()

(* --- perf floors ---------------------------------------------------------- *)

(* The committed BENCH_FLOORS.json: every [*_min] is a lower bound on
   the same-named figure, every [*_max] an upper bound. Ratios guard the
   refactor's payoff independent of the host; the one absolute
   events/sec floor catches catastrophic engine regressions. *)
let check_floors floors json =
  let* schema = field "schema" floors in
  let* () =
    match Taichi_metrics.Json.to_str schema with
    | Some "taichi-bench-floors-v1" -> Ok ()
    | Some other -> fail "unexpected floors schema %S" other
    | None -> fail "floors schema marker is not a string"
  in
  let* hp = field "hotpath" json in
  let* cal = field "calendar" hp in
  let* hp_rate = number_field "events_per_sec" cal in
  let* hp_speedup = number_field "speedup" hp in
  let* fw = field "hotpath_full" json in
  let* fw_speedup = number_field "speedup" fw in
  let* c = field "counters" json in
  let* co_speedup = number_field "speedup" c in
  let* co_handle_minor = number_field "handle_minor_words_per_op" c in
  let* co_lane_minor = number_field "lane_minor_words_per_op" c in
  let* p = field "packet_arena" json in
  let* pa_minor = number_field "alloc_free_minor_words_per_op" p in
  let floor_min name value =
    let* floor = number_field name floors in
    if value < floor then
      fail "perf floor %s: measured %f < floor %f" name value floor
    else Ok ()
  in
  let cap_max name value =
    let* cap = number_field name floors in
    if value > cap then
      fail "perf cap %s: measured %f > cap %f" name value cap
    else Ok ()
  in
  let* () = floor_min "hotpath_events_per_sec_min" hp_rate in
  let* () = floor_min "hotpath_speedup_min" hp_speedup in
  let* () = floor_min "hotpath_full_speedup_min" fw_speedup in
  let* () = floor_min "counters_speedup_min" co_speedup in
  let* () = cap_max "handle_minor_words_per_op_max" co_handle_minor in
  let* () = cap_max "lane_minor_words_per_op_max" co_lane_minor in
  cap_max "alloc_free_minor_words_per_op_max" pa_minor

let fig17_cells = 8

let check_fig17 json =
  let* cells = field "fig17" json in
  match Taichi_metrics.Json.to_list cells with
  | None -> fail "field \"fig17\" is not an array"
  | Some rows ->
      if List.length rows <> fig17_cells then
        fail "expected %d fig17 cells, found %d" fig17_cells
          (List.length rows)
      else
        List.fold_left
          (fun acc (i, row) ->
            let* () = acc in
            check_cell i row)
          (Ok ())
          (List.mapi (fun i row -> (i, row)) rows)

let validate ?floors contents =
  let* json =
    match Taichi_metrics.Json.parse_opt contents with
    | Some j -> Ok j
    | None -> fail "malformed JSON"
  in
  let* schema = field "schema" json in
  let* () =
    match Taichi_metrics.Json.to_str schema with
    | Some "taichi-bench-engine-v2" -> Ok ()
    | Some other -> fail "unexpected schema %S" other
    | None -> fail "schema marker is not a string"
  in
  let* _seed = int_field "seed" json in
  let* _scale = number_field "scale" json in
  let* () = check_hotpath json in
  let* () = check_hotpath_full json in
  let* () = check_counters json in
  let* () = check_packet_arena json in
  let* () = check_fig17 json in
  let* () = check_multitenant json in
  let* () = check_fleet json in
  match floors with
  | None -> Ok ()
  | Some contents ->
      let* floors =
        match Taichi_metrics.Json.parse_opt contents with
        | Some j -> Ok j
        | None -> fail "malformed floors JSON"
      in
      check_floors floors json

let read_or_die path =
  try read_file path
  with Sys_error msg ->
    Printf.eprintf "bench_lint: %s\n" msg;
    exit 2

let run path ~floors_path =
  let contents = read_or_die path in
  let floors = Option.map read_or_die floors_path in
  match validate ?floors contents with
  | Ok () ->
      Printf.printf "bench_lint: %s OK%s\n" path
        (match floors_path with
        | Some f -> Printf.sprintf " (floors %s)" f
        | None -> "");
      exit 0
  | Error msg ->
      Printf.eprintf "bench_lint: %s: %s\n" path msg;
      exit 1

let () =
  match Sys.argv with
  | [| _; path |] -> run path ~floors_path:None
  | [| _; path; floors |] -> run path ~floors_path:(Some floors)
  | _ ->
      Printf.eprintf "usage: bench_lint BENCH_ENGINE.json [BENCH_FLOORS.json]\n";
      exit 2

(* Validate a taichi-trace-v1 JSON export: parses the file, checks the
   schema marker and the per-core occupancy invariant (dp + vcpu + switch
   + idle = total = duration). Exit 0 on success so CI can gate on it. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let () =
  match Sys.argv with
  | [| _; path |] -> (
      let contents =
        try read_file path
        with Sys_error msg ->
          Printf.eprintf "trace_lint: %s\n" msg;
          exit 2
      in
      match Taichi_metrics.Export.validate_string contents with
      | Ok () ->
          Printf.printf "trace_lint: %s OK\n" path;
          exit 0
      | Error msg ->
          Printf.eprintf "trace_lint: %s: %s\n" path msg;
          exit 1)
  | _ ->
      Printf.eprintf "usage: trace_lint FILE.json\n";
      exit 2

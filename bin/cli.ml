(* Cmdliner front end for the experiment suite. *)

open Cmdliner

let experiment_names = List.map fst Taichi_platform.Experiments.all

let run_experiment name seed scale =
  match List.assoc_opt name Taichi_platform.Experiments.all with
  | Some f ->
      Taichi_platform.Exp_common.set_experiment name;
      f ~seed ~scale;
      0
  | None ->
      Printf.eprintf "unknown experiment %s; known: %s\n" name
        (String.concat ", " experiment_names);
      1

let name_arg =
  let doc =
    "Experiment id: " ^ String.concat ", " experiment_names ^ ", or 'all'."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT" ~doc)

let seed_arg =
  let doc = "Root random seed (experiments are bit-reproducible per seed)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~doc)

let scale_arg =
  let doc =
    "Duration scale factor: 1.0 runs the full experiment, smaller values \
     shrink simulated time for quick checks."
  in
  Arg.(value & opt float 1.0 & info [ "scale" ] ~doc)

let trace_arg =
  let doc =
    "Collect the scheduler-wide trace and print per-run occupancy \
     timelines and counters after the experiment."
  in
  Arg.(value & flag & info [ "trace" ] ~doc)

let trace_json_arg =
  let doc =
    "Collect the scheduler-wide trace and export every run as JSON \
     (schema taichi-trace-v1) to $(docv). Deterministic for a fixed seed."
  in
  Arg.(value & opt (some string) None & info [ "trace-json" ] ~docv:"FILE" ~doc)

let chaos_profile_arg =
  let doc =
    "Restrict the chaos experiment to one fault profile ("
    ^ String.concat ", "
        (List.map fst Taichi_faults.Injector.profiles)
    ^ "). Defaults to the full matrix (or $(b,CHAOS_PROFILE))."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "chaos-profile" ] ~docv:"PROFILE" ~doc)

let overload_governor_arg =
  let doc =
    "Restrict the overload experiment to one governor setting ($(b,on) or \
     $(b,off)). Defaults to both (or $(b,OVERLOAD_GOVERNOR))."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "overload" ] ~docv:"GOVERNOR" ~doc)

let print_trace_report runs =
  List.iter
    (fun (run : Taichi_metrics.Export.run) ->
      Format.printf "@.trace: %s / %s (seed %d)@." run.experiment run.policy
        run.seed;
      Format.printf "%a@." Taichi_metrics.Timeline.pp run.timeline;
      Format.printf "counters:@.";
      List.iter
        (fun (name, v) -> Format.printf "  %-32s %d@." name v)
        run.counters)
    runs

(* Exit codes: 0 success, 1 usage / export error, 2 uncaught experiment
   failure (Cmdliner), 3 post-experiment audit violation — a run that
   produced output but left the machine in an incoherent state must be
   distinguishable from an infrastructure error in CI. *)
let audit_exit_code = 3

let report_audit_failures failures =
  List.iter
    (fun (f : Taichi_platform.Exp_common.audit_failure) ->
      Printf.eprintf "AUDIT FAILURE: %s (seed %d):\n" f.experiment f.seed;
      List.iter (Printf.eprintf "  - %s\n") f.violations)
    failures;
  Printf.eprintf "%d run(s) failed the post-experiment audit\n"
    (List.length failures)

let run name seed scale trace trace_json chaos_profile overload_governor =
  (match chaos_profile with
  | Some p -> Taichi_platform.Exp_chaos.set_profile_filter (Some p)
  | None -> ());
  (match overload_governor with
  | Some g -> Taichi_platform.Exp_overload.set_governor_filter (Some g)
  | None -> ());
  (* Collect audit violations instead of aborting mid-batch: every
     experiment still runs, then the process exits with the distinct
     audit status below. *)
  Taichi_platform.Exp_common.set_audit_collect true;
  Taichi_platform.Exp_common.reset_audit_failures ();
  let tracing = trace || trace_json <> None in
  if tracing then Taichi_platform.Exp_common.set_tracing true;
  let status =
    if name = "all" then begin
      List.iter
        (fun (ename, f) ->
          Taichi_platform.Exp_common.set_experiment ename;
          f ~seed ~scale)
        Taichi_platform.Experiments.all;
      0
    end
    else run_experiment name seed scale
  in
  let status =
    if status = 0 && tracing then begin
      let runs = Taichi_platform.Exp_common.trace_runs () in
      if trace then print_trace_report runs;
      (* Export failures must not look like a successful run: report and
         fail cleanly rather than dying on an uncaught Sys_error. *)
      match trace_json with
      | Some path -> (
          try
            Taichi_metrics.Export.write_file path runs;
            Printf.printf "trace export: %d run(s) written to %s\n"
              (List.length runs) path;
            status
          with Sys_error msg ->
            Printf.eprintf "cannot write trace export: %s\n" msg;
            1)
      | None -> status
    end
    else status
  in
  match Taichi_platform.Exp_common.audit_failures () with
  | [] -> status
  | failures ->
      report_audit_failures failures;
      audit_exit_code

let cmd =
  let doc = "Reproduce the Tai Chi (SOSP'25) evaluation on the simulator" in
  let info = Cmd.info "taichi_sim" ~doc in
  Cmd.v info
    Term.(
      const run $ name_arg $ seed_arg $ scale_arg $ trace_arg $ trace_json_arg
      $ chaos_profile_arg $ overload_governor_arg)

let main () = exit (Cmd.eval' cmd)

(* Cmdliner front end for the experiment suite. *)

open Cmdliner
module P = Taichi_platform

let experiment_names = List.map P.Exp_desc.name P.Experiments.all

let name_arg =
  let doc =
    "Experiment id: " ^ String.concat ", " experiment_names
    ^ ", or 'all'. Omit with $(b,--list)."
  in
  Arg.(value & pos 0 (some string) None & info [] ~docv:"EXPERIMENT" ~doc)

let seed_arg =
  let doc = "Root random seed (experiments are bit-reproducible per seed)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~doc)

let scale_arg =
  let doc =
    "Duration scale factor: 1.0 runs the full experiment, smaller values \
     shrink simulated time for quick checks."
  in
  Arg.(value & opt float 1.0 & info [ "scale" ] ~doc)

let jobs_arg =
  let doc =
    "Run experiment cells on $(docv) OCaml domains. Output, oracles and \
     trace exports are byte-identical at any value (cells merge in \
     declaration order); 1 runs inline."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let list_arg =
  let doc = "List the registered experiments with their cell counts." in
  Arg.(value & flag & info [ "list" ] ~doc)

let trace_arg =
  let doc =
    "Collect the scheduler-wide trace and print per-run occupancy \
     timelines and counters after the experiment."
  in
  Arg.(value & flag & info [ "trace" ] ~doc)

let trace_json_arg =
  let doc =
    "Collect the scheduler-wide trace and export every run as JSON \
     (schema taichi-trace-v1) to $(docv). Deterministic for a fixed seed \
     and any $(b,--jobs)."
  in
  Arg.(value & opt (some string) None & info [ "trace-json" ] ~docv:"FILE" ~doc)

let chaos_profile_arg =
  let doc =
    "Restrict the chaos experiment to one fault profile ("
    ^ String.concat ", "
        (List.map fst Taichi_faults.Injector.profiles)
    ^ "). Defaults to the full matrix (or $(b,CHAOS_PROFILE))."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "chaos-profile" ] ~docv:"PROFILE" ~doc)

let overload_governor_arg =
  let doc =
    "Restrict the overload experiment to one governor setting ($(b,on) or \
     $(b,off)). Defaults to both (or $(b,OVERLOAD_GOVERNOR))."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "overload" ] ~docv:"GOVERNOR" ~doc)

let aggressor_arg =
  let doc =
    "Restrict the multitenant experiment to the aggressor ($(b,on): CP \
     storm / DP burst cells) or contention-only ($(b,off): saturation / \
     idle cells) half of the grid. Defaults to both (or \
     $(b,MULTITENANT_AGGRESSOR))."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "aggressor" ] ~docv:"AGGRESSOR" ~doc)

let churn_profile_arg =
  let doc =
    "Restrict the churn experiment to one churn profile ($(b,steady): \
     arrival waves and forced departure, $(b,flap): thrash / refusal / \
     determinism repeat, $(b,chaos): chaos-under-churn). Defaults to the \
     full grid (or $(b,CHURN_PROFILE))."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "churn-profile" ] ~docv:"PROFILE" ~doc)

let nics_arg =
  let doc =
    "Restrict the fleet experiment to the cells whose rack is $(docv) \
     NICs wide (8 or 16; the determinism repeat rides with the 8-NIC \
     cells). Defaults to every width (or $(b,FLEET_NICS))."
  in
  Arg.(value & opt (some int) None & info [ "nics" ] ~docv:"N" ~doc)

let failover_arg =
  let doc =
    "Restrict the fleet experiment to one failover setting ($(b,on) or \
     $(b,off)). Defaults to both (or $(b,FLEET_FAILOVER))."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "failover" ] ~docv:"FAILOVER" ~doc)

let list_experiments () =
  Printf.printf "%-11s %5s  %s\n" "name" "cells" "description";
  List.iter
    (fun d ->
      Printf.printf "%-11s %5d  %s\n" (P.Exp_desc.name d)
        (P.Exp_desc.cell_count d)
        (P.Exp_desc.description d))
    P.Experiments.all

let print_trace_report runs =
  List.iter
    (fun (run : Taichi_metrics.Export.run) ->
      Format.printf "@.trace: %s / %s (seed %d)@." run.experiment run.policy
        run.seed;
      Format.printf "%a@." Taichi_metrics.Timeline.pp run.timeline;
      Format.printf "counters:@.";
      List.iter
        (fun (name, v) -> Format.printf "  %-32s %d@." name v)
        run.counters)
    runs

(* Exit codes: 0 success, 1 usage / export error, 2 uncaught experiment
   failure (Cmdliner), 3 post-experiment audit violation — a run that
   produced output but left the machine in an incoherent state must be
   distinguishable from an infrastructure error in CI. *)
let audit_exit_code = 3

let report_audit_failures failures =
  List.iter
    (fun (f : P.Run_ctx.audit_failure) ->
      Printf.eprintf "AUDIT FAILURE: %s (seed %d):\n" f.experiment f.seed;
      List.iter (Printf.eprintf "  - %s\n") f.violations)
    failures;
  Printf.eprintf "%d run(s) failed the post-experiment audit\n"
    (List.length failures)

(* The CI matrix narrows chaos/overload through the environment; an
   explicit flag wins over it. Both become plain cell filters on the
   relevant descriptor — no module state anywhere. *)
let filter_for ~chaos_profile ~overload_governor ~aggressor ~churn_profile
    ~fleet_nics ~fleet_failover desc =
  match P.Exp_desc.name desc with
  | "chaos" -> (
      match chaos_profile with
      | Some p -> P.Exp_chaos.profile_filter p
      | None -> fun _ -> true)
  | "overload" -> (
      match overload_governor with
      | Some g -> P.Exp_overload.governor_filter g
      | None -> fun _ -> true)
  | "multitenant" -> (
      match aggressor with
      | Some a -> P.Exp_multitenant.aggressor_filter a
      | None -> fun _ -> true)
  | "churn" -> (
      match churn_profile with
      | Some p -> P.Exp_churn.profile_filter p
      | None -> fun _ -> true)
  | "fleet" ->
      let by_nics =
        match fleet_nics with
        | Some n -> P.Exp_fleet.nics_filter n
        | None -> fun _ -> true
      in
      let by_failover =
        match fleet_failover with
        | Some s -> P.Exp_fleet.failover_filter s
        | None -> fun _ -> true
      in
      fun cell -> by_nics cell && by_failover cell
  | _ -> fun _ -> true

let run name seed scale jobs list trace trace_json chaos_profile
    overload_governor aggressor churn_profile fleet_nics fleet_failover =
  if list then begin
    list_experiments ();
    0
  end
  else
    match name with
    | None ->
        Printf.eprintf "missing EXPERIMENT (try --list)\n";
        1
    | Some name -> (
        let chaos_profile =
          match chaos_profile with
          | Some _ as p -> p
          | None -> Sys.getenv_opt "CHAOS_PROFILE"
        in
        let overload_governor =
          match overload_governor with
          | Some _ as g -> g
          | None -> Sys.getenv_opt "OVERLOAD_GOVERNOR"
        in
        let aggressor =
          match aggressor with
          | Some _ as a -> a
          | None -> Sys.getenv_opt "MULTITENANT_AGGRESSOR"
        in
        let churn_profile =
          match churn_profile with
          | Some _ as p -> p
          | None -> Sys.getenv_opt "CHURN_PROFILE"
        in
        let fleet_nics =
          match fleet_nics with
          | Some _ as n -> n
          | None -> (
              match Sys.getenv_opt "FLEET_NICS" with
              | Some s -> (
                  match int_of_string_opt s with
                  | Some n -> Some n
                  | None ->
                      Printf.eprintf "ignoring non-numeric FLEET_NICS=%s\n" s;
                      None)
              | None -> None)
        in
        let fleet_failover =
          match fleet_failover with
          | Some _ as f -> f
          | None -> Sys.getenv_opt "FLEET_FAILOVER"
        in
        let tracing = trace || trace_json <> None in
        (* Collect audit violations instead of aborting mid-batch: every
           experiment still runs, then the process exits with the distinct
           audit status below. *)
        let ctx = P.Run_ctx.create ~tracing ~audit:P.Run_ctx.Collect () in
        let run_desc desc =
          let ctx = P.Run_ctx.with_experiment ctx (P.Exp_desc.name desc) in
          P.Sweep.run ~jobs
            ~filter:
              (filter_for ~chaos_profile ~overload_governor ~aggressor
                 ~churn_profile ~fleet_nics ~fleet_failover desc)
            ctx desc ~seed ~scale
        in
        let status =
          if name = "all" then begin
            List.iter run_desc P.Experiments.all;
            0
          end
          else
            match P.Experiments.find name with
            | Some desc ->
                run_desc desc;
                0
            | None ->
                Printf.eprintf "unknown experiment %s" name;
                (match P.Experiments.closest name with
                | Some (suggestion, cells) ->
                    Printf.eprintf " (did you mean %s, %d cells?)" suggestion
                      cells
                | None -> ());
                Printf.eprintf "; known: %s\n"
                  (String.concat ", " experiment_names);
                1
        in
        let status =
          if status = 0 && tracing then begin
            let runs = P.Run_ctx.runs ctx in
            if trace then print_trace_report runs;
            (* Export failures must not look like a successful run: report
               and fail cleanly rather than dying on an uncaught
               Sys_error. *)
            match trace_json with
            | Some path -> (
                try
                  Taichi_metrics.Export.write_file path runs;
                  Printf.printf "trace export: %d run(s) written to %s\n"
                    (List.length runs) path;
                  status
                with Sys_error msg ->
                  Printf.eprintf "cannot write trace export: %s\n" msg;
                  1)
            | None -> status
          end
          else status
        in
        match P.Run_ctx.audit_failures ctx with
        | [] -> status
        | failures ->
            report_audit_failures failures;
            audit_exit_code)

let cmd =
  let doc = "Reproduce the Tai Chi (SOSP'25) evaluation on the simulator" in
  let info = Cmd.info "taichi_sim" ~doc in
  Cmd.v info
    Term.(
      const run $ name_arg $ seed_arg $ scale_arg $ jobs_arg $ list_arg
      $ trace_arg $ trace_json_arg $ chaos_profile_arg $ overload_governor_arg
      $ aggressor_arg $ churn_profile_arg $ nics_arg $ failover_arg)

let main () = exit (Cmd.eval' cmd)

(* Unit and property tests for the discrete-event engine. *)

open Taichi_engine

let check = Alcotest.check
let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* --- Time_ns -------------------------------------------------------------- *)

let test_time_units () =
  checki "us" 1_000 (Time_ns.us 1);
  checki "ms" 1_000_000 (Time_ns.ms 1);
  checki "sec" 1_000_000_000 (Time_ns.sec 1);
  checki "minutes" 60_000_000_000 (Time_ns.minutes 1);
  checki "of_us_f rounds" 1_500 (Time_ns.of_us_f 1.5);
  check (Alcotest.float 1e-9) "to_ms_f" 2.5 (Time_ns.to_ms_f 2_500_000)

let test_time_pp () =
  check Alcotest.string "ns" "999ns" (Time_ns.to_string 999);
  check Alcotest.string "us" "1.50us" (Time_ns.to_string 1_500);
  check Alcotest.string "ms" "2.00ms" (Time_ns.to_string 2_000_000);
  check Alcotest.string "s" "1.000s" (Time_ns.to_string 1_000_000_000)

(* --- Pheap ----------------------------------------------------------------- *)

let test_heap_order () =
  let h = Pheap.create () in
  List.iteri (fun i k -> Pheap.push h ~key:k ~seq:i i) [ 5; 1; 9; 3; 1; 7 ];
  let keys = ref [] in
  let rec drain () =
    match Pheap.pop h with
    | Some (k, _, _) ->
        keys := k :: !keys;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "sorted" [ 9; 7; 5; 3; 1; 1 ] !keys

let test_heap_fifo_ties () =
  let h = Pheap.create () in
  Pheap.push h ~key:4 ~seq:0 "a";
  Pheap.push h ~key:4 ~seq:1 "b";
  Pheap.push h ~key:4 ~seq:2 "c";
  let pop () = match Pheap.pop h with Some (_, _, v) -> v | None -> "?" in
  check Alcotest.string "first" "a" (pop ());
  check Alcotest.string "second" "b" (pop ());
  check Alcotest.string "third" "c" (pop ())

let prop_heap_sorted =
  QCheck.Test.make ~name:"heap pops sorted" ~count:200
    QCheck.(list small_int)
    (fun keys ->
      let h = Pheap.create () in
      List.iteri (fun i k -> Pheap.push h ~key:k ~seq:i k) keys;
      let rec drain acc =
        match Pheap.pop h with Some (k, _, _) -> drain (k :: acc) | None -> acc
      in
      let popped = List.rev (drain []) in
      popped = List.sort compare keys)

(* Cancellation is modelled the way [Sim] uses the heap: dead elements
   stay as tombstones until a [compact] sweeps them. Two rounds of
   insert / cancel / compact must leave exactly the live elements, popped
   in (key, seq) order — i.e. compaction preserves both the live-event
   set and the deterministic FIFO tie-break. *)
let prop_heap_compact_live_set =
  QCheck.Test.make ~name:"heap compact preserves live set and order"
    ~count:200
    QCheck.(
      pair
        (small_list (pair small_int bool))
        (small_list (pair small_int bool)))
    (fun (round1, round2) ->
      let h = Pheap.create () in
      let seq = ref 0 in
      let push_round ops =
        List.map
          (fun (key, alive) ->
            let s = !seq in
            incr seq;
            Pheap.push h ~key ~seq:s (s, alive);
            (key, s, alive))
          ops
      in
      let keep (_, alive) = alive in
      let r1 = push_round round1 in
      Pheap.compact h ~keep;
      let r2 = push_round round2 in
      Pheap.compact h ~keep;
      let expected =
        List.filter (fun (_, _, alive) -> alive) (r1 @ r2)
        |> List.map (fun (key, s, _) -> (key, s))
        |> List.sort compare
      in
      let rec drain acc =
        match Pheap.pop h with
        | Some (k, s, (s', alive)) ->
            if s <> s' || not alive then raise Exit;
            drain ((k, s) :: acc)
        | None -> List.rev acc
      in
      match drain [] with
      | popped -> popped = expected
      | exception Exit -> false)

(* --- Sim -------------------------------------------------------------------- *)

let test_sim_ordering () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore (Sim.at sim 30 (fun () -> log := 3 :: !log));
  ignore (Sim.at sim 10 (fun () -> log := 1 :: !log));
  ignore (Sim.at sim 20 (fun () -> log := 2 :: !log));
  Sim.run sim;
  Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (List.rev !log);
  checki "clock at last event" 30 (Sim.now sim)

let test_sim_same_time_fifo () =
  let sim = Sim.create () in
  let log = ref [] in
  for i = 0 to 4 do
    ignore (Sim.at sim 5 (fun () -> log := i :: !log))
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "fifo" [ 0; 1; 2; 3; 4 ] (List.rev !log)

let test_sim_cancel () =
  let sim = Sim.create () in
  let fired = ref false in
  let h = Sim.at sim 10 (fun () -> fired := true) in
  Sim.cancel sim h;
  Sim.run sim;
  checkb "not fired" false !fired;
  checkb "not pending" false (Sim.is_pending sim h)

let test_sim_until () =
  let sim = Sim.create () in
  let fired = ref 0 in
  ignore (Sim.at sim 10 (fun () -> incr fired));
  ignore (Sim.at sim 100 (fun () -> incr fired));
  Sim.run ~until:50 sim;
  checki "one fired" 1 !fired;
  checki "clock stops at until" 50 (Sim.now sim);
  Sim.run sim;
  checki "rest fired" 2 !fired

let test_sim_past_raises () =
  let sim = Sim.create () in
  ignore (Sim.at sim 10 (fun () -> ()));
  Sim.run sim;
  Alcotest.check_raises "past scheduling"
    (Invalid_argument "Sim.at: time 5 is before now 10") (fun () ->
      ignore (Sim.at sim 5 (fun () -> ())))

let test_sim_nested_schedule () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore
    (Sim.at sim 10 (fun () ->
         log := "outer" :: !log;
         ignore (Sim.after sim 5 (fun () -> log := "inner" :: !log))));
  Sim.run sim;
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !log);
  checki "clock" 15 (Sim.now sim)

let test_sim_immediate () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore
    (Sim.at sim 10 (fun () ->
         log := 1 :: !log;
         ignore (Sim.immediate sim (fun () -> log := 2 :: !log))));
  ignore (Sim.at sim 10 (fun () -> log := 3 :: !log));
  Sim.run sim;
  Alcotest.(check (list int)) "immediate runs after queued" [ 1; 3; 2 ]
    (List.rev !log)

let test_sim_counters () =
  let sim = Sim.create () in
  let h1 = Sim.at sim 1 (fun () -> ()) in
  let _h2 = Sim.at sim 2 (fun () -> ()) in
  checki "pending 2" 2 (Sim.pending_events sim);
  Sim.cancel sim h1;
  checki "pending 1 after cancel" 1 (Sim.pending_events sim);
  Sim.run sim;
  checki "pending 0" 0 (Sim.pending_events sim);
  checki "fired 1" 1 (Sim.events_processed sim)

let test_sim_tombstone_compaction () =
  let sim = Sim.create () in
  let order = ref [] in
  let handles =
    Array.init 10_000 (fun i ->
        Sim.after sim (i + 1) (fun () -> order := i :: !order))
  in
  (* Cancel 90%: tombstones vastly outnumber live events, so the heap must
     have been rebuilt rather than retaining every dead entry. *)
  Array.iteri (fun i h -> if i mod 10 <> 0 then Sim.cancel sim h) handles;
  checki "live preserved" 1000 (Sim.pending_events sim);
  checkb "compacted at least once" true (Sim.compactions sim > 0);
  checkb "dead entries bounded by ~2x live" true
    (Sim.dead_events sim <= (2 * Sim.pending_events sim) + 64);
  Sim.run sim;
  let fired = List.rev !order in
  checki "all survivors fired" 1000 (List.length fired);
  checkb "fired in schedule order" true
    (fired = List.init 1000 (fun k -> k * 10))

(* --- Sim vs. the seed engine (differential oracle) ------------------------- *)

(* Both engines expose the same timer-program surface; the calendar-queue
   engine must be observationally identical to the seed binary heap. *)
module type ENGINE = sig
  type t
  type handle

  val create : unit -> t
  val now : t -> Time_ns.t
  val at : t -> Time_ns.t -> (unit -> unit) -> handle
  val cancel : t -> handle -> unit
  val run : ?until:Time_ns.t -> t -> unit
  val pending_events : t -> int
  val events_processed : t -> int
  val events_scheduled : t -> int
  val dead_events : t -> int
  val compactions : t -> int
end

(* [Sim_legacy]'s handle record carries its owner, so its [cancel] takes
   only the handle; adapt it to the shared ENGINE surface where handles
   are owner-relative ints. *)
module Legacy_engine = struct
  include Sim_legacy

  let cancel _sim h = Sim_legacy.cancel h
end

(* Interpret a random op list: schedule (delays spanning same-instant ties
   through far beyond the calendar wheel's ~2.1 ms horizon, so the overflow
   tier and its drain get exercised), cancel an arbitrary earlier handle
   (possibly already fired — must be a no-op), or advance with [run ~until].
   Returns the full observable trace: fire order with clock readings, final
   clock, and every counter including compaction activity. *)
let run_timer_program (module E : ENGINE) ops =
  let sim = E.create () in
  let log = ref [] in
  let handles = ref [] in
  let nh = ref 0 in
  List.iter
    (fun (op, a, _b) ->
      match op with
      | 0 ->
          let k = !nh in
          let h =
            E.at sim
              (E.now sim + (a mod 5_000_000))
              (fun () -> log := (k, E.now sim) :: !log)
          in
          handles := h :: !handles;
          incr nh
      | 1 ->
          if !nh > 0 then E.cancel sim (List.nth !handles (a mod !nh))
      | _ -> E.run ~until:(E.now sim + (a mod 300_000)) sim)
    ops;
  E.run sim;
  ( List.rev !log,
    E.now sim,
    ( E.pending_events sim,
      E.events_processed sim,
      E.events_scheduled sim,
      E.dead_events sim,
      E.compactions sim ) )

let prop_sim_differential =
  QCheck.Test.make ~name:"calendar engine == seed engine on random programs"
    ~count:120
    QCheck.(
      list_of_size (Gen.int_range 0 200)
        (triple (int_bound 2) (int_bound 4_999_999) small_int))
    (fun ops ->
      let new_r = run_timer_program (module Sim) ops in
      let old_r = run_timer_program (module Legacy_engine) ops in
      new_r = old_r)

(* Dense same-instant bursts with interleaved cancels are where a bucketed
   queue could most plausibly break FIFO tie-breaks; pin them separately
   from the mixed program above. *)
let prop_sim_differential_ties =
  QCheck.Test.make ~name:"calendar engine == seed engine on same-time ties"
    ~count:120
    QCheck.(
      list_of_size (Gen.int_range 0 150)
        (triple (int_bound 2) (int_bound 40) small_int))
    (fun ops ->
      let new_r = run_timer_program (module Sim) ops in
      let old_r = run_timer_program (module Legacy_engine) ops in
      new_r = old_r)

(* Batched-dispatch adversary. The production engine lifts dense calendar
   buckets into a scratch batch and dispatches from it; this program does
   everything a half-dispatched batch could get wrong: callbacks that
   schedule fresh events into the very bucket being drained (they must
   interleave with the batch in (time, seq) order), callbacks that cancel
   entries still sitting in the batch (lazy tombstones must drop at the
   same observable instant the heap engine drops them), and chunked
   [run ~until] stops that land mid-batch (the remainder must survive to
   the next run). All of it must be observationally identical to the
   seed heap engine, counters included. *)
let run_batched_program (module E : ENGINE) ops =
  let sim = E.create () in
  let log = ref [] in
  let handles = ref [] in
  let nh = ref 0 in
  let add h =
    handles := h :: !handles;
    incr nh
  in
  let schedule k ~delay ~act ~arg =
    add
      (E.at sim
         (E.now sim + delay)
         (fun () ->
           log := (k, E.now sim) :: !log;
           match act with
           | 1 ->
               (* spawn a sibling, almost always into the bucket being
                  dispatched *)
               add
                 (E.at sim
                    (E.now sim + (arg mod 900))
                    (fun () -> log := (k + 10_000, E.now sim) :: !log))
           | 2 -> if !nh > 0 then E.cancel sim (List.nth !handles (arg mod !nh))
           | _ -> ()))
  in
  List.iteri
    (fun k (op, a, b) ->
      match op with
      | 0 | 1 | 2 -> schedule k ~delay:(a mod 1200) ~act:op ~arg:b
      | _ -> E.run ~until:(E.now sim + (a mod 700)) sim)
    ops;
  E.run sim;
  ( List.rev !log,
    E.now sim,
    ( E.pending_events sim,
      E.events_processed sim,
      E.events_scheduled sim,
      E.dead_events sim,
      E.compactions sim ) )

let prop_sim_differential_batched =
  QCheck.Test.make
    ~name:"calendar engine == seed engine under batched dispatch" ~count:150
    QCheck.(
      list_of_size (Gen.int_range 0 200)
        (triple (int_bound 3) (int_bound 4999) small_int))
    (fun ops ->
      run_batched_program (module Sim) ops
      = run_batched_program (module Legacy_engine) ops)

(* --- Counters: handle/string equivalence ----------------------------------- *)

(* A table driven through any interleaving of the string API, pre-interned
   handles, [add_h] and per-tenant lanes must be indistinguishable — in
   [dump] and [get] — from one driven purely through strings. Registration
   alone (op 3) must leave no trace in the snapshot. *)
let prop_counters_handle_string_equiv =
  let names =
    [| "a.one"; "b.two"; "c.three"; "dp.bytes"; "m.n.o"; "zz" |]
  in
  QCheck.Test.make
    ~name:"counter handles == string keys on random interleavings" ~count:300
    QCheck.(
      list_of_size (Gen.int_range 0 120)
        (triple (int_bound 5) (int_bound 20) small_int))
    (fun ops ->
      let mixed = Counters.create () in
      let reference = Counters.create () in
      List.iter
        (fun (op, ni, byraw) ->
          let name = names.(ni mod Array.length names) in
          let by = (byraw land 7) + 1 in
          match op with
          | 0 ->
              Counters.incr mixed ~by name;
              Counters.incr reference ~by name
          | 1 ->
              Counters.incr_h mixed ~by (Counters.handle mixed name);
              Counters.incr reference ~by name
          | 2 ->
              Counters.add_h mixed (Counters.handle mixed name) by;
              Counters.incr reference ~by name
          | 3 -> ignore (Counters.handle mixed name)
          | 4 ->
              let tid = ni mod 3 in
              Counters.lane_incr (Counters.lane mixed name) ~by tid;
              Counters.incr reference ~by
                (Printf.sprintf "tenant.%d.%s" tid name)
          | _ ->
              Counters.clear mixed;
              Counters.clear reference)
        ops;
      Counters.dump mixed = Counters.dump reference
      && Array.for_all
           (fun name -> Counters.get mixed name = Counters.get reference name)
           names)

(* --- Pheap regression: grow after clear ------------------------------------ *)

(* [Pheap.grow] used to size the new store off [h.arr.(0)], which crashed
   the first push after [clear] emptied the backing array. *)
let test_heap_clear_then_push () =
  let h = Pheap.create () in
  for i = 1 to 200 do
    Pheap.push h ~key:i ~seq:i i
  done;
  Pheap.clear h;
  checki "cleared" 0 (Pheap.length h);
  for i = 1 to 200 do
    Pheap.push h ~key:(201 - i) ~seq:i i
  done;
  checki "refilled" 200 (Pheap.length h);
  match Pheap.pop h with
  | Some (k, _, _) -> checki "min after refill" 1 k
  | None -> Alcotest.fail "heap empty after refill"

(* --- Bucket_layout --------------------------------------------------------- *)

(* Values across the whole non-negative int range, dense at the bottom
   (where the layout is one-to-one) and log-spread up to [max_int] (where
   [upper_of] must saturate rather than overflow). *)
let any_bucket_value =
  QCheck.make
    ~print:string_of_int
    QCheck.Gen.(
      oneof
        [
          int_range 0 200;
          map
            (fun (shift, low) -> ((1 lsl shift) lor (low land ((1 lsl shift) - 1))) land max_int)
            (pair (int_range 0 61) (int_range 0 max_int));
          return max_int;
        ])

let prop_bucket_upper_covers =
  QCheck.Test.make ~name:"bucket upper_of (index_of v) >= v" ~count:2000
    any_bucket_value
    (fun v ->
      let u = Bucket_layout.upper_of (Bucket_layout.index_of v) in
      u >= v)

let prop_bucket_monotone =
  QCheck.Test.make ~name:"bucket index_of and upper_of monotone" ~count:2000
    QCheck.(pair any_bucket_value any_bucket_value)
    (fun (a, b) ->
      let lo = Stdlib.min a b and hi = Stdlib.max a b in
      let ilo = Bucket_layout.index_of lo and ihi = Bucket_layout.index_of hi in
      ilo <= ihi && Bucket_layout.upper_of ilo <= Bucket_layout.upper_of ihi)

let test_bucket_saturation () =
  checki "top bucket saturates at max_int" max_int
    (Bucket_layout.upper_of (Bucket_layout.index_of max_int));
  (* The exact layout below 2 * sub_count is one-to-one. *)
  for v = 0 to (2 * Bucket_layout.sub_count) - 1 do
    checki "exact range is identity" v
      (Bucket_layout.upper_of (Bucket_layout.index_of v))
  done

(* --- Histogram scan regressions -------------------------------------------- *)

(* Reference semantics for [percentile]: the target-ranked value's bucket
   upper bound, clamped into [min, max]. The early-exit rewrite must agree
   with this bucket-order definition on every input. *)
let reference_percentile values p =
  let sorted = List.sort compare values in
  let n = List.length sorted in
  let target = Stdlib.max 1 (int_of_float (ceil (p /. 100.0 *. float_of_int n))) in
  let v = List.nth sorted (target - 1) in
  let lo = List.hd sorted and hi = List.nth sorted (n - 1) in
  Stdlib.max lo
    (Stdlib.min (Bucket_layout.upper_of (Bucket_layout.index_of v)) hi)

let prop_histogram_percentile_reference =
  QCheck.Test.make ~name:"percentile matches full-scan reference" ~count:500
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 60) (int_range 0 100_000_000))
        (int_range 0 1000))
    (fun (values, p1000) ->
      let p = float_of_int p1000 /. 10.0 in
      let h = Histogram.create () in
      List.iter (Histogram.add h) values;
      Histogram.percentile h p = reference_percentile values p)

let prop_histogram_cdf_reference =
  QCheck.Test.make ~name:"cdf_points matches full-scan reference" ~count:500
    QCheck.(list_of_size (Gen.int_range 1 60) (int_range 0 100_000_000))
    (fun values ->
      let h = Histogram.create () in
      List.iter (Histogram.add h) values;
      let n = List.length values in
      let expected =
        (* group by bucket index in ascending order, accumulate counts *)
        let sorted =
          List.sort compare (List.map Bucket_layout.index_of values)
        in
        let rec group acc = function
          | [] -> List.rev acc
          | i :: rest ->
              let same, rest' = List.partition (fun j -> j = i) (i :: rest) in
              group ((i, List.length same) :: acc) rest'
        in
        let acc = ref 0 in
        List.map
          (fun (i, c) ->
            acc := !acc + c;
            (Bucket_layout.upper_of i, float_of_int !acc /. float_of_int n))
          (group [] sorted)
      in
      Histogram.cdf_points h = expected)

(* --- Rng / Dist -------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_split_independent () =
  let root = Rng.create ~seed:7 in
  let a = Rng.split root "alpha" and b = Rng.split root "beta" in
  let va = Rng.bits64 a and vb = Rng.bits64 b in
  checkb "different streams" true (va <> vb)

let test_rng_split_stable () =
  (* Splitting is insensitive to how much the sibling stream was used. *)
  let r1 = Rng.create ~seed:9 in
  let _ = Rng.split r1 "x" in
  let a = Rng.split r1 "y" in
  let r2 = Rng.create ~seed:9 in
  let b = Rng.split r2 "y" in
  Alcotest.(check int64) "stable derivation" (Rng.bits64 a) (Rng.bits64 b)

let prop_rng_int_range =
  QCheck.Test.make ~name:"Rng.int in range" ~count:500
    QCheck.(pair (int_range 1 1_000_000) small_int)
    (fun (n, seed) ->
      let rng = Rng.create ~seed in
      let v = Rng.int rng n in
      v >= 0 && v < n)

let test_rng_bernoulli_extremes () =
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 50 do
    checkb "p=0 never" false (Rng.bernoulli rng ~p:0.0);
    checkb "p=1 always" true (Rng.bernoulli rng ~p:1.0)
  done

let test_dist_exponential_mean () =
  let rng = Rng.create ~seed:11 in
  let s = Stats.create () in
  for _ = 1 to 20_000 do
    Stats.add s (Dist.exponential rng ~mean:5.0)
  done;
  checkb "mean within 5%" true (Float.abs (Stats.mean s -. 5.0) < 0.25)

let test_dist_normal_moments () =
  let rng = Rng.create ~seed:12 in
  let s = Stats.create () in
  for _ = 1 to 20_000 do
    Stats.add s (Dist.normal rng ~mu:10.0 ~sigma:2.0)
  done;
  checkb "mean" true (Float.abs (Stats.mean s -. 10.0) < 0.1);
  checkb "sd" true (Float.abs (Stats.stddev s -. 2.0) < 0.1)

let test_dist_bounded_pareto_bounds () =
  let rng = Rng.create ~seed:13 in
  for _ = 1 to 5_000 do
    let v = Dist.bounded_pareto rng ~lo:1.0 ~hi:67.0 ~shape:1.8 in
    checkb "within bounds" true (v >= 1.0 && v <= 67.0)
  done

let test_dist_poisson_mean () =
  let rng = Rng.create ~seed:14 in
  let s = Stats.create () in
  for _ = 1 to 20_000 do
    Stats.add_int s (Dist.poisson rng ~lambda:7.5)
  done;
  checkb "poisson mean" true (Float.abs (Stats.mean s -. 7.5) < 0.15)

let test_dist_empirical () =
  let e = Dist.empirical_of_weighted [ (1.0, 1.0); (10.0, 1.0) ] in
  let rng = Rng.create ~seed:15 in
  let lo = ref 0 and hi = ref 0 in
  for _ = 1 to 2_000 do
    let v = Dist.empirical_sample e rng in
    checkb "range" true (v >= 0.5 && v <= 10.0);
    if v <= 5.0 then incr lo else incr hi
  done;
  checkb "both sides sampled" true (!lo > 200 && !hi > 200)

let test_dist_lognormal_ns_median () =
  let rng = Rng.create ~seed:16 in
  let values = Array.init 9_999 (fun _ -> Dist.lognormal_ns rng ~median:1000 ~sigma:0.5) in
  Array.sort compare values;
  let median = values.(Array.length values / 2) in
  checkb "median near 1000" true (abs (median - 1000) < 100)

(* --- Stats -------------------------------------------------------------------- *)

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  checki "count" 4 (Stats.count s);
  check (Alcotest.float 1e-9) "mean" 2.5 (Stats.mean s);
  check (Alcotest.float 1e-9) "min" 1.0 (Stats.min s);
  check (Alcotest.float 1e-9) "max" 4.0 (Stats.max s);
  check (Alcotest.float 1e-6) "var" (5.0 /. 3.0) (Stats.variance s)

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () and whole = Stats.create () in
  List.iter
    (fun x ->
      Stats.add whole x;
      if x < 3.0 then Stats.add a x else Stats.add b x)
    [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  let m = Stats.merge a b in
  check (Alcotest.float 1e-9) "merged mean" (Stats.mean whole) (Stats.mean m);
  check (Alcotest.float 1e-6) "merged var" (Stats.variance whole) (Stats.variance m);
  checki "merged count" (Stats.count whole) (Stats.count m)

let test_stats_empty () =
  let s = Stats.create () in
  check (Alcotest.float 0.0) "mean empty" 0.0 (Stats.mean s);
  Alcotest.check_raises "min empty" (Invalid_argument "Stats.min: empty")
    (fun () -> ignore (Stats.min s))

(* --- Histogram ------------------------------------------------------------------ *)

let test_histogram_exact_small () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 1; 2; 3; 4; 5 ];
  checki "count" 5 (Histogram.count h);
  checki "min" 1 (Histogram.min_value h);
  checki "max" 5 (Histogram.max_value h);
  checki "p50" 3 (Histogram.percentile h 50.0);
  checki "p100" 5 (Histogram.percentile h 100.0)

let test_histogram_relative_error () =
  let h = Histogram.create () in
  let values = [ 100; 1_000; 10_000; 100_000; 1_000_000; 50_000_000 ] in
  List.iter (Histogram.add h) values;
  List.iteri
    (fun i v ->
      let p = (float_of_int (i + 1) /. 6.0 *. 100.0) -. 0.01 in
      let q = Histogram.percentile h p in
      let err = Float.abs (float_of_int (q - v)) /. float_of_int v in
      checkb (Printf.sprintf "p%.0f within 4%%" p) true (err < 0.04))
    values

let test_histogram_cdf () =
  let h = Histogram.create () in
  for i = 1 to 100 do
    Histogram.add h i
  done;
  let below = Histogram.fraction_below h 51 in
  checkb "about half below 51" true (Float.abs (below -. 0.5) < 0.05);
  let points = Histogram.cdf_points h in
  let _, last = List.nth points (List.length points - 1) in
  check (Alcotest.float 1e-9) "cdf reaches 1" 1.0 last

let test_histogram_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  List.iter (Histogram.add a) [ 1; 2; 3 ];
  List.iter (Histogram.add b) [ 1_000_000; 2_000_000 ];
  let m = Histogram.merge a b in
  checki "merged count" 5 (Histogram.count m);
  checki "merged min" 1 (Histogram.min_value m);
  checki "merged max" 2_000_000 (Histogram.max_value m)

let prop_histogram_percentile_bounds =
  QCheck.Test.make ~name:"percentile within [min,max]" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 50) (int_range 0 1_000_000))
    (fun values ->
      let h = Histogram.create () in
      List.iter (Histogram.add h) values;
      List.for_all
        (fun p ->
          let q = Histogram.percentile h p in
          q >= Histogram.min_value h && q <= Histogram.max_value h)
        [ 0.1; 25.0; 50.0; 90.0; 99.0; 100.0 ])

let prop_histogram_mean_exact =
  QCheck.Test.make ~name:"histogram mean is exact" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 50) (int_range 0 1_000_000))
    (fun values ->
      let h = Histogram.create () in
      List.iter (Histogram.add h) values;
      let expected =
        float_of_int (List.fold_left ( + ) 0 values)
        /. float_of_int (List.length values)
      in
      Float.abs (Histogram.mean h -. expected) < 1e-6)

(* --- Trace -------------------------------------------------------------------- *)

let test_trace_disabled_by_default () =
  let t = Trace.create () in
  Trace.emit t ~time:5 ~category:"x" "hello";
  checki "no records" 0 (Trace.length t)

let test_trace_enabled () =
  let t = Trace.create ~enabled:true () in
  Trace.emit t ~time:5 ~category:"sched" "switch";
  Trace.emitf t ~time:6 ~category:"sched" "cpu %d" 3;
  Trace.emit t ~time:7 ~category:"io" "packet";
  checki "records" 3 (Trace.length t);
  checki "by category" 2 (List.length (Trace.by_category t "sched"));
  let r = List.hd (Trace.records t) in
  check Alcotest.string "message" "switch" r.Trace.message

let test_trace_limit () =
  let t = Trace.create ~enabled:true ~limit:3 () in
  for i = 1 to 10 do
    Trace.emit t ~time:i ~category:"c" (string_of_int i)
  done;
  checki "bounded" 3 (Trace.length t);
  let first = List.hd (Trace.records t) in
  check Alcotest.string "oldest dropped" "8" first.Trace.message;
  checki "evictions counted" 7 (Trace.dropped t);
  (* Retained records stay chronological after wraparound. *)
  let times = List.map (fun r -> r.Trace.time) (Trace.records t) in
  checkb "ordered" true (times = List.sort compare times);
  Trace.clear t;
  checki "clear resets dropped" 0 (Trace.dropped t)

(* The disabled branch of emitf must not touch any global formatter:
   it used to drain [Format.str_formatter], corrupting whatever a
   concurrent caller had staged there. *)
let test_trace_disabled_emitf_pure () =
  let t = Trace.create () in
  Format.fprintf Format.str_formatter "sentinel";
  Trace.emitf t ~time:1 ~category:"c" "cpu %d did %s" 3 "things";
  check Alcotest.string "str_formatter untouched" "sentinel"
    (Format.flush_str_formatter ());
  checki "no records" 0 (Trace.length t)

let test_trace_core_field () =
  let t = Trace.create ~enabled:true () in
  Trace.emit t ~time:1 ~core:4 ~category:"c" "a";
  Trace.emit t ~time:2 ~category:"c" "b";
  (match Trace.records t with
  | [ r1; r2 ] ->
      checki "explicit core" 4 r1.Trace.core;
      checki "default is no_core" Trace.no_core r2.Trace.core
  | _ -> Alcotest.fail "expected two records");
  checki "by_core" 1 (List.length (Trace.by_core t 4))

let test_counters () =
  let c = Counters.create () in
  Counters.incr c "b.two";
  Counters.incr c ~by:4 "a.one";
  Counters.incr c "b.two";
  checki "get" 2 (Counters.get c "b.two");
  checki "missing is zero" 0 (Counters.get c "nope");
  Alcotest.(check (list (pair string int)))
    "dump sorted by name"
    [ ("a.one", 4); ("b.two", 2) ]
    (Counters.dump c);
  Counters.clear c;
  checki "cleared" 0 (Counters.get c "a.one")

let test_stats_clear () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 100.0; 200.0; 400.0 ];
  Stats.clear s;
  checki "count reset" 0 (Stats.count s);
  check (Alcotest.float 1e-9) "mean reset" 0.0 (Stats.mean s);
  (* Post-clear observations must not blend with pre-clear ones. *)
  List.iter (Stats.add s) [ 10.0; 20.0; 30.0 ];
  checki "fresh count" 3 (Stats.count s);
  check (Alcotest.float 1e-9) "fresh mean" 20.0 (Stats.mean s);
  check (Alcotest.float 1e-9) "fresh stddev" 10.0 (Stats.stddev s);
  check (Alcotest.float 1e-9) "fresh min" 10.0 (Stats.min s);
  check (Alcotest.float 1e-9) "fresh max" 30.0 (Stats.max s)

let suite =
  [
    ("time units", `Quick, test_time_units);
    ("time pretty-printing", `Quick, test_time_pp);
    ("heap ordering", `Quick, test_heap_order);
    ("heap FIFO tie-break", `Quick, test_heap_fifo_ties);
    ("sim event ordering", `Quick, test_sim_ordering);
    ("sim same-time FIFO", `Quick, test_sim_same_time_fifo);
    ("sim cancellation", `Quick, test_sim_cancel);
    ("sim run until", `Quick, test_sim_until);
    ("sim rejects past", `Quick, test_sim_past_raises);
    ("sim nested scheduling", `Quick, test_sim_nested_schedule);
    ("sim immediate ordering", `Quick, test_sim_immediate);
    ("sim counters", `Quick, test_sim_counters);
    ("sim tombstone compaction", `Quick, test_sim_tombstone_compaction);
    ("heap clear then push", `Quick, test_heap_clear_then_push);
    ("bucket layout saturation", `Quick, test_bucket_saturation);
    ("rng determinism", `Quick, test_rng_deterministic);
    ("rng split independence", `Quick, test_rng_split_independent);
    ("rng split stability", `Quick, test_rng_split_stable);
    ("rng bernoulli extremes", `Quick, test_rng_bernoulli_extremes);
    ("dist exponential mean", `Quick, test_dist_exponential_mean);
    ("dist normal moments", `Quick, test_dist_normal_moments);
    ("dist bounded pareto bounds", `Quick, test_dist_bounded_pareto_bounds);
    ("dist poisson mean", `Quick, test_dist_poisson_mean);
    ("dist empirical", `Quick, test_dist_empirical);
    ("dist lognormal_ns median", `Quick, test_dist_lognormal_ns_median);
    ("stats basics", `Quick, test_stats_basic);
    ("stats merge", `Quick, test_stats_merge);
    ("stats empty", `Quick, test_stats_empty);
    ("histogram exact small values", `Quick, test_histogram_exact_small);
    ("histogram relative error", `Quick, test_histogram_relative_error);
    ("histogram cdf", `Quick, test_histogram_cdf);
    ("histogram merge", `Quick, test_histogram_merge);
    ("trace disabled", `Quick, test_trace_disabled_by_default);
    ("trace enabled", `Quick, test_trace_enabled);
    ("trace bounded", `Quick, test_trace_limit);
    ("trace disabled emitf is pure", `Quick, test_trace_disabled_emitf_pure);
    ("trace core field", `Quick, test_trace_core_field);
    ("counters registry", `Quick, test_counters);
    ("stats clear", `Quick, test_stats_clear);
    QCheck_alcotest.to_alcotest prop_heap_sorted;
    QCheck_alcotest.to_alcotest prop_heap_compact_live_set;
    QCheck_alcotest.to_alcotest prop_rng_int_range;
    QCheck_alcotest.to_alcotest prop_histogram_percentile_bounds;
    QCheck_alcotest.to_alcotest prop_histogram_mean_exact;
    QCheck_alcotest.to_alcotest prop_sim_differential;
    QCheck_alcotest.to_alcotest prop_sim_differential_ties;
    QCheck_alcotest.to_alcotest prop_sim_differential_batched;
    QCheck_alcotest.to_alcotest prop_counters_handle_string_equiv;
    QCheck_alcotest.to_alcotest prop_bucket_upper_covers;
    QCheck_alcotest.to_alcotest prop_bucket_monotone;
    QCheck_alcotest.to_alcotest prop_histogram_percentile_reference;
    QCheck_alcotest.to_alcotest prop_histogram_cdf_reference;
  ]

(* Alcotest entry point aggregating all suites. *)

let () =
  Alcotest.run "taichi"
    [
      ("engine", Test_engine.suite);
      ("hw", Test_hw.suite);
      ("core_state", Test_core_state.suite);
      ("os", Test_os.suite);
      ("accel", Test_accel.suite);
      ("dataplane", Test_dataplane.suite);
      ("metrics", Test_metrics.suite);
      ("observability", Test_observability.suite);
      ("controlplane", Test_controlplane.suite);
      ("core", Test_core.suite);
      ("tenant", Test_tenant.suite);
      ("overload", Test_overload.suite);
      ("faults", Test_faults.suite);
      ("fleet", Test_fleet.suite);
      ("workloads", Test_workloads.suite);
      ("platform", Test_platform.suite);
      ("sweep", Test_sweep.suite);
      ("extensions", Test_extensions.suite);
    ]

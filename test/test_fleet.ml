(* The fleet substrate's determinism and accounting contracts.

   The tentpole claim: a fleet run — deliveries, counters, membership —
   is identical at any worker-domain count, because every NIC's epoch
   work touches only NIC-local state and the exchange itself is
   sequential. The qcheck property drives random send programs (with
   random crashes) through jobs=1 and jobs=8 fleets and demands the
   same delivery logs and the same counter dumps. *)

open Taichi_engine
open Taichi_faults
open Taichi_fleet

(* --- exchange determinism (qcheck) ------------------------------------- *)

(* A NIC universe for substrate tests: a private delivery log. *)
type unit_nic = { mutable log : string list }

let make_fleet n =
  let nics = Array.init n (fun _ -> { log = [] }) in
  let counters = Array.init n (fun _ -> Counters.create ()) in
  let fleet = Fleet.create ~nics ~counters () in
  (fleet, nics, counters)

(* One program step: at [epoch], NIC [src] sends to [dst]. Crashes are
   (nic, epoch) pairs applied in the controller phase. *)
type program = {
  pr_nics : int;
  pr_epochs : int;
  pr_sends : (int * int * int) list; (* epoch, src, dst *)
  pr_crashes : (int * int) list; (* epoch, nic *)
}

let run_program ~jobs p =
  let fleet, nics, counters = make_fleet p.pr_nics in
  let deliver ~nic m =
    nics.(nic).log <-
      Printf.sprintf "e%d src=%d seq=%d sent=%d %s" (Fleet.epoch fleet)
        m.Fleet.src m.Fleet.seq m.Fleet.sent_epoch m.Fleet.payload
      :: nics.(nic).log
  in
  let advance ~nic ~epoch =
    List.iter
      (fun (e, src, dst) ->
        if e = epoch && src = nic then
          Fleet.send fleet ~src ~dst (Printf.sprintf "m%d.%d.%d" e src dst))
      p.pr_sends
  in
  let control ~epoch =
    List.iter
      (fun (e, i) -> if e = epoch && Fleet.alive fleet i then Fleet.crash fleet i)
      p.pr_crashes
  in
  Fleet.run ~jobs ~control fleet ~epochs:p.pr_epochs ~deliver ~advance;
  let logs = Array.to_list (Array.map (fun n -> List.rev n.log) nics) in
  let dumps = Array.to_list (Array.map Counters.dump counters) in
  (logs, dumps)

let program_gen =
  QCheck.Gen.(
    let* nics = int_range 2 6 in
    let* epochs = int_range 2 8 in
    let step = triple (int_range 0 (epochs - 1)) (int_range 0 (nics - 1))
                 (int_range 0 (nics - 1)) in
    let* sends = list_size (int_range 0 40) step in
    let* crashes =
      list_size (int_range 0 2)
        (pair (int_range 0 (epochs - 1)) (int_range 0 (nics - 1)))
    in
    return { pr_nics = nics; pr_epochs = epochs; pr_sends = sends;
             pr_crashes = crashes })

let program_print p =
  Printf.sprintf "{nics=%d epochs=%d sends=[%s] crashes=[%s]}" p.pr_nics
    p.pr_epochs
    (String.concat ";"
       (List.map (fun (e, s, d) -> Printf.sprintf "%d:%d->%d" e s d) p.pr_sends))
    (String.concat ";"
       (List.map (fun (e, i) -> Printf.sprintf "%d:%d" e i) p.pr_crashes))

let exchange_determinism =
  QCheck.Test.make ~name:"fleet jobs=1 == jobs=8 on random programs"
    ~count:100
    (QCheck.make ~print:program_print program_gen)
    (fun p ->
      let logs1, dumps1 = run_program ~jobs:1 p in
      let logs8, dumps8 = run_program ~jobs:8 p in
      logs1 = logs8 && dumps1 = dumps8)

(* Delivery order is canonical (src, seq), one epoch later. *)
let test_delivery_order () =
  let fleet, nics, counters = make_fleet 3 in
  let deliver ~nic m =
    nics.(nic).log <-
      Printf.sprintf "src=%d seq=%d sent=%d" m.Fleet.src m.Fleet.seq
        m.Fleet.sent_epoch
      :: nics.(nic).log
  in
  let advance ~nic ~epoch =
    if epoch = 0 then begin
      (* NIC 2 sends first in wall time; canonical order still puts
         NIC 0's messages ahead on delivery. *)
      if nic = 2 then Fleet.send fleet ~src:2 ~dst:1 "a";
      if nic = 0 then begin
        Fleet.send fleet ~src:0 ~dst:1 "b";
        Fleet.send fleet ~src:0 ~dst:1 "c"
      end
    end
  in
  Fleet.run fleet ~epochs:2 ~deliver ~advance;
  Alcotest.(check (list string))
    "NIC 1 sees (src0,seq0), (src0,seq1), (src2,seq0)"
    [ "src=0 seq=0 sent=0"; "src=0 seq=1 sent=0"; "src=2 seq=0 sent=0" ]
    (List.rev nics.(1).log);
  Alcotest.(check int) "delivered counted on dst" 3
    (Counters.get counters.(1) "fleet.exchange.delivered");
  Alcotest.(check int) "sent counted on srcs" 2
    (Counters.get counters.(0) "fleet.exchange.sent")

let test_partition_loss () =
  let fleet, nics, counters = make_fleet 4 in
  let deliver ~nic m =
    nics.(nic).log <- m.Fleet.payload :: nics.(nic).log
  in
  let advance ~nic ~epoch =
    if epoch = 1 then begin
      if nic = 0 then Fleet.send fleet ~src:0 ~dst:1 "cross";
      if nic = 2 then Fleet.send fleet ~src:2 ~dst:3 "same"
    end
  in
  let control ~epoch =
    if epoch = 0 then Fleet.partition fleet ~groups:[| 0; 1; 1; 1 |];
    if epoch = 2 then Fleet.heal fleet
  in
  Fleet.run ~control fleet ~epochs:4 ~deliver ~advance;
  Alcotest.(check (list string)) "cross-partition send dropped" []
    nics.(1).log;
  Alcotest.(check (list string)) "same-side send delivered" [ "same" ]
    nics.(3).log;
  Alcotest.(check int) "loss charged to the sender" 1
    (Counters.get counters.(0) "fleet.exchange.lost_partition")

(* --- RPC timeout / retry / abandon ------------------------------------- *)

let rpc_pair ?(nics = 2) ?timeout ?retry_base ?retry_cap ?max_attempts
    ~server () =
  let fleet, _, counters = make_fleet nics in
  let eps =
    Array.init nics (fun i ->
        Rpc.create ?timeout ?retry_base ?retry_cap ?max_attempts fleet ~nic:i)
  in
  Array.iteri (fun i ep -> if i > 0 then Rpc.register ep ~tag:"t" server) eps;
  (fleet, eps, counters)

let drive fleet eps ~epochs ~on_epoch =
  let deliver ~nic m = ignore (Rpc.deliver eps.(nic) m : bool) in
  let advance ~nic ~epoch =
    Rpc.tick eps.(nic) ~epoch;
    on_epoch ~nic ~epoch
  in
  Fleet.run fleet ~epochs ~deliver ~advance

let test_rpc_roundtrip () =
  let fleet, eps, counters =
    rpc_pair ~server:(fun ~src:_ body -> Some ("ack:" ^ body)) ()
  in
  let got = ref None in
  drive fleet eps ~epochs:4 ~on_epoch:(fun ~nic ~epoch ->
      if nic = 0 && epoch = 0 then
        Rpc.call eps.(0) ~dst:1 ~tag:"t" "hello"
          ~on_reply:(fun r -> got := Some r)
          ~on_abandon:(fun () -> Alcotest.fail "abandoned"));
  Alcotest.(check (option string)) "reply arrives" (Some "ack:hello") !got;
  Alcotest.(check int) "completed" 1
    (Counters.get counters.(0) "fleet.rpc.completed");
  Alcotest.(check int) "served" 1 (Counters.get counters.(1) "fleet.rpc.served");
  Alcotest.(check int) "no timeouts" 0
    (Counters.get counters.(0) "fleet.rpc.timeouts");
  Alcotest.(check int) "nothing outstanding" 0 (Rpc.outstanding eps.(0))

let test_rpc_retry_then_abandon () =
  (* The server swallows every request: the client must burn its full
     attempt budget on the capped-exponential schedule, then abandon. *)
  let fleet, eps, counters =
    rpc_pair ~timeout:1 ~retry_base:1 ~retry_cap:4 ~max_attempts:3
      ~server:(fun ~src:_ _ -> None) ()
  in
  let abandoned = ref 0 in
  drive fleet eps ~epochs:16 ~on_epoch:(fun ~nic ~epoch ->
      if nic = 0 && epoch = 0 then
        Rpc.call eps.(0) ~dst:1 ~tag:"t" "x"
          ~on_reply:(fun _ -> Alcotest.fail "server never replies")
          ~on_abandon:(fun () -> incr abandoned));
  Alcotest.(check int) "abandon callback fired once" 1 !abandoned;
  let get = Counters.get counters.(0) in
  Alcotest.(check int) "3 sends = 3 timeouts" 3 (get "fleet.rpc.timeouts");
  Alcotest.(check int) "2 retries after the first send" 2
    (get "fleet.rpc.retries");
  Alcotest.(check int) "abandoned counted" 1 (get "fleet.rpc.abandoned");
  Alcotest.(check int) "initial send counted once" 1 (get "fleet.rpc.sent");
  Alcotest.(check int) "server dropped every request" 3
    (Counters.get counters.(1) "fleet.rpc.unhandled" +
     Counters.get counters.(1) "fleet.rpc.served");
  Alcotest.(check int) "nothing outstanding" 0 (Rpc.outstanding eps.(0))

let test_rpc_dead_destination () =
  let fleet, eps, counters =
    rpc_pair ~timeout:1 ~retry_base:1 ~retry_cap:2 ~max_attempts:2
      ~server:(fun ~src:_ body -> Some body) ()
  in
  let abandoned = ref 0 in
  let control ~epoch = if epoch = 0 then Fleet.crash fleet 1 in
  let deliver ~nic m = ignore (Rpc.deliver eps.(nic) m : bool) in
  let advance ~nic ~epoch =
    Rpc.tick eps.(nic) ~epoch;
    if nic = 0 && epoch = 1 then
      Rpc.call eps.(0) ~dst:1 ~tag:"t" "x"
        ~on_reply:(fun _ -> Alcotest.fail "dst is dead")
        ~on_abandon:(fun () -> incr abandoned)
  in
  Fleet.run ~control fleet ~epochs:12 ~deliver ~advance;
  Alcotest.(check int) "abandoned" 1 !abandoned;
  Alcotest.(check int) "sends to the dead NIC dropped at the exchange" 2
    (Counters.get counters.(0) "fleet.exchange.lost_down")

(* --- crash-during-drain failover (full System harness) ------------------ *)

let test_crash_during_drain_failover () =
  (* Governor off so admissions land at their planned epochs: the drain
     overrun pins on a survivor and its 8 ms workload forces the
     escalation while a different NIC crashes mid-drain. Failover must
     still re-place every committed tenant, and the survivors' audit
     (inside Fleet_run.run) must stay green. *)
  let open Taichi_platform in
  let p =
    {
      Fleet_run.default_params with
      Fleet_run.nics = 4;
      epochs = 16;
      density = 2.0;
      governor = false;
      failover = true;
      fleet_jobs = 2;
      faults =
        {
          Nic_faults.quiet with
          Nic_faults.crashes = 1;
          crash_window = (10, 13);
          overruns = 1;
        };
    }
  in
  let rep = Fleet_run.run ~seed:11 p in
  Alcotest.(check int) "one NIC crashed" 1
    (List.length rep.Fleet_run.r_crashed);
  Alcotest.(check int) "no tenant lost" 0 (List.length rep.Fleet_run.r_lost);
  Alcotest.(check bool) "the overrun pinned" true
    (rep.Fleet_run.r_overruns_admitted >= 1);
  Alcotest.(check bool) "the drain was forced" true
    (rep.Fleet_run.r_forced_drains >= 1);
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Printf.sprintf "committed tenant %s re-placed" c.Fleet_run.tenant)
        true
        (List.exists
           (fun r ->
             r.Fleet_run.tenant = c.Fleet_run.tenant
             && r.Fleet_run.from_nic = c.Fleet_run.from_nic)
           rep.Fleet_run.r_replaced))
    rep.Fleet_run.r_committed;
  List.iter
    (fun r ->
      Alcotest.(check bool) "receipt names a crashed NIC" true
        (List.mem r.Fleet_run.from_nic rep.Fleet_run.r_crashed))
    rep.Fleet_run.r_replaced

let suite =
  [
    ("exchange determinism (qcheck)", `Slow,
     fun () -> ignore (QCheck.Test.check_exn exchange_determinism));
    ("delivery order is canonical (src, seq)", `Quick, test_delivery_order);
    ("partition drops cross-group traffic only", `Quick, test_partition_loss);
    ("rpc roundtrip completes in two epochs", `Quick, test_rpc_roundtrip);
    ("rpc retries then abandons on server drop", `Quick,
     test_rpc_retry_then_abandon);
    ("rpc to a crashed NIC abandons", `Quick, test_rpc_dead_destination);
    ("crash during drain: failover stays lossless", `Slow,
     test_crash_during_drain_failover);
  ]
  |> List.map (fun (n, s, f) -> Alcotest.test_case n s f)

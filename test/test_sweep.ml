(* The sweep determinism contract and the global-state audit behind it.

   The tentpole claim under test: running an experiment's cell grid on N
   domains produces byte-identical output (tables, progress lines) and
   byte-identical taichi-trace-v1 JSON to the sequential run at the same
   seed. That only holds if no module-level mutable state leaks between
   concurrently-running systems, so the isolation test drives two full
   systems from two domains at once and demands the exact counters a
   sequential run produces. *)

open Taichi_engine
open Taichi_hw
open Taichi_platform

(* Run a whole sweep under a buffered context: returns (output bytes,
   export JSON bytes, failure) with nothing written to the real stdout.
   A cross-cell oracle tripping at an off-default seed is part of the
   contract too — the sweep must re-raise the exact same failure at any
   job count, after the same output and harvest. *)
let run_buffered name ~seed ~jobs ~scale =
  let desc =
    match Experiments.find name with
    | Some d -> d
    | None -> Alcotest.failf "unknown experiment %s" name
  in
  let ctx =
    Run_ctx.for_cell
      (Run_ctx.with_experiment (Run_ctx.create ~tracing:true ()) name)
  in
  let failure =
    try
      Sweep.run ~jobs ctx desc ~seed ~scale;
      None
    with e -> Some (Printexc.to_string e)
  in
  ( Run_ctx.buffered_contents ctx,
    Taichi_metrics.Export.to_string (Run_ctx.runs ctx),
    failure )

let check_equivalence name ~scale () =
  List.iter
    (fun seed ->
      let out1, json1, fail1 = run_buffered name ~seed ~jobs:1 ~scale in
      let out4, json4, fail4 = run_buffered name ~seed ~jobs:4 ~scale in
      Alcotest.(check string)
        (Printf.sprintf "%s seed %d: stdout jobs=1 vs jobs=4" name seed)
        out1 out4;
      Alcotest.(check string)
        (Printf.sprintf "%s seed %d: export JSON jobs=1 vs jobs=4" name seed)
        json1 json4;
      Alcotest.(check (option string))
        (Printf.sprintf "%s seed %d: failure jobs=1 vs jobs=4" name seed)
        fail1 fail4;
      (match Taichi_metrics.Export.validate_string json4 with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s seed %d: invalid export: %s" name seed e);
      Alcotest.(check bool)
        (Printf.sprintf "%s seed %d: output not empty" name seed)
        true
        (String.length out1 > 0))
    [ 3; 19 ]

(* --- two full systems on two domains at once ------------------------------ *)

(* One self-contained universe: mixed DP/CP load on full Tai Chi, audited
   by with_system, measured by the machine counter registry. *)
let universe seed =
  Exp_common.with_system ~seed Policy.taichi_default (fun sys ->
      let sim = System.sim sys in
      let until = Sim.now sim + Time_ns.ms 40 in
      Exp_common.start_bg_dp sys ~target:0.2 ~until;
      Exp_common.start_bg_cp sys;
      Exp_common.start_cp_churn sys ~period:(Time_ns.us 500)
        ~work:(Time_ns.us 200) ~until;
      System.advance sys (Time_ns.ms 50);
      List.sort compare
        (Counters.dump (Machine.counters (System.machine sys))))

let two_systems_concurrently () =
  let seq_a = universe 5 and seq_b = universe 6 in
  let da = Domain.spawn (fun () -> universe 5) in
  let db = Domain.spawn (fun () -> universe 6) in
  let par_a = Domain.join da and par_b = Domain.join db in
  let pp = Alcotest.(list (pair string int)) in
  Alcotest.check pp "seed 5: concurrent counters == sequential" seq_a par_a;
  Alcotest.check pp "seed 6: concurrent counters == sequential" seq_b par_b

(* --- qcheck: cell-order shuffling never changes merged output ------------- *)

(* A synthetic grid whose cells are silent and whose summarize renders in
   sorted key order: the merged output must then be a pure function of
   the cell set, whatever order the descriptor declares them in and
   however many domains run them. *)
let synth_cells = List.init 9 (fun i -> Printf.sprintf "cell-%d" i)

let synth_desc order =
  Exp_desc.make ~name:"synth" ~title:"synthetic shuffle grid"
    ~description:"qcheck shuffle property"
    ~cells:(List.map (fun key -> { Exp_desc.key; label = key }) order)
    ~run_cell:(fun _ctx ~seed ~scale:_ cell ->
      Hashtbl.hash (seed, cell.Exp_desc.key))
    ~summarize:(fun ctx ~seed:_ ~scale:_ pairs ->
      List.iter
        (fun (c, v) -> Run_ctx.printf ctx "%s=%d\n" c.Exp_desc.key v)
        (List.sort
           (fun (a, _) (b, _) -> compare a.Exp_desc.key b.Exp_desc.key)
           pairs))

let synth_output order ~jobs =
  let ctx = Run_ctx.for_cell (Run_ctx.create ()) in
  Sweep.run ~jobs ctx (synth_desc order) ~seed:11 ~scale:1.0;
  Run_ctx.buffered_contents ctx

let shuffle_prop =
  let reference = synth_output synth_cells ~jobs:1 in
  QCheck.Test.make ~count:30
    ~name:"sweep: cell-order shuffle + jobs never change merged output"
    QCheck.(pair (list_of_size (Gen.return (List.length synth_cells)) int) bool)
    (fun (weights, parallel) ->
      (* Derive a permutation from the random weights. *)
      let order =
        List.map snd
          (List.sort compare
             (List.map2
                (fun w k -> ((w, k), k))
                weights synth_cells))
      in
      let jobs = if parallel then 4 else 1 in
      String.equal reference (synth_output order ~jobs))

let suite =
  [
    Alcotest.test_case "two systems concurrently" `Quick
      two_systems_concurrently;
    Alcotest.test_case "fig17 parallel equivalence" `Slow
      (check_equivalence "fig17" ~scale:0.05);
    Alcotest.test_case "chaos parallel equivalence" `Slow
      (check_equivalence "chaos" ~scale:0.1);
    Alcotest.test_case "overload parallel equivalence" `Slow
      (check_equivalence "overload" ~scale:0.25);
    QCheck_alcotest.to_alcotest shuffle_prop;
  ]

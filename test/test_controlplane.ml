(* Tests for the control-plane task library. *)

open Taichi_engine
open Taichi_hw
open Taichi_os
open Taichi_metrics
open Taichi_controlplane

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let rng () = Rng.create ~seed:5

(* --- Nonpreempt ------------------------------------------------------------- *)

let test_nonpreempt_long_range () =
  let s = Nonpreempt.create (rng ()) in
  for _ = 1 to 5_000 do
    let d = Nonpreempt.sample_long s in
    checkb "in [1ms, 67ms]" true (d >= Time_ns.ms 1 && d <= Time_ns.ms 67)
  done

let test_nonpreempt_fig5_shape () =
  let s = Nonpreempt.create (rng ()) in
  let n = 50_000 in
  let below_5ms = ref 0 in
  for _ = 1 to n do
    if Nonpreempt.sample_long s < Time_ns.ms 5 then incr below_5ms
  done;
  let frac = float_of_int !below_5ms /. float_of_int n in
  (* Paper: 94.5% of >1ms routines are 1-5ms. *)
  checkb "about 94.5% below 5ms" true (frac > 0.92 && frac < 0.97)

let test_nonpreempt_mixture () =
  let s = Nonpreempt.create (rng ()) in
  let n = 20_000 in
  let long = ref 0 in
  for _ = 1 to n do
    if Nonpreempt.sample s >= Time_ns.ms 1 then incr long
  done;
  let frac = float_of_int !long /. float_of_int n in
  checkb "long fraction near p_long" true (frac > 0.025 && frac < 0.055)

let test_fig5_buckets_cover () =
  let lo_first =
    match Nonpreempt.fig5_buckets with (_, lo, _) :: _ -> lo | [] -> 0
  in
  checki "starts at 1ms" (Time_ns.ms 1) lo_first;
  let _, _, hi_last = List.nth Nonpreempt.fig5_buckets 4 in
  checki "ends at 67ms" (Time_ns.ms 67) hi_last

(* --- Synth_cp ----------------------------------------------------------------- *)

let run_kernel_with tasks =
  let sim = Sim.create () in
  let machine =
    Machine.create ~config:{ Machine.default_config with physical_cores = 4 } sim
  in
  let kernel = Kernel.create machine in
  for id = 0 to 3 do
    ignore (Kernel.add_physical_cpu kernel ~id ())
  done;
  List.iter (Kernel.spawn kernel) tasks;
  Sim.run sim;
  (sim, kernel)

let test_synth_cp_total_work () =
  let params = { Synth_cp.default_params with io_wait = 0 } in
  let task =
    Synth_cp.make ~rng:(rng ()) ~params ~locks:[] ~affinity:[] ~name:"s" ()
  in
  let _ = run_kernel_with [ task ] in
  checkb "finished" true (Task.is_finished task);
  (* Jittered split preserves the 50ms total within rounding. *)
  checkb "work preserved" true
    (abs (task.Task.cpu_time - Time_ns.ms 50) < Time_ns.us 50)

let test_synth_cp_batch_independent () =
  let tasks =
    Synth_cp.make_batch ~rng:(rng ()) ~params:Synth_cp.default_params ~locks:[]
      ~affinity:[] ~count:3 ()
  in
  checki "count" 3 (List.length tasks);
  let names = List.map (fun t -> t.Task.tname) tasks in
  checki "unique names" 3 (List.length (List.sort_uniq compare names))

let test_synth_cp_lock_contention () =
  let lock = Task.spinlock "shared" in
  let params =
    { Synth_cp.default_params with
      total_work = Time_ns.ms 10;
      locked_fraction = 1.0;
      io_wait = 0 }
  in
  let tasks =
    Synth_cp.make_batch ~rng:(rng ()) ~params ~locks:[ lock ] ~affinity:[]
      ~count:4 ()
  in
  let _ = run_kernel_with tasks in
  List.iter (fun t -> checkb "done" true (Task.is_finished t)) tasks;
  checkb "lock was used" true (lock.Task.acquisitions > 10);
  checkb "contention occurred" true (lock.Task.contentions > 0)

(* --- Device management / VM lifecycle --------------------------------------------- *)

let test_device_init_task () =
  let r = rng () in
  let params = Device_mgmt.default_params ~rng:r in
  let lock = Task.spinlock "dev" in
  let task =
    Device_mgmt.init_task ~rng:r ~params ~locks:[ lock ] ~devices:3 ~affinity:[]
      ~name:"init"
  in
  let sim, _ = run_kernel_with [ task ] in
  checkb "finished" true (Task.is_finished task);
  (* 3 devices x (parse + configure + roundtrip + bookkeeping): at least
     3 x (150us + 0.5ms-ish + 30us + 200us). *)
  checkb "took plausible time" true (Sim.now sim > Time_ns.ms 1);
  checki "three critical sections" 3 lock.Task.acquisitions

let test_deinit_cheaper_than_init () =
  let r = rng () in
  let params = Device_mgmt.default_params ~rng:r in
  let li = Task.spinlock "a" and ld = Task.spinlock "b" in
  let init =
    Device_mgmt.init_task ~rng:r ~params ~locks:[ li ] ~devices:5 ~affinity:[]
      ~name:"i"
  in
  let deinit =
    Device_mgmt.deinit_task ~rng:r ~params ~locks:[ ld ] ~devices:5 ~affinity:[]
      ~name:"d"
  in
  let _ = run_kernel_with [ init; deinit ] in
  checkb "deinit cheaper" true (deinit.Task.cpu_time < init.Task.cpu_time)

let test_vm_startup_records () =
  let sim = Sim.create () in
  let machine =
    Machine.create ~config:{ Machine.default_config with physical_cores = 4 } sim
  in
  let kernel = Kernel.create machine in
  for id = 0 to 3 do
    ignore (Kernel.add_physical_cpu kernel ~id ())
  done;
  let r = rng () in
  let params = Vm_lifecycle.default_params ~rng:r in
  let recorder = Recorder.create "startup" in
  let task =
    Vm_lifecycle.startup_task ~sim ~rng:r ~params ~locks:[ Task.spinlock "dev" ]
      ~affinity:[] ~name:"vm0" ~recorder ()
  in
  Kernel.spawn kernel task;
  Sim.run sim;
  checkb "finished" true (Task.is_finished task);
  checki "one startup recorded" 1 (Recorder.count recorder);
  (* Startup includes the fixed host boot. *)
  checkb "includes host boot" true
    (Recorder.min_value recorder >= params.Vm_lifecycle.host_boot)

let test_vm_density_scaling () =
  let r = rng () in
  let base = Vm_lifecycle.default_params ~rng:r in
  let dense = Vm_lifecycle.at_density ~base 4.0 in
  checki "4x devices" (base.Vm_lifecycle.devices_per_vm * 4)
    dense.Vm_lifecycle.devices_per_vm

(* --- Monitors ------------------------------------------------------------------- *)

let test_monitor_runs_forever () =
  let sim = Sim.create () in
  let machine = Machine.create sim in
  let kernel = Kernel.create machine in
  ignore (Kernel.add_physical_cpu kernel ~id:0 ());
  let m =
    Monitor.metrics_collector ~rng:(rng ()) ~period:(Time_ns.ms 5) ~affinity:[]
      ~name:"mon"
  in
  Kernel.spawn kernel m;
  Sim.run ~until:(Time_ns.ms 100) sim;
  checkb "still alive" false (Task.is_finished m);
  (* ~20 periods of >=230us work each. *)
  checkb "periodic work done" true (m.Task.cpu_time > Time_ns.ms 3)

let test_production_ecosystem_util () =
  let sim = Sim.create () in
  let machine =
    Machine.create ~config:{ Machine.default_config with physical_cores = 4 } sim
  in
  let kernel = Kernel.create machine in
  for id = 0 to 3 do
    ignore (Kernel.add_physical_cpu kernel ~id ())
  done;
  let eco =
    Monitor.production_ecosystem ~rng:(rng ()) ~affinity:[] ~tasks:40
      ~target_util:1.5 ()
  in
  checki "task count" 40 (List.length eco);
  List.iter (Kernel.spawn kernel) eco;
  let horizon = Time_ns.ms 500 in
  Sim.run ~until:horizon sim;
  let total_work = List.fold_left (fun acc t -> acc + t.Task.cpu_time) 0 eco in
  let util = float_of_int total_work /. float_of_int horizon in
  (* Aggregate demand ~1.5 cores (loose: routine tails add noise). *)
  checkb "utilization near target" true (util > 0.9 && util < 2.6)

let suite =
  [
    ("nonpreempt long range", `Quick, test_nonpreempt_long_range);
    ("nonpreempt fig5 shape", `Quick, test_nonpreempt_fig5_shape);
    ("nonpreempt mixture", `Quick, test_nonpreempt_mixture);
    ("fig5 buckets cover", `Quick, test_fig5_buckets_cover);
    ("synth_cp total work", `Quick, test_synth_cp_total_work);
    ("synth_cp batch", `Quick, test_synth_cp_batch_independent);
    ("synth_cp lock contention", `Quick, test_synth_cp_lock_contention);
    ("device init task", `Quick, test_device_init_task);
    ("deinit cheaper than init", `Quick, test_deinit_cheaper_than_init);
    ("vm startup records", `Quick, test_vm_startup_records);
    ("vm density scaling", `Quick, test_vm_density_scaling);
    ("monitor runs forever", `Quick, test_monitor_runs_forever);
    ("production ecosystem utilization", `Quick, test_production_ecosystem_util);
  ]

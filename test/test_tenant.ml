(* The tenant registry, the two-stage weighted run queue, and the
   per-tenant export validation.

   The Wsched properties are the satellite oracles of the multitenant
   refactor, checked in isolation (the queue is pure and deterministic):
   weight-proportional grants under saturation, work conservation when a
   tenant idles, starvation-freedom for weight-1 tenants, and exact
   degeneration to the seed scheduler's flat FIFO with one tenant. *)

open Taichi_engine
open Taichi_core

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* --- Tenant registry ----------------------------------------------------- *)

let test_tenant_table () =
  let tbl =
    Tenant.of_specs
      [ Tenant.spec ~weight:3 "alpha"; Tenant.spec ~cls:Tenant.Critical "bravo" ]
  in
  checkb "explicit table is multi" true (Tenant.is_multi tbl);
  checki "two tenants" 2 (Tenant.count tbl);
  checki "dense ids" 1 (Tenant.get tbl 1).Tenant.id;
  checki "weight kept" 3 (Tenant.get tbl 0).Tenant.weight;
  checki "total weight" 4 (Tenant.total_weight tbl);
  checkb "single is not multi" false (Tenant.is_multi Tenant.single);
  checki "single has one tenant" 1 (Tenant.count Tenant.single);
  checkb "empty spec list is the single table" false
    (Tenant.is_multi (Tenant.of_specs []))

let test_tenant_spec_validation () =
  Alcotest.check_raises "non-positive weight rejected"
    (Invalid_argument "Tenant.spec: weight must be positive") (fun () ->
      ignore (Tenant.spec ~weight:0 "x"));
  (* The registry errors name the offender, not just the offence — the
     operator fixing a 40-tenant config needs to know which row. *)
  Alcotest.check_raises "duplicate names name the offender"
    (Invalid_argument "Tenant.of_specs: duplicate tenant name \"a\"")
    (fun () -> ignore (Tenant.of_specs [ Tenant.spec "a"; Tenant.spec "a" ]));
  Alcotest.check_raises "empty name names the spec position"
    (Invalid_argument "Tenant.of_specs: empty tenant name (spec 1)") (fun () ->
      ignore
        (Tenant.of_specs
           [ Tenant.spec "a"; { (Tenant.spec "b") with Tenant.name = "" } ]));
  Alcotest.check_raises "hand-built bad weight names the tenant"
    (Invalid_argument "Tenant.of_specs: non-positive weight for tenant \"b\"")
    (fun () ->
      ignore
        (Tenant.of_specs
           [ Tenant.spec "a"; { (Tenant.spec "b") with Tenant.weight = 0 } ]))

(* The queue constructor shares the same message shape: a zero-length
   weights array and a non-positive weight are both named. *)
let test_wsched_create_validation () =
  Alcotest.check_raises "empty weights array rejected"
    (Invalid_argument "Wsched.create: empty weights array (no tenants)")
    (fun () -> ignore (Wsched.create ~weights:[||] ~classes:1));
  Alcotest.check_raises "non-positive weight names the lane"
    (Invalid_argument "Wsched.create: non-positive weight for tenant 1")
    (fun () -> ignore (Wsched.create ~weights:[| 1; 0 |] ~classes:1))

let test_tenant_lifecycle () =
  let tbl = Tenant.of_specs [ Tenant.spec "a"; Tenant.spec "b" ] in
  let t = Tenant.admit tbl (Tenant.spec "c") in
  checki "admission assigns the next dense id" 2 t.Tenant.id;
  checkb "admitted tenants accept CP work" true (Tenant.accepting tbl 2);
  Tenant.set_phase tbl 2 Tenant.Active;
  Tenant.set_phase tbl 2 Tenant.Draining;
  checkb "draining tenants refuse new CP work" false (Tenant.accepting tbl 2);
  checkb "draining tenants are still live" true (Tenant.live tbl 2);
  Tenant.set_phase tbl 2 Tenant.Retired;
  checkb "retired tenants are not live" false (Tenant.live tbl 2);
  Alcotest.check_raises "the lifecycle is a one-way street"
    (Invalid_argument
       "Tenant.set_phase: illegal transition retired -> active for \"c\"")
    (fun () -> Tenant.set_phase tbl 2 Tenant.Active);
  (* A retired name is reusable; the re-admission gets a fresh id and
     the old row keeps its id and frozen state. *)
  let t2 = Tenant.admit tbl (Tenant.spec "c") in
  checki "re-admission gets a fresh id" 3 t2.Tenant.id;
  checkb "old row keeps its id" true (Tenant.phase tbl 2 = Tenant.Retired)

let test_counter_roundtrip () =
  let name = Tenant.counter 3 "overload.shed.deferrable" in
  Alcotest.(check string) "name" "tenant.3.overload.shed.deferrable" name;
  (match Tenant.parse_counter name with
  | Some (3, "overload.shed.deferrable") -> ()
  | _ -> Alcotest.fail "parse_counter failed to round-trip");
  checkb "non-tenant name ignored" true
    (Tenant.parse_counter "sched.placements" = None);
  checkb "malformed id ignored" true (Tenant.parse_counter "tenant.x.foo" = None)

(* --- Wsched: drive loop -------------------------------------------------- *)

(* Saturation harness: [busy] tenants are re-queued right after every
   grant, so the tenant stage always has a full choice; each pop charges
   one fixed quantum. Returns the pop sequence. *)
let drive q ~busy ~rounds ~quantum =
  let served = ref [] in
  for _ = 1 to rounds do
    match Wsched.pop ~gate:(fun _ -> true) q with
    | None -> ()
    | Some t ->
        served := t :: !served;
        Wsched.charge q ~tenant:t quantum;
        if busy t then Wsched.push q ~tenant:t ~cls:1 t
  done;
  List.rev !served

let weights_gen =
  QCheck.(list_of_size Gen.(int_range 2 5) (int_range 1 8))

let prop_weighted_shares =
  QCheck.Test.make ~name:"wsched: grants track weights under saturation"
    ~count:60 weights_gen (fun wl ->
      let weights = Array.of_list wl in
      let n = Array.length weights in
      let q = Wsched.create ~weights ~classes:3 in
      for t = 0 to n - 1 do
        Wsched.push q ~tenant:t ~cls:1 t
      done;
      let rounds = 4000 and quantum = 100 in
      let served = drive q ~busy:(fun _ -> true) ~rounds ~quantum in
      if List.length served <> rounds then false
      else
        let total_w = Array.fold_left ( + ) 0 weights in
        let total_g = rounds * quantum in
        Array.to_list
          (Array.mapi
             (fun t w ->
               let share =
                 float_of_int (Wsched.granted q ~tenant:t)
                 /. float_of_int total_g
               in
               Float.abs (share -. (float_of_int w /. float_of_int total_w))
               <= 0.05)
             weights)
        |> List.for_all Fun.id)

let prop_work_conservation =
  QCheck.Test.make
    ~name:"wsched: idle tenants' capacity is redistributed by weight"
    ~count:60
    QCheck.(pair weights_gen (int_range 0 4))
    (fun (wl, idle_pick) ->
      let weights = Array.of_list wl in
      let n = Array.length weights in
      let idle = idle_pick mod n in
      let busy t = t <> idle in
      let q = Wsched.create ~weights ~classes:3 in
      for t = 0 to n - 1 do
        if busy t then Wsched.push q ~tenant:t ~cls:1 t
      done;
      let rounds = 4000 and quantum = 100 in
      let served = drive q ~busy ~rounds ~quantum in
      (* Work conservation: with backlog present, every pop serves. *)
      if List.length served <> rounds then false
      else if Wsched.granted q ~tenant:idle <> 0 then false
      else
        (* The busy tenants split the whole capacity in proportion to
           their weights alone — the idle weight is not reserved. *)
        let busy_w =
          Array.to_list weights
          |> List.mapi (fun t w -> if busy t then w else 0)
          |> List.fold_left ( + ) 0
        in
        let total_g = rounds * quantum in
        List.for_all
          (fun t ->
            (not (busy t))
            || Float.abs
                 (float_of_int (Wsched.granted q ~tenant:t)
                  /. float_of_int total_g
                 -. (float_of_int weights.(t) /. float_of_int busy_w))
               <= 0.05)
          (List.init n Fun.id))

let prop_starvation_freedom =
  QCheck.Test.make
    ~name:"wsched: weight-1 tenants are served with bounded gaps" ~count:60
    weights_gen (fun wl ->
      (* Pin a weight-1 tenant into every drawn vector. *)
      let weights = Array.of_list (1 :: wl) in
      let n = Array.length weights in
      let q = Wsched.create ~weights ~classes:3 in
      for t = 0 to n - 1 do
        Wsched.push q ~tenant:t ~cls:1 t
      done;
      let rounds = 3000 and quantum = 100 in
      let served = drive q ~busy:(fun _ -> true) ~rounds ~quantum in
      let total_w = Array.fold_left ( + ) 0 weights in
      (* Under equal quanta a weight-w tenant is due every total_w/w
         pops; allow a generous constant factor for the virtual-clock
         transient. Violation means starvation. *)
      let bound = (3 * total_w) + n in
      let last = Array.make n 0 in
      let ok = ref true in
      List.iteri
        (fun i t ->
          if i - last.(t) > bound then ok := false;
          last.(t) <- i)
        served;
      !ok)

let prop_flat_fifo_degeneration =
  QCheck.Test.make
    ~name:"wsched: single tenant, single class degenerates to FIFO" ~count:100
    QCheck.(small_list small_int)
    (fun xs ->
      let q = Wsched.create ~weights:[| 1 |] ~classes:1 in
      List.iter (fun x -> Wsched.push q ~tenant:0 ~cls:0 x) xs;
      let rec drain acc =
        match Wsched.pop ~gate:(fun _ -> true) q with
        | Some x -> drain (x :: acc)
        | None -> List.rev acc
      in
      drain [] = xs)

let prop_class_strict_priority =
  QCheck.Test.make
    ~name:"wsched: class stage is strict priority, FIFO within class"
    ~count:100
    QCheck.(small_list (int_range 0 2))
    (fun classes ->
      let q = Wsched.create ~weights:[| 1 |] ~classes:3 in
      List.iteri (fun i cls -> Wsched.push q ~tenant:0 ~cls (cls, i)) classes;
      let rec drain acc =
        match Wsched.pop ~gate:(fun _ -> true) q with
        | Some x -> drain (x :: acc)
        | None -> List.rev acc
      in
      let popped = drain [] in
      (* Stable sort by class rank is exactly strict priority with FIFO
         tie-break when everything is enqueued before the first pop. *)
      popped
      = List.stable_sort
          (fun (a, _) (b, _) -> compare a b)
          (List.mapi (fun i cls -> (cls, i)) classes))

(* --- Wsched: dynamic lanes (churn) --------------------------------------- *)

(* Random interleaving of push/pop/charge with admit/flush/retire. The
   queue must stay work-conserving (a pop with live backlog always
   serves) and conserve elements exactly: everything pushed is either
   served, handed back by a flush, or still queued at the end. *)
let prop_churn_conservation =
  QCheck.Test.make
    ~name:"wsched: admit/retire churn conserves work and elements" ~count:80
    QCheck.(
      pair weights_gen (list_of_size Gen.(int_range 20 120) (int_range 0 99)))
    (fun (wl, ops) ->
      let q = Wsched.create ~weights:(Array.of_list wl) ~classes:3 in
      let pushed = ref 0 and served = ref 0 and flushed = ref 0 in
      let live = ref (List.init (List.length wl) Fun.id) in
      let pick r l = List.nth l (r mod List.length l) in
      let ok = ref true in
      List.iter
        (fun op ->
          match op mod 5 with
          | 0 | 1 ->
              let t = pick op !live in
              Wsched.push q ~tenant:t ~cls:(op mod 3) t;
              incr pushed
          | 2 -> (
              let backlog = Wsched.length q in
              match Wsched.pop ~gate:(fun _ -> true) q with
              | Some t ->
                  incr served;
                  Wsched.charge q ~tenant:t 100
              | None -> if backlog > 0 then ok := false)
          | 3 ->
              let id = Wsched.admit q ~weight:((op mod 4) + 1) in
              live := !live @ [ id ]
          | _ -> (
              (* Retire a random lane (flush first, as the force-drain
                 path does), keeping at least one lane alive. *)
              match !live with
              | [] | [ _ ] -> ()
              | l ->
                  let t = pick (op / 5) l in
                  flushed := !flushed + List.length (Wsched.flush q ~tenant:t);
                  Wsched.retire q ~tenant:t;
                  if Wsched.is_live q ~tenant:t then ok := false;
                  live := List.filter (fun x -> x <> t) l))
        ops;
      !ok && !pushed = !served + !flushed + Wsched.length q)

(* Starvation bound across a churn event: retire a lane mid-saturation
   and admit a heavy newcomer; the surviving weight-1 tenant must keep
   being served with bounded gaps, the retired lane never again. *)
let prop_churn_starvation_bound =
  QCheck.Test.make
    ~name:"wsched: churned queues keep weight-1 tenants inside the gap bound"
    ~count:40 weights_gen (fun wl ->
      let weights = Array.of_list (1 :: wl) in
      let n = Array.length weights in
      let q = Wsched.create ~weights ~classes:3 in
      for t = 0 to n - 1 do
        Wsched.push q ~tenant:t ~cls:1 t
      done;
      let quantum = 100 in
      ignore (drive q ~busy:(fun _ -> true) ~rounds:500 ~quantum);
      let victim = n - 1 in
      ignore (Wsched.flush q ~tenant:victim);
      Wsched.retire q ~tenant:victim;
      let newcomer = Wsched.admit q ~weight:8 in
      Wsched.push q ~tenant:newcomer ~cls:1 newcomer;
      let busy t = t <> victim in
      let served = drive q ~busy ~rounds:3000 ~quantum in
      let total_w = Array.fold_left ( + ) 0 weights + 8 in
      let bound = (3 * total_w) + n + 1 in
      let last = Array.make (n + 1) 0 in
      let ok = ref true in
      List.iteri
        (fun i t ->
          if i - last.(t) > bound then ok := false;
          last.(t) <- i)
        served;
      !ok && (not (List.mem victim served)) && List.mem newcomer served)

(* No credit resurrection: a tenant that burned through grant time,
   retired, and came back must re-enter at the active minimum clock —
   not at zero, where the scheduler would hand it a catch-up burst for
   the whole window it sat retired. *)
let test_readmission_no_credit () =
  let q = Wsched.create ~weights:[| 1; 1 |] ~classes:1 in
  Wsched.push q ~tenant:0 ~cls:0 0;
  Wsched.push q ~tenant:1 ~cls:0 1;
  ignore (drive q ~busy:(fun _ -> true) ~rounds:200 ~quantum:100);
  ignore (Wsched.flush q ~tenant:1);
  Wsched.retire q ~tenant:1;
  checkb "retired lane reads dead" false (Wsched.is_live q ~tenant:1);
  Alcotest.check_raises "push to a retired lane raises"
    (Invalid_argument "Wsched.push: retired tenant") (fun () ->
      Wsched.push q ~tenant:1 ~cls:0 1);
  checkb "granted total survives retirement" true
    (Wsched.granted q ~tenant:1 > 0);
  let id = Wsched.admit q ~weight:1 in
  checki "re-admission appends a fresh lane" 2 id;
  Wsched.push q ~tenant:id ~cls:0 id;
  let served = drive q ~busy:(fun _ -> true) ~rounds:200 ~quantum:100 in
  let count t = List.length (List.filter (( = ) t) served) in
  (* Equal weights, both saturated: equal halves. Had the lane entered
     at clock zero it would monopolize ~half the window catching up. *)
  checkb "no banked credit for the newcomer" true (abs (count 0 - count id) <= 2);
  checkb "incumbent served promptly after the admission" true
    (List.mem 0 (List.filteri (fun i _ -> i < 4) served))

let test_gate_skips_only_this_pop () =
  let q = Wsched.create ~weights:[| 1; 1 |] ~classes:2 in
  Wsched.push q ~tenant:0 ~cls:0 "a";
  Wsched.push q ~tenant:1 ~cls:0 "b";
  (* Tenant 0 gated: pop must fall through to tenant 1, keeping 0 queued. *)
  (match Wsched.pop ~gate:(fun t -> t <> 0) q with
  | Some "b" -> ()
  | _ -> Alcotest.fail "gated pop should serve the other tenant");
  checki "gated tenant still queued" 1 (Wsched.backlog q ~tenant:0);
  (match Wsched.pop ~gate:(fun _ -> true) q with
  | Some "a" -> ()
  | _ -> Alcotest.fail "gate refusal must not drop the element");
  checkb "empty at the end" true (Wsched.is_empty q)

(* --- per-tenant export validation ---------------------------------------- *)

(* A real multi-tenant run: build the system end-to-end so the mirrored
   per-tenant counters are produced by the actual instrumentation, then
   tamper with the export to hit each validator error path. *)
let traced_multi_run ~seed =
  let open Taichi_hw in
  let open Taichi_platform in
  let config =
    Config.with_tenants
      (Config.no_hw_probe Config.default)
      [ Tenant.spec ~weight:3 "alpha"; Tenant.spec "bravo" ]
  in
  let sys = System.create ~seed (Policy.Taichi config) in
  let machine = System.machine sys in
  Trace.set_enabled (Machine.trace machine) true;
  System.warmup sys;
  let until = Sim.now (System.sim sys) + Time_ns.ms 40 in
  Exp_common.start_bg_dp sys ~target:0.3 ~until;
  Exp_common.start_cp_churn sys ~period:(Time_ns.ms 1) ~work:(Time_ns.ms 4)
    ~until;
  System.advance sys (Time_ns.ms 50);
  let table = System.tenants sys in
  Taichi_metrics.Export.make_run ~tenants:(Tenant.ids table) ~experiment:"test"
    ~policy:"taichi" ~seed
    ~duration:(Sim.now (System.sim sys))
    ~cores:(Machine.physical_cores machine)
    ~counters:(Counters.dump (Machine.counters machine))
    (Machine.trace machine)

let validate runs =
  Taichi_metrics.Export.validate_string
    (Taichi_metrics.Export.to_string runs)

let test_multi_export_validates () =
  let run = traced_multi_run ~seed:11 in
  let open Taichi_metrics in
  (* The run must actually exercise the per-tenant lanes, or the sum
     checks below are vacuous. *)
  checkb "per-tenant counters present" true
    (List.exists
       (fun (name, _) -> Tenant.parse_counter name <> None)
       run.Export.counters);
  checkb "tenants field populated" true (run.Export.tenants = [ 0; 1 ]);
  match validate [ run ] with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("multi-tenant export failed validation: " ^ msg)

let expect_error what runs =
  match validate runs with
  | Ok () -> Alcotest.fail ("validator accepted " ^ what)
  | Error _ -> ()

let test_multi_export_tamper_detected () =
  let open Taichi_metrics in
  let run = traced_multi_run ~seed:12 in
  (* Re-sort after tampering so the injected rows land in snapshot order
     and each vector hits the check it targets, not the sortedness one. *)
  let with_counters counters =
    { run with Export.counters = List.sort compare counters }
  in
  expect_error "an unsorted counters snapshot"
    [ { run with Export.counters = List.rev run.Export.counters } ];
  expect_error "a duplicated counter name"
    [
      {
        run with
        Export.counters =
          (match run.Export.counters with
          | first :: rest -> first :: first :: rest
          | [] -> []);
      };
    ];
  expect_error "a per-tenant sum that exceeds its global counter"
    [ with_counters (run.Export.counters @ [ ("tenant.0.bogus.metric", 5) ]) ];
  expect_error "an unregistered tenant id"
    [ with_counters (run.Export.counters @ [ ("tenant.9.sched.placements", 0) ]) ];
  expect_error "a negative per-tenant counter"
    [ with_counters (run.Export.counters @ [ ("tenant.1.negative.metric", -1) ]) ];
  expect_error "per-tenant counters without a tenants field"
    [ { run with Export.tenants = [] } ]

(* Frozen-after-retire: once a churn retirement marker appears for a
   tenant, any later overload transition on that lane must be rejected —
   retired lanes freeze, they do not keep climbing ladders. *)
let test_frozen_lane_export () =
  let open Taichi_metrics in
  let open Taichi_engine in
  let run = traced_multi_run ~seed:13 in
  let ev ~time category message =
    { Trace.time; core = Trace.no_core; category; message }
  in
  let t0 = run.Export.duration in
  let retired =
    ev ~time:(t0 + 10) Trace.Cat.churn "retired tenant=1 forced=false"
  in
  let late_transition =
    ev ~time:(t0 + 20) Trace.Cat.overload
      "tenant=1 seq=1 from=normal to=throttle held=400000 min=400000"
  in
  (match
     validate [ { run with Export.events = run.Export.events @ [ retired ] } ]
   with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("retirement marker rejected: " ^ msg));
  expect_error "an overload transition on a retired tenant's lane"
    [
      {
        run with
        Export.events = run.Export.events @ [ retired; late_transition ];
      };
    ]

let suite =
  [
    ("tenant table", `Quick, test_tenant_table);
    ("tenant spec validation", `Quick, test_tenant_spec_validation);
    ("wsched create validation", `Quick, test_wsched_create_validation);
    ("tenant lifecycle", `Quick, test_tenant_lifecycle);
    ("tenant counter round-trip", `Quick, test_counter_roundtrip);
    QCheck_alcotest.to_alcotest prop_weighted_shares;
    QCheck_alcotest.to_alcotest prop_work_conservation;
    QCheck_alcotest.to_alcotest prop_starvation_freedom;
    QCheck_alcotest.to_alcotest prop_flat_fifo_degeneration;
    QCheck_alcotest.to_alcotest prop_class_strict_priority;
    QCheck_alcotest.to_alcotest prop_churn_conservation;
    QCheck_alcotest.to_alcotest prop_churn_starvation_bound;
    ("re-admission banks no credit", `Quick, test_readmission_no_credit);
    ("gate skips one pop only", `Quick, test_gate_skips_only_this_pop);
    ("multi-tenant export validates", `Slow, test_multi_export_validates);
    ("tampered per-tenant export rejected", `Slow,
      test_multi_export_tamper_detected);
    ("retired lane stays frozen in exports", `Slow, test_frozen_lane_export);
  ]

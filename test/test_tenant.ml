(* The tenant registry, the two-stage weighted run queue, and the
   per-tenant export validation.

   The Wsched properties are the satellite oracles of the multitenant
   refactor, checked in isolation (the queue is pure and deterministic):
   weight-proportional grants under saturation, work conservation when a
   tenant idles, starvation-freedom for weight-1 tenants, and exact
   degeneration to the seed scheduler's flat FIFO with one tenant. *)

open Taichi_engine
open Taichi_core

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* --- Tenant registry ----------------------------------------------------- *)

let test_tenant_table () =
  let tbl =
    Tenant.of_specs
      [ Tenant.spec ~weight:3 "alpha"; Tenant.spec ~cls:Tenant.Critical "bravo" ]
  in
  checkb "explicit table is multi" true (Tenant.is_multi tbl);
  checki "two tenants" 2 (Tenant.count tbl);
  checki "dense ids" 1 (Tenant.get tbl 1).Tenant.id;
  checki "weight kept" 3 (Tenant.get tbl 0).Tenant.weight;
  checki "total weight" 4 (Tenant.total_weight tbl);
  checkb "single is not multi" false (Tenant.is_multi Tenant.single);
  checki "single has one tenant" 1 (Tenant.count Tenant.single);
  checkb "empty spec list is the single table" false
    (Tenant.is_multi (Tenant.of_specs []))

let test_tenant_spec_validation () =
  Alcotest.check_raises "non-positive weight rejected"
    (Invalid_argument "Tenant.spec: weight must be positive") (fun () ->
      ignore (Tenant.spec ~weight:0 "x"));
  Alcotest.check_raises "duplicate names rejected"
    (Invalid_argument "Tenant.of_specs: duplicate tenant names") (fun () ->
      ignore (Tenant.of_specs [ Tenant.spec "a"; Tenant.spec "a" ]))

let test_counter_roundtrip () =
  let name = Tenant.counter 3 "overload.shed.deferrable" in
  Alcotest.(check string) "name" "tenant.3.overload.shed.deferrable" name;
  (match Tenant.parse_counter name with
  | Some (3, "overload.shed.deferrable") -> ()
  | _ -> Alcotest.fail "parse_counter failed to round-trip");
  checkb "non-tenant name ignored" true
    (Tenant.parse_counter "sched.placements" = None);
  checkb "malformed id ignored" true (Tenant.parse_counter "tenant.x.foo" = None)

(* --- Wsched: drive loop -------------------------------------------------- *)

(* Saturation harness: [busy] tenants are re-queued right after every
   grant, so the tenant stage always has a full choice; each pop charges
   one fixed quantum. Returns the pop sequence. *)
let drive q ~busy ~rounds ~quantum =
  let served = ref [] in
  for _ = 1 to rounds do
    match Wsched.pop ~gate:(fun _ -> true) q with
    | None -> ()
    | Some t ->
        served := t :: !served;
        Wsched.charge q ~tenant:t quantum;
        if busy t then Wsched.push q ~tenant:t ~cls:1 t
  done;
  List.rev !served

let weights_gen =
  QCheck.(list_of_size Gen.(int_range 2 5) (int_range 1 8))

let prop_weighted_shares =
  QCheck.Test.make ~name:"wsched: grants track weights under saturation"
    ~count:60 weights_gen (fun wl ->
      let weights = Array.of_list wl in
      let n = Array.length weights in
      let q = Wsched.create ~weights ~classes:3 in
      for t = 0 to n - 1 do
        Wsched.push q ~tenant:t ~cls:1 t
      done;
      let rounds = 4000 and quantum = 100 in
      let served = drive q ~busy:(fun _ -> true) ~rounds ~quantum in
      if List.length served <> rounds then false
      else
        let total_w = Array.fold_left ( + ) 0 weights in
        let total_g = rounds * quantum in
        Array.to_list
          (Array.mapi
             (fun t w ->
               let share =
                 float_of_int (Wsched.granted q ~tenant:t)
                 /. float_of_int total_g
               in
               Float.abs (share -. (float_of_int w /. float_of_int total_w))
               <= 0.05)
             weights)
        |> List.for_all Fun.id)

let prop_work_conservation =
  QCheck.Test.make
    ~name:"wsched: idle tenants' capacity is redistributed by weight"
    ~count:60
    QCheck.(pair weights_gen (int_range 0 4))
    (fun (wl, idle_pick) ->
      let weights = Array.of_list wl in
      let n = Array.length weights in
      let idle = idle_pick mod n in
      let busy t = t <> idle in
      let q = Wsched.create ~weights ~classes:3 in
      for t = 0 to n - 1 do
        if busy t then Wsched.push q ~tenant:t ~cls:1 t
      done;
      let rounds = 4000 and quantum = 100 in
      let served = drive q ~busy ~rounds ~quantum in
      (* Work conservation: with backlog present, every pop serves. *)
      if List.length served <> rounds then false
      else if Wsched.granted q ~tenant:idle <> 0 then false
      else
        (* The busy tenants split the whole capacity in proportion to
           their weights alone — the idle weight is not reserved. *)
        let busy_w =
          Array.to_list weights
          |> List.mapi (fun t w -> if busy t then w else 0)
          |> List.fold_left ( + ) 0
        in
        let total_g = rounds * quantum in
        List.for_all
          (fun t ->
            (not (busy t))
            || Float.abs
                 (float_of_int (Wsched.granted q ~tenant:t)
                  /. float_of_int total_g
                 -. (float_of_int weights.(t) /. float_of_int busy_w))
               <= 0.05)
          (List.init n Fun.id))

let prop_starvation_freedom =
  QCheck.Test.make
    ~name:"wsched: weight-1 tenants are served with bounded gaps" ~count:60
    weights_gen (fun wl ->
      (* Pin a weight-1 tenant into every drawn vector. *)
      let weights = Array.of_list (1 :: wl) in
      let n = Array.length weights in
      let q = Wsched.create ~weights ~classes:3 in
      for t = 0 to n - 1 do
        Wsched.push q ~tenant:t ~cls:1 t
      done;
      let rounds = 3000 and quantum = 100 in
      let served = drive q ~busy:(fun _ -> true) ~rounds ~quantum in
      let total_w = Array.fold_left ( + ) 0 weights in
      (* Under equal quanta a weight-w tenant is due every total_w/w
         pops; allow a generous constant factor for the virtual-clock
         transient. Violation means starvation. *)
      let bound = (3 * total_w) + n in
      let last = Array.make n 0 in
      let ok = ref true in
      List.iteri
        (fun i t ->
          if i - last.(t) > bound then ok := false;
          last.(t) <- i)
        served;
      !ok)

let prop_flat_fifo_degeneration =
  QCheck.Test.make
    ~name:"wsched: single tenant, single class degenerates to FIFO" ~count:100
    QCheck.(small_list small_int)
    (fun xs ->
      let q = Wsched.create ~weights:[| 1 |] ~classes:1 in
      List.iter (fun x -> Wsched.push q ~tenant:0 ~cls:0 x) xs;
      let rec drain acc =
        match Wsched.pop ~gate:(fun _ -> true) q with
        | Some x -> drain (x :: acc)
        | None -> List.rev acc
      in
      drain [] = xs)

let prop_class_strict_priority =
  QCheck.Test.make
    ~name:"wsched: class stage is strict priority, FIFO within class"
    ~count:100
    QCheck.(small_list (int_range 0 2))
    (fun classes ->
      let q = Wsched.create ~weights:[| 1 |] ~classes:3 in
      List.iteri (fun i cls -> Wsched.push q ~tenant:0 ~cls (cls, i)) classes;
      let rec drain acc =
        match Wsched.pop ~gate:(fun _ -> true) q with
        | Some x -> drain (x :: acc)
        | None -> List.rev acc
      in
      let popped = drain [] in
      (* Stable sort by class rank is exactly strict priority with FIFO
         tie-break when everything is enqueued before the first pop. *)
      popped
      = List.stable_sort
          (fun (a, _) (b, _) -> compare a b)
          (List.mapi (fun i cls -> (cls, i)) classes))

let test_gate_skips_only_this_pop () =
  let q = Wsched.create ~weights:[| 1; 1 |] ~classes:2 in
  Wsched.push q ~tenant:0 ~cls:0 "a";
  Wsched.push q ~tenant:1 ~cls:0 "b";
  (* Tenant 0 gated: pop must fall through to tenant 1, keeping 0 queued. *)
  (match Wsched.pop ~gate:(fun t -> t <> 0) q with
  | Some "b" -> ()
  | _ -> Alcotest.fail "gated pop should serve the other tenant");
  checki "gated tenant still queued" 1 (Wsched.backlog q ~tenant:0);
  (match Wsched.pop ~gate:(fun _ -> true) q with
  | Some "a" -> ()
  | _ -> Alcotest.fail "gate refusal must not drop the element");
  checkb "empty at the end" true (Wsched.is_empty q)

(* --- per-tenant export validation ---------------------------------------- *)

(* A real multi-tenant run: build the system end-to-end so the mirrored
   per-tenant counters are produced by the actual instrumentation, then
   tamper with the export to hit each validator error path. *)
let traced_multi_run ~seed =
  let open Taichi_hw in
  let open Taichi_platform in
  let config =
    Config.with_tenants
      (Config.no_hw_probe Config.default)
      [ Tenant.spec ~weight:3 "alpha"; Tenant.spec "bravo" ]
  in
  let sys = System.create ~seed (Policy.Taichi config) in
  let machine = System.machine sys in
  Trace.set_enabled (Machine.trace machine) true;
  System.warmup sys;
  let until = Sim.now (System.sim sys) + Time_ns.ms 40 in
  Exp_common.start_bg_dp sys ~target:0.3 ~until;
  Exp_common.start_cp_churn sys ~period:(Time_ns.ms 1) ~work:(Time_ns.ms 4)
    ~until;
  System.advance sys (Time_ns.ms 50);
  let table = System.tenants sys in
  Taichi_metrics.Export.make_run ~tenants:(Tenant.ids table) ~experiment:"test"
    ~policy:"taichi" ~seed
    ~duration:(Sim.now (System.sim sys))
    ~cores:(Machine.physical_cores machine)
    ~counters:(Counters.dump (Machine.counters machine))
    (Machine.trace machine)

let validate runs =
  Taichi_metrics.Export.validate_string
    (Taichi_metrics.Export.to_string runs)

let test_multi_export_validates () =
  let run = traced_multi_run ~seed:11 in
  let open Taichi_metrics in
  (* The run must actually exercise the per-tenant lanes, or the sum
     checks below are vacuous. *)
  checkb "per-tenant counters present" true
    (List.exists
       (fun (name, _) -> Tenant.parse_counter name <> None)
       run.Export.counters);
  checkb "tenants field populated" true (run.Export.tenants = [ 0; 1 ]);
  match validate [ run ] with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("multi-tenant export failed validation: " ^ msg)

let expect_error what runs =
  match validate runs with
  | Ok () -> Alcotest.fail ("validator accepted " ^ what)
  | Error _ -> ()

let test_multi_export_tamper_detected () =
  let open Taichi_metrics in
  let run = traced_multi_run ~seed:12 in
  let with_counters counters = { run with Export.counters } in
  expect_error "a per-tenant sum that exceeds its global counter"
    [ with_counters (run.Export.counters @ [ ("tenant.0.bogus.metric", 5) ]) ];
  expect_error "an unregistered tenant id"
    [ with_counters (run.Export.counters @ [ ("tenant.9.sched.placements", 0) ]) ];
  expect_error "a negative per-tenant counter"
    [ with_counters (run.Export.counters @ [ ("tenant.1.negative.metric", -1) ]) ];
  expect_error "per-tenant counters without a tenants field"
    [ { run with Export.tenants = [] } ]

let suite =
  [
    ("tenant table", `Quick, test_tenant_table);
    ("tenant spec validation", `Quick, test_tenant_spec_validation);
    ("tenant counter round-trip", `Quick, test_counter_roundtrip);
    QCheck_alcotest.to_alcotest prop_weighted_shares;
    QCheck_alcotest.to_alcotest prop_work_conservation;
    QCheck_alcotest.to_alcotest prop_starvation_freedom;
    QCheck_alcotest.to_alcotest prop_flat_fifo_degeneration;
    QCheck_alcotest.to_alcotest prop_class_strict_priority;
    ("gate skips one pop only", `Quick, test_gate_skips_only_this_pop);
    ("multi-tenant export validates", `Slow, test_multi_export_validates);
    ("tampered per-tenant export rejected", `Slow,
      test_multi_export_tamper_detected);
  ]

(* Tests for the accelerator substrate and virtualization types. *)

open Taichi_engine
open Taichi_accel
open Taichi_virt

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* --- Ring -------------------------------------------------------------- *)

let pkt ?(core = 0) ?(tag = 0) () =
  Packet.create ~kind:Packet.Net_rx ~size:64 ~dst_core:core ~tag

let test_ring_fifo () =
  let r = Ring.create ~name:"r" () in
  let a = pkt () and b = pkt () in
  checkb "push a" true (Ring.push r a);
  checkb "push b" true (Ring.push r b);
  checki "length" 2 (Ring.length r);
  (match Ring.pop_burst r ~max:10 with
  | [ x; y ] ->
      checki "fifo first" a.Packet.pid x.Packet.pid;
      checki "fifo second" b.Packet.pid y.Packet.pid
  | _ -> Alcotest.fail "expected two");
  checkb "empty" true (Ring.is_empty r)

let test_ring_burst_cap () =
  let r = Ring.create ~name:"r" () in
  for _ = 1 to 50 do
    ignore (Ring.push r (pkt ()))
  done;
  checki "burst capped" 32 (List.length (Ring.pop_burst r ~max:32));
  checki "rest" 18 (Ring.length r)

let test_ring_overflow_drops () =
  let r = Ring.create ~capacity:2 ~name:"r" () in
  checkb "1" true (Ring.push r (pkt ()));
  checkb "2" true (Ring.push r (pkt ()));
  checkb "3 dropped" false (Ring.push r (pkt ()));
  checki "drop count" 1 (Ring.drops r);
  checki "enqueued" 2 (Ring.total_enqueued r)

(* --- State table --------------------------------------------------------- *)

let test_state_table () =
  let t = State_table.create ~cores:4 in
  checkb "default P" true (State_table.get t ~core:2 = State_table.P_state);
  State_table.set t ~core:2 State_table.V_state;
  checkb "set V" true (State_table.get t ~core:2 = State_table.V_state);
  checkb "others untouched" true (State_table.get t ~core:1 = State_table.P_state);
  checki "updates counted" 1 (State_table.updates t)

(* --- Pipeline -------------------------------------------------------------- *)

let test_pipeline_window_timing () =
  let sim = Sim.create () in
  let p = Pipeline.create sim in
  let ring = Ring.create ~name:"rx" () in
  Pipeline.attach_ring p ~core:0 ring;
  let delivered_at = ref (-1) in
  Pipeline.set_deliver_hook p (fun ~core:_ -> delivered_at := Sim.now sim);
  let pk = pkt () in
  Pipeline.submit p pk;
  Sim.run sim;
  checki "window = 3.2us" 3200 !delivered_at;
  checki "t_submit" 0 pk.Packet.t_submit;
  checki "t_ring" 3200 pk.Packet.t_ring;
  checki "in ring" 1 (Ring.length ring)

let test_pipeline_probe_hook_fires_first () =
  let sim = Sim.create () in
  let p = Pipeline.create sim in
  Pipeline.attach_ring p ~core:0 (Ring.create ~name:"rx" ());
  let probe_at = ref (-1) in
  Pipeline.set_probe_hook p (Some (fun _ -> probe_at := Sim.now sim));
  Pipeline.submit p (pkt ());
  Sim.run sim;
  checki "probe at detection time" 0 !probe_at

let test_pipeline_in_flight () =
  let sim = Sim.create () in
  let p = Pipeline.create sim in
  Pipeline.attach_ring p ~core:0 (Ring.create ~name:"rx" ());
  Pipeline.attach_ring p ~core:1 (Ring.create ~name:"rx1" ());
  Pipeline.submit p (pkt ~core:0 ());
  Pipeline.submit p (pkt ~core:0 ());
  Pipeline.submit p (pkt ~core:1 ());
  checki "core0 in flight" 2 (Pipeline.in_flight p ~core:0);
  checki "core1 in flight" 1 (Pipeline.in_flight p ~core:1);
  Sim.run sim;
  checki "drained" 0 (Pipeline.in_flight p ~core:0);
  checki "delivered" 3 (Pipeline.delivered p)

(* --- Vcpu / Vmexit ------------------------------------------------------------ *)

let test_vcpu_exit_histogram () =
  let v = Vcpu.create ~vid:0 ~kcpu:12 ~initial_slice:(Time_ns.us 50) in
  Vcpu.record_exit v Vmexit.Timeslice_expired;
  Vcpu.record_exit v Vmexit.Timeslice_expired;
  Vcpu.record_exit v Vmexit.Hw_probe_irq;
  checki "timeslice" 2 (Vcpu.exit_count v Vmexit.Timeslice_expired);
  checki "probe" 1 (Vcpu.exit_count v Vmexit.Hw_probe_irq);
  checki "halt" 0 (Vcpu.exit_count v Vmexit.Halt);
  checki "total" 3 (Vcpu.total_exits v)

let test_vcpu_placement () =
  let v = Vcpu.create ~vid:1 ~kcpu:13 ~initial_slice:(Time_ns.us 50) in
  checkb "unplaced" false (Vcpu.is_placed v);
  v.Vcpu.placement <- Vcpu.On_core 3;
  checkb "placed" true (Vcpu.is_placed v);
  Alcotest.(check (option int)) "core" (Some 3) (Vcpu.core v)

let test_cost_model_defaults () =
  let c = Cost_model.default in
  checki "world switch 2us" (Time_ns.us 2) c.Cost_model.world_switch;
  checkb "npt tax positive" true (c.Cost_model.npt_tax > 0.0);
  let nt = Cost_model.no_tax c in
  Alcotest.(check (float 0.0)) "no tax" 0.0 nt.Cost_model.npt_tax

(* --- packet arena ---------------------------------------------------------- *)

(* Random alloc/free/scan programs against a small fixed arena. Tags are
   drawn from a fresh counter, so two live records aliasing the same slot
   would show as a tag mismatch; generations must stay frozen while a
   record is live and bump exactly once per free; and exhaustion of a
   fixed arena must raise {!Packet.Exhausted} precisely when every slot
   is live. *)
let prop_arena_roundtrip =
  QCheck.Test.make ~name:"packet arena alloc/free round-trip" ~count:300
    QCheck.(
      list_of_size (Gen.int_range 0 120) (pair (int_bound 2) small_int))
    (fun ops ->
      let capacity = 8 in
      let arena = Packet.arena ~fixed:true ~capacity () in
      let live = ref [] in
      let next_tag = ref 0 in
      let intact (p, tag, gen) =
        p.Packet.tag = tag
        && Packet.is_live arena (Packet.index p)
        && Packet.generation arena (Packet.index p) = gen
      in
      let step (op, a) =
        match op with
        | 0 -> (
            incr next_tag;
            let tag = !next_tag in
            match
              Packet.alloc arena ~kind:Packet.Net_rx
                ~size:(64 + (a mod 100))
                ~dst_core:(a mod 4) ~tag
            with
            | p ->
                live := (p, tag, Packet.generation arena (Packet.index p)) :: !live;
                List.length !live <= capacity
            | exception Packet.Exhausted -> List.length !live = capacity)
        | 1 -> (
            match !live with
            | [] -> true
            | l ->
                let i = a mod List.length l in
                let ((p, _, gen) as entry) = List.nth l i in
                let ok = intact entry in
                Packet.free arena p;
                live := List.filteri (fun j _ -> j <> i) l;
                ok
                && (not (Packet.is_live arena (Packet.index p)))
                && Packet.generation arena (Packet.index p) = gen + 1)
        | _ -> List.for_all intact !live
      in
      List.for_all step ops
      && List.for_all intact !live
      && Packet.live_packets arena = List.length !live)

let test_arena_misuse () =
  let arena = Packet.arena ~capacity:2 () in
  let other = Packet.arena ~capacity:2 () in
  let p = Packet.alloc arena ~kind:Packet.Net_rx ~size:64 ~dst_core:0 ~tag:1 in
  Packet.free arena p;
  (try
     Packet.free arena p;
     Alcotest.fail "double free accepted"
   with Invalid_argument _ -> ());
  let q = Packet.alloc arena ~kind:Packet.Net_rx ~size:64 ~dst_core:0 ~tag:2 in
  (try
     Packet.free other q;
     Alcotest.fail "free into a foreign arena accepted"
   with Invalid_argument _ -> ());
  Packet.free arena q;
  (* Heap packets pass through [free] as a no-op. *)
  Packet.free arena (Packet.create ~kind:Packet.Net_rx ~size:64 ~dst_core:0 ~tag:3);
  (* A default arena grows instead of raising. *)
  let growable = Packet.arena ~capacity:1 () in
  let a = Packet.alloc growable ~kind:Packet.Net_rx ~size:1 ~dst_core:0 ~tag:4 in
  let b = Packet.alloc growable ~kind:Packet.Net_rx ~size:1 ~dst_core:0 ~tag:5 in
  checki "both live after growth" 2 (Packet.live_packets growable);
  checkb "distinct slots" true (Packet.index a <> Packet.index b)

let suite =
  [
    ("ring FIFO", `Quick, test_ring_fifo);
    ("ring burst cap", `Quick, test_ring_burst_cap);
    ("ring overflow drops", `Quick, test_ring_overflow_drops);
    ("state table", `Quick, test_state_table);
    ("pipeline window timing", `Quick, test_pipeline_window_timing);
    ("pipeline probe hook first", `Quick, test_pipeline_probe_hook_fires_first);
    ("pipeline in-flight tracking", `Quick, test_pipeline_in_flight);
    ("vcpu exit histogram", `Quick, test_vcpu_exit_histogram);
    ("vcpu placement", `Quick, test_vcpu_placement);
    ("cost model defaults", `Quick, test_cost_model_defaults);
    ("packet arena misuse", `Quick, test_arena_misuse);
    QCheck_alcotest.to_alcotest prop_arena_roundtrip;
  ]

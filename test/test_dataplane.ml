(* Tests for the poll-mode data-plane service: processing, idleness
   detection, yield/resume, and the pollution surcharge. *)

open Taichi_engine
open Taichi_hw
open Taichi_accel
open Taichi_dataplane

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let make_system () =
  let sim = Sim.create () in
  let machine =
    Machine.create ~config:{ Machine.default_config with physical_cores = 2 } sim
  in
  let pipeline = Pipeline.create sim in
  let dp =
    Dp_service.create machine pipeline
      (Dp_service.default_config ~core:0 ~per_packet:(fun _ -> Time_ns.us 1) ())
  in
  Pipeline.set_deliver_hook pipeline
    (Dp_service.attach_delivery dp (fun ~core:_ -> ()));
  Dp_service.start dp;
  (sim, machine, pipeline, dp)

let submit pipeline ?(core = 0) ?(tag = 0) () =
  Pipeline.submit pipeline
    (Packet.create ~kind:Packet.Net_rx ~size:64 ~dst_core:core ~tag)

let test_processes_packet () =
  let sim, _, pipeline, dp = make_system () in
  submit pipeline ();
  Sim.run ~until:(Time_ns.ms 1) sim;
  checki "processed" 1 (Dp_service.packets_processed dp);
  let lat = Dp_service.latency dp in
  let v = Taichi_metrics.Recorder.max_value lat in
  (* window 3.2us + discovery 0.1 + processing 1us. *)
  checkb "latency sane" true (v >= 4200 && v < 5000)

let test_burst_batching () =
  let sim, _, pipeline, dp = make_system () in
  for _ = 1 to 40 do
    submit pipeline ()
  done;
  Sim.run ~until:(Time_ns.ms 2) sim;
  checki "all processed" 40 (Dp_service.packets_processed dp);
  let bursts = Taichi_metrics.Recorder.counter (Dp_service.latency dp) "bursts" in
  checkb "batched into >=2 bursts (32 cap)" true (bursts >= 2 && bursts <= 5)

let test_idle_detection_timing () =
  let sim, _, _, dp = make_system () in
  let hooks = Dp_service.hooks dp in
  hooks.Dp_service.idle_threshold <- (fun () -> 100);
  let detected_at = ref (-1) in
  hooks.Dp_service.idle_detected <- (fun _ -> detected_at := Sim.now sim);
  (* Restart counting with the new threshold by running from time 0. *)
  Sim.run ~until:(Time_ns.ms 1) sim;
  (* Default threshold 200 was armed at start: detection at 20us. *)
  checkb "detected" true (!detected_at >= 0);
  checkb "around threshold x poll cost" true (!detected_at <= Time_ns.us 25)

let test_arrival_cancels_idle () =
  let sim, _, pipeline, dp = make_system () in
  let hooks = Dp_service.hooks dp in
  let detected = ref 0 in
  hooks.Dp_service.idle_detected <- (fun _ -> incr detected);
  (* Arrival at 10us, before the 20us threshold crossing. *)
  ignore (Sim.at sim (Time_ns.us 10) (fun () -> submit pipeline ()));
  Sim.run ~until:(Time_ns.us 19) sim;
  checki "no premature detection" 0 !detected;
  Sim.run ~until:(Time_ns.ms 1) sim;
  (* After processing, counting restarts and eventually detects. *)
  checkb "detected after quiescence" true (!detected >= 1)

let test_yield_resume_cycle () =
  let sim, _, pipeline, dp = make_system () in
  let hooks = Dp_service.hooks dp in
  hooks.Dp_service.idle_detected <-
    (fun dp -> ignore (Dp_service.try_yield dp));
  let arrived_while_yielded = ref 0 in
  hooks.Dp_service.work_arrived_while_yielded <-
    (fun _ -> incr arrived_while_yielded);
  Sim.run ~until:(Time_ns.us 50) sim;
  checkb "yielded" true (Dp_service.state dp = Dp_service.Yielded);
  submit pipeline ();
  Sim.run ~until:(Time_ns.us 60) sim;
  checki "work-arrived hook" 1 !arrived_while_yielded;
  checki "not processed while yielded" 0 (Dp_service.packets_processed dp);
  Dp_service.resume dp ~switch_cost:(Time_ns.us 2);
  Sim.run ~until:(Time_ns.ms 1) sim;
  checki "processed after resume" 1 (Dp_service.packets_processed dp)

let test_try_yield_refused_with_pending () =
  let sim, _, pipeline, dp = make_system () in
  submit pipeline ();
  (* In-flight in the accelerator window: yield must be refused. *)
  checkb "refused" false (Dp_service.try_yield dp);
  Sim.run ~until:(Time_ns.ms 1) sim;
  checki "packet processed" 1 (Dp_service.packets_processed dp)

let test_spike_counter () =
  let sim, _, pipeline, dp = make_system () in
  let hooks = Dp_service.hooks dp in
  hooks.Dp_service.idle_detected <- (fun dp -> ignore (Dp_service.try_yield dp));
  Sim.run ~until:(Time_ns.us 50) sim;
  submit pipeline ();
  (* Resume only after 200us: the packet latency exceeds the 100us spike
     threshold. *)
  ignore
    (Sim.at sim (Time_ns.us 250) (fun () ->
         Dp_service.resume dp ~switch_cost:(Time_ns.us 2)));
  Sim.run ~until:(Time_ns.ms 1) sim;
  checki "spike recorded" 1 (Dp_service.spikes dp)

let test_speed_tax_slows_processing () =
  let sim, _, pipeline, dp = make_system () in
  Dp_service.set_speed_tax dp 1.0 (* 2x slower *);
  submit pipeline ();
  Sim.run ~until:(Time_ns.ms 1) sim;
  let v = Taichi_metrics.Recorder.max_value (Dp_service.latency dp) in
  checkb "taxed latency" true (v >= 5200)

let test_pollution_increases_cost () =
  let sim, machine, pipeline, dp = make_system () in
  (* Pollute the core as a vCPU occupancy would. *)
  Cache_model.occupy_foreign (Machine.cache machine) ~core:0 (Time_ns.ms 1);
  submit pipeline ();
  Sim.run ~until:(Time_ns.ms 1) sim;
  let v = Taichi_metrics.Recorder.max_value (Dp_service.latency dp) in
  checkb "pollution surcharge visible" true (v > 4300)

let test_busy_fraction () =
  let sim, _, pipeline, dp = make_system () in
  for _ = 1 to 100 do
    submit pipeline ()
  done;
  Sim.run ~until:(Time_ns.ms 1) sim;
  let f = Dp_service.busy_fraction dp ~elapsed:(Time_ns.ms 1) in
  (* 100us of work in 1ms elapsed. *)
  checkb "about 10%" true (f > 0.08 && f < 0.13)

let test_net_service_cost_model () =
  let cost = Net_service.default_cost in
  let small = Packet.create ~kind:Packet.Net_rx ~size:64 ~dst_core:0 ~tag:0 in
  let big = Packet.create ~kind:Packet.Net_rx ~size:1500 ~dst_core:0 ~tag:0 in
  let conn =
    Packet.create ~kind:Packet.Net_rx ~size:64 ~dst_core:0
      ~tag:Net_service.connection_tag_bit
  in
  checkb "size-dependent" true
    (Net_service.packet_cost cost big > Net_service.packet_cost cost small);
  checkb "connection extra" true
    (Net_service.packet_cost cost conn
    > Net_service.packet_cost cost small + Time_ns.us 5)

let test_storage_service_cost_model () =
  let cost = Storage_service.default_cost in
  let read = Packet.create ~kind:Packet.Storage_read ~size:4096 ~dst_core:0 ~tag:0 in
  let write = Packet.create ~kind:Packet.Storage_write ~size:4096 ~dst_core:0 ~tag:0 in
  let big_read = Packet.create ~kind:Packet.Storage_read ~size:65536 ~dst_core:0 ~tag:0 in
  checkb "write penalty" true
    (Storage_service.io_cost cost write > Storage_service.io_cost cost read);
  checkb "size scaling" true
    (Storage_service.io_cost cost big_read > 2 * Storage_service.io_cost cost read)

let suite =
  [
    ("processes packet", `Quick, test_processes_packet);
    ("burst batching", `Quick, test_burst_batching);
    ("idle detection timing", `Quick, test_idle_detection_timing);
    ("arrival cancels idle detection", `Quick, test_arrival_cancels_idle);
    ("yield/resume cycle", `Quick, test_yield_resume_cycle);
    ("yield refused with pending work", `Quick, test_try_yield_refused_with_pending);
    ("spike counter", `Quick, test_spike_counter);
    ("speed tax", `Quick, test_speed_tax_slows_processing);
    ("pollution surcharge", `Quick, test_pollution_increases_cost);
    ("busy fraction", `Quick, test_busy_fraction);
    ("net cost model", `Quick, test_net_service_cost_model);
    ("storage cost model", `Quick, test_storage_service_cost_model);
  ]

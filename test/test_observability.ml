(* End-to-end tests of the scheduler-wide tracing/export layer: a real
   system run produces a timeline whose occupancy partitions wall time, the
   JSON export validates and parses, and same-seed runs are byte-identical. *)

open Taichi_engine
open Taichi_hw
open Taichi_platform
open Taichi_metrics

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* A small but busy scenario: background data-plane traffic plus enough
   control-plane churn that Tai Chi actually places vCPUs on data-plane
   cores (so the timeline has non-trivial vcpu/switch spans). *)
let traced_run ~seed =
  let sys = System.create ~seed Policy.taichi_default in
  let machine = System.machine sys in
  Trace.set_enabled (Machine.trace machine) true;
  System.warmup sys;
  let until = Sim.now (System.sim sys) + Time_ns.ms 80 in
  Exp_common.start_bg_dp sys ~target:0.3 ~until;
  (* Offer well above the 4 dedicated CP cores so the overflow lands on
     vCPUs and the scheduler actually places them on data-plane cores. *)
  Exp_common.start_cp_churn sys ~period:(Time_ns.ms 1) ~work:(Time_ns.ms 8)
    ~until;
  System.advance sys (Time_ns.ms 100);
  let duration = Sim.now (System.sim sys) in
  Export.make_run ~experiment:"test" ~policy:"taichi" ~seed ~duration
    ~cores:(Machine.physical_cores machine)
    ~counters:(Counters.dump (Machine.counters machine))
    (Machine.trace machine)

let test_timeline_partitions_wall_time () =
  let run = traced_run ~seed:5 in
  let tl = run.Export.timeline in
  let cores = Timeline.n_cores tl in
  checki "12 cores" 12 cores;
  for core = 0 to cores - 1 do
    checki
      (Printf.sprintf "core %d occupancy sums to duration" core)
      run.Export.duration
      (Timeline.total (Timeline.occupancy tl ~core))
  done;
  (* The scenario must actually exercise the scheduler: some core spent
     time backing a vCPU and paying world switches. *)
  let spent f =
    let acc = ref 0 in
    for core = 0 to cores - 1 do
      acc := !acc + f (Timeline.occupancy tl ~core)
    done;
    !acc
  in
  checkb "some dp time" true (spent (fun o -> o.Timeline.dp) > 0);
  checkb "some vcpu time" true (spent (fun o -> o.Timeline.vcpu) > 0);
  checkb "some switch time" true (spent (fun o -> o.Timeline.switch) > 0)

let test_counters_populated () =
  let run = traced_run ~seed:6 in
  let get name = try List.assoc name run.Export.counters with Not_found -> 0 in
  checkb "placements counted" true (get "sched.placements" > 0);
  checkb "yields counted" true (get "dp.yields" > 0);
  checkb "softirqs counted" true (get "softirq.raised" > 0);
  (* Every placement either followed a data-plane yield (softirq path) or
     was a direct vCPU-to-vCPU rotation on an already-yielded core. *)
  checkb "placements <= yields + rotations" true
    (get "sched.placements" <= get "dp.yields" + get "sched.rotations")

let test_export_validates () =
  let run = traced_run ~seed:7 in
  let s = Export.to_string [ run ] in
  (match Export.validate_string s with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("export failed validation: " ^ msg));
  (* And the parsed document structurally matches what we exported. *)
  let j = Json.parse s in
  let runs = Option.get (Json.to_list (Option.get (Json.member "runs" j))) in
  checki "one run" 1 (List.length runs);
  let r = List.hd runs in
  checki "duration field" run.Export.duration
    (Option.get (Json.to_int (Option.get (Json.member "duration_ns" r))))

let test_export_deterministic () =
  let a = Export.to_string [ traced_run ~seed:9 ] in
  let b = Export.to_string [ traced_run ~seed:9 ] in
  checkb "same seed, byte-identical export" true (String.equal a b);
  let c = Export.to_string [ traced_run ~seed:10 ] in
  checkb "different seed, different trace" true (not (String.equal a c))

let suite =
  [
    ("timeline partitions wall time", `Slow, test_timeline_partitions_wall_time);
    ("counters populated", `Slow, test_counters_populated);
    ("export validates and parses", `Slow, test_export_validates);
    ("export deterministic per seed", `Slow, test_export_deterministic);
  ]

(* Integration tests across the platform layer: policies, full systems,
   and end-to-end paper phenomena at miniature scale. *)

open Taichi_engine
open Taichi_os
open Taichi_core
open Taichi_metrics
open Taichi_workloads
open Taichi_controlplane
open Taichi_platform

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* --- Policy -------------------------------------------------------------------- *)

let test_policy_names () =
  Alcotest.(check string) "baseline" "baseline" (Policy.name Policy.Static_partition);
  Alcotest.(check string) "taichi" "taichi" (Policy.name Policy.taichi_default);
  Alcotest.(check string) "ablation" "taichi-no-hwprobe"
    (Policy.name Policy.taichi_no_hw_probe);
  Alcotest.(check string) "type2" "type2" (Policy.name Policy.Type2)

let test_policy_costs () =
  checki "type2 loses cores" 2 (Policy.dp_cores_lost Policy.Type2);
  checki "taichi loses none" 0 (Policy.dp_cores_lost Policy.taichi_default);
  checkb "vdp taxes dp" true (Policy.dp_speed_tax (Policy.Taichi_vdp Config.default) > 0.0);
  checkb "type2 rpc slower" true
    (Policy.dpcp_roundtrip Policy.Type2
    > Policy.dpcp_roundtrip Policy.taichi_default)

(* --- System assembly --------------------------------------------------------------- *)

let test_system_layout () =
  let sys = System.create ~seed:1 Policy.Static_partition in
  checki "net cores" 5 (List.length (System.net_cores sys));
  checki "storage cores" 3 (List.length (System.storage_cores sys));
  checki "cp cores" 4 (List.length (System.cp_cores sys));
  checki "services" 8 (List.length (System.services sys));
  checkb "no taichi under baseline" true (System.taichi sys = None)

let test_type2_loses_dp_cores () =
  let sys = System.create ~seed:1 Policy.Type2 in
  checki "net cores" 4 (List.length (System.net_cores sys));
  checki "storage cores" 2 (List.length (System.storage_cores sys))

let test_cp_affinity_per_policy () =
  let base = System.create ~seed:1 Policy.Static_partition in
  checki "baseline: cp cores only" 4 (List.length (System.cp_affinity base));
  let naive = System.create ~seed:1 Policy.Naive_coschedule in
  checki "naive: dp + cp cores" 12 (List.length (System.cp_affinity naive));
  let tai = System.create ~seed:1 Policy.taichi_default in
  System.warmup tai;
  checki "taichi: cp + vcpus" 12 (List.length (System.cp_affinity tai))

let test_warmup_sets_epoch () =
  let sys = System.create ~seed:1 Policy.taichi_default in
  System.warmup sys;
  checkb "epoch set" true (System.epoch sys > 0);
  checkb "taichi ready" true
    (match System.taichi sys with Some tc -> Taichi.ready tc | None -> false)

(* --- end-to-end phenomena ------------------------------------------------------------ *)

(* The §3.2 spike: naive co-scheduling exposes data-plane packets to
   ms-scale non-preemptible routines; Tai Chi does not. *)
let spike_run policy =
  let sys = System.create ~seed:9 policy in
  System.warmup sys;
  let lock = Task.spinlock "drv" in
  let cp =
    Task.create ~name:"np-cp"
      ~step:
        (Program.to_step
           [
             Program.Forever
               ([ Program.compute (Time_ns.us 300) ]
               @ Program.critical_section lock
                   [ Program.kernel_routine (Time_ns.ms 3) ]
               @ [ Program.sleep (Time_ns.us 100) ]);
           ])
      ()
  in
  (match policy with
  | Policy.Naive_coschedule ->
      cp.Task.affinity <- [ List.hd (System.net_cores sys) ]
  | _ -> ());
  System.spawn_cp sys cp;
  let recorder = Recorder.create "rtt" in
  let rng = Rng.split (System.rng sys) "probe" in
  Ping.run (System.client sys) rng
    ~params:{ Ping.default_params with interval = Time_ns.us 300; count = 300 }
    ~core:(List.hd (System.net_cores sys))
    ~recorder;
  System.advance sys (Time_ns.ms 120);
  Recorder.max_value recorder

let test_naive_spikes_taichi_does_not () =
  let naive_max = spike_run Policy.Naive_coschedule in
  let taichi_max = spike_run Policy.taichi_default in
  checkb "naive ms-scale spike" true (naive_max > Time_ns.ms 1);
  checkb "taichi stays micro-scale" true (taichi_max < Time_ns.us 100)

(* Miniature Fig 11: Tai Chi speeds up burst CP work under an idle-ish
   data plane. *)
let mini_fig11 policy =
  let sys = System.create ~seed:10 policy in
  System.warmup sys;
  let until = Sim.now (System.sim sys) + Time_ns.sec 10 in
  Exp_common.start_bg_dp sys ~target:0.10 ~until;
  Exp_common.start_cp_ecosystem sys ();
  let rng = Rng.split (System.rng sys) "mini" in
  let tasks =
    Synth_cp.make_batch ~rng
      ~params:{ Synth_cp.default_params with total_work = Time_ns.ms 20 }
      ~locks:[ Task.spinlock "l" ] ~affinity:[] ~count:16 ()
  in
  List.iter (fun t -> System.spawn_cp sys t) tasks;
  checkb "finished" true
    (System.run_until_tasks_done sys tasks ~limit:(Time_ns.sec 10));
  Exp_common.avg_turnaround_ms tasks

let test_taichi_speeds_up_cp () =
  let base = mini_fig11 Policy.Static_partition in
  let taichi = mini_fig11 Policy.taichi_default in
  checkb "meaningful speedup" true (base /. taichi > 1.5)

(* Miniature Fig 12/13 shape: type-2 loses substantially more data-plane
   throughput than Tai Chi. *)
let mini_crr policy =
  let sys = System.create ~seed:11 policy in
  System.warmup sys;
  let d = Time_ns.ms 150 in
  let until = Sim.now (System.sim sys) + d in
  let rng = Rng.split (System.rng sys) "crr" in
  let r = Netperf.tcp_crr (System.client sys) rng ~cores:(System.net_cores sys) ~until in
  System.advance sys (d + Time_ns.ms 10);
  Rr_engine.tps r ~duration:d

let test_fig12_shape () =
  let base = mini_crr Policy.Static_partition in
  let taichi = mini_crr Policy.taichi_default in
  let vdp = mini_crr (Policy.Taichi_vdp Config.default) in
  let type2 = mini_crr Policy.Type2 in
  checkb "taichi within 2% of baseline" true (taichi > base *. 0.98);
  checkb "vdp noticeably slower" true (vdp < base *. 0.97);
  checkb "type2 much slower" true (type2 < base *. 0.85);
  checkb "ordering" true (type2 < vdp && vdp < taichi)

(* Table 5 shape at miniature scale: removing the hardware probe inflates
   tail RTT; full Tai Chi does not. *)
let mini_ping policy =
  let sys = System.create ~seed:12 policy in
  System.warmup sys;
  let until = Sim.now (System.sim sys) + Time_ns.ms 600 in
  (* Offer well above the 4 dedicated CP cores so vCPUs occupy data-plane
     cores (including the pinged one) most of the time. *)
  Exp_common.start_cp_churn sys ~period:(Time_ns.ms 1) ~work:(Time_ns.ms 8) ~until;
  let recorder = Recorder.create "rtt" in
  let rng = Rng.split (System.rng sys) "ping" in
  Ping.run (System.client sys) rng
    ~params:{ Ping.default_params with interval = Time_ns.ms 1; count = 550 }
    ~core:(List.hd (System.net_cores sys))
    ~recorder;
  System.advance sys (Time_ns.ms 600);
  Ping.summarize recorder

let test_hw_probe_hides_latency () =
  let base = mini_ping Policy.Static_partition in
  let taichi = mini_ping Policy.taichi_default in
  let no_probe = mini_ping Policy.taichi_no_hw_probe in
  checkb "taichi max near baseline" true
    (taichi.Ping.max_us < base.Ping.max_us *. 1.3);
  checkb "no-probe max inflated" true
    (no_probe.Ping.max_us > base.Ping.max_us *. 1.5)

(* Accounting sanity on a busy system: all charged time fits in capacity. *)
let test_accounting_conservation () =
  let sys = System.create ~seed:13 Policy.taichi_default in
  System.warmup sys;
  let d = Time_ns.ms 300 in
  let until = Sim.now (System.sim sys) + d in
  Exp_common.start_bg_dp sys ~target:0.3 ~until;
  Exp_common.start_cp_churn sys ~period:(Time_ns.ms 2) ~work:(Time_ns.ms 3) ~until;
  System.advance sys d;
  let acct = Taichi_hw.Machine.accounting (System.machine sys) in
  let elapsed = Sim.now (System.sim sys) in
  List.iter
    (fun core ->
      let busy = Taichi_hw.Accounting.busy acct ~core in
      checkb
        (Printf.sprintf "core %d charged <= elapsed" core)
        true
        (busy <= elapsed))
    (System.dp_cores sys @ System.cp_cores sys)

let suite =
  [
    ("policy names", `Quick, test_policy_names);
    ("policy costs", `Quick, test_policy_costs);
    ("system layout", `Quick, test_system_layout);
    ("type2 loses dp cores", `Quick, test_type2_loses_dp_cores);
    ("cp affinity per policy", `Quick, test_cp_affinity_per_policy);
    ("warmup sets epoch", `Quick, test_warmup_sets_epoch);
    ("naive spikes, taichi does not", `Slow, test_naive_spikes_taichi_does_not);
    ("taichi speeds up cp", `Slow, test_taichi_speeds_up_cp);
    ("fig12 ordering shape", `Slow, test_fig12_shape);
    ("hw probe hides latency", `Slow, test_hw_probe_hides_latency);
    ("accounting conservation", `Slow, test_accounting_conservation);
  ]

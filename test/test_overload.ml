(* Unit tests for the overload governor: ladder escalation and relaxation
   under synthetic signals, hysteresis (minimum dwell between rungs), the
   per-class admission matrix, the placement token bucket, backpressure,
   convergence with PR 3's forced degraded mode, and determinism. *)

open Taichi_engine
open Taichi_hw
open Taichi_os
open Taichi_core

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let period = Time_ns.us 100
let min_dwell = Time_ns.us 200
let quiet = Time_ns.us 300

let test_config () =
  {
    (Config.with_overload Config.default) with
    Config.overload_period = period;
    overload_min_dwell = min_dwell;
    overload_quiet = quiet;
    overload_p99_bound = Time_ns.us 100;
    overload_busy_high = 0.9;
    overload_busy_low = 0.2;
    overload_runq_high = 4;
    overload_runq_low = 1;
    overload_tokens_per_period = 2;
    overload_token_burst = 2;
  }

(* A 2-cpu kernel with the governor watching cpu 0's runqueue. Load is
   synthetic: pinned compute tasks make the runqueue deep, a periodic
   feed pushes the latency sketch over the p99 bound — two of the three
   over-votes, enough to escalate (no DP cores are watched, so the busy
   signal stays 0). *)
let make_governor () =
  let sim = Sim.create () in
  let machine =
    Machine.create
      ~config:{ Machine.default_config with Machine.physical_cores = 2 }
      sim
  in
  let kernel = Kernel.create machine in
  List.iter
    (fun id -> ignore (Kernel.add_physical_cpu kernel ~id ()))
    [ 0; 1 ];
  let config = test_config () in
  let recovery = Recovery.create config machine in
  let ov = Overload.create config machine kernel recovery in
  Overload.watch_kcpu ov 0;
  (sim, kernel, recovery, ov)

let pinned_compute name work =
  Task.create ~affinity:[ 0 ] ~name
    ~step:(Program.to_step [ Program.compute work ])
    ()

(* Deep runqueue on cpu 0 (1 running + 4 queued) plus an over-bound
   latency feed until [feed_until]. *)
let apply_load sim kernel ov ~feed_until =
  for i = 1 to 5 do
    Kernel.spawn kernel (pinned_compute (Printf.sprintf "load-%d" i) (Time_ns.ms 1))
  done;
  let rec feed () =
    if Sim.now sim < feed_until then begin
      Overload.observe_latency ov (Time_ns.us 200);
      ignore (Sim.after sim (Time_ns.us 50) feed)
    end
  in
  feed ()

let test_ladder_escalates_and_relaxes () =
  let sim, kernel, recovery, ov = make_governor () in
  let transitions = ref [] in
  Overload.on_transition ov (fun from to_ ->
      transitions := (Sim.now sim, from, to_) :: !transitions);
  apply_load sim kernel ov ~feed_until:(Time_ns.ms 2);
  Overload.start ov;
  (* Probe the deep end of the ladder mid-storm. *)
  let probed = ref false in
  ignore
    (Sim.at sim (Time_ns.ms 1) (fun () ->
         probed := true;
         checkb "ladder at the final rung mid-storm" true
           (Overload.level ov = Overload.Static_partition);
         checkb "backpressure on at depth" true (Overload.backpressure ov);
         checkb "static rung pins degraded mode" true
           (Recovery.degraded recovery && Recovery.forced recovery)));
  Sim.run ~until:(Time_ns.ms 10) sim;
  checkb "mid-storm probe ran" true !probed;
  (* Load gone: the ladder must have relaxed rung by rung back to Normal
     and released the degraded hold. *)
  checkb "back to Normal" true (Overload.level ov = Overload.Normal);
  checkb "degraded released" false (Recovery.degraded recovery);
  checkb "hold released" false (Recovery.forced recovery);
  checki "four escalations" 4 (Overload.escalations ov);
  checki "four relaxes" 4 (Overload.relaxes ov);
  checki "transitions = escalations + relaxes" 8 (Overload.transitions ov);
  let ts = List.rev !transitions in
  (* One rung at a time, with the hysteresis dwell between transitions. *)
  List.iter
    (fun (_, from, to_) ->
      checki "single-rung move" 1 (abs (Overload.rank to_ - Overload.rank from)))
    ts;
  let rec dwells = function
    | (t1, _, _) :: ((t2, _, _) :: _ as rest) ->
        checkb "minimum dwell respected" true (t2 - t1 >= min_dwell);
        dwells rest
    | _ -> ()
  in
  dwells ts;
  (* The ladder path is exactly up the rungs and back down. *)
  let path = List.map (fun (_, _, to_) -> to_) ts in
  checkb "up then down" true
    (path
    = [
        Overload.Throttle; Overload.Defer; Overload.Shed;
        Overload.Static_partition; Overload.Shed; Overload.Defer;
        Overload.Throttle; Overload.Normal;
      ])

let test_admission_matrix () =
  let sim, kernel, _, ov = make_governor () in
  (* At Normal everything is admitted immediately. *)
  let ran = ref 0 in
  let run () = incr ran in
  checkb "critical admitted at normal" true
    (Overload.admit ov ~cls:Overload.Critical run = `Admitted);
  checkb "standard admitted at normal" true
    (Overload.admit ov ~cls:Overload.Standard run = `Admitted);
  checkb "deferrable admitted at normal" true
    (Overload.admit ov ~cls:Overload.Deferrable run = `Admitted);
  checki "all three ran" 3 !ran;
  apply_load sim kernel ov ~feed_until:(Time_ns.ms 2);
  Overload.start ov;
  let deferred_ran = ref false in
  ignore
    (Sim.at sim (Time_ns.ms 1) (fun () ->
         checkb "at the final rung" true
           (Overload.level ov = Overload.Static_partition);
         (* Critical always passes; Standard parks; Deferrable is shed —
            the only class ever dropped. *)
         let before = !ran in
         checkb "critical still admitted" true
           (Overload.admit ov ~cls:Overload.Critical run = `Admitted);
         checki "critical ran now" (before + 1) !ran;
         checkb "standard deferred" true
           (Overload.admit ov ~cls:Overload.Standard (fun () ->
                deferred_ran := true)
           = `Deferred);
         checkb "deferred not run yet" false !deferred_ran;
         checki "parked on the deferred queue" 1 (Overload.deferred_pending ov);
         checkb "deferrable shed" true
           (Overload.admit ov ~cls:Overload.Deferrable run = `Shed);
         checki "shed counted" 1 (Overload.shed ov Overload.Deferrable)));
  Sim.run ~until:(Time_ns.ms 10) sim;
  (* Relaxing drains the deferred queue: the parked Standard admission
     must have run once the ladder came back down. *)
  checkb "deferred admission drained on relax" true !deferred_ran;
  checki "deferred queue empty" 0 (Overload.deferred_pending ov);
  checki "nothing else was shed" 0 (Overload.shed ov Overload.Standard)

let test_place_gate_tokens () =
  let sim, kernel, _, ov = make_governor () in
  (* Ungated at Normal: far more calls than any token budget. *)
  let all_allowed = ref true in
  for _ = 1 to 50 do
    if not (Overload.place_allowed ov 0) then all_allowed := false
  done;
  checkb "unlimited at normal" true !all_allowed;
  let throttle_probe = ref None in
  Overload.on_transition ov (fun _ to_ ->
      if to_ = Overload.Throttle && !throttle_probe = None then begin
        (* Entering Throttle with a full bucket (burst 2): two grants,
           then denial. *)
        let a = Overload.place_allowed ov 0 in
        let b = Overload.place_allowed ov 0 in
        let c = Overload.place_allowed ov 0 in
        throttle_probe := Some (a, b, c)
      end);
  let static_probe = ref None in
  ignore
    (Sim.at sim (Time_ns.ms 1) (fun () ->
         if Overload.level ov = Overload.Static_partition then
           static_probe := Some (Overload.place_allowed ov 0)));
  apply_load sim kernel ov ~feed_until:(Time_ns.ms 2);
  Overload.start ov;
  Sim.run ~until:(Time_ns.ms 10) sim;
  (match !throttle_probe with
  | Some (a, b, c) ->
      checkb "token bucket grants to burst then denies" true
        (a && b && not c)
  | None -> Alcotest.fail "never entered Throttle");
  match !static_probe with
  | Some allowed -> checkb "no placements at static partition" false allowed
  | None -> Alcotest.fail "never probed Static_partition"

(* The whole scenario is simulated-clock arithmetic: identical runs must
   transition at identical times. *)
let test_governor_deterministic () =
  let run () =
    let sim, kernel, _, ov = make_governor () in
    let transitions = ref [] in
    Overload.on_transition ov (fun from to_ ->
        transitions :=
          (Sim.now sim, Overload.rank from, Overload.rank to_) :: !transitions);
    apply_load sim kernel ov ~feed_until:(Time_ns.ms 2);
    Overload.start ov;
    Sim.run ~until:(Time_ns.ms 10) sim;
    List.rev !transitions
  in
  checkb "bit-identical transition schedule" true (run () = run ())

let suite =
  [
    ("ladder escalates and relaxes", `Quick, test_ladder_escalates_and_relaxes);
    ("admission matrix", `Quick, test_admission_matrix);
    ("place gate token bucket", `Quick, test_place_gate_tokens);
    ("governor deterministic", `Quick, test_governor_deterministic);
  ]

(* Tests for the Tai Chi core: software probe adaptation, hardware probe,
   IPI orchestrator, vCPU scheduler behaviours. These build a small full
   system via the platform layer where integration is needed. *)

open Taichi_engine
open Taichi_os
open Taichi_accel
open Taichi_core
open Taichi_platform
open Taichi_metrics
open Taichi_workloads

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* --- Config ------------------------------------------------------------------ *)

let test_config_ablations () =
  let c = Config.default in
  checkb "probe on" true c.Config.hw_probe;
  checkb "probe off" false (Config.no_hw_probe c).Config.hw_probe;
  checkb "fixed slice" false (Config.fixed_slice c).Config.adaptive_slice;
  checkb "fixed threshold" false
    (Config.fixed_threshold c).Config.adaptive_threshold;
  checkb "unsafe locks" false (Config.unsafe_locks c).Config.lock_safe_resched;
  checki "paper initial slice" (Time_ns.us 50) c.Config.initial_slice

(* --- Sw_probe ------------------------------------------------------------------ *)

let test_sw_probe_adaptation () =
  let sw = Sw_probe.create Config.default ~cores:2 in
  let n0 = Sw_probe.threshold sw ~core:0 in
  checki "initial" Config.default.Config.threshold_init n0;
  Sw_probe.on_sustained_idle sw ~core:0;
  checki "decreased" (n0 - Config.default.Config.threshold_dec)
    (Sw_probe.threshold sw ~core:0);
  Sw_probe.on_false_positive sw ~core:0;
  checkb "increased" true (Sw_probe.threshold sw ~core:0 > n0);
  checki "other core untouched" n0 (Sw_probe.threshold sw ~core:1)

let test_sw_probe_bounds () =
  let sw = Sw_probe.create Config.default ~cores:1 in
  for _ = 1 to 100 do
    Sw_probe.on_sustained_idle sw ~core:0
  done;
  checki "floor" Config.default.Config.threshold_min (Sw_probe.threshold sw ~core:0);
  for _ = 1 to 100 do
    Sw_probe.on_false_positive sw ~core:0
  done;
  checki "ceiling" Config.default.Config.threshold_max
    (Sw_probe.threshold sw ~core:0);
  checki "fp counted" 100 (Sw_probe.false_positives sw ~core:0)

let test_sw_probe_fixed () =
  let sw = Sw_probe.create (Config.fixed_threshold Config.default) ~cores:1 in
  Sw_probe.on_sustained_idle sw ~core:0;
  Sw_probe.on_false_positive sw ~core:0;
  checki "unchanged" Config.default.Config.threshold_init
    (Sw_probe.threshold sw ~core:0)

(* --- full-system helpers ---------------------------------------------------------- *)

let taichi_system ?(config = Config.default) ~seed () =
  let sys = System.create ~seed (Policy.Taichi config) in
  System.warmup sys;
  sys

let get_taichi sys =
  match System.taichi sys with Some tc -> tc | None -> Alcotest.fail "no taichi"

(* --- installation & registration ---------------------------------------------------- *)

let test_install_boots_vcpus () =
  let sys = taichi_system ~seed:1 () in
  let tc = get_taichi sys in
  checkb "ready" true (Taichi.ready tc);
  checki "vcpu count" Config.default.Config.n_vcpus (List.length (Taichi.vcpus tc));
  (* vCPUs are native kernel CPUs now. *)
  List.iter
    (fun v ->
      let kc = Kernel.cpu (System.kernel sys) v.Taichi_virt.Vcpu.kcpu in
      checkb "online" true (Kernel.is_online kc);
      checkb "virtual" true (Kernel.cpu_kind kc = `Virtual))
    (Taichi.vcpus tc)

let test_cp_affinity_spans_vcpus () =
  let sys = taichi_system ~seed:1 () in
  let tc = get_taichi sys in
  let ids = Taichi.cp_cpu_ids tc in
  checki "4 pcpus + 8 vcpus" 12 (List.length ids);
  List.iter
    (fun v -> checkb "vcpu included" true (List.mem v.Taichi_virt.Vcpu.kcpu ids))
    (Taichi.vcpus tc)

(* --- yielding & placement ----------------------------------------------------------- *)

let test_idle_dp_core_hosts_vcpu () =
  let sys = taichi_system ~seed:2 () in
  let tc = get_taichi sys in
  (* Give the control plane sustained work; the data plane stays idle, so
     vCPUs must be placed on data-plane cores. *)
  let t =
    Task.create ~name:"burn"
      ~step:(Taichi_os.Program.to_step
               [ Taichi_os.Program.compute (Time_ns.ms 20) ])
      ()
  in
  (* Pin to vCPUs only so placement is forced. *)
  t.Task.affinity <- List.map (fun v -> v.Taichi_virt.Vcpu.kcpu) (Taichi.vcpus tc);
  System.spawn_cp sys t;
  System.advance sys (Time_ns.ms 50);
  let s = Vcpu_sched.stats (Taichi.scheduler tc) in
  checkb "placements happened" true (s.Vcpu_sched.placements > 0);
  (* The 20ms of compute only fits in 50ms if the vCPU actually ran it on
     a donated data-plane core. *)
  checkb "task completed on a vcpu" true (Task.is_finished t)

let test_state_table_tracks_placement () =
  let sys = taichi_system ~seed:3 () in
  let tc = get_taichi sys in
  let table = Taichi.state_table tc in
  let t =
    Task.create ~name:"burn"
      ~step:(Taichi_os.Program.to_step
               [ Taichi_os.Program.compute (Time_ns.ms 100) ])
      ()
  in
  t.Task.affinity <- List.map (fun v -> v.Taichi_virt.Vcpu.kcpu) (Taichi.vcpus tc);
  System.spawn_cp sys t;
  System.advance sys (Time_ns.ms 20);
  let v_cores =
    List.filter
      (fun core -> State_table.get table ~core = State_table.V_state)
      (System.dp_cores sys)
  in
  checkb "some core in V-state" true (List.length v_cores >= 1);
  (* The scheduler's placed map agrees with the table. *)
  List.iter
    (fun core ->
      checkb "scheduler agrees" true
        (Vcpu_sched.placed_vcpu (Taichi.scheduler tc) ~core <> None))
    v_cores

(* --- hardware probe ------------------------------------------------------------------ *)

let test_probe_evicts_vcpu_for_packet () =
  let sys = taichi_system ~seed:4 () in
  let tc = get_taichi sys in
  let t =
    Task.create ~name:"burn"
      ~step:(Taichi_os.Program.to_step
               [ Taichi_os.Program.compute (Time_ns.ms 200) ])
      ()
  in
  t.Task.affinity <- List.map (fun v -> v.Taichi_virt.Vcpu.kcpu) (Taichi.vcpus tc);
  System.spawn_cp sys t;
  System.advance sys (Time_ns.ms 10);
  (* Find a V-state core and fire a packet at it. *)
  let table = Taichi.state_table tc in
  let target =
    List.find_opt
      (fun core -> State_table.get table ~core = State_table.V_state)
      (System.dp_cores sys)
  in
  match target with
  | None -> Alcotest.fail "no vcpu placed on a net core"
  | Some core ->
      let recorder = Recorder.create "lat" in
      Client.submit (System.client sys) ~kind:Packet.Net_rx ~size:64 ~core
        ~on_done:(fun pkt ->
          Recorder.observe recorder (pkt.Packet.t_done - pkt.Packet.t_submit))
        ();
      System.advance sys (Time_ns.ms 1);
      checki "packet processed" 1 (Recorder.count recorder);
      (* The probe hid the switch inside the 3.2us window: total latency
         stays close to the native path (window + software cost, which is
         larger on storage cores), far below any slice wait. *)
      checkb "latency hidden" true (Recorder.max_value recorder < Time_ns.us 12);
      checkb "probe triggered" true (Hw_probe.triggers (Taichi.hw_probe tc) >= 1);
      checkb "P-state restored" true
        (State_table.get table ~core = State_table.P_state)

let test_no_probe_packet_waits_for_slice () =
  let sys = taichi_system ~config:(Config.no_hw_probe Config.default) ~seed:4 () in
  let tc = get_taichi sys in
  let t =
    Task.create ~name:"burn"
      ~step:(Taichi_os.Program.to_step
               [ Taichi_os.Program.compute (Time_ns.ms 200) ])
      ()
  in
  t.Task.affinity <- List.map (fun v -> v.Taichi_virt.Vcpu.kcpu) (Taichi.vcpus tc);
  System.spawn_cp sys t;
  System.advance sys (Time_ns.ms 10);
  let table = Taichi.state_table tc in
  let target =
    List.find_opt
      (fun core -> State_table.get table ~core = State_table.V_state)
      (System.dp_cores sys)
  in
  match target with
  | None -> Alcotest.fail "no vcpu placed"
  | Some core ->
      let recorder = Recorder.create "lat" in
      Client.submit (System.client sys) ~kind:Packet.Net_rx ~size:64 ~core
        ~on_done:(fun pkt ->
          Recorder.observe recorder (pkt.Packet.t_done - pkt.Packet.t_submit))
        ();
      System.advance sys (Time_ns.ms 2);
      checki "processed eventually" 1 (Recorder.count recorder);
      (* Without the probe the packet waits for a slice expiry: visibly
         worse than the hidden path but bounded by the max slice. *)
      checkb "latency shows slice wait" true
        (Recorder.max_value recorder > Time_ns.us 10);
      checkb "bounded by max slice" true
        (Recorder.max_value recorder
        <= Config.default.Config.max_slice + Time_ns.us 20)

(* --- adaptive slice -------------------------------------------------------------------- *)

let test_slice_doubles_and_resets () =
  let sys = taichi_system ~seed:5 () in
  let tc = get_taichi sys in
  let t =
    Task.create ~name:"burn"
      ~step:(Taichi_os.Program.to_step
               [ Taichi_os.Program.compute (Time_ns.ms 500) ])
      ()
  in
  t.Task.affinity <- List.map (fun v -> v.Taichi_virt.Vcpu.kcpu) (Taichi.vcpus tc);
  System.spawn_cp sys t;
  (* Long quiet stretch: slices should grow to the cap. *)
  System.advance sys (Time_ns.ms 5);
  let v =
    List.find
      (fun v -> Taichi_virt.Vcpu.is_placed v)
      (Taichi.vcpus tc)
  in
  checkb "slice grew" true (v.Taichi_virt.Vcpu.slice > Config.default.Config.initial_slice);
  checkb "slice capped" true (v.Taichi_virt.Vcpu.slice <= Config.default.Config.max_slice);
  (* A packet at its core resets the slice. *)
  (match Taichi_virt.Vcpu.core v with
  | Some core ->
      Client.submit (System.client sys) ~kind:Packet.Net_rx ~size:64 ~core
        ~on_done:(fun _ -> ())
        ();
      (* Observe right after the probe eviction, before the next quiet
         slice expiry has a chance to double it again. *)
      System.advance sys (Time_ns.us 10);
      checki "reset to initial" Config.default.Config.initial_slice
        v.Taichi_virt.Vcpu.slice;
      checkb "probe exit recorded" true
        (Taichi_virt.Vcpu.exit_count v Taichi_virt.Vmexit.Hw_probe_irq >= 1)
  | None -> Alcotest.fail "vcpu lost its core")

(* --- orchestrator ------------------------------------------------------------------------ *)

let test_orchestrator_routes_and_counts () =
  let sys = taichi_system ~seed:6 () in
  let tc = get_taichi sys in
  let orch = Taichi.orchestrator tc in
  let stats = Ipi_orchestrator.stats orch in
  (* Boot IPIs for 8 vCPUs were routed through the orchestrator. *)
  checkb "routed boot IPIs" true (stats.Ipi_orchestrator.routed_to_vcpu >= 8);
  checkb "is_vcpu_kcpu" true (Ipi_orchestrator.is_vcpu_kcpu orch 12);
  checkb "pcpus are not vcpus" false (Ipi_orchestrator.is_vcpu_kcpu orch 0)

let test_orchestrator_wakes_sleeping_vcpu () =
  let sys = taichi_system ~seed:7 () in
  let tc = get_taichi sys in
  let before = (Ipi_orchestrator.stats (Taichi.orchestrator tc)).Ipi_orchestrator.wakeups in
  (* A task pinned to one vCPU: the wake IPI must awaken it. *)
  let v = List.hd (Taichi.vcpus tc) in
  let t =
    Task.create ~name:"pinned" ~affinity:[ v.Taichi_virt.Vcpu.kcpu ]
      ~step:(Taichi_os.Program.to_step
               [ Taichi_os.Program.compute (Time_ns.ms 1) ])
      ()
  in
  System.spawn_cp sys t;
  System.advance sys (Time_ns.ms 20);
  checkb "task ran via wakeup" true (Task.is_finished t);
  let after = (Ipi_orchestrator.stats (Taichi.orchestrator tc)).Ipi_orchestrator.wakeups in
  checkb "wakeup counted" true (after >= before)

(* --- lock safety --------------------------------------------------------------------------- *)

let test_lock_holder_rescued () =
  let sys = taichi_system ~seed:8 () in
  let tc = get_taichi sys in
  let lock = Task.spinlock "drv" in
  (* A vCPU-pinned task holding a long lock, plus packets evicting it. *)
  let t =
    Task.create ~name:"holder"
      ~step:
        (Taichi_os.Program.to_step
           [
             Taichi_os.Program.Forever
               (Taichi_os.Program.critical_section lock
                  [ Taichi_os.Program.kernel_routine (Time_ns.ms 3) ]);
           ])
      ()
  in
  t.Task.affinity <- List.map (fun v -> v.Taichi_virt.Vcpu.kcpu) (Taichi.vcpus tc);
  System.spawn_cp sys t;
  System.advance sys (Time_ns.ms 5);
  (* Evict whichever core hosts it, repeatedly. *)
  for _ = 1 to 10 do
    List.iter
      (fun core ->
        if State_table.get (Taichi.state_table tc) ~core = State_table.V_state
        then
          Client.submit (System.client sys) ~kind:Packet.Net_rx ~size:64 ~core
            ~on_done:(fun _ -> ())
            ())
      (System.dp_cores sys);
    System.advance sys (Time_ns.ms 2)
  done;
  let s = Vcpu_sched.stats (Taichi.scheduler tc) in
  checkb "rescues performed" true (s.Vcpu_sched.lock_rescues > 0);
  checki "no unsafe suspensions" 0 s.Vcpu_sched.unsafe_suspensions;
  (* Forward progress: the holder kept executing critical sections. *)
  checkb "holder progressed" true (t.Task.cpu_time > Time_ns.ms 10)

(* The §4.1 fallback ladder: when every data-plane core is busy, a rescued
   lock holder cannot migrate DP-to-DP and must borrow a dedicated CP
   pCPU instead. *)
let test_rescue_borrows_cp_pcpu_when_dp_busy () =
  let sys = taichi_system ~seed:9 () in
  let tc = get_taichi sys in
  let lock = Task.spinlock "drv2" in
  let holder =
    Task.create ~name:"holder"
      ~step:
        (Taichi_os.Program.to_step
           [
             Taichi_os.Program.Forever
               (Taichi_os.Program.critical_section lock
                  [ Taichi_os.Program.kernel_routine (Time_ns.ms 3) ]);
           ])
      ()
  in
  holder.Task.affinity <-
    List.map (fun v -> v.Taichi_virt.Vcpu.kcpu) (Taichi.vcpus tc);
  System.spawn_cp sys holder;
  System.advance sys (Time_ns.ms 5);
  (* Saturate every data-plane core so no parked core exists; the packet
     backlog also keeps evicting whichever core hosts the holder. *)
  for _ = 1 to 12 do
    List.iter
      (fun core ->
        for _ = 1 to 8 do
          Client.submit_background (System.client sys) ~kind:Packet.Net_rx
            ~size:1400 ~core
        done)
      (System.dp_cores sys);
    System.advance sys (Time_ns.ms 2)
  done;
  let s = Vcpu_sched.stats (Taichi.scheduler tc) in
  checkb "rescues happened" true (s.Vcpu_sched.lock_rescues > 0);
  checkb "borrowed a dedicated CP pCPU" true (s.Vcpu_sched.borrows > 0);
  checki "no unsafe suspensions" 0 s.Vcpu_sched.unsafe_suspensions;
  (* Forward progress despite the busy data plane. *)
  checkb "holder progressed" true (holder.Task.cpu_time > Time_ns.ms 8)

(* A holder that never releases its lock exhausts the rescue ladder: the
   watchdog's last rung forcibly ends the CP borrow (one counted unsafe
   suspension) rather than letting the borrowed core wedge forever. *)
let test_watchdog_escalates_never_releasing_holder () =
  let sys =
    taichi_system ~config:(Config.resilient Config.default) ~seed:10 ()
  in
  let tc = get_taichi sys in
  let lock = Task.spinlock "wedged" in
  let stage = ref 0 in
  let holder =
    Task.create ~name:"wedged"
      ~step:(fun _ ->
        let s = !stage in
        incr stage;
        if s = 0 then Task.Acquire lock
        else
          Task.Run
            { duration = Time_ns.ms 50; mode = Task.Kernel_nonpreemptible })
      ()
  in
  holder.Task.affinity <-
    List.map (fun v -> v.Taichi_virt.Vcpu.kcpu) (Taichi.vcpus tc);
  System.spawn_cp sys holder;
  System.advance sys (Time_ns.ms 5);
  for _ = 1 to 15 do
    List.iter
      (fun core ->
        for _ = 1 to 8 do
          Client.submit_background (System.client sys) ~kind:Packet.Net_rx
            ~size:1400 ~core
        done)
      (System.dp_cores sys);
    System.advance sys (Time_ns.ms 2)
  done;
  let c = Counters.dump (Taichi_hw.Machine.counters (System.machine sys)) in
  let get name = try List.assoc name c with Not_found -> 0 in
  checkb "watchdog forced the borrow to end" true
    (get "recovery.watchdog.forced" > 0);
  let s = Vcpu_sched.stats (Taichi.scheduler tc) in
  checkb "forced end counted as unsafe suspension" true
    (s.Vcpu_sched.unsafe_suspensions > 0)

let suite =
  [
    ("config ablations", `Quick, test_config_ablations);
    ("sw probe adaptation", `Quick, test_sw_probe_adaptation);
    ("sw probe bounds", `Quick, test_sw_probe_bounds);
    ("sw probe fixed mode", `Quick, test_sw_probe_fixed);
    ("install boots vcpus", `Quick, test_install_boots_vcpus);
    ("cp affinity spans vcpus", `Quick, test_cp_affinity_spans_vcpus);
    ("idle dp core hosts vcpu", `Quick, test_idle_dp_core_hosts_vcpu);
    ("state table tracks placement", `Quick, test_state_table_tracks_placement);
    ("probe evicts vcpu for packet", `Quick, test_probe_evicts_vcpu_for_packet);
    ("no probe: packet waits for slice", `Quick, test_no_probe_packet_waits_for_slice);
    ("slice doubles and resets", `Quick, test_slice_doubles_and_resets);
    ("orchestrator routes and counts", `Quick, test_orchestrator_routes_and_counts);
    ("orchestrator wakes sleeping vcpu", `Quick, test_orchestrator_wakes_sleeping_vcpu);
    ("lock holder rescued", `Quick, test_lock_holder_rescued);
    ( "rescue borrows CP pCPU when DP busy",
      `Quick,
      test_rescue_borrows_cp_pcpu_when_dp_busy );
    ( "watchdog escalates never-releasing holder",
      `Quick,
      test_watchdog_escalates_never_releasing_holder );
  ]

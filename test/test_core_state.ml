(* Tests for the authoritative per-core occupancy state machine: the full
   legality matrix, strict/permissive illegal-transition handling,
   deterministic subscriber ordering, dwell accounting, and a multi-seed
   soak over real systems ending in a clean machine-wide audit. *)

open Taichi_engine
open Taichi_hw
open Taichi_platform

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

open Core_state

let all_states =
  [
    Offline;
    Dp_running;
    Dp_counting;
    Dp_parked;
    Vcpu_running 3;
    Switching From_dp;
    Switching To_dp;
    Cp_dedicated;
  ]

(* The expected matrix, written out as a literal list so the test is an
   independent statement of the design (DESIGN.md §8) rather than a mirror
   of the implementation. Any state may additionally hot-unplug to
   [Offline]. *)
let legal_pairs =
  [
    (Offline, Dp_running);
    (Offline, Dp_counting);
    (Offline, Cp_dedicated);
    (Dp_running, Dp_counting);
    (Dp_counting, Dp_running);
    (Dp_counting, Dp_parked);
    (Dp_counting, Switching From_dp);
    (Dp_parked, Dp_running);
    (Dp_parked, Switching From_dp);
    (Switching From_dp, Switching From_dp);
    (Switching From_dp, Switching To_dp);
    (Switching From_dp, Vcpu_running 3);
    (Switching From_dp, Cp_dedicated);
    (Switching To_dp, Dp_running);
    (Switching To_dp, Dp_counting);
    (Vcpu_running 3, Switching From_dp);
    (Vcpu_running 3, Switching To_dp);
    (Vcpu_running 3, Cp_dedicated);
    (Cp_dedicated, Switching From_dp);
    (Cp_dedicated, Switching To_dp);
  ]

let test_legality_matrix () =
  List.iter
    (fun from ->
      List.iter
        (fun to_ ->
          let expected = to_ = Offline || List.mem (from, to_) legal_pairs in
          checkb
            (Printf.sprintf "%s -> %s" (state_label from) (state_label to_))
            expected
            (legal ~from ~to_))
        all_states)
    all_states;
  (* A rotation must pass through a switch: no direct vCPU-to-vCPU hop. *)
  checkb "no direct vcpu-to-vcpu" false
    (legal ~from:(Vcpu_running 1) ~to_:(Vcpu_running 2))

let make ?(cores = 2) () =
  let clock = ref 0 in
  let t = create ~cores ~now:(fun () -> !clock) in
  (clock, t)

let test_transition_applies () =
  let clock, t = make () in
  checkb "starts offline" true (get t ~core:0 = Offline);
  transition t ~core:0 ~cause:Hotplug Dp_counting;
  clock := 100;
  transition t ~core:0 ~cause:Wake Dp_running;
  checkb "state applied" true (get t ~core:0 = Dp_running);
  checki "since updated" 100 (since t ~core:0);
  checkb "other core untouched" true (get t ~core:1 = Offline);
  checki "two transitions" 2 (transitions t);
  checki "no illegal" 0 (illegal_transitions t);
  Alcotest.check_raises "out of range" (Invalid_argument
    "Core_state: core 2 out of range") (fun () ->
      transition t ~core:2 ~cause:Hotplug Dp_running)

let test_strict_rejects () =
  let _clock, t = make () in
  transition t ~core:0 ~cause:Hotplug Dp_running;
  (match transition t ~core:0 ~cause:Borrow Cp_dedicated with
  | () -> Alcotest.fail "illegal transition did not raise"
  | exception Illegal_transition _ -> ());
  checkb "state unchanged after rejection" true (get t ~core:0 = Dp_running);
  checki "rejection not recorded as applied" 0 (illegal_transitions t);
  checkb "audit clean" true (audit t = [])

let test_permissive_counts () =
  let _clock, t = make () in
  set_mode t Permissive;
  transition t ~core:0 ~cause:Hotplug Dp_running;
  transition t ~core:0 ~cause:Borrow Cp_dedicated;
  checkb "illegal transition applied" true (get t ~core:0 = Cp_dedicated);
  checki "illegal counted" 1 (illegal_transitions t);
  checkb "audit reports it" true (audit t <> [])

let test_subscriber_ordering () =
  let _clock, t = make () in
  let log = ref [] in
  subscribe t (fun ev ->
      log := Printf.sprintf "a:%s" (state_label ev.to_state) :: !log);
  subscribe t (fun ev ->
      log := Printf.sprintf "b:%s" (state_label ev.to_state) :: !log);
  transition t ~core:0 ~cause:Hotplug Dp_counting;
  transition t ~core:0 ~cause:Wake Dp_running;
  checkb "subscribers fan out in subscription order" true
    (List.rev !log
    = [ "a:dp_counting"; "b:dp_counting"; "a:dp_running"; "b:dp_running" ]);
  (* Event payload carries the full edge. *)
  let seen = ref None in
  subscribe t (fun ev -> seen := Some ev);
  transition t ~core:0 ~cause:Drain Dp_counting;
  match !seen with
  | Some ev ->
      checkb "from" true (ev.from_state = Dp_running);
      checkb "to" true (ev.to_state = Dp_counting);
      checkb "cause" true (ev.cause = Drain);
      checkb "legal" true ev.legal;
      checki "core" 0 ev.core
  | None -> Alcotest.fail "subscriber did not run"

let test_dwell_accounting () =
  let clock, t = make () in
  transition t ~core:0 ~cause:Hotplug Dp_counting;
  clock := 10;
  transition t ~core:0 ~cause:Wake Dp_running;
  clock := 25;
  transition t ~core:0 ~cause:Drain Dp_counting;
  clock := 30;
  let d = dwell t ~core:0 in
  let get_d label = try List.assoc label d with Not_found -> 0 in
  checki "counting dwell includes open span" 15 (get_d "dp_counting");
  checki "running dwell" 15 (get_d "dp_running");
  checki "offline dwell" 0 (get_d "offline")

(* A busy scenario on a real system: background data-plane traffic plus
   control-plane churn heavy enough that Tai Chi places vCPUs on data-plane
   cores, rescues lock holders and borrows CP pCPUs. Ends with the
   machine-wide audit, which must come back clean. *)
let soak policy ~seed =
  let sys = System.create ~seed policy in
  System.warmup sys;
  let until = Sim.now (System.sim sys) + Time_ns.ms 60 in
  Exp_common.start_bg_dp sys ~target:0.3 ~until;
  Exp_common.start_cp_churn sys ~period:(Time_ns.ms 1) ~work:(Time_ns.ms 6)
    ~until;
  System.advance sys (Time_ns.ms 80);
  (match System.audit sys with
  | [] -> ()
  | violations ->
      Alcotest.fail
        (Printf.sprintf "audit violations (seed %d): %s" seed
           (String.concat "; " violations)));
  let counters = Machine.counters (System.machine sys) in
  checkb "transitions flowed" true
    (Counters.get counters "core_state.transitions" > 0);
  checki "no illegal transitions" 0 (Counters.get counters "core_state.illegal")

let test_soak_taichi () =
  List.iter (fun seed -> soak Policy.taichi_default ~seed) [ 3; 17; 29 ]

let test_soak_coschedule () =
  List.iter (fun seed -> soak Policy.Naive_coschedule ~seed) [ 3; 17; 29 ]

let suite =
  [
    ("legality matrix", `Quick, test_legality_matrix);
    ("transition applies and stamps", `Quick, test_transition_applies);
    ("strict mode rejects illegal", `Quick, test_strict_rejects);
    ("permissive mode counts illegal", `Quick, test_permissive_counts);
    ("subscriber ordering deterministic", `Quick, test_subscriber_ordering);
    ("dwell accounting", `Quick, test_dwell_accounting);
    ("soak: taichi audits clean", `Slow, test_soak_taichi);
    ("soak: co-schedule audits clean", `Slow, test_soak_coschedule);
  ]

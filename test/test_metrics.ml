(* Tests for recorders, SLOs and table rendering. *)

open Taichi_engine
open Taichi_metrics

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let test_recorder_observe () =
  let r = Recorder.create "lat" in
  List.iter (Recorder.observe r) [ 10; 20; 30 ];
  checki "count" 3 (Recorder.count r);
  checki "min" 10 (Recorder.min_value r);
  checki "max" 30 (Recorder.max_value r);
  Alcotest.(check (float 1e-9)) "mean" 20.0 (Recorder.mean r);
  checki "p50" 20 (Recorder.percentile r 50.0)

let test_recorder_counters () =
  let r = Recorder.create "c" in
  Recorder.incr r "spikes";
  Recorder.incr r ~by:4 "spikes";
  Recorder.incr r "yields";
  checki "spikes" 5 (Recorder.counter r "spikes");
  checki "missing" 0 (Recorder.counter r "nope");
  Alcotest.(check (list (pair string int)))
    "sorted counters"
    [ ("spikes", 5); ("yields", 1) ]
    (Recorder.counters r)

let test_recorder_throughput () =
  let r = Recorder.create "t" in
  for _ = 1 to 500 do
    Recorder.observe r 1
  done;
  Alcotest.(check (float 1e-6)) "per sec" 1000.0
    (Recorder.throughput_per_sec r ~duration:(Time_ns.ms 500))

let test_recorder_clear () =
  let r = Recorder.create "x" in
  Recorder.observe r 5;
  Recorder.incr r "k";
  Recorder.clear r;
  checki "count reset" 0 (Recorder.count r);
  checki "counter reset" 0 (Recorder.counter r "k")

(* Regression: [clear] used to reset the histogram and counters but not the
   Welford summary, so post-clear means and stddevs still blended in every
   pre-clear sample. *)
let test_recorder_clear_then_observe () =
  let r = Recorder.create "w" in
  List.iter (Recorder.observe r) [ 1000; 2000; 4000 ];
  Recorder.clear r;
  List.iter (Recorder.observe r) [ 10; 20; 30 ];
  checki "count" 3 (Recorder.count r);
  Alcotest.(check (float 1e-9)) "mean reflects only post-clear" 20.0
    (Recorder.mean r);
  Alcotest.(check (float 1e-9)) "stddev reflects only post-clear" 10.0
    (Recorder.stddev r);
  checki "min" 10 (Recorder.min_value r);
  checki "max" 30 (Recorder.max_value r)

let test_slo_latency () =
  let r = Recorder.create "lat" in
  for i = 1 to 100 do
    Recorder.observe r (i * 1000)
  done;
  let ok = Slo.latency_p "p99" ~percentile:99.0 ~bound:(Time_ns.us 150) in
  let bad = Slo.latency_p "p99-tight" ~percentile:99.0 ~bound:(Time_ns.us 50) in
  let v1 = Slo.check ok r ~duration:(Time_ns.sec 1) in
  let v2 = Slo.check bad r ~duration:(Time_ns.sec 1) in
  checkb "satisfied" true v1.Slo.satisfied;
  checkb "violated" false v2.Slo.satisfied

let test_slo_throughput () =
  let r = Recorder.create "tput" in
  for _ = 1 to 1000 do
    Recorder.observe r 1
  done;
  let slo = Slo.min_throughput "tput" ~per_sec:900.0 in
  let v = Slo.check slo r ~duration:(Time_ns.sec 1) in
  checkb "satisfied" true v.Slo.satisfied;
  let slo2 = Slo.min_throughput "tput" ~per_sec:1100.0 in
  checkb "violated" false (Slo.check slo2 r ~duration:(Time_ns.sec 1)).Slo.satisfied

let test_slo_empty_recorder () =
  let r = Recorder.create "empty" in
  let slo = Slo.mean_latency "m" (Time_ns.us 10) in
  checkb "empty unsatisfied" false (Slo.check slo r ~duration:(Time_ns.sec 1)).Slo.satisfied

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  scan 0

(* All four objective kinds against one recorder of 1..100us samples:
   mean 50.5us, max 100us, 100 samples over the duration. *)
let test_slo_all_kinds () =
  let r = Recorder.create "lat" in
  for i = 1 to 100 do
    Recorder.observe r (Time_ns.us i)
  done;
  let dur = Time_ns.ms 100 in
  let verdict slo = (Slo.check slo r ~duration:dur).Slo.satisfied in
  checkb "p99 ok" true
    (verdict (Slo.latency_p "p" ~percentile:99.0 ~bound:(Time_ns.us 150)));
  checkb "p99 violated" false
    (verdict (Slo.latency_p "p" ~percentile:99.0 ~bound:(Time_ns.us 50)));
  checkb "mean ok" true (verdict (Slo.mean_latency "m" (Time_ns.us 60)));
  checkb "mean violated" false (verdict (Slo.mean_latency "m" (Time_ns.us 40)));
  checkb "max ok" true (verdict (Slo.max_latency "x" (Time_ns.us 110)));
  checkb "max violated" false (verdict (Slo.max_latency "x" (Time_ns.us 50)));
  (* 100 samples / 100 ms = 1000/s. *)
  checkb "throughput ok" true
    (verdict (Slo.min_throughput "t" ~per_sec:900.0));
  checkb "throughput violated" false
    (verdict (Slo.min_throughput "t" ~per_sec:1100.0));
  checki "check_all covers every slo" 2
    (List.length
       (Slo.check_all
          [ Slo.mean_latency "m" (Time_ns.us 60);
            Slo.min_throughput "t" ~per_sec:900.0 ]
          r ~duration:dur))

(* A window that cannot demonstrate throughput — no samples, or a
   degenerate duration — must produce a definite "unsatisfied, 0/s"
   verdict, never a 0/0 artifact. *)
let test_slo_min_throughput_degenerate () =
  let empty = Recorder.create "empty" in
  let slo = Slo.min_throughput "t" ~per_sec:1.0 in
  let v = Slo.check slo empty ~duration:(Time_ns.sec 1) in
  checkb "empty window unsatisfied" false v.Slo.satisfied;
  Alcotest.(check (float 0.0)) "empty window measures zero" 0.0 v.Slo.measured;
  let r = Recorder.create "some" in
  Recorder.observe r 1;
  let v = Slo.check slo r ~duration:0 in
  checkb "zero duration unsatisfied" false v.Slo.satisfied;
  Alcotest.(check (float 0.0)) "zero duration measures zero" 0.0 v.Slo.measured;
  (* Even a 0/s target cannot be "demonstrated" by an empty window. *)
  let v =
    Slo.check (Slo.min_throughput "t" ~per_sec:0.0) empty
      ~duration:(Time_ns.sec 1)
  in
  checkb "vacuous target still unsatisfied on empty" false v.Slo.satisfied

let test_slo_check_hist () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ Time_ns.us 10; Time_ns.us 20; Time_ns.us 30 ];
  let v =
    Slo.check_hist
      (Slo.latency_p "p" ~percentile:50.0 ~bound:(Time_ns.us 25))
      h ~duration:(Time_ns.ms 1)
  in
  checkb "hist p50 ok" true v.Slo.satisfied;
  let v =
    Slo.check_hist (Slo.min_throughput "t" ~per_sec:1000.0) h
      ~duration:(Time_ns.ms 1)
  in
  (* 3 samples / 1 ms = 3000/s. *)
  checkb "hist throughput ok" true v.Slo.satisfied

let test_slo_pp_verdict () =
  let empty = Recorder.create "empty" in
  let v =
    Slo.check
      (Slo.latency_p "dp.p99" ~percentile:99.0 ~bound:(Time_ns.us 100))
      empty ~duration:(Time_ns.sec 1)
  in
  let s = Format.asprintf "%a" Slo.pp_verdict v in
  checkb "empty latency prints no-samples" true (contains s "no samples");
  checkb "violated status printed" true (contains s "VIOLATED");
  let r = Recorder.create "t" in
  Recorder.observe r 1;
  let s =
    Format.asprintf "%a" Slo.pp_verdict
      (Slo.check (Slo.min_throughput "t" ~per_sec:0.5) r
         ~duration:(Time_ns.sec 1))
  in
  checkb "throughput prints rate" true (contains s "/s");
  checkb "satisfied status printed" true (contains s "OK")

(* --- Quantile (sliding-window sketch) ------------------------------------- *)

let test_quantile_basic () =
  let q = Quantile.create ~slices:4 ~slice:(Time_ns.us 100) () in
  checki "window" (Time_ns.us 400) (Quantile.window q);
  checkb "empty sketch" true (Quantile.quantile q ~now:0 50.0 = None);
  Quantile.observe q ~now:10 (Time_ns.us 10);
  checki "count" 1 (Quantile.count q ~now:10);
  let v = Option.get (Quantile.quantile q ~now:10 99.0) in
  checkb "estimate errs high" true (v >= Time_ns.us 10);
  checkb "estimate within a sub-bucket" true
    (v <= Time_ns.us 10 + (Time_ns.us 10 / 8))

let test_quantile_window_expiry () =
  let q = Quantile.create ~slices:4 ~slice:(Time_ns.us 100) () in
  (* A huge early sample and a small late one: once the early slice falls
     out of the window only the small sample answers. *)
  Quantile.observe q ~now:0 (Time_ns.ms 10);
  Quantile.observe q ~now:(Time_ns.us 380) (Time_ns.us 5);
  checki "both in window" 2 (Quantile.count q ~now:(Time_ns.us 390));
  (* Eviction is slice-granular: at 500us the window covers slices 2..5,
     so the t=0 sample is gone and the t=380us one survives. *)
  let now = Time_ns.us 500 in
  checki "early slice expired" 1 (Quantile.count q ~now);
  let v = Option.get (Quantile.quantile q ~now 100.0) in
  checkb "max reflects only the survivor" true (v < Time_ns.us 10);
  (* Far past the window everything is gone. *)
  let now = Time_ns.ms 2 in
  checki "all expired" 0 (Quantile.count q ~now);
  checkb "quantile empty again" true (Quantile.quantile q ~now 99.0 = None)

let test_quantile_determinism () =
  let feed q =
    for i = 1 to 500 do
      Quantile.observe q
        ~now:(i * Time_ns.us 7)
        (Time_ns.us (1 + ((i * 37) mod 200)))
    done;
    List.map
      (fun p -> Quantile.quantile q ~now:(Time_ns.ms 4) p)
      [ 50.0; 90.0; 99.0; 100.0 ]
  in
  let a = feed (Quantile.create ~slices:8 ~slice:(Time_ns.us 200) ()) in
  let b = feed (Quantile.create ~slices:8 ~slice:(Time_ns.us 200) ()) in
  checkb "identical feeds answer identically" true (a = b)

let test_quantile_invalid_args () =
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  checkb "zero slice rejected" true (raises (fun () ->
      Quantile.create ~slice:0 ()));
  checkb "zero slices rejected" true (raises (fun () ->
      Quantile.create ~slices:0 ~slice:1 ()));
  let q = Quantile.create ~slice:(Time_ns.us 10) () in
  Quantile.observe q ~now:0 5;
  checkb "out-of-range percentile rejected" true (raises (fun () ->
      Quantile.quantile q ~now:0 101.0))

let test_table_render () =
  let t = Table.create ~columns:[ ("name", Table.Left); ("value", Table.Right) ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let s = Table.render t in
  checkb "contains header" true (contains s "name");
  checkb "contains row" true (contains s "alpha");
  checkb "right-aligned value" true (contains s " 1");
  (* Rows render in insertion order. *)
  let lines = String.split_on_char '\n' s in
  checki "line count (header + rule + 2 rows + trailing)" 5 (List.length lines)

let test_table_mismatch () =
  let t = Table.create ~columns:[ ("a", Table.Left) ] in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Table.add_row: cell count mismatch") (fun () ->
      Table.add_row t [ "x"; "y" ])

let test_table_cells () =
  Alcotest.(check string) "pct" "1.53%" (Table.cell_pct 0.0153);
  Alcotest.(check string) "big" "12346" (Table.cell_f 12345.6);
  Alcotest.(check string) "small" "1.234" (Table.cell_f 1.2341)

(* --- Json ----------------------------------------------------------------- *)

let test_json_roundtrip () =
  let open Json in
  let v =
    Obj
      [
        ("a", Int 1);
        ("b", Arr [ Null; Bool true; Str "x\"y\n\t\\z" ]);
        ("c", Float 1.5);
        ("d", Obj []);
        ("e", Int (-42));
      ]
  in
  let s = to_string v in
  checkb "roundtrip" true (parse s = v);
  checkb "whitespace tolerated" true
    (parse " { \"k\" : [ 1 , 2 ] } " = Obj [ ("k", Arr [ Int 1; Int 2 ]) ])

let test_json_rejects_malformed () =
  checkb "unterminated" true (Json.parse_opt "{\"a\":" = None);
  checkb "trailing garbage" true (Json.parse_opt "1 2" = None);
  checkb "bare word" true (Json.parse_opt "nope" = None);
  checkb "dangling comma" true (Json.parse_opt "[1,]" = None)

(* --- Timeline -------------------------------------------------------------- *)

let test_timeline_occupancy () =
  let tr = Trace.create ~enabled:true () in
  let st core time msg =
    Trace.emit tr ~time ~core ~category:Trace.Cat.core_state msg
  in
  st 0 100 Trace.Cat.state_dp;
  st 0 400 Trace.Cat.state_switch;
  st 0 450 Trace.Cat.state_vcpu;
  st 1 200 Trace.Cat.state_dp;
  (* Non-state records only feed the per-category counts. *)
  Trace.emit tr ~time:300 ~category:Trace.Cat.sched_place "noise";
  let tl = Timeline.of_trace ~cores:2 ~duration:1000 tr in
  let o0 = Timeline.occupancy tl ~core:0 in
  checki "core0 idle" 100 o0.Timeline.idle;
  checki "core0 dp" 300 o0.Timeline.dp;
  checki "core0 switch" 50 o0.Timeline.switch;
  checki "core0 vcpu" 550 o0.Timeline.vcpu;
  checki "core0 sums to duration" 1000 (Timeline.total o0);
  let o1 = Timeline.occupancy tl ~core:1 in
  checki "core1 idle" 200 o1.Timeline.idle;
  checki "core1 dp" 800 o1.Timeline.dp;
  checki "core1 sums to duration" 1000 (Timeline.total o1);
  checki "dropped" 0 (Timeline.dropped tl);
  Alcotest.(check (list (pair string int)))
    "event counts"
    [ (Trace.Cat.core_state, 4); (Trace.Cat.sched_place, 1) ]
    (Timeline.event_counts tl)

(* Random state transitions: whatever the trace says, the four buckets of
   every core partition [0, duration]. *)
let prop_timeline_partitions =
  QCheck.Test.make ~name:"timeline buckets sum to duration" ~count:100
    QCheck.(
      list_of_size (Gen.int_range 0 60)
        (pair (int_range 0 3) (pair (int_range 0 5000) (int_range 0 3))))
    (fun events ->
      let tr = Trace.create ~enabled:true () in
      let states =
        [|
          Trace.Cat.state_dp; Trace.Cat.state_vcpu;
          Trace.Cat.state_switch; Trace.Cat.state_idle;
        |]
      in
      List.iter
        (fun (core, (time, st)) ->
          Trace.emit tr ~time ~core ~category:Trace.Cat.core_state states.(st))
        (List.sort compare events);
      let duration = 5000 in
      let tl = Timeline.of_trace ~cores:4 ~duration tr in
      List.for_all
        (fun core -> Timeline.total (Timeline.occupancy tl ~core) = duration)
        [ 0; 1; 2; 3 ])

let suite =
  [
    ("recorder observe", `Quick, test_recorder_observe);
    ("recorder counters", `Quick, test_recorder_counters);
    ("recorder throughput", `Quick, test_recorder_throughput);
    ("recorder clear", `Quick, test_recorder_clear);
    ("recorder clear then observe", `Quick, test_recorder_clear_then_observe);
    ("json roundtrip", `Quick, test_json_roundtrip);
    ("json rejects malformed", `Quick, test_json_rejects_malformed);
    ("timeline occupancy fold", `Quick, test_timeline_occupancy);
    QCheck_alcotest.to_alcotest prop_timeline_partitions;
    ("slo latency", `Quick, test_slo_latency);
    ("slo throughput", `Quick, test_slo_throughput);
    ("slo empty recorder", `Quick, test_slo_empty_recorder);
    ("slo all objective kinds", `Quick, test_slo_all_kinds);
    ( "slo throughput degenerate windows",
      `Quick,
      test_slo_min_throughput_degenerate );
    ("slo check_hist", `Quick, test_slo_check_hist);
    ("slo verdict printing", `Quick, test_slo_pp_verdict);
    ("quantile basic", `Quick, test_quantile_basic);
    ("quantile window expiry", `Quick, test_quantile_window_expiry);
    ("quantile determinism", `Quick, test_quantile_determinism);
    ("quantile invalid args", `Quick, test_quantile_invalid_args);
    ("table render", `Quick, test_table_render);
    ("table mismatch", `Quick, test_table_mismatch);
    ("table cell formatting", `Quick, test_table_cells);
  ]

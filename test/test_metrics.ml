(* Tests for recorders, SLOs and table rendering. *)

open Taichi_engine
open Taichi_metrics

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let test_recorder_observe () =
  let r = Recorder.create "lat" in
  List.iter (Recorder.observe r) [ 10; 20; 30 ];
  checki "count" 3 (Recorder.count r);
  checki "min" 10 (Recorder.min_value r);
  checki "max" 30 (Recorder.max_value r);
  Alcotest.(check (float 1e-9)) "mean" 20.0 (Recorder.mean r);
  checki "p50" 20 (Recorder.percentile r 50.0)

let test_recorder_counters () =
  let r = Recorder.create "c" in
  Recorder.incr r "spikes";
  Recorder.incr r ~by:4 "spikes";
  Recorder.incr r "yields";
  checki "spikes" 5 (Recorder.counter r "spikes");
  checki "missing" 0 (Recorder.counter r "nope");
  Alcotest.(check (list (pair string int)))
    "sorted counters"
    [ ("spikes", 5); ("yields", 1) ]
    (Recorder.counters r)

let test_recorder_throughput () =
  let r = Recorder.create "t" in
  for _ = 1 to 500 do
    Recorder.observe r 1
  done;
  Alcotest.(check (float 1e-6)) "per sec" 1000.0
    (Recorder.throughput_per_sec r ~duration:(Time_ns.ms 500))

let test_recorder_clear () =
  let r = Recorder.create "x" in
  Recorder.observe r 5;
  Recorder.incr r "k";
  Recorder.clear r;
  checki "count reset" 0 (Recorder.count r);
  checki "counter reset" 0 (Recorder.counter r "k")

(* Regression: [clear] used to reset the histogram and counters but not the
   Welford summary, so post-clear means and stddevs still blended in every
   pre-clear sample. *)
let test_recorder_clear_then_observe () =
  let r = Recorder.create "w" in
  List.iter (Recorder.observe r) [ 1000; 2000; 4000 ];
  Recorder.clear r;
  List.iter (Recorder.observe r) [ 10; 20; 30 ];
  checki "count" 3 (Recorder.count r);
  Alcotest.(check (float 1e-9)) "mean reflects only post-clear" 20.0
    (Recorder.mean r);
  Alcotest.(check (float 1e-9)) "stddev reflects only post-clear" 10.0
    (Recorder.stddev r);
  checki "min" 10 (Recorder.min_value r);
  checki "max" 30 (Recorder.max_value r)

let test_slo_latency () =
  let r = Recorder.create "lat" in
  for i = 1 to 100 do
    Recorder.observe r (i * 1000)
  done;
  let ok = Slo.latency_p "p99" ~percentile:99.0 ~bound:(Time_ns.us 150) in
  let bad = Slo.latency_p "p99-tight" ~percentile:99.0 ~bound:(Time_ns.us 50) in
  let v1 = Slo.check ok r ~duration:(Time_ns.sec 1) in
  let v2 = Slo.check bad r ~duration:(Time_ns.sec 1) in
  checkb "satisfied" true v1.Slo.satisfied;
  checkb "violated" false v2.Slo.satisfied

let test_slo_throughput () =
  let r = Recorder.create "tput" in
  for _ = 1 to 1000 do
    Recorder.observe r 1
  done;
  let slo = Slo.min_throughput "tput" ~per_sec:900.0 in
  let v = Slo.check slo r ~duration:(Time_ns.sec 1) in
  checkb "satisfied" true v.Slo.satisfied;
  let slo2 = Slo.min_throughput "tput" ~per_sec:1100.0 in
  checkb "violated" false (Slo.check slo2 r ~duration:(Time_ns.sec 1)).Slo.satisfied

let test_slo_empty_recorder () =
  let r = Recorder.create "empty" in
  let slo = Slo.mean_latency "m" (Time_ns.us 10) in
  checkb "empty unsatisfied" false (Slo.check slo r ~duration:(Time_ns.sec 1)).Slo.satisfied

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  scan 0

let test_table_render () =
  let t = Table.create ~columns:[ ("name", Table.Left); ("value", Table.Right) ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let s = Table.render t in
  checkb "contains header" true (contains s "name");
  checkb "contains row" true (contains s "alpha");
  checkb "right-aligned value" true (contains s " 1");
  (* Rows render in insertion order. *)
  let lines = String.split_on_char '\n' s in
  checki "line count (header + rule + 2 rows + trailing)" 5 (List.length lines)

let test_table_mismatch () =
  let t = Table.create ~columns:[ ("a", Table.Left) ] in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Table.add_row: cell count mismatch") (fun () ->
      Table.add_row t [ "x"; "y" ])

let test_table_cells () =
  Alcotest.(check string) "pct" "1.53%" (Table.cell_pct 0.0153);
  Alcotest.(check string) "big" "12346" (Table.cell_f 12345.6);
  Alcotest.(check string) "small" "1.234" (Table.cell_f 1.2341)

(* --- Json ----------------------------------------------------------------- *)

let test_json_roundtrip () =
  let open Json in
  let v =
    Obj
      [
        ("a", Int 1);
        ("b", Arr [ Null; Bool true; Str "x\"y\n\t\\z" ]);
        ("c", Float 1.5);
        ("d", Obj []);
        ("e", Int (-42));
      ]
  in
  let s = to_string v in
  checkb "roundtrip" true (parse s = v);
  checkb "whitespace tolerated" true
    (parse " { \"k\" : [ 1 , 2 ] } " = Obj [ ("k", Arr [ Int 1; Int 2 ]) ])

let test_json_rejects_malformed () =
  checkb "unterminated" true (Json.parse_opt "{\"a\":" = None);
  checkb "trailing garbage" true (Json.parse_opt "1 2" = None);
  checkb "bare word" true (Json.parse_opt "nope" = None);
  checkb "dangling comma" true (Json.parse_opt "[1,]" = None)

(* --- Timeline -------------------------------------------------------------- *)

let test_timeline_occupancy () =
  let tr = Trace.create ~enabled:true () in
  let st core time msg =
    Trace.emit tr ~time ~core ~category:Trace.Cat.core_state msg
  in
  st 0 100 Trace.Cat.state_dp;
  st 0 400 Trace.Cat.state_switch;
  st 0 450 Trace.Cat.state_vcpu;
  st 1 200 Trace.Cat.state_dp;
  (* Non-state records only feed the per-category counts. *)
  Trace.emit tr ~time:300 ~category:Trace.Cat.sched_place "noise";
  let tl = Timeline.of_trace ~cores:2 ~duration:1000 tr in
  let o0 = Timeline.occupancy tl ~core:0 in
  checki "core0 idle" 100 o0.Timeline.idle;
  checki "core0 dp" 300 o0.Timeline.dp;
  checki "core0 switch" 50 o0.Timeline.switch;
  checki "core0 vcpu" 550 o0.Timeline.vcpu;
  checki "core0 sums to duration" 1000 (Timeline.total o0);
  let o1 = Timeline.occupancy tl ~core:1 in
  checki "core1 idle" 200 o1.Timeline.idle;
  checki "core1 dp" 800 o1.Timeline.dp;
  checki "core1 sums to duration" 1000 (Timeline.total o1);
  checki "dropped" 0 (Timeline.dropped tl);
  Alcotest.(check (list (pair string int)))
    "event counts"
    [ (Trace.Cat.core_state, 4); (Trace.Cat.sched_place, 1) ]
    (Timeline.event_counts tl)

(* Random state transitions: whatever the trace says, the four buckets of
   every core partition [0, duration]. *)
let prop_timeline_partitions =
  QCheck.Test.make ~name:"timeline buckets sum to duration" ~count:100
    QCheck.(
      list_of_size (Gen.int_range 0 60)
        (pair (int_range 0 3) (pair (int_range 0 5000) (int_range 0 3))))
    (fun events ->
      let tr = Trace.create ~enabled:true () in
      let states =
        [|
          Trace.Cat.state_dp; Trace.Cat.state_vcpu;
          Trace.Cat.state_switch; Trace.Cat.state_idle;
        |]
      in
      List.iter
        (fun (core, (time, st)) ->
          Trace.emit tr ~time ~core ~category:Trace.Cat.core_state states.(st))
        (List.sort compare events);
      let duration = 5000 in
      let tl = Timeline.of_trace ~cores:4 ~duration tr in
      List.for_all
        (fun core -> Timeline.total (Timeline.occupancy tl ~core) = duration)
        [ 0; 1; 2; 3 ])

let suite =
  [
    ("recorder observe", `Quick, test_recorder_observe);
    ("recorder counters", `Quick, test_recorder_counters);
    ("recorder throughput", `Quick, test_recorder_throughput);
    ("recorder clear", `Quick, test_recorder_clear);
    ("recorder clear then observe", `Quick, test_recorder_clear_then_observe);
    ("json roundtrip", `Quick, test_json_roundtrip);
    ("json rejects malformed", `Quick, test_json_rejects_malformed);
    ("timeline occupancy fold", `Quick, test_timeline_occupancy);
    QCheck_alcotest.to_alcotest prop_timeline_partitions;
    ("slo latency", `Quick, test_slo_latency);
    ("slo throughput", `Quick, test_slo_throughput);
    ("slo empty recorder", `Quick, test_slo_empty_recorder);
    ("table render", `Quick, test_table_render);
    ("table mismatch", `Quick, test_table_mismatch);
    ("table cell formatting", `Quick, test_table_cells);
  ]

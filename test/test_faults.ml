(* Tests for the deterministic fault injector and the recovery tracker:
   bit-for-bit reproducibility of the fault plan, the fabric drop/delay
   hook, the bounded boot-drop budget, LAPIC vector loss, state-table
   freeze/force, the arm/stop horizon, and degraded-mode engage/re-arm. *)

open Taichi_engine
open Taichi_hw
open Taichi_accel
open Taichi_core
open Taichi_faults

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let test_vector = 0x40
let boot_vector = 0xF0

(* A bare 4-core machine with registered LAPICs and a delivery counter
   per vector — enough fabric to exercise the injector without a kernel
   or scheduler. *)
let make_machine () =
  let sim = Sim.create () in
  let machine =
    Machine.create
      ~config:{ Machine.default_config with Machine.physical_cores = 4 }
      sim
  in
  let delivered = Array.make 2 0 in
  for i = 0 to 3 do
    let l = Lapic.create ~apic_id:i in
    Lapic.register_handler l test_vector (fun () ->
        delivered.(0) <- delivered.(0) + 1);
    Lapic.register_handler l boot_vector (fun () ->
        delivered.(1) <- delivered.(1) + 1);
    Machine.register_lapic machine l
  done;
  (sim, machine, delivered)

let drain sim = Sim.run sim

(* --- determinism ----------------------------------------------------- *)

let run_fault_plan ~seed =
  let sim, machine, delivered = make_machine () in
  let inj =
    Injector.create ~rng:(Rng.create ~seed) ~machine ~boot_vector
      Injector.storm
  in
  Injector.arm inj ~until:(Time_ns.ms 50);
  for i = 0 to 199 do
    ignore
      (Sim.at sim
         (Time_ns.us (1 + i))
         (fun () ->
           Machine.send_ipi machine ~src:0 ~dst:(i mod 4) ~vector:test_vector))
  done;
  drain sim;
  ( Machine.ipis_fault_dropped machine,
    Machine.ipis_fault_delayed machine,
    delivered.(0),
    Counters.get (Machine.counters machine) "fault.lapic.lost" )

let test_fault_plan_deterministic () =
  let a = run_fault_plan ~seed:1234 in
  let b = run_fault_plan ~seed:1234 in
  checkb "identical fault plan for identical seed" true (a = b);
  let dropped, _delayed, delivered, lost = a in
  (* Every sent IPI is either dropped in the fabric, lost at the LAPIC,
     or delivered (a delayed IPI still delivers). *)
  checki "every IPI accounted for" 200 (dropped + lost + delivered);
  checkb "some faults actually fired" true (dropped > 0 && delivered > 0)

(* --- fabric drop / delay --------------------------------------------- *)

let test_fabric_drop_all () =
  let sim, machine, delivered = make_machine () in
  let profile = { Injector.none with Injector.pname = "x"; ipi_drop_p = 1.0 } in
  let _inj =
    Injector.create ~rng:(Rng.create ~seed:1) ~machine ~boot_vector profile
  in
  for i = 0 to 9 do
    Machine.send_ipi machine ~src:0 ~dst:(i mod 4) ~vector:test_vector
  done;
  drain sim;
  checki "all dropped" 10 (Machine.ipis_fault_dropped machine);
  checki "none delivered" 0 delivered.(0);
  checki "counter matches" 10
    (Counters.get (Machine.counters machine) "fault.ipi.dropped")

let test_fabric_delay_all () =
  let sim, machine, delivered = make_machine () in
  let profile =
    {
      Injector.none with
      Injector.pname = "x";
      ipi_delay_p = 1.0;
      ipi_delay_max = Time_ns.us 10;
    }
  in
  let _inj =
    Injector.create ~rng:(Rng.create ~seed:2) ~machine ~boot_vector profile
  in
  Machine.send_ipi machine ~src:0 ~dst:1 ~vector:test_vector;
  (* At the plain fabric latency the IPI must still be in flight. *)
  Sim.run ~until:(Machine.default_config.Machine.ipi_latency + 1) sim;
  checki "still in flight at base latency" 0 delivered.(0);
  drain sim;
  checki "delivered late" 1 delivered.(0);
  checki "delay counted" 1 (Machine.ipis_fault_delayed machine)

let test_boot_drop_budget () =
  let sim, machine, delivered = make_machine () in
  let profile =
    {
      Injector.none with
      Injector.pname = "x";
      boot_drop_p = 1.0;
      boot_drop_max = 3;
    }
  in
  let _inj =
    Injector.create ~rng:(Rng.create ~seed:3) ~machine ~boot_vector profile
  in
  for i = 0 to 9 do
    Machine.send_ipi machine ~src:0 ~dst:(i mod 4) ~vector:boot_vector
  done;
  drain sim;
  checki "budget bounds the drops" 3
    (Counters.get (Machine.counters machine) "fault.boot.dropped");
  checki "the rest deliver" 7 delivered.(1)

(* --- LAPIC loss ------------------------------------------------------- *)

let test_lapic_loss_filter () =
  let l = Lapic.create ~apic_id:0 in
  let hits = ref 0 in
  Lapic.register_handler l 7 (fun () -> incr hits);
  Lapic.register_handler l 8 (fun () -> incr hits);
  Lapic.set_loss_filter l (Some (fun v -> v = 7));
  Lapic.inject l 7;
  Lapic.inject l 8;
  checki "filtered vector lost" 1 (Lapic.lost_count l);
  checki "other vector delivered" 1 !hits;
  Lapic.set_loss_filter l None;
  Lapic.inject l 7;
  checki "filter removed" 2 !hits

(* --- state-table freeze / force --------------------------------------- *)

let test_state_table_freeze_force () =
  let table = State_table.create ~cores:2 in
  State_table.set table ~core:0 State_table.V_state;
  State_table.freeze table ~core:0;
  State_table.set table ~core:0 State_table.P_state;
  checkb "frozen record keeps stale value" true
    (State_table.get table ~core:0 = State_table.V_state);
  checki "dropped write counted" 1 (State_table.stalled_updates table);
  State_table.force table ~core:0 State_table.P_state;
  checkb "force writes through" true
    (State_table.get table ~core:0 = State_table.P_state);
  checkb "force thaws" false (State_table.frozen table ~core:0);
  State_table.set table ~core:0 State_table.V_state;
  checkb "normal writes resume" true
    (State_table.get table ~core:0 = State_table.V_state)

(* --- arm / stop horizon ------------------------------------------------ *)

let test_injection_stops_at_horizon () =
  let sim, machine, delivered = make_machine () in
  let profile = { Injector.storm with Injector.ipi_drop_p = 1.0 } in
  let inj =
    Injector.create ~rng:(Rng.create ~seed:4) ~machine ~boot_vector profile
  in
  Injector.arm inj ~until:(Time_ns.us 100);
  Machine.send_ipi machine ~src:0 ~dst:1 ~vector:test_vector;
  Sim.run ~until:(Time_ns.ms 1) sim;
  checki "in-window IPI dropped" 1 (Machine.ipis_fault_dropped machine);
  checkb "injector stopped after horizon" false (Injector.active inj);
  Machine.send_ipi machine ~src:0 ~dst:1 ~vector:test_vector;
  drain sim;
  checki "post-horizon IPI passes" 1 delivered.(0);
  checki "no further drops" 1 (Machine.ipis_fault_dropped machine)

(* --- degraded mode ----------------------------------------------------- *)

let test_degraded_engages_and_rearms () =
  let sim, machine, _ = make_machine () in
  let config =
    {
      (Config.resilient Config.default) with
      Config.degraded_threshold = 3;
      degraded_window = Time_ns.us 100;
      degraded_quiet = Time_ns.us 200;
    }
  in
  let r = Recovery.create config machine in
  let engaged = ref false and rearmed = ref false in
  Recovery.on_engage r (fun () -> engaged := true);
  Recovery.on_rearm r (fun () -> rearmed := true);
  Recovery.note r ~cls:"test" ~action:"a" ~latency:(Time_ns.us 5);
  Recovery.note r ~cls:"test" ~action:"a" ~latency:(Time_ns.us 5);
  checkb "below threshold" false (Recovery.degraded r);
  Recovery.note r ~cls:"test" ~action:"a" ~latency:(Time_ns.us 5);
  checkb "threshold crossed: degraded" true (Recovery.degraded r);
  checkb "engage callback ran" true !engaged;
  checki "engage counted" 1 (Recovery.engaged_count r);
  checki "counter registry updated" 3
    (Counters.get (Machine.counters machine) "recovery.test.a");
  (* A quiet period re-arms co-scheduling. *)
  Sim.run ~until:(Time_ns.ms 1) sim;
  checkb "re-armed after quiet period" true !rearmed;
  checkb "no longer degraded" false (Recovery.degraded r);
  checki "rearm counted" 1 (Recovery.rearmed_count r)

(* A fault burst landing exactly when the quiet period elapses must not
   slip past the re-arm check: the simulator runs same-timestamp events
   FIFO, so a naive deadline check would re-arm first and the burst would
   re-engage one event later — a spurious rearm/engage flap. The tracker
   defers the decision past the deadline tick, so the burst extends the
   degraded episode instead. *)
let test_burst_at_quiet_boundary_no_double_engage () =
  let sim, machine, _ = make_machine () in
  let quiet = Time_ns.us 200 in
  let config =
    {
      (Config.resilient Config.default) with
      Config.degraded_threshold = 3;
      degraded_window = Time_ns.us 100;
      degraded_quiet = quiet;
    }
  in
  let r = Recovery.create config machine in
  let rearm_times = ref [] in
  Recovery.on_rearm r (fun () -> rearm_times := Sim.now sim :: !rearm_times);
  for _ = 1 to 3 do
    Recovery.note r ~cls:"test" ~action:"a" ~latency:Time_ns.zero
  done;
  checkb "engaged at t=0" true (Recovery.degraded r);
  (* Second burst exactly at the quiet-period end. *)
  ignore
    (Sim.at sim quiet (fun () ->
         for _ = 1 to 3 do
           Recovery.note r ~cls:"test" ~action:"a" ~latency:Time_ns.zero
         done));
  Sim.run ~until:(Time_ns.ms 2) sim;
  checki "one engage for the whole episode" 1 (Recovery.engaged_count r);
  checki "one re-arm for the whole episode" 1 (Recovery.rearmed_count r);
  checkb "re-armed at the end" false (Recovery.degraded r);
  match !rearm_times with
  | [ t ] ->
      checkb "re-arm waited for quiet after the boundary burst" true
        (t > quiet + quiet)
  | ts -> Alcotest.failf "expected exactly one re-arm, got %d" (List.length ts)

(* Re-arming must restore the pre-degraded placement policy, not merely
   clear the flag: a vCPU-pinned task is unschedulable while degraded
   (vCPUs are evicted and the placement gate is closed) and must run to
   completion once the quiet period re-opens co-scheduling. *)
let test_rearm_restores_placement_policy () =
  let config =
    {
      (Config.resilient Config.default) with
      Config.degraded_threshold = 2;
      degraded_window = Time_ns.ms 1;
      degraded_quiet = Time_ns.ms 2;
    }
  in
  let sys =
    Taichi_platform.System.create ~seed:11 (Taichi_platform.Policy.Taichi config)
  in
  Taichi_platform.System.warmup sys;
  let tc = Option.get (Taichi_platform.System.taichi sys) in
  let r = Taichi.recovery tc in
  Recovery.note r ~cls:"test" ~action:"burst" ~latency:Time_ns.zero;
  Recovery.note r ~cls:"test" ~action:"burst" ~latency:Time_ns.zero;
  checkb "degraded after burst" true (Recovery.degraded r);
  let t =
    Taichi_os.Task.create ~name:"pinned"
      ~step:
        (Taichi_os.Program.to_step
           [ Taichi_os.Program.compute (Time_ns.us 500) ])
      ()
  in
  t.Taichi_os.Task.affinity <-
    List.map (fun v -> v.Taichi_virt.Vcpu.kcpu) (Taichi.vcpus tc);
  Taichi_platform.System.spawn_cp sys t;
  Taichi_platform.System.advance sys (Time_ns.ms 1);
  checkb "still degraded mid-quiet" true (Recovery.degraded r);
  checkb "pinned task starved while degraded" false (Taichi_os.Task.is_finished t);
  Taichi_platform.System.advance sys (Time_ns.ms 10);
  checkb "re-armed after quiet" false (Recovery.degraded r);
  checki "one re-arm" 1 (Recovery.rearmed_count r);
  checkb "pinned task ran once placement resumed" true (Taichi_os.Task.is_finished t)

(* The overload governor's pin: force_engage holds degraded mode open
   through any quiet period; force_release re-arms immediately. Both are
   idempotent. *)
let test_forced_engage_pins_and_release_rearms () =
  let sim, machine, _ = make_machine () in
  let config =
    {
      (Config.resilient Config.default) with
      Config.degraded_threshold = 2;
      degraded_window = Time_ns.us 100;
      degraded_quiet = Time_ns.us 200;
    }
  in
  let r = Recovery.create config machine in
  Recovery.note r ~cls:"test" ~action:"a" ~latency:Time_ns.zero;
  Recovery.note r ~cls:"test" ~action:"a" ~latency:Time_ns.zero;
  checkb "engaged" true (Recovery.degraded r);
  Recovery.force_engage r;
  Recovery.force_engage r;
  checkb "forced" true (Recovery.forced r);
  checki "idempotent force counted once" 1
    (Counters.get (Machine.counters machine) "recovery.degraded.forced");
  (* Far past the fault-side quiet period: the pin blocks the re-arm. *)
  Sim.run ~until:(Time_ns.ms 5) sim;
  checkb "still degraded under the pin" true (Recovery.degraded r);
  checki "no quiet re-arm under the pin" 0 (Recovery.rearmed_count r);
  Recovery.force_release r;
  checkb "release re-arms immediately" false (Recovery.degraded r);
  checki "one re-arm" 1 (Recovery.rearmed_count r);
  Recovery.force_release r;
  checki "release idempotent" 1 (Recovery.rearmed_count r);
  checki "one engage end to end" 1 (Recovery.engaged_count r)

(* force_engage works without [resilience]: the governor carries its own
   opt-in, so load-driven static partitioning must not depend on the
   fault-side flag. *)
let test_forced_engage_without_resilience () =
  let _, machine, _ = make_machine () in
  let config = Config.default in
  let r = Recovery.create config machine in
  let engaged = ref false and rearmed = ref false in
  Recovery.on_engage r (fun () -> engaged := true);
  Recovery.on_rearm r (fun () -> rearmed := true);
  Recovery.force_engage r;
  checkb "engages without resilience" true (Recovery.degraded r);
  checkb "engage callback ran" true !engaged;
  Recovery.force_release r;
  checkb "release re-arms" false (Recovery.degraded r);
  checkb "rearm callback ran" true !rearmed

let test_degraded_inert_without_resilience () =
  let _, machine, _ = make_machine () in
  let config = { Config.default with Config.degraded_threshold = 1 } in
  let r = Recovery.create config machine in
  for _ = 1 to 10 do
    Recovery.note r ~cls:"test" ~action:"a" ~latency:Time_ns.zero
  done;
  checkb "never degrades without resilience" false (Recovery.degraded r);
  checki "events still counted" 10 (Recovery.events r)

let suite =
  [
    ("fault plan deterministic", `Quick, test_fault_plan_deterministic);
    ("fabric drops when told", `Quick, test_fabric_drop_all);
    ("fabric delay is additive", `Quick, test_fabric_delay_all);
    ("boot drops bounded by budget", `Quick, test_boot_drop_budget);
    ("lapic loss filter", `Quick, test_lapic_loss_filter);
    ("state table freeze and force", `Quick, test_state_table_freeze_force);
    ("injection stops at horizon", `Quick, test_injection_stops_at_horizon);
    ("degraded engages and re-arms", `Quick, test_degraded_engages_and_rearms);
    ( "burst at quiet boundary does not double-engage",
      `Quick,
      test_burst_at_quiet_boundary_no_double_engage );
    ( "re-arm restores placement policy",
      `Quick,
      test_rearm_restores_placement_policy );
    ( "forced engage pins, release re-arms",
      `Quick,
      test_forced_engage_pins_and_release_rearms );
    ( "forced engage without resilience",
      `Quick,
      test_forced_engage_without_resilience );
    ( "degraded inert without resilience",
      `Quick,
      test_degraded_inert_without_resilience );
  ]

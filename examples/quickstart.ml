(* Quickstart: build a 12-core SmartNIC, install Tai Chi, run a mixed
   control-plane + data-plane workload, and print what the framework did.

   Run with: dune exec examples/quickstart.exe *)

open Taichi_engine
open Taichi_os
open Taichi_accel
open Taichi_core
open Taichi_metrics
open Taichi_workloads
open Taichi_controlplane
open Taichi_platform

let () =
  (* 1. A full simulated SmartNIC under the Tai Chi policy: 5 networking +
     3 storage data-plane cores, 4 control-plane cores, 8 vCPUs. *)
  let sys = System.create ~seed:7 Policy.taichi_default in
  System.warmup sys (* hotplug the vCPUs *);
  let tc = match System.taichi sys with Some tc -> tc | None -> assert false in
  Printf.printf "Tai Chi ready: %d vCPUs registered as native CPUs %s\n"
    (List.length (Taichi.vcpus tc))
    (String.concat ","
       (List.map string_of_int (Taichi.cp_cpu_ids tc)));

  (* 2. Light bursty data-plane traffic (~15%% utilization). *)
  let horizon = Time_ns.ms 500 in
  let until = Sim.now (System.sim sys) + horizon in
  Exp_common.start_bg_dp sys ~target:0.15 ~until;

  (* 3. A burst of control-plane work: 12 synth_cp tasks of 20 ms each,
     sharing a driver lock — far more than 4 CP cores handle quickly. *)
  let rng = Rng.split (System.rng sys) "quickstart" in
  let tasks =
    Synth_cp.make_batch ~rng
      ~params:{ Synth_cp.default_params with total_work = Time_ns.ms 20 }
      ~locks:[ Task.spinlock "driver" ]
      ~affinity:[] ~count:12 ()
  in
  List.iter (fun t -> System.spawn_cp sys t) tasks;

  (* 4. A latency probe through the data plane while all that runs. *)
  let rtt = Recorder.create "rtt" in
  Ping.run (System.client sys) rng
    ~params:{ Ping.default_params with interval = Time_ns.ms 1; count = 400 }
    ~core:(List.hd (System.net_cores sys))
    ~recorder:rtt;

  System.advance sys horizon;

  (* 5. Results. *)
  Printf.printf "\nCP burst: avg turnaround %.1f ms (12 x 20ms on 4 CP cores \
                 would be ~60ms serialized)\n"
    (Exp_common.avg_turnaround_ms tasks);
  let s = Ping.summarize rtt in
  Printf.printf "DP latency under co-scheduling: min %.1f avg %.1f max %.1f us\n"
    s.Ping.min_us s.Ping.avg_us s.Ping.max_us;
  Format.printf "\n%a@." Taichi.pp_summary tc;
  let probe = Taichi.hw_probe tc in
  Printf.printf
    "Hardware probe fired %d times, each hiding the 2us vCPU switch inside \
     the %s accelerator window.\n"
    (Hw_probe.triggers probe)
    (Time_ns.to_string (Pipeline.window (System.pipeline sys)))

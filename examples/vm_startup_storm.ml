(* VM startup storm: the paper's motivating scenario (§3.1, Figs 2/17).

   A burst of concurrent VM creations hits a high-density node. Every VM
   needs its emulated devices initialized by control-plane tasks before
   QEMU can boot it, so CP scheduling directly gates the startup SLO.
   Compare the static baseline, Tai Chi, and Tai Chi with the overload
   governor armed (the brownout ladder that trades deferrable CP work for
   the data-plane tail — same machinery as
   `taichi_sim overload --overload on`).

   Run with: dune exec examples/vm_startup_storm.exe *)

open Taichi_engine
open Taichi_os
open Taichi_core
open Taichi_metrics
open Taichi_controlplane
open Taichi_platform

(* The startup verdicts each configuration is judged against: mean within
   the paper's SLO, tail within 2x of it, and the storm actually draining
   at a sane rate (an empty or stalled window reads VIOLATED, not 0/0). *)
let slos =
  [
    Slo.mean_latency "vm.startup.mean" Vm_lifecycle.slo;
    Slo.latency_p "vm.startup.p99" ~percentile:99.0 ~bound:(2 * Vm_lifecycle.slo);
    Slo.min_throughput "vm.startup.rate" ~per_sec:0.5;
  ]

let storm policy ~density =
  let sys = System.create ~seed:21 policy in
  System.warmup sys;
  let until = Sim.now (System.sim sys) + Time_ns.sec 60 in
  Exp_common.start_bg_dp sys ~target:0.12 ~until;
  Exp_common.start_cp_ecosystem sys ();
  let sim = System.sim sys in
  let rng = Rng.split (System.rng sys) "storm" in
  let recorder = Recorder.create "startup" in
  let locks =
    List.init 8 (fun i -> Task.spinlock (Printf.sprintf "device-driver-%d" i))
  in
  let params =
    Vm_lifecycle.at_density ~base:(Vm_lifecycle.default_params ~rng) density
  in
  let n_vms = int_of_float (10.0 *. density) in
  let tasks =
    List.init n_vms (fun i ->
        Vm_lifecycle.startup_task ~sim ~rng ~params ~locks ~affinity:[]
          ~name:(Printf.sprintf "vm-%d" i)
          ~recorder ())
  in
  (* VM lifecycle work is ordinary tenant work: Standard class, the tier
     the governor throttles before ever touching Critical monitors. *)
  List.iter (fun t -> System.spawn_cp ~cls:Overload.Standard sys t) tasks;
  ignore (System.run_until_tasks_done sys tasks ~limit:(Time_ns.sec 60));
  let verdicts = Slo.check_all slos recorder ~duration:(System.elapsed sys) in
  let ladder =
    match System.taichi sys with
    | Some tc -> (
        match Taichi.overload tc with
        | Some ov ->
            Some (Overload.transitions ov, Overload.level_label (Overload.level ov))
        | None -> None)
    | None -> None
  in
  (Recorder.mean recorder /. 1e6, verdicts, ladder)

let report name (mean_ms, verdicts, ladder) =
  Printf.printf "  %s: mean %7.1f ms  (%.2fx SLO)\n" name mean_ms
    (mean_ms /. Time_ns.to_ms_f Vm_lifecycle.slo);
  List.iter (fun v -> Format.printf "      %a@." Slo.pp_verdict v) verdicts;
  (match ladder with
  | Some (transitions, final) ->
      Printf.printf "      governor: %d ladder transition(s), final level %s\n"
        transitions final
  | None -> ());
  print_newline ()

let () =
  let slo_ms = Time_ns.to_ms_f Vm_lifecycle.slo in
  Printf.printf
    "VM startup storm at 4x instance density (40 concurrent creations,\n\
     4x devices per VM), startup SLO = %.0f ms\n\n" slo_ms;
  let base = storm Policy.Static_partition ~density:4.0 in
  let taichi = storm Policy.taichi_default ~density:4.0 in
  let governed =
    storm (Policy.Taichi (Config.with_overload Config.default)) ~density:4.0
  in
  report "static baseline " base;
  report "Tai Chi         " taichi;
  report "Tai Chi+governor" governed;
  let mean (m, _, _) = m in
  Printf.printf "  reduction vs static: %.2fx\n\n" (mean base /. mean taichi);
  Printf.printf
    "Tai Chi turns the idle data-plane cycles into extra control-plane\n\
     capacity exactly when the startup storm needs it. The governor adds\n\
     a brownout ladder on top: under genuine overload it defers and sheds\n\
     low-priority CP work to keep the data-plane tail inside its\n\
     guardrail (see `taichi_sim overload --overload on`).\n"

(* Inverse adaptation (§8 Discussions): in a low-density deployment the
   control plane needs fewer CPUs, so Tai Chi's dynamic partitioning
   donates 50% of the CP pCPUs to the data plane — CP tasks fall back to
   stealing idle data-plane cycles, keeping their performance flat while
   peak data-plane throughput rises.

   Run with: dune exec examples/dp_boost.exe *)

open Taichi_engine
open Taichi_os
open Taichi_workloads
open Taichi_controlplane
open Taichi_platform

let peak_throughput layout =
  let sys = System.create ~seed:55 ~layout Policy.taichi_default in
  System.warmup sys;
  let d = Time_ns.ms 300 in
  let until = Sim.now (System.sim sys) + d in
  Exp_common.start_bg_cp sys;
  let rng = Rng.split (System.rng sys) "boost" in
  let crr =
    Netperf.tcp_crr (System.client sys) rng ~cores:(System.net_cores sys) ~until
  in
  let fio =
    Fio.run (System.client sys) rng ~params:Fio.default_params
      ~cores:(System.storage_cores sys) ~until
  in
  System.advance sys (d + Time_ns.ms 5);
  (Rr_engine.tps crr ~duration:d, Fio.iops fio ~duration:d)

let cp_latency layout =
  let sys = System.create ~seed:56 ~layout Policy.taichi_default in
  System.warmup sys;
  let rng = Rng.split (System.rng sys) "boostcp" in
  let tasks =
    Synth_cp.make_batch ~rng
      ~params:{ Synth_cp.default_params with total_work = Time_ns.ms 20 }
      ~locks:[ Task.spinlock "l" ] ~affinity:[] ~count:8 ()
  in
  List.iter (fun t -> System.spawn_cp sys t) tasks;
  ignore (System.run_until_tasks_done sys tasks ~limit:(Time_ns.sec 10));
  Exp_common.avg_turnaround_ms tasks

let () =
  let normal = System.default_layout in
  let boosted = { System.n_net = 6; n_storage = 4; n_cp = 2 } in
  let cps0, iops0 = peak_throughput normal in
  let cps1, iops1 = peak_throughput boosted in
  let cp0 = cp_latency normal and cp1 = cp_latency boosted in
  let pct a b = (b -. a) /. a *. 100.0 in
  Printf.printf "Donating 2 of 4 CP cores to the data plane (5+3 -> 6+4):\n\n";
  Printf.printf "  peak CPS   : %9.0f -> %9.0f  (%+.1f%%)\n" cps0 cps1 (pct cps0 cps1);
  Printf.printf "  peak IOPS  : %9.0f -> %9.0f  (%+.1f%%)\n" iops0 iops1
    (pct iops0 iops1);
  Printf.printf "  CP avg (8 x 20ms tasks): %5.1f ms -> %5.1f ms  (%+.1f%%)\n"
    cp0 cp1 (pct cp0 cp1);
  print_newline ();
  print_endline
    "Paper §8 reports +43% connections/s and +39% peak IOPS with CP\n\
     performance consistent with the 4-core baseline — the same shape as\n\
     above: throughput scales with the donated cores while CP work hides\n\
     in idle data-plane cycles."
